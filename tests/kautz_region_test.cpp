#include "kautz/kautz_region.h"

#include <gtest/gtest.h>

#include "kautz/kautz_space.h"
#include "util/check.h"
#include "util/rng.h"

namespace armada::kautz {
namespace {

KautzRegion region(const std::string& lo, const std::string& hi) {
  return KautzRegion(KautzString::parse(lo), KautzString::parse(hi));
}

TEST(KautzRegion, PaperDefinitionExample) {
  // <010, 021> = {010, 012, 020, 021}.
  const auto r = region("010", "021");
  EXPECT_EQ(r.size(), 4u);
  EXPECT_TRUE(r.contains(KautzString::parse("010")));
  EXPECT_TRUE(r.contains(KautzString::parse("012")));
  EXPECT_TRUE(r.contains(KautzString::parse("020")));
  EXPECT_TRUE(r.contains(KautzString::parse("021")));
  EXPECT_FALSE(r.contains(KautzString::parse("101")));
  EXPECT_FALSE(r.contains(KautzString::parse("102")));
  EXPECT_FALSE(r.contains(KautzString::parse("201")));
}

TEST(KautzRegion, RejectsMalformedBounds) {
  EXPECT_THROW(region("021", "010"), CheckError);  // inverted
  EXPECT_THROW(KautzRegion(KautzString::parse("01"), KautzString::parse("010")),
               CheckError);  // length mismatch
}

TEST(KautzRegion, CommonPrefix) {
  EXPECT_EQ(region("0120", "0202").common_prefix().to_string(), "0");
  EXPECT_EQ(region("0120", "0121").common_prefix().to_string(), "012");
  EXPECT_EQ(region("0101", "2121").common_prefix().length(), 0u);
  EXPECT_EQ(region("0101", "0101").common_prefix().to_string(), "0101");
}

TEST(KautzRegion, IntersectsPrefixBruteForce) {
  const auto all = enumerate(2, 5);
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    auto a = all[rng.next_index(all.size())];
    auto b = all[rng.next_index(all.size())];
    if (b < a) {
      std::swap(a, b);
    }
    const KautzRegion r(a, b);
    // All prefixes up to full length.
    for (const auto& s : all) {
      for (std::size_t len = 0; len <= 5; ++len) {
        const auto prefix = s.prefix(len);
        bool expected = false;
        for (const auto& t : all) {
          if (prefix.is_prefix_of(t) && r.contains(t)) {
            expected = true;
            break;
          }
        }
        EXPECT_EQ(r.intersects_prefix(prefix), expected)
            << "region " << r.to_string() << " prefix " << prefix.to_string();
      }
    }
  }
}

TEST(KautzRegion, SplitCommonPrefixProperties) {
  const auto all = enumerate(2, 5);
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    auto a = all[rng.next_index(all.size())];
    auto b = all[rng.next_index(all.size())];
    if (b < a) {
      std::swap(a, b);
    }
    const KautzRegion r(a, b);
    const auto parts = r.split_common_prefix();
    ASSERT_GE(parts.size(), 1u);
    ASSERT_LE(parts.size(), 3u);
    // Each part has a nonempty common prefix; parts are ordered, disjoint,
    // and cover the region exactly.
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      EXPECT_GE(parts[i].common_prefix().length(), 1u);
      total += parts[i].size();
      if (i > 0) {
        EXPECT_LT(parts[i - 1].hi(), parts[i].lo());
      }
    }
    EXPECT_EQ(parts.front().lo(), r.lo());
    EXPECT_EQ(parts.back().hi(), r.hi());
    EXPECT_EQ(total, r.size());
  }
}

TEST(KautzRegion, SplitWholeSpaceYieldsThreeBlocks) {
  const auto lo = min_extension(KautzString(2), 4);
  const auto hi = max_extension(KautzString(2), 4);
  const auto parts = KautzRegion(lo, hi).split_common_prefix();
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].common_prefix().to_string(), "0");
  EXPECT_EQ(parts[1].common_prefix().to_string(), "1");
  EXPECT_EQ(parts[2].common_prefix().to_string(), "2");
}

TEST(KautzRegion, ClampToPrefix) {
  const auto r = region("0120", "0202");
  const auto clamped = r.clamp_to_prefix(KautzString::parse("02"));
  EXPECT_EQ(clamped.lo().to_string(), "0201");
  EXPECT_EQ(clamped.hi().to_string(), "0202");
  const auto whole = r.clamp_to_prefix(KautzString(2));
  EXPECT_EQ(whole, r);
  EXPECT_THROW(r.clamp_to_prefix(KautzString::parse("10")), CheckError);
}

TEST(KautzRegion, SingletonRegion) {
  const auto r = region("0101", "0101");
  EXPECT_EQ(r.size(), 1u);
  const auto parts = r.split_common_prefix();
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], r);
}

}  // namespace
}  // namespace armada::kautz
