// Tests for the layered range-query baselines (PHT, Squid, SCRAP, native
// Skip Graph ranges), including the golden cross-scheme invariant: every
// scheme answers the same workload with the same result set.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "armada/armada.h"
#include "fissione/network.h"
#include "rq/dcf_can.h"
#include "rq/pht.h"
#include "rq/scrap.h"
#include "rq/skipgraph_rq.h"
#include "rq/squid.h"
#include "support/test_networks.h"
#include "support/test_workloads.h"
#include "util/rng.h"

namespace armada::rq {
namespace {

template <typename T>
std::vector<T> sorted(std::vector<T> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(SkipGraphRange, ExactResultsAndDestinations) {
  skipgraph::SkipGraph graph(testsupport::random_keys(300, 3, 0.0, 1000.0), 5);
  SkipGraphRangeIndex index(graph, {0.0, 1000.0});
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 800; ++i) {
    values.push_back(rng.next_double(0.0, 1000.0));
    index.publish(values.back());
  }
  for (int trial = 0; trial < 60; ++trial) {
    const double lo = rng.next_double(0.0, 900.0);
    const double hi = lo + rng.next_double(0.0, 100.0);
    const auto r = index.query(
        static_cast<skipgraph::NodeId>(rng.next_index(graph.num_nodes())), lo,
        hi);
    EXPECT_EQ(sorted(r.destinations),
              sorted(index.expected_destinations(lo, hi)));
    std::vector<std::uint64_t> expected;
    for (std::uint64_t h = 0; h < values.size(); ++h) {
      if (values[h] >= lo && values[h] <= hi) {
        expected.push_back(h);
      }
    }
    EXPECT_EQ(sorted(r.matches), expected);
  }
}

TEST(SkipGraphRange, DelayGrowsWithAnswerSize) {
  skipgraph::SkipGraph graph(testsupport::random_keys(2000, 9, 0.0, 1000.0), 11);
  SkipGraphRangeIndex index(graph, {0.0, 1000.0});
  Rng rng(13);
  auto mean_delay = [&](double size) {
    double total = 0.0;
    for (int i = 0; i < 50; ++i) {
      const double lo = rng.next_double(0.0, 1000.0 - size);
      total += index
                   .query(static_cast<skipgraph::NodeId>(
                              rng.next_index(graph.num_nodes())),
                          lo, lo + size)
                   .stats.delay;
    }
    return total / 50.0;
  };
  // O(logN + n): delay must scale with range size — the contrast to PIRA.
  EXPECT_GT(mean_delay(200.0), mean_delay(2.0) + 100.0);
}

TEST(Pht, TrieInvariantsAndExactRange) {
  Pht pht(Pht::Config{.key_bits = 12, .leaf_capacity = 4,
                      .domain = {0.0, 1000.0}},
          [](const std::string&) { return Pht::flat_cost(3); });
  Rng rng(15);
  std::vector<double> values;
  for (int i = 0; i < 600; ++i) {
    values.push_back(rng.next_double(0.0, 1000.0));
    pht.publish(values.back());
  }
  pht.check_invariants();
  EXPECT_GT(pht.num_trie_nodes(), 100u);

  for (int trial = 0; trial < 50; ++trial) {
    const double lo = rng.next_double(0.0, 900.0);
    const double hi = lo + rng.next_double(0.0, 100.0);
    const auto r = pht.query(lo, hi);
    std::vector<std::uint64_t> expected;
    for (std::uint64_t h = 0; h < values.size(); ++h) {
      // Quantization: compare on keys, as PHT stores them.
      if (pht.key_of(values[h]) >= pht.key_of(lo) &&
          pht.key_of(values[h]) <= pht.key_of(hi)) {
        expected.push_back(h);
      }
    }
    EXPECT_EQ(sorted(r.matches), expected);
    EXPECT_GT(r.stats.delay, 0.0);
    EXPECT_GE(r.stats.messages, r.stats.delay);
  }
}

TEST(Pht, DelayScalesWithTrieDepthTimesRouting) {
  // With unit lookup cost the delay equals the visited subtrie depth+1;
  // with cost c it is c times that — O(b * logN) structure.
  auto build = [](std::uint32_t cost) {
    return Pht(Pht::Config{.key_bits = 12, .leaf_capacity = 4,
                           .domain = {0.0, 1000.0}},
               [cost](const std::string&) { return Pht::flat_cost(cost); });
  };
  Pht unit = build(1);
  Pht costly = build(7);
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.next_double(0.0, 1000.0);
    unit.publish(v);
    costly.publish(v);
  }
  const auto r1 = unit.query(100.0, 300.0);
  const auto r7 = costly.query(100.0, 300.0);
  EXPECT_DOUBLE_EQ(r7.stats.delay, 7.0 * r1.stats.delay);
  EXPECT_EQ(r7.stats.dest_peers, r1.stats.dest_peers);
}

TEST(Pht, BinarySearchLookupFindsKeysCheaply) {
  std::uint32_t gets = 0;
  Pht pht(Pht::Config{.key_bits = 16, .leaf_capacity = 4,
                      .domain = {0.0, 1000.0}},
          [&gets](const std::string&) {
            ++gets;
            return Pht::flat_cost(2);
          });
  Rng rng(55);
  std::vector<double> values;
  for (int i = 0; i < 800; ++i) {
    values.push_back(rng.next_double(0.0, 1000.0));
    pht.publish(values.back());
  }
  for (int i = 0; i < 100; ++i) {
    const std::size_t pick = rng.next_index(values.size());
    const auto r = pht.lookup(values[pick]);
    // The published handle is among the results for its key.
    EXPECT_NE(std::find(r.handles.begin(), r.handles.end(),
                        static_cast<std::uint64_t>(pick)),
              r.handles.end());
    // O(log D) probes: D = 16 -> at most ~5 probes.
    EXPECT_LE(r.probes, 5u);
    EXPECT_EQ(r.stats.messages, 2u * r.probes);
    EXPECT_EQ(r.stats.latency, r.stats.delay);  // flat cost: one unit per hop
  }
  EXPECT_GT(gets, 0u);
}

TEST(Pht, LookupMissingValueReturnsEmpty) {
  Pht pht(Pht::Config{.key_bits = 12, .leaf_capacity = 4,
                      .domain = {0.0, 1000.0}},
          [](const std::string&) { return Pht::flat_cost(1); });
  pht.publish(10.0);
  const auto r = pht.lookup(990.0);
  EXPECT_TRUE(r.handles.empty());
  EXPECT_GE(r.probes, 1u);
}

TEST(Squid, ExactResultsOnChord) {
  chord::ChordNetwork net(400, 19);
  Squid squid(net, Squid::Config{.order = 10, .min_side_bits = 4});
  Rng rng(21);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 700; ++i) {
    pts.push_back({rng.next_double(0.0, 1000.0), rng.next_double(0.0, 1000.0)});
    squid.publish(pts.back());
  }
  for (int trial = 0; trial < 30; ++trial) {
    kautz::Box q(2);
    for (auto& iv : q) {
      iv.lo = rng.next_double(0.0, 800.0);
      iv.hi = iv.lo + rng.next_double(0.0, 200.0);
    }
    const auto r =
        squid.query(static_cast<chord::NodeId>(rng.next_index(400)), q);
    std::vector<std::uint64_t> expected;
    for (std::uint64_t h = 0; h < pts.size(); ++h) {
      if (pts[h][0] >= q[0].lo && pts[h][0] <= q[0].hi && pts[h][1] >= q[1].lo &&
          pts[h][1] <= q[1].hi) {
        expected.push_back(h);
      }
    }
    EXPECT_EQ(sorted(r.matches), expected);
    EXPECT_GT(r.stats.delay, 0.0);
  }
}

TEST(Scrap, ExactResultsOnSkipGraph) {
  const std::uint32_t order = 10;
  const double total = std::exp2(2.0 * order);
  skipgraph::SkipGraph graph(testsupport::random_keys(300, 23, 0.0, total - 1.0), 25);
  Scrap scrap(graph, Scrap::Config{.order = order, .min_side_bits = 4});
  Rng rng(27);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 700; ++i) {
    pts.push_back({rng.next_double(0.0, 1000.0), rng.next_double(0.0, 1000.0)});
    scrap.publish(pts.back());
  }
  for (int trial = 0; trial < 30; ++trial) {
    kautz::Box q(2);
    for (auto& iv : q) {
      iv.lo = rng.next_double(0.0, 800.0);
      iv.hi = iv.lo + rng.next_double(0.0, 200.0);
    }
    const auto r = scrap.query(
        static_cast<skipgraph::NodeId>(rng.next_index(graph.num_nodes())), q);
    std::vector<std::uint64_t> expected;
    for (std::uint64_t h = 0; h < pts.size(); ++h) {
      if (pts[h][0] >= q[0].lo && pts[h][0] <= q[0].hi && pts[h][1] >= q[1].lo &&
          pts[h][1] <= q[1].hi) {
        expected.push_back(h);
      }
    }
    EXPECT_EQ(sorted(r.matches), expected);
  }
}

// Golden invariant (b): all single-attribute schemes return the same answer
// on the same workload.
TEST(CrossScheme, AllSchemesAgreeOnSingleAttributeWorkload) {
  const std::uint64_t seed = 29;
  const std::size_t n_values = 900;

  auto fx = testsupport::make_single_index(250, seed);
  auto& fnet = fx->net;
  auto& armada_index = fx->index;

  can::CanNetwork cnet(250, seed);
  DcfCan dcf(cnet, DcfCan::Config{});

  skipgraph::SkipGraph graph(testsupport::random_keys(250, seed, 0.0, 1000.0), seed + 1);
  SkipGraphRangeIndex sg(graph, {0.0, 1000.0});

  Rng vals(seed + 2);
  std::vector<double> values;
  for (std::size_t i = 0; i < n_values; ++i) {
    const double v = vals.next_double(0.0, 1000.0);
    values.push_back(v);
    const auto h1 = armada_index.publish(v);
    const auto h2 = dcf.publish(v);
    const auto h3 = sg.publish(v);
    ASSERT_EQ(h1, i);
    ASSERT_EQ(h2, i);
    ASSERT_EQ(h3, i);
  }

  Rng rng(seed + 3);
  for (int trial = 0; trial < 40; ++trial) {
    const double lo = rng.next_double(0.0, 900.0);
    const double hi = lo + rng.next_double(0.0, 100.0);
    const auto a = sorted(armada_index.range_query(fnet.random_peer(), lo, hi)
                              .matches);
    const auto d = sorted(dcf.query(cnet.random_node(), lo, hi).matches);
    const auto s = sorted(
        sg.query(static_cast<skipgraph::NodeId>(rng.next_index(250)), lo, hi)
            .matches);
    EXPECT_EQ(a, d);
    EXPECT_EQ(a, s);
  }
}

// The multi-attribute schemes agree as well (exact-filtered).
TEST(CrossScheme, MultiAttributeSchemesAgree) {
  const std::uint64_t seed = 31;
  auto fx = testsupport::make_multi_index(
      200, seed, kautz::Box{{0.0, 1000.0}, {0.0, 1000.0}});
  auto& fnet = fx->net;
  auto& armada_index = fx->index;

  chord::ChordNetwork chord_net(200, seed);
  Squid squid(chord_net, Squid::Config{.order = 10, .min_side_bits = 4});

  const std::uint32_t order = 10;
  skipgraph::SkipGraph graph(
      testsupport::random_keys(200, seed, 0.0, std::exp2(2.0 * order) - 1.0), seed + 1);
  Scrap scrap(graph, Scrap::Config{.order = order, .min_side_bits = 4});

  Rng vals(seed + 2);
  for (int i = 0; i < 700; ++i) {
    const std::vector<double> p{vals.next_double(0.0, 1000.0),
                                vals.next_double(0.0, 1000.0)};
    armada_index.publish(p);
    squid.publish(p);
    scrap.publish(p);
  }

  Rng rng(seed + 3);
  for (int trial = 0; trial < 25; ++trial) {
    kautz::Box q(2);
    for (auto& iv : q) {
      iv.lo = rng.next_double(0.0, 700.0);
      iv.hi = iv.lo + rng.next_double(0.0, 300.0);
    }
    const auto a = sorted(armada_index.box_query(fnet.random_peer(), q).matches);
    const auto s = sorted(
        squid.query(static_cast<chord::NodeId>(rng.next_index(200)), q).matches);
    const auto c = sorted(
        scrap.query(static_cast<skipgraph::NodeId>(rng.next_index(200)), q)
            .matches);
    EXPECT_EQ(a, s);
    EXPECT_EQ(a, c);
  }
}

}  // namespace
}  // namespace armada::rq
