// The popularity-aware replication / result-cache subsystem (src/replica/):
// disabled-config bitwise equivalence, replica-served correctness against
// the global scan and the paper delay bound, cache TTL / publish / churn
// invalidation, churn repair, and determinism of the placement and cache
// hit/miss sequences (ARMADA_FUZZ_SEED overrides the seed sweep).
#include "replica/replica_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "armada/armada.h"
#include "fissione/churn_driver.h"
#include "sim/churn.h"
#include "support/test_networks.h"
#include "support/test_workloads.h"

namespace armada::replica {
namespace {

using core::RangeQueryResult;
using fissione::PeerId;
using testsupport::make_single_index;
using testsupport::publish_uniform_values;

std::vector<std::uint64_t> sorted(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Fixed CI seeds, or the single ARMADA_FUZZ_SEED override (same contract
/// as integration_fuzz_test — a failing seed replays the exact run).
std::vector<std::uint64_t> fuzz_seeds() {
  if (const char* env = std::getenv("ARMADA_FUZZ_SEED")) {
    char* end = nullptr;
    const std::uint64_t seed = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0') {
      std::fprintf(stderr,
                   "invalid ARMADA_FUZZ_SEED '%s' (expected an unsigned "
                   "integer)\n",
                   env);
      std::exit(2);
    }
    return {seed};
  }
  return {21, 22, 23};
}

ReplicationConfig small_scale_config() {
  ReplicationConfig cfg;
  cfg.max_replicas = 4;
  cfg.region_prefix_len = 4;
  cfg.hot_threshold = 4.0;
  cfg.cool_threshold = 0.5;
  cfg.cache_ttl = 8;
  return cfg;
}

// A disabled config (the default) must leave every query bitwise identical
// to an index that never attached the subsystem: identical stats structs,
// matches, and destinations, with every replica counter at zero.
TEST(ReplicaDisabled, DefaultConfigKeepsQueriesBitwise) {
  constexpr std::uint64_t kSeed = 91;
  auto plain = make_single_index(180, kSeed);
  auto attached = make_single_index(180, kSeed);
  publish_uniform_values(plain->index, 500, kSeed * 31 + 7);
  publish_uniform_values(attached->index, 500, kSeed * 31 + 7);
  attached->index.enable_replication(ReplicationConfig{});
  ASSERT_FALSE(attached->index.replicas()->config().enabled());

  Rng rng_a(kSeed + 5);
  Rng rng_b(kSeed + 5);
  for (int trial = 0; trial < 40; ++trial) {
    const auto qa = testsupport::random_subrange(
        rng_a, testsupport::kPaperDomain, 200.0);
    const auto qb = testsupport::random_subrange(
        rng_b, testsupport::kPaperDomain, 200.0);
    const PeerId ia = plain->random_issuer(rng_a);
    const PeerId ib = attached->random_issuer(rng_b);
    ASSERT_EQ(ia, ib);

    const RangeQueryResult ra = plain->index.range_query(ia, qa.lo, qa.hi);
    const RangeQueryResult rb = attached->index.range_query(ib, qb.lo, qb.hi);
    EXPECT_EQ(ra.stats, rb.stats);
    EXPECT_EQ(sorted(ra.matches), sorted(rb.matches));
    EXPECT_EQ(ra.destinations, rb.destinations);
  }
  EXPECT_EQ(attached->index.replicas()->stats(), ReplicaStats{});
}

// Heating one narrow range replicates its region; subsequent queries route
// the class to a holder (replica_routes both in the subsystem stats and the
// per-query QueryStats), keep answering exactly what a global scan finds,
// and stay within the paper delay bound hops <= |PeerID(issuer)|.
TEST(ReplicaRouting, HotRegionServedByReplicaMatchesScanAndDelayBound) {
  constexpr std::uint64_t kSeed = 17;
  auto fx = make_single_index(200, kSeed);
  publish_uniform_values(fx->index, 800, kSeed * 31 + 7);
  ReplicationConfig cfg = small_scale_config();
  cfg.cache_ttl = 0;  // isolate replication from caching
  ReplicaSet& rs = fx->index.enable_replication(cfg);

  constexpr double kLo = 300.0;
  constexpr double kHi = 305.0;
  const auto truth = sorted(fx->index.scan_matches({{kLo, kHi}}));
  Rng rng(kSeed + 9);
  std::uint64_t replica_served_queries = 0;
  for (int q = 0; q < 60; ++q) {
    const PeerId issuer = fx->random_issuer(rng);
    const RangeQueryResult r = fx->index.range_query(issuer, kLo, kHi);
    EXPECT_EQ(sorted(r.matches), truth);
    EXPECT_EQ(r.stats.coverage, 1.0);
    EXPECT_LE(r.stats.delay,
              static_cast<double>(fx->net.peer(issuer).peer_id.length()));
    replica_served_queries += r.stats.replica_routes > 0 ? 1 : 0;
  }
  EXPECT_GE(rs.stats().regions_replicated, 1u);
  EXPECT_GT(rs.stats().replica_routes, 0u);
  EXPECT_GT(rs.stats().placement_messages, 0u);
  EXPECT_GT(replica_served_queries, 0u);
  // Holders never sit on the region itself, and only live peers serve.
  for (const auto& [prefix, region] : rs.manager().regions()) {
    for (const auto& holder : region.holders) {
      EXPECT_TRUE(fx->net.is_alive(holder.peer));
      EXPECT_FALSE(rs.manager().is_primary(holder.peer, prefix));
    }
  }
}

// Cache-only config: a repeated (issuer, range) pair answers locally for
// free until the TTL expires, measured in query ticks.
TEST(ResultCaching, RepeatQueryHitsUntilTtlExpires) {
  constexpr std::uint64_t kSeed = 47;
  auto fx = make_single_index(160, kSeed);
  publish_uniform_values(fx->index, 500, kSeed * 31 + 7);
  ReplicationConfig cfg;
  cfg.max_replicas = 0;  // cache only
  cfg.cache_ttl = 3;
  ReplicaSet& rs = fx->index.enable_replication(cfg);

  Rng rng(kSeed + 3);
  const PeerId issuer = fx->random_issuer(rng);
  const RangeQueryResult first = fx->index.range_query(issuer, 200.0, 212.0);
  EXPECT_GT(first.stats.messages, 0u);
  EXPECT_EQ(first.stats.cache_hits, 0u);
  EXPECT_GT(rs.stats().cache_insertions, 0u);

  const RangeQueryResult hit = fx->index.range_query(issuer, 200.0, 212.0);
  EXPECT_EQ(hit.stats.messages, 0u);
  EXPECT_GT(hit.stats.cache_hits, 0u);
  EXPECT_EQ(hit.stats.dest_peers, 0u);
  EXPECT_EQ(sorted(hit.matches), sorted(first.matches));

  // Advance the query-tick clock past the TTL with unrelated queries.
  for (int i = 0; i < 4; ++i) {
    fx->index.range_query(issuer, 700.0 + 20.0 * i, 705.0 + 20.0 * i);
  }
  const RangeQueryResult expired = fx->index.range_query(issuer, 200.0, 212.0);
  EXPECT_GT(expired.stats.messages, 0u);
  EXPECT_EQ(expired.stats.cache_hits, 0u);
  EXPECT_EQ(sorted(expired.matches), sorted(first.matches));
}

// A publish into a cached range invalidates the covering entries: the next
// repeat query recomputes and includes the new object.
TEST(ResultCaching, PublishInvalidatesCoveringEntries) {
  constexpr std::uint64_t kSeed = 53;
  auto fx = make_single_index(160, kSeed);
  publish_uniform_values(fx->index, 500, kSeed * 31 + 7);
  ReplicationConfig cfg;
  cfg.max_replicas = 0;
  cfg.cache_ttl = 64;
  ReplicaSet& rs = fx->index.enable_replication(cfg);

  Rng rng(kSeed + 3);
  const PeerId issuer = fx->random_issuer(rng);
  fx->index.range_query(issuer, 100.0, 110.0);
  const RangeQueryResult warm = fx->index.range_query(issuer, 100.0, 110.0);
  EXPECT_GT(warm.stats.cache_hits, 0u);

  const std::uint64_t fresh = fx->index.publish(105.0);
  EXPECT_GT(rs.stats().cache_invalidated_publish, 0u);

  const RangeQueryResult after = fx->index.range_query(issuer, 100.0, 110.0);
  const auto truth = sorted(fx->index.scan_matches({{100.0, 110.0}}));
  EXPECT_EQ(sorted(after.matches), truth);
  EXPECT_NE(std::find(after.matches.begin(), after.matches.end(), fresh),
            after.matches.end());
}

// Killing a replica holder forces a repair: the holder list is re-derived
// against the new membership, re-synced over priced kHandoff transfers, and
// queries keep matching the global scan throughout.
TEST(ReplicaChurn, HolderCrashForcesRepairAndStaysCorrect) {
  constexpr std::uint64_t kSeed = 29;
  auto fx = make_single_index(220, kSeed);
  publish_uniform_values(fx->index, 700, kSeed * 31 + 7);
  ReplicationConfig cfg = small_scale_config();
  cfg.cache_ttl = 0;
  ReplicaSet& rs = fx->index.enable_replication(cfg);

  constexpr double kLo = 300.0;
  constexpr double kHi = 305.0;
  Rng rng(kSeed + 9);
  for (int q = 0; q < 20; ++q) {
    fx->index.range_query(fx->random_issuer(rng), kLo, kHi);
  }
  ASSERT_FALSE(rs.manager().regions().empty());
  const PeerId victim =
      rs.manager().regions().begin()->second.holders.front().peer;

  fissione::FissioneNetwork::MembershipReport report;
  fx->net.crash(victim, &report);
  const std::uint64_t messages_before = rs.stats().placement_messages;
  sim::Simulator sim;
  rs.on_membership(sim);
  sim.run();
  EXPECT_GT(rs.stats().repairs, 0u);
  EXPECT_GT(rs.stats().placement_messages, messages_before);

  const auto truth = sorted(fx->index.scan_matches({{kLo, kHi}}));
  for (int q = 0; q < 10; ++q) {
    const PeerId issuer = fx->random_issuer(rng);
    const RangeQueryResult r = fx->index.range_query(issuer, kLo, kHi);
    EXPECT_EQ(sorted(r.matches), truth);
    for (const auto& [prefix, region] : rs.manager().regions()) {
      for (const auto& holder : region.holders) {
        EXPECT_TRUE(fx->net.is_alive(holder.peer));
      }
    }
  }
}

// Full churn-driver wiring: membership events fire the hook, which clears
// the cache (counted) and repairs placement; queries after the churn burst
// still match a fresh global scan.
TEST(ReplicaChurn, DriverHookInvalidatesCacheAndKeepsQueriesExact) {
  constexpr std::uint64_t kSeed = 37;
  auto fx = make_single_index(220, kSeed);
  publish_uniform_values(fx->index, 700, kSeed * 31 + 7);
  ReplicaSet& rs = fx->index.enable_replication(small_scale_config());

  Rng rng(kSeed + 9);
  for (int q = 0; q < 20; ++q) {
    fx->index.range_query(fx->random_issuer(rng), 300.0, 305.0);
  }
  ASSERT_GT(rs.stats().cache_insertions, 0u);

  sim::Simulator sim;
  fissione::ChurnDriver driver(fx->net, sim);
  driver.set_membership_hook([&rs, &sim] { rs.on_membership(sim); });
  std::vector<sim::ChurnEvent> events;
  for (int i = 0; i < 12; ++i) {
    const auto kind = i % 3 == 0   ? sim::ChurnEventKind::kJoin
                      : i % 3 == 1 ? sim::ChurnEventKind::kLeave
                                   : sim::ChurnEventKind::kCrash;
    events.push_back({1.0 + static_cast<double>(i), kind});
  }
  driver.schedule(events);
  sim.run();
  EXPECT_GT(rs.stats().cache_invalidated_churn, 0u);

  const auto truth = sorted(fx->index.scan_matches({{300.0, 305.0}}));
  for (int q = 0; q < 10; ++q) {
    const RangeQueryResult r =
        fx->index.range_query(fx->random_issuer(rng), 300.0, 305.0);
    EXPECT_EQ(sorted(r.matches), truth);
  }
}

// Placement, routing, and the cache hit/miss sequence are deterministic
// functions of (network seed, workload seed): two fresh runs produce
// bit-identical per-query stats, matches, and final subsystem counters.
TEST(ReplicaDeterminism, PlacementAndCacheSequencesReplay) {
  for (const std::uint64_t seed : fuzz_seeds()) {
    std::vector<sim::QueryStats> stats[2];
    std::vector<std::vector<std::uint64_t>> matches[2];
    ReplicaStats final_stats[2];
    std::vector<std::string> regions[2];
    for (int run = 0; run < 2; ++run) {
      auto fx = make_single_index(180, seed);
      publish_uniform_values(fx->index, 600, seed * 31 + 7);
      ReplicaSet& rs = fx->index.enable_replication(small_scale_config());
      Rng rng(seed + 13);
      for (int q = 0; q < 50; ++q) {
        // Quantized ranges so some queries repeat (cache traffic) while
        // others spread (popularity decay and teardown paths).
        const double lo = 5.0 * static_cast<double>(rng.next_u64(40));
        const PeerId issuer = fx->random_issuer(rng);
        const RangeQueryResult r =
            fx->index.range_query(issuer, lo, lo + 5.0);
        stats[run].push_back(r.stats);
        matches[run].push_back(sorted(r.matches));
      }
      final_stats[run] = rs.stats();
      for (const auto& [prefix, region] : rs.manager().regions()) {
        regions[run].push_back(prefix.to_string());
      }
    }
    EXPECT_EQ(stats[0], stats[1]);
    EXPECT_EQ(matches[0], matches[1]);
    EXPECT_EQ(final_stats[0], final_stats[1]);
    EXPECT_EQ(regions[0], regions[1]);
  }
}

}  // namespace
}  // namespace armada::replica
