#include <gtest/gtest.h>

#include <algorithm>

#include "fissione/types.h"
#include "sim/workload.h"
#include "support/test_networks.h"
#include "support/test_workloads.h"
#include "util/check.h"
#include "util/stats.h"

namespace armada::sim {
namespace {

TEST(ZipfValues, StaysInDomainAndSkews) {
  ZipfValues gen({0.0, 1000.0}, 100, 1.2, Rng(3));
  Histogram first_decile;
  const int n = 20000;
  int low = 0;
  for (int i = 0; i < n; ++i) {
    const double v = gen.next();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1000.0);
    if (v < 100.0) {
      ++low;
    }
  }
  // With exponent 1.2, far more than 10% of the mass sits in the first
  // decile of the domain.
  EXPECT_GT(low, n / 4);
}

TEST(ZipfValues, ZeroExponentIsUniform) {
  ZipfValues gen({0.0, 1.0}, 50, 0.0, Rng(5));
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) {
    s.add(gen.next());
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(ClusteredValues, ConcentratesAroundCenters) {
  ClusteredValues gen({0.0, 1000.0}, {{200.0, 5.0, 1.0}, {800.0, 5.0, 1.0}},
                      Rng(7));
  int near_centers = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const double v = gen.next();
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1000.0);
    if (std::abs(v - 200.0) < 20.0 || std::abs(v - 800.0) < 20.0) {
      ++near_centers;
    }
  }
  EXPECT_GT(near_centers, n * 9 / 10);
}

TEST(ClusteredValues, RespectsWeights) {
  ClusteredValues gen({0.0, 1000.0}, {{200.0, 5.0, 3.0}, {800.0, 5.0, 1.0}},
                      Rng(9));
  int low = 0;
  const int n = 8000;
  for (int i = 0; i < n; ++i) {
    if (gen.next() < 500.0) {
      ++low;
    }
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.75, 0.03);
}

// The motivation for the online rebalancer (src/rebalance/): with
// rebalancing off, the peak per-peer service load strictly worsens as the
// Zipf exponent grows — skew concentrates queries on the peers owning the
// hot key ranges.
TEST(WorkloadSkew, PeakServiceLoadWorsensWithZipfExponent) {
  const auto peak_for = [](double s) {
    auto fx = testsupport::make_single_index(150, 29);
    testsupport::publish_uniform_values(fx->index, 500, 61);
    fissione::ServiceLoadMap load;
    fx->net.set_service_load(&load);

    ZipfValues zipf(testsupport::kPaperDomain, 150, s, Rng(43));
    Rng rng(87);
    for (int q = 0; q < 400; ++q) {
      const double c = zipf.next();
      fx->index.range_query(fx->random_issuer(rng), std::max(0.0, c - 10.0),
                            std::min(1000.0, c + 10.0));
    }
    std::uint64_t peak = 0;
    for (const auto& [p, count] : load) {
      peak = std::max(peak, count);
    }
    return peak;
  };

  const std::uint64_t p06 = peak_for(0.6);
  const std::uint64_t p10 = peak_for(1.0);
  const std::uint64_t p14 = peak_for(1.4);
  EXPECT_LT(p06, p10);
  EXPECT_LT(p10, p14);
}

TEST(Gini, KnownValues) {
  EXPECT_NEAR(gini({1.0, 1.0, 1.0, 1.0}), 0.0, 1e-12);
  // All load on one of four peers: gini = (n-1)/n = 0.75.
  EXPECT_NEAR(gini({0.0, 0.0, 0.0, 8.0}), 0.75, 1e-12);
  EXPECT_THROW(gini({0.0, 0.0}), CheckError);
  EXPECT_THROW(gini({}), CheckError);
}

TEST(Gini, MonotoneInConcentration) {
  EXPECT_LT(gini({2.0, 2.0, 2.0, 2.0}), gini({1.0, 1.0, 2.0, 4.0}));
  EXPECT_LT(gini({1.0, 1.0, 2.0, 4.0}), gini({0.0, 0.0, 1.0, 7.0}));
}

}  // namespace
}  // namespace armada::sim
