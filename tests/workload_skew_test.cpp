#include <gtest/gtest.h>

#include "sim/workload.h"
#include "util/check.h"
#include "util/stats.h"

namespace armada::sim {
namespace {

TEST(ZipfValues, StaysInDomainAndSkews) {
  ZipfValues gen({0.0, 1000.0}, 100, 1.2, Rng(3));
  Histogram first_decile;
  const int n = 20000;
  int low = 0;
  for (int i = 0; i < n; ++i) {
    const double v = gen.next();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1000.0);
    if (v < 100.0) {
      ++low;
    }
  }
  // With exponent 1.2, far more than 10% of the mass sits in the first
  // decile of the domain.
  EXPECT_GT(low, n / 4);
}

TEST(ZipfValues, ZeroExponentIsUniform) {
  ZipfValues gen({0.0, 1.0}, 50, 0.0, Rng(5));
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) {
    s.add(gen.next());
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(ClusteredValues, ConcentratesAroundCenters) {
  ClusteredValues gen({0.0, 1000.0}, {{200.0, 5.0, 1.0}, {800.0, 5.0, 1.0}},
                      Rng(7));
  int near_centers = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const double v = gen.next();
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1000.0);
    if (std::abs(v - 200.0) < 20.0 || std::abs(v - 800.0) < 20.0) {
      ++near_centers;
    }
  }
  EXPECT_GT(near_centers, n * 9 / 10);
}

TEST(ClusteredValues, RespectsWeights) {
  ClusteredValues gen({0.0, 1000.0}, {{200.0, 5.0, 3.0}, {800.0, 5.0, 1.0}},
                      Rng(9));
  int low = 0;
  const int n = 8000;
  for (int i = 0; i < n; ++i) {
    if (gen.next() < 500.0) {
      ++low;
    }
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.75, 0.03);
}

TEST(Gini, KnownValues) {
  EXPECT_NEAR(gini({1.0, 1.0, 1.0, 1.0}), 0.0, 1e-12);
  // All load on one of four peers: gini = (n-1)/n = 0.75.
  EXPECT_NEAR(gini({0.0, 0.0, 0.0, 8.0}), 0.75, 1e-12);
  EXPECT_THROW(gini({0.0, 0.0}), CheckError);
  EXPECT_THROW(gini({}), CheckError);
}

TEST(Gini, MonotoneInConcentration) {
  EXPECT_LT(gini({2.0, 2.0, 2.0, 2.0}), gini({1.0, 1.0, 2.0, 4.0}));
  EXPECT_LT(gini({1.0, 1.0, 2.0, 4.0}), gini({0.0, 0.0, 1.0, 7.0}));
}

}  // namespace
}  // namespace armada::sim
