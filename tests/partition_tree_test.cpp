#include "kautz/partition_tree.h"

#include <gtest/gtest.h>

#include "kautz/kautz_space.h"
#include "util/check.h"
#include "util/rng.h"

namespace armada::kautz {
namespace {

TEST(PartitionTreeSingle, PaperFigure3Examples) {
  // P(2,4) over [0, 1] (paper Figure 3).
  const auto tree = PartitionTree::single(2, 4, {0.0, 1.0});

  // Node U with label 0101 represents [0, 1/24].
  const Interval u = tree.interval_for(KautzString::parse("0101"));
  EXPECT_DOUBLE_EQ(u.lo, 0.0);
  EXPECT_NEAR(u.hi, 1.0 / 24.0, 1e-12);

  // Attribute value 0.1 lies in leaf P with label 0120.
  EXPECT_EQ(tree.single_hash(0.1).to_string(), "0120");

  // The range of [0.1, 0.24] is the Kautz region <0120, 0202> containing
  // exactly the four adjoining leaves P, R, W, S.
  const KautzRegion r = tree.region_for(0.1, 0.24);
  EXPECT_EQ(r.lo().to_string(), "0120");
  EXPECT_EQ(r.hi().to_string(), "0202");
  EXPECT_EQ(r.size(), 4u);
}

TEST(PartitionTreeSingle, RootChildrenSplitIntoThirds) {
  const auto tree = PartitionTree::single(2, 3, {0.0, 1.0});
  const Interval a = tree.interval_for(KautzString::parse("0"));
  const Interval b = tree.interval_for(KautzString::parse("1"));
  const Interval c = tree.interval_for(KautzString::parse("2"));
  EXPECT_DOUBLE_EQ(a.lo, 0.0);
  EXPECT_NEAR(a.hi, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(b.lo, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(b.hi, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.lo, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(c.hi, 1.0);
}

TEST(PartitionTreeSingle, LeafIntervalsTileTheRange) {
  const auto tree = PartitionTree::single(2, 5, {0.0, 1000.0});
  const auto leaves = enumerate(2, 5);
  double cursor = 0.0;
  for (const auto& leaf : leaves) {
    const Interval iv = tree.interval_for(leaf);
    EXPECT_NEAR(iv.lo, cursor, 1e-9) << leaf.to_string();
    EXPECT_GT(iv.hi, iv.lo);
    cursor = iv.hi;
  }
  EXPECT_DOUBLE_EQ(cursor, 1000.0);
}

TEST(PartitionTreeSingle, HashIsInverseOfInterval) {
  const auto tree = PartitionTree::single(2, 6, {-50.0, 75.0});
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.next_double(-50.0, 75.0);
    const auto leaf = tree.single_hash(v);
    const Interval iv = tree.interval_for(leaf);
    EXPECT_GE(v, iv.lo);
    EXPECT_LT(v, iv.hi == 75.0 ? 75.0 + 1e-9 : iv.hi);
  }
  // Top of range maps to the last leaf.
  EXPECT_EQ(tree.single_hash(75.0),
            max_extension(KautzString(2), 6));
  EXPECT_EQ(tree.single_hash(-50.0), min_extension(KautzString(2), 6));
}

TEST(PartitionTreeSingle, OrderPreserving) {
  const auto tree = PartitionTree::single(2, 8, {0.0, 1000.0});
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.next_double(0.0, 1000.0);
    const double b = rng.next_double(0.0, 1000.0);
    const auto fa = tree.single_hash(a);
    const auto fb = tree.single_hash(b);
    if (a <= b) {
      EXPECT_LE(a <= b ? fa : fb, a <= b ? fb : fa);
    }
    if (fa < fb) {
      EXPECT_LT(a, b);
    }
  }
}

// Definition 2 (interval-preserving): the image of [a,b] is exactly the
// Kautz region <F(a), F(b)>. Equivalently, a leaf's interval intersects
// [a,b] iff the leaf lies in the region.
TEST(PartitionTreeSingle, IntervalPreservingExhaustive) {
  const auto tree = PartitionTree::single(2, 5, {0.0, 1.0});
  const auto leaves = enumerate(2, 5);
  Rng rng(29);
  for (int trial = 0; trial < 300; ++trial) {
    double a = rng.next_double();
    double b = rng.next_double();
    if (b < a) {
      std::swap(a, b);
    }
    const KautzRegion r = tree.region_for(a, b);
    for (const auto& leaf : leaves) {
      const Interval iv = tree.interval_for(leaf);
      const bool hits = interval_intersects(iv, {a, b}, 1.0);
      EXPECT_EQ(hits, r.contains(leaf))
          << "leaf " << leaf.to_string() << " [" << iv.lo << "," << iv.hi
          << ") query [" << a << "," << b << "]";
    }
  }
}

TEST(PartitionTreeMulti, RoundRobinSplitsAlternateAttributes) {
  // m=2 over [0,1]^2: level 0 splits attr 0 in thirds, level 1 splits attr 1
  // in halves, level 2 splits attr 0 again.
  const auto tree = PartitionTree(2, 3, Box{{0.0, 1.0}, {0.0, 1.0}});
  const Box root0 = tree.box_for(KautzString::parse("0"));
  EXPECT_NEAR(root0[0].hi, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(root0[1].lo, 0.0);
  EXPECT_DOUBLE_EQ(root0[1].hi, 1.0);

  const Box l2 = tree.box_for(KautzString::parse("01"));
  EXPECT_NEAR(l2[0].hi, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(l2[1].hi, 0.5);

  const Box l3 = tree.box_for(KautzString::parse("010"));
  EXPECT_NEAR(l3[0].hi, 1.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(l3[1].hi, 0.5);
}

TEST(PartitionTreeMulti, HashBoxRoundTrip) {
  const auto tree = PartitionTree(2, 7, Box{{0.0, 100.0}, {-10.0, 10.0}, {0.0, 1.0}});
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const std::vector<double> p{rng.next_double(0, 100),
                                rng.next_double(-10, 10), rng.next_double()};
    const auto leaf = tree.multiple_hash(p);
    EXPECT_EQ(leaf.length(), 7u);
    const Box box = tree.box_for(leaf);
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_GE(p[d], box[d].lo);
      EXPECT_LE(p[d], box[d].hi);
    }
  }
}

// Definition 4: partial-order preserving.
TEST(PartitionTreeMulti, PartialOrderPreserving) {
  const auto tree = PartitionTree(2, 9, Box{{0.0, 1.0}, {0.0, 1.0}});
  Rng rng(37);
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> lo{rng.next_double(), rng.next_double()};
    std::vector<double> hi{lo[0] + rng.next_double() * (1 - lo[0]),
                           lo[1] + rng.next_double() * (1 - lo[1])};
    EXPECT_LE(tree.multiple_hash(lo), tree.multiple_hash(hi));
  }
}

TEST(PartitionTreeMulti, BoxIntersectsMatchesBruteForce) {
  const auto tree = PartitionTree(2, 5, Box{{0.0, 1.0}, {0.0, 1.0}});
  const auto leaves = enumerate(2, 5);
  Rng rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    Box q(2);
    for (auto& iv : q) {
      iv.lo = rng.next_double();
      iv.hi = iv.lo + rng.next_double() * (1.0 - iv.lo);
    }
    for (const auto& leaf : leaves) {
      const Box box = tree.box_for(leaf);
      bool expected = true;
      for (std::size_t d = 0; d < 2; ++d) {
        expected =
            expected && interval_intersects(box[d], q[d], 1.0);
      }
      EXPECT_EQ(tree.box_intersects(leaf, q), expected) << leaf.to_string();
    }
  }
}

// The destinations of a multi-attribute query all live inside the bounding
// region <Multiple_hash(lo corner), Multiple_hash(hi corner)> (paper §5).
TEST(PartitionTreeMulti, BoundingRegionContainsAllIntersectingLeaves) {
  const auto tree = PartitionTree(2, 6, Box{{0.0, 1.0}, {0.0, 1.0}});
  const auto leaves = enumerate(2, 6);
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    Box q(2);
    for (auto& iv : q) {
      iv.lo = rng.next_double();
      iv.hi = iv.lo + rng.next_double() * (1.0 - iv.lo);
    }
    const KautzRegion r = tree.bounding_region(q);
    for (const auto& leaf : leaves) {
      if (tree.box_intersects(leaf, q)) {
        EXPECT_TRUE(r.contains(leaf)) << leaf.to_string();
      }
    }
  }
}

TEST(PartitionTree, RejectsBadInput) {
  EXPECT_THROW(PartitionTree::single(2, 0, {0.0, 1.0}), CheckError);
  EXPECT_THROW(PartitionTree::single(2, 4, {1.0, 1.0}), CheckError);
  EXPECT_THROW(PartitionTree(2, 4, Box{}), CheckError);
  const auto tree = PartitionTree::single(2, 4, {0.0, 1.0});
  EXPECT_THROW(tree.single_hash(1.5), CheckError);
  EXPECT_THROW(tree.multiple_hash({0.5, 0.5}), CheckError);
  EXPECT_THROW(tree.region_for(0.9, 0.1), CheckError);
}

TEST(PartitionTree, SingleHashIsMultipleHashWithOneAttribute) {
  const auto tree = PartitionTree::single(2, 6, {0.0, 1000.0});
  Rng rng(47);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.next_double(0, 1000);
    EXPECT_EQ(tree.single_hash(v), tree.multiple_hash({v}));
  }
}

}  // namespace
}  // namespace armada::kautz
