#include "fissione/network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "kautz/kautz_space.h"
#include "util/check.h"

namespace armada::fissione {
namespace {

using kautz::KautzString;

TEST(FissioneBootstrap, ThreeSeedPeers) {
  FissioneNetwork net(FissioneNetwork::Config{}, 1);
  EXPECT_EQ(net.num_peers(), 3u);
  net.check_invariants();
  // Seed peers own "0", "1", "2" and are pairwise neighbors (K(2,1)).
  std::unordered_set<std::string> ids;
  for (PeerId p : net.alive_peers()) {
    ids.insert(net.peer(p).peer_id.to_string());
    EXPECT_EQ(net.peer(p).out_neighbors.size(), 2u);
  }
  EXPECT_EQ(ids, (std::unordered_set<std::string>{"0", "1", "2"}));
}

TEST(FissioneJoin, InvariantsAfterEachOfManyJoins) {
  FissioneNetwork net(FissioneNetwork::Config{}, 2);
  for (int i = 0; i < 60; ++i) {
    net.join();
    net.check_invariants();
    EXPECT_LE(net.max_neighbor_length_gap(), 1u);
  }
  EXPECT_EQ(net.num_peers(), 63u);
}

TEST(FissioneJoin, BalancedIdLengths) {
  auto net = FissioneNetwork::build(2000, 3);
  const auto hist = net.peer_id_length_histogram();
  const double log_n = std::log2(2000.0);
  // Paper §3: max PeerID length < 2 log2 N, average < log2 N.
  EXPECT_LT(static_cast<double>(hist.max()), 2 * log_n);
  EXPECT_LT(hist.mean(), log_n);
}

TEST(FissioneJoin, AverageDegreeAboutFour) {
  auto net = FissioneNetwork::build(1000, 4);
  EXPECT_NEAR(net.average_degree(), 4.0, 0.8);
}

TEST(FissioneRouting, ReachesOwnerWithinIdLengthHops) {
  auto net = FissioneNetwork::build(500, 5);
  Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    const KautzString target = kautz::random_string(rng, 2, 48);
    const PeerId from =
        net.alive_peers()[rng.next_index(net.alive_peers().size())];
    const RouteResult r = net.route(from, target);
    EXPECT_EQ(r.owner, net.owner_of(target));
    EXPECT_LE(r.hops, net.peer(from).peer_id.length());
    EXPECT_EQ(r.path.size(), static_cast<std::size_t>(r.hops) + 1);
    EXPECT_EQ(r.path.front(), from);
    EXPECT_EQ(r.path.back(), r.owner);
  }
}

TEST(FissioneRouting, ZeroHopsWhenSourceOwns) {
  auto net = FissioneNetwork::build(100, 6);
  Rng rng(7);
  const KautzString target = kautz::random_string(rng, 2, 48);
  const PeerId owner = net.owner_of(target);
  const RouteResult r = net.route(owner, target);
  EXPECT_EQ(r.hops, 0u);
  EXPECT_EQ(r.owner, owner);
}

TEST(FissioneRouting, PathHopsFollowOutEdges) {
  auto net = FissioneNetwork::build(300, 8);
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const KautzString target = kautz::random_string(rng, 2, 48);
    const RouteResult r = net.route(
        net.alive_peers()[rng.next_index(net.alive_peers().size())], target);
    for (std::size_t h = 0; h + 1 < r.path.size(); ++h) {
      const auto& out = net.peer(r.path[h]).out_neighbors;
      EXPECT_NE(std::find(out.begin(), out.end(), r.path[h + 1]), out.end());
    }
  }
}

TEST(FissioneData, PublishLookupRoundTrip) {
  auto net = FissioneNetwork::build(200, 9);
  Rng rng(13);
  std::vector<KautzString> ids;
  for (std::uint64_t v = 0; v < 100; ++v) {
    ids.push_back(kautz::random_string(rng, 2, 48));
    net.publish(ids.back(), v);
  }
  EXPECT_EQ(net.total_objects(), 100u);
  for (std::uint64_t v = 0; v < 100; ++v) {
    const auto payloads = net.lookup(
        net.alive_peers()[rng.next_index(net.alive_peers().size())], ids[v]);
    ASSERT_EQ(payloads.size(), 1u) << ids[v].to_string();
    EXPECT_EQ(payloads[0], v);
  }
}

TEST(FissioneData, ObjectsFollowSplits) {
  FissioneNetwork net(FissioneNetwork::Config{}, 10);
  Rng rng(17);
  for (std::uint64_t v = 0; v < 200; ++v) {
    net.publish(kautz::random_string(rng, 2, 48), v);
  }
  for (int i = 0; i < 50; ++i) {
    net.join();
  }
  EXPECT_EQ(net.total_objects(), 200u);
  net.check_invariants();  // includes placement checks
}

TEST(FissioneLeave, GracefulDepartureTransfersObjects) {
  auto net = FissioneNetwork::build(80, 11);
  Rng rng(19);
  for (std::uint64_t v = 0; v < 300; ++v) {
    net.publish(kautz::random_string(rng, 2, 48), v);
  }
  for (int i = 0; i < 40; ++i) {
    const auto& alive = net.alive_peers();
    net.leave(alive[rng.next_index(alive.size())]);
    net.check_invariants();
    EXPECT_LE(net.max_neighbor_length_gap(), 1u);
  }
  EXPECT_EQ(net.num_peers(), 40u);
  EXPECT_EQ(net.total_objects(), 300u);
}

TEST(FissioneCrash, LosesOnlyLocalObjectsAndHeals) {
  auto net = FissioneNetwork::build(100, 12);
  Rng rng(23);
  for (std::uint64_t v = 0; v < 400; ++v) {
    net.publish(kautz::random_string(rng, 2, 48), v);
  }
  const std::size_t before = net.total_objects();
  const auto& alive = net.alive_peers();
  const PeerId victim = alive[rng.next_index(alive.size())];
  const std::size_t victim_objects = net.peer(victim).store.size();
  const std::size_t lost = net.crash(victim);
  EXPECT_EQ(lost, victim_objects);
  EXPECT_EQ(net.total_objects(), before - lost);
  net.check_invariants();
  // Routing still works everywhere after the failure is healed.
  for (int i = 0; i < 50; ++i) {
    const KautzString target = kautz::random_string(rng, 2, 48);
    const PeerId from =
        net.alive_peers()[rng.next_index(net.alive_peers().size())];
    EXPECT_EQ(net.route(from, target).owner, net.owner_of(target));
  }
}

TEST(FissioneLeave, RefusesToDropBelowBootstrap) {
  FissioneNetwork net(FissioneNetwork::Config{}, 13);
  EXPECT_THROW(net.leave(net.alive_peers().front()), CheckError);
}

TEST(FissioneHash, KautzHashDeterministicAndValid) {
  FissioneNetwork net(FissioneNetwork::Config{}, 14);
  const auto a = net.kautz_hash("hello");
  const auto b = net.kautz_hash("hello");
  const auto c = net.kautz_hash("world");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.length(), net.config().object_id_length);
}

TEST(FissioneJoin, PlacementHopsBounded) {
  auto net = FissioneNetwork::build(500, 15);
  for (int i = 0; i < 20; ++i) {
    const auto stats = net.join();
    EXPECT_LE(stats.placement_hops,
              static_cast<std::uint32_t>(
                  2 * std::log2(static_cast<double>(net.num_peers())) + 2));
  }
}

// Property sweep: random churn mixes at several seeds keep every invariant.
class FissioneChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FissioneChurnTest, InvariantsUnderRandomChurn) {
  const std::uint64_t seed = GetParam();
  auto net = FissioneNetwork::build(60, seed);
  Rng rng(seed * 7919 + 1);
  for (std::uint64_t v = 0; v < 100; ++v) {
    net.publish(kautz::random_string(rng, 2, 48), v);
  }
  for (int step = 0; step < 120; ++step) {
    const double dice = rng.next_double();
    if (dice < 0.45 || net.num_peers() <= 10) {
      net.join();
    } else if (dice < 0.9) {
      const auto& alive = net.alive_peers();
      net.leave(alive[rng.next_index(alive.size())]);
    } else {
      const auto& alive = net.alive_peers();
      net.crash(alive[rng.next_index(alive.size())]);
    }
    if (step % 10 == 0) {
      net.check_invariants();
      EXPECT_LE(net.max_neighbor_length_gap(), 1u);
    }
  }
  net.check_invariants();
  // Routing correctness after heavy churn.
  for (int i = 0; i < 100; ++i) {
    const KautzString target = kautz::random_string(rng, 2, 48);
    const PeerId from =
        net.alive_peers()[rng.next_index(net.alive_peers().size())];
    EXPECT_EQ(net.route(from, target).owner, net.owner_of(target));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FissioneChurnTest,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 42, 1234));

// build_snapshot() must be bit-identical to build(): same tree, same
// PeerIDs, same neighbor tables, same RNG position afterward — it only
// skips the routed placement walk (pure measurement). Structure AND the
// subsequent evolution must match.
TEST(FissioneSnapshot, MatchesRoutedBuildExactly) {
  for (std::uint64_t seed : {7u, 99u}) {
    FissioneNetwork a = FissioneNetwork::build(120, seed);
    FissioneNetwork b = FissioneNetwork::build_snapshot(
        120, seed, FissioneNetwork::Config{});
    auto expect_identical = [](FissioneNetwork& x, FissioneNetwork& y) {
      ASSERT_EQ(x.num_peers(), y.num_peers());
      ASSERT_EQ(x.alive_peers(), y.alive_peers());
      for (PeerId p : x.alive_peers()) {
        const Peer px = x.peer(p);
        const Peer py = y.peer(p);
        ASSERT_EQ(px.peer_id, py.peer_id);
        ASSERT_TRUE(std::equal(px.out_neighbors.begin(),
                               px.out_neighbors.end(),
                               py.out_neighbors.begin(),
                               py.out_neighbors.end()));
        ASSERT_TRUE(std::equal(px.in_neighbors.begin(),
                               px.in_neighbors.end(),
                               py.in_neighbors.begin(),
                               py.in_neighbors.end()));
      }
      // Same RNG position: the next draws coincide.
      ASSERT_EQ(x.random_object_id(), y.random_object_id());
      ASSERT_EQ(x.random_peer(), y.random_peer());
    };
    expect_identical(a, b);
    b.check_invariants();
    // The trajectories stay aligned through further routed joins and a
    // snapshot-grown extension.
    a.join();
    b.join();
    expect_identical(a, b);
    while (a.num_peers() < 160) {
      a.join();
    }
    b.grow_snapshot(160);
    expect_identical(a, b);
  }
}

}  // namespace
}  // namespace armada::fissione
