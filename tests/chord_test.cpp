#include "chord/chord.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace armada::chord {
namespace {

TEST(RingRange, WrapAwareIntervals) {
  EXPECT_TRUE(in_ring_range(10, 20, 15));
  EXPECT_TRUE(in_ring_range(10, 20, 20));
  EXPECT_FALSE(in_ring_range(10, 20, 10));
  EXPECT_FALSE(in_ring_range(10, 20, 25));
  // Wrapping interval.
  EXPECT_TRUE(in_ring_range(~0ull - 5, 5, 2));
  EXPECT_TRUE(in_ring_range(~0ull - 5, 5, ~0ull));
  EXPECT_FALSE(in_ring_range(~0ull - 5, 5, 100));
  // Degenerate = whole ring.
  EXPECT_TRUE(in_ring_range(7, 7, 123));
}

TEST(Chord, InvariantsAndOwnership) {
  ChordNetwork net(300, 5);
  net.check_invariants();
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Key k = rng.engine()();
    const NodeId owner = net.owner_of(k);
    // The owner's predecessor precedes k.
    const NodeId pred = net.predecessor_node(owner);
    EXPECT_TRUE(in_ring_range(net.node_key(pred), net.node_key(owner), k));
  }
}

TEST(Chord, RoutingReachesOwnerInLogHops) {
  ChordNetwork net(1000, 9);
  Rng rng(11);
  const double log_n = std::log2(1000.0);
  double total = 0.0;
  for (int i = 0; i < 300; ++i) {
    const NodeId from = static_cast<NodeId>(rng.next_index(net.num_nodes()));
    const Key k = rng.engine()();
    const ChordRoute r = net.route(from, k);
    EXPECT_EQ(r.owner, net.owner_of(k));
    EXPECT_LE(r.stats.delay, 2 * log_n + 5);
    // Walk currency: one message per hop; ConstantHop prices latency == delay.
    EXPECT_EQ(r.stats.delay, static_cast<double>(r.stats.messages));
    EXPECT_EQ(r.stats.latency, r.stats.delay);
    total += r.stats.delay;
  }
  // Classic expectation: ~ (1/2) log2 N average.
  EXPECT_LT(total / 300.0, log_n);
  EXPECT_GT(total / 300.0, 0.25 * log_n);
}

TEST(Chord, RouteToOwnKeyIsFree) {
  ChordNetwork net(50, 13);
  const ChordRoute r = net.route(7, net.node_key(7));
  EXPECT_EQ(r.owner, 7u);
  EXPECT_EQ(r.stats.delay, 0.0);
  EXPECT_EQ(r.stats.messages, 0u);
}

TEST(Chord, SuccessorPredecessorAreInverse) {
  ChordNetwork net(64, 15);
  for (NodeId id = 0; id < 64; ++id) {
    EXPECT_EQ(net.predecessor_node(net.successor_node(id)), id);
  }
}

}  // namespace
}  // namespace armada::chord
