#include "can/can_network.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace armada::can {
namespace {

TEST(Zone, GeometryAndContainment) {
  const Zone z{.x_num = 1, .y_num = 0, .x_bits = 1, .y_bits = 0};
  EXPECT_DOUBLE_EQ(z.x_lo(), 0.5);
  EXPECT_DOUBLE_EQ(z.x_hi(), 1.0);
  EXPECT_DOUBLE_EQ(z.y_lo(), 0.0);
  EXPECT_DOUBLE_EQ(z.y_hi(), 1.0);
  EXPECT_TRUE(z.contains(0.5, 0.0));
  EXPECT_TRUE(z.contains(0.75, 0.99));
  EXPECT_FALSE(z.contains(0.49, 0.5));
}

TEST(Zone, AdjacencyIncludesTorusWrap) {
  const Zone left{.x_num = 0, .y_num = 0, .x_bits = 1, .y_bits = 0};
  const Zone right{.x_num = 1, .y_num = 0, .x_bits = 1, .y_bits = 0};
  EXPECT_TRUE(left.adjacent(right));   // shared internal edge
  EXPECT_TRUE(right.adjacent(left));   // and the wrap edge
  const Zone q00{.x_num = 0, .y_num = 0, .x_bits = 1, .y_bits = 1};
  const Zone q11{.x_num = 1, .y_num = 1, .x_bits = 1, .y_bits = 1};
  // Corner-only contact is not adjacency.
  EXPECT_FALSE(q00.adjacent(q11));
}

TEST(Zone, TorusDistance) {
  const Zone z{.x_num = 0, .y_num = 0, .x_bits = 2, .y_bits = 2};  // [0,.25)^2
  EXPECT_DOUBLE_EQ(z.distance2(0.1, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(z.distance2(0.5, 0.1), 0.25 * 0.25);
  // Wrap: x = 0.95 is 0.05 away from x_lo = 0 across the seam.
  EXPECT_NEAR(z.distance2(0.95, 0.1), 0.05 * 0.05, 1e-12);
}

TEST(CanNetwork, InvariantsAtSeveralSizes) {
  for (std::size_t n : {1u, 2u, 3u, 10u, 100u, 500u}) {
    CanNetwork net(n, 7);
    EXPECT_EQ(net.num_nodes(), n);
    net.check_invariants();
  }
}

TEST(CanNetwork, NeighborsMatchBruteForce) {
  CanNetwork net(120, 9);
  net.check_neighbors_brute_force();
}

TEST(CanNetwork, NodeAtFindsContainingZone) {
  CanNetwork net(300, 11);
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_double();
    const double y = rng.next_double();
    const NodeId id = net.node_at(x, y);
    EXPECT_TRUE(net.zone(id).contains(x, y));
  }
}

TEST(CanNetwork, GreedyRoutingReachesTarget) {
  CanNetwork net(400, 15);
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.next_double();
    const double y = rng.next_double();
    const NodeId from = static_cast<NodeId>(rng.next_index(net.num_nodes()));
    const CanRoute r = net.route(from, x, y);
    EXPECT_EQ(r.final_node, net.node_at(x, y));
  }
}

TEST(CanNetwork, RoutingScalesAsSqrtN) {
  // Average greedy path length should grow like sqrt(N) (paper §2 notes
  // DCF-CAN delay > O(N^{1/d})); sanity-check the trend.
  Rng rng(19);
  double mean_small = 0.0;
  double mean_large = 0.0;
  for (int rep = 0; rep < 2; ++rep) {
    const std::size_t n = rep == 0 ? 100 : 1600;
    CanNetwork net(n, 21 + rep);
    double total = 0.0;
    const int trials = 300;
    for (int i = 0; i < trials; ++i) {
      const CanRoute r =
          net.route(static_cast<NodeId>(rng.next_index(net.num_nodes())),
                    rng.next_double(), rng.next_double());
      total += r.stats.delay;
    }
    (rep == 0 ? mean_small : mean_large) = total / trials;
  }
  // 16x nodes => ~4x hops; allow generous tolerance.
  EXPECT_GT(mean_large, 2.0 * mean_small);
  EXPECT_LT(mean_large, 8.0 * mean_small);
}

TEST(CanNetwork, AverageDegreeNearFour) {
  CanNetwork net(1000, 23);
  EXPECT_NEAR(net.average_degree(), 4.0, 1.5);
}

}  // namespace
}  // namespace armada::can
