#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "net/routed_overlay.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/workload.h"
#include "util/check.h"
#include "util/rng.h"

namespace armada::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, EqualTimesRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, ActionsMayScheduleMore) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      sim.schedule_after(1.0, chain);
    }
  };
  sim.schedule_after(1.0, chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, FifoTieBreakInterleavesWithEarlierTimes) {
  // Events at the same timestamp run in scheduling order even when they are
  // scheduled interleaved with events at other times, via schedule_at and
  // schedule_after alike. The transport relies on this: ConstantHop arrival
  // order must reproduce the classic BFS/queue order exactly.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(2.0, [&] { order.push_back(20); });
  sim.schedule_at(1.0, [&] { order.push_back(10); });
  sim.schedule_after(2.0, [&] { order.push_back(21); });  // also t=2
  sim.schedule_at(2.0, [&] { order.push_back(22); });
  sim.schedule_at(1.0, [&] { order.push_back(11); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21, 22}));
}

TEST(Simulator, FifoTieBreakCoversEventsScheduledWhileRunning) {
  // An action scheduling at the *current* time runs after everything already
  // queued for that time (its sequence number is larger).
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(0);
    sim.schedule_after(0.0, [&] { order.push_back(2); });
  });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Simulator, RunUntilIncludesEventsExactlyAtTheHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(2.0 + 1e-9, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);  // horizon is inclusive; later events stay queued
  EXPECT_FALSE(sim.idle());
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, RunUntilAdvancesTimeOnAnEmptyQueue) {
  Simulator sim;
  sim.run_until(7.0);
  EXPECT_DOUBLE_EQ(sim.now(), 7.0);
  // A horizon in the past never moves time backwards.
  sim.run_until(3.0);
  EXPECT_DOUBLE_EQ(sim.now(), 7.0);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, EventsProcessedCountsAcrossRunAndRunUntil) {
  Simulator sim;
  for (int i = 1; i <= 6; ++i) {
    sim.schedule_at(static_cast<Time>(i), [] {});
  }
  sim.run_until(3.0);
  EXPECT_EQ(sim.events_processed(), 3u);
  sim.run();
  EXPECT_EQ(sim.events_processed(), 6u);
  // Re-running with an empty queue processes nothing further.
  sim.run();
  EXPECT_EQ(sim.events_processed(), 6u);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RejectsSchedulingIntoThePast) {
  Simulator sim;
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), CheckError);
}

// The dispatch contract: events run in the strict total order (when, seq),
// i.e. time order with FIFO ties — exactly what the old binary-heap kernel
// produced. The calendar-queue implementation is checked against a plain
// reference model on randomized schedules dominated by equal-time batches
// (the FRT fan-out shape), including batches larger than the sorted-bucket
// threshold and events injected into the current instant mid-dispatch.
TEST(Simulator, DispatchOrderMatchesReferenceOnEqualTimeBatches) {
  for (std::uint64_t seed : {101u, 202u, 303u}) {
    Rng rng(seed);
    Simulator sim;
    std::vector<std::pair<double, int>> scheduled;  // (when, insertion id)
    std::vector<int> dispatched;
    int next_id = 0;

    // A handful of shared timestamps so batches of 30+ equal-time events
    // form; a few unique times interleave between them.
    std::vector<double> slots;
    for (int i = 0; i < 6; ++i) {
      slots.push_back(rng.next_double(0.0, 10.0));
    }
    for (int i = 0; i < 240; ++i) {
      const double when = (i % 4 != 0)
                              ? slots[rng.next_index(slots.size())]
                              : rng.next_double(0.0, 10.0);
      const int id = next_id++;
      scheduled.emplace_back(when, id);
      sim.schedule_at(when, [&dispatched, id] { dispatched.push_back(id); });
    }
    // Mid-run injections: some events add work at their own timestamp (the
    // sorted-bucket insertion path) and slightly later.
    for (int i = 0; i < 30; ++i) {
      const double when = slots[rng.next_index(slots.size())];
      const int id = next_id++;
      scheduled.emplace_back(when, id);
      const int child = next_id++;
      const int late_child = next_id++;
      sim.schedule_at(when, [&, id, child, late_child] {
        dispatched.push_back(id);
        scheduled.emplace_back(sim.now(), child);
        sim.schedule_at(sim.now(), [&dispatched, child] {
          dispatched.push_back(child);
        });
        scheduled.emplace_back(sim.now() + 0.5, late_child);
        sim.schedule_at(sim.now() + 0.5, [&dispatched, late_child] {
          dispatched.push_back(late_child);
        });
      });
    }
    sim.run();

    // Reference: stable order by time — scheduling (insertion) order breaks
    // ties. `scheduled` is appended in insertion order, so a stable sort by
    // `when` is the expected dispatch sequence.
    std::stable_sort(scheduled.begin(), scheduled.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::vector<int> expected;
    expected.reserve(scheduled.size());
    for (const auto& [when, id] : scheduled) {
      expected.push_back(id);
    }
    ASSERT_EQ(dispatched, expected) << "seed " << seed;
  }
}

TEST(Simulator, CursorRewindsForEarlierEventsAfterIdlePeriods) {
  Simulator sim;
  std::vector<double> times;
  // A far-future event first (the cursor jumps ahead to find it), then an
  // earlier one scheduled mid-run must still dispatch in time order.
  sim.schedule_at(1000.0, [&] { times.push_back(sim.now()); });
  sim.schedule_at(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_at(2.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times, (std::vector<double>{1.0, 2.0, 1000.0}));
}

TEST(QueryStats, Ratios) {
  QueryStats q;
  q.messages = 30;
  q.dest_peers = 10;
  EXPECT_DOUBLE_EQ(q.mesg_ratio(), 3.0);
  EXPECT_DOUBLE_EQ(q.incre_ratio(11.0), 19.0 / 9.0);
}

TEST(MetricSet, AggregatesAndSkipsDegenerateRatios) {
  MetricSet m(10.0);
  m.add(QueryStats{.messages = 20, .delay = 5, .dest_peers = 10, .results = 3});
  m.add(QueryStats{.messages = 12, .delay = 7, .dest_peers = 1, .results = 0});
  m.add(QueryStats{.messages = 0, .delay = 0, .dest_peers = 0, .results = 0});
  EXPECT_EQ(m.delay().count(), 3u);
  EXPECT_DOUBLE_EQ(m.delay().mean(), 4.0);
  EXPECT_EQ(m.mesg_ratio().count(), 2u);   // dest_peers >= 1 only
  EXPECT_EQ(m.incre_ratio().count(), 1u);  // dest_peers > 1 only
  EXPECT_DOUBLE_EQ(m.incre_ratio().mean(), 10.0 / 9.0);
}

// --- walk-cost algebra (overlay::step / chain / fan_in) ---------------------

TEST(WalkAlgebra, StepChargesOneMessageOneHopAndTheLink) {
  net::Transport transport;  // default ConstantHop(1.0)
  QueryStats walk;
  overlay::step(walk, transport, 3, 4);
  overlay::step(walk, transport, 4, 9);
  EXPECT_EQ(walk.messages, 2u);
  EXPECT_DOUBLE_EQ(walk.delay, 2.0);
  EXPECT_DOUBLE_EQ(walk.latency, 2.0);
  EXPECT_DOUBLE_EQ(walk.coverage, 1.0);  // cost fragments never touch it
  EXPECT_EQ(walk.dest_peers, 0u);
}

TEST(WalkAlgebra, ChainSumsCostsAndMultipliesCoverage) {
  QueryStats head{.messages = 3, .delay = 2.0, .latency = 2.5,
                  .queue_delay = 0.5, .coverage = 0.5, .shed = 1};
  const QueryStats tail{.messages = 2, .delay = 1.0, .latency = 1.25,
                        .queue_delay = 0.25, .coverage = 0.5, .shed = 2};
  overlay::chain(head, tail);
  EXPECT_EQ(head.messages, 5u);
  EXPECT_DOUBLE_EQ(head.delay, 3.0);
  EXPECT_DOUBLE_EQ(head.latency, 3.75);
  EXPECT_DOUBLE_EQ(head.queue_delay, 0.75);
  EXPECT_DOUBLE_EQ(head.coverage, 0.25);  // sequential stages multiply
  EXPECT_EQ(head.shed, 3u);
  EXPECT_EQ(head.dest_peers, 0u);  // data-plane counters stay untouched
}

TEST(WalkAlgebra, FanInSumsMessagesMaxesArrivalAndMinsCoverage) {
  QueryStats fan{.messages = 1, .delay = 4.0, .latency = 4.0,
                 .coverage = 1.0};
  overlay::fan_in(fan, QueryStats{.messages = 2, .delay = 6.0,
                                  .latency = 7.0, .coverage = 0.5});
  overlay::fan_in(fan, QueryStats{.messages = 3, .delay = 5.0,
                                  .latency = 5.0, .coverage = 0.75});
  EXPECT_EQ(fan.messages, 6u);
  EXPECT_DOUBLE_EQ(fan.delay, 6.0);    // latest branch arrival
  EXPECT_DOUBLE_EQ(fan.latency, 7.0);
  EXPECT_DOUBLE_EQ(fan.coverage, 0.5);  // conservative minimum
}

TEST(WalkAlgebra, ChainOfFanInsWithZeroDestinationSubtrees) {
  // A two-stage FRT-shaped tree: stage one fans three subtrees, one of
  // which covers zero destinations (an empty region slice — its fragment
  // stays at the coverage-neutral default 1.0 and must not drag the fan's
  // minimum); stage two chains a partially shed continuation.
  QueryStats fan;  // dispatch point: zero cost until branches fold in
  const QueryStats empty_subtree{.messages = 1, .delay = 1.0,
                                 .latency = 1.0};  // zero destinations
  const QueryStats full_subtree{.messages = 4, .delay = 3.0, .latency = 3.0,
                                .coverage = 1.0};
  const QueryStats degraded_subtree{.messages = 2, .delay = 2.0,
                                    .latency = 2.0, .coverage = 0.5,
                                    .shed = 1};
  overlay::fan_in(fan, empty_subtree);
  overlay::fan_in(fan, full_subtree);
  overlay::fan_in(fan, degraded_subtree);
  EXPECT_EQ(fan.messages, 7u);
  EXPECT_DOUBLE_EQ(fan.delay, 3.0);
  EXPECT_DOUBLE_EQ(fan.coverage, 0.5);  // the empty subtree stayed neutral

  QueryStats query{.messages = 2, .delay = 2.0, .latency = 2.0,
                   .coverage = 0.5};  // approach walk, already degraded
  overlay::chain(query, fan);
  EXPECT_EQ(query.messages, 9u);
  EXPECT_DOUBLE_EQ(query.delay, 5.0);      // walk, then the slowest branch
  EXPECT_DOUBLE_EQ(query.latency, 5.0);
  EXPECT_DOUBLE_EQ(query.coverage, 0.25);  // 0.5 (walk) * 0.5 (fan min)
  EXPECT_EQ(query.shed, 1u);
  EXPECT_EQ(query.dest_peers, 0u);

  // Aggregating a zero-destination query is well-defined: no ratio sample,
  // but delay/coverage aggregate exactly.
  MetricSet m(4.0);
  m.add(query);
  EXPECT_EQ(m.delay().count(), 1u);
  EXPECT_DOUBLE_EQ(m.coverage().mean(), 0.25);
  EXPECT_EQ(m.mesg_ratio().count(), 0u);   // dest_peers == 0: skipped
  EXPECT_EQ(m.incre_ratio().count(), 0u);
  EXPECT_EQ(m.dest_peers().count(), 1u);
  EXPECT_DOUBLE_EQ(m.dest_peers().mean(), 0.0);
}

TEST(MetricSet, TracksLatencyAndPercentiles) {
  MetricSet m(10.0);
  for (int i = 1; i <= 100; ++i) {
    QueryStats q;
    q.delay = static_cast<double>(i);
    q.latency = 2.0 * static_cast<double>(i);
    q.dest_peers = 1;
    q.messages = 1;
    m.add(q);
  }
  EXPECT_DOUBLE_EQ(m.latency().mean(), 101.0);
  EXPECT_DOUBLE_EQ(m.latency().max(), 200.0);
  EXPECT_DOUBLE_EQ(m.delay_percentiles().p50(), 50.0);
  EXPECT_DOUBLE_EQ(m.delay_percentiles().p95(), 95.0);
  EXPECT_DOUBLE_EQ(m.delay_percentiles().p99(), 99.0);
  EXPECT_DOUBLE_EQ(m.latency_percentiles().p99(), 198.0);
}

TEST(RangeWorkload, StaysInsideDomain) {
  RangeWorkload w({0.0, 1000.0}, 50.0, Rng(5));
  for (int i = 0; i < 1000; ++i) {
    const RangeQuery q = w.next();
    EXPECT_GE(q.lo, 0.0);
    EXPECT_LE(q.hi, 1000.0);
    EXPECT_NEAR(q.hi - q.lo, 50.0, 1e-9);
  }
}

TEST(RangeWorkload, RejectsOversizedQueries) {
  EXPECT_THROW(RangeWorkload({0.0, 10.0}, 11.0, Rng(1)), CheckError);
}

TEST(BoxWorkload, StaysInsideDomain) {
  BoxWorkload w(kautz::Box{{0.0, 100.0}, {0.0, 10.0}}, {20.0, 2.0}, Rng(6));
  for (int i = 0; i < 500; ++i) {
    const kautz::Box q = w.next();
    ASSERT_EQ(q.size(), 2u);
    EXPECT_GE(q[0].lo, 0.0);
    EXPECT_LE(q[0].hi, 100.0);
    EXPECT_NEAR(q[0].hi - q[0].lo, 20.0, 1e-12);
    EXPECT_NEAR(q[1].hi - q[1].lo, 2.0, 1e-12);
  }
}

TEST(UniformPoints, CoversDomain) {
  UniformPoints gen(kautz::Box{{0.0, 1.0}, {5.0, 6.0}}, Rng(7));
  OnlineStats s0;
  OnlineStats s1;
  for (int i = 0; i < 2000; ++i) {
    const auto p = gen.next();
    s0.add(p[0]);
    s1.add(p[1]);
  }
  EXPECT_NEAR(s0.mean(), 0.5, 0.05);
  EXPECT_NEAR(s1.mean(), 5.5, 0.05);
}

}  // namespace
}  // namespace armada::sim
