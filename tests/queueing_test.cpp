// Invariants of the congestion-aware queueing network (src/net/queueing.h)
// and its Transport integration:
//
//  * zero-queue bitwise equivalence — the default QueueingConfig reproduces
//    the stateless delivery path exactly, for PIRA, the DCF-CAN flood and
//    walk replays, under every latency model;
//  * exact reservation arithmetic — service, bandwidth and coalescing
//    produce the delivery instants the model promises;
//  * per-link FIFO order is preserved under coalescing and random load;
//  * message conservation — sent == delivered + in-flight at every event
//    boundary, and the queue drains to zero;
//  * p99 latency is monotone in offered load;
//  * the const stateless deliver refuses to bypass an active config;
//  * repair batching — churn-driver repair through the coalescer saves
//    departures and stays deterministic;
//  * traffic classes — kFifo timing is class-blind, kWeighted isolates
//    each class's share, kStrict serves repair ahead of query backlog;
//  * closed-loop flow control — backoff/admission probes track ingress
//    backlog, hedged retries win via the kHedge lane with the losing copy
//    cancelled, and admission control degrades range queries into partial
//    answers whose stats.coverage is the exact served fraction;
//  * conservation survives LRU eviction of live simulators (the orphaned
//    delivered-counter path).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "chord/churn_driver.h"
#include "fissione/churn_driver.h"
#include "net/queueing.h"
#include "net/transport.h"
#include "rq/dcf_can.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/workload.h"
#include "support/test_networks.h"
#include "support/test_workloads.h"
#include "util/check.h"
#include "util/rng.h"

namespace {

using namespace armada;

constexpr std::uint64_t kSeed = 424242;

net::QueueingConfig loaded_config() {
  net::QueueingConfig cfg;
  cfg.service_rate = 2.0;
  cfg.link_bandwidth = 512.0;
  cfg.default_message_bytes = 128;
  cfg.coalesce_window = 0.25;
  return cfg;
}

// ---------------------------------------------------------------------------
// Zero-queue bitwise equivalence vs the stateless path.
// ---------------------------------------------------------------------------

TEST(ZeroQueue, PiraQueriesBitwiseEqualStatelessUnderAllModels) {
  for (const auto& model : testsupport::all_latency_models(kSeed)) {
    auto baseline = testsupport::make_single_index(300, kSeed);
    auto queued = testsupport::make_single_index(300, kSeed);
    baseline->net.set_latency_model(model);
    queued->net.set_latency_model(model);
    // The default config is the zero-queue degenerate: installing it must
    // not move a single bit of any query result.
    queued->net.install_queueing(net::QueueingConfig{});
    ASSERT_FALSE(queued->net.queueing_active());

    Rng issuers_a(kSeed + 1);
    Rng issuers_b(kSeed + 1);
    sim::RangeWorkload workload_a({0.0, 1000.0}, 120.0, Rng(kSeed + 2));
    sim::RangeWorkload workload_b({0.0, 1000.0}, 120.0, Rng(kSeed + 2));
    for (int q = 0; q < 40; ++q) {
      const auto rq_a = workload_a.next();
      const auto rq_b = workload_b.next();
      const auto a = baseline->index.range_query(
          baseline->random_issuer(issuers_a), rq_a.lo, rq_a.hi);
      const auto b = queued->index.range_query(
          queued->random_issuer(issuers_b), rq_b.lo, rq_b.hi);
      ASSERT_EQ(a.stats, b.stats) << "model " << model->name();
      ASSERT_EQ(a.matches, b.matches);
      ASSERT_EQ(a.destinations, b.destinations);
      ASSERT_EQ(b.stats.queue_delay, 0.0);
    }
  }
}

TEST(ZeroQueue, DcfFloodBitwiseEqualStatelessUnderAllModels) {
  for (const auto& model : testsupport::all_latency_models(kSeed)) {
    can::CanNetwork net_a(128, kSeed);
    can::CanNetwork net_b(128, kSeed);
    net_a.set_latency_model(model);
    net_b.set_latency_model(model);
    net_b.install_queueing(net::QueueingConfig{});
    rq::DcfCan dcf_a(net_a, rq::DcfCan::Config{});
    rq::DcfCan dcf_b(net_b, rq::DcfCan::Config{});
    Rng values(kSeed + 3);
    for (int i = 0; i < 200; ++i) {
      const double v = values.next_double(0.0, 1000.0);
      dcf_a.publish(v);
      dcf_b.publish(v);
    }
    Rng lo_rng(kSeed + 4);
    for (int q = 0; q < 25; ++q) {
      const double lo = lo_rng.next_double(0.0, 900.0);
      const auto a = dcf_a.query(7, lo, lo + 80.0);
      const auto b = dcf_b.query(7, lo, lo + 80.0);
      ASSERT_EQ(a.stats, b.stats) << "model " << model->name();
      ASSERT_EQ(a.destinations, b.destinations);
      ASSERT_EQ(a.matches, b.matches);
    }
  }
}

TEST(ZeroQueue, DeliverWalkMatchesPathLatencyArithmetic) {
  for (const auto& model : testsupport::all_latency_models(kSeed)) {
    auto net = fissione::FissioneNetwork::build(200, kSeed);
    net.set_latency_model(model);
    net.install_queueing(net::QueueingConfig{});
    net::Transport& transport = net.transport();
    Rng rng(kSeed + 5);
    for (int i = 0; i < 20; ++i) {
      const auto route = net.route(net.random_peer(), net.random_object_id());
      sim::Simulator sim;
      sim::QueryStats walk;
      transport.deliver_walk(sim, route.path, 0,
                             [&walk](const sim::QueryStats& s) { walk = s; });
      sim.run();
      EXPECT_EQ(walk.latency, transport.path_latency(route.path));
      EXPECT_EQ(walk.queue_delay, 0.0);
      EXPECT_EQ(walk.messages,
                route.path.empty() ? 0u : route.path.size() - 1);
    }
  }
}

// ---------------------------------------------------------------------------
// The const stateless overload cannot bypass an active config.
// ---------------------------------------------------------------------------

TEST(TransportSplit, StatelessDeliverRefusesActiveQueueing) {
  net::Transport transport;
  sim::Simulator sim;
  // No config and the zero-queue config: stateless deliveries are fine.
  transport.deliver(sim, 1, 2, [] {});
  transport.install_queueing(net::QueueingConfig{});
  transport.deliver(sim, 1, 2, [] {});
  // An active config must force traffic onto the sized path.
  transport.install_queueing(loaded_config());
  EXPECT_TRUE(transport.queueing_active());
  EXPECT_THROW(transport.deliver(sim, 1, 2, [] {}), CheckError);
  transport.deliver(sim, 1, 2, [](sim::Time) {});  // sized path: accepted
  transport.uninstall_queueing();
  transport.deliver(sim, 1, 2, [] {});
  sim.run();
}

// ---------------------------------------------------------------------------
// Exact reservation arithmetic.
// ---------------------------------------------------------------------------

TEST(QueueingArithmetic, EgressAndIngressServiceSerialize) {
  net::Transport transport;  // ConstantHop(1.0)
  net::QueueingConfig cfg;
  cfg.service_rate = 2.0;  // 0.5 per message, each direction
  transport.install_queueing(cfg);
  sim::Simulator sim;
  std::vector<sim::Time> delivered;
  std::vector<sim::Time> queue_delays;
  for (int i = 0; i < 3; ++i) {
    transport.deliver(sim, 0, 1, 0, [&](sim::Time qd) {
      delivered.push_back(sim.now());
      queue_delays.push_back(qd);
    });
  }
  sim.run();
  // Egress ready at 0.5/1.0/1.5; +1 propagation; ingress server adds 0.5
  // each, serialized: 2.0 / 2.5 / 3.0.
  ASSERT_EQ(delivered, (std::vector<sim::Time>{2.0, 2.5, 3.0}));
  ASSERT_EQ(queue_delays, (std::vector<sim::Time>{1.0, 1.5, 2.0}));
  const net::CongestionStats& stats = transport.congestion();
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_EQ(stats.batches, 3u);  // no coalescing window
  EXPECT_EQ(stats.egress_depth_peak, 3u);
  EXPECT_DOUBLE_EQ(stats.egress_busy_total, 1.5);
  EXPECT_DOUBLE_EQ(stats.queue_delay_total, 4.5);
}

TEST(QueueingArithmetic, BandwidthSerializesTheLink) {
  net::Transport transport;
  net::QueueingConfig cfg;
  cfg.link_bandwidth = 100.0;
  transport.install_queueing(cfg);
  sim::Simulator sim;
  std::vector<sim::Time> delivered;
  transport.deliver(sim, 0, 1, 50, [&](sim::Time) {
    delivered.push_back(sim.now());
  });
  transport.deliver(sim, 0, 1, 50, [&](sim::Time) {
    delivered.push_back(sim.now());
  });
  sim.run();
  // tx = 0.5 each, serialized on the wire: arrivals 1.5 and 2.0.
  ASSERT_EQ(delivered, (std::vector<sim::Time>{1.5, 2.0}));
  EXPECT_EQ(transport.congestion().bytes_on_wire, 100u);
}

TEST(QueueingArithmetic, CoalescingWindowSharesOneDeparture) {
  net::Transport transport;
  net::QueueingConfig cfg;
  cfg.coalesce_window = 1.0;
  transport.install_queueing(cfg);
  sim::Simulator sim;
  std::vector<std::pair<int, sim::Time>> delivered;
  auto send = [&](int tag) {
    transport.deliver(sim, 0, 1, 0, [&delivered, &sim, tag](sim::Time) {
      delivered.emplace_back(tag, sim.now());
    });
  };
  send(0);                                      // opens batch, departs at 1.0
  sim.schedule_at(0.5, [&] { send(1); });       // joins the open batch
  sim.schedule_at(2.5, [&] { send(2); });       // past departure: new batch
  sim.run();
  ASSERT_EQ(delivered.size(), 3u);
  // Batch members ride one departure (1.0) and arrive together at 2.0, in
  // FIFO order; the late message departs at 3.5 and arrives at 4.5.
  EXPECT_EQ(delivered[0], (std::pair<int, sim::Time>{0, 2.0}));
  EXPECT_EQ(delivered[1], (std::pair<int, sim::Time>{1, 2.0}));
  EXPECT_EQ(delivered[2], (std::pair<int, sim::Time>{2, 4.5}));
  const net::CongestionStats& stats = transport.congestion();
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.departures_saved(), 1u);
  EXPECT_EQ(stats.batch_occupancy[0], 1u);  // one singleton batch
  EXPECT_EQ(stats.batch_occupancy[1], 1u);  // one pair batch
}

// ---------------------------------------------------------------------------
// FIFO and conservation under random load.
// ---------------------------------------------------------------------------

TEST(QueueingInvariants, PerLinkFifoAndConservationUnderRandomLoad) {
  net::Transport transport;
  transport.install_queueing(loaded_config());
  const net::Queueing* queueing = transport.queueing();
  ASSERT_NE(queueing, nullptr);

  sim::Simulator sim;
  Rng rng(kSeed + 6);
  constexpr int kMessages = 400;
  constexpr net::NodeId kNodes = 8;
  std::uint64_t test_sent = 0;
  std::uint64_t test_delivered = 0;
  // Per-link send sequence numbers; deliveries must replay them in order.
  std::map<std::pair<net::NodeId, net::NodeId>, std::vector<int>> sent_seq;
  std::map<std::pair<net::NodeId, net::NodeId>, std::vector<int>> seen_seq;
  for (int i = 0; i < kMessages; ++i) {
    const auto from = static_cast<net::NodeId>(rng.next_index(kNodes));
    auto to = static_cast<net::NodeId>(rng.next_index(kNodes - 1));
    to = to == from ? static_cast<net::NodeId>(kNodes - 1) : to;
    const auto bytes = static_cast<std::uint32_t>(rng.next_int(0, 300));
    const double at = rng.next_double(0.0, 40.0);
    sim.schedule_at(at, [&, from, to, bytes, i] {
      ++test_sent;
      sent_seq[{from, to}].push_back(i);
      transport.deliver(sim, from, to, bytes, [&, from, to, i](sim::Time qd) {
        EXPECT_GE(qd, 0.0);
        ++test_delivered;
        seen_seq[{from, to}].push_back(i);
        // Message conservation at an event boundary: everything sent was
        // either delivered or is still in flight.
        EXPECT_EQ(queueing->sent(), test_sent);
        EXPECT_EQ(queueing->delivered(), test_delivered);
        EXPECT_EQ(queueing->in_flight(), test_sent - test_delivered);
      });
    });
  }
  sim.run();
  EXPECT_EQ(test_delivered, static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(queueing->in_flight(), 0u);
  EXPECT_EQ(transport.congestion().messages,
            static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(seen_seq, sent_seq);  // per-link FIFO survives coalescing
}

TEST(QueueingInvariants, P99LatencyMonotoneInOfferedLoad) {
  auto net = fissione::FissioneNetwork::build(64, kSeed);
  std::vector<std::vector<net::NodeId>> walks;
  for (int i = 0; i < 64; ++i) {
    walks.push_back(net.route(net.random_peer(), net.random_object_id()).path);
  }
  net::QueueingConfig cfg = loaded_config();
  cfg.service_rate = 0.5;
  double previous = 0.0;
  for (const double gap : {4.0, 0.5, 0.0625}) {
    net.install_queueing(cfg);
    net::Transport& transport = net.transport();
    sim::MetricSet metrics(6.0);
    sim::Simulator sim;
    for (std::size_t i = 0; i < walks.size(); ++i) {
      sim.schedule_at(static_cast<double>(i) * gap, [&, i] {
        transport.deliver_walk(
            sim, walks[i], transport.default_message_bytes(),
            [&metrics](const sim::QueryStats& s) { metrics.add(s); });
      });
    }
    sim.run();
    const double p99 = metrics.latency_percentiles().p99();
    EXPECT_GT(p99, previous) << "gap " << gap;
    EXPECT_GT(metrics.queue_delay().mean_or(0.0), 0.0);
    previous = p99;
  }
}

// ---------------------------------------------------------------------------
// Repair batching through the churn drivers.
// ---------------------------------------------------------------------------

sim::ChurnProcess::LifetimeConfig heavy_config(double horizon) {
  sim::ChurnProcess::LifetimeConfig cfg;
  cfg.shape = 1.2;
  cfg.scale = 2.0;
  cfg.arrival_rate = 1.5;
  cfg.crash_fraction = 0.1;
  cfg.horizon = horizon;
  return cfg;
}

TEST(RepairBatching, FissioneRepairCoalescesAndStaysDeterministic) {
  auto run = [](net::CongestionStats* wire) {
    auto net = fissione::FissioneNetwork::build(200, kSeed);
    net::QueueingConfig cfg;
    cfg.default_message_bytes = 128;
    cfg.link_bandwidth = 4096.0;
    cfg.coalesce_window = 0.5;
    net.install_queueing(cfg);
    for (int i = 0; i < 300; ++i) {
      net.publish(net.random_object_id(), static_cast<std::uint64_t>(i));
    }
    sim::Simulator sim;
    fissione::ChurnDriver driver(net, sim);
    driver.schedule(
        sim::ChurnProcess::lifetimes(heavy_config(25.0), kSeed + 7));
    sim.run();
    *wire = net.congestion();
    return driver.stats();
  };
  net::CongestionStats wire_a;
  net::CongestionStats wire_b;
  const sim::ChurnStats stats_a = run(&wire_a);
  const sim::ChurnStats stats_b = run(&wire_b);
  EXPECT_EQ(stats_a, stats_b);
  EXPECT_EQ(wire_a, wire_b);
  EXPECT_GT(stats_a.events(), 0u);
  EXPECT_GT(wire_a.messages, 0u);
  EXPECT_LE(wire_a.batches, wire_a.messages);
  // A leave/crash hands objects and neighbor updates to the same absorbing
  // peer inside one event: those same-link repair messages must share
  // departures at least once over a whole schedule.
  EXPECT_GT(wire_a.departures_saved(), 0u);
  EXPECT_GT(stats_a.repair_latency_total, 0.0);
}

TEST(RepairBatching, ChordRepairCoalescesAndStaysDeterministic) {
  auto run = [](net::CongestionStats* wire) {
    chord::ChordNetwork net(200, kSeed);
    net::QueueingConfig cfg;
    cfg.default_message_bytes = 128;
    cfg.link_bandwidth = 4096.0;
    cfg.coalesce_window = 0.5;
    net.install_queueing(cfg);
    sim::Simulator sim;
    chord::ChurnDriver driver(net, sim);
    driver.schedule(
        sim::ChurnProcess::lifetimes(heavy_config(25.0), kSeed + 8));
    sim.run();
    *wire = net.congestion();
    return driver.stats();
  };
  net::CongestionStats wire_a;
  net::CongestionStats wire_b;
  const sim::ChurnStats stats_a = run(&wire_a);
  const sim::ChurnStats stats_b = run(&wire_b);
  EXPECT_EQ(stats_a, stats_b);
  EXPECT_EQ(wire_a, wire_b);
  EXPECT_GT(stats_a.events(), 0u);
  EXPECT_GT(wire_a.messages, 0u);
  EXPECT_LE(wire_a.batches, wire_a.messages);
  EXPECT_GT(stats_a.repair_latency_total, 0.0);
}

// ---------------------------------------------------------------------------
// CongestionStats interval accounting.
// ---------------------------------------------------------------------------

TEST(ZeroQueue, SizedMessagesAreNotZeroQueue) {
  EXPECT_TRUE(net::QueueingConfig{}.zero_queue());
  net::QueueingConfig cfg;
  cfg.default_message_bytes = 64;
  // Regression: a config that only sizes messages still prices them
  // (bytes_on_wire) and must not degenerate to the stateless path, which
  // would silently drop the byte accounting.
  EXPECT_FALSE(cfg.zero_queue());
  net::Transport transport;
  transport.install_queueing(cfg);
  EXPECT_TRUE(transport.queueing_active());
  sim::Simulator sim;
  EXPECT_THROW(transport.deliver(sim, 0, 1, [] {}), CheckError);
  sim::QueryStats walk;
  transport.deliver_walk(sim, {0, 1, 2}, transport.default_message_bytes(),
                         [&walk](const sim::QueryStats& s) { walk = s; });
  sim.run();
  // Timing is untouched (nothing else is priced), but bytes are counted.
  EXPECT_EQ(walk.latency, 2.0);
  EXPECT_EQ(walk.bytes_on_wire, 128u);
  EXPECT_EQ(transport.congestion().bytes_on_wire, 128u);
}

TEST(CongestionStats, BatchOccupancyMeanIsOneWhenNothingCoalesced) {
  // Documented: 1.0 when nothing coalesced — including before any traffic.
  EXPECT_DOUBLE_EQ(net::CongestionStats{}.batch_occupancy_mean(), 1.0);
  net::Transport transport;
  net::QueueingConfig cfg;
  cfg.coalesce_window = 1.0;
  transport.install_queueing(cfg);
  sim::Simulator sim;
  transport.deliver(sim, 0, 1, 0, [](sim::Time) {});
  transport.deliver(sim, 0, 1, 0, [](sim::Time) {});  // joins the batch
  transport.deliver(sim, 2, 3, 0, [](sim::Time) {});  // its own batch
  sim.run();
  EXPECT_DOUBLE_EQ(transport.congestion().batch_occupancy_mean(), 1.5);
}

TEST(QueueingInvariants, ConservationSurvivesLruEvictionOfLiveSimulators) {
  net::Transport transport;
  transport.install_queueing(loaded_config());
  const net::Queueing* queueing = transport.queueing();
  ASSERT_NE(queueing, nullptr);

  sim::Simulator sim_a;
  transport.deliver(sim_a, 0, 1, 64, [](sim::Time) {});
  EXPECT_EQ(queueing->sent(), 1u);
  EXPECT_EQ(queueing->in_flight(), 1u);

  // Fill every remaining state slot (kMaxSimStates = 4) with simulators
  // whose deliveries are still pending, so the next new simulator has no
  // drained victim and must evict sim_a's state while its delivery is in
  // flight — orphaning the delivered counter.
  sim::Simulator sim_b;
  sim::Simulator sim_c;
  sim::Simulator sim_d;
  for (sim::Simulator* s : {&sim_b, &sim_c, &sim_d}) {
    transport.deliver(*s, 0, 1, 64, [](sim::Time) {});
  }
  sim::Simulator sim_e;
  transport.deliver(sim_e, 0, 1, 64, [](sim::Time) {});

  // The orphaned delivery fires against the evicted state's counter.
  sim_a.run();

  // A fresh send on sim_a builds a clean state: conservation holds on the
  // new counters, unaffected by the orphaned delivery above.
  transport.deliver(sim_a, 2, 3, 64, [](sim::Time) {});
  EXPECT_EQ(queueing->sent(), 1u);
  EXPECT_EQ(queueing->delivered(), 0u);
  EXPECT_EQ(queueing->in_flight(), 1u);
  sim_a.run();
  EXPECT_EQ(queueing->sent(), 1u);
  EXPECT_EQ(queueing->delivered(), 1u);
  EXPECT_EQ(queueing->in_flight(), 0u);
}

// ---------------------------------------------------------------------------
// Traffic classes and scheduling disciplines.
// ---------------------------------------------------------------------------

TEST(TrafficClasses, FifoTimingIsClassBlind) {
  constexpr net::TrafficClass kMix[4] = {
      net::TrafficClass::kQuery, net::TrafficClass::kRepair,
      net::TrafficClass::kHandoff, net::TrafficClass::kHedge};
  auto run = [&](bool tagged, net::CongestionStats* stats) {
    net::Transport transport;
    transport.install_queueing(loaded_config());
    sim::Simulator sim;
    std::vector<sim::Time> delivered;
    for (int i = 0; i < 12; ++i) {
      transport.deliver(
          sim, 0, 1, 64,
          [&delivered, &sim](sim::Time) { delivered.push_back(sim.now()); },
          0.0, tagged ? kMix[i % 4] : net::TrafficClass::kQuery);
    }
    sim.run();
    *stats = transport.congestion();
    return delivered;
  };
  net::CongestionStats tagged_stats;
  net::CongestionStats untagged_stats;
  // Under the default kFifo discipline the class tag is pure accounting:
  // every delivery instant is bit-identical for any traffic mix.
  EXPECT_EQ(run(true, &tagged_stats), run(false, &untagged_stats));
  EXPECT_EQ(tagged_stats.queue_delay_total, untagged_stats.queue_delay_total);
  for (const net::TrafficClass cls : kMix) {
    EXPECT_EQ(tagged_stats.class_messages[net::class_index(cls)], 3u);
  }
  EXPECT_EQ(untagged_stats.class_messages[net::class_index(
                net::TrafficClass::kQuery)],
            12u);
}

TEST(TrafficClasses, WeightedSharesIsolateRepairFromQueryBacklog) {
  net::Transport transport;  // ConstantHop(1.0)
  net::QueueingConfig cfg;
  cfg.service_rate = 1.0;
  cfg.scheduling = net::QueueingConfig::Scheduling::kWeighted;
  transport.install_queueing(cfg);
  sim::Simulator sim;
  std::vector<sim::Time> query;
  std::vector<sim::Time> repair;
  for (int i = 0; i < 2; ++i) {
    transport.deliver(
        sim, 0, 1, 0,
        [&query, &sim](sim::Time) { query.push_back(sim.now()); }, 0.0,
        net::TrafficClass::kQuery);
  }
  transport.deliver(
      sim, 0, 1, 0,
      [&repair, &sim](sim::Time) { repair.push_back(sim.now()); }, 0.0,
      net::TrafficClass::kRepair);
  sim.run();
  // Four equal weights: each class owns a quarter of the server — 4.0 per
  // message in its lane. The queries serialize behind each other only
  // (egress 4/8, +1 propagation, ingress 9/13); repair rides its own lane
  // and lands with the first query no matter how deep the query lane is.
  EXPECT_EQ(query, (std::vector<sim::Time>{9.0, 13.0}));
  EXPECT_EQ(repair, (std::vector<sim::Time>{9.0}));
}

TEST(TrafficClasses, StrictPriorityServesRepairAheadOfQueryBacklog) {
  net::Transport transport;  // ConstantHop(1.0)
  net::QueueingConfig cfg;
  cfg.service_rate = 1.0;
  cfg.scheduling = net::QueueingConfig::Scheduling::kStrict;
  transport.install_queueing(cfg);
  sim::Simulator sim;
  std::vector<sim::Time> query;
  std::vector<sim::Time> repair;
  for (int i = 0; i < 3; ++i) {
    transport.deliver(
        sim, 0, 1, 0,
        [&query, &sim](sim::Time) { query.push_back(sim.now()); }, 0.0,
        net::TrafficClass::kQuery);
  }
  transport.deliver(
      sim, 0, 1, 0,
      [&repair, &sim](sim::Time) { repair.push_back(sim.now()); }, 0.0,
      net::TrafficClass::kRepair);
  sim.run();
  // Queries serialize behind each other (delivered 3/4/5). The repair —
  // sent last — only waits for its own tier, so it lands at 3, ahead of
  // two-thirds of the query backlog.
  EXPECT_EQ(query, (std::vector<sim::Time>{3.0, 4.0, 5.0}));
  EXPECT_EQ(repair, (std::vector<sim::Time>{3.0}));
  const net::CongestionStats& stats = transport.congestion();
  EXPECT_LT(stats.class_queue_delay_mean(net::TrafficClass::kRepair),
            stats.class_queue_delay_mean(net::TrafficClass::kQuery));
}

// ---------------------------------------------------------------------------
// Closed-loop flow control.
// ---------------------------------------------------------------------------

TEST(FlowControl, BackoffAndAdmissionProbesTrackIngressBacklog) {
  net::Transport transport;
  net::QueueingConfig cfg;
  cfg.service_rate = 0.5;
  cfg.flow.backoff_threshold = 2;
  cfg.flow.backoff = 0.5;
  cfg.flow.admission_limit = 3;
  transport.install_queueing(cfg);
  sim::Simulator sim;
  EXPECT_EQ(transport.backoff_delay(sim, 1), 0.0);
  EXPECT_FALSE(transport.should_shed(sim, 1, net::TrafficClass::kQuery));
  for (int i = 0; i < 3; ++i) {
    transport.deliver(sim, 0, 1, 0, [](sim::Time) {});
  }
  // Three outstanding ingress reservations at node 1: one message over the
  // backoff threshold plus one gives 0.5 x 2, and admission is at the
  // limit — for the query class only.
  EXPECT_EQ(transport.backoff_delay(sim, 1), 1.0);
  EXPECT_TRUE(transport.should_shed(sim, 1, net::TrafficClass::kQuery));
  EXPECT_FALSE(transport.should_shed(sim, 1, net::TrafficClass::kRepair));
  EXPECT_FALSE(transport.should_shed(sim, 1, net::TrafficClass::kHandoff));
  EXPECT_FALSE(transport.should_shed(sim, 1, net::TrafficClass::kHedge));
  // Unloaded target: no policy pressure.
  EXPECT_EQ(transport.backoff_delay(sim, 2), 0.0);
  sim.run();
  // Drained: the probes relax again.
  EXPECT_EQ(transport.backoff_delay(sim, 1), 0.0);
  EXPECT_FALSE(transport.should_shed(sim, 1, net::TrafficClass::kQuery));
}

TEST(FlowControl, AdmissionShedsWalkWithZeroCoverage) {
  net::Transport transport;
  net::QueueingConfig cfg;
  cfg.service_rate = 0.5;
  cfg.flow.admission_limit = 2;
  transport.install_queueing(cfg);
  sim::Simulator sim;
  for (int i = 0; i < 3; ++i) {
    transport.deliver(sim, 0, 1, 0, [](sim::Time) {});
  }
  sim::QueryStats walk;
  int completions = 0;
  net::Transport::WalkOptions options;
  options.flow_control = true;
  transport.deliver_walk(sim, {0, 1, 2}, options,
                         [&](const sim::QueryStats& s) {
                           walk = s;
                           ++completions;
                         });
  sim.run();
  // The first hop's target is over the admission limit: the whole walk is
  // refused and the answer carries zero coverage.
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(walk.coverage, 0.0);
  EXPECT_EQ(walk.shed, 1u);
  EXPECT_EQ(walk.messages, 0u);
  EXPECT_EQ(transport.congestion().shed_messages, 1u);
}

TEST(FlowControl, HedgedRetryWinsViaPriorityLaneAndCancelsLoser) {
  net::Transport transport;  // ConstantHop(1.0)
  net::QueueingConfig cfg;
  cfg.service_rate = 1.0;
  cfg.scheduling = net::QueueingConfig::Scheduling::kStrict;
  cfg.flow.hedge_threshold = 1.0;
  transport.install_queueing(cfg);
  sim::Simulator sim;
  for (int i = 0; i < 4; ++i) {
    transport.deliver(sim, 0, 1, 0, [](sim::Time) {});
  }
  sim::QueryStats walk;
  int completions = 0;
  net::Transport::WalkOptions options;
  options.flow_control = true;
  transport.deliver_walk(sim, {0, 1}, options,
                         [&](const sim::QueryStats& s) {
                           walk = s;
                           ++completions;
                         });
  sim.run();
  // The primary reservation sits behind four queued query messages
  // (delivered at 7) — over the hedge threshold, so a duplicate departs in
  // the kHedge lane, jumps the query backlog, and lands at 3. First
  // arrival wins; the losing copy is cancelled, not re-completed.
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(walk.latency, 3.0);
  EXPECT_EQ(walk.queue_delay, 2.0);  // the winner's queueing delay only
  EXPECT_EQ(walk.delay, 1.0);        // one hop, however many copies raced
  EXPECT_EQ(walk.hedges, 1u);
  EXPECT_EQ(walk.messages, 2u);
  EXPECT_EQ(transport.congestion().hedges_launched, 1u);
  EXPECT_EQ(transport.congestion().hedges_won, 1u);
}

TEST(FlowControl, AdmissionDegradesRangeQueriesIntoPartialCoverage) {
  auto fx = testsupport::make_single_index(300, kSeed);
  net::QueueingConfig cfg;
  cfg.service_rate = 0.5;
  cfg.link_bandwidth = 1024.0;
  cfg.default_message_bytes = 256;
  cfg.scheduling = net::QueueingConfig::Scheduling::kStrict;
  cfg.flow.admission_limit = 4;
  fx->net.install_queueing(cfg);
  sim::Simulator sim;
  Rng issuers(kSeed + 11);
  sim::RangeWorkload workload({0.0, 1000.0}, 150.0, Rng(kSeed + 12));
  std::vector<core::RangeQueryResult> results;
  constexpr int kQueries = 60;
  for (int q = 0; q < kQueries; ++q) {
    const auto rq = workload.next();
    const auto issuer = fx->random_issuer(issuers);
    sim.schedule_at(0.25 * q, [&, issuer, rq] {
      fx->index.range_query_async(
          sim, issuer, rq.lo, rq.hi,
          [&results](core::RangeQueryResult r) {
            results.push_back(std::move(r));
          });
    });
  }
  sim.run();
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kQueries));
  bool any_partial = false;
  for (const auto& r : results) {
    EXPECT_GE(r.stats.coverage, 0.0);
    EXPECT_LE(r.stats.coverage, 1.0);
    // Shed branches and partial coverage imply each other, per query.
    EXPECT_EQ(r.stats.shed > 0, r.stats.coverage < 1.0);
    any_partial |= r.stats.coverage < 1.0;
  }
  // The concurrent burst must overload some ingress: at least one query is
  // degraded (not refused silently — its coverage says how much survived).
  EXPECT_TRUE(any_partial);
  EXPECT_GT(fx->net.congestion().shed_messages, 0u);
}

TEST(CongestionStats, IntervalDeltaSubtractsAdditiveCounters) {
  net::Transport transport;
  transport.install_queueing(loaded_config());
  sim::Simulator sim;
  transport.deliver(sim, 0, 1, 64, [](sim::Time) {});
  sim.run();
  const net::CongestionStats snapshot = transport.congestion();
  transport.deliver(sim, 1, 2, 64, [](sim::Time) {});
  transport.deliver(sim, 1, 2, 64, [](sim::Time) {});
  sim.run();
  net::CongestionStats delta = transport.congestion();
  delta -= snapshot;
  EXPECT_EQ(delta.messages, 2u);
  EXPECT_EQ(delta.bytes_on_wire, 128u);
}

}  // namespace
