// Invariants of the congestion-aware queueing network (src/net/queueing.h)
// and its Transport integration:
//
//  * zero-queue bitwise equivalence — the default QueueingConfig reproduces
//    the stateless delivery path exactly, for PIRA, the DCF-CAN flood and
//    walk replays, under every latency model;
//  * exact reservation arithmetic — service, bandwidth and coalescing
//    produce the delivery instants the model promises;
//  * per-link FIFO order is preserved under coalescing and random load;
//  * message conservation — sent == delivered + in-flight at every event
//    boundary, and the queue drains to zero;
//  * p99 latency is monotone in offered load;
//  * the const stateless deliver refuses to bypass an active config;
//  * repair batching — churn-driver repair through the coalescer saves
//    departures and stays deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "chord/churn_driver.h"
#include "fissione/churn_driver.h"
#include "net/queueing.h"
#include "net/transport.h"
#include "rq/dcf_can.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/workload.h"
#include "support/test_networks.h"
#include "support/test_workloads.h"
#include "util/check.h"
#include "util/rng.h"

namespace {

using namespace armada;

constexpr std::uint64_t kSeed = 424242;

net::QueueingConfig loaded_config() {
  net::QueueingConfig cfg;
  cfg.service_rate = 2.0;
  cfg.link_bandwidth = 512.0;
  cfg.default_message_bytes = 128;
  cfg.coalesce_window = 0.25;
  return cfg;
}

// ---------------------------------------------------------------------------
// Zero-queue bitwise equivalence vs the stateless path.
// ---------------------------------------------------------------------------

TEST(ZeroQueue, PiraQueriesBitwiseEqualStatelessUnderAllModels) {
  for (const auto& model : testsupport::all_latency_models(kSeed)) {
    auto baseline = testsupport::make_single_index(300, kSeed);
    auto queued = testsupport::make_single_index(300, kSeed);
    baseline->net.set_latency_model(model);
    queued->net.set_latency_model(model);
    // The default config is the zero-queue degenerate: installing it must
    // not move a single bit of any query result.
    queued->net.install_queueing(net::QueueingConfig{});
    ASSERT_FALSE(queued->net.queueing_active());

    Rng issuers_a(kSeed + 1);
    Rng issuers_b(kSeed + 1);
    sim::RangeWorkload workload_a({0.0, 1000.0}, 120.0, Rng(kSeed + 2));
    sim::RangeWorkload workload_b({0.0, 1000.0}, 120.0, Rng(kSeed + 2));
    for (int q = 0; q < 40; ++q) {
      const auto rq_a = workload_a.next();
      const auto rq_b = workload_b.next();
      const auto a = baseline->index.range_query(
          baseline->random_issuer(issuers_a), rq_a.lo, rq_a.hi);
      const auto b = queued->index.range_query(
          queued->random_issuer(issuers_b), rq_b.lo, rq_b.hi);
      ASSERT_EQ(a.stats, b.stats) << "model " << model->name();
      ASSERT_EQ(a.matches, b.matches);
      ASSERT_EQ(a.destinations, b.destinations);
      ASSERT_EQ(b.stats.queue_delay, 0.0);
    }
  }
}

TEST(ZeroQueue, DcfFloodBitwiseEqualStatelessUnderAllModels) {
  for (const auto& model : testsupport::all_latency_models(kSeed)) {
    can::CanNetwork net_a(128, kSeed);
    can::CanNetwork net_b(128, kSeed);
    net_a.set_latency_model(model);
    net_b.set_latency_model(model);
    net_b.install_queueing(net::QueueingConfig{});
    rq::DcfCan dcf_a(net_a, rq::DcfCan::Config{});
    rq::DcfCan dcf_b(net_b, rq::DcfCan::Config{});
    Rng values(kSeed + 3);
    for (int i = 0; i < 200; ++i) {
      const double v = values.next_double(0.0, 1000.0);
      dcf_a.publish(v);
      dcf_b.publish(v);
    }
    Rng lo_rng(kSeed + 4);
    for (int q = 0; q < 25; ++q) {
      const double lo = lo_rng.next_double(0.0, 900.0);
      const auto a = dcf_a.query(7, lo, lo + 80.0);
      const auto b = dcf_b.query(7, lo, lo + 80.0);
      ASSERT_EQ(a.stats, b.stats) << "model " << model->name();
      ASSERT_EQ(a.destinations, b.destinations);
      ASSERT_EQ(a.matches, b.matches);
    }
  }
}

TEST(ZeroQueue, DeliverWalkMatchesPathLatencyArithmetic) {
  for (const auto& model : testsupport::all_latency_models(kSeed)) {
    auto net = fissione::FissioneNetwork::build(200, kSeed);
    net.set_latency_model(model);
    net.install_queueing(net::QueueingConfig{});
    net::Transport& transport = net.transport();
    Rng rng(kSeed + 5);
    for (int i = 0; i < 20; ++i) {
      const auto route = net.route(net.random_peer(), net.random_object_id());
      sim::Simulator sim;
      sim::QueryStats walk;
      transport.deliver_walk(sim, route.path, 0,
                             [&walk](const sim::QueryStats& s) { walk = s; });
      sim.run();
      EXPECT_EQ(walk.latency, transport.path_latency(route.path));
      EXPECT_EQ(walk.queue_delay, 0.0);
      EXPECT_EQ(walk.messages,
                route.path.empty() ? 0u : route.path.size() - 1);
    }
  }
}

// ---------------------------------------------------------------------------
// The const stateless overload cannot bypass an active config.
// ---------------------------------------------------------------------------

TEST(TransportSplit, StatelessDeliverRefusesActiveQueueing) {
  net::Transport transport;
  sim::Simulator sim;
  // No config and the zero-queue config: stateless deliveries are fine.
  transport.deliver(sim, 1, 2, [] {});
  transport.install_queueing(net::QueueingConfig{});
  transport.deliver(sim, 1, 2, [] {});
  // An active config must force traffic onto the sized path.
  transport.install_queueing(loaded_config());
  EXPECT_TRUE(transport.queueing_active());
  EXPECT_THROW(transport.deliver(sim, 1, 2, [] {}), CheckError);
  transport.deliver(sim, 1, 2, [](sim::Time) {});  // sized path: accepted
  transport.uninstall_queueing();
  transport.deliver(sim, 1, 2, [] {});
  sim.run();
}

// ---------------------------------------------------------------------------
// Exact reservation arithmetic.
// ---------------------------------------------------------------------------

TEST(QueueingArithmetic, EgressAndIngressServiceSerialize) {
  net::Transport transport;  // ConstantHop(1.0)
  net::QueueingConfig cfg;
  cfg.service_rate = 2.0;  // 0.5 per message, each direction
  transport.install_queueing(cfg);
  sim::Simulator sim;
  std::vector<sim::Time> delivered;
  std::vector<sim::Time> queue_delays;
  for (int i = 0; i < 3; ++i) {
    transport.deliver(sim, 0, 1, 0, [&](sim::Time qd) {
      delivered.push_back(sim.now());
      queue_delays.push_back(qd);
    });
  }
  sim.run();
  // Egress ready at 0.5/1.0/1.5; +1 propagation; ingress server adds 0.5
  // each, serialized: 2.0 / 2.5 / 3.0.
  ASSERT_EQ(delivered, (std::vector<sim::Time>{2.0, 2.5, 3.0}));
  ASSERT_EQ(queue_delays, (std::vector<sim::Time>{1.0, 1.5, 2.0}));
  const net::CongestionStats& stats = transport.congestion();
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_EQ(stats.batches, 3u);  // no coalescing window
  EXPECT_EQ(stats.egress_depth_peak, 3u);
  EXPECT_DOUBLE_EQ(stats.egress_busy_total, 1.5);
  EXPECT_DOUBLE_EQ(stats.queue_delay_total, 4.5);
}

TEST(QueueingArithmetic, BandwidthSerializesTheLink) {
  net::Transport transport;
  net::QueueingConfig cfg;
  cfg.link_bandwidth = 100.0;
  transport.install_queueing(cfg);
  sim::Simulator sim;
  std::vector<sim::Time> delivered;
  transport.deliver(sim, 0, 1, 50, [&](sim::Time) {
    delivered.push_back(sim.now());
  });
  transport.deliver(sim, 0, 1, 50, [&](sim::Time) {
    delivered.push_back(sim.now());
  });
  sim.run();
  // tx = 0.5 each, serialized on the wire: arrivals 1.5 and 2.0.
  ASSERT_EQ(delivered, (std::vector<sim::Time>{1.5, 2.0}));
  EXPECT_EQ(transport.congestion().bytes_on_wire, 100u);
}

TEST(QueueingArithmetic, CoalescingWindowSharesOneDeparture) {
  net::Transport transport;
  net::QueueingConfig cfg;
  cfg.coalesce_window = 1.0;
  transport.install_queueing(cfg);
  sim::Simulator sim;
  std::vector<std::pair<int, sim::Time>> delivered;
  auto send = [&](int tag) {
    transport.deliver(sim, 0, 1, 0, [&delivered, &sim, tag](sim::Time) {
      delivered.emplace_back(tag, sim.now());
    });
  };
  send(0);                                      // opens batch, departs at 1.0
  sim.schedule_at(0.5, [&] { send(1); });       // joins the open batch
  sim.schedule_at(2.5, [&] { send(2); });       // past departure: new batch
  sim.run();
  ASSERT_EQ(delivered.size(), 3u);
  // Batch members ride one departure (1.0) and arrive together at 2.0, in
  // FIFO order; the late message departs at 3.5 and arrives at 4.5.
  EXPECT_EQ(delivered[0], (std::pair<int, sim::Time>{0, 2.0}));
  EXPECT_EQ(delivered[1], (std::pair<int, sim::Time>{1, 2.0}));
  EXPECT_EQ(delivered[2], (std::pair<int, sim::Time>{2, 4.5}));
  const net::CongestionStats& stats = transport.congestion();
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.departures_saved(), 1u);
  EXPECT_EQ(stats.batch_occupancy[0], 1u);  // one singleton batch
  EXPECT_EQ(stats.batch_occupancy[1], 1u);  // one pair batch
}

// ---------------------------------------------------------------------------
// FIFO and conservation under random load.
// ---------------------------------------------------------------------------

TEST(QueueingInvariants, PerLinkFifoAndConservationUnderRandomLoad) {
  net::Transport transport;
  transport.install_queueing(loaded_config());
  const net::Queueing* queueing = transport.queueing();
  ASSERT_NE(queueing, nullptr);

  sim::Simulator sim;
  Rng rng(kSeed + 6);
  constexpr int kMessages = 400;
  constexpr net::NodeId kNodes = 8;
  std::uint64_t test_sent = 0;
  std::uint64_t test_delivered = 0;
  // Per-link send sequence numbers; deliveries must replay them in order.
  std::map<std::pair<net::NodeId, net::NodeId>, std::vector<int>> sent_seq;
  std::map<std::pair<net::NodeId, net::NodeId>, std::vector<int>> seen_seq;
  for (int i = 0; i < kMessages; ++i) {
    const auto from = static_cast<net::NodeId>(rng.next_index(kNodes));
    auto to = static_cast<net::NodeId>(rng.next_index(kNodes - 1));
    to = to == from ? static_cast<net::NodeId>(kNodes - 1) : to;
    const auto bytes = static_cast<std::uint32_t>(rng.next_int(0, 300));
    const double at = rng.next_double(0.0, 40.0);
    sim.schedule_at(at, [&, from, to, bytes, i] {
      ++test_sent;
      sent_seq[{from, to}].push_back(i);
      transport.deliver(sim, from, to, bytes, [&, from, to, i](sim::Time qd) {
        EXPECT_GE(qd, 0.0);
        ++test_delivered;
        seen_seq[{from, to}].push_back(i);
        // Message conservation at an event boundary: everything sent was
        // either delivered or is still in flight.
        EXPECT_EQ(queueing->sent(), test_sent);
        EXPECT_EQ(queueing->delivered(), test_delivered);
        EXPECT_EQ(queueing->in_flight(), test_sent - test_delivered);
      });
    });
  }
  sim.run();
  EXPECT_EQ(test_delivered, static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(queueing->in_flight(), 0u);
  EXPECT_EQ(transport.congestion().messages,
            static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(seen_seq, sent_seq);  // per-link FIFO survives coalescing
}

TEST(QueueingInvariants, P99LatencyMonotoneInOfferedLoad) {
  auto net = fissione::FissioneNetwork::build(64, kSeed);
  std::vector<std::vector<net::NodeId>> walks;
  for (int i = 0; i < 64; ++i) {
    walks.push_back(net.route(net.random_peer(), net.random_object_id()).path);
  }
  net::QueueingConfig cfg = loaded_config();
  cfg.service_rate = 0.5;
  double previous = 0.0;
  for (const double gap : {4.0, 0.5, 0.0625}) {
    net.install_queueing(cfg);
    net::Transport& transport = net.transport();
    sim::MetricSet metrics(6.0);
    sim::Simulator sim;
    for (std::size_t i = 0; i < walks.size(); ++i) {
      sim.schedule_at(static_cast<double>(i) * gap, [&, i] {
        transport.deliver_walk(
            sim, walks[i], transport.default_message_bytes(),
            [&metrics](const sim::QueryStats& s) { metrics.add(s); });
      });
    }
    sim.run();
    const double p99 = metrics.latency_percentiles().p99();
    EXPECT_GT(p99, previous) << "gap " << gap;
    EXPECT_GT(metrics.queue_delay().mean_or(0.0), 0.0);
    previous = p99;
  }
}

// ---------------------------------------------------------------------------
// Repair batching through the churn drivers.
// ---------------------------------------------------------------------------

sim::ChurnProcess::LifetimeConfig heavy_config(double horizon) {
  sim::ChurnProcess::LifetimeConfig cfg;
  cfg.shape = 1.2;
  cfg.scale = 2.0;
  cfg.arrival_rate = 1.5;
  cfg.crash_fraction = 0.1;
  cfg.horizon = horizon;
  return cfg;
}

TEST(RepairBatching, FissioneRepairCoalescesAndStaysDeterministic) {
  auto run = [](net::CongestionStats* wire) {
    auto net = fissione::FissioneNetwork::build(200, kSeed);
    net::QueueingConfig cfg;
    cfg.default_message_bytes = 128;
    cfg.link_bandwidth = 4096.0;
    cfg.coalesce_window = 0.5;
    net.install_queueing(cfg);
    for (int i = 0; i < 300; ++i) {
      net.publish(net.random_object_id(), static_cast<std::uint64_t>(i));
    }
    sim::Simulator sim;
    fissione::ChurnDriver driver(net, sim);
    driver.schedule(
        sim::ChurnProcess::lifetimes(heavy_config(25.0), kSeed + 7));
    sim.run();
    *wire = net.congestion();
    return driver.stats();
  };
  net::CongestionStats wire_a;
  net::CongestionStats wire_b;
  const sim::ChurnStats stats_a = run(&wire_a);
  const sim::ChurnStats stats_b = run(&wire_b);
  EXPECT_EQ(stats_a, stats_b);
  EXPECT_EQ(wire_a, wire_b);
  EXPECT_GT(stats_a.events(), 0u);
  EXPECT_GT(wire_a.messages, 0u);
  EXPECT_LE(wire_a.batches, wire_a.messages);
  // A leave/crash hands objects and neighbor updates to the same absorbing
  // peer inside one event: those same-link repair messages must share
  // departures at least once over a whole schedule.
  EXPECT_GT(wire_a.departures_saved(), 0u);
  EXPECT_GT(stats_a.repair_latency_total, 0.0);
}

TEST(RepairBatching, ChordRepairCoalescesAndStaysDeterministic) {
  auto run = [](net::CongestionStats* wire) {
    chord::ChordNetwork net(200, kSeed);
    net::QueueingConfig cfg;
    cfg.default_message_bytes = 128;
    cfg.link_bandwidth = 4096.0;
    cfg.coalesce_window = 0.5;
    net.install_queueing(cfg);
    sim::Simulator sim;
    chord::ChurnDriver driver(net, sim);
    driver.schedule(
        sim::ChurnProcess::lifetimes(heavy_config(25.0), kSeed + 8));
    sim.run();
    *wire = net.congestion();
    return driver.stats();
  };
  net::CongestionStats wire_a;
  net::CongestionStats wire_b;
  const sim::ChurnStats stats_a = run(&wire_a);
  const sim::ChurnStats stats_b = run(&wire_b);
  EXPECT_EQ(stats_a, stats_b);
  EXPECT_EQ(wire_a, wire_b);
  EXPECT_GT(stats_a.events(), 0u);
  EXPECT_GT(wire_a.messages, 0u);
  EXPECT_LE(wire_a.batches, wire_a.messages);
  EXPECT_GT(stats_a.repair_latency_total, 0.0);
}

// ---------------------------------------------------------------------------
// CongestionStats interval accounting.
// ---------------------------------------------------------------------------

TEST(CongestionStats, IntervalDeltaSubtractsAdditiveCounters) {
  net::Transport transport;
  transport.install_queueing(loaded_config());
  sim::Simulator sim;
  transport.deliver(sim, 0, 1, 64, [](sim::Time) {});
  sim.run();
  const net::CongestionStats snapshot = transport.congestion();
  transport.deliver(sim, 1, 2, 64, [](sim::Time) {});
  transport.deliver(sim, 1, 2, 64, [](sim::Time) {});
  sim.run();
  net::CongestionStats delta = transport.congestion();
  delta -= snapshot;
  EXPECT_EQ(delta.messages, 2u);
  EXPECT_EQ(delta.bytes_on_wire, 128u);
}

}  // namespace
