// Timed-churn battery: membership events driven through the Simulator with
// transport-priced repair (sim::ChurnProcess + the per-overlay drivers).
//
// Covers, for FISSIONE and the Chord baseline:
//  * structural invariants at every event boundary (neighborhood invariant,
//    PeerID-length bound, finger-table consistency),
//  * repair message budgets,
//  * the zero-delay degenerate schedule reproducing the instant
//    join/leave/crash path bitwise,
//  * stale-route windows: queries racing repair detour or fail observably
//    and recover at quiescence,
//  * cross-run determinism of ChurnStats/QueryStats (same seed + same
//    trace => identical measurements from two independent stacks).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "armada/churn_harness.h"
#include "chord/churn_driver.h"
#include "fissione/churn_driver.h"
#include "fissione/types.h"
#include "net/latency_model.h"
#include "obs/trace.h"
#include "rebalance/rebalance.h"
#include "sim/churn.h"
#include "sim/workload.h"
#include "support/test_networks.h"
#include "support/test_workloads.h"
#include "util/rng.h"

namespace armada {
namespace {

using fissione::FissioneNetwork;
using sim::ChurnEvent;
using sim::ChurnEventKind;
using sim::ChurnProcess;
using testsupport::make_single_index;

std::vector<ChurnEvent> mixed_schedule(double rate, sim::Time horizon,
                                       std::uint64_t seed) {
  ChurnProcess::Config cfg;
  cfg.join_rate = rate * 0.45;
  cfg.leave_rate = rate * 0.40;
  cfg.crash_rate = rate * 0.15;
  cfg.horizon = horizon;
  return ChurnProcess(cfg, seed).events();
}

TEST(ChurnProcess, PoissonScheduleIsDeterministicAndSorted) {
  const auto a = mixed_schedule(1.0, 80.0, 404);
  const auto b = mixed_schedule(1.0, 80.0, 404);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].kind, b[i].kind);
    if (i > 0) {
      EXPECT_GE(a[i].at, a[i - 1].at);
    }
    EXPECT_LT(a[i].at, 80.0);
  }
  // A different seed produces a different trace.
  const auto c = mixed_schedule(1.0, 80.0, 405);
  ASSERT_FALSE(c.empty());
  EXPECT_NE(a.front().at, c.front().at);
}

/// Seed sweep for the lifetime-schedule determinism battery: the fixed CI
/// seeds, or the single ARMADA_FUZZ_SEED override (same contract as
/// integration_fuzz_test — a failing seed replays the exact schedule).
std::vector<std::uint64_t> lifetime_seeds() {
  if (const char* env = std::getenv("ARMADA_FUZZ_SEED")) {
    char* end = nullptr;
    const std::uint64_t seed = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0') {
      std::fprintf(stderr,
                   "invalid ARMADA_FUZZ_SEED '%s' (expected an unsigned "
                   "integer)\n",
                   env);
      std::exit(2);
    }
    return {seed};
  }
  return {11, 12, 13, 14};
}

TEST(ChurnProcess, HeavyTailedLifetimesAreDeterministicAndValid) {
  for (const auto tail : {ChurnProcess::LifetimeConfig::Tail::kPareto,
                          ChurnProcess::LifetimeConfig::Tail::kWeibull}) {
    for (const std::uint64_t seed : lifetime_seeds()) {
      ChurnProcess::LifetimeConfig cfg;
      cfg.tail = tail;
      cfg.shape = 1.2;
      cfg.scale = 2.0;
      cfg.arrival_rate = 2.0;
      cfg.crash_fraction = 0.2;
      cfg.horizon = 60.0;
      const auto a = ChurnProcess::lifetimes(cfg, seed);
      const auto b = ChurnProcess::lifetimes(cfg, seed);
      ASSERT_FALSE(a.empty());
      // Pure function of (config, seed): bit-identical on every call.
      ASSERT_EQ(a.size(), b.size());
      std::size_t joins = 0;
      std::size_t departures = 0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].at, b[i].at);
        EXPECT_EQ(a[i].kind, b[i].kind);
        if (i > 0) {
          EXPECT_GE(a[i].at, a[i - 1].at);
        }
        EXPECT_GE(a[i].at, 0.0);
        EXPECT_LT(a[i].at, cfg.horizon);
        if (a[i].kind == ChurnEventKind::kJoin) {
          ++joins;
        } else {
          ++departures;
        }
      }
      // Every departure belongs to some session that joined earlier; a few
      // long-lived sessions outrun the horizon and never depart.
      EXPECT_GE(joins, departures);
      // A Pareto lifetime is at least the scale parameter, so no departure
      // can precede the first join by less than it.
      if (tail == ChurnProcess::LifetimeConfig::Tail::kPareto) {
        const auto first_departure = std::find_if(
            a.begin(), a.end(), [](const ChurnEvent& e) {
              return e.kind != ChurnEventKind::kJoin;
            });
        if (first_departure != a.end()) {
          EXPECT_GE(first_departure->at, a.front().at + cfg.scale);
        }
      }
      // A different seed draws a different session stream.
      const auto c = ChurnProcess::lifetimes(cfg, seed + 1);
      ASSERT_FALSE(c.empty());
      EXPECT_NE(a.front().at, c.front().at);
    }
  }
}

TEST(ChurnProcess, TraceIsSortedAndValidated) {
  auto trace = ChurnProcess::from_trace({{5.0, ChurnEventKind::kLeave},
                                         {1.0, ChurnEventKind::kJoin},
                                         {5.0, ChurnEventKind::kCrash}});
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].at, 1.0);
  // Stable: equal-time events keep their relative order.
  EXPECT_EQ(trace[1].kind, ChurnEventKind::kLeave);
  EXPECT_EQ(trace[2].kind, ChurnEventKind::kCrash);
}

// --- invariants at event boundaries ----------------------------------------

TEST(FissioneTimedChurn, InvariantsHoldAtEveryEventBoundary) {
  auto fx = make_single_index(120, 9101);
  fx->net.set_latency_model(std::make_shared<net::TransitStub>(9102));
  sim::Simulator sim;
  fissione::ChurnDriver driver(fx->net, sim);

  const auto events = mixed_schedule(1.2, 60.0, 9103);
  ASSERT_GT(events.size(), 20u);
  int boundaries_checked = 0;
  for (const ChurnEvent& e : events) {
    driver.schedule(e);
    // FIFO tie order: this runs right after the membership event executes.
    sim.schedule_at(e.at, [&] {
      fx->net.check_invariants();
      EXPECT_LE(fx->net.max_neighbor_length_gap(), 1u);
      const double log_n =
          std::log2(static_cast<double>(fx->net.num_peers()));
      // Paper §3: max PeerID length < 2 log2 N (slack for tiny N).
      EXPECT_LT(static_cast<double>(fx->net.peer_id_length_histogram().max()),
                2.0 * log_n + 2.0);
      ++boundaries_checked;
    });
  }
  sim.run();
  EXPECT_EQ(boundaries_checked, static_cast<int>(events.size()));
  EXPECT_GT(driver.stats().events(), 0u);
  EXPECT_GT(driver.stats().repair_messages, 0u);
  EXPECT_GT(driver.stats().repair_latency_max, 0.0);
}

TEST(ChordTimedChurn, FingerTablesConsistentAtEveryEventBoundary) {
  chord::ChordNetwork net(150, 9201);
  net.set_latency_model(std::make_shared<net::UniformJitter>(9202));
  sim::Simulator sim;
  chord::ChurnDriver driver(net, sim);

  const auto events = mixed_schedule(1.0, 50.0, 9203);
  ASSERT_GT(events.size(), 15u);
  for (const ChurnEvent& e : events) {
    driver.schedule(e);
    sim.schedule_at(e.at, [&] { net.check_invariants(); });
  }
  sim.run();
  EXPECT_GT(driver.stats().events(), 0u);
  EXPECT_GT(driver.stats().repair_messages, 0u);
  EXPECT_GT(driver.stats().repair_latency_max, 0.0);
}

// --- repair message budget --------------------------------------------------

TEST(FissioneTimedChurn, RepairStaysWithinExpectedMessageBudget) {
  auto fx = make_single_index(100, 9301);
  testsupport::publish_uniform_values(fx->index, 300, 9302);
  sim::Simulator sim;
  fissione::ChurnDriver driver(fx->net, sim);

  const auto events = mixed_schedule(1.0, 50.0, 9303);
  for (const ChurnEvent& e : events) {
    sim.schedule_at(e.at, [&, kind = e.kind] {
      // Budget per event, from the overlay's structural bounds: placement
      // is one route (<= max PeerID length) plus one balancing walk
      // (strictly descending lengths), table updates go to the rewired
      // peers of at most three fusion/split sites (in-degree bounded), and
      // at most two batched handoffs.
      const auto& net = fx->net;
      const double max_len =
          static_cast<double>(net.peer_id_length_histogram().max());
      std::size_t max_degree = 0;
      for (fissione::PeerId p : net.alive_peers()) {
        max_degree = std::max(max_degree, net.peer(p).out_neighbors.size() +
                                              net.peer(p).in_neighbors.size());
      }
      const std::uint64_t before = driver.stats().repair_messages;
      driver.execute(kind);
      const std::uint64_t delta = driver.stats().repair_messages - before;
      EXPECT_LE(delta, static_cast<std::uint64_t>(
                           2.0 * max_len + 3.0 * static_cast<double>(
                                                     max_degree) + 8.0));
    });
  }
  sim.run();
  EXPECT_GT(driver.stats().events(), 0u);
}

// --- zero-delay degenerate schedule == instant churn ------------------------

TEST(FissioneTimedChurn, ZeroDelayScheduleMatchesInstantChurnBitwise) {
  constexpr std::uint64_t kSeed = 9401;
  auto timed = make_single_index(90, kSeed);
  auto instant = make_single_index(90, kSeed);
  testsupport::publish_uniform_values(timed->index, 200, kSeed + 1);
  testsupport::publish_uniform_values(instant->index, 200, kSeed + 1);

  sim::Simulator sim;
  fissione::ChurnDriver::Config cfg;
  cfg.zero_delay = true;
  fissione::ChurnDriver driver(timed->net, sim, cfg);

  const auto events = mixed_schedule(1.5, 40.0, 9402);
  ASSERT_GT(events.size(), 20u);
  driver.schedule(events);
  sim.run();

  // Twin evolution through the instant path, replicating the driver's
  // victim selection and floor guard.
  for (const ChurnEvent& e : events) {
    switch (e.kind) {
      case ChurnEventKind::kJoin:
        instant->net.join();
        break;
      case ChurnEventKind::kLeave:
        if (instant->net.num_peers() > cfg.min_peers) {
          instant->net.leave(instant->net.random_peer());
        }
        break;
      case ChurnEventKind::kCrash:
        if (instant->net.num_peers() > cfg.min_peers) {
          instant->net.crash(instant->net.random_peer());
        }
        break;
    }
  }

  // Bitwise-identical overlays: same membership, same structure, same
  // stores, same routes.
  ASSERT_EQ(timed->net.num_peers(), instant->net.num_peers());
  EXPECT_EQ(timed->net.total_objects(), instant->net.total_objects());
  EXPECT_EQ(timed->net.average_degree(), instant->net.average_degree());
  EXPECT_EQ(timed->net.peer_id_length_histogram().buckets(),
            instant->net.peer_id_length_histogram().buckets());
  timed->net.check_invariants();
  instant->net.check_invariants();

  Rng rng_a(9403);
  Rng rng_b(9403);
  for (int i = 0; i < 60; ++i) {
    const auto target =
        timed->net.kautz_hash("zero-delay" + std::to_string(i));
    const auto ra = timed->net.route(timed->random_issuer(rng_a), target);
    const auto rb = instant->net.route(instant->random_issuer(rng_b), target);
    EXPECT_EQ(ra.path, rb.path);
    EXPECT_EQ(ra.latency, rb.latency);
  }

  // Zero-delay means no stale windows and no repair latency — but the
  // repair traffic is still accounted.
  EXPECT_EQ(driver.stats().repair_latency_max, 0.0);
  EXPECT_GT(driver.stats().repair_messages, 0u);
  EXPECT_TRUE(driver.stale_peers().empty());
  EXPECT_EQ(driver.objects_in_flight(), 0u);
}

TEST(ChordTimedChurn, ZeroDelayScheduleMatchesInstantChurnBitwise) {
  constexpr std::uint64_t kSeed = 9501;
  chord::ChordNetwork timed(80, kSeed);
  chord::ChordNetwork instant(80, kSeed);

  sim::Simulator sim;
  chord::ChurnDriver::Config cfg;
  cfg.zero_delay = true;
  chord::ChurnDriver driver(timed, sim, cfg);

  const auto events = mixed_schedule(1.0, 30.0, 9502);
  ASSERT_GT(events.size(), 10u);
  driver.schedule(events);
  sim.run();

  for (const ChurnEvent& e : events) {
    switch (e.kind) {
      case ChurnEventKind::kJoin:
        instant.join();
        break;
      case ChurnEventKind::kLeave:
        if (instant.num_nodes() > cfg.min_nodes) {
          instant.leave(instant.random_node());
        }
        break;
      case ChurnEventKind::kCrash:
        if (instant.num_nodes() > cfg.min_nodes) {
          instant.crash(instant.random_node());
        }
        break;
    }
  }

  ASSERT_EQ(timed.num_nodes(), instant.num_nodes());
  ASSERT_EQ(timed.ring().size(), instant.ring().size());
  for (std::size_t i = 0; i < timed.ring().size(); ++i) {
    EXPECT_EQ(timed.ring()[i], instant.ring()[i]);
    EXPECT_EQ(timed.node_key(timed.ring()[i]),
              instant.node_key(instant.ring()[i]));
  }
  timed.check_invariants();
  instant.check_invariants();

  Rng rng(9503);
  for (int i = 0; i < 80; ++i) {
    const auto from = timed.ring()[rng.next_index(timed.ring().size())];
    const chord::Key key = rng.engine()();
    std::vector<chord::NodeId> path_a;
    std::vector<chord::NodeId> path_b;
    const auto ra = timed.route(from, key, &path_a);
    const auto rb = instant.route(from, key, &path_b);
    EXPECT_EQ(path_a, path_b);
    EXPECT_EQ(ra.stats.latency, rb.stats.latency);
  }
  EXPECT_EQ(driver.stats().repair_latency_max, 0.0);
  EXPECT_TRUE(driver.stale_nodes().empty());
}

// --- stale windows: detour-or-fail, then recovery ---------------------------

TEST(FissioneTimedChurn, StaleWindowQueriesDetourOrFailThenRecover) {
  auto fx = make_single_index(60, 9601);
  testsupport::publish_uniform_values(fx->index, 240, 9602);
  fx->net.set_latency_model(std::make_shared<net::TransitStub>(9603));
  sim::Simulator sim;
  fissione::ChurnDriver driver(fx->net, sim);
  core::ChurnHarness harness(fx->index, driver);

  // A burst of leaves and crashes, each probed while its window is open.
  std::vector<ChurnEvent> trace;
  for (int i = 0; i < 10; ++i) {
    trace.push_back({1.0 + i, i % 3 == 2 ? ChurnEventKind::kCrash
                                         : ChurnEventKind::kLeave});
  }
  std::uint64_t probes_with_missing = 0;
  for (const ChurnEvent& e : trace) {
    driver.schedule(e);
    sim.schedule_at(e.at, [&] {
      // Probe from inside the stale window: full-domain query, so every
      // in-flight object is observably missing from the answer.
      const auto stale = driver.stale_peers();
      ASSERT_FALSE(stale.empty());
      const auto out = harness.range_query(stale.front(), 0.0, 1000.0);
      EXPECT_TRUE(out.stale);
      if (out.missed > 0) {
        ++probes_with_missing;
      }
    });
  }
  sim.run();

  const sim::ChurnStats& stats = driver.stats();
  EXPECT_EQ(stats.queries, 10u);
  EXPECT_EQ(stats.stale_queries, 10u);
  EXPECT_GT(stats.detours + stats.objects_missed, 0u);
  EXPECT_GT(stats.objects_handed_off, 0u);
  EXPECT_GT(stats.objects_dropped, 0u);  // the crashes lost objects
  EXPECT_GT(probes_with_missing, 0u);

  // At quiescence every window is closed: queries are clean and exact.
  EXPECT_TRUE(driver.stale_peers().empty());
  EXPECT_EQ(driver.objects_in_flight(), 0u);
  Rng rng(9604);
  for (int i = 0; i < 20; ++i) {
    const double lo = rng.next_double(0.0, 900.0);
    const double hi = lo + rng.next_double(0.0, 100.0);
    const auto out = harness.range_query(fx->random_issuer(rng), lo, hi);
    EXPECT_FALSE(out.stale);
    EXPECT_EQ(out.detours, 0u);
    EXPECT_EQ(out.missed, 0u);
    std::vector<std::uint64_t> expected;
    for (auto p : fx->net.alive_peers()) {
      for (const auto& obj : fx->net.peer(p).store) {
        const double v = fx->index.attributes(obj.payload)[0];
        if (v >= lo && v <= hi) {
          expected.push_back(obj.payload);
        }
      }
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(out.matches, expected);
  }
}

TEST(FissioneTimedChurn, StaleExactMatchRoutesDetourAndRecover) {
  auto fx = make_single_index(70, 9651);
  fx->net.set_latency_model(std::make_shared<net::TransitStub>(9652));
  sim::Simulator sim;
  fissione::ChurnDriver driver(fx->net, sim);

  std::vector<ChurnEvent> trace;
  for (int i = 0; i < 8; ++i) {
    trace.push_back({1.0 + i, i % 2 == 0 ? ChurnEventKind::kCrash
                                         : ChurnEventKind::kJoin});
  }
  int probe = 0;
  for (const ChurnEvent& e : trace) {
    driver.schedule(e);
    sim.schedule_at(e.at, [&] {
      // Probe an exact-match lookup from inside the open window.
      const auto stale = driver.stale_peers();
      ASSERT_FALSE(stale.empty());
      const auto target =
          fx->net.kautz_hash("stale-route" + std::to_string(probe++));
      const auto out = driver.route(stale.front(), target);
      EXPECT_TRUE(out.stale);
      if (out.failed) {
        EXPECT_EQ(out.route.owner, fissione::kNoPeer);
      } else {
        EXPECT_EQ(out.route.owner, fx->net.owner_of(target));
        // Each detour adds exactly one message/hop on top of the walk.
        EXPECT_EQ(out.stats.messages, out.route.hops + out.detours);
      }
    });
  }
  sim.run();
  EXPECT_EQ(driver.stats().queries, 8u);
  EXPECT_EQ(driver.stats().stale_queries, 8u);
  EXPECT_GT(driver.stats().detours, 0u);

  // Quiescent routes are clean and cost exactly the structural walk.
  EXPECT_TRUE(driver.stale_peers().empty());
  Rng rng(9653);
  for (int i = 0; i < 30; ++i) {
    const auto target = fx->net.kautz_hash("quiet" + std::to_string(i));
    const auto out = driver.route(fx->random_issuer(rng), target);
    EXPECT_FALSE(out.stale);
    EXPECT_EQ(out.detours, 0u);
    EXPECT_EQ(out.route.owner, fx->net.owner_of(target));
    EXPECT_EQ(out.stats.messages, out.route.stats().messages);
    EXPECT_EQ(out.stats.latency, out.route.stats().latency);
  }
}

TEST(ChordTimedChurn, StaleRoutesDetourAndRecover) {
  chord::ChordNetwork net(120, 9701);
  net.set_latency_model(std::make_shared<net::TransitStub>(9702));
  sim::Simulator sim;
  chord::ChurnDriver driver(net, sim);

  std::vector<ChurnEvent> trace;
  for (int i = 0; i < 8; ++i) {
    trace.push_back({1.0 + i, i % 2 == 0 ? ChurnEventKind::kCrash
                                         : ChurnEventKind::kJoin});
  }
  Rng probe_rng(9703);
  for (const ChurnEvent& e : trace) {
    driver.schedule(e);
    sim.schedule_at(e.at, [&] {
      const auto stale = driver.stale_nodes();
      ASSERT_FALSE(stale.empty());
      const auto out = driver.route(stale.front(), probe_rng.engine()());
      EXPECT_TRUE(out.stale);
      if (!out.failed) {
        EXPECT_TRUE(net.is_alive(out.route.owner));
      } else {
        EXPECT_EQ(out.route.owner, chord::kNoNode);
      }
    });
  }
  sim.run();

  EXPECT_EQ(driver.stats().queries, 8u);
  EXPECT_EQ(driver.stats().stale_queries, 8u);

  // Quiescent routes are clean.
  EXPECT_TRUE(driver.stale_nodes().empty());
  Rng rng(9704);
  for (int i = 0; i < 30; ++i) {
    const auto from = net.ring()[rng.next_index(net.ring().size())];
    const auto out = driver.route(from, rng.engine()());
    EXPECT_FALSE(out.stale);
    EXPECT_EQ(out.detours, 0u);
    EXPECT_EQ(out.stats.latency, out.route.stats.latency);
  }
}

// --- determinism: same seed + same trace => identical stats ------------------

struct FissioneChurnRun {
  std::unique_ptr<testsupport::SingleIndexFixture> fx;
  sim::Simulator sim;
  std::unique_ptr<fissione::ChurnDriver> driver;
  std::unique_ptr<core::ChurnHarness> harness;
  sim::ChurnStats churn;
  double query_latency_total = 0.0;
  double query_delay_total = 0.0;
  std::uint64_t query_messages_total = 0;

  explicit FissioneChurnRun(std::uint64_t seed) {
    fx = make_single_index(80, seed);
    testsupport::publish_uniform_values(fx->index, 200, seed + 1);
    fx->net.set_latency_model(std::make_shared<net::RttMatrix>(seed + 2));
    driver = std::make_unique<fissione::ChurnDriver>(fx->net, sim);
    harness = std::make_unique<core::ChurnHarness>(fx->index, *driver);

    driver->schedule(mixed_schedule(1.0, 40.0, seed + 3));
    auto rng = std::make_shared<Rng>(seed + 4);
    for (int q = 0; q < 50; ++q) {
      sim.schedule_at(0.5 + 0.8 * q, [this, rng] {
        const double lo = rng->next_double(0.0, 900.0);
        const double hi = lo + rng->next_double(0.0, 100.0);
        const auto& alive = fx->net.alive_peers();
        const auto out = harness->range_query(
            alive[rng->next_index(alive.size())], lo, hi);
        query_latency_total += out.stats.latency;
        query_delay_total += out.stats.delay;
        query_messages_total += out.stats.messages;
      });
    }
    sim.run();
    churn = driver->stats();
  }
};

TEST(ChurnDeterminism, SameSeedAndTraceGiveIdenticalStats) {
  constexpr std::uint64_t kSeed = 9801;
  const FissioneChurnRun a(kSeed);
  const FissioneChurnRun b(kSeed);

  // The whole ChurnStats currency, bitwise.
  EXPECT_TRUE(a.churn == b.churn);
  EXPECT_GT(a.churn.events(), 0u);
  EXPECT_GT(a.churn.repair_latency_max, 0.0);
  EXPECT_EQ(a.query_latency_total, b.query_latency_total);
  EXPECT_EQ(a.query_delay_total, b.query_delay_total);
  EXPECT_EQ(a.query_messages_total, b.query_messages_total);
  EXPECT_EQ(a.sim.events_processed(), b.sim.events_processed());

  // A different seed moves the measurements (sanity that the comparison
  // is not vacuous).
  const FissioneChurnRun c(kSeed + 1);
  EXPECT_FALSE(a.churn == c.churn);
}

TEST(ChurnDeterminism, ChordStatsAgreeAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    chord::ChordNetwork net(100, seed);
    net.set_latency_model(std::make_shared<net::RttMatrix>(seed + 1));
    sim::Simulator sim;
    chord::ChurnDriver driver(net, sim);
    driver.schedule(mixed_schedule(0.8, 40.0, seed + 2));
    auto rng = std::make_shared<Rng>(seed + 3);
    auto latency = std::make_shared<double>(0.0);
    for (int q = 0; q < 40; ++q) {
      sim.schedule_at(0.25 + 0.9 * q, [&net, &driver, rng, latency] {
        const auto from =
            net.ring()[rng->next_index(net.ring().size())];
        *latency += driver.route(from, rng->engine()()).stats.latency;
      });
    }
    sim.run();
    return std::make_pair(driver.stats(), *latency);
  };
  const auto a = run(9901);
  const auto b = run(9901);
  EXPECT_TRUE(a.first == b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.first.events(), 0u);
}

// --- span-tree well-formedness under churn ----------------------------------

TEST(TimedChurnTracing, SpanTreesStayWellFormedAcrossDetourAndMigration) {
  auto fx = make_single_index(80, 9951);
  testsupport::publish_uniform_values(fx->index, 400, 9952);

  // Trace everything: the structural invariants must hold on every trace,
  // not just a lucky sample.
  obs::TraceConfig tc;
  tc.sample_period = 1;
  auto recorder = std::make_shared<obs::TraceRecorder>(tc);
  fx->net.transport().attach_trace(recorder);

  // Rebalancing on, so traced queries race in-flight migrations and
  // delegation cutovers too.  The load map is the rebalancer's signal
  // source; without it no sweep ever finds a hot peer.
  fissione::ServiceLoadMap load;
  fx->net.set_service_load(&load);
  rebalance::RebalanceConfig rcfg;
  rcfg.trigger_load = 2.5;
  rcfg.target_load = 1.25;
  rcfg.sweep_interval = 8;
  rcfg.cooldown = 32;
  rcfg.max_inflight = 4;
  const rebalance::Rebalancer& rb = fx->index.enable_rebalancing(rcfg);

  sim::Simulator sim;
  fissione::ChurnDriver driver(fx->net, sim);
  core::ChurnHarness harness(fx->index, driver);

  // Crash-heavy schedule, probed inside each stale window: the traced
  // queries take crash detours while the repair wave records its own
  // "repair/*" traces around them.
  sim::ZipfValues zipf(testsupport::kPaperDomain, 80, 1.0, Rng(9953));
  for (int i = 0; i < 8; ++i) {
    const ChurnEvent e{1.0 + i, i % 2 == 0 ? ChurnEventKind::kCrash
                                           : ChurnEventKind::kLeave};
    driver.schedule(e);
    sim.schedule_at(e.at, [&] {
      const auto stale = driver.stale_peers();
      ASSERT_FALSE(stale.empty());
      const double c = zipf.next();
      const double lo = std::max(0.0, c - 12.5);
      harness.range_query(stale.front(), lo, std::min(1000.0, lo + 25.0));
    });
  }
  sim.run();

  // Skewed queries at quiescence trip migrations; querying continues while
  // transfers are in flight, so traced queries cross mid-migration state.
  Rng rng(9954);
  for (int q = 0; q < 300; ++q) {
    const double c = zipf.next();
    const double w = (q % 4 == 0) ? 25.0 : 2.5;
    harness.range_query(fx->random_issuer(rng), std::max(0.0, c - w),
                        std::min(1000.0, c + w));
  }
  fx->net.transport().detach_trace();
  EXPECT_GT(rb.stats().migrations_started, 0u);

  // Structural invariants over everything recorded: no orphan spans, no
  // cross-trace parents, monotone instants, children starting no earlier
  // than their roots — and conservation: every begun span was delivered.
  EXPECT_EQ(recorder->validate(), "");
  EXPECT_EQ(recorder->spans_recorded(), recorder->spans_delivered());
  EXPECT_EQ(recorder->roots_seen(), recorder->roots_sampled());
  EXPECT_EQ(recorder->spans_dropped(), 0u);

  // Both root families are present, and a traced query observed a
  // migration launch.
  bool repair_root = false;
  bool query_root = false;
  bool migration_flagged = false;
  for (const obs::Span& s : recorder->spans()) {
    if (s.parent == 0 && s.name != nullptr) {
      const std::string_view name(s.name);
      repair_root = repair_root || name.substr(0, 7) == "repair/";
      query_root = query_root || name == "pira" || name == "walk";
      migration_flagged =
          migration_flagged || (s.flags & obs::kFlagMigration) != 0;
    }
  }
  EXPECT_TRUE(repair_root);
  EXPECT_TRUE(query_root);
  EXPECT_TRUE(migration_flagged);
}

}  // namespace
}  // namespace armada
