// Observability layer: JSON formatting, the unified metrics registry, the
// stats->registry publish adapters, the periodic sampler, and end-to-end
// query tracing with the delay-bound auditor.
//
// The two house rules the suite pins down:
//  * tracing is passive — a traced run produces bitwise identical
//    QueryStats (and answers) to an untraced run of the same workload;
//  * span trees are exact — one child span per transport delivery, chain
//    parentage along walks, instants matching the priced link latencies,
//    and the auditor attributing the precise hop that crossed the bound.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fissione/network.h"
#include "net/transport.h"
#include "obs/json_writer.h"
#include "obs/publish.h"
#include "obs/registry.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "support/test_networks.h"
#include "support/test_workloads.h"
#include "util/rng.h"

namespace armada {
namespace {

using testsupport::make_single_index;

// --- JsonWriter -------------------------------------------------------------

TEST(JsonWriter, EscapesStringsExactly) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(obs::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, FormatsNumbersExactly) {
  EXPECT_EQ(obs::json_number(0.0), "0");
  EXPECT_EQ(obs::json_number(5.0), "5");
  EXPECT_EQ(obs::json_number(-3.0), "-3");
  EXPECT_EQ(obs::json_number(0.5), "0.5");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(obs::json_number(std::nan("")), "null");
}

TEST(JsonWriter, BuildsObjectsInInsertionOrder) {
  obs::JsonWriter w;
  w.field("s", "a\"b").field("i", 5).field("d", 0.5).field("b", true);
  w.field_raw("o", "{}");
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\",\"i\":5,\"d\":0.5,\"b\":true,\"o\":{}}");
  EXPECT_EQ(obs::JsonWriter().str(), "{}");
}

// --- Registry ---------------------------------------------------------------

TEST(Registry, CountersGaugesAndHistograms) {
  obs::Registry reg;
  reg.inc("c");
  reg.inc("c", 2.5);
  EXPECT_DOUBLE_EQ(reg.value("c"), 3.5);

  reg.count("mono", 10.0);
  reg.count("mono", 10.0);  // same cumulative value is fine
  reg.count("mono", 12.0);
  EXPECT_DOUBLE_EQ(reg.value("mono"), 12.0);

  reg.set("g", 7.0);
  reg.set("g", 2.0);  // gauges overwrite, including downward
  EXPECT_DOUBLE_EQ(reg.value("g"), 2.0);

  reg.observe("h", 3.0);
  reg.observe("h", 5.0);
  const obs::Registry::Histogram* h = reg.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->mean(), 4.0);
  EXPECT_DOUBLE_EQ(h->max, 5.0);
  EXPECT_GE(h->quantile(1.0), h->max);  // bucket edges upper-bound the tail
  EXPECT_DOUBLE_EQ(reg.value("h"), 2.0);  // scalar view = count

  EXPECT_DOUBLE_EQ(reg.value("unknown"), 0.0);
  EXPECT_FALSE(reg.contains("unknown"));
  EXPECT_EQ(reg.size(), 4u);
}

TEST(Registry, VisitsInstrumentsInNameOrder) {
  obs::Registry reg;
  reg.inc("zeta");
  reg.set("alpha", 1.0);
  reg.observe("mid", 2.0);
  std::vector<std::string> names;
  reg.visit([&names](const std::string& name, obs::Registry::Kind, double,
                     const obs::Registry::Histogram*) {
    names.push_back(name);
  });
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

// --- publish adapters -------------------------------------------------------

TEST(Publish, QueryStatsLandUnderThePrefix) {
  sim::QueryStats q;
  q.messages = 6;
  q.latency = 4.5;
  q.delay = 4.0;
  q.coverage = 0.75;
  q.shed = 2;
  q.hedges = 1;
  obs::Registry reg;
  obs::publish(reg, "q", q);
  obs::publish(reg, "q", q);
  EXPECT_DOUBLE_EQ(reg.value("q.queries"), 2.0);
  EXPECT_DOUBLE_EQ(reg.value("q.shed"), 4.0);
  EXPECT_DOUBLE_EQ(reg.value("q.hedges"), 2.0);
  const obs::Registry::Histogram* lat = reg.histogram("q.latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 2u);
  EXPECT_DOUBLE_EQ(lat->mean(), 4.5);
  EXPECT_DOUBLE_EQ(reg.histogram("q.coverage")->mean(), 0.75);
}

TEST(Publish, CongestionStatsIncludePerClassSeries) {
  net::CongestionStats c;
  c.messages = 10;
  c.class_messages[net::class_index(net::TrafficClass::kRepair)] = 3;
  c.queue_delay_max = 1.5;
  obs::Registry reg;
  obs::publish(reg, "net", c);
  EXPECT_DOUBLE_EQ(reg.value("net.messages"), 10.0);
  EXPECT_DOUBLE_EQ(reg.value("net.class.repair.messages"), 3.0);
  EXPECT_DOUBLE_EQ(reg.value("net.class.query.messages"), 0.0);
  EXPECT_TRUE(reg.contains("net.class.handoff.messages"));
  EXPECT_TRUE(reg.contains("net.class.hedge.messages"));
  EXPECT_DOUBLE_EQ(reg.value("net.queue_delay_max"), 1.5);
}

TEST(Publish, TrafficClassNamesArePinned) {
  EXPECT_STREQ(obs::traffic_class_name(net::TrafficClass::kQuery), "query");
  EXPECT_STREQ(obs::traffic_class_name(net::TrafficClass::kRepair), "repair");
  EXPECT_STREQ(obs::traffic_class_name(net::TrafficClass::kHandoff),
               "handoff");
  EXPECT_STREQ(obs::traffic_class_name(net::TrafficClass::kHedge), "hedge");
}

// --- Sampler ----------------------------------------------------------------

TEST(Sampler, PreScheduledTicksSnapshotTheRegistry) {
  obs::Registry reg;
  int ticks = 0;
  obs::Sampler sampler(reg, [&](obs::Registry& r) {
    r.set("g", static_cast<double>(ticks));
    ++ticks;
  });
  sim::Simulator sim;
  sampler.schedule(sim, 0.0, 10.0, 2.5);
  sim.run();
  ASSERT_EQ(sampler.samples().size(), 5u);
  EXPECT_DOUBLE_EQ(sampler.samples()[0].t, 0.0);
  EXPECT_DOUBLE_EQ(sampler.samples()[2].t, 5.0);
  EXPECT_DOUBLE_EQ(sampler.samples()[4].t, 10.0);
  // Third tick snapshots the gauge set by its own collect (ticks was 2).
  ASSERT_EQ(sampler.samples()[2].values.size(), 1u);
  EXPECT_EQ(sampler.samples()[2].values[0].first, "g");
  EXPECT_DOUBLE_EQ(sampler.samples()[2].values[0].second, 2.0);

  const std::string jsonl = sampler.jsonl("s");
  std::size_t lines = 0;
  for (char ch : jsonl) {
    lines += ch == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, 5u);
  EXPECT_EQ(jsonl.substr(0, 47),
            "{\"schema\":1,\"kind\":\"sample\",\"series\":\"s\",\"t\":0,");
}

TEST(Sampler, HistogramsFlattenIntoSamples) {
  obs::Registry reg;
  obs::Sampler sampler(reg, [](obs::Registry& r) { r.observe("h", 8.0); });
  sampler.tick(1.0);
  ASSERT_EQ(sampler.samples().size(), 1u);
  const auto& values = sampler.samples()[0].values;
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].first, "h.count");
  EXPECT_DOUBLE_EQ(values[0].second, 1.0);
  EXPECT_EQ(values[1].first, "h.mean");
  EXPECT_DOUBLE_EQ(values[1].second, 8.0);
  EXPECT_EQ(values[2].first, "h.max");
  EXPECT_DOUBLE_EQ(values[2].second, 8.0);
}

// --- TraceRecorder ----------------------------------------------------------

TEST(TraceRecorder, ScopesNestAndRestore) {
  obs::TraceRecorder rec;
  EXPECT_EQ(rec.context(), 0u);
  {
    const auto outer = rec.enter(7);
    EXPECT_EQ(rec.context(), 7u);
    {
      const auto inner = rec.enter(9);
      EXPECT_EQ(rec.context(), 9u);
    }
    EXPECT_EQ(rec.context(), 7u);
  }
  EXPECT_EQ(rec.context(), 0u);
}

TEST(TraceRecorder, MaybeBeginJoinsTheEnclosingTrace) {
  obs::TraceRecorder rec;
  const std::uint64_t root = rec.begin_trace("pira", 3, 0.0);
  ASSERT_NE(root, 0u);
  const auto scope = rec.enter(root);
  EXPECT_EQ(rec.maybe_begin("walk", 4, 0.5), 0u);  // nested: joins, no new root
  EXPECT_EQ(rec.roots_sampled(), 1u);
}

TEST(TraceRecorder, SamplingIsDeterministicInSeedAndOrdinal) {
  obs::TraceConfig cfg;
  cfg.sample_period = 4;
  cfg.seed = 99;
  obs::TraceRecorder a(cfg);
  obs::TraceRecorder b(cfg);
  std::vector<bool> picked_a;
  std::vector<bool> picked_b;
  for (int i = 0; i < 200; ++i) {
    picked_a.push_back(a.begin_trace("walk", 0, 0.0) != 0);
    picked_b.push_back(b.begin_trace("walk", 0, 0.0) != 0);
  }
  EXPECT_EQ(picked_a, picked_b);
  EXPECT_EQ(a.roots_seen(), 200u);
  // 1-in-4 on average; the splitmix64 mix must pick a nontrivial subset.
  EXPECT_GT(a.roots_sampled(), 20u);
  EXPECT_LT(a.roots_sampled(), 180u);
}

TEST(TraceRecorder, AnnotationsMirrorOntoTheRoot) {
  obs::TraceRecorder rec;
  const std::uint64_t root = rec.begin_trace("pira", 0, 0.0);
  ASSERT_NE(root, 0u);
  const auto scope = rec.enter(root);
  const std::uint64_t hop = rec.span_begin(0, 1, 64,
                                           net::TrafficClass::kQuery, 0.0,
                                           0.0);
  ASSERT_NE(hop, 0u);
  rec.span_delivered(hop, 1.0, 0.0);
  {
    const auto hop_scope = rec.enter(hop);
    rec.annotate(obs::kFlagHedge);
  }
  EXPECT_EQ(rec.find(hop)->flags & obs::kFlagHedge, obs::kFlagHedge);
  EXPECT_EQ(rec.find(root)->flags & obs::kFlagHedge, obs::kFlagHedge);
}

// --- tracing at the Transport seam ------------------------------------------

/// Path over the first `hops + 1` alive peers of `net`.
std::vector<net::NodeId> first_path(const fissione::FissioneNetwork& net,
                                    std::size_t hops) {
  const auto peers = net.alive_peers();
  EXPECT_GE(peers.size(), hops + 1);
  return {peers.begin(), peers.begin() + static_cast<std::ptrdiff_t>(hops) + 1};
}

TEST(Tracing, WalkSpansChainWithExactInstantsAndAuditorAttribution) {
  auto fx = make_single_index(40, 8101);
  net::Transport& transport = fx->net.transport();
  obs::TraceConfig cfg;
  cfg.sample_period = 1;
  cfg.delay_bound = 2.5;
  auto rec = std::make_shared<obs::TraceRecorder>(cfg);
  transport.attach_trace(rec);

  // Four unit-latency hops (ConstantHop 1.0, stateless path): deliveries
  // at t = 1, 2, 3, 4 exactly.
  const auto path = first_path(fx->net, 4);
  sim::Simulator sim;
  sim::QueryStats out;
  transport.deliver_walk(sim, path, transport.default_message_bytes(),
                         [&out](const sim::QueryStats& s) { out = s; });
  sim.run();
  transport.detach_trace();

  EXPECT_EQ(out.messages, 4u);
  EXPECT_DOUBLE_EQ(out.latency, 4.0);
  EXPECT_EQ(rec->validate(), "");
  EXPECT_EQ(rec->spans_recorded(), rec->spans_delivered());

  const auto& spans = rec->spans();
  ASSERT_EQ(spans.size(), 5u);  // root + one span per hop
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_STREQ(spans[0].name, "walk");
  EXPECT_EQ(spans[0].from, path.front());
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].trace, spans[0].id);
    // Chain parentage: each hop's continuation runs inside the previous
    // hop's re-entered scope.
    EXPECT_EQ(spans[i].parent, spans[i - 1].id);
    EXPECT_EQ(spans[i].from, path[i - 1]);
    EXPECT_EQ(spans[i].to, path[i]);
    EXPECT_DOUBLE_EQ(spans[i].send_at, static_cast<double>(i - 1));
    EXPECT_DOUBLE_EQ(spans[i].deliver_at, static_cast<double>(i));
    EXPECT_DOUBLE_EQ(spans[i].queue_delay, 0.0);
    EXPECT_EQ(spans[i].cls, net::TrafficClass::kQuery);
  }

  // Auditor: latency 4 > bound 2.5; the violating hop is the first on the
  // critical path arriving past the bound — the 3rd hop (deliver_at 3).
  EXPECT_EQ(rec->violations(), 1u);
  ASSERT_EQ(rec->slow_queries().size(), 1u);
  const obs::SlowQuery& sq = rec->slow_queries()[0];
  EXPECT_DOUBLE_EQ(sq.latency, 4.0);
  EXPECT_DOUBLE_EQ(sq.bound, 2.5);
  EXPECT_EQ(sq.violating_span, spans[3].id);
  EXPECT_NE(sq.dump.find("VIOLATES"), std::string::npos);
  EXPECT_NE(rec->slow_query_log().find("VIOLATES"), std::string::npos);
}

TEST(Tracing, ExportsAreWellFormedAndComplete) {
  auto fx = make_single_index(40, 8102);
  net::Transport& transport = fx->net.transport();
  obs::TraceConfig cfg;
  cfg.sample_period = 1;
  auto rec = std::make_shared<obs::TraceRecorder>(cfg);
  transport.attach_trace(rec);
  sim::Simulator sim;
  transport.deliver_walk(sim, first_path(fx->net, 3),
                         transport.default_message_bytes(),
                         [](const sim::QueryStats&) {});
  sim.run();
  transport.detach_trace();

  const std::string chrome = rec->chrome_trace_json();
  EXPECT_EQ(chrome.substr(0, 12), "{\"schema\":1,");
  EXPECT_NE(chrome.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(chrome.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);

  const std::string jsonl = rec->spans_jsonl();
  std::size_t lines = 0;
  for (char ch : jsonl) {
    lines += ch == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, rec->spans().size());
  EXPECT_NE(jsonl.find("\"kind\":\"trace\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"span\""), std::string::npos);

  rec->clear();
  EXPECT_TRUE(rec->spans().empty());
  EXPECT_EQ(rec->spans_recorded(), 0u);
}

// One full query workload; returns every query's stats in issue order.
std::vector<sim::QueryStats> run_workload(
    const std::shared_ptr<obs::TraceRecorder>& rec,
    std::vector<std::vector<std::uint64_t>>* answers = nullptr) {
  auto fx = make_single_index(60, 8103);
  testsupport::publish_uniform_values(fx->index, 300, 8104);
  if (rec != nullptr) {
    fx->net.transport().attach_trace(rec);
  }
  std::vector<sim::QueryStats> out;
  Rng rng(8105);
  for (int q = 0; q < 40; ++q) {
    const double lo = rng.next_double(0.0, 950.0);
    const auto r =
        fx->index.range_query(fx->random_issuer(rng), lo, lo + 40.0);
    out.push_back(r.stats);
    if (answers != nullptr) {
      answers->push_back(r.matches);
    }
  }
  if (rec != nullptr) {
    fx->net.transport().detach_trace();
  }
  return out;
}

TEST(Tracing, TracedRunIsBitwiseIdenticalToUntraced) {
  std::vector<std::vector<std::uint64_t>> plain_answers;
  std::vector<std::vector<std::uint64_t>> traced_answers;
  const auto plain = run_workload(nullptr, &plain_answers);

  obs::TraceConfig cfg;
  cfg.sample_period = 2;  // mixed: sampled and unsampled queries interleave
  cfg.seed = 8106;
  auto rec = std::make_shared<obs::TraceRecorder>(cfg);
  const auto traced = run_workload(rec, &traced_answers);

  ASSERT_EQ(plain.size(), traced.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i], traced[i]) << "query " << i;  // bitwise QueryStats
  }
  EXPECT_EQ(plain_answers, traced_answers);
  EXPECT_GT(rec->roots_sampled(), 0u);
  EXPECT_LT(rec->roots_sampled(), rec->roots_seen());
}

TEST(Tracing, SpanCountConservesQueryMessages) {
  obs::TraceConfig cfg;
  cfg.sample_period = 1;
  auto rec = std::make_shared<obs::TraceRecorder>(cfg);
  const auto stats = run_workload(rec);

  std::uint64_t messages = 0;
  for (const sim::QueryStats& s : stats) {
    messages += s.messages;
  }
  std::uint64_t hop_spans = 0;
  for (const obs::Span& s : rec->spans()) {
    hop_spans += s.parent != 0 ? 1 : 0;
  }
  // Every transport delivery of every traced query — and nothing else —
  // became a hop span.
  EXPECT_EQ(hop_spans, messages);
  EXPECT_EQ(rec->roots_sampled(), stats.size());
  EXPECT_EQ(rec->validate(), "");
  EXPECT_EQ(rec->spans_recorded(), rec->spans_delivered());
}

}  // namespace
}  // namespace armada
