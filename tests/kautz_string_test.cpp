#include "kautz/kautz_string.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/check.h"

namespace armada::kautz {
namespace {

TEST(KautzString, ParseAndPrint) {
  const auto s = KautzString::parse("0120");
  EXPECT_EQ(s.length(), 4u);
  EXPECT_EQ(s.to_string(), "0120");
  EXPECT_EQ(s.base(), 2);
  EXPECT_EQ(KautzString(2).to_string(), "<empty>");
}

TEST(KautzString, RejectsAdjacentRepeats) {
  EXPECT_THROW(KautzString::parse("011"), CheckError);
  EXPECT_THROW(KautzString::parse("00"), CheckError);
}

TEST(KautzString, RejectsDigitsAboveBase) {
  EXPECT_THROW(KautzString::parse("013"), CheckError);
  EXPECT_NO_THROW(KautzString::parse("013", 3));
}

TEST(KautzString, PushPopRespectInvariant) {
  KautzString s{2};
  s.push_back(1);
  EXPECT_FALSE(s.can_append(1));
  EXPECT_TRUE(s.can_append(0));
  EXPECT_TRUE(s.can_append(2));
  EXPECT_THROW(s.push_back(1), CheckError);
  s.push_back(2);
  EXPECT_EQ(s.to_string(), "12");
  s.pop_back();
  EXPECT_EQ(s.to_string(), "1");
}

TEST(KautzString, PrefixSuffixSlices) {
  const auto s = KautzString::parse("21012");
  EXPECT_EQ(s.prefix(3).to_string(), "210");
  EXPECT_EQ(s.suffix(2).to_string(), "12");
  EXPECT_EQ(s.prefix(0).length(), 0u);
  EXPECT_EQ(s.drop_front().to_string(), "1012");
}

TEST(KautzString, ConcatChecksJunction) {
  const auto a = KautzString::parse("012");
  EXPECT_EQ(a.concat(KautzString::parse("01")).to_string(), "01201");
  EXPECT_THROW(a.concat(KautzString::parse("21")), CheckError);
  EXPECT_EQ(a.concat(KautzString(2)), a);
}

TEST(KautzString, PrefixSuffixPredicates) {
  const auto s = KautzString::parse("0120");
  EXPECT_TRUE(KautzString::parse("01").is_prefix_of(s));
  EXPECT_FALSE(KautzString::parse("02").is_prefix_of(s));
  EXPECT_TRUE(KautzString::parse("20").is_suffix_of(s));
  EXPECT_FALSE(KautzString::parse("12").is_suffix_of(s));
  EXPECT_TRUE(KautzString(2).is_prefix_of(s));
  EXPECT_TRUE(s.is_prefix_of(s));
}

TEST(KautzString, LongestSuffixPrefixAlignment) {
  // Suffix "12" of 212 is a prefix of "120...".
  const auto id = KautzString::parse("212");
  EXPECT_EQ(id.longest_suffix_prefix(KautzString::parse("1202")), 2u);
  EXPECT_EQ(id.longest_suffix_prefix(KautzString::parse("2021")), 1u);
  EXPECT_EQ(id.longest_suffix_prefix(KautzString::parse("0121")), 0u);
  // Whole-string alignment.
  EXPECT_EQ(id.longest_suffix_prefix(KautzString::parse("21201")), 3u);
}

TEST(KautzString, LexicographicOrder) {
  EXPECT_LT(KautzString::parse("010"), KautzString::parse("012"));
  EXPECT_LT(KautzString::parse("012"), KautzString::parse("020"));
  EXPECT_LT(KautzString::parse("01"), KautzString::parse("010"));  // prefix first
  EXPECT_EQ(KautzString::parse("120"), KautzString::parse("120"));
  EXPECT_GT(KautzString::parse("2"), KautzString::parse("1210"));
}

TEST(KautzString, HashDistinguishesStrings) {
  std::unordered_set<KautzString, KautzStringHash> set;
  set.insert(KautzString::parse("010"));
  set.insert(KautzString::parse("012"));
  set.insert(KautzString::parse("010"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(KautzString::parse("012")));
  EXPECT_FALSE(set.contains(KautzString::parse("021")));
}

TEST(KautzString, CrossBaseComparisonRejected) {
  const auto a = KautzString::parse("01", 2);
  const auto b = KautzString::parse("01", 3);
  EXPECT_THROW((void)(a < b), CheckError);
}

}  // namespace
}  // namespace armada::kautz
