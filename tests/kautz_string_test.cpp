#include "kautz/kautz_string.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace armada::kautz {
namespace {

TEST(KautzString, ParseAndPrint) {
  const auto s = KautzString::parse("0120");
  EXPECT_EQ(s.length(), 4u);
  EXPECT_EQ(s.to_string(), "0120");
  EXPECT_EQ(s.base(), 2);
  EXPECT_EQ(KautzString(2).to_string(), "<empty>");
}

TEST(KautzString, RejectsAdjacentRepeats) {
  EXPECT_THROW(KautzString::parse("011"), CheckError);
  EXPECT_THROW(KautzString::parse("00"), CheckError);
}

TEST(KautzString, RejectsDigitsAboveBase) {
  EXPECT_THROW(KautzString::parse("013"), CheckError);
  EXPECT_NO_THROW(KautzString::parse("013", 3));
}

TEST(KautzString, PushPopRespectInvariant) {
  KautzString s{2};
  s.push_back(1);
  EXPECT_FALSE(s.can_append(1));
  EXPECT_TRUE(s.can_append(0));
  EXPECT_TRUE(s.can_append(2));
  EXPECT_THROW(s.push_back(1), CheckError);
  s.push_back(2);
  EXPECT_EQ(s.to_string(), "12");
  s.pop_back();
  EXPECT_EQ(s.to_string(), "1");
}

TEST(KautzString, PrefixSuffixSlices) {
  const auto s = KautzString::parse("21012");
  EXPECT_EQ(s.prefix(3).to_string(), "210");
  EXPECT_EQ(s.suffix(2).to_string(), "12");
  EXPECT_EQ(s.prefix(0).length(), 0u);
  EXPECT_EQ(s.drop_front().to_string(), "1012");
}

TEST(KautzString, ConcatChecksJunction) {
  const auto a = KautzString::parse("012");
  EXPECT_EQ(a.concat(KautzString::parse("01")).to_string(), "01201");
  EXPECT_THROW(a.concat(KautzString::parse("21")), CheckError);
  EXPECT_EQ(a.concat(KautzString(2)), a);
}

TEST(KautzString, PrefixSuffixPredicates) {
  const auto s = KautzString::parse("0120");
  EXPECT_TRUE(KautzString::parse("01").is_prefix_of(s));
  EXPECT_FALSE(KautzString::parse("02").is_prefix_of(s));
  EXPECT_TRUE(KautzString::parse("20").is_suffix_of(s));
  EXPECT_FALSE(KautzString::parse("12").is_suffix_of(s));
  EXPECT_TRUE(KautzString(2).is_prefix_of(s));
  EXPECT_TRUE(s.is_prefix_of(s));
}

TEST(KautzString, LongestSuffixPrefixAlignment) {
  // Suffix "12" of 212 is a prefix of "120...".
  const auto id = KautzString::parse("212");
  EXPECT_EQ(id.longest_suffix_prefix(KautzString::parse("1202")), 2u);
  EXPECT_EQ(id.longest_suffix_prefix(KautzString::parse("2021")), 1u);
  EXPECT_EQ(id.longest_suffix_prefix(KautzString::parse("0121")), 0u);
  // Whole-string alignment.
  EXPECT_EQ(id.longest_suffix_prefix(KautzString::parse("21201")), 3u);
}

TEST(KautzString, LexicographicOrder) {
  EXPECT_LT(KautzString::parse("010"), KautzString::parse("012"));
  EXPECT_LT(KautzString::parse("012"), KautzString::parse("020"));
  EXPECT_LT(KautzString::parse("01"), KautzString::parse("010"));  // prefix first
  EXPECT_EQ(KautzString::parse("120"), KautzString::parse("120"));
  EXPECT_GT(KautzString::parse("2"), KautzString::parse("1210"));
}

TEST(KautzString, HashDistinguishesStrings) {
  std::unordered_set<KautzString, KautzStringHash> set;
  set.insert(KautzString::parse("010"));
  set.insert(KautzString::parse("012"));
  set.insert(KautzString::parse("010"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(KautzString::parse("012")));
  EXPECT_FALSE(set.contains(KautzString::parse("021")));
}

TEST(KautzString, CrossBaseComparisonRejected) {
  const auto a = KautzString::parse("01", 2);
  const auto b = KautzString::parse("01", 3);
  EXPECT_THROW((void)(a < b), CheckError);
}

// --- packed-vs-reference fuzz ---------------------------------------------
//
// The packed word representation must be observationally identical to the
// obvious digit-vector implementation. Every operation is replayed against
// a naive reference on plain std::vector<uint8_t>; lengths run past the
// inline capacity so the heap-spill path is exercised too. Seeds follow the
// repo-wide fuzz contract: fixed CI seeds, or one ARMADA_FUZZ_SEED override
// to replay a failure exactly.

using Digits = std::vector<std::uint8_t>;

std::vector<std::uint64_t> fuzz_seeds() {
  if (const char* env = std::getenv("ARMADA_FUZZ_SEED")) {
    char* end = nullptr;
    const std::uint64_t seed = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0') {
      std::fprintf(stderr,
                   "invalid ARMADA_FUZZ_SEED '%s' (expected an unsigned "
                   "integer)\n",
                   env);
      std::exit(2);
    }
    return {seed};
  }
  return {21, 22, 23};
}

Digits random_digits(Rng& rng, std::uint8_t base, std::size_t len) {
  Digits d;
  d.reserve(len);
  int prev = -1;
  for (std::size_t i = 0; i < len; ++i) {
    auto s = static_cast<std::uint8_t>(rng.next_index(base + 1u));
    if (s == prev) {
      s = static_cast<std::uint8_t>((s + 1u) % (base + 1u));
    }
    d.push_back(s);
    prev = s;
  }
  return d;
}

Digits ref_slice(const Digits& d, std::size_t pos, std::size_t len) {
  return Digits(d.begin() + static_cast<std::ptrdiff_t>(pos),
                d.begin() + static_cast<std::ptrdiff_t>(pos + len));
}

bool ref_is_prefix(const Digits& a, const Digits& b) {
  return a.size() <= b.size() && std::equal(a.begin(), a.end(), b.begin());
}

bool ref_is_suffix(const Digits& a, const Digits& b) {
  return a.size() <= b.size() &&
         std::equal(a.begin(), a.end(), b.end() - static_cast<std::ptrdiff_t>(a.size()));
}

std::size_t ref_lsp(const Digits& a, const Digits& b) {
  const std::size_t max_t = std::min(a.size(), b.size());
  for (std::size_t t = max_t; t > 0; --t) {
    if (std::equal(a.end() - static_cast<std::ptrdiff_t>(t), a.end(),
                   b.begin())) {
      return t;
    }
  }
  return 0;
}

int ref_cmp(const Digits& a, const Digits& b) {
  if (a < b) {
    return -1;
  }
  return a == b ? 0 : 1;
}

std::string ref_str(const Digits& d) {
  if (d.empty()) {
    return "<empty>";
  }
  std::string out;
  for (std::uint8_t x : d) {
    out += static_cast<char>('0' + x);
  }
  return out;
}

TEST(KautzStringFuzz, PackedMatchesDigitVectorReference) {
  for (std::uint64_t seed : fuzz_seeds()) {
    Rng rng(seed);
    for (int iter = 0; iter < 400; ++iter) {
      // Base 2/3 exercises 2-bit packing, base 5/9 the 4-bit path; lengths
      // past 96 (the 2-bit inline capacity) reach the spill vector.
      const std::uint8_t bases[] = {2, 3, 5, 9};
      const std::uint8_t base = bases[rng.next_index(4)];
      const std::size_t len = rng.next_index(140);
      const Digits ra = random_digits(rng, base, len);
      const KautzString a(base, ra);

      ASSERT_EQ(a.length(), ra.size());
      ASSERT_EQ(a.digits(), ra);
      ASSERT_EQ(a.to_string(), ref_str(ra));
      for (std::size_t i = 0; i < ra.size(); ++i) {
        ASSERT_EQ(a.digit(i), ra[i]);
      }
      if (!ra.empty()) {
        ASSERT_EQ(a.front(), ra.front());
        ASSERT_EQ(a.back(), ra.back());
      }

      // Slices at random cut points (and the exact inline/spill boundary).
      const std::size_t cuts[] = {rng.next_index(len + 1), 0, len,
                                  std::min<std::size_t>(96, len)};
      for (std::size_t cut : cuts) {
        ASSERT_EQ(a.prefix(cut).digits(), ref_slice(ra, 0, cut));
        ASSERT_EQ(a.suffix(cut).digits(),
                  ref_slice(ra, len - cut, cut));
      }
      if (!ra.empty()) {
        ASSERT_EQ(a.drop_front().digits(), ref_slice(ra, 1, len - 1));
      }

      // Mutation round-trip.
      KautzString grown = a;
      Digits ref_grown = ra;
      for (int g = 0; g < 3; ++g) {
        const auto sym = static_cast<std::uint8_t>(rng.next_index(base + 1u));
        if (grown.can_append(sym)) {
          grown.push_back(sym);
          ref_grown.push_back(sym);
        }
        ASSERT_EQ(grown.digits(), ref_grown);
      }
      if (!ref_grown.empty()) {
        grown.pop_back();
        ref_grown.pop_back();
        ASSERT_EQ(grown.digits(), ref_grown);
      }

      // Binary relations against an independently drawn second string.
      const Digits rb = random_digits(rng, base, rng.next_index(140));
      const KautzString b(base, rb);
      ASSERT_EQ(a.is_prefix_of(b), ref_is_prefix(ra, rb));
      ASSERT_EQ(a.is_suffix_of(b), ref_is_suffix(ra, rb));
      ASSERT_EQ(a.longest_suffix_prefix(b), ref_lsp(ra, rb));
      const auto ord = a <=> b;
      ASSERT_EQ(ord < 0 ? -1 : (ord == 0 ? 0 : 1), ref_cmp(ra, rb));
      ASSERT_EQ(a == b, ra == rb);

      // Shared-prefix pairs stress the word-aligned compare tails.
      if (len >= 2) {
        const std::size_t head = 1 + rng.next_index(len - 1);
        KautzString c = a.prefix(head);
        Digits rc = ref_slice(ra, 0, head);
        const auto sym = static_cast<std::uint8_t>(rng.next_index(base + 1u));
        if (c.can_append(sym)) {
          c.push_back(sym);
          rc.push_back(sym);
        }
        const auto ord2 = a <=> c;
        ASSERT_EQ(ord2 < 0 ? -1 : (ord2 == 0 ? 0 : 1), ref_cmp(ra, rc));
        ASSERT_EQ(a.is_prefix_of(c), ref_is_prefix(ra, rc));
      }

      // Concat through a junction-respecting bridge.
      if (!ra.empty() && !rb.empty()) {
        Digits bridge = rb;
        if (bridge.front() == ra.back()) {
          bridge.erase(bridge.begin());
        }
        if (!bridge.empty()) {
          const KautzString joined = a.concat(KautzString(base, bridge));
          Digits ref_joined = ra;
          ref_joined.insert(ref_joined.end(), bridge.begin(), bridge.end());
          ASSERT_EQ(joined.digits(), ref_joined);
          ASSERT_EQ(joined.length(), ra.size() + bridge.size());
        }
      }

      // Equal strings hash equally (storage-independent: build one copy
      // through a different construction path).
      KautzString rebuilt(base);
      for (std::uint8_t x : ra) {
        rebuilt.push_back(x);
      }
      ASSERT_EQ(KautzStringHash{}(a), KautzStringHash{}(rebuilt));
      ASSERT_TRUE(a == rebuilt);
    }
  }
}

}  // namespace
}  // namespace armada::kautz
