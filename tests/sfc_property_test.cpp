// Property / round-trip tests for the SFC layer: Hilbert and Morton
// encode<->decode are inverses at every order, and Hilbert keeps its
// locality contract — consecutive curve positions are edge-adjacent cells.
#include <gtest/gtest.h>

#include <cstdlib>

#include "sfc/hilbert.h"
#include "sfc/morton.h"
#include "util/rng.h"

namespace armada::sfc {
namespace {

std::uint64_t manhattan(const Cell& a, const Cell& b) {
  const auto d = [](std::uint64_t p, std::uint64_t q) {
    return p > q ? p - q : q - p;
  };
  return d(a.x, b.x) + d(a.y, b.y);
}

class SfcRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SfcRoundTrip, HilbertIndexCellInverseExhaustiveSmallOrders) {
  const std::uint32_t order = GetParam();
  if (order > 6) {
    GTEST_SKIP() << "exhaustive check only for small orders";
  }
  const std::uint64_t cells = 1ull << (2 * order);
  for (std::uint64_t d = 0; d < cells; ++d) {
    const Cell c = hilbert_cell(order, d);
    EXPECT_LT(c.x, 1ull << order);
    EXPECT_LT(c.y, 1ull << order);
    EXPECT_EQ(hilbert_index(order, c), d) << "order " << order << " d " << d;
  }
}

TEST_P(SfcRoundTrip, HilbertCellIndexInverseSampledLargeOrders) {
  const std::uint32_t order = GetParam();
  Rng rng(1000 + order);
  const std::uint64_t side = 1ull << order;
  for (int i = 0; i < 2000; ++i) {
    const Cell c{rng.next_u64(side), rng.next_u64(side)};
    EXPECT_EQ(hilbert_cell(order, hilbert_index(order, c)), c);
  }
}

TEST_P(SfcRoundTrip, MortonIndexCellInverseExhaustiveSmallOrders) {
  const std::uint32_t order = GetParam();
  if (order > 6) {
    GTEST_SKIP() << "exhaustive check only for small orders";
  }
  const std::uint64_t cells = 1ull << (2 * order);
  for (std::uint64_t d = 0; d < cells; ++d) {
    const Cell c = morton_cell(order, d);
    EXPECT_EQ(morton_index(order, c), d);
  }
}

TEST_P(SfcRoundTrip, MortonCellIndexInverseSampledLargeOrders) {
  const std::uint32_t order = GetParam();
  Rng rng(2000 + order);
  const std::uint64_t side = 1ull << order;
  for (int i = 0; i < 2000; ++i) {
    const Cell c{rng.next_u64(side), rng.next_u64(side)};
    EXPECT_EQ(morton_cell(order, morton_index(order, c)), c);
  }
}

// The defining locality property of the Hilbert curve: stepping one position
// along the curve moves exactly one cell in the grid. (Morton does not have
// this — its jumps are what make DCF flooding on Morton worse, see the
// naming-ablation bench.)
TEST_P(SfcRoundTrip, HilbertAdjacentIndicesAreAdjacentCells) {
  const std::uint32_t order = GetParam();
  if (order <= 6) {
    const std::uint64_t cells = 1ull << (2 * order);
    Cell prev = hilbert_cell(order, 0);
    for (std::uint64_t d = 1; d < cells; ++d) {
      const Cell cur = hilbert_cell(order, d);
      EXPECT_EQ(manhattan(prev, cur), 1u) << "order " << order << " d " << d;
      prev = cur;
    }
  } else {
    Rng rng(3000 + order);
    const std::uint64_t cells = 1ull << (2 * order);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t d = rng.next_u64(cells - 1);
      EXPECT_EQ(manhattan(hilbert_cell(order, d), hilbert_cell(order, d + 1)),
                1u);
    }
  }
}

// Morton adjacency is weaker but bounded within an aligned pair: indices
// 2k and 2k+1 always differ only in x.
TEST_P(SfcRoundTrip, MortonSiblingCellsDifferInOneStep) {
  const std::uint32_t order = GetParam();
  if (order == 0) {
    GTEST_SKIP();
  }
  Rng rng(4000 + order);
  const std::uint64_t pairs = 1ull << (2 * order - 1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t k = rng.next_u64(pairs);
    EXPECT_EQ(manhattan(morton_cell(order, 2 * k), morton_cell(order, 2 * k + 1)),
              1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, SfcRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 10u, 16u,
                                           24u, 31u));

// Dyadic-square ranges agree with brute force on small grids, for both
// curves — the contiguity that query decomposition relies on.
TEST(SfcSquareRange, MatchesBruteForceEnumeration) {
  for (std::uint32_t order = 1; order <= 4; ++order) {
    const std::uint64_t side = 1ull << order;
    for (std::uint32_t side_bits = 0; side_bits <= order; ++side_bits) {
      const std::uint64_t square = 1ull << side_bits;
      for (std::uint64_t cx = 0; cx < side; cx += square) {
        for (std::uint64_t cy = 0; cy < side; cy += square) {
          const Cell corner{cx, cy};
          for (const bool use_hilbert : {true, false}) {
            const IndexRange r =
                use_hilbert ? hilbert_square_range(order, corner, side_bits)
                            : morton_square_range(order, corner, side_bits);
            EXPECT_EQ(r.last - r.first, square * square);
            std::uint64_t inside = 0;
            for (std::uint64_t d = r.first; d < r.last; ++d) {
              const Cell c = use_hilbert ? hilbert_cell(order, d)
                                         : morton_cell(order, d);
              inside += (c.x >= cx && c.x < cx + square && c.y >= cy &&
                         c.y < cy + square);
            }
            EXPECT_EQ(inside, square * square)
                << "order " << order << " corner (" << cx << "," << cy
                << ") side_bits " << side_bits << " hilbert " << use_hilbert;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace armada::sfc
