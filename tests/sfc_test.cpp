#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "sfc/hilbert.h"
#include "sfc/morton.h"
#include "sfc/sfc_region.h"
#include "util/check.h"
#include "util/rng.h"

namespace armada::sfc {
namespace {

TEST(Hilbert, BijectiveExhaustiveSmallOrders) {
  for (std::uint32_t order : {1u, 2u, 3u, 4u, 5u}) {
    const std::uint64_t n = 1ull << (2 * order);
    std::set<std::uint64_t> seen;
    for (std::uint64_t x = 0; x < (1ull << order); ++x) {
      for (std::uint64_t y = 0; y < (1ull << order); ++y) {
        const std::uint64_t d = hilbert_index(order, {x, y});
        EXPECT_LT(d, n);
        EXPECT_TRUE(seen.insert(d).second);
        EXPECT_EQ(hilbert_cell(order, d), (Cell{x, y}));
      }
    }
    EXPECT_EQ(seen.size(), n);
  }
}

TEST(Hilbert, ConsecutiveIndicesAreAdjacentCells) {
  // The locality property DCF flooding depends on.
  for (std::uint32_t order : {2u, 4u, 6u}) {
    const std::uint64_t n = 1ull << (2 * order);
    Cell prev = hilbert_cell(order, 0);
    for (std::uint64_t d = 1; d < n; ++d) {
      const Cell cur = hilbert_cell(order, d);
      const std::uint64_t dx =
          cur.x > prev.x ? cur.x - prev.x : prev.x - cur.x;
      const std::uint64_t dy =
          cur.y > prev.y ? cur.y - prev.y : prev.y - cur.y;
      EXPECT_EQ(dx + dy, 1u) << "jump at d=" << d;
      prev = cur;
    }
  }
}

TEST(Hilbert, LargeOrderRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = rng.next_u64(1ull << 20);
    const std::uint64_t y = rng.next_u64(1ull << 20);
    const std::uint64_t d = hilbert_index(20, {x, y});
    EXPECT_EQ(hilbert_cell(20, d), (Cell{x, y}));
  }
}

TEST(Morton, BijectiveAndRoundTrip) {
  for (std::uint32_t order : {1u, 3u, 5u}) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t x = 0; x < (1ull << order); ++x) {
      for (std::uint64_t y = 0; y < (1ull << order); ++y) {
        const std::uint64_t d = morton_index(order, {x, y});
        EXPECT_TRUE(seen.insert(d).second);
        EXPECT_EQ(morton_cell(order, d), (Cell{x, y}));
      }
    }
  }
}

TEST(SquareRange, MatchesBruteForceEnumeration) {
  const std::uint32_t order = 5;
  for (Curve curve : {Curve::kHilbert, Curve::kMorton}) {
    for (std::uint32_t side_bits : {0u, 1u, 2u, 3u}) {
      const std::uint64_t size = 1ull << side_bits;
      for (std::uint64_t cx = 0; cx < (1ull << order); cx += size) {
        for (std::uint64_t cy = 0; cy < (1ull << order); cy += size) {
          const IndexRange r =
              curve == Curve::kHilbert
                  ? hilbert_square_range(order, {cx, cy}, side_bits)
                  : morton_square_range(order, {cx, cy}, side_bits);
          EXPECT_EQ(r.last - r.first, size * size);
          // Every cell of the square falls inside the range.
          for (std::uint64_t x = cx; x < cx + size; ++x) {
            for (std::uint64_t y = cy; y < cy + size; ++y) {
              const std::uint64_t d = curve_index(curve, order, {x, y});
              EXPECT_GE(d, r.first);
              EXPECT_LT(d, r.last);
            }
          }
        }
      }
    }
  }
}

TEST(SquareRange, RejectsMisalignedCorner) {
  EXPECT_THROW(hilbert_square_range(4, {1, 0}, 1), CheckError);
  EXPECT_THROW(morton_square_range(4, {0, 3}, 2), CheckError);
}

TEST(RectRanges, CoverExactlyTheRectangle) {
  const std::uint32_t order = 5;
  Rng rng(7);
  for (Curve curve : {Curve::kHilbert, Curve::kMorton}) {
    for (int trial = 0; trial < 40; ++trial) {
      const std::uint32_t xb = static_cast<std::uint32_t>(rng.next_u64(4));
      const std::uint32_t yb = static_cast<std::uint32_t>(rng.next_u64(4));
      const std::uint64_t xs = 1ull << xb;
      const std::uint64_t ys = 1ull << yb;
      const std::uint64_t cx = rng.next_u64((1ull << order) / xs) * xs;
      const std::uint64_t cy = rng.next_u64((1ull << order) / ys) * ys;
      const auto ranges = rect_ranges(curve, order, {cx, cy}, xb, yb);

      std::set<std::uint64_t> expected;
      for (std::uint64_t x = cx; x < cx + xs; ++x) {
        for (std::uint64_t y = cy; y < cy + ys; ++y) {
          expected.insert(curve_index(curve, order, {x, y}));
        }
      }
      std::set<std::uint64_t> got;
      for (const IndexRange& r : ranges) {
        for (std::uint64_t d = r.first; d < r.last; ++d) {
          EXPECT_TRUE(got.insert(d).second) << "overlapping ranges";
        }
      }
      EXPECT_EQ(got, expected);
    }
  }
}

TEST(RectRanges, DyadicZoneRatioTwoYieldsAtMostTwoRanges) {
  // CAN zones have side ratio <= 2: 1-2 contiguous Hilbert ranges.
  const std::uint32_t order = 8;
  EXPECT_LE(rect_ranges(Curve::kHilbert, order, {0, 0}, 3, 3).size(), 2u);
  EXPECT_LE(rect_ranges(Curve::kHilbert, order, {16, 8}, 4, 3).size(), 2u);
  EXPECT_LE(rect_ranges(Curve::kHilbert, order, {8, 16}, 3, 4).size(), 2u);
}

TEST(BoxRanges, ExactCoverMatchesBruteForce) {
  const std::uint32_t order = 5;
  Rng rng(11);
  for (Curve curve : {Curve::kHilbert, Curve::kMorton}) {
    for (int trial = 0; trial < 60; ++trial) {
      const std::uint64_t side = 1ull << order;
      std::uint64_t x0 = rng.next_u64(side);
      std::uint64_t x1 = rng.next_u64(side);
      std::uint64_t y0 = rng.next_u64(side);
      std::uint64_t y1 = rng.next_u64(side);
      if (x0 > x1) std::swap(x0, x1);
      if (y0 > y1) std::swap(y0, y1);

      const auto ranges = box_ranges(curve, order, x0, x1, y0, y1);
      std::set<std::uint64_t> expected;
      for (std::uint64_t x = x0; x <= x1; ++x) {
        for (std::uint64_t y = y0; y <= y1; ++y) {
          expected.insert(curve_index(curve, order, {x, y}));
        }
      }
      std::set<std::uint64_t> got;
      for (const IndexRange& r : ranges) {
        EXPECT_LT(r.first, r.last);
        for (std::uint64_t d = r.first; d < r.last; ++d) {
          EXPECT_TRUE(got.insert(d).second);
        }
      }
      EXPECT_EQ(got, expected);
      // Coalesced: strictly increasing, non-touching.
      for (std::size_t i = 1; i < ranges.size(); ++i) {
        EXPECT_GT(ranges[i].first, ranges[i - 1].last);
      }
    }
  }
}

TEST(BoxRanges, GranularityLimitOverApproximates) {
  const std::uint32_t order = 6;
  const auto exact = box_ranges(Curve::kHilbert, order, 3, 40, 5, 50);
  const auto coarse = box_ranges(Curve::kHilbert, order, 3, 40, 5, 50, 3);
  EXPECT_LE(coarse.size(), exact.size());
  // Every exact index is covered by the coarse set.
  for (const IndexRange& e : exact) {
    for (std::uint64_t d = e.first; d < e.last; ++d) {
      bool covered = false;
      for (const IndexRange& c : coarse) {
        if (d >= c.first && d < c.last) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << d;
    }
  }
}

TEST(IndexRange, Intersection) {
  const IndexRange a{10, 20};
  EXPECT_TRUE(a.intersects({19, 30}));
  EXPECT_TRUE(a.intersects({0, 11}));
  EXPECT_FALSE(a.intersects({20, 30}));
  EXPECT_FALSE(a.intersects({0, 10}));
}

}  // namespace
}  // namespace armada::sfc
