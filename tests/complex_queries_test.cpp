// Tests for the complex-query extensions: k-nearest-neighbor and in-network
// range aggregation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "armada/armada.h"
#include "support/test_networks.h"
#include "support/test_workloads.h"
#include "util/check.h"
#include "util/rng.h"

namespace armada::core {
namespace {

using testsupport::make_single_index;
using testsupport::publish_uniform_values;

class KnnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnnTest, MatchesBruteForceNeighbors) {
  const std::uint64_t seed = GetParam();
  auto fx = make_single_index(120, seed);
  const std::vector<double> values =
      publish_uniform_values(fx->index, 400, seed + 50);
  Rng rng(seed + 51);

  for (int trial = 0; trial < 40; ++trial) {
    const double q = rng.next_double(0.0, 1000.0);
    const std::size_t k = 1 + rng.next_index(15);
    const auto r = fx->index.nearest(fx->net.random_peer(), q, k);

    std::vector<std::pair<double, std::uint64_t>> by_dist;
    for (std::uint64_t h = 0; h < values.size(); ++h) {
      by_dist.emplace_back(std::abs(values[h] - q), h);
    }
    std::sort(by_dist.begin(), by_dist.end());
    by_dist.resize(std::min(by_dist.size(), k));
    std::vector<std::uint64_t> expected;
    for (const auto& [d, h] : by_dist) {
      expected.push_back(h);
    }
    EXPECT_EQ(r.handles, expected) << "q=" << q << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnnTest, ::testing::Values(1, 2, 3, 4));

TEST(Knn, VisitsFewZonesForSmallK) {
  auto fx = make_single_index(500, 9);
  publish_uniform_values(fx->index, 5000, 10);
  const auto r = fx->index.nearest(fx->net.random_peer(), 500.0, 5);
  EXPECT_EQ(r.handles.size(), 5u);
  EXPECT_LT(r.stats.dest_peers, 10u);
}

TEST(Knn, FewerObjectsThanKReturnsAll) {
  auto fx = make_single_index(80, 11);
  fx->index.publish(100.0);
  fx->index.publish(900.0);
  const auto r = fx->index.nearest(fx->net.random_peer(), 500.0, 10);
  EXPECT_EQ(r.handles.size(), 2u);
}

TEST(Knn, QueryAtDomainEdge) {
  auto fx = make_single_index(100, 13);
  const std::vector<double> values =
      publish_uniform_values(fx->index, 200, 14);
  const auto r = fx->index.nearest(fx->net.random_peer(), 0.0, 3);
  std::vector<double> sorted_vals = values;
  std::sort(sorted_vals.begin(), sorted_vals.end());
  ASSERT_EQ(r.handles.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(
        fx->index.attributes(r.handles[static_cast<std::size_t>(i)])[0],
        sorted_vals[static_cast<std::size_t>(i)]);
  }
}

class AggregateTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggregateTest, MatchesBruteForceAggregates) {
  const std::uint64_t seed = GetParam();
  auto fx = make_single_index(150, seed + 20);
  const std::vector<double> values =
      publish_uniform_values(fx->index, 600, seed + 70);
  Rng rng(seed + 71);

  for (int trial = 0; trial < 40; ++trial) {
    const double lo = rng.next_double(0.0, 900.0);
    const double hi = lo + rng.next_double(0.0, 100.0);
    const auto agg = fx->index.range_aggregate(fx->net.random_peer(), lo, hi);

    std::uint64_t count = 0;
    double sum = 0.0;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -mn;
    for (double v : values) {
      if (v >= lo && v <= hi) {
        ++count;
        sum += v;
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
    }
    EXPECT_EQ(agg.count, count);
    EXPECT_NEAR(agg.sum, sum, 1e-6);
    if (count > 0) {
      EXPECT_DOUBLE_EQ(agg.min, mn);
      EXPECT_DOUBLE_EQ(agg.max, mx);
      EXPECT_NEAR(agg.mean(), sum / static_cast<double>(count), 1e-9);
    }
    EXPECT_EQ(agg.records_avoided, count);
    EXPECT_EQ(agg.reply_messages, agg.stats.messages);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateTest, ::testing::Values(1, 2, 3));

TEST(Aggregate, DelayBoundHolds) {
  auto fx = make_single_index(300, 31);
  publish_uniform_values(fx->index, 1000, 32);
  for (int trial = 0; trial < 20; ++trial) {
    const auto issuer = fx->net.random_peer();
    const auto agg = fx->index.range_aggregate(issuer, 0.0, 1000.0);
    EXPECT_LE(agg.stats.delay,
              static_cast<double>(fx->net.peer(issuer).peer_id.length()));
    EXPECT_EQ(agg.count, 1000u);
  }
}

TEST(Aggregate, EmptyRange) {
  auto fx = make_single_index(60, 33);
  fx->index.publish(10.0);
  const auto agg = fx->index.range_aggregate(fx->net.random_peer(), 500.0,
                                             600.0);
  EXPECT_EQ(agg.count, 0u);
  EXPECT_THROW(agg.mean(), CheckError);
}

}  // namespace
}  // namespace armada::core
