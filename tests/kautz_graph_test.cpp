#include "kautz/kautz_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "kautz/kautz_space.h"

namespace armada::kautz {
namespace {

TEST(KautzGraph, Figure1Structure) {
  // K(2,3): 12 nodes, out-degree 2, diameter 3 (optimal diameter = k).
  const KautzGraph g(2, 3);
  EXPECT_EQ(g.num_nodes(), 12u);
  for (std::uint64_t u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(g.out_neighbors(u).size(), 2u);
    EXPECT_EQ(g.in_neighbors(u).size(), 2u);
  }
  EXPECT_EQ(g.diameter(), 3u);
}

TEST(KautzGraph, Figure1SampleEdges) {
  const KautzGraph g(2, 3);
  // Node 012 -> 120, 121 (shift left, append symbol != 2).
  const auto n = g.out_neighbors(g.node(KautzString::parse("012")));
  std::vector<std::string> labels;
  for (auto v : n) {
    labels.push_back(g.label(v).to_string());
  }
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(labels, (std::vector<std::string>{"120", "121"}));
}

TEST(KautzGraph, InOutConsistency) {
  const KautzGraph g(2, 4);
  for (std::uint64_t u = 0; u < g.num_nodes(); ++u) {
    for (std::uint64_t v : g.out_neighbors(u)) {
      const auto in = g.in_neighbors(v);
      EXPECT_NE(std::find(in.begin(), in.end(), u), in.end())
          << g.label(u).to_string() << " -> " << g.label(v).to_string();
    }
  }
}

TEST(KautzGraph, DiameterIsKForSmallGraphs) {
  EXPECT_EQ(KautzGraph(2, 2).diameter(), 2u);
  EXPECT_EQ(KautzGraph(2, 4).diameter(), 4u);
  EXPECT_EQ(KautzGraph(3, 3).diameter(), 3u);
}

TEST(KautzGraph, ShiftRouteDistanceBound) {
  // BFS distance between any two nodes is at most k (Kautz optimal
  // diameter), and equals k minus the longest suffix/prefix overlap for
  // shift routing upper bound.
  const KautzGraph g(2, 5);
  const auto from = g.node(KautzString::parse("01201"));
  const auto dist = g.bfs_distances(from);
  for (std::uint64_t v = 0; v < g.num_nodes(); ++v) {
    const auto overlap =
        g.label(from).longest_suffix_prefix(g.label(v));
    EXPECT_LE(dist[v], 5u - overlap) << g.label(v).to_string();
  }
}

}  // namespace
}  // namespace armada::kautz
