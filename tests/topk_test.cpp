#include "armada/topk.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "armada/armada.h"
#include "support/test_networks.h"
#include "support/test_workloads.h"
#include "util/check.h"
#include "util/rng.h"

namespace armada::core {
namespace {

using testsupport::make_multi_index;
using testsupport::make_single_index;
using testsupport::publish_uniform_values;

class TopKTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopKTest, MatchesBruteForceTopK) {
  const std::uint64_t seed = GetParam();
  auto fx = make_single_index(150, seed);
  const std::vector<double> values =
      publish_uniform_values(fx->index, 500, seed + 5);
  Rng rng(seed + 6);

  for (int trial = 0; trial < 30; ++trial) {
    const double lo = rng.next_double(0.0, 800.0);
    const double hi = lo + rng.next_double(0.0, 200.0);
    const std::size_t k = 1 + rng.next_index(20);
    const auto r = fx->index.top_k(fx->net.random_peer(), lo, hi, k);

    // Brute force: handles of in-range values, by descending value.
    std::vector<std::pair<double, std::uint64_t>> in_range;
    for (std::uint64_t h = 0; h < values.size(); ++h) {
      if (values[h] >= lo && values[h] <= hi) {
        in_range.emplace_back(values[h], h);
      }
    }
    std::sort(in_range.begin(), in_range.end(), [](auto a, auto b) {
      if (a.first != b.first) {
        return a.first > b.first;
      }
      return a.second < b.second;
    });
    in_range.resize(std::min(in_range.size(), k));
    std::vector<std::uint64_t> expected;
    for (const auto& [v, h] : in_range) {
      expected.push_back(h);
    }
    EXPECT_EQ(r.handles, expected) << "k=" << k << " [" << lo << "," << hi
                                   << "]";
    EXPECT_EQ(r.stats.results, expected.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKTest, ::testing::Values(1, 2, 3, 4));

TEST(TopK, StopsEarlyForSmallK) {
  auto fx = make_single_index(400, 9);
  publish_uniform_values(fx->index, 4000, 11);
  // k=3 over the whole domain should only touch the top few zones, while a
  // full range query touches every peer.
  const auto r = fx->index.top_k(fx->net.random_peer(), 0.0, 1000.0, 3);
  EXPECT_EQ(r.handles.size(), 3u);
  EXPECT_LT(r.stats.dest_peers, fx->net.num_peers() / 10);
}

TEST(TopK, EmptyRangeYieldsNothing) {
  auto fx = make_single_index(100, 13);
  fx->index.publish(10.0);
  const auto r = fx->index.top_k(fx->net.random_peer(), 500.0, 600.0, 5);
  EXPECT_TRUE(r.handles.empty());
}

TEST(TopK, FewerThanKResultsReturnsAll) {
  auto fx = make_single_index(100, 15);
  const auto h0 = fx->index.publish(100.0);
  const auto h1 = fx->index.publish(200.0);
  const auto r = fx->index.top_k(fx->net.random_peer(), 0.0, 1000.0, 10);
  EXPECT_EQ(r.handles, (std::vector<std::uint64_t>{h1, h0}));
}

TEST(TopK, RequiresSingleAttribute) {
  auto fx = make_multi_index(50, 17, kautz::Box{{0.0, 1.0}, {0.0, 1.0}});
  EXPECT_THROW(fx->index.top_k(fx->net.random_peer(), 0.0, 1.0, 3),
               CheckError);
}

}  // namespace
}  // namespace armada::core
