#include "armada/topk.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "armada/armada.h"
#include "util/check.h"
#include "util/rng.h"

namespace armada::core {
namespace {

using fissione::FissioneNetwork;

class TopKTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopKTest, MatchesBruteForceTopK) {
  const std::uint64_t seed = GetParam();
  auto net = FissioneNetwork::build(150, seed);
  ArmadaIndex index = ArmadaIndex::single(net, {0.0, 1000.0});
  Rng rng(seed + 5);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(rng.next_double(0.0, 1000.0));
    index.publish(values.back());
  }

  for (int trial = 0; trial < 30; ++trial) {
    const double lo = rng.next_double(0.0, 800.0);
    const double hi = lo + rng.next_double(0.0, 200.0);
    const std::size_t k = 1 + rng.next_index(20);
    const auto r = index.top_k(net.random_peer(), lo, hi, k);

    // Brute force: handles of in-range values, by descending value.
    std::vector<std::pair<double, std::uint64_t>> in_range;
    for (std::uint64_t h = 0; h < values.size(); ++h) {
      if (values[h] >= lo && values[h] <= hi) {
        in_range.emplace_back(values[h], h);
      }
    }
    std::sort(in_range.begin(), in_range.end(), [](auto a, auto b) {
      if (a.first != b.first) {
        return a.first > b.first;
      }
      return a.second < b.second;
    });
    in_range.resize(std::min(in_range.size(), k));
    std::vector<std::uint64_t> expected;
    for (const auto& [v, h] : in_range) {
      expected.push_back(h);
    }
    EXPECT_EQ(r.handles, expected) << "k=" << k << " [" << lo << "," << hi
                                   << "]";
    EXPECT_EQ(r.stats.results, expected.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKTest, ::testing::Values(1, 2, 3, 4));

TEST(TopK, StopsEarlyForSmallK) {
  auto net = FissioneNetwork::build(400, 9);
  ArmadaIndex index = ArmadaIndex::single(net, {0.0, 1000.0});
  Rng rng(11);
  for (int i = 0; i < 4000; ++i) {
    index.publish(rng.next_double(0.0, 1000.0));
  }
  // k=3 over the whole domain should only touch the top few zones, while a
  // full range query touches every peer.
  const auto r = index.top_k(net.random_peer(), 0.0, 1000.0, 3);
  EXPECT_EQ(r.handles.size(), 3u);
  EXPECT_LT(r.stats.dest_peers, net.num_peers() / 10);
}

TEST(TopK, EmptyRangeYieldsNothing) {
  auto net = FissioneNetwork::build(100, 13);
  ArmadaIndex index = ArmadaIndex::single(net, {0.0, 1000.0});
  index.publish(10.0);
  const auto r = index.top_k(net.random_peer(), 500.0, 600.0, 5);
  EXPECT_TRUE(r.handles.empty());
}

TEST(TopK, FewerThanKResultsReturnsAll) {
  auto net = FissioneNetwork::build(100, 15);
  ArmadaIndex index = ArmadaIndex::single(net, {0.0, 1000.0});
  const auto h0 = index.publish(100.0);
  const auto h1 = index.publish(200.0);
  const auto r = index.top_k(net.random_peer(), 0.0, 1000.0, 10);
  EXPECT_EQ(r.handles, (std::vector<std::uint64_t>{h1, h0}));
}

TEST(TopK, RequiresSingleAttribute) {
  auto net = FissioneNetwork::build(50, 17);
  ArmadaIndex index =
      ArmadaIndex::multi(net, kautz::Box{{0.0, 1.0}, {0.0, 1.0}});
  EXPECT_THROW(index.top_k(net.random_peer(), 0.0, 1.0, 3), CheckError);
}

}  // namespace
}  // namespace armada::core
