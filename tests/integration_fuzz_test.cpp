// Long-running randomized integration test: interleaves membership churn,
// publishes, and every query type Armada supports, verifying each answer
// against ground truth and every structural invariant along the way.
//
// Three modes, all honoring ARMADA_FUZZ_SEED:
//  * instant churn — membership commutes immediately (the seed behaviour);
//  * timed churn — a seeded ChurnProcess schedule runs through the
//    Simulator with transport-priced repair, and queries race the repair
//    protocol inside stale-route windows;
//  * rebalance vs churn — a Zipf-skewed query stream drives the online
//    key-space rebalancer while membership churns underneath it, including
//    a forced donor crash in the middle of a migration transfer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "armada/armada.h"
#include "armada/churn_harness.h"
#include "fissione/churn_driver.h"
#include "fissione/network.h"
#include "fissione/types.h"
#include "kautz/kautz_region.h"
#include "net/latency_model.h"
#include "sim/churn.h"
#include "sim/event_queue.h"
#include "sim/workload.h"
#include "support/test_networks.h"
#include "support/test_workloads.h"
#include "util/rng.h"

namespace armada::core {
namespace {

using fissione::FissioneNetwork;

class IntegrationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntegrationFuzz, EverythingStaysCorrectUnderInterleavedChurn) {
  const std::uint64_t seed = GetParam();
  auto fx = testsupport::make_single_index(120, seed);
  auto& net = fx->net;
  auto& index = fx->index;
  Rng rng(seed * 104729 + 13);

  std::vector<double> values;  // handle -> value (all ever published)
  auto surviving_values = [&]() {
    // Crashes can drop objects: ground truth is what peers still store.
    std::vector<std::uint64_t> alive_handles;
    for (auto p : net.alive_peers()) {
      for (const auto& obj : net.peer(p).store) {
        alive_handles.push_back(obj.payload);
      }
    }
    std::sort(alive_handles.begin(), alive_handles.end());
    return alive_handles;
  };

  for (int step = 0; step < 300; ++step) {
    const double dice = rng.next_double();
    if (dice < 0.25) {
      values.push_back(rng.next_double(0.0, 1000.0));
      index.publish(values.back());
    } else if (dice < 0.35) {
      net.join();
    } else if (dice < 0.42 && net.num_peers() > 40) {
      const auto& alive = net.alive_peers();
      net.leave(alive[rng.next_index(alive.size())]);
    } else if (dice < 0.45 && net.num_peers() > 40) {
      const auto& alive = net.alive_peers();
      net.crash(alive[rng.next_index(alive.size())]);
    } else if (!values.empty()) {
      const auto alive_handles = surviving_values();
      const double lo = rng.next_double(0.0, 900.0);
      const double hi = lo + rng.next_double(0.0, 100.0);
      const auto issuer = net.random_peer();
      const double bound =
          static_cast<double>(net.peer(issuer).peer_id.length());

      if (dice < 0.65) {  // range query
        auto got = index.range_query(issuer, lo, hi).matches;
        std::sort(got.begin(), got.end());
        std::vector<std::uint64_t> expected;
        for (std::uint64_t h : alive_handles) {
          if (values[h] >= lo && values[h] <= hi) {
            expected.push_back(h);
          }
        }
        EXPECT_EQ(got, expected);
      } else if (dice < 0.75) {  // top-k
        const std::size_t k = 1 + rng.next_index(8);
        const auto r = index.top_k(issuer, lo, hi, k);
        std::vector<std::pair<double, std::uint64_t>> in_range;
        for (std::uint64_t h : alive_handles) {
          if (values[h] >= lo && values[h] <= hi) {
            in_range.emplace_back(values[h], h);
          }
        }
        std::sort(in_range.begin(), in_range.end(), [](auto a, auto b) {
          return a.first != b.first ? a.first > b.first : a.second < b.second;
        });
        in_range.resize(std::min(in_range.size(), k));
        ASSERT_EQ(r.handles.size(), in_range.size());
        for (std::size_t i = 0; i < in_range.size(); ++i) {
          EXPECT_EQ(r.handles[i], in_range[i].second);
        }
      } else if (dice < 0.85) {  // aggregate
        const auto agg = index.range_aggregate(issuer, lo, hi);
        std::uint64_t count = 0;
        for (std::uint64_t h : alive_handles) {
          if (values[h] >= lo && values[h] <= hi) {
            ++count;
          }
        }
        EXPECT_EQ(agg.count, count);
        EXPECT_LE(agg.stats.delay, bound);
      } else {  // k-NN
        const std::size_t k = 1 + rng.next_index(5);
        const double q = rng.next_double(0.0, 1000.0);
        const auto r = index.nearest(issuer, q, k);
        std::vector<std::pair<double, std::uint64_t>> by_dist;
        for (std::uint64_t h : alive_handles) {
          by_dist.emplace_back(std::abs(values[h] - q), h);
        }
        std::sort(by_dist.begin(), by_dist.end());
        by_dist.resize(std::min(by_dist.size(), k));
        ASSERT_EQ(r.handles.size(), by_dist.size());
        for (std::size_t i = 0; i < by_dist.size(); ++i) {
          EXPECT_EQ(r.handles[i], by_dist[i].second) << "q=" << q;
        }
      }
    }

    if (step % 50 == 49) {
      net.check_invariants();
      EXPECT_LE(net.max_neighbor_length_gap(), 1u);
    }
  }
  net.check_invariants();
}

TEST_P(IntegrationFuzz, TimedChurnAnswersStaySubsetOfLiveTruth) {
  const std::uint64_t seed = GetParam();
  auto fx = testsupport::make_single_index(100, seed * 92821 + 31);
  auto& net = fx->net;
  auto& index = fx->index;
  net.set_latency_model(std::make_shared<net::TransitStub>(seed + 5));

  sim::Simulator sim;
  fissione::ChurnDriver driver(net, sim);
  core::ChurnHarness harness(index, driver);

  auto rng = std::make_shared<Rng>(seed * 48271 + 7);
  for (int i = 0; i < 220; ++i) {
    index.publish(rng->next_double(0.0, 1000.0));
  }

  // Membership change racing queries for 60 units of simulated time.
  sim::ChurnProcess::Config churn_cfg;
  churn_cfg.join_rate = 0.5;
  churn_cfg.leave_rate = 0.35;
  churn_cfg.crash_rate = 0.15;
  churn_cfg.horizon = 60.0;
  driver.schedule(sim::ChurnProcess(churn_cfg, seed ^ 0xc0ffee).events());

  int exact_answers = 0;
  for (int q = 0; q < 90; ++q) {
    sim.schedule_at(0.1 + 0.66 * q, [&net, &index, &harness, rng,
                                     &exact_answers] {
      // Occasionally publish mid-churn, so handoffs race fresh objects too.
      if (rng->next_bool(0.15)) {
        index.publish(rng->next_double(0.0, 1000.0));
      }
      const double lo = rng->next_double(0.0, 900.0);
      const double hi = lo + rng->next_double(0.0, 100.0);
      const auto& alive = net.alive_peers();
      const auto issuer = alive[rng->next_index(alive.size())];
      const auto out = harness.range_query(issuer, lo, hi);

      // Live ground truth at this instant: what the surviving peers store
      // (crashes already dropped their objects; handoffs already landed in
      // the destination store even while the transfer is still in flight).
      std::vector<std::uint64_t> expected;
      for (auto p : alive) {
        for (const auto& obj : net.peer(p).store) {
          const double v = index.attributes(obj.payload)[0];
          if (v >= lo && v <= hi) {
            expected.push_back(obj.payload);
          }
        }
      }
      std::sort(expected.begin(), expected.end());

      // The answer is always a subset of the live truth — never a dropped
      // or stale object — and misses only what is on the wire.
      EXPECT_TRUE(std::includes(expected.begin(), expected.end(),
                                out.matches.begin(), out.matches.end()))
          << "answer contains objects outside the live ground truth";
      EXPECT_EQ(out.matches.size() + out.missed,
                out.failed ? out.missed : expected.size());
      if (!out.stale && !out.failed && out.missed == 0) {
        EXPECT_EQ(out.matches, expected);
        ++exact_answers;
      }
    });
  }
  sim.run();

  net.check_invariants();
  EXPECT_LE(net.max_neighbor_length_gap(), 1u);
  const sim::ChurnStats& stats = driver.stats();
  EXPECT_EQ(stats.queries, 90u);
  EXPECT_GT(stats.events(), 0u);
  EXPECT_GT(stats.repair_latency_max, 0.0);
  // The schedule is dense enough that some queries race repair and some
  // land in quiet gaps; both outcomes must occur.
  EXPECT_GT(stats.stale_queries, 0u);
  EXPECT_GT(exact_answers, 0);
}

TEST_P(IntegrationFuzz, RebalancingUnderChurnConservesAndStaysExact) {
  const std::uint64_t seed = GetParam();
  auto fx = testsupport::make_single_index(110, seed * 69427 + 17);
  auto& net = fx->net;
  auto& index = fx->index;
  net.set_latency_model(std::make_shared<net::TransitStub>(seed + 9));

  fissione::ServiceLoadMap load;
  net.set_service_load(&load);
  rebalance::RebalanceConfig cfg;
  cfg.trigger_load = 3.0;
  cfg.target_load = 1.5;
  cfg.sweep_interval = 8;
  cfg.cooldown = 24;
  cfg.max_inflight = 3;
  rebalance::Rebalancer& rb = index.enable_rebalancing(cfg);

  Rng rng(seed * 48973 + 11);
  std::size_t published = 0;
  std::size_t dropped = 0;
  for (int i = 0; i < 240; ++i) {
    index.publish(rng.next_double(0.0, 1000.0));
    ++published;
  }

  // Drop-aware ground truth: what the surviving peers still own — native
  // stores plus delegated slices — restricted to [lo, hi]. Migrations move
  // ownership between peers but never change this set.
  const auto owned_matches = [&](double lo, double hi) {
    std::vector<std::uint64_t> out;
    for (auto p : net.alive_peers()) {
      net.for_each_owned(p, [&](const fissione::StoredObject& obj) {
        const double v = index.attributes(obj.payload)[0];
        if (v >= lo && v <= hi) {
          out.push_back(obj.payload);
        }
      });
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  sim::Simulator sim;
  sim::ZipfValues zipf(testsupport::kPaperDomain, 110, 1.0, Rng(seed + 3));

  // A Zipf-skewed query stream hot enough to trip the load trigger, with
  // mixed widths so both the full-redirect and the split-serve paths run
  // while membership churns underneath them.
  for (int q = 0; q < 120; ++q) {
    sim.schedule_at(0.1 + 0.45 * q, [&, q] {
      if (rng.next_bool(0.1)) {
        index.publish(rng.next_double(0.0, 1000.0));
        ++published;
      }
      const double c = zipf.next();
      const double w = (q % 3 == 0) ? 20.0 : 4.0;
      const double lo = std::max(0.0, c - w);
      const double hi = std::min(1000.0, c + w);
      const auto issuer = fx->random_issuer(rng);
      const double bound =
          static_cast<double>(net.peer(issuer).peer_id.length());

      const auto res = index.range_query(issuer, lo, hi);
      auto got = res.matches;
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, owned_matches(lo, hi)) << "query " << q;
      EXPECT_LE(res.stats.delay, bound);
      ASSERT_EQ(net.total_objects(), published - dropped) << "query " << q;
    });
  }

  // Membership churn racing the queries; every change runs the rebalancer's
  // membership hook, exactly as the churn drivers do.
  for (int e = 0; e < 28; ++e) {
    sim.schedule_at(0.37 + 1.9 * e, [&, e] {
      const double dice = rng.next_double();
      if (dice < 0.45) {
        net.join();
      } else if (dice < 0.8 && net.num_peers() > 60) {
        const auto& alive = net.alive_peers();
        net.leave(alive[rng.next_index(alive.size())]);
      } else if (net.num_peers() > 60) {
        const auto& alive = net.alive_peers();
        dropped += net.crash(alive[rng.next_index(alive.size())]);
      }
      rb.on_membership(sim);
      ASSERT_EQ(net.total_objects(), published - dropped) << "event " << e;
      if (e % 7 == 6) {
        net.check_invariants();
      }
    });
  }

  // Force a donor crash mid-transfer. Synchronous queries complete their
  // migrations inside their own event horizon, so put one transfer on the
  // *outer* wire — synthesizing a hot donor if no flight is active — then
  // kill its donor before the delivery event fires.
  sim.schedule_at(30.05, [&] {
    if (rb.inflight() == 0) {
      fissione::PeerId hot = fissione::kNoPeer;
      std::size_t most = 0;
      for (auto p : net.alive_peers()) {
        if (hot == fissione::kNoPeer || net.peer(p).store.size() > most) {
          hot = p;
          most = net.peer(p).store.size();
        }
      }
      load[hot] += 12;
      kautz::KautzString hot_oid = net.peer(hot).peer_id;
      while (hot_oid.length() < net.config().object_id_length) {
        for (std::uint8_t s = 0; s <= hot_oid.base(); ++s) {
          if (hot_oid.can_append(s)) {
            hot_oid.push_back(s);
            break;
          }
        }
      }
      const kautz::KautzRegion hot_region(hot_oid, hot_oid);
      for (int i = 0; i < 40 && rb.inflight() == 0; ++i) {
        rb.on_query(sim, {hot_region});
      }
    }
    ASSERT_GT(rb.inflight(), 0u);
    // One sweep may launch several flights; crashing this donor must cancel
    // exactly its flights and leave the others to land normally.
    const auto flights = rb.flight_endpoints();
    dropped += net.crash(flights.front().first);
    rb.on_membership(sim);
    EXPECT_LT(rb.inflight(), flights.size());
    ASSERT_EQ(net.total_objects(), published - dropped);
  });

  sim.run();

  net.check_invariants();
  EXPECT_LE(net.max_neighbor_length_gap(), 1u);
  EXPECT_EQ(net.total_objects(), published - dropped);
  EXPECT_GT(rb.stats().migrations_started, 0u);
  EXPECT_EQ(rb.stats().migrations_started,
            rb.stats().migrations_completed + rb.stats().migrations_cancelled);
  EXPECT_GE(rb.stats().migrations_cancelled, 1u);
  EXPECT_EQ(rb.inflight(), 0u);
}

// Default seeds are fixed so CI is deterministic. To reproduce a failure or
// explore new seeds, override with the ARMADA_FUZZ_SEED env var:
//
//   ARMADA_FUZZ_SEED=12345 ./integration_fuzz_test
//   ARMADA_FUZZ_SEED=12345 ctest -L fuzz --output-on-failure
//
// The failing seed appears in the test name (EverythingStaysCorrect.../<seed>)
// and in this suite's output, so re-running with that value replays the
// exact interleaving.
std::vector<std::uint64_t> fuzz_seeds() {
  if (const char* env = std::getenv("ARMADA_FUZZ_SEED")) {
    char* end = nullptr;
    const std::uint64_t seed = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0') {
      // Fail loudly: silently running seed 0 would make a typo'd repro
      // attempt look like "not reproducible".
      std::fprintf(stderr,
                   "invalid ARMADA_FUZZ_SEED '%s' (expected an unsigned "
                   "integer)\n",
                   env);
      std::exit(2);
    }
    return {seed};
  }
  return {1, 2, 3, 4, 5, 6};
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrationFuzz,
                         ::testing::ValuesIn(fuzz_seeds()),
                         [](const auto& info) {
                           return "seed_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace armada::core
