#include "support/test_networks.h"

namespace armada::testsupport {

SingleIndexFixture::SingleIndexFixture(std::size_t n, std::uint64_t seed,
                                       kautz::Interval domain)
    : net(fissione::FissioneNetwork::build(n, seed)),
      index(core::ArmadaIndex::single(net, domain)) {}

fissione::PeerId SingleIndexFixture::random_issuer(Rng& rng) const {
  return net.alive_peers()[rng.next_index(net.alive_peers().size())];
}

MultiIndexFixture::MultiIndexFixture(std::size_t n, std::uint64_t seed,
                                     kautz::Box domain)
    : net(fissione::FissioneNetwork::build(n, seed)),
      index(core::ArmadaIndex::multi(net, std::move(domain))) {}

fissione::PeerId MultiIndexFixture::random_issuer(Rng& rng) const {
  return net.alive_peers()[rng.next_index(net.alive_peers().size())];
}

std::unique_ptr<SingleIndexFixture> make_single_index(std::size_t n,
                                                      std::uint64_t seed,
                                                      kautz::Interval domain) {
  return std::make_unique<SingleIndexFixture>(n, seed, domain);
}

std::unique_ptr<MultiIndexFixture> make_multi_index(std::size_t n,
                                                    std::uint64_t seed,
                                                    kautz::Box domain) {
  return std::make_unique<MultiIndexFixture>(n, seed, std::move(domain));
}

}  // namespace armada::testsupport
