#include "support/test_networks.h"

#include <cmath>

#include "support/test_workloads.h"
#include "util/hash.h"

namespace armada::testsupport {

namespace {

// Seed offset shared by the baseline-fixture publish streams (matches the
// bench_table1 object streams, so fixture goldens track the bench setups).
constexpr std::uint64_t kObjectStream = 0x5bd1e995u;

}  // namespace

SingleIndexFixture::SingleIndexFixture(std::size_t n, std::uint64_t seed,
                                       kautz::Interval domain)
    : net(fissione::FissioneNetwork::build(n, seed)),
      index(core::ArmadaIndex::single(net, domain)) {}

fissione::PeerId SingleIndexFixture::random_issuer(Rng& rng) const {
  return net.alive_peers()[rng.next_index(net.alive_peers().size())];
}

MultiIndexFixture::MultiIndexFixture(std::size_t n, std::uint64_t seed,
                                     kautz::Box domain)
    : net(fissione::FissioneNetwork::build(n, seed)),
      index(core::ArmadaIndex::multi(net, std::move(domain))) {}

fissione::PeerId MultiIndexFixture::random_issuer(Rng& rng) const {
  return net.alive_peers()[rng.next_index(net.alive_peers().size())];
}

std::unique_ptr<SingleIndexFixture> make_single_index(std::size_t n,
                                                      std::uint64_t seed,
                                                      kautz::Interval domain) {
  return std::make_unique<SingleIndexFixture>(n, seed, domain);
}

std::unique_ptr<MultiIndexFixture> make_multi_index(std::size_t n,
                                                    std::uint64_t seed,
                                                    kautz::Box domain) {
  return std::make_unique<MultiIndexFixture>(n, seed, std::move(domain));
}

std::vector<std::shared_ptr<const net::LatencyModel>> all_latency_models(
    std::uint64_t seed) {
  return {
      std::make_shared<net::ConstantHop>(),
      std::make_shared<net::UniformJitter>(seed),
      std::make_shared<net::TransitStub>(seed),
      std::make_shared<net::RttMatrix>(seed),
  };
}

SquidFixture::SquidFixture(std::size_t n, std::size_t objects,
                           std::uint64_t seed)
    : net(n, seed),
      squid(net, rq::Squid::Config{.order = 10, .min_side_bits = 4}) {
  Rng obj(seed ^ kObjectStream);
  for (std::size_t i = 0; i < objects; ++i) {
    squid.publish({obj.next_double(kPaperDomain.lo, kPaperDomain.hi),
                   obj.next_double(kPaperDomain.lo, kPaperDomain.hi)});
  }
}

ScrapFixture::ScrapFixture(std::size_t n, std::size_t objects,
                           std::uint64_t seed)
    : graph(random_keys(n, seed, 0.0, std::exp2(20.0) - 1.0), seed + 1),
      scrap(graph, rq::Scrap::Config{.order = 10, .min_side_bits = 4}) {
  Rng obj(seed ^ kObjectStream);
  for (std::size_t i = 0; i < objects; ++i) {
    scrap.publish({obj.next_double(kPaperDomain.lo, kPaperDomain.hi),
                   obj.next_double(kPaperDomain.lo, kPaperDomain.hi)});
  }
}

SkipRangeFixture::SkipRangeFixture(std::size_t n, std::size_t objects,
                                   std::uint64_t seed)
    : graph(random_keys(n, seed, kPaperDomain.lo, kPaperDomain.hi), seed + 1),
      index(graph, {kPaperDomain.lo, kPaperDomain.hi}) {
  Rng obj(seed ^ kObjectStream);
  for (std::size_t i = 0; i < objects; ++i) {
    index.publish(obj.next_double(kPaperDomain.lo, kPaperDomain.hi));
  }
}

PhtChordFixture::PhtChordFixture(std::size_t n, std::size_t objects,
                                 std::uint64_t seed)
    : net(n, seed),
      pht(rq::Pht::Config{.key_bits = 16, .leaf_capacity = 8,
                          .domain = {kPaperDomain.lo, kPaperDomain.hi}},
          [this](const std::string& label) {
            // FNV-1a of the trie label picks the ring position of the node.
            return net.route(client, fnv1a64(label)).stats;
          }) {
  Rng obj(seed ^ kObjectStream);
  for (std::size_t i = 0; i < objects; ++i) {
    pht.publish(obj.next_double(kPaperDomain.lo, kPaperDomain.hi));
  }
}

std::unique_ptr<SquidFixture> make_squid(std::size_t n, std::size_t objects,
                                         std::uint64_t seed) {
  return std::make_unique<SquidFixture>(n, objects, seed);
}

std::unique_ptr<ScrapFixture> make_scrap(std::size_t n, std::size_t objects,
                                         std::uint64_t seed) {
  return std::make_unique<ScrapFixture>(n, objects, seed);
}

std::unique_ptr<SkipRangeFixture> make_skip_range(std::size_t n,
                                                  std::size_t objects,
                                                  std::uint64_t seed) {
  return std::make_unique<SkipRangeFixture>(n, objects, seed);
}

std::unique_ptr<PhtChordFixture> make_pht_chord(std::size_t n,
                                                std::size_t objects,
                                                std::uint64_t seed) {
  return std::make_unique<PhtChordFixture>(n, objects, seed);
}

}  // namespace armada::testsupport
