#include "support/test_workloads.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace armada::testsupport {

std::vector<double> publish_uniform_values(core::ArmadaIndex& index,
                                           std::size_t count,
                                           std::uint64_t seed) {
  ARMADA_CHECK_MSG(index.num_attributes() == 1,
                   "publish_uniform_values needs a single-attribute index");
  const kautz::Interval domain =
      index.naming_tree().attribute_ranges().front();
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    values.push_back(rng.next_double(domain.lo, domain.hi));
    index.publish(values.back());
  }
  return values;
}

std::vector<std::vector<double>> publish_uniform_points(
    core::ArmadaIndex& index, std::size_t count, std::uint64_t seed) {
  const kautz::Box& domain = index.naming_tree().attribute_ranges();
  Rng rng(seed);
  std::vector<std::vector<double>> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<double> p;
    p.reserve(domain.size());
    for (const auto& iv : domain) {
      p.push_back(rng.next_double(iv.lo, iv.hi));
    }
    index.publish(p);
    points.push_back(std::move(p));
  }
  return points;
}

std::vector<double> random_keys(std::size_t count, std::uint64_t seed,
                                double lo, double hi) {
  Rng rng(seed);
  std::unordered_set<double> seen;
  std::vector<double> keys;
  keys.reserve(count);
  while (keys.size() < count) {
    const double k = rng.next_double(lo, hi);
    if (seen.insert(k).second) {
      keys.push_back(k);
    }
  }
  return keys;
}

kautz::Interval random_subrange(Rng& rng, kautz::Interval domain,
                                double max_size) {
  const double span = domain.hi - domain.lo;
  const double cap = std::min(max_size, span);
  // next_double requires lo < hi, so a zero cap means a point query; any
  // positive cap draws width in [0, cap) < span, keeping hi - width > lo.
  const double width = cap > 0.0 ? rng.next_double(0.0, cap) : 0.0;
  const double lo = rng.next_double(domain.lo, domain.hi - width);
  return {lo, lo + width};
}

}  // namespace armada::testsupport
