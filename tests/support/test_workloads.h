// Deterministic workload generators shared by the test suites: seeded
// publish loops, random key sets, and random query subranges.
#pragma once

#include <cstdint>
#include <vector>

#include "armada/armada.h"
#include "kautz/partition_tree.h"
#include "util/rng.h"

namespace armada::testsupport {

/// Publish `count` uniform values into a single-attribute index; returns the
/// published values, in handle order (handles are sequential from the first
/// publish).
std::vector<double> publish_uniform_values(core::ArmadaIndex& index,
                                           std::size_t count,
                                           std::uint64_t seed);

/// Publish `count` uniform points into a (possibly multi-attribute) index;
/// returns the published points, in handle order.
std::vector<std::vector<double>> publish_uniform_points(
    core::ArmadaIndex& index, std::size_t count, std::uint64_t seed);

/// `count` distinct uniform keys in [lo, hi), unsorted — suitable for
/// skip-graph / Chord style key sets.
std::vector<double> random_keys(std::size_t count, std::uint64_t seed,
                                double lo = 0.0, double hi = 1e6);

/// A random closed subrange of `domain` with width uniform in
/// [0, max_size] (clamped to the domain).
kautz::Interval random_subrange(Rng& rng, kautz::Interval domain,
                                double max_size);

}  // namespace armada::testsupport
