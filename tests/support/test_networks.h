// Deterministic, seeded network builders shared by the test suites.
//
// Most suites need the same scaffolding: a FISSIONE overlay of a given size,
// an ArmadaIndex layered on it, and a few hundred published objects. These
// helpers build that scaffolding from an explicit seed so every suite stays
// reproducible, and so the suites stop re-instantiating networks ad hoc.
//
// ArmadaIndex holds references into its network, so the bundles below are
// pinned to the heap (unique_ptr) and neither copyable nor movable.
#pragma once

#include <cstdint>
#include <memory>

#include "armada/armada.h"
#include "fissione/network.h"
#include "kautz/partition_tree.h"
#include "util/rng.h"

namespace armada::testsupport {

/// The paper's attribute interval (§4.3.3): every experiment uses [0, 1000].
inline constexpr kautz::Interval kPaperDomain{0.0, 1000.0};

/// A FISSIONE overlay plus a single-attribute Armada index over it.
struct SingleIndexFixture {
  SingleIndexFixture(std::size_t n, std::uint64_t seed,
                     kautz::Interval domain);
  SingleIndexFixture(const SingleIndexFixture&) = delete;
  SingleIndexFixture& operator=(const SingleIndexFixture&) = delete;

  fissione::FissioneNetwork net;
  core::ArmadaIndex index;

  /// Uniformly chosen alive peer (deterministic given `rng`).
  fissione::PeerId random_issuer(Rng& rng) const;
};

/// A FISSIONE overlay plus a multi-attribute Armada index over it.
struct MultiIndexFixture {
  MultiIndexFixture(std::size_t n, std::uint64_t seed, kautz::Box domain);
  MultiIndexFixture(const MultiIndexFixture&) = delete;
  MultiIndexFixture& operator=(const MultiIndexFixture&) = delete;

  fissione::FissioneNetwork net;
  core::ArmadaIndex index;

  fissione::PeerId random_issuer(Rng& rng) const;
};

/// n-peer overlay + single-attribute index over the paper's [0, 1000].
std::unique_ptr<SingleIndexFixture> make_single_index(
    std::size_t n, std::uint64_t seed, kautz::Interval domain = kPaperDomain);

/// n-peer overlay + multi-attribute index over `domain`.
std::unique_ptr<MultiIndexFixture> make_multi_index(std::size_t n,
                                                    std::uint64_t seed,
                                                    kautz::Box domain);

}  // namespace armada::testsupport
