// Deterministic, seeded network builders shared by the test suites.
//
// Most suites need the same scaffolding: a FISSIONE overlay of a given size,
// an ArmadaIndex layered on it, and a few hundred published objects. These
// helpers build that scaffolding from an explicit seed so every suite stays
// reproducible, and so the suites stop re-instantiating networks ad hoc.
//
// ArmadaIndex holds references into its network, so the bundles below are
// pinned to the heap (unique_ptr) and neither copyable nor movable.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "armada/armada.h"
#include "chord/chord.h"
#include "fissione/network.h"
#include "kautz/partition_tree.h"
#include "net/latency_model.h"
#include "rq/pht.h"
#include "rq/scrap.h"
#include "rq/skipgraph_rq.h"
#include "rq/squid.h"
#include "skipgraph/skipgraph.h"
#include "util/rng.h"

namespace armada::testsupport {

/// The paper's attribute interval (§4.3.3): every experiment uses [0, 1000].
inline constexpr kautz::Interval kPaperDomain{0.0, 1000.0};

/// A FISSIONE overlay plus a single-attribute Armada index over it.
struct SingleIndexFixture {
  SingleIndexFixture(std::size_t n, std::uint64_t seed,
                     kautz::Interval domain);
  SingleIndexFixture(const SingleIndexFixture&) = delete;
  SingleIndexFixture& operator=(const SingleIndexFixture&) = delete;

  fissione::FissioneNetwork net;
  core::ArmadaIndex index;

  /// Uniformly chosen alive peer (deterministic given `rng`).
  fissione::PeerId random_issuer(Rng& rng) const;
};

/// A FISSIONE overlay plus a multi-attribute Armada index over it.
struct MultiIndexFixture {
  MultiIndexFixture(std::size_t n, std::uint64_t seed, kautz::Box domain);
  MultiIndexFixture(const MultiIndexFixture&) = delete;
  MultiIndexFixture& operator=(const MultiIndexFixture&) = delete;

  fissione::FissioneNetwork net;
  core::ArmadaIndex index;

  fissione::PeerId random_issuer(Rng& rng) const;
};

/// n-peer overlay + single-attribute index over the paper's [0, 1000].
std::unique_ptr<SingleIndexFixture> make_single_index(
    std::size_t n, std::uint64_t seed, kautz::Interval domain = kPaperDomain);

/// n-peer overlay + multi-attribute index over `domain`.
std::unique_ptr<MultiIndexFixture> make_multi_index(std::size_t n,
                                                    std::uint64_t seed,
                                                    kautz::Box domain);

/// One instance of every transport latency model, seeded deterministically —
/// the sweep the latency regression/determinism suites iterate over. Note:
/// each seeded model takes `seed` verbatim here, whereas the bench-side
/// bench::all_latency_models derives per-model seeds with xor offsets — the
/// two sweeps do not produce identical link latencies for equal seeds.
std::vector<std::shared_ptr<const net::LatencyModel>> all_latency_models(
    std::uint64_t seed);

// --- baseline-scheme fixtures ----------------------------------------------
// Each bundles a baseline DHT with the range-query engine layered on it and
// a seeded published workload, exactly as the cross-scheme comparisons use
// them. Like the Armada fixtures above, engines hold references into their
// networks, so the bundles are heap-pinned and neither copyable nor movable.

/// Chord ring + Squid index with `objects` published 2-d points (paper
/// domain on both attributes).
struct SquidFixture {
  SquidFixture(std::size_t n, std::size_t objects, std::uint64_t seed);
  SquidFixture(const SquidFixture&) = delete;
  SquidFixture& operator=(const SquidFixture&) = delete;

  chord::ChordNetwork net;
  rq::Squid squid;
};

/// Skip graph over curve-position keys + SCRAP index with `objects`
/// published 2-d points.
struct ScrapFixture {
  ScrapFixture(std::size_t n, std::size_t objects, std::uint64_t seed);
  ScrapFixture(const ScrapFixture&) = delete;
  ScrapFixture& operator=(const ScrapFixture&) = delete;

  skipgraph::SkipGraph graph;
  rq::Scrap scrap;
};

/// Skip graph keyed in the paper domain + native range index with `objects`
/// published values.
struct SkipRangeFixture {
  SkipRangeFixture(std::size_t n, std::size_t objects, std::uint64_t seed);
  SkipRangeFixture(const SkipRangeFixture&) = delete;
  SkipRangeFixture& operator=(const SkipRangeFixture&) = delete;

  skipgraph::SkipGraph graph;
  rq::SkipGraphRangeIndex index;
};

/// PHT whose trie-node lookups route on a Chord ring from `client` (set it
/// before each query to model the issuing peer), with `objects` published
/// values.
struct PhtChordFixture {
  PhtChordFixture(std::size_t n, std::size_t objects, std::uint64_t seed);
  PhtChordFixture(const PhtChordFixture&) = delete;
  PhtChordFixture& operator=(const PhtChordFixture&) = delete;

  chord::ChordNetwork net;
  chord::NodeId client = 0;
  rq::Pht pht;
};

std::unique_ptr<SquidFixture> make_squid(std::size_t n, std::size_t objects,
                                         std::uint64_t seed);
std::unique_ptr<ScrapFixture> make_scrap(std::size_t n, std::size_t objects,
                                         std::uint64_t seed);
std::unique_ptr<SkipRangeFixture> make_skip_range(std::size_t n,
                                                  std::size_t objects,
                                                  std::uint64_t seed);
std::unique_ptr<PhtChordFixture> make_pht_chord(std::size_t n,
                                                std::size_t objects,
                                                std::uint64_t seed);

}  // namespace armada::testsupport
