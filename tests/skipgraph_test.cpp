#include "skipgraph/skipgraph.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/test_workloads.h"
#include "util/check.h"
#include "util/rng.h"

namespace armada::skipgraph {
namespace {

TEST(SkipGraph, StructureInvariants) {
  for (std::size_t n : {1u, 2u, 5u, 64u, 500u}) {
    SkipGraph g(testsupport::random_keys(n, 3, 0.0, 1000.0), 4);
    EXPECT_EQ(g.num_nodes(), n);
    g.check_invariants();
  }
}

TEST(SkipGraph, LevelZeroIsSortedChain) {
  SkipGraph g(testsupport::random_keys(100, 5, 0.0, 1000.0), 6);
  NodeId cur = 0;
  std::size_t count = 1;
  while (g.next(cur) != kNoNode) {
    EXPECT_LT(g.key(cur), g.key(g.next(cur)));
    EXPECT_EQ(g.prev(g.next(cur)), cur);
    cur = g.next(cur);
    ++count;
  }
  EXPECT_EQ(count, g.num_nodes());
}

TEST(SkipGraph, SearchFindsOwnerFromAnywhere) {
  SkipGraph g(testsupport::random_keys(400, 7, 0.0, 1000.0), 8);
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const NodeId from = static_cast<NodeId>(rng.next_index(g.num_nodes()));
    const double target = rng.next_double(-10.0, 1010.0);
    const SkipSearch r = g.search(from, target);
    EXPECT_EQ(r.node, g.owner_of(target));  // also CHECKed internally
  }
}

TEST(SkipGraph, SearchCostLogarithmic) {
  Rng rng(11);
  double small_mean = 0.0;
  double large_mean = 0.0;
  for (int rep = 0; rep < 2; ++rep) {
    const std::size_t n = rep == 0 ? 100 : 6400;
    SkipGraph g(testsupport::random_keys(n, 13 + rep, 0.0, 1000.0), 15 + rep);
    double total = 0.0;
    for (int i = 0; i < 400; ++i) {
      total += g.search(static_cast<NodeId>(rng.next_index(n)),
                        rng.next_double(0.0, 1000.0))
                   .stats.delay;
    }
    (rep == 0 ? small_mean : large_mean) = total / 400.0;
  }
  // 64x nodes should cost ~log(64) = 6 extra hops, far below linear growth.
  EXPECT_LT(large_mean, small_mean + 16.0);
  EXPECT_LT(large_mean, 3.0 * std::log2(6400.0));
}

TEST(SkipGraph, LevelCountNearLogN) {
  SkipGraph g(testsupport::random_keys(1024, 17, 0.0, 1000.0), 19);
  EXPECT_GE(g.num_levels(), 8u);
  EXPECT_LE(g.num_levels(), 24u);
  // Average degree ~ 2 per level a node participates in.
  EXPECT_GT(g.average_degree(), std::log2(1024.0));
}

TEST(SkipGraph, RejectsDuplicateKeys) {
  EXPECT_THROW(SkipGraph({1.0, 2.0, 1.0}, 3), CheckError);
}

TEST(SkipGraph, OwnerOfEdgeCases) {
  SkipGraph g({10.0, 20.0, 30.0}, 21);
  EXPECT_EQ(g.owner_of(5.0), 0u);    // below all keys -> first node
  EXPECT_EQ(g.owner_of(10.0), 0u);
  EXPECT_EQ(g.owner_of(19.9), 0u);
  EXPECT_EQ(g.owner_of(20.0), 1u);
  EXPECT_EQ(g.owner_of(99.0), 2u);
}

}  // namespace
}  // namespace armada::skipgraph
