#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "can/can_network.h"
#include "chord/chord.h"
#include "fissione/network.h"
#include "net/latency_model.h"
#include "net/routed_overlay.h"
#include "net/transport.h"
#include "skipgraph/skipgraph.h"
#include "util/check.h"
#include "util/stats.h"

namespace armada::net {
namespace {

// Sampled node pairs covering small ids, reused ids and far-apart ids.
std::vector<std::pair<NodeId, NodeId>> sample_links() {
  std::vector<std::pair<NodeId, NodeId>> links;
  for (NodeId u = 0; u < 40; ++u) {
    for (NodeId v = u + 1; v < 40; ++v) {
      links.emplace_back(u, v);
    }
  }
  links.emplace_back(7, 123456);
  links.emplace_back(0, 4000000);
  return links;
}

TEST(ConstantHop, EveryLinkCostsTheConstant) {
  const ConstantHop unit;
  const ConstantHop half(0.5);
  for (const auto& [u, v] : sample_links()) {
    EXPECT_EQ(unit.link_latency(u, v), 1.0);
    EXPECT_EQ(half.link_latency(u, v), 0.5);
  }
  EXPECT_THROW(ConstantHop(0.0), CheckError);
}

TEST(ConstantHop, RejectsSelfLinks) {
  const ConstantHop m;
  EXPECT_THROW(m.link_latency(3, 3), CheckError);
}

template <typename Model>
void expect_pure_and_symmetric(const Model& a, const Model& b) {
  for (const auto& [u, v] : sample_links()) {
    const Time l = a.link_latency(u, v);
    EXPECT_GT(l, 0.0);
    EXPECT_EQ(l, a.link_latency(u, v));  // pure: repeated calls agree
    EXPECT_EQ(l, a.link_latency(v, u));  // symmetric
    EXPECT_EQ(l, b.link_latency(u, v));  // same seed => same matrix
  }
}

template <typename Model>
void expect_seed_sensitivity(const Model& a, const Model& other_seed) {
  bool any_differ = false;
  for (const auto& [u, v] : sample_links()) {
    any_differ |= a.link_latency(u, v) != other_seed.link_latency(u, v);
  }
  EXPECT_TRUE(any_differ);
}

TEST(UniformJitter, DeterministicSymmetricSeeded) {
  expect_pure_and_symmetric(UniformJitter(11), UniformJitter(11));
  expect_seed_sensitivity(UniformJitter(11), UniformJitter(12));
}

TEST(UniformJitter, StaysInsideBounds) {
  const UniformJitter m(5, 0.25, 4.0);
  OnlineStats s;
  for (const auto& [u, v] : sample_links()) {
    const Time l = m.link_latency(u, v);
    EXPECT_GE(l, 0.25);
    EXPECT_LT(l, 4.0);
    s.add(l);
  }
  // Uniform over [0.25, 4): the sample mean lands near the midpoint.
  EXPECT_NEAR(s.mean(), (0.25 + 4.0) / 2.0, 0.3);
}

TEST(TransitStub, DeterministicSymmetricSeeded) {
  expect_pure_and_symmetric(TransitStub(21), TransitStub(21));
  expect_seed_sensitivity(TransitStub(21), TransitStub(23));
}

TEST(TransitStub, ChargesIntraOrInterByCluster) {
  const TransitStub m(9, {.clusters = 4, .intra = 2.0, .inter = 30.0});
  bool saw_intra = false;
  bool saw_inter = false;
  for (const auto& [u, v] : sample_links()) {
    const Time l = m.link_latency(u, v);
    if (m.cluster_of(u) == m.cluster_of(v)) {
      EXPECT_EQ(l, 2.0);
      saw_intra = true;
    } else {
      EXPECT_EQ(l, 30.0);
      saw_inter = true;
    }
  }
  EXPECT_TRUE(saw_intra);
  EXPECT_TRUE(saw_inter);
}

TEST(RttMatrix, DeterministicSymmetricSeeded) {
  expect_pure_and_symmetric(RttMatrix(31), RttMatrix(31));
  expect_seed_sensitivity(RttMatrix(31), RttMatrix(32));
}

TEST(RttMatrix, KingStyleLongTail) {
  const RttMatrix m(77, 1.0);
  Percentiles p;
  for (NodeId u = 0; u < 200; ++u) {
    for (NodeId v = u + 1; v < 200; ++v) {
      p.add(m.link_latency(u, v));
    }
  }
  EXPECT_NEAR(p.p50(), 1.0, 0.1);       // median at the configured unit
  EXPECT_GT(p.p99(), 5.0);              // long tail: p99 >> median
  EXPECT_GT(p.percentile(1.0), 10.0);   // extreme tail past 10x
  EXPECT_LT(p.percentile(1.0), 25.01);  // ... but bounded by the CDF knot

  // Scaling the median scales every entry proportionally.
  const RttMatrix scaled(77, 3.0);
  EXPECT_EQ(scaled.link_latency(1, 2), 3.0 * m.link_latency(1, 2));
}

TEST(Transport, DefaultsToConstantHop) {
  const Transport t;
  EXPECT_EQ(t.link(0, 1), 1.0);
  EXPECT_EQ(t.path_latency({4, 9, 2, 17}), 3.0);
  EXPECT_EQ(t.path_latency({4}), 0.0);
  EXPECT_EQ(t.path_latency({}), 0.0);
}

TEST(Transport, DeliversAtLinkLatency) {
  Transport t(std::make_shared<UniformJitter>(3, 0.5, 2.5));
  sim::Simulator sim;
  Time arrival = -1.0;
  t.deliver(sim, 5, 6, [&] { arrival = sim.now(); });
  sim.run();
  EXPECT_EQ(arrival, t.link(5, 6));

  // Chained deliveries accumulate like path_latency.
  Time second = -1.0;
  t.deliver(sim, 6, 7, [&] { second = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(second, arrival + t.link(6, 7));
}

TEST(Transport, SwappingTheModelChangesCharges) {
  Transport t;
  EXPECT_EQ(t.link(1, 2), 1.0);
  t.set_model(std::make_shared<ConstantHop>(7.0));
  EXPECT_EQ(t.link(1, 2), 7.0);
  EXPECT_EQ(std::string(t.model().name()), "constant");
}

// Every DHT in the repo is reachable through the overlay::RoutedOverlay
// seam: one loop can re-price and inspect all of them without knowing the
// concrete type — the contract the cross-scheme benches rely on.
TEST(RoutedOverlay, OneSeamSpansEveryOverlay) {
  fissione::FissioneNetwork fnet = fissione::FissioneNetwork::build(40, 5);
  can::CanNetwork cnet(40, 5);
  chord::ChordNetwork rnet(40, 5);
  skipgraph::SkipGraph graph({1.0, 2.0, 5.0, 9.0, 12.0}, 5);

  const std::vector<overlay::RoutedOverlay*> overlays{&fnet, &cnet, &rnet,
                                                      &graph};
  const std::vector<std::size_t> sizes{40, 40, 40, 5};
  for (std::size_t i = 0; i < overlays.size(); ++i) {
    overlay::RoutedOverlay& o = *overlays[i];
    EXPECT_EQ(o.overlay_size(), sizes[i]);
    // Default transport: ConstantHop(1.0)...
    EXPECT_EQ(o.transport().link(0, 1), 1.0);
    // ... swappable generically through the seam.
    o.set_latency_model(std::make_shared<ConstantHop>(3.0));
    EXPECT_EQ(o.transport().link(0, 1), 3.0);
    o.set_latency_model(std::make_shared<ConstantHop>());
  }

  // The walk-cost algebra composes fragments the way the engines do.
  sim::QueryStats walk;
  overlay::step(walk, rnet.transport(), 0, 1);
  overlay::step(walk, rnet.transport(), 1, 2);
  EXPECT_EQ(walk.messages, 2u);
  EXPECT_EQ(walk.delay, 2.0);
  EXPECT_EQ(walk.latency, 2.0);
  sim::QueryStats fan;
  overlay::fan_in(fan, walk);
  sim::QueryStats other;
  overlay::step(other, rnet.transport(), 2, 3);
  overlay::fan_in(fan, other);
  EXPECT_EQ(fan.messages, 3u);  // messages sum across branches
  EXPECT_EQ(fan.delay, 2.0);    // delay is the deepest branch
  sim::QueryStats head;
  overlay::chain(head, fan);
  overlay::chain(head, other);
  EXPECT_EQ(head.messages, 4u);
  EXPECT_EQ(head.delay, 3.0);
  EXPECT_EQ(head.latency, 3.0);
}

}  // namespace
}  // namespace armada::net
