#include "armada/frt.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "armada/armada.h"
#include "armada/frt_search.h"
#include "support/test_networks.h"
#include "util/rng.h"

namespace armada::core {
namespace {

using fissione::FissioneNetwork;
using fissione::PeerId;
using kautz::KautzString;

TEST(ForwardRoutingTree, HeightEqualsPeerIdLength) {
  auto net = FissioneNetwork::build(100, 51);
  for (int i = 0; i < 10; ++i) {
    const PeerId p = net.random_peer();
    const ForwardRoutingTree frt(net, p);
    EXPECT_EQ(frt.height(), net.peer(p).peer_id.length());
    EXPECT_EQ(frt.level(0), std::vector<PeerId>{p});
  }
}

TEST(ForwardRoutingTree, LevelMembersAlignToSuffixes) {
  auto net = FissioneNetwork::build(150, 52);
  const PeerId p = net.random_peer();
  const KautzString& id = net.peer(p).peer_id;
  const ForwardRoutingTree frt(net, p);
  const std::size_t b = frt.height();
  for (std::size_t i = 1; i < b; ++i) {
    const KautzString suffix = id.suffix(b - i);
    for (PeerId q : frt.level(i)) {
      const KautzString& qid = net.peer(q).peer_id;
      // Peers in charge of the suffix region: prefixed by the suffix, or a
      // (shorter) prefix of it.
      EXPECT_TRUE(suffix.is_prefix_of(qid) || qid.is_prefix_of(suffix))
          << "level " << i << " peer " << qid.to_string() << " suffix "
          << suffix.to_string();
    }
  }
  // Last level: first symbol differs from the root id's last symbol.
  for (PeerId q : frt.level(b)) {
    EXPECT_NE(net.peer(q).peer_id.front(), id.back());
  }
}

TEST(ForwardRoutingTree, LevelsCoverAllPeers) {
  auto net = FissioneNetwork::build(120, 53);
  const PeerId p = net.random_peer();
  const ForwardRoutingTree frt(net, p);
  std::unordered_set<PeerId> seen;
  for (std::size_t i = 0; i <= frt.height(); ++i) {
    seen.insert(frt.level(i).begin(), frt.level(i).end());
  }
  EXPECT_EQ(seen.size(), net.num_peers());
}

// Paper §4.2: with a common-prefix region, all destinations sit at FRT
// level b - f, and PIRA reaches them in exactly b - f hops.
TEST(ForwardRoutingTree, DestinationsLiveAtLevelBMinusF) {
  auto fx = testsupport::make_single_index(250, 54);
  auto& net = fx->net;
  auto& index = fx->index;
  Rng rng(55);
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const double lo = rng.next_double(0.0, 900.0);
    const double hi = lo + rng.next_double(0.0, 100.0);
    const auto region = index.naming_tree().region_for(lo, hi);
    if (region.common_prefix().empty()) {
      continue;  // multi-class query; levels differ per class
    }
    const PeerId issuer =
        net.alive_peers()[rng.next_index(net.alive_peers().size())];
    const ForwardRoutingTree frt(net, issuer);
    const std::size_t dest_level = frt.destination_level(region);

    const auto expected = index.pira().expected_destinations(region);
    const auto& level = frt.level(dest_level);
    for (PeerId d : expected) {
      EXPECT_NE(std::find(level.begin(), level.end(), d), level.end())
          << "destination " << net.peer(d).peer_id.to_string()
          << " missing from level " << dest_level;
    }

    // PIRA's measured delay equals the destination level.
    const auto r = index.range_query(issuer, lo, hi);
    EXPECT_DOUBLE_EQ(r.stats.delay, static_cast<double>(dest_level));
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(FrtSearchAlignment, ComSIsLongestSuffixPrefix) {
  const auto id = KautzString::parse("2120");
  EXPECT_EQ(FrtSearch::start_alignment(id, KautzString::parse("201")), 2u);
  EXPECT_EQ(FrtSearch::start_alignment(id, KautzString::parse("0120")), 1u);
  EXPECT_EQ(FrtSearch::start_alignment(id, KautzString::parse("1012")), 0u);
  EXPECT_EQ(FrtSearch::start_alignment(id, KautzString::parse("2120")), 4u);
  // Alignment never exceeds |ComT|.
  EXPECT_EQ(FrtSearch::start_alignment(id, KautzString::parse("2")), 0u);
  EXPECT_EQ(FrtSearch::start_alignment(id, KautzString::parse("0")), 1u);
}

}  // namespace
}  // namespace armada::core
