#include "kautz/kautz_space.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace armada::kautz {
namespace {

TEST(KautzSpace, SpaceSizeFormula) {
  EXPECT_EQ(space_size(2, 0), 1u);
  EXPECT_EQ(space_size(2, 1), 3u);
  EXPECT_EQ(space_size(2, 2), 6u);
  EXPECT_EQ(space_size(2, 3), 12u);  // K(2,3) in Figure 1 has 12 nodes
  EXPECT_EQ(space_size(2, 4), 24u);
  EXPECT_EQ(space_size(3, 3), 36u);
}

TEST(KautzSpace, SpaceSizeOverflowDetected) {
  EXPECT_THROW(space_size(2, 100), CheckError);
}

TEST(KautzSpace, EnumerateIsSortedValidAndComplete) {
  for (std::uint8_t base : {2, 3}) {
    for (std::size_t len : {1u, 2u, 3u, 4u, 5u}) {
      const auto all = enumerate(base, len);
      EXPECT_EQ(all.size(), space_size(base, len));
      EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
      EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
      for (const auto& s : all) {
        EXPECT_EQ(s.length(), len);
      }
    }
  }
}

TEST(KautzSpace, RankUnrankRoundTripExhaustive) {
  for (std::uint8_t base : {2, 3}) {
    for (std::size_t len : {1u, 2u, 3u, 4u, 5u, 6u}) {
      const auto all = enumerate(base, len);
      for (std::uint64_t r = 0; r < all.size(); ++r) {
        EXPECT_EQ(rank(all[r]), r) << all[r].to_string();
        EXPECT_EQ(unrank(base, len, r), all[r]);
      }
    }
  }
}

TEST(KautzSpace, RankMatchesPaperRegionExample) {
  // Kautz region <010, 021> = {010, 012, 020, 021} (Definition 1).
  const auto lo = KautzString::parse("010");
  const auto hi = KautzString::parse("021");
  EXPECT_EQ(rank(hi) - rank(lo) + 1, 4u);
}

TEST(KautzSpace, MinMaxExtensionAreExtremeAmongExtensions) {
  const auto all = enumerate(2, 6);
  for (const auto& prefix :
       {KautzString::parse("0"), KautzString::parse("21"),
        KautzString::parse("0102"), KautzString(2)}) {
    const auto lo = min_extension(prefix, 6);
    const auto hi = max_extension(prefix, 6);
    EXPECT_EQ(lo.length(), 6u);
    EXPECT_EQ(hi.length(), 6u);
    std::uint64_t matched = 0;
    for (const auto& s : all) {
      if (prefix.is_prefix_of(s)) {
        ++matched;
        EXPECT_LE(lo, s);
        EXPECT_GE(hi, s);
      }
    }
    EXPECT_EQ(matched, extension_count(prefix, 6));
    EXPECT_TRUE(prefix.is_prefix_of(lo));
    EXPECT_TRUE(prefix.is_prefix_of(hi));
  }
}

TEST(KautzSpace, MinMaxExtensionAlternatingPattern) {
  EXPECT_EQ(min_extension(KautzString(2), 5).to_string(), "01010");
  EXPECT_EQ(max_extension(KautzString(2), 5).to_string(), "21212");
  EXPECT_EQ(min_extension(KautzString::parse("20"), 5).to_string(), "20101");
  EXPECT_EQ(max_extension(KautzString::parse("02"), 5).to_string(), "02121");
}

TEST(KautzSpace, SuccessorPredecessorAgreeWithEnumeration) {
  for (std::uint8_t base : {2, 3}) {
    const auto all = enumerate(base, 4);
    for (std::size_t i = 0; i + 1 < all.size(); ++i) {
      EXPECT_EQ(successor(all[i]), all[i + 1]);
      EXPECT_EQ(predecessor(all[i + 1]), all[i]);
    }
    EXPECT_TRUE(is_space_min(all.front()));
    EXPECT_TRUE(is_space_max(all.back()));
    EXPECT_THROW(predecessor(all.front()), CheckError);
    EXPECT_THROW(successor(all.back()), CheckError);
  }
}

TEST(KautzSpace, SymbolIndexRoundTrip) {
  for (std::uint8_t prev = 0; prev <= 3; ++prev) {
    for (std::uint8_t sym = 0; sym <= 3; ++sym) {
      if (sym == prev) {
        continue;
      }
      EXPECT_EQ(index_symbol(symbol_index(sym, prev), prev), sym);
    }
  }
}

TEST(KautzSpace, RandomStringValidAndLongLengthsWork) {
  Rng rng(42);
  for (std::size_t len : {1u, 5u, 24u, 100u}) {
    const auto s = random_string(rng, 2, len);
    EXPECT_EQ(s.length(), len);  // constructor enforces validity
  }
}

TEST(KautzSpace, RandomStringRoughlyUniform) {
  Rng rng(7);
  std::vector<int> counts(space_size(2, 3));
  const int trials = 12000;
  for (int i = 0; i < trials; ++i) {
    counts[rank(random_string(rng, 2, 3))]++;
  }
  // Each of the 12 strings has expectation 1000; allow generous slack.
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

}  // namespace
}  // namespace armada::kautz
