// Transport regression and determinism suite.
//
// Backward compatibility: under the default ConstantHop model the new
// latency machinery must reproduce the paper's hop-count delays *exactly* —
// `latency` is accumulated through the Transport/Simulator while `delay`
// still comes from the untouched hop counting, so bitwise equality of the
// two proves the transport charges precisely one unit per hop (and hence
// that fig5/fig7 delay columns are unchanged). A golden check additionally
// pins the absolute fig5-style numbers for a fixed seed.
//
// Determinism: every LatencyModel is a pure function of its seed, so two
// independently built networks with equal seeds must report bit-identical
// per-link latencies and per-query QueryStats.latency.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "can/can_network.h"
#include "net/latency_model.h"
#include "rq/dcf_can.h"
#include "support/test_networks.h"
#include "support/test_workloads.h"
#include "util/rng.h"

namespace armada {
namespace {

using testsupport::all_latency_models;
using testsupport::kPaperDomain;
using testsupport::make_single_index;

TEST(ConstantHopRegression, FissioneRouteLatencyEqualsHops) {
  auto fx = make_single_index(120, 7001);
  Rng rng(9);
  for (int i = 0; i < 60; ++i) {
    const auto target = fx->net.kautz_hash("key" + std::to_string(i));
    const auto r = fx->net.route(fx->random_issuer(rng), target);
    EXPECT_EQ(r.latency, static_cast<double>(r.hops));
    EXPECT_EQ(r.path.size(), static_cast<std::size_t>(r.hops) + 1);
  }
}

TEST(ConstantHopRegression, PiraLatencyEqualsHopDelay) {
  auto fx = make_single_index(200, 7003);
  testsupport::publish_uniform_values(fx->index, 400, 7004);
  Rng rng(11);
  for (int i = 0; i < 80; ++i) {
    const auto q = testsupport::random_subrange(rng, kPaperDomain, 200.0);
    const auto r =
        fx->index.range_query(fx->random_issuer(rng), q.lo, q.hi);
    // Bitwise: the event-driven arrival time must be the hop count.
    EXPECT_EQ(r.stats.latency, r.stats.delay);
  }
}

TEST(ConstantHopRegression, TopKAndKnnLatencyEqualsHopDelay) {
  auto fx = make_single_index(150, 7005);
  testsupport::publish_uniform_values(fx->index, 300, 7006);
  Rng rng(13);
  for (int i = 0; i < 25; ++i) {
    const auto q = testsupport::random_subrange(rng, kPaperDomain, 150.0);
    const auto topk =
        fx->index.top_k(fx->random_issuer(rng), q.lo, q.hi, 5);
    EXPECT_EQ(topk.stats.latency, topk.stats.delay);
    const auto knn = fx->index.nearest(
        fx->random_issuer(rng), rng.next_double(0.0, 1000.0), 4);
    EXPECT_EQ(knn.stats.latency, knn.stats.delay);
  }
}

TEST(ConstantHopRegression, DcfCanLatencyEqualsHopDelay) {
  can::CanNetwork net(250, 7007);
  rq::DcfCan dcf(net, rq::DcfCan::Config{});
  Rng rng(15);
  for (int i = 0; i < 300; ++i) {
    dcf.publish(rng.next_double(0.0, 1000.0));
  }
  for (int i = 0; i < 60; ++i) {
    const auto q = testsupport::random_subrange(rng, kPaperDomain, 250.0);
    const auto r = dcf.query(
        static_cast<can::NodeId>(rng.next_index(net.num_nodes())), q.lo, q.hi);
    EXPECT_EQ(r.stats.latency, r.stats.delay);
  }
}

// Expected totals for GoldenDelayTotals below, captured from the seed
// hop-count implementation (which the transport reproduces bit-for-bit).
constexpr double kGoldenPiraDelay = 191.0;
constexpr double kGoldenDcfDelay = 199.0;
constexpr std::uint64_t kGoldenPiraMessages = 401;
constexpr std::uint64_t kGoldenDcfMessages = 326;

// Golden fig5-style numbers (N=60, fixed seeds): pins the delay/message
// totals of the default-model query path so a change to routing, FRT
// forwarding or the flood is caught even if it keeps latency == delay.
// Regenerate by printing the totals if an *intentional* semantic change
// lands.
TEST(ConstantHopRegression, GoldenDelayTotals) {
  auto fx = make_single_index(60, 4242);
  testsupport::publish_uniform_values(fx->index, 120, 4243);
  can::CanNetwork cnet(60, 4242);
  rq::DcfCan dcf(cnet, rq::DcfCan::Config{});
  Rng crng(4243);
  for (int i = 0; i < 120; ++i) {
    dcf.publish(crng.next_double(0.0, 1000.0));
  }

  double pira_delay = 0.0;
  double dcf_delay = 0.0;
  std::uint64_t pira_messages = 0;
  std::uint64_t dcf_messages = 0;
  Rng rng(4244);
  for (int i = 0; i < 40; ++i) {
    const auto q = testsupport::random_subrange(rng, kPaperDomain, 100.0);
    const auto pr = fx->index.range_query(fx->random_issuer(rng), q.lo, q.hi);
    const auto dr = dcf.query(
        static_cast<can::NodeId>(rng.next_index(cnet.num_nodes())), q.lo,
        q.hi);
    pira_delay += pr.stats.delay;
    dcf_delay += dr.stats.delay;
    pira_messages += pr.stats.messages;
    dcf_messages += dr.stats.messages;
  }
  EXPECT_EQ(pira_delay, kGoldenPiraDelay);
  EXPECT_EQ(dcf_delay, kGoldenDcfDelay);
  EXPECT_EQ(pira_messages, kGoldenPiraMessages);
  EXPECT_EQ(dcf_messages, kGoldenDcfMessages);
}

TEST(LatencyModelDeterminism, TwoIndependentNetworksAgree) {
  constexpr std::size_t kN = 150;
  constexpr std::uint64_t kNetSeed = 8101;
  constexpr std::uint64_t kModelSeed = 8202;

  for (std::size_t mi = 0; mi < all_latency_models(kModelSeed).size(); ++mi) {
    // Two fully independent builds: networks, indexes, objects and models
    // are constructed twice from the same seeds.
    auto fx1 = make_single_index(kN, kNetSeed);
    auto fx2 = make_single_index(kN, kNetSeed);
    testsupport::publish_uniform_values(fx1->index, 300, kNetSeed + 1);
    testsupport::publish_uniform_values(fx2->index, 300, kNetSeed + 1);
    const auto model1 = all_latency_models(kModelSeed)[mi];
    const auto model2 = all_latency_models(kModelSeed)[mi];
    fx1->net.set_latency_model(model1);
    fx2->net.set_latency_model(model2);

    // Identical per-link latencies...
    for (fissione::PeerId u = 0; u < 30; ++u) {
      for (fissione::PeerId v = u + 1; v < 30; ++v) {
        EXPECT_EQ(model1->link_latency(u, v), model2->link_latency(u, v));
      }
    }

    // ... and bit-identical per-query latency under the full query path.
    Rng rng1(77);
    Rng rng2(77);
    for (int i = 0; i < 40; ++i) {
      const auto q1 = testsupport::random_subrange(rng1, kPaperDomain, 150.0);
      const auto q2 = testsupport::random_subrange(rng2, kPaperDomain, 150.0);
      const auto r1 =
          fx1->index.range_query(fx1->random_issuer(rng1), q1.lo, q1.hi);
      const auto r2 =
          fx2->index.range_query(fx2->random_issuer(rng2), q2.lo, q2.hi);
      EXPECT_EQ(r1.stats.latency, r2.stats.latency)
          << "model " << model1->name() << " query " << i;
      EXPECT_EQ(r1.stats.delay, r2.stats.delay);
      EXPECT_EQ(r1.stats.messages, r2.stats.messages);
    }
  }
}

TEST(LatencyModelDeterminism, DcfFloodAgreesAcrossBuilds) {
  constexpr std::uint64_t kModelSeed = 8303;
  for (std::size_t mi = 0; mi < all_latency_models(kModelSeed).size(); ++mi) {
    can::CanNetwork net1(120, 8304);
    can::CanNetwork net2(120, 8304);
    rq::DcfCan dcf1(net1, rq::DcfCan::Config{});
    rq::DcfCan dcf2(net2, rq::DcfCan::Config{});
    Rng pub1(8305);
    Rng pub2(8305);
    for (int i = 0; i < 200; ++i) {
      dcf1.publish(pub1.next_double(0.0, 1000.0));
      dcf2.publish(pub2.next_double(0.0, 1000.0));
    }
    net1.set_latency_model(all_latency_models(kModelSeed)[mi]);
    net2.set_latency_model(all_latency_models(kModelSeed)[mi]);

    Rng rng1(78);
    Rng rng2(78);
    for (int i = 0; i < 30; ++i) {
      const auto q1 = testsupport::random_subrange(rng1, kPaperDomain, 300.0);
      const auto q2 = testsupport::random_subrange(rng2, kPaperDomain, 300.0);
      const auto r1 = dcf1.query(
          static_cast<can::NodeId>(rng1.next_index(net1.num_nodes())), q1.lo,
          q1.hi);
      const auto r2 = dcf2.query(
          static_cast<can::NodeId>(rng2.next_index(net2.num_nodes())), q2.lo,
          q2.hi);
      EXPECT_EQ(r1.stats.latency, r2.stats.latency);
      EXPECT_EQ(r1.stats.delay, r2.stats.delay);
      EXPECT_EQ(r1.stats.messages, r2.stats.messages);
    }
  }
}

// --- refactored baselines: pre-refactor golden hop counts ------------------
// Captured from the seed hop-count implementations (before the baseline
// engines were rewired through net::Transport), with the identical fixture
// construction and workload streams. Under the default ConstantHop model the
// refactored engines must reproduce these totals bitwise, and every query's
// transport-priced latency must equal its hop-count delay exactly.
constexpr double kGoldenSquidDelay = 1140.0;
constexpr std::uint64_t kGoldenSquidMessages = 10323;
constexpr double kGoldenScrapDelay = 237.0;
constexpr std::uint64_t kGoldenScrapMessages = 2410;
constexpr double kGoldenSkipRangeDelay = 531.0;
constexpr std::uint64_t kGoldenSkipRangeMessages = 531;
constexpr double kGoldenPhtDelay = 1173.0;
constexpr std::uint64_t kGoldenPhtMessages = 1904;
constexpr std::uint64_t kGoldenChordHops = 933;
constexpr std::uint64_t kGoldenSkipSearchHops = 1291;

TEST(ConstantHopRegression, GoldenSquidDelayTotals) {
  auto fx = testsupport::make_squid(120, 300, 6001);
  double delay = 0.0;
  std::uint64_t messages = 0;
  Rng rng(6101);
  for (int q = 0; q < 30; ++q) {
    const auto issuer =
        static_cast<chord::NodeId>(rng.next_index(fx->net.num_nodes()));
    kautz::Box box(2);
    for (auto& iv : box) {
      iv.lo = rng.next_double(0.0, 800.0);
      iv.hi = iv.lo + rng.next_double(0.0, 200.0);
    }
    const auto r = fx->squid.query(issuer, box);
    EXPECT_EQ(r.stats.latency, r.stats.delay);
    delay += r.stats.delay;
    messages += r.stats.messages;
  }
  EXPECT_EQ(delay, kGoldenSquidDelay);
  EXPECT_EQ(messages, kGoldenSquidMessages);
}

TEST(ConstantHopRegression, GoldenScrapDelayTotals) {
  auto fx = testsupport::make_scrap(120, 300, 6002);
  double delay = 0.0;
  std::uint64_t messages = 0;
  Rng rng(6102);
  for (int q = 0; q < 30; ++q) {
    const auto issuer =
        static_cast<skipgraph::NodeId>(rng.next_index(fx->graph.num_nodes()));
    kautz::Box box(2);
    for (auto& iv : box) {
      iv.lo = rng.next_double(0.0, 800.0);
      iv.hi = iv.lo + rng.next_double(0.0, 200.0);
    }
    const auto r = fx->scrap.query(issuer, box);
    EXPECT_EQ(r.stats.latency, r.stats.delay);
    delay += r.stats.delay;
    messages += r.stats.messages;
  }
  EXPECT_EQ(delay, kGoldenScrapDelay);
  EXPECT_EQ(messages, kGoldenScrapMessages);
}

TEST(ConstantHopRegression, GoldenSkipGraphRangeDelayTotals) {
  auto fx = testsupport::make_skip_range(150, 400, 6004);
  double delay = 0.0;
  std::uint64_t messages = 0;
  Rng rng(6103);
  for (int q = 0; q < 40; ++q) {
    const auto issuer =
        static_cast<skipgraph::NodeId>(rng.next_index(fx->graph.num_nodes()));
    const double lo = rng.next_double(0.0, 900.0);
    const double hi = lo + rng.next_double(0.0, 100.0);
    const auto r = fx->index.query(issuer, lo, hi);
    EXPECT_EQ(r.stats.latency, r.stats.delay);
    delay += r.stats.delay;
    messages += r.stats.messages;
  }
  EXPECT_EQ(delay, kGoldenSkipRangeDelay);
  EXPECT_EQ(messages, kGoldenSkipRangeMessages);
}

TEST(ConstantHopRegression, GoldenPhtOverChordDelayTotals) {
  auto fx = testsupport::make_pht_chord(120, 300, 6006);
  double delay = 0.0;
  std::uint64_t messages = 0;
  Rng rng(6104);
  for (int q = 0; q < 40; ++q) {
    fx->client =
        static_cast<chord::NodeId>(rng.next_index(fx->net.num_nodes()));
    const double lo = rng.next_double(0.0, 900.0);
    const double hi = lo + rng.next_double(0.0, 100.0);
    const auto r = fx->pht.query(lo, hi);
    EXPECT_EQ(r.stats.latency, r.stats.delay);
    delay += r.stats.delay;
    messages += r.stats.messages;
  }
  EXPECT_EQ(delay, kGoldenPhtDelay);
  EXPECT_EQ(messages, kGoldenPhtMessages);
}

TEST(ConstantHopRegression, GoldenRawWalkHopTotals) {
  chord::ChordNetwork chord_net(200, 6008);
  std::uint64_t chord_hops = 0;
  Rng rng(6105);
  for (int q = 0; q < 200; ++q) {
    const auto from =
        static_cast<chord::NodeId>(rng.next_index(chord_net.num_nodes()));
    const auto r = chord_net.route(from, rng.engine()());
    EXPECT_EQ(r.stats.latency, r.stats.delay);
    chord_hops += r.stats.messages;
  }
  EXPECT_EQ(chord_hops, kGoldenChordHops);

  skipgraph::SkipGraph graph(
      testsupport::random_keys(200, 6009, 0.0, 1000.0), 6010);
  std::uint64_t search_hops = 0;
  Rng srng(6106);
  for (int q = 0; q < 200; ++q) {
    const auto from =
        static_cast<skipgraph::NodeId>(srng.next_index(graph.num_nodes()));
    const auto r = graph.search(from, srng.next_double(0.0, 1000.0));
    EXPECT_EQ(r.stats.latency, r.stats.delay);
    search_hops += r.stats.messages;
  }
  EXPECT_EQ(search_hops, kGoldenSkipSearchHops);
}

// --- baselines under heterogeneous models ----------------------------------

TEST(LatencyModels, BaselineModelsChangeLatencyNotDelay) {
  // Re-pricing links must never change a baseline's hop-count delay,
  // message count, destinations or matches — only its latency. This is what
  // makes the cross-scheme Table 1 comparison meaningful under every model.
  constexpr std::uint64_t kModelSeed = 8601;
  auto squid = testsupport::make_squid(100, 250, 8602);
  auto scrap = testsupport::make_scrap(100, 250, 8603);
  auto skipr = testsupport::make_skip_range(100, 250, 8604);

  const kautz::Box box{{100.0, 420.0}, {250.0, 580.0}};
  const auto base_squid = squid->squid.query(5, box);
  const auto base_scrap = scrap->scrap.query(5, box);
  const auto base_skip = skipr->index.query(5, 200.0, 300.0);

  for (const auto& model : all_latency_models(kModelSeed)) {
    squid->net.set_latency_model(model);
    scrap->graph.set_latency_model(model);
    skipr->graph.set_latency_model(model);
    const auto rs = squid->squid.query(5, box);
    const auto rc = scrap->scrap.query(5, box);
    const auto rk = skipr->index.query(5, 200.0, 300.0);
    EXPECT_EQ(rs.stats.delay, base_squid.stats.delay);
    EXPECT_EQ(rs.stats.messages, base_squid.stats.messages);
    EXPECT_EQ(rs.destinations, base_squid.destinations);
    EXPECT_EQ(rc.stats.delay, base_scrap.stats.delay);
    EXPECT_EQ(rc.stats.messages, base_scrap.stats.messages);
    EXPECT_EQ(rc.matches, base_scrap.matches);
    EXPECT_EQ(rk.stats.delay, base_skip.stats.delay);
    EXPECT_EQ(rk.stats.messages, base_skip.stats.messages);
    EXPECT_EQ(rk.destinations, base_skip.destinations);
  }
}

TEST(LatencyModelDeterminism, BaselinesAgreeAcrossBuilds) {
  constexpr std::uint64_t kModelSeed = 8701;
  for (std::size_t mi = 0; mi < all_latency_models(kModelSeed).size(); ++mi) {
    auto fx1 = testsupport::make_squid(80, 200, 8702);
    auto fx2 = testsupport::make_squid(80, 200, 8702);
    fx1->net.set_latency_model(all_latency_models(kModelSeed)[mi]);
    fx2->net.set_latency_model(all_latency_models(kModelSeed)[mi]);
    Rng rng1(81);
    Rng rng2(81);
    for (int i = 0; i < 20; ++i) {
      kautz::Box b1(2);
      kautz::Box b2(2);
      for (std::size_t d = 0; d < 2; ++d) {
        b1[d].lo = rng1.next_double(0.0, 800.0);
        b1[d].hi = b1[d].lo + rng1.next_double(0.0, 200.0);
        b2[d].lo = rng2.next_double(0.0, 800.0);
        b2[d].hi = b2[d].lo + rng2.next_double(0.0, 200.0);
      }
      const auto r1 = fx1->squid.query(3, b1);
      const auto r2 = fx2->squid.query(3, b2);
      EXPECT_EQ(r1.stats.latency, r2.stats.latency);
      EXPECT_EQ(r1.stats.delay, r2.stats.delay);
      EXPECT_EQ(r1.stats.messages, r2.stats.messages);
    }
  }
}

// --- proximity-aware FISSIONE next-hop tie-breaking ------------------------

TEST(ProximityRouting, ReachesOwnerWithinBoundAndNeverSlower) {
  // Two identical overlays, one with proximity-aware tie-breaking: routing
  // must still deliver to the owner within the paper's hop bound
  // (hops <= |PeerID(issuer)|), and under a clustered LAN/WAN model the
  // tie-break should not lose latency in aggregate.
  auto base = make_single_index(200, 8801);
  auto prox = make_single_index(200, 8801);
  const auto model = std::make_shared<net::TransitStub>(8802);
  base->net.set_latency_model(model);
  prox->net.set_latency_model(model);
  prox->net.set_proximity_next_hop(true);

  double base_latency = 0.0;
  double prox_latency = 0.0;
  Rng rng(8803);
  for (int i = 0; i < 120; ++i) {
    const auto issuer = base->random_issuer(rng);
    const auto target = base->net.kautz_hash("prox" + std::to_string(i));
    const auto rb = base->net.route(issuer, target);
    const auto rp = prox->net.route(issuer, target);
    // Same overlay structure, same owner.
    EXPECT_EQ(rb.owner, rp.owner);
    EXPECT_LE(rp.hops, prox->net.peer(issuer).peer_id.length());
    EXPECT_EQ(rp.path.size(), static_cast<std::size_t>(rp.hops) + 1);
    base_latency += rb.latency;
    prox_latency += rp.latency;
  }
  // The tie-break is greedy per hop, so a strict aggregate win is not
  // guaranteed by construction — allow a small tolerance so legitimate
  // changes to join order or neighbor ordering can't flip the suite. The
  // measured win on this workload is ~6-9% (see bench_latency_models).
  EXPECT_LE(prox_latency, base_latency * 1.05);
}

TEST(ProximityRouting, OffByDefaultKeepsCanonicalPath) {
  auto a = make_single_index(150, 8804);
  auto b = make_single_index(150, 8804);
  b->net.set_proximity_next_hop(true);
  b->net.set_proximity_next_hop(false);  // toggling back restores default
  Rng rng(8805);
  for (int i = 0; i < 40; ++i) {
    const auto issuer = a->random_issuer(rng);
    const auto target = a->net.kautz_hash("off" + std::to_string(i));
    EXPECT_EQ(a->net.route(issuer, target).path,
              b->net.route(issuer, target).path);
  }
}

TEST(LatencyModels, HeterogeneousModelsChangeLatencyNotDelay) {
  // Swapping the model must change reported latency but never the hop-count
  // delay, destinations or message count — the model only re-prices links.
  auto fx = make_single_index(150, 8401);
  testsupport::publish_uniform_values(fx->index, 300, 8402);

  Rng rng(79);
  const auto q = testsupport::random_subrange(rng, kPaperDomain, 200.0);
  const auto issuer = fx->random_issuer(rng);

  const auto base = fx->index.range_query(issuer, q.lo, q.hi);
  fx->net.set_latency_model(std::make_shared<net::TransitStub>(8403));
  const auto slow = fx->index.range_query(issuer, q.lo, q.hi);

  EXPECT_EQ(base.stats.delay, slow.stats.delay);
  EXPECT_EQ(base.stats.messages, slow.stats.messages);
  EXPECT_EQ(base.destinations, slow.destinations);
  EXPECT_GE(slow.stats.latency, base.stats.latency);
}

}  // namespace
}  // namespace armada
