// Transport regression and determinism suite.
//
// Backward compatibility: under the default ConstantHop model the new
// latency machinery must reproduce the paper's hop-count delays *exactly* —
// `latency` is accumulated through the Transport/Simulator while `delay`
// still comes from the untouched hop counting, so bitwise equality of the
// two proves the transport charges precisely one unit per hop (and hence
// that fig5/fig7 delay columns are unchanged). A golden check additionally
// pins the absolute fig5-style numbers for a fixed seed.
//
// Determinism: every LatencyModel is a pure function of its seed, so two
// independently built networks with equal seeds must report bit-identical
// per-link latencies and per-query QueryStats.latency.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "can/can_network.h"
#include "net/latency_model.h"
#include "rq/dcf_can.h"
#include "support/test_networks.h"
#include "support/test_workloads.h"
#include "util/rng.h"

namespace armada {
namespace {

using testsupport::kPaperDomain;
using testsupport::make_single_index;

std::vector<std::shared_ptr<const net::LatencyModel>> all_models(
    std::uint64_t seed) {
  return {
      std::make_shared<net::ConstantHop>(),
      std::make_shared<net::UniformJitter>(seed),
      std::make_shared<net::TransitStub>(seed),
      std::make_shared<net::RttMatrix>(seed),
  };
}

TEST(ConstantHopRegression, FissioneRouteLatencyEqualsHops) {
  auto fx = make_single_index(120, 7001);
  Rng rng(9);
  for (int i = 0; i < 60; ++i) {
    const auto target = fx->net.kautz_hash("key" + std::to_string(i));
    const auto r = fx->net.route(fx->random_issuer(rng), target);
    EXPECT_EQ(r.latency, static_cast<double>(r.hops));
    EXPECT_EQ(r.path.size(), static_cast<std::size_t>(r.hops) + 1);
  }
}

TEST(ConstantHopRegression, PiraLatencyEqualsHopDelay) {
  auto fx = make_single_index(200, 7003);
  testsupport::publish_uniform_values(fx->index, 400, 7004);
  Rng rng(11);
  for (int i = 0; i < 80; ++i) {
    const auto q = testsupport::random_subrange(rng, kPaperDomain, 200.0);
    const auto r =
        fx->index.range_query(fx->random_issuer(rng), q.lo, q.hi);
    // Bitwise: the event-driven arrival time must be the hop count.
    EXPECT_EQ(r.stats.latency, r.stats.delay);
  }
}

TEST(ConstantHopRegression, TopKAndKnnLatencyEqualsHopDelay) {
  auto fx = make_single_index(150, 7005);
  testsupport::publish_uniform_values(fx->index, 300, 7006);
  Rng rng(13);
  for (int i = 0; i < 25; ++i) {
    const auto q = testsupport::random_subrange(rng, kPaperDomain, 150.0);
    const auto topk =
        fx->index.top_k(fx->random_issuer(rng), q.lo, q.hi, 5);
    EXPECT_EQ(topk.stats.latency, topk.stats.delay);
    const auto knn = fx->index.nearest(
        fx->random_issuer(rng), rng.next_double(0.0, 1000.0), 4);
    EXPECT_EQ(knn.stats.latency, knn.stats.delay);
  }
}

TEST(ConstantHopRegression, DcfCanLatencyEqualsHopDelay) {
  can::CanNetwork net(250, 7007);
  rq::DcfCan dcf(net, rq::DcfCan::Config{});
  Rng rng(15);
  for (int i = 0; i < 300; ++i) {
    dcf.publish(rng.next_double(0.0, 1000.0));
  }
  for (int i = 0; i < 60; ++i) {
    const auto q = testsupport::random_subrange(rng, kPaperDomain, 250.0);
    const auto r = dcf.query(
        static_cast<can::NodeId>(rng.next_index(net.num_nodes())), q.lo, q.hi);
    EXPECT_EQ(r.stats.latency, r.stats.delay);
  }
}

// Expected totals for GoldenDelayTotals below, captured from the seed
// hop-count implementation (which the transport reproduces bit-for-bit).
constexpr double kGoldenPiraDelay = 191.0;
constexpr double kGoldenDcfDelay = 199.0;
constexpr std::uint64_t kGoldenPiraMessages = 401;
constexpr std::uint64_t kGoldenDcfMessages = 326;

// Golden fig5-style numbers (N=60, fixed seeds): pins the delay/message
// totals of the default-model query path so a change to routing, FRT
// forwarding or the flood is caught even if it keeps latency == delay.
// Regenerate by printing the totals if an *intentional* semantic change
// lands.
TEST(ConstantHopRegression, GoldenDelayTotals) {
  auto fx = make_single_index(60, 4242);
  testsupport::publish_uniform_values(fx->index, 120, 4243);
  can::CanNetwork cnet(60, 4242);
  rq::DcfCan dcf(cnet, rq::DcfCan::Config{});
  Rng crng(4243);
  for (int i = 0; i < 120; ++i) {
    dcf.publish(crng.next_double(0.0, 1000.0));
  }

  double pira_delay = 0.0;
  double dcf_delay = 0.0;
  std::uint64_t pira_messages = 0;
  std::uint64_t dcf_messages = 0;
  Rng rng(4244);
  for (int i = 0; i < 40; ++i) {
    const auto q = testsupport::random_subrange(rng, kPaperDomain, 100.0);
    const auto pr = fx->index.range_query(fx->random_issuer(rng), q.lo, q.hi);
    const auto dr = dcf.query(
        static_cast<can::NodeId>(rng.next_index(cnet.num_nodes())), q.lo,
        q.hi);
    pira_delay += pr.stats.delay;
    dcf_delay += dr.stats.delay;
    pira_messages += pr.stats.messages;
    dcf_messages += dr.stats.messages;
  }
  EXPECT_EQ(pira_delay, kGoldenPiraDelay);
  EXPECT_EQ(dcf_delay, kGoldenDcfDelay);
  EXPECT_EQ(pira_messages, kGoldenPiraMessages);
  EXPECT_EQ(dcf_messages, kGoldenDcfMessages);
}

TEST(LatencyModelDeterminism, TwoIndependentNetworksAgree) {
  constexpr std::size_t kN = 150;
  constexpr std::uint64_t kNetSeed = 8101;
  constexpr std::uint64_t kModelSeed = 8202;

  for (std::size_t mi = 0; mi < all_models(kModelSeed).size(); ++mi) {
    // Two fully independent builds: networks, indexes, objects and models
    // are constructed twice from the same seeds.
    auto fx1 = make_single_index(kN, kNetSeed);
    auto fx2 = make_single_index(kN, kNetSeed);
    testsupport::publish_uniform_values(fx1->index, 300, kNetSeed + 1);
    testsupport::publish_uniform_values(fx2->index, 300, kNetSeed + 1);
    const auto model1 = all_models(kModelSeed)[mi];
    const auto model2 = all_models(kModelSeed)[mi];
    fx1->net.set_latency_model(model1);
    fx2->net.set_latency_model(model2);

    // Identical per-link latencies...
    for (fissione::PeerId u = 0; u < 30; ++u) {
      for (fissione::PeerId v = u + 1; v < 30; ++v) {
        EXPECT_EQ(model1->link_latency(u, v), model2->link_latency(u, v));
      }
    }

    // ... and bit-identical per-query latency under the full query path.
    Rng rng1(77);
    Rng rng2(77);
    for (int i = 0; i < 40; ++i) {
      const auto q1 = testsupport::random_subrange(rng1, kPaperDomain, 150.0);
      const auto q2 = testsupport::random_subrange(rng2, kPaperDomain, 150.0);
      const auto r1 =
          fx1->index.range_query(fx1->random_issuer(rng1), q1.lo, q1.hi);
      const auto r2 =
          fx2->index.range_query(fx2->random_issuer(rng2), q2.lo, q2.hi);
      EXPECT_EQ(r1.stats.latency, r2.stats.latency)
          << "model " << model1->name() << " query " << i;
      EXPECT_EQ(r1.stats.delay, r2.stats.delay);
      EXPECT_EQ(r1.stats.messages, r2.stats.messages);
    }
  }
}

TEST(LatencyModelDeterminism, DcfFloodAgreesAcrossBuilds) {
  constexpr std::uint64_t kModelSeed = 8303;
  for (std::size_t mi = 0; mi < all_models(kModelSeed).size(); ++mi) {
    can::CanNetwork net1(120, 8304);
    can::CanNetwork net2(120, 8304);
    rq::DcfCan dcf1(net1, rq::DcfCan::Config{});
    rq::DcfCan dcf2(net2, rq::DcfCan::Config{});
    Rng pub1(8305);
    Rng pub2(8305);
    for (int i = 0; i < 200; ++i) {
      dcf1.publish(pub1.next_double(0.0, 1000.0));
      dcf2.publish(pub2.next_double(0.0, 1000.0));
    }
    net1.set_latency_model(all_models(kModelSeed)[mi]);
    net2.set_latency_model(all_models(kModelSeed)[mi]);

    Rng rng1(78);
    Rng rng2(78);
    for (int i = 0; i < 30; ++i) {
      const auto q1 = testsupport::random_subrange(rng1, kPaperDomain, 300.0);
      const auto q2 = testsupport::random_subrange(rng2, kPaperDomain, 300.0);
      const auto r1 = dcf1.query(
          static_cast<can::NodeId>(rng1.next_index(net1.num_nodes())), q1.lo,
          q1.hi);
      const auto r2 = dcf2.query(
          static_cast<can::NodeId>(rng2.next_index(net2.num_nodes())), q2.lo,
          q2.hi);
      EXPECT_EQ(r1.stats.latency, r2.stats.latency);
      EXPECT_EQ(r1.stats.delay, r2.stats.delay);
      EXPECT_EQ(r1.stats.messages, r2.stats.messages);
    }
  }
}

TEST(LatencyModels, HeterogeneousModelsChangeLatencyNotDelay) {
  // Swapping the model must change reported latency but never the hop-count
  // delay, destinations or message count — the model only re-prices links.
  auto fx = make_single_index(150, 8401);
  testsupport::publish_uniform_values(fx->index, 300, 8402);

  Rng rng(79);
  const auto q = testsupport::random_subrange(rng, kPaperDomain, 200.0);
  const auto issuer = fx->random_issuer(rng);

  const auto base = fx->index.range_query(issuer, q.lo, q.hi);
  fx->net.set_latency_model(std::make_shared<net::TransitStub>(8403));
  const auto slow = fx->index.range_query(issuer, q.lo, q.hi);

  EXPECT_EQ(base.stats.delay, slow.stats.delay);
  EXPECT_EQ(base.stats.messages, slow.stats.messages);
  EXPECT_EQ(base.destinations, slow.destinations);
  EXPECT_GE(slow.stats.latency, base.stats.latency);
}

}  // namespace
}  // namespace armada
