#include "rq/dcf_can.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "util/rng.h"

namespace armada::rq {
namespace {

using can::CanNetwork;
using can::NodeId;

std::vector<NodeId> sorted(std::vector<NodeId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class DcfExactnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DcfExactnessTest, FloodReachesExactlyIntersectingZones) {
  const std::uint64_t seed = GetParam();
  CanNetwork net(200 + 50 * (seed % 3), seed);
  DcfCan dcf(net, DcfCan::Config{});
  Rng rng(seed + 1000);
  for (int i = 0; i < 500; ++i) {
    dcf.publish(rng.next_double(0.0, 1000.0));
  }

  for (int trial = 0; trial < 40; ++trial) {
    const double size = rng.next_double(0.0, 300.0);
    const double lo = rng.next_double(0.0, 1000.0 - size);
    const double hi = lo + size;
    const NodeId issuer = static_cast<NodeId>(rng.next_index(net.num_nodes()));
    const auto r = dcf.query(issuer, lo, hi);

    // Destination set = zones whose Hilbert ranges intersect the segment.
    EXPECT_EQ(sorted({r.destinations.begin(), r.destinations.end()}),
              sorted(dcf.expected_destinations(lo, hi)));

    // No duplicate visits.
    std::unordered_set<NodeId> unique(r.destinations.begin(),
                                      r.destinations.end());
    EXPECT_EQ(unique.size(), r.destinations.size());

    // Exact results.
    std::vector<std::uint64_t> expected_matches;
    for (std::uint64_t h = 0; h < 500; ++h) {
      if (dcf.value(h) >= lo && dcf.value(h) <= hi) {
        expected_matches.push_back(h);
      }
    }
    auto got = r.matches;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected_matches);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DcfExactnessTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(DcfCan, ValueMappingIsMonotoneOnTheCurve) {
  CanNetwork net(50, 31);
  DcfCan dcf(net, DcfCan::Config{});
  double prev = -1.0;
  for (double v = 0.0; v <= 1000.0; v += 10.0) {
    const double idx = static_cast<double>(dcf.value_to_index(v));
    EXPECT_GT(idx, prev);
    prev = idx;
  }
}

TEST(DcfCan, DelayGrowsWithRangeSize) {
  CanNetwork net(2000, 33);
  DcfCan dcf(net, DcfCan::Config{});
  Rng rng(35);
  auto mean_delay = [&](double size) {
    double total = 0.0;
    const int trials = 60;
    for (int i = 0; i < trials; ++i) {
      const double lo = rng.next_double(0.0, 1000.0 - size);
      const auto r = dcf.query(
          static_cast<NodeId>(rng.next_index(net.num_nodes())), lo, lo + size);
      total += r.stats.delay;
    }
    return total / trials;
  };
  // The paper's Figure 5 behaviour: DCF-CAN delay increases remarkably
  // with the queried range.
  EXPECT_GT(mean_delay(300.0), mean_delay(2.0) + 3.0);
}

TEST(DcfCan, ZoneRangesPartitionCurve) {
  CanNetwork net(150, 37);
  DcfCan dcf(net, DcfCan::Config{.order = 10, .domain = {0.0, 1000.0}});
  // Total length of all zones' index ranges equals the whole curve.
  std::uint64_t total = 0;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    for (const auto& r : dcf.zone_ranges(id)) {
      total += r.last - r.first;
    }
  }
  EXPECT_EQ(total, 1ull << 20);  // 4^10
}

TEST(DcfCan, SingleZoneQueryCostsOnlyRouting) {
  CanNetwork net(300, 39);
  DcfCan dcf(net, DcfCan::Config{});
  // A zero-width range hits exactly one zone.
  const auto r = dcf.query(0, 500.0, 500.0);
  EXPECT_EQ(r.stats.dest_peers, 1u);
  EXPECT_DOUBLE_EQ(r.stats.delay, static_cast<double>(r.stats.messages));
}

}  // namespace
}  // namespace armada::rq
