#include "armada/armada.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "support/test_networks.h"
#include "support/test_workloads.h"
#include "util/check.h"

namespace armada::core {
namespace {

using fissione::PeerId;
using kautz::Box;
using testsupport::make_multi_index;
using testsupport::make_single_index;
using testsupport::publish_uniform_points;
using testsupport::publish_uniform_values;

std::vector<std::uint64_t> sorted(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<PeerId> sorted(std::vector<PeerId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class PiraExactnessTest : public ::testing::TestWithParam<std::uint64_t> {};

// Golden invariant (a): PIRA reaches exactly the peers in charge of the
// query region, and returns exactly the objects a global scan finds.
TEST_P(PiraExactnessTest, DestinationsAndResultsMatchBruteForce) {
  const std::uint64_t seed = GetParam();
  auto fx = make_single_index(150 + 37 * (seed % 5), seed);
  publish_uniform_values(fx->index, 600, seed * 31 + 7);
  Rng rng(seed * 131 + 7);

  for (int trial = 0; trial < 60; ++trial) {
    const auto q = testsupport::random_subrange(rng, testsupport::kPaperDomain,
                                                400.0);
    const PeerId issuer = fx->random_issuer(rng);

    const RangeQueryResult r = fx->index.range_query(issuer, q.lo, q.hi);

    // Destinations are exactly the peers whose PeerID prefixes the region.
    const auto expected = fx->index.pira().expected_destinations(
        fx->index.naming_tree().region_for(q.lo, q.hi));
    EXPECT_EQ(sorted(r.destinations), sorted(expected));
    EXPECT_EQ(r.stats.dest_peers, expected.size());

    // No duplicate deliveries.
    std::unordered_set<PeerId> unique(r.destinations.begin(),
                                      r.destinations.end());
    EXPECT_EQ(unique.size(), r.destinations.size());

    // Results equal a global scan.
    EXPECT_EQ(sorted(r.matches), fx->index.scan_matches(Box{{q.lo, q.hi}}));

    // Delay bound: at most the issuer's PeerID length (paper §4.3.2).
    EXPECT_LE(r.stats.delay,
              static_cast<double>(fx->net.peer(issuer).peer_id.length()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PiraExactnessTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Pira, FullDomainQueryReachesEveryPeer) {
  auto fx = make_single_index(120, 21);
  const RangeQueryResult r =
      fx->index.range_query(fx->net.alive_peers().front(), 0.0, 1000.0);
  EXPECT_EQ(r.stats.dest_peers, fx->net.num_peers());
  // Delay stays bounded by the issuer's PeerID length even for the full
  // space — the delay-bounded property that distinguishes Armada.
  EXPECT_LE(r.stats.delay,
            static_cast<double>(
                fx->net.peer(fx->net.alive_peers().front()).peer_id.length()));
}

TEST(Pira, PointQueryHitsSinglePeer) {
  auto fx = make_single_index(200, 22);
  const std::uint64_t h = fx->index.publish(123.456);
  const RangeQueryResult r =
      fx->index.range_query(fx->net.random_peer(), 123.456, 123.456);
  EXPECT_EQ(r.stats.dest_peers, 1u);
  EXPECT_EQ(r.matches, std::vector<std::uint64_t>{h});
}

TEST(Pira, IssuerInsideRangeIsAlsoDestination) {
  auto fx = make_single_index(100, 23);
  // Find a peer and query a range that surely covers its zone: use the
  // whole domain, then check the issuer is among destinations at delay 0
  // for its own zone's subregion.
  const PeerId issuer = fx->net.random_peer();
  const RangeQueryResult r = fx->index.range_query(issuer, 0.0, 1000.0);
  EXPECT_NE(std::find(r.destinations.begin(), r.destinations.end(), issuer),
            r.destinations.end());
}

TEST(Pira, EmptyRangeStillRoutesToOwner) {
  auto fx = make_single_index(150, 24);
  const RangeQueryResult r =
      fx->index.range_query(fx->net.random_peer(), 500.0, 500.0);
  EXPECT_EQ(r.stats.dest_peers, 1u);
  EXPECT_TRUE(r.matches.empty());
}

TEST(Pira, MessageCountSanity) {
  auto fx = make_single_index(400, 25);
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    const double lo = rng.next_double(0.0, 900.0);
    const RangeQueryResult r =
        fx->index.range_query(fx->net.random_peer(), lo, lo + 100.0);
    const double n = static_cast<double>(r.stats.dest_peers);
    const double max_len = 2.0 * std::log2(400.0);
    // Forwarding tree: at least n-1 edges beyond the up-to-3 class roots,
    // at most the analytic shape logN + 2n with generous slack.
    EXPECT_GE(static_cast<double>(r.stats.messages), n - 3.0);
    EXPECT_LE(static_cast<double>(r.stats.messages), 3.0 * max_len + 3.0 * n);
  }
}

class MiraExactnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MiraExactnessTest, DestinationsAndResultsMatchBruteForce) {
  const std::uint64_t seed = GetParam();
  auto fx = make_multi_index(120 + 29 * (seed % 4), seed + 100,
                             Box{{0.0, 100.0}, {0.0, 100.0}});
  publish_uniform_points(fx->index, 500, seed * 17 + 3);
  Rng rng(seed * 23 + 5);

  for (int trial = 0; trial < 40; ++trial) {
    Box q(2);
    for (auto& iv : q) {
      iv.lo = rng.next_double(0.0, 80.0);
      iv.hi = iv.lo + rng.next_double(0.0, 100.0 - iv.lo);
    }
    const PeerId issuer = fx->random_issuer(rng);
    const RangeQueryResult r = fx->index.box_query(issuer, q);

    EXPECT_EQ(sorted(r.destinations),
              sorted(fx->index.mira().expected_destinations(q)));
    EXPECT_EQ(sorted(r.matches), fx->index.scan_matches(q));

    std::unordered_set<PeerId> unique(r.destinations.begin(),
                                      r.destinations.end());
    EXPECT_EQ(unique.size(), r.destinations.size());

    EXPECT_LE(r.stats.delay,
              static_cast<double>(fx->net.peer(issuer).peer_id.length()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiraExactnessTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Mira, ThreeAttributesWork) {
  auto fx =
      make_multi_index(150, 30, Box{{0.0, 1.0}, {0.0, 10.0}, {-5.0, 5.0}});
  publish_uniform_points(fx->index, 400, 31);
  const Box q{{0.2, 0.7}, {2.0, 6.0}, {-1.0, 3.0}};
  const RangeQueryResult r = fx->index.box_query(fx->net.random_peer(), q);
  EXPECT_EQ(sorted(r.matches), fx->index.scan_matches(q));
  EXPECT_EQ(sorted(r.destinations),
            sorted(fx->index.mira().expected_destinations(q)));
}

TEST(Mira, NarrowBoxVisitsFewPeers) {
  // MIRA prunes inside the bounding region: a thin box in one dimension
  // should reach far fewer peers than the region <LowT, HighT> spans.
  auto fx = make_multi_index(500, 32, Box{{0.0, 1.0}, {0.0, 1.0}});
  const Box q{{0.0, 1.0}, {0.40, 0.42}};
  const RangeQueryResult r = fx->index.box_query(fx->net.random_peer(), q);
  EXPECT_LT(r.stats.dest_peers, fx->net.num_peers() / 2);
  EXPECT_EQ(sorted(r.destinations),
            sorted(fx->index.mira().expected_destinations(q)));
}

TEST(ArmadaIndex, PublishAttributesRoundTrip) {
  auto fx = make_single_index(50, 33, {0.0, 10.0});
  const auto h0 = fx->index.publish(1.5);
  const auto h1 = fx->index.publish(9.25);
  EXPECT_NE(h0, h1);
  EXPECT_EQ(fx->index.attributes(h0), std::vector<double>{1.5});
  EXPECT_EQ(fx->index.attributes(h1), std::vector<double>{9.25});
}

TEST(ArmadaIndex, RejectsMismatchedDimensions) {
  auto fx = make_multi_index(50, 34, Box{{0.0, 1.0}, {0.0, 1.0}});
  EXPECT_THROW(fx->index.publish(0.5), CheckError);
  EXPECT_THROW(fx->index.box_query(fx->net.random_peer(), Box{{0.0, 1.0}}),
               CheckError);
  EXPECT_THROW(fx->index.range_query(fx->net.random_peer(), 0.0, 1.0),
               CheckError);
}

TEST(ArmadaIndex, QueriesSurviveChurn) {
  auto fx = make_single_index(200, 35);
  publish_uniform_values(fx->index, 500, 36);
  Rng rng(37);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 10; ++i) {
      fx->net.join();
      fx->net.leave(fx->random_issuer(rng));
    }
    const double lo = rng.next_double(0.0, 900.0);
    const RangeQueryResult r =
        fx->index.range_query(fx->net.random_peer(), lo, lo + 100.0);
    EXPECT_EQ(sorted(r.matches),
              fx->index.scan_matches(Box{{lo, lo + 100.0}}));
  }
}

}  // namespace
}  // namespace armada::core
