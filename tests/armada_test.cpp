#include "armada/armada.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "sim/workload.h"
#include "util/check.h"

namespace armada::core {
namespace {

using fissione::FissioneNetwork;
using fissione::PeerId;
using kautz::Box;
using kautz::Interval;

std::vector<std::uint64_t> sorted(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<PeerId> sorted(std::vector<PeerId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class PiraExactnessTest : public ::testing::TestWithParam<std::uint64_t> {};

// Golden invariant (a): PIRA reaches exactly the peers in charge of the
// query region, and returns exactly the objects a global scan finds.
TEST_P(PiraExactnessTest, DestinationsAndResultsMatchBruteForce) {
  const std::uint64_t seed = GetParam();
  auto net = FissioneNetwork::build(150 + 37 * (seed % 5), seed);
  ArmadaIndex index = ArmadaIndex::single(net, {0.0, 1000.0});
  Rng rng(seed * 31 + 7);
  for (int i = 0; i < 600; ++i) {
    index.publish(rng.next_double(0.0, 1000.0));
  }

  for (int trial = 0; trial < 60; ++trial) {
    const double size = rng.next_double(0.0, 400.0);
    const double lo = rng.next_double(0.0, 1000.0 - size);
    const double hi = lo + size;
    const PeerId issuer =
        net.alive_peers()[rng.next_index(net.alive_peers().size())];

    const RangeQueryResult r = index.range_query(issuer, lo, hi);

    // Destinations are exactly the peers whose PeerID prefixes the region.
    const auto expected = index.pira().expected_destinations(
        index.naming_tree().region_for(lo, hi));
    EXPECT_EQ(sorted(r.destinations), sorted(expected));
    EXPECT_EQ(r.stats.dest_peers, expected.size());

    // No duplicate deliveries.
    std::unordered_set<PeerId> unique(r.destinations.begin(),
                                      r.destinations.end());
    EXPECT_EQ(unique.size(), r.destinations.size());

    // Results equal a global scan.
    EXPECT_EQ(sorted(r.matches), index.scan_matches(Box{{lo, hi}}));

    // Delay bound: at most the issuer's PeerID length (paper §4.3.2).
    EXPECT_LE(r.stats.delay,
              static_cast<double>(net.peer(issuer).peer_id.length()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PiraExactnessTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Pira, FullDomainQueryReachesEveryPeer) {
  auto net = FissioneNetwork::build(120, 21);
  ArmadaIndex index = ArmadaIndex::single(net, {0.0, 1000.0});
  const RangeQueryResult r =
      index.range_query(net.alive_peers().front(), 0.0, 1000.0);
  EXPECT_EQ(r.stats.dest_peers, net.num_peers());
  // Delay stays bounded by the issuer's PeerID length even for the full
  // space — the delay-bounded property that distinguishes Armada.
  EXPECT_LE(r.stats.delay,
            static_cast<double>(
                net.peer(net.alive_peers().front()).peer_id.length()));
}

TEST(Pira, PointQueryHitsSinglePeer) {
  auto net = FissioneNetwork::build(200, 22);
  ArmadaIndex index = ArmadaIndex::single(net, {0.0, 1000.0});
  const std::uint64_t h = index.publish(123.456);
  const RangeQueryResult r =
      index.range_query(net.random_peer(), 123.456, 123.456);
  EXPECT_EQ(r.stats.dest_peers, 1u);
  EXPECT_EQ(r.matches, std::vector<std::uint64_t>{h});
}

TEST(Pira, IssuerInsideRangeIsAlsoDestination) {
  auto net = FissioneNetwork::build(100, 23);
  ArmadaIndex index = ArmadaIndex::single(net, {0.0, 1000.0});
  // Find a peer and query a range that surely covers its zone: use the
  // whole domain, then check the issuer is among destinations at delay 0
  // for its own zone's subregion.
  const PeerId issuer = net.random_peer();
  const RangeQueryResult r = index.range_query(issuer, 0.0, 1000.0);
  EXPECT_NE(std::find(r.destinations.begin(), r.destinations.end(), issuer),
            r.destinations.end());
}

TEST(Pira, EmptyRangeStillRoutesToOwner) {
  auto net = FissioneNetwork::build(150, 24);
  ArmadaIndex index = ArmadaIndex::single(net, {0.0, 1000.0});
  const RangeQueryResult r = index.range_query(net.random_peer(), 500.0, 500.0);
  EXPECT_EQ(r.stats.dest_peers, 1u);
  EXPECT_TRUE(r.matches.empty());
}

TEST(Pira, MessageCountSanity) {
  auto net = FissioneNetwork::build(400, 25);
  ArmadaIndex index = ArmadaIndex::single(net, {0.0, 1000.0});
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    const double lo = rng.next_double(0.0, 900.0);
    const RangeQueryResult r =
        index.range_query(net.random_peer(), lo, lo + 100.0);
    const double n = static_cast<double>(r.stats.dest_peers);
    const double max_len = 2.0 * std::log2(400.0);
    // Forwarding tree: at least n-1 edges beyond the up-to-3 class roots,
    // at most the analytic shape logN + 2n with generous slack.
    EXPECT_GE(static_cast<double>(r.stats.messages), n - 3.0);
    EXPECT_LE(static_cast<double>(r.stats.messages), 3.0 * max_len + 3.0 * n);
  }
}

class MiraExactnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MiraExactnessTest, DestinationsAndResultsMatchBruteForce) {
  const std::uint64_t seed = GetParam();
  auto net = FissioneNetwork::build(120 + 29 * (seed % 4), seed + 100);
  ArmadaIndex index =
      ArmadaIndex::multi(net, Box{{0.0, 100.0}, {0.0, 100.0}});
  Rng rng(seed * 17 + 3);
  for (int i = 0; i < 500; ++i) {
    index.publish({rng.next_double(0.0, 100.0), rng.next_double(0.0, 100.0)});
  }

  for (int trial = 0; trial < 40; ++trial) {
    Box q(2);
    for (auto& iv : q) {
      iv.lo = rng.next_double(0.0, 80.0);
      iv.hi = iv.lo + rng.next_double(0.0, 100.0 - iv.lo);
    }
    const PeerId issuer =
        net.alive_peers()[rng.next_index(net.alive_peers().size())];
    const RangeQueryResult r = index.box_query(issuer, q);

    EXPECT_EQ(sorted(r.destinations),
              sorted(index.mira().expected_destinations(q)));
    EXPECT_EQ(sorted(r.matches), index.scan_matches(q));

    std::unordered_set<PeerId> unique(r.destinations.begin(),
                                      r.destinations.end());
    EXPECT_EQ(unique.size(), r.destinations.size());

    EXPECT_LE(r.stats.delay,
              static_cast<double>(net.peer(issuer).peer_id.length()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiraExactnessTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Mira, ThreeAttributesWork) {
  auto net = FissioneNetwork::build(150, 30);
  ArmadaIndex index = ArmadaIndex::multi(
      net, Box{{0.0, 1.0}, {0.0, 10.0}, {-5.0, 5.0}});
  Rng rng(31);
  for (int i = 0; i < 400; ++i) {
    index.publish({rng.next_double(), rng.next_double(0, 10),
                   rng.next_double(-5, 5)});
  }
  const Box q{{0.2, 0.7}, {2.0, 6.0}, {-1.0, 3.0}};
  const RangeQueryResult r = index.box_query(net.random_peer(), q);
  EXPECT_EQ(sorted(r.matches), index.scan_matches(q));
  EXPECT_EQ(sorted(r.destinations),
            sorted(index.mira().expected_destinations(q)));
}

TEST(Mira, NarrowBoxVisitsFewPeers) {
  // MIRA prunes inside the bounding region: a thin box in one dimension
  // should reach far fewer peers than the region <LowT, HighT> spans.
  auto net = FissioneNetwork::build(500, 32);
  ArmadaIndex index = ArmadaIndex::multi(net, Box{{0.0, 1.0}, {0.0, 1.0}});
  const Box q{{0.0, 1.0}, {0.40, 0.42}};
  const RangeQueryResult r = index.box_query(net.random_peer(), q);
  EXPECT_LT(r.stats.dest_peers, net.num_peers() / 2);
  EXPECT_EQ(sorted(r.destinations),
            sorted(index.mira().expected_destinations(q)));
}

TEST(ArmadaIndex, PublishAttributesRoundTrip) {
  auto net = FissioneNetwork::build(50, 33);
  ArmadaIndex index = ArmadaIndex::single(net, {0.0, 10.0});
  const auto h0 = index.publish(1.5);
  const auto h1 = index.publish(9.25);
  EXPECT_NE(h0, h1);
  EXPECT_EQ(index.attributes(h0), std::vector<double>{1.5});
  EXPECT_EQ(index.attributes(h1), std::vector<double>{9.25});
}

TEST(ArmadaIndex, RejectsMismatchedDimensions) {
  auto net = FissioneNetwork::build(50, 34);
  ArmadaIndex index = ArmadaIndex::multi(net, Box{{0.0, 1.0}, {0.0, 1.0}});
  EXPECT_THROW(index.publish(0.5), CheckError);
  EXPECT_THROW(index.box_query(net.random_peer(), Box{{0.0, 1.0}}),
               CheckError);
  EXPECT_THROW(index.range_query(net.random_peer(), 0.0, 1.0), CheckError);
}

TEST(ArmadaIndex, QueriesSurviveChurn) {
  auto net = FissioneNetwork::build(200, 35);
  ArmadaIndex index = ArmadaIndex::single(net, {0.0, 1000.0});
  Rng rng(36);
  for (int i = 0; i < 500; ++i) {
    index.publish(rng.next_double(0.0, 1000.0));
  }
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 10; ++i) {
      net.join();
      net.leave(net.alive_peers()[rng.next_index(net.alive_peers().size())]);
    }
    const double lo = rng.next_double(0.0, 900.0);
    const RangeQueryResult r =
        index.range_query(net.random_peer(), lo, lo + 100.0);
    EXPECT_EQ(sorted(r.matches), index.scan_matches(Box{{lo, lo + 100.0}}));
  }
}

}  // namespace
}  // namespace armada::core
