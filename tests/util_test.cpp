#include <gtest/gtest.h>

#include <cmath>

#include "support/test_workloads.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace armada {
namespace {

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(ARMADA_CHECK(1 + 1 == 2));
}

TEST(Check, FailingConditionThrowsWithLocation) {
  try {
    ARMADA_CHECK_MSG(false, "ctx " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("util_test.cpp"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

// Regression: random_subrange promised clamping but threw CheckError when
// max_size reached or exceeded the domain width (and on max_size == 0).
TEST(TestSupport, RandomSubrangeClampsOversizedAndZeroMaxSize) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto q = testsupport::random_subrange(rng, {0.0, 10.0}, 1e9);
    EXPECT_GE(q.lo, 0.0);
    EXPECT_LE(q.hi, 10.0);
    EXPECT_LE(q.lo, q.hi);
  }
  const auto point = testsupport::random_subrange(rng, {0.0, 10.0}, 0.0);
  EXPECT_EQ(point.lo, point.hi);
}

// Regression: Figure 6/8 benches crashed on small workloads because
// IncreRatio can legitimately collect zero samples (it needs >1 dest peer);
// mean_or() is the non-throwing accessor for such possibly-empty stats.
TEST(OnlineStats, MeanOrFallsBackWhenEmpty) {
  OnlineStats s;
  EXPECT_THROW(s.mean(), CheckError);
  EXPECT_TRUE(std::isnan(s.mean_or(std::nan(""))));
  EXPECT_EQ(s.mean_or(-1.0), -1.0);
  s.add(3.0);
  EXPECT_EQ(s.mean_or(-1.0), 3.0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(1000), b.next_u64(1000));
  }
}

TEST(Rng, BoundsRespected) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_u64(17), 17u);
    const double d = rng.next_double(2.0, 3.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 3.0);
    const auto v = rng.next_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(11);
  Rng child = a.split();
  // Different streams should diverge almost surely.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64(1000000) == child.next_u64(1000000)) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(OnlineStats, MeanMinMax) {
  OnlineStats s;
  for (double x : {4.0, 2.0, 6.0, 8.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_DOUBLE_EQ(s.sum(), 20.0);
}

TEST(OnlineStats, VarianceMatchesDirectFormula) {
  OnlineStats s;
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  double mean = 3.0;
  double var = 0;
  for (double x : xs) {
    s.add(x);
    var += (x - mean) * (x - mean);
  }
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
}

TEST(OnlineStats, MergeEqualsSingleStream) {
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_double(0, 100);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Percentiles, NearestRankOnKnownDistributions) {
  // 1..100: the q-th percentile is exactly ceil(100q).
  Percentiles p;
  for (int i = 100; i >= 1; --i) {  // insertion order must not matter
    p.add(static_cast<double>(i));
  }
  EXPECT_EQ(p.count(), 100u);
  EXPECT_DOUBLE_EQ(p.p50(), 50.0);
  EXPECT_DOUBLE_EQ(p.p95(), 95.0);
  EXPECT_DOUBLE_EQ(p.p99(), 99.0);
  EXPECT_DOUBLE_EQ(p.percentile(0.001), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(1.0), 100.0);
  // Regression: 0.07 * 100 lands one ulp above 7.0; naive ceil returned the
  // 8th order statistic instead of the nearest-rank 7th.
  EXPECT_DOUBLE_EQ(p.percentile(0.07), 7.0);

  // A point mass: every percentile is the point.
  Percentiles point;
  for (int i = 0; i < 7; ++i) {
    point.add(3.5);
  }
  EXPECT_DOUBLE_EQ(point.p50(), 3.5);
  EXPECT_DOUBLE_EQ(point.p99(), 3.5);
}

TEST(Percentiles, SingleSampleAndErrors) {
  Percentiles p;
  EXPECT_THROW(p.p50(), CheckError);
  p.add(42.0);
  EXPECT_DOUBLE_EQ(p.p50(), 42.0);
  EXPECT_DOUBLE_EQ(p.p99(), 42.0);
  EXPECT_THROW(p.percentile(0.0), CheckError);
  EXPECT_THROW(p.percentile(1.5), CheckError);
}

TEST(Percentiles, InterleavedAddAndQuery) {
  // Querying sorts lazily; adding afterwards must keep percentiles correct.
  Percentiles p;
  for (int i = 1; i <= 10; ++i) {
    p.add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(p.p50(), 5.0);
  for (int i = 11; i <= 100; ++i) {
    p.add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(p.p50(), 50.0);
  EXPECT_DOUBLE_EQ(p.p99(), 99.0);
}

TEST(Percentiles, CappedModeStaysCloseOnUniformStream) {
  // With a cap the accumulator keeps a deterministic systematic sample;
  // quantiles of a uniform stream stay within a few percent.
  Percentiles capped(512);
  Percentiles exact;
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.next_double();
    capped.add(x);
    exact.add(x);
  }
  EXPECT_EQ(capped.count(), 20000u);
  EXPECT_NEAR(capped.p50(), exact.p50(), 0.06);
  EXPECT_NEAR(capped.p95(), exact.p95(), 0.06);
  EXPECT_THROW(Percentiles(1), CheckError);
}

TEST(Percentiles, CappedModeIsIndependentOfQueryTiming) {
  // Regression: thinning once operated on the lazily-sorted array, so a
  // mid-stream query changed which samples survived later thinning.
  Percentiles quiet(64);
  Percentiles queried(64);
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    quiet.add(x);
    queried.add(x);
    if (i == 500) {
      (void)queried.p50();
    }
  }
  EXPECT_EQ(quiet.p50(), queried.p50());
  EXPECT_EQ(quiet.p95(), queried.p95());
  EXPECT_EQ(quiet.p99(), queried.p99());
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.add(i);
  }
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_EQ(h.quantile(0.5), 50);
  EXPECT_EQ(h.quantile(0.99), 99);
  EXPECT_EQ(h.quantile(1.0), 100);
  EXPECT_EQ(h.count(42), 1u);
  EXPECT_EQ(h.count(101), 0u);
}

TEST(Table, TextAndCsv) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({Table::cell(std::int64_t{3}), Table::cell(4.5, 1)});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("| a"), std::string::npos);
  EXPECT_NE(text.find("4.5"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4.5\n");
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

}  // namespace
}  // namespace armada
