// Online key-space rebalancing (src/rebalance/) and its cutover surface,
// the fissione delegation registry.
//
// The migration invariants under test:
//  * object conservation — total_objects() is constant across detach,
//    delegate, cutover, revoke, and host departure, and drops only by a
//    crash's reported loss;
//  * exactness — every query answered during an active migration equals
//    the ground truth (migrating objects are served by the donor until the
//    transfer lands, by the host afterwards; never dropped, never twice);
//  * hysteresis — migrations stop once the hot ranges moved (no ping-pong);
//  * determinism — identical seeds produce identical answers, stats, and
//    registries;
//  * bitwise no-op when disabled — a default RebalanceConfig changes
//    nothing about the query path.
//
// ARMADA_SOAK=1 stretches the trajectory tests 10x (wired into the CI
// Release leg); ARMADA_FUZZ_SEED=<n> replays the determinism sweep on one
// seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "armada/armada.h"
#include "fissione/network.h"
#include "fissione/types.h"
#include "net/queueing.h"
#include "net/transport.h"
#include "rebalance/rebalance.h"
#include "sim/event_queue.h"
#include "sim/workload.h"
#include "support/test_networks.h"
#include "support/test_workloads.h"
#include "util/rng.h"

namespace armada::core {
namespace {

using fissione::FissioneNetwork;
using fissione::PeerId;
using fissione::StoredObject;
using kautz::KautzString;

/// 10x trajectories under ARMADA_SOAK=1 (the CI Release-leg soak), 1x
/// otherwise.
int soak_factor() {
  const char* env = std::getenv("ARMADA_SOAK");
  return (env != nullptr && std::string(env) != "0") ? 10 : 1;
}

std::vector<std::uint64_t> fuzz_seeds() {
  if (const char* env = std::getenv("ARMADA_FUZZ_SEED")) {
    char* end = nullptr;
    const std::uint64_t seed = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0') {
      std::fprintf(stderr,
                   "invalid ARMADA_FUZZ_SEED '%s' (expected an unsigned "
                   "integer)\n",
                   env);
      std::exit(2);
    }
    return {seed};
  }
  return {1, 2, 3};
}

/// Alive peer whose native store is largest — the natural migration donor.
PeerId fattest_peer(const FissioneNetwork& net) {
  PeerId best = fissione::kNoPeer;
  std::size_t most = 0;
  for (PeerId p : net.alive_peers()) {
    const std::size_t n = net.peer(p).store.size();
    if (best == fissione::kNoPeer || n > most) {
      best = p;
      most = n;
    }
  }
  return best;
}

/// Any alive peer whose zone is disjoint from `range` (a valid host).
PeerId disjoint_host(const FissioneNetwork& net, const KautzString& range,
                     PeerId exclude) {
  for (PeerId p : net.alive_peers()) {
    if (p == exclude) {
      continue;
    }
    const KautzString id = net.peer(p).peer_id;
    if (!id.is_prefix_of(range) && !range.is_prefix_of(id)) {
      return p;
    }
  }
  return fissione::kNoPeer;
}

/// Sorted matches of one range query.
std::vector<std::uint64_t> query_sorted(const ArmadaIndex& index,
                                        PeerId issuer, double lo, double hi) {
  auto m = index.range_query(issuer, lo, hi).matches;
  std::sort(m.begin(), m.end());
  return m;
}

/// Drop-aware ground truth: what the surviving peers still own (native
/// stores plus delegated slices), restricted to [lo, hi].
std::vector<std::uint64_t> owned_matches(const FissioneNetwork& net,
                                         const ArmadaIndex& index, double lo,
                                         double hi) {
  std::vector<std::uint64_t> out;
  for (PeerId p : net.alive_peers()) {
    net.for_each_owned(p, [&](const StoredObject& obj) {
      const double v = index.attributes(obj.payload)[0];
      if (v >= lo && v <= hi) {
        out.push_back(obj.payload);
      }
    });
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --- delegation registry (the cutover surface) -----------------------------

TEST(DelegationRegistry, RoundTripConservesObjectsAndStaysExact) {
  auto fx = testsupport::make_single_index(80, 21);
  auto& net = fx->net;
  auto& index = fx->index;
  const auto values = testsupport::publish_uniform_values(index, 400, 51);
  ASSERT_EQ(net.total_objects(), values.size());

  const PeerId donor = fattest_peer(net);
  const KautzString range = net.peer(donor).peer_id;
  const std::size_t donor_store = net.peer(donor).store.size();
  ASSERT_GT(donor_store, 0u);

  auto detached = net.detach_range(range);
  EXPECT_EQ(detached.size(), donor_store);
  EXPECT_EQ(net.peer(donor).store.size(), 0u);
  // Detached objects are gone from every native store but not yet
  // registered: total_objects() dips by exactly the detached count.
  EXPECT_EQ(net.total_objects(), values.size() - detached.size());

  const PeerId host = disjoint_host(net, range, donor);
  ASSERT_NE(host, fissione::kNoPeer);
  const StoredObject sample = detached.front();
  net.delegate_range(range, host, std::move(detached));
  net.check_invariants();
  EXPECT_EQ(net.total_objects(), values.size());
  ASSERT_NE(net.find_delegation(range), nullptr);
  EXPECT_EQ(net.find_delegation(range)->host, host);
  EXPECT_EQ(net.delegation_covering(sample.object_id),
            net.find_delegation(range));

  // Exact-match lookups route into the registry.
  const auto payloads = net.lookup(host, sample.object_id);
  EXPECT_NE(std::find(payloads.begin(), payloads.end(), sample.payload),
            payloads.end());

  // Range queries issued while the range is hosted stay ground-truth exact.
  Rng rng(77);
  for (int q = 0; q < 25; ++q) {
    const auto sub = testsupport::random_subrange(
        rng, testsupport::kPaperDomain, 200.0);
    const PeerId issuer = fx->random_issuer(rng);
    EXPECT_EQ(query_sorted(index, issuer, sub.lo, sub.hi),
              index.scan_matches({{sub.lo, sub.hi}}));
  }

  // Revocation hands the contents back; re-publishing restores the native
  // placement bit-for-bit.
  auto returned = net.revoke_delegation(range);
  EXPECT_FALSE(net.has_delegations());
  for (const StoredObject& obj : returned) {
    net.publish(obj.object_id, obj.payload);
  }
  net.check_invariants();
  EXPECT_EQ(net.total_objects(), values.size());
  EXPECT_EQ(net.peer(donor).store.size(), donor_store);
  Rng rng2(78);
  for (int q = 0; q < 10; ++q) {
    const auto sub = testsupport::random_subrange(
        rng2, testsupport::kPaperDomain, 200.0);
    const PeerId issuer = fx->random_issuer(rng2);
    EXPECT_EQ(query_sorted(index, issuer, sub.lo, sub.hi),
              index.scan_matches({{sub.lo, sub.hi}}));
  }
}

TEST(DelegationRegistry, PublishRoutesIntoHostedRange) {
  FissioneNetwork net = FissioneNetwork::build(60, 5);
  Rng rng(9);
  for (std::uint64_t i = 0; i < 200; ++i) {
    net.publish(net.random_object_id(), i);
  }

  const PeerId donor = fattest_peer(net);
  const KautzString range = net.peer(donor).peer_id;
  auto detached = net.detach_range(range);
  ASSERT_FALSE(detached.empty());
  const std::size_t hosted_before = detached.size();
  const PeerId host = disjoint_host(net, range, donor);
  ASSERT_NE(host, fissione::kNoPeer);
  net.delegate_range(range, host, std::move(detached));

  // A fresh publish whose ObjectID extends the hosted range must land in
  // the registry, not in the (structural) owner's native store.
  KautzString oid = range;
  while (oid.length() < net.config().object_id_length) {
    for (std::uint8_t s = 0; s <= oid.base(); ++s) {
      if (oid.can_append(s)) {
        oid.push_back(s);
        break;
      }
    }
  }
  net.publish(oid, 9999);
  net.check_invariants();
  ASSERT_NE(net.find_delegation(range), nullptr);
  EXPECT_EQ(net.find_delegation(range)->objects.size(), hosted_before + 1);
  EXPECT_EQ(net.peer(donor).store.size(), 0u);
  EXPECT_EQ(net.total_objects(), 201u);

  const auto payloads = net.lookup(net.alive_peers().front(), oid);
  EXPECT_NE(std::find(payloads.begin(), payloads.end(), 9999u),
            payloads.end());
}

TEST(DelegationRegistry, HostDepartureReturnsObjectsHostCrashDropsThem) {
  // Graceful host departure: the hosted objects flow back to their
  // structural owners, nothing is lost.
  {
    auto fx = testsupport::make_single_index(80, 22);
    auto& net = fx->net;
    const auto values = testsupport::publish_uniform_values(fx->index, 400, 52);
    const PeerId donor = fattest_peer(net);
    const KautzString range = net.peer(donor).peer_id;
    auto detached = net.detach_range(range);
    ASSERT_FALSE(detached.empty());
    const PeerId host = disjoint_host(net, range, donor);
    ASSERT_NE(host, fissione::kNoPeer);
    net.delegate_range(range, host, std::move(detached));

    FissioneNetwork::MembershipReport report;
    net.leave(host, &report);
    net.check_invariants();
    EXPECT_EQ(net.find_delegation(range), nullptr);
    EXPECT_EQ(net.total_objects(), values.size());

    Rng rng(31);
    for (int q = 0; q < 10; ++q) {
      const auto sub = testsupport::random_subrange(
          rng, testsupport::kPaperDomain, 200.0);
      const PeerId issuer = fx->random_issuer(rng);
      EXPECT_EQ(query_sorted(fx->index, issuer, sub.lo, sub.hi),
                fx->index.scan_matches({{sub.lo, sub.hi}}));
    }
  }

  // Host crash: hosted objects are lost with the host, and the loss is
  // reported exactly (conservation of the accounting, not the objects).
  {
    auto fx = testsupport::make_single_index(80, 23);
    auto& net = fx->net;
    const auto values = testsupport::publish_uniform_values(fx->index, 400, 53);
    const PeerId donor = fattest_peer(net);
    const KautzString range = net.peer(donor).peer_id;
    auto detached = net.detach_range(range);
    ASSERT_FALSE(detached.empty());
    const std::size_t hosted = detached.size();
    const PeerId host = disjoint_host(net, range, donor);
    ASSERT_NE(host, fissione::kNoPeer);
    net.delegate_range(range, host, std::move(detached));

    const std::size_t dropped = net.crash(host);
    net.check_invariants();
    EXPECT_GE(dropped, hosted);
    EXPECT_EQ(net.find_delegation(range), nullptr);
    EXPECT_EQ(net.total_objects(), values.size() - dropped);

    Rng rng(32);
    for (int q = 0; q < 10; ++q) {
      const auto sub = testsupport::random_subrange(
          rng, testsupport::kPaperDomain, 200.0);
      const PeerId issuer = fx->random_issuer(rng);
      EXPECT_EQ(query_sorted(fx->index, issuer, sub.lo, sub.hi),
                owned_matches(net, fx->index, sub.lo, sub.hi));
    }
  }
}

// --- the rebalancer under skew ---------------------------------------------

rebalance::RebalanceConfig skew_config(double trigger = 4.0,
                                       double target = 2.0) {
  rebalance::RebalanceConfig cfg;
  cfg.trigger_load = trigger;
  cfg.target_load = target;
  cfg.sweep_interval = 8;
  cfg.cooldown = 32;
  cfg.max_inflight = 4;
  return cfg;
}

TEST(Rebalancer, SkewedWorkloadMigratesAndEveryAnswerStaysExact) {
  auto fx = testsupport::make_single_index(150, 33);
  auto& net = fx->net;
  auto& index = fx->index;
  const auto values = testsupport::publish_uniform_values(index, 600, 71);
  fissione::ServiceLoadMap load;
  net.set_service_load(&load);
  const rebalance::Rebalancer& rb = index.enable_rebalancing(skew_config());

  sim::ZipfValues zipf(testsupport::kPaperDomain, 150, 1.0, Rng(91));
  Rng rng(17);
  const int queries = 400 * soak_factor();
  for (int q = 0; q < queries; ++q) {
    const double c = zipf.next();
    // Mixed widths: narrow queries resolve into full redirects, wide ones
    // into native + host splits — both serve paths must stay exact.
    const double w = (q % 4 == 0) ? 25.0 : 2.5;
    const double lo = std::max(0.0, c - w);
    const double hi = std::min(1000.0, c + w);
    const PeerId issuer = fx->random_issuer(rng);
    const double bound =
        static_cast<double>(net.peer(issuer).peer_id.length());

    const auto res = index.range_query(issuer, lo, hi);
    auto got = res.matches;
    std::sort(got.begin(), got.end());
    // Exact at every point of the trajectory — including the queries that
    // race an in-flight transfer inside their own event horizon.
    ASSERT_EQ(got, index.scan_matches({{lo, hi}})) << "query " << q;
    EXPECT_LE(res.stats.delay, bound);
    // Object conservation at every event boundary: a migration moves
    // objects, it never duplicates or leaks them.
    ASSERT_EQ(net.total_objects(), values.size()) << "query " << q;
  }

  net.check_invariants();
  EXPECT_GT(rb.stats().migrations_started, 0u);
  EXPECT_GT(rb.stats().migrations_completed, 0u);
  EXPECT_GT(rb.stats().objects_migrated, 0u);
  EXPECT_TRUE(net.has_delegations());
  EXPECT_EQ(rb.inflight(), 0u);
  EXPECT_EQ(rb.stats().migrations_started,
            rb.stats().migrations_completed + rb.stats().migrations_cancelled);
  EXPECT_GT(rb.stats().bytes_on_wire, 0u);
}

TEST(Rebalancer, RebalancingReducesPeakServiceLoad) {
  const auto peak_load = [](bool rebalanced) {
    auto fx = testsupport::make_single_index(150, 33);
    testsupport::publish_uniform_values(fx->index, 600, 71);
    fissione::ServiceLoadMap load;
    fx->net.set_service_load(&load);
    if (rebalanced) {
      fx->index.enable_rebalancing(skew_config(2.5, 1.25));
    }
    sim::ZipfValues zipf(testsupport::kPaperDomain, 150, 1.0, Rng(91));
    Rng rng(17);
    for (int q = 0; q < 600; ++q) {
      const double c = zipf.next();
      fx->index.range_query(fx->random_issuer(rng), std::max(0.0, c - 2.5),
                            std::min(1000.0, c + 2.5));
    }
    std::uint64_t peak = 0;
    for (const auto& [p, count] : load) {
      peak = std::max(peak, count);
    }
    return peak;
  };

  const std::uint64_t without = peak_load(false);
  const std::uint64_t with = peak_load(true);
  EXPECT_LT(with, without);
}

TEST(Rebalancer, HysteresisConvergesWithoutPingPong) {
  auto fx = testsupport::make_single_index(150, 34);
  auto& net = fx->net;
  auto& index = fx->index;
  testsupport::publish_uniform_values(index, 600, 72);
  fissione::ServiceLoadMap load;
  net.set_service_load(&load);
  // An effectively infinite cooldown isolates the hysteresis band itself:
  // each range may move at most once, so any ping-pong would have to
  // recruit ever-new ranges — which the downhill acceptor rule forbids.
  rebalance::RebalanceConfig cfg = skew_config(2.5, 1.25);
  cfg.cooldown = 1u << 30;
  const rebalance::Rebalancer& rb = index.enable_rebalancing(cfg);

  sim::ZipfValues zipf(testsupport::kPaperDomain, 150, 1.0, Rng(92));
  Rng rng(18);
  const int half = 300 * soak_factor();
  const auto run_half = [&] {
    for (int q = 0; q < half; ++q) {
      const double c = zipf.next();
      index.range_query(fx->random_issuer(rng), std::max(0.0, c - 2.5),
                        std::min(1000.0, c + 2.5));
    }
  };

  run_half();
  const std::uint64_t first_half = rb.stats().migrations_started;
  run_half();
  const std::uint64_t second_half =
      rb.stats().migrations_started - first_half;

  // The workload's hot set is stationary, so the hot ranges move early and
  // then rest: the second half of the trajectory starts (at most) a small
  // residue of migrations, not another full round — no ping-pong storms.
  EXPECT_GT(first_half, 0u);
  EXPECT_LE(second_half, first_half / 2 + 2);
  EXPECT_LE(rb.stats().migrations_started, 30u);
  net.check_invariants();
}

TEST(Rebalancer, DisabledConfigIsBitwiseIdentical) {
  auto plain = testsupport::make_single_index(120, 44);
  auto guarded = testsupport::make_single_index(120, 44);
  testsupport::publish_uniform_values(plain->index, 300, 55);
  testsupport::publish_uniform_values(guarded->index, 300, 55);
  const rebalance::RebalanceConfig disabled;
  ASSERT_FALSE(disabled.enabled());
  guarded->index.enable_rebalancing(disabled);

  Rng rng_a(5);
  Rng rng_b(5);
  for (int q = 0; q < 60; ++q) {
    const auto sub = testsupport::random_subrange(
        rng_a, testsupport::kPaperDomain, 300.0);
    const auto sub_b = testsupport::random_subrange(
        rng_b, testsupport::kPaperDomain, 300.0);
    const PeerId issuer = plain->random_issuer(rng_a);
    const PeerId issuer_b = guarded->random_issuer(rng_b);
    ASSERT_EQ(issuer, issuer_b);

    const auto a = plain->index.range_query(issuer, sub.lo, sub.hi);
    const auto b = guarded->index.range_query(issuer_b, sub_b.lo, sub_b.hi);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.matches, b.matches);
    EXPECT_EQ(a.destinations, b.destinations);
  }
  EXPECT_FALSE(guarded->net.has_delegations());
  EXPECT_EQ(guarded->index.rebalancer()->stats().sweeps, 0u);
}

TEST(Rebalancer, ServiceLoadForgetsRecycledPeerIds) {
  auto fx = testsupport::make_single_index(60, 7);
  auto& net = fx->net;
  auto& index = fx->index;
  testsupport::publish_uniform_values(index, 300, 57);
  fissione::ServiceLoadMap load;
  net.set_service_load(&load);
  // Enabled (so queries feed the rebalancer) but with a trigger no peer
  // reaches: only the bookkeeping is under test.
  rebalance::RebalanceConfig cfg;
  cfg.trigger_load = 1e9;
  cfg.sweep_interval = 1;
  rebalance::Rebalancer& rb = index.enable_rebalancing(cfg);

  Rng rng(13);
  for (int q = 0; q < 40; ++q) {
    const auto sub = testsupport::random_subrange(
        rng, testsupport::kPaperDomain, 300.0);
    index.range_query(fx->random_issuer(rng), sub.lo, sub.hi);
  }

  PeerId hot = fissione::kNoPeer;
  std::uint64_t most = 0;
  for (const auto& [p, count] : load) {
    if (count > most) {
      hot = p;
      most = count;
    }
  }
  ASSERT_NE(hot, fissione::kNoPeer);
  ASSERT_GT(rb.load_of(hot), 0.0);

  // Crash the hot peer: the network must reset its ServiceLoadMap entry and
  // the membership hook must clear the rebalancer's EWMA, so a joiner that
  // recycles the id does not inherit a dead peer's service history (and
  // does not become a phantom migration donor).
  sim::Simulator sim;
  net.crash(hot);
  rb.on_membership(sim);
  EXPECT_EQ(load.count(hot), 0u);
  EXPECT_EQ(rb.load_of(hot), 0.0);

  const auto joined = net.join();
  if (joined.peer == hot) {
    EXPECT_EQ(load.count(hot), 0u);
    EXPECT_EQ(rb.load_of(hot), 0.0);
  }
  net.check_invariants();
}

TEST(Rebalancer, BacklogTriggerFiresUnderCongestion) {
  auto fx = testsupport::make_single_index(100, 13);
  auto& net = fx->net;
  auto& index = fx->index;
  const auto values = testsupport::publish_uniform_values(index, 400, 59);

  // A slow service rate makes ingress backlog real; no admission control,
  // so answers stay complete and the only new behaviour is the trigger.
  net::QueueingConfig qcfg;
  qcfg.service_rate = 1.0;
  qcfg.default_message_bytes = 64;
  net.transport().install_queueing(qcfg);

  rebalance::RebalanceConfig cfg;
  cfg.backlog_trigger = 3;  // load trigger off: backlog is the only signal
  cfg.target_load = 0.0;
  cfg.sweep_interval = 4;
  cfg.cooldown = 8;
  cfg.max_inflight = 2;
  const rebalance::Rebalancer& rb = index.enable_rebalancing(cfg);

  // One issuer fires a dense burst into one hot range: its first hops pile
  // onto the same few ingress servers, which is exactly the congestion the
  // backlog trigger watches.
  sim::Simulator sim;
  Rng rng(3);
  const PeerId issuer = fx->random_issuer(rng);
  int completed = 0;
  const auto expected = index.scan_matches({{100.0, 140.0}});
  for (int q = 0; q < 48; ++q) {
    sim.schedule_at(0.01 + 0.002 * q, [&sim, &index, issuer, &completed,
                                       &expected] {
      index.range_query_async(sim, issuer, 100.0, 140.0,
                              [&completed, &expected](RangeQueryResult out) {
                                ++completed;
                                std::sort(out.matches.begin(),
                                          out.matches.end());
                                EXPECT_EQ(out.matches, expected);
                              });
    });
  }
  sim.run();

  EXPECT_EQ(completed, 48);
  EXPECT_GT(rb.stats().migrations_started, 0u);
  EXPECT_EQ(rb.inflight(), 0u);
  net.check_invariants();
  EXPECT_EQ(net.total_objects(), values.size());
}

TEST(Rebalancer, CancelsCleanlyWhenDonorCrashesMidTransfer) {
  auto fx = testsupport::make_single_index(90, 27);
  auto& net = fx->net;
  const auto values = testsupport::publish_uniform_values(fx->index, 450, 61);
  fissione::ServiceLoadMap load;
  net.set_service_load(&load);

  rebalance::RebalanceConfig cfg;
  cfg.trigger_load = 1.0;
  cfg.target_load = 10.0;
  cfg.sweep_interval = 2;
  cfg.cooldown = 4;
  rebalance::Rebalancer rb(net, cfg);

  sim::Simulator sim;
  std::size_t dropped = 0;
  sim.schedule_at(0.0, [&] {
    // Synthesize a hot donor — service load on the peer plus matching heat
    // on its zone — and tick until a sweep launches the migration: the
    // transfer is now on the wire with a strictly later delivery instant.
    const PeerId hot = fattest_peer(net);
    load[hot] += 8;
    KautzString hot_oid = net.peer(hot).peer_id;
    while (hot_oid.length() < net.config().object_id_length) {
      for (std::uint8_t s = 0; s <= hot_oid.base(); ++s) {
        if (hot_oid.can_append(s)) {
          hot_oid.push_back(s);
          break;
        }
      }
    }
    const kautz::KautzRegion hot_region(hot_oid, hot_oid);
    for (int i = 0; i < 24 && rb.inflight() == 0; ++i) {
      rb.on_query(sim, {hot_region});
    }
    ASSERT_GT(rb.inflight(), 0u);
    const auto [donor, acceptor] = rb.flight_endpoints().front();
    EXPECT_EQ(donor, hot);

    // The donor dies before the transfer lands. The membership hook cancels
    // the flight; when the delivery event fires it must be a no-op.
    dropped += net.crash(donor);
    rb.on_membership(sim);
    EXPECT_EQ(rb.inflight(), 0u);
  });
  sim.run();

  EXPECT_EQ(rb.stats().migrations_started, 1u);
  EXPECT_EQ(rb.stats().migrations_cancelled, 1u);
  EXPECT_EQ(rb.stats().migrations_completed, 0u);
  EXPECT_FALSE(net.has_delegations());
  net.check_invariants();
  EXPECT_EQ(net.total_objects(), values.size() - dropped);
}

TEST(Rebalancer, DeterministicAcrossIdenticalRuns) {
  for (const std::uint64_t seed : fuzz_seeds()) {
    const auto run = [seed] {
      auto fx = testsupport::make_single_index(120, seed);
      testsupport::publish_uniform_values(fx->index, 400, seed + 1);
      fissione::ServiceLoadMap load;
      fx->net.set_service_load(&load);
      const rebalance::Rebalancer& rb =
          fx->index.enable_rebalancing(skew_config());

      sim::ZipfValues zipf(testsupport::kPaperDomain, 120, 1.1,
                           Rng(seed + 2));
      Rng rng(seed + 3);
      std::vector<std::uint64_t> answer_trace;
      for (int q = 0; q < 200; ++q) {
        const double c = zipf.next();
        auto got = query_sorted(fx->index, fx->random_issuer(rng),
                                std::max(0.0, c - 12.0),
                                std::min(1000.0, c + 12.0));
        answer_trace.push_back(got.size());
        answer_trace.insert(answer_trace.end(), got.begin(), got.end());
      }

      std::vector<std::tuple<KautzString, PeerId, std::size_t>> registry;
      for (const auto& [range, d] : fx->net.delegations()) {
        registry.emplace_back(range, d.host, d.objects.size());
      }
      const auto& s = rb.stats();
      return std::make_tuple(answer_trace, registry, s.sweeps,
                             s.migrations_started, s.migrations_completed,
                             s.migrations_cancelled, s.objects_migrated,
                             s.rehosted, s.cutover_messages, s.bytes_on_wire);
    };
    EXPECT_EQ(run(), run()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace armada::core
