#!/usr/bin/env python3
"""Validate a bench trace export directory against tools/trace_schema.json.

Usage: check_trace.py <trace_dir>

The directory is what the benches write when ARMADA_TRACE_DIR is set:
  congestion_trace.json        Chrome trace-event export (chrome://tracing)
  congestion_spans.jsonl       compact per-span records, one JSON per line
  congestion_slow.jsonl        delay-bound auditor verdicts
  congestion_slow.log          human-readable span-tree dumps
  congestion_timeseries.jsonl  per-class Registry samples per load tier
  load_balance_timeseries.jsonl  (optional) service-load Registry samples

Checks are structural (field presence, types, class vocabulary) plus the
invariants any well-formed export must satisfy: unique span ids, parents
recorded before children within a trace, monotone instants on every span,
Chrome events sorted by ts, per-series monotone sample times, and at least
one attributed delay-bound violation from the auditor.  Exits nonzero with
one line per problem on any failure.  Stdlib only.
"""

import json
import numbers
import os
import sys


class Checker:
    def __init__(self):
        self.errors = []

    def error(self, where, msg):
        self.errors.append(f"{where}: {msg}")

    def require(self, cond, where, msg):
        if not cond:
            self.error(where, msg)
        return cond


def load_jsonl(path, check, where):
    records = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                check.error(f"{where}:{lineno}", f"bad JSON: {e}")
    return records


def require_fields(check, record, fields, where):
    ok = True
    for field in fields:
        if field not in record:
            check.error(where, f"missing field {field!r}")
            ok = False
    return ok


def check_chrome_trace(check, path, schema):
    spec = schema["chrome_trace"]
    try:
        trace = json.load(open(path, encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        check.error(path, f"unreadable: {e}")
        return
    where = os.path.basename(path)
    for key in spec["required_top_level"]:
        check.require(key in trace, where, f"missing top-level {key!r}")
    if trace.get("schema") != schema["schema_version"]:
        check.error(where, f"schema {trace.get('schema')!r} != "
                           f"{schema['schema_version']}")
    events = trace.get("traceEvents", [])
    check.require(isinstance(events, list) and events, where,
                  "traceEvents missing or empty")
    last_ts = float("-inf")
    seen_spans = set()
    for i, ev in enumerate(events):
        ew = f"{where}#traceEvents[{i}]"
        if not require_fields(check, ev, spec["event_required"], ew):
            continue
        if ev["ph"] != spec["event_phase"]:
            check.error(ew, f"ph {ev['ph']!r} != {spec['event_phase']!r}")
        if ev["cat"] not in spec["event_categories"]:
            check.error(ew, f"unknown category {ev['cat']!r}")
        if not isinstance(ev["ts"], numbers.Real) or ev["ts"] < last_ts:
            check.error(ew, f"ts {ev['ts']!r} not sorted (prev {last_ts})")
        last_ts = max(last_ts, ev["ts"])
        if not isinstance(ev["dur"], numbers.Real) or ev["dur"] < 0:
            check.error(ew, f"negative dur {ev['dur']!r}")
        args = ev["args"]
        if not require_fields(check, args, spec["args_required"], ew):
            continue
        span = args["span"]
        if span in seen_spans:
            check.error(ew, f"duplicate span id {span}")
        if args["parent"] != 0 and args["parent"] not in seen_spans:
            check.error(ew, f"span {span} parent {args['parent']} "
                            "not recorded before it")
        seen_spans.add(span)


def check_spans(check, path, schema):
    spec = schema["spans_jsonl"]
    classes = schema["traffic_classes"]
    where = os.path.basename(path)
    records = load_jsonl(path, check, where)
    check.require(records, where, "no span records")
    span_trace = {}  # id -> trace, insertion-ordered
    roots = 0
    for lineno, r in enumerate(records, 1):
        rw = f"{where}:{lineno}"
        if not require_fields(check, r, spec["required"], rw):
            continue
        if r["schema"] != schema["schema_version"]:
            check.error(rw, f"schema {r['schema']!r}")
        if r["kind"] not in spec["kinds"]:
            check.error(rw, f"unknown kind {r['kind']!r}")
        if r["cls"] not in classes:
            check.error(rw, f"unknown class {r['cls']!r}")
        if not r["send_at"] <= r["enqueue_at"] <= r["deliver_at"]:
            check.error(rw, f"non-monotone instants {r['send_at']} / "
                            f"{r['enqueue_at']} / {r['deliver_at']}")
        if r["queue_delay"] < 0:
            check.error(rw, f"negative queue_delay {r['queue_delay']}")
        if r["id"] in span_trace:
            check.error(rw, f"duplicate span id {r['id']}")
        if r["kind"] == "trace":
            roots += 1
            require_fields(check, r, spec["root_extra_required"], rw)
            if r["parent"] != 0:
                check.error(rw, f"root span {r['id']} has parent "
                                f"{r['parent']}")
        elif r["parent"] not in span_trace:
            check.error(rw, f"span {r['id']} parent {r['parent']} "
                            "not recorded before it")
        elif span_trace[r["parent"]] != r["trace"]:
            check.error(rw, f"span {r['id']} crosses traces "
                            f"({span_trace[r['parent']]} vs {r['trace']})")
        span_trace[r["id"]] = r["trace"]
    check.require(roots > 0, where, "no trace roots recorded")
    return span_trace


def check_slow_queries(check, jsonl_path, log_path, schema, span_trace):
    spec = schema["slow_queries_jsonl"]
    where = os.path.basename(jsonl_path)
    records = load_jsonl(jsonl_path, check, where)
    check.require(records, where,
                  "auditor recorded no delay-bound violations "
                  "(top load tier must produce at least one)")
    for lineno, r in enumerate(records, 1):
        rw = f"{where}:{lineno}"
        if not require_fields(check, r, spec["required"], rw):
            continue
        if r["kind"] != spec["kind"]:
            check.error(rw, f"unknown kind {r['kind']!r}")
        if not r["latency"] > r["bound"]:
            check.error(rw, f"latency {r['latency']} does not exceed "
                            f"bound {r['bound']}")
        if r["violating_cls"] not in schema["traffic_classes"]:
            check.error(rw, f"unknown class {r['violating_cls']!r}")
        if span_trace and r["violating_span"] not in span_trace:
            check.error(rw, f"violating_span {r['violating_span']} "
                            "not in the span export")
    log_where = os.path.basename(log_path)
    try:
        log = open(log_path, encoding="utf-8").read()
    except OSError as e:
        check.error(log_where, f"unreadable: {e}")
        return
    check.require("VIOLATES BOUND" in log, log_where,
                  "no attributed violation in the span-tree dump")
    check.require(log.count("slow query:") == len(records), log_where,
                  f"{log.count('slow query:')} dumps for "
                  f"{len(records)} auditor records")


def check_timeseries(check, path, schema, required_values):
    spec = schema["timeseries_jsonl"]
    where = os.path.basename(path)
    records = load_jsonl(path, check, where)
    check.require(records, where, "no samples")
    last_t = {}
    series_values = {}
    for lineno, r in enumerate(records, 1):
        rw = f"{where}:{lineno}"
        if not require_fields(check, r, spec["required"], rw):
            continue
        if r["kind"] != spec["kind"]:
            check.error(rw, f"unknown kind {r['kind']!r}")
        s = r["series"]
        if not isinstance(s, str) or not s:
            check.error(rw, f"bad series {s!r}")
            continue
        if r["t"] < last_t.get(s, float("-inf")):
            check.error(rw, f"series {s!r} time {r['t']} not monotone")
        last_t[s] = r["t"]
        values = r["values"]
        if not isinstance(values, dict):
            check.error(rw, f"values is {type(values).__name__}, not object")
            continue
        for name, v in values.items():
            if not isinstance(v, numbers.Real):
                check.error(rw, f"non-numeric sample {name!r}={v!r}")
        series_values.setdefault(s, set()).update(values)
    for s, names in series_values.items():
        missing = set(required_values) - names
        if missing:
            check.error(where, f"series {s!r} missing {sorted(missing)}")
    return sorted(series_values)


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    trace_dir = argv[1]
    schema_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "trace_schema.json")
    schema = json.load(open(schema_path, encoding="utf-8"))
    check = Checker()

    required = ["congestion_trace.json", "congestion_spans.jsonl",
                "congestion_slow.jsonl", "congestion_slow.log",
                "congestion_timeseries.jsonl"]
    for name in required:
        if not os.path.exists(os.path.join(trace_dir, name)):
            check.error(name, "missing from trace dir")
    if check.errors:
        for e in check.errors:
            print(f"FAIL {e}", file=sys.stderr)
        return 1

    p = lambda name: os.path.join(trace_dir, name)
    check_chrome_trace(check, p("congestion_trace.json"), schema)
    span_trace = check_spans(check, p("congestion_spans.jsonl"), schema)
    check_slow_queries(check, p("congestion_slow.jsonl"),
                       p("congestion_slow.log"), schema, span_trace)
    series = check_timeseries(
        check, p("congestion_timeseries.jsonl"), schema,
        schema["timeseries_jsonl"]["congestion_required_values"])
    lb = p("load_balance_timeseries.jsonl")
    lb_series = []
    if os.path.exists(lb):
        lb_series = check_timeseries(check, lb, schema, [])

    if check.errors:
        for e in check.errors:
            print(f"FAIL {e}", file=sys.stderr)
        return 1
    print(f"trace export OK: {len(span_trace)} spans, "
          f"{len(series)} congestion series, "
          f"{len(lb_series)} load-balance series")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
