// FISSIONE structural properties (paper §3).
//
// Claims: average degree 4; maximum PeerID length < 2 log2 N and average
// length < log2 N; average routing delay < log2 N and maximum < 2 log2 N;
// the neighborhood invariant holds (neighbor length gap <= 1).
#include "common.h"

#include "kautz/kautz_space.h"

int main() {
  using namespace armada;
  using namespace armada::bench;

  constexpr std::uint64_t kSeed = 46;

  Table table({"N", "AvgDegree", "AvgIDLen", "MaxIDLen", "AvgRoute",
               "MaxRoute", "logN", "2logN", "NbrGap"});
  for (std::size_t full_n : {1000u, 2000u, 4000u, 8000u}) {
    const std::size_t n = scaled(full_n);
    auto net = fissione::FissioneNetwork::build(n, kSeed);
    const auto lens = net.peer_id_length_histogram();

    Rng rng(kSeed + 1);
    OnlineStats hops;
    for (int i = 0; i < scaled_queries(); ++i) {
      const auto target = kautz::random_string(rng, 2, 48);
      const auto route = net.route(net.random_peer(), target);
      hops.add(route.hops);
    }

    const double log_n = std::log2(static_cast<double>(n));
    table.add_row({Table::cell(static_cast<std::uint64_t>(n)),
                   Table::cell(net.average_degree()),
                   Table::cell(lens.mean()),
                   Table::cell(static_cast<std::int64_t>(lens.max())),
                   Table::cell(hops.mean()), Table::cell(hops.max(), 0),
                   Table::cell(log_n), Table::cell(2 * log_n),
                   Table::cell(static_cast<std::uint64_t>(
                       net.max_neighbor_length_gap()))});
  }
  print_tables("FISSIONE properties (paper §3 claims)", table);
  return 0;
}
