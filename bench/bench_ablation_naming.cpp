// Ablation 1: why order-preserving naming matters (Armada §4.1).
//
// Replacing Single_hash with a uniform hash (FISSIONE's Kautz_hash)
// scatters value-adjacent objects across the namespace: a range query then
// needs nearly every peer that stores any matching object, instead of one
// contiguous strip of peers.
//
// Ablation 2: why DCF-CAN maps values through a *Hilbert* curve.
// A Morton (Z-order) segment is spatially disconnected, so directed
// flooding restricted to intersecting zones cannot reach every destination
// from the median zone; Hilbert segments are connected by construction.
#include <set>

#include "common.h"
#include "sfc/morton.h"
#include "sfc/sfc_region.h"

namespace {

using namespace armada;
using namespace armada::bench;

// Fraction of Morton-vs-Hilbert zones reachable by in-segment flooding.
void curve_connectivity(Table& table, std::uint64_t seed) {
  can::CanNetwork net(2000, seed);
  const std::uint32_t order = 20;

  for (const auto curve : {sfc::Curve::kHilbert, sfc::Curve::kMorton}) {
    // Zone -> index ranges under the chosen curve.
    std::vector<std::vector<sfc::IndexRange>> ranges;
    ranges.reserve(net.num_nodes());
    for (can::NodeId id = 0; id < net.num_nodes(); ++id) {
      const can::Zone& z = net.zone(id);
      ranges.push_back(sfc::rect_ranges(
          curve, order,
          {z.x_num << (order - z.x_bits), z.y_num << (order - z.y_bits)},
          order - z.x_bits, order - z.y_bits));
    }
    auto intersects = [&](can::NodeId id, const sfc::IndexRange& q) {
      for (const auto& r : ranges[id]) {
        if (r.intersects(q)) {
          return true;
        }
      }
      return false;
    };

    Rng rng(seed + 1);
    const std::uint64_t total = 1ull << (2 * order);
    OnlineStats reach;
    OnlineStats zones;
    for (int trial = 0; trial < armada::bench::scaled_queries(200); ++trial) {
      const std::uint64_t len = total / 20;  // 5% of the value axis
      const std::uint64_t start = rng.next_u64(total - len);
      const sfc::IndexRange q{start, start + len};
      // All intersecting zones...
      std::vector<can::NodeId> members;
      for (can::NodeId id = 0; id < net.num_nodes(); ++id) {
        if (intersects(id, q)) {
          members.push_back(id);
        }
      }
      // ...vs the ones reachable by flooding inside the segment from the
      // median zone.
      const std::uint64_t mid = start + len / 2;
      const sfc::Cell c = curve == sfc::Curve::kHilbert
                              ? sfc::hilbert_cell(order, mid)
                              : sfc::morton_cell(order, mid);
      const double side = static_cast<double>(1ull << order);
      const can::NodeId start_zone =
          net.node_at((static_cast<double>(c.x) + 0.5) / side,
                      (static_cast<double>(c.y) + 0.5) / side);
      std::set<can::NodeId> visited{start_zone};
      std::vector<can::NodeId> queue{start_zone};
      while (!queue.empty()) {
        const can::NodeId z = queue.back();
        queue.pop_back();
        for (can::NodeId n : net.neighbors(z)) {
          if (!visited.contains(n) && intersects(n, q)) {
            visited.insert(n);
            queue.push_back(n);
          }
        }
      }
      zones.add(static_cast<double>(members.size()));
      reach.add(static_cast<double>(visited.size()) /
                static_cast<double>(members.size()));
    }
    table.add_row({curve == sfc::Curve::kHilbert ? "Hilbert" : "Morton",
                   Table::cell(zones.mean()),
                   Table::cell(100.0 * reach.mean(), 1),
                   Table::cell(100.0 * reach.min(), 1)});
  }
}

}  // namespace

int main() {
  const std::size_t kN = armada::bench::scaled(2000);
  constexpr std::uint64_t kSeed = 91;

  // --- Ablation 1: order-preserving vs uniform naming --------------------
  auto net = fissione::FissioneNetwork::build(kN, kSeed);
  auto index = core::ArmadaIndex::single(net, {kDomainLo, kDomainHi});
  Rng rng(kSeed + 1);
  std::vector<double> values;
  for (std::size_t i = 0; i < 2 * kN; ++i) {
    values.push_back(rng.next_double(kDomainLo, kDomainHi));
    index.publish(values[i]);
  }
  // The uniform-naming strawman: owner of Kautz_hash(object id).
  std::vector<fissione::PeerId> hashed_owner(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    hashed_owner[i] =
        net.owner_of(net.kautz_hash("obj/" + std::to_string(i)));
  }

  Table naming({"RangeSize", "OrderPreservingPeers", "UniformHashPeers"});
  for (double size : {10.0, 50.0, 100.0, 300.0}) {
    sim::RangeWorkload workload({kDomainLo, kDomainHi}, size, Rng(kSeed + 2));
    OnlineStats ordered;
    OnlineStats hashed;
    for (int q = 0; q < 300; ++q) {
      const auto rqy = workload.next();
      const auto r = index.range_query(net.random_peer(), rqy.lo, rqy.hi);
      ordered.add(static_cast<double>(r.stats.dest_peers));
      std::set<fissione::PeerId> owners;
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (values[i] >= rqy.lo && values[i] <= rqy.hi) {
          owners.insert(hashed_owner[i]);
        }
      }
      hashed.add(static_cast<double>(owners.size()));
    }
    naming.add_row({Table::cell(size, 0), Table::cell(ordered.mean()),
                    Table::cell(hashed.mean())});
  }
  print_tables("Ablation: peers contacted, Single_hash vs uniform hashing",
               naming);

  // --- Ablation 2: Hilbert vs Morton for DCF-CAN -------------------------
  Table curves({"Curve", "ZonesInSegment", "ReachedPct", "WorstPct"});
  curve_connectivity(curves, kSeed + 3);
  print_tables("Ablation: DCF flood coverage, Hilbert vs Morton mapping",
               curves);
  return 0;
}
