// Scale trajectory: how far the overlay machinery goes on one core.
//
// One FISSIONE network is grown through the tier sizes (10k -> 100k -> 1M
// peers at full scale) along a single join trajectory — each tier is a
// snapshot of the same growth path, built with the non-routing join
// placement (FissioneNetwork::grow_snapshot, bit-identical structure to
// build()). Per tier, three throughput measurements:
//
//   - construction: incremental grow time, joins/second;
//   - routing: exact-match shift routes from random issuers to uniform
//     ObjectIDs (workload RNG separate from the network's stream, so the
//     trajectory stays the canonical build-path overlay);
//   - event dispatch: calendar-queue throughput under a self-rescheduling
//     event population (the simulation kernel's hot loop, network-free).
//
// The committed BENCH_scale.json at the repo root is this bench's
// ARMADA_BENCH_JSON output at full scale; CI re-runs the bench at smoke
// scale and validates both feeds (see "Scaling & performance" in README.md).
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common.h"
#include "kautz/kautz_space.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace armada::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Tier {
  const char* name;  ///< stable series key, independent of ARMADA_BENCH_SCALE
  std::size_t full_peers;
};

constexpr Tier kTiers[] = {
    {"tier10k", 10'000},
    {"tier100k", 100'000},
    {"tier1m", 1'000'000},
};

/// Routing throughput at the current size: `routes` exact-match walks from
/// random issuers to uniform random ObjectIDs. The workload draws from its
/// own RNG so the network's join stream is untouched between tiers.
struct RouteSample {
  double seconds = 0.0;
  double hops_mean = 0.0;
};

RouteSample sample_routes(const fissione::FissioneNetwork& net, Rng& rng,
                          int routes) {
  const auto& alive = net.alive_peers();
  const std::uint8_t base = net.config().base;
  const std::size_t len = net.config().object_id_length;
  // Draw the whole workload first so the timed section is routing only.
  std::vector<std::pair<fissione::PeerId, kautz::KautzString>> work;
  work.reserve(static_cast<std::size_t>(routes));
  for (int i = 0; i < routes; ++i) {
    work.emplace_back(alive[rng.next_index(alive.size())],
                      kautz::random_string(rng, base, len));
  }
  std::uint64_t hops = 0;
  const Clock::time_point t0 = Clock::now();
  for (const auto& [issuer, oid] : work) {
    hops += net.route(issuer, oid).hops;
  }
  RouteSample s;
  s.seconds = seconds_since(t0);
  s.hops_mean = static_cast<double>(hops) / static_cast<double>(routes);
  return s;
}

/// Calendar-queue dispatch throughput: a fixed population of
/// self-rescheduling events with mixed delays (uniform jitter plus an
/// equal-time burst component) dispatched `target` times.
double sample_events_per_second(std::uint64_t target, std::uint64_t seed) {
  sim::Simulator sim;
  Rng rng(seed);
  constexpr int kPopulation = 1024;
  std::uint64_t remaining = target;
  // One shared tick closure: reschedules itself until the budget is spent.
  struct Tick {
    sim::Simulator* sim;
    Rng* rng;
    std::uint64_t* remaining;
    void operator()() const {
      if (*remaining == 0) {
        return;
      }
      --*remaining;
      // 1-in-8 events land on the current instant (equal-time batch work,
      // the FRT fan-out shape); the rest spread over a unit window.
      const double delay =
          (*remaining % 8 == 0) ? 0.0 : rng->next_double(0.0, 1.0);
      sim->schedule_after(delay, Tick{sim, rng, remaining});
    }
  };
  for (int i = 0; i < kPopulation; ++i) {
    sim.schedule_after(rng.next_double(0.0, 1.0),
                       Tick{&sim, &rng, &remaining});
  }
  const Clock::time_point t0 = Clock::now();
  sim.run();
  const double secs = seconds_since(t0);
  return static_cast<double>(sim.events_processed()) / secs;
}

int run() {
  constexpr std::uint64_t kSeed = 0x5ca1eull;
  fissione::FissioneNetwork net(fissione::FissioneNetwork::Config{}, kSeed);
  Rng workload_rng(kSeed ^ 0x9e3779b97f4a7c15ull);

  Table table({"tier", "peers", "grow_s", "joins/s", "routes/s", "hops",
               "max_id_len", "events/s"});
  double build_total = 0.0;
  for (const Tier& tier : kTiers) {
    const std::size_t n = scaled(tier.full_peers, 64);
    const std::size_t before = net.num_peers();
    if (n <= before) {
      continue;  // degenerate scale collapsed two tiers onto one size
    }
    const Clock::time_point t0 = Clock::now();
    net.grow_snapshot(n);
    const double grow_seconds = seconds_since(t0);
    build_total += grow_seconds;
    const double joins_per_second =
        static_cast<double>(n - before) / grow_seconds;

    const int routes = scaled_queries(2000);
    const RouteSample rs = sample_routes(net, workload_rng, routes);
    const double routes_per_second =
        static_cast<double>(routes) / rs.seconds;

    std::size_t max_id_len = 0;
    for (fissione::PeerId p : net.alive_peers()) {
      max_id_len = std::max(max_id_len, net.peer(p).peer_id.length());
    }

    const auto event_target =
        static_cast<std::uint64_t>(scaled(2'000'000, 50'000));
    const double events_per_second =
        sample_events_per_second(event_target, kSeed ^ n);

    table.add_row({tier.name, Table::cell(static_cast<std::uint64_t>(n)),
                   Table::cell(grow_seconds, 3),
                   Table::cell(joins_per_second, 0),
                   Table::cell(routes_per_second, 0),
                   Table::cell(rs.hops_mean, 2),
                   Table::cell(static_cast<std::uint64_t>(max_id_len)),
                   Table::cell(events_per_second, 0)});

    JsonSink::instance().record(
        "scale", std::string("fissione/") + tier.name,
        {{"peers", static_cast<double>(n)},
         {"routes", static_cast<double>(routes)},
         {"events", static_cast<double>(event_target)}},
        {{"build_seconds", grow_seconds},
         {"build_seconds_total", build_total},
         {"joins_per_second", joins_per_second},
         {"routes_per_second", routes_per_second},
         {"route_hops_mean", rs.hops_mean},
         {"max_peer_id_len", static_cast<double>(max_id_len)},
         {"events_per_second", events_per_second}});
  }
  print_tables("Scale trajectory (one growth path, snapshot construction)",
               table);
  return 0;
}

}  // namespace
}  // namespace armada::bench

int main() { return armada::bench::run(); }
