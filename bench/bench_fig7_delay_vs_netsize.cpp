// Figure 7: query delay at different network sizes (range size = 20).
//
// Paper claims: PIRA's delay stays below log2 N at every N; DCF-CAN's delay
// grows ~ sqrt(N), so PIRA's advantage becomes more remarkable as the
// network grows.
#include "common.h"

int main() {
  using namespace armada;
  using namespace armada::bench;

  constexpr double kRange = 20.0;
  constexpr std::uint64_t kSeed = 44;

  Table table({"NetworkSize", "PIRA", "PIRA_max", "DCF-CAN", "logN"});
  for (std::size_t full_n :
       {1000u, 2000u, 3000u, 4000u, 5000u, 6000u, 7000u, 8000u}) {
    const std::size_t n = scaled(full_n);
    ArmadaSetup armada_setup(n, 2 * n, kSeed);
    DcfSetup dcf_setup(n, 2 * n, kSeed);
    const auto pira = armada_setup.run(kRange, kSeed + 1);
    const auto dcf = dcf_setup.run(kRange, kSeed + 1);
    table.add_row({Table::cell(static_cast<std::uint64_t>(n)),
                   Table::cell(pira.delay().mean()),
                   Table::cell(pira.delay().max(), 0),
                   Table::cell(dcf.delay().mean()),
                   Table::cell(std::log2(static_cast<double>(n)))});
    const std::vector<std::pair<std::string, double>> params = {
        {"n", static_cast<double>(n)}, {"range_size", kRange}};
    json_record("fig7_delay_vs_netsize", "PIRA", params, pira);
    json_record("fig7_delay_vs_netsize", "DCF-CAN", params, dcf);
  }
  print_tables("Figure 7: query delay at different network size (range=20)",
               table);
  return 0;
}
