// Latency models: Armada (PIRA) vs the DCF-CAN baseline under every
// transport latency model, at several network sizes (range size = 50).
//
// The paper's figures charge one time unit per hop (the ConstantHop row,
// which reproduces them exactly). The other rows replay the same workload
// with heterogeneous link latencies: uniform jitter, a transit-stub
// LAN/WAN hierarchy, and a King-style long-tail RTT matrix. Mean latency
// tracks the hop-count story, but the p95/p99 columns expose the tail that
// hop counting hides — the motivation for proximity-aware routing.
#include <functional>
#include <memory>

#include "common.h"
#include "net/latency_model.h"

int main() {
  using namespace armada;
  using namespace armada::bench;

  constexpr double kRange = 50.0;
  constexpr std::uint64_t kSeed = 47;

  // Unlike ArmadaSetup/DcfSetup::run (which draw issuers from the network's
  // stateful RNG), these runners take issuers from their own seeded stream,
  // so every model row replays the *identical* (query, issuer) workload and
  // differences between rows come from link pricing alone. PIRA's hop-count
  // columns are therefore identical across models; DCF's hop depth can still
  // shift, because its flood tree follows first arrivals (see the README).
  const auto run_pira = [&](ArmadaSetup& s, std::uint64_t seed) {
    sim::MetricSet m(std::log2(static_cast<double>(s.net().num_peers())));
    sim::RangeWorkload workload({kDomainLo, kDomainHi}, kRange, Rng(seed));
    Rng issuers(seed ^ 0xfeedu);
    const auto& peers = s.net().alive_peers();
    for (int q = 0; q < scaled_queries(); ++q) {
      const auto rq = workload.next();
      const auto issuer = peers[issuers.next_index(peers.size())];
      m.add(s.index().range_query(issuer, rq.lo, rq.hi).stats);
    }
    return m;
  };
  const auto run_dcf = [&](DcfSetup& s, std::uint64_t seed) {
    sim::MetricSet m(std::log2(static_cast<double>(s.net().num_nodes())));
    sim::RangeWorkload workload({kDomainLo, kDomainHi}, kRange, Rng(seed));
    Rng issuers(seed ^ 0xfeedu);
    for (int q = 0; q < scaled_queries(); ++q) {
      const auto rq = workload.next();
      const auto issuer =
          static_cast<can::NodeId>(issuers.next_index(s.net().num_nodes()));
      m.add(s.dcf().query(issuer, rq.lo, rq.hi).stats);
    }
    return m;
  };

  Table table({"Model", "N", "PIRA_lat", "PIRA_p95", "PIRA_p99", "DCF_lat",
               "DCF_p95", "DCF_p99", "PIRA_hops", "DCF_hops"});
  for (std::size_t full_n : {1000u, 2000u, 4000u}) {
    const std::size_t n = scaled(full_n);
    ArmadaSetup armada_setup(n, 2 * n, kSeed);
    DcfSetup dcf_setup(n, 2 * n, kSeed);
    for (const auto& model : bench_latency_models(kSeed)) {
      // One shared model instance: both overlays live in the same latency
      // space, so the comparison isolates the overlay structure.
      armada_setup.net().set_latency_model(model);
      dcf_setup.net().set_latency_model(model);
      const auto pira = run_pira(armada_setup, kSeed + 1);
      const auto dcf = run_dcf(dcf_setup, kSeed + 1);
      table.add_row({model->name(), Table::cell(static_cast<std::uint64_t>(n)),
                     Table::cell(pira.latency().mean()),
                     Table::cell(pira.latency_percentiles().p95()),
                     Table::cell(pira.latency_percentiles().p99()),
                     Table::cell(dcf.latency().mean()),
                     Table::cell(dcf.latency_percentiles().p95()),
                     Table::cell(dcf.latency_percentiles().p99()),
                     Table::cell(pira.delay().mean()),
                     Table::cell(dcf.delay().mean())});
      const std::vector<std::pair<std::string, double>> params = {
          {"n", static_cast<double>(n)}, {"range_size", kRange}};
      json_record("latency_models", "PIRA/" + model->name(), params,
                  pira);
      json_record("latency_models", "DCF-CAN/" + model->name(),
                  params, dcf);
    }
  }
  print_tables("Latency models: Armada vs DCF-CAN (range=50)", table);

  // --- proximity-aware next-hop tie-breaking ------------------------------
  // FISSIONE exact-match routing, identical (issuer, target) workload on
  // two identically seeded overlays: one canonical, one preferring the
  // cheapest link among structurally equivalent next hops. The win column
  // is the mean latency saved; hop counts may also drop (the tie-break
  // recomputes alignment from scratch, occasionally finding a shortcut).
  Table prox({"Model", "N", "Lat_off", "Lat_on", "Win%", "Hops_off",
              "Hops_on"});
  for (std::size_t full_n : {1000u, 4000u}) {
    const std::size_t n = scaled(full_n);
    auto base = fissione::FissioneNetwork::build(n, kSeed);
    auto tuned = fissione::FissioneNetwork::build(n, kSeed);
    tuned.set_proximity_next_hop(true);
    for (const auto& model : bench_latency_models(kSeed)) {
      base.set_latency_model(model);
      tuned.set_latency_model(model);
      sim::MetricSet off(std::log2(static_cast<double>(n)));
      sim::MetricSet on(std::log2(static_cast<double>(n)));
      Rng issuers(kSeed ^ 0xfeedu);
      const auto& peers = base.alive_peers();
      for (int q = 0; q < scaled_queries(); ++q) {
        const auto issuer = peers[issuers.next_index(peers.size())];
        const auto target = base.kautz_hash("prox/" + std::to_string(q));
        off.add(base.route(issuer, target).stats());
        on.add(tuned.route(issuer, target).stats());
      }
      const double win =
          off.latency().mean_or(0.0) > 0.0
              ? 100.0 * (1.0 - on.latency().mean() / off.latency().mean())
              : 0.0;
      prox.add_row({model->name(), Table::cell(static_cast<std::uint64_t>(n)),
                    Table::cell(off.latency().mean()),
                    Table::cell(on.latency().mean()), Table::cell(win),
                    Table::cell(off.delay().mean()),
                    Table::cell(on.delay().mean())});
      const std::vector<std::pair<std::string, double>> params = {
          {"n", static_cast<double>(n)}};
      json_record("latency_models", "route-proximity-off/" + model->name(), params, off);
      json_record("latency_models", "route-proximity-on/" + model->name(), params, on);
    }
  }
  print_tables("Proximity-aware FISSIONE next-hop tie-breaking "
               "(exact-match routing)", prox);
  return 0;
}
