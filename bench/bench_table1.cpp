// Table 1: comparison of general range query schemes (N = 2000).
//
// The paper's table lists, per scheme: underlying DHT, DHT degree,
// single/multi-attribute support, average delay, and whether the delay is
// bounded. We reproduce it empirically on a shared workload: attribute
// interval [0,1000], 1000 random queries from random peers.
//
// Expected shape (paper): Armada/PIRA's average delay < log2 N ~ 11 and is
// the only delay-bounded scheme; Skip Graph and SCRAP pay O(logN + n);
// DCF-CAN pays > O(sqrt N); PHT on a constant-degree DHT pays O(b * logN);
// Squid pays O(h * logN).
#include <cmath>

#include "common.h"
#include "kautz/kautz_space.h"
#include "rq/pht.h"
#include "rq/scrap.h"
#include "rq/skipgraph_rq.h"
#include "rq/squid.h"
#include "skipgraph/skipgraph.h"
#include "chord/chord.h"

namespace {

using namespace armada;
using namespace armada::bench;

const std::size_t kN = scaled(2000);
constexpr std::uint64_t kSeed = 77;

std::vector<double> random_keys(std::size_t n, double lo, double hi,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> keys(n);
  for (auto& k : keys) {
    k = rng.next_double(lo, hi);
  }
  return keys;
}

struct Row {
  std::string scheme;
  std::string dht;
  std::string degree;
  std::string multi;
  sim::MetricSet metrics;
  std::string bounded;
};

void add_row(Table& t, const Row& r) {
  t.add_row({r.scheme, r.dht, r.degree, r.multi,
             Table::cell(r.metrics.delay().mean()),
             Table::cell(r.metrics.delay().max(), 0),
             Table::cell(r.metrics.messages().mean()),
             Table::cell(r.metrics.dest_peers().mean()), r.bounded});
}

}  // namespace

int main() {
  const double log_n = std::log2(static_cast<double>(kN));
  const double range_size = 100.0;  // 10% selectivity, same for all schemes
  std::printf("N = %zu peers, logN = %.2f, range size = %.0f of [0,1000], "
              "%d queries\n\n",
              kN, log_n, range_size, scaled_queries());

  Table table({"Scheme", "DHT", "Degree", "Attrs", "AvgDelay", "MaxDelay",
               "AvgMsgs", "Destpeers", "DelayBounded"});

  // --- Armada / PIRA over FISSIONE --------------------------------------
  {
    ArmadaSetup setup(kN, 2 * kN, kSeed);
    Row row{"Armada(PIRA)", "FissionE",
            Table::cell(setup.net().average_degree()), "single+multi",
            setup.run(range_size, kSeed + 1), "yes"};
    add_row(table, row);
  }

  // --- DCF-CAN -----------------------------------------------------------
  {
    DcfSetup setup(kN, 2 * kN, kSeed);
    Row row{"DCF-CAN", "CAN(d=2)", Table::cell(setup.net().average_degree()),
            "single", setup.run(range_size, kSeed + 1), "no"};
    add_row(table, row);
  }

  // --- Native Skip Graph ranges ------------------------------------------
  {
    skipgraph::SkipGraph graph(random_keys(kN, kDomainLo, kDomainHi, kSeed),
                               kSeed + 2);
    rq::SkipGraphRangeIndex index(graph, {kDomainLo, kDomainHi});
    Rng obj(kSeed ^ 0x9e3779b97f4a7c15ull);
    for (std::size_t i = 0; i < 2 * kN; ++i) {
      index.publish(obj.next_double(kDomainLo, kDomainHi));
    }
    sim::MetricSet metrics(log_n);
    sim::RangeWorkload workload({kDomainLo, kDomainHi}, range_size,
                                Rng(kSeed + 1));
    Rng pick(kSeed + 3);
    for (int q = 0; q < scaled_queries(); ++q) {
      const auto rqy = workload.next();
      metrics.add(index
                      .query(static_cast<skipgraph::NodeId>(
                                 pick.next_index(graph.num_nodes())),
                             rqy.lo, rqy.hi)
                      .stats);
    }
    Row row{"SkipGraph", "(native)", Table::cell(graph.average_degree()),
            "single", metrics, "no (logN+n)"};
    add_row(table, row);
  }

  // --- PHT over FISSIONE (the constant-degree configuration of Table 1) --
  {
    auto net = fissione::FissioneNetwork::build(kN, kSeed);
    fissione::PeerId client = 0;
    rq::Pht pht(rq::Pht::Config{.key_bits = 16, .leaf_capacity = 8,
                                .domain = {kDomainLo, kDomainHi}},
                [&net, &client](const std::string& label) {
                  return net.route(client, net.kautz_hash("pht/" + label)).hops;
                });
    Rng obj(kSeed ^ 0x9e3779b97f4a7c15ull);
    for (std::size_t i = 0; i < 2 * kN; ++i) {
      pht.publish(obj.next_double(kDomainLo, kDomainHi));
    }
    sim::MetricSet metrics(log_n);
    sim::RangeWorkload workload({kDomainLo, kDomainHi}, range_size,
                                Rng(kSeed + 1));
    for (int q = 0; q < scaled_queries(); ++q) {
      const auto rqy = workload.next();
      client = net.random_peer();
      metrics.add(pht.query(rqy.lo, rqy.hi).stats);
    }
    Row row{"PHT", "FissionE", Table::cell(net.average_degree()),
            "single+multi", metrics, "no (b*logN)"};
    add_row(table, row);
  }

  // --- PHT over Chord (for contrast: O(logN)-degree DHT underneath) ------
  {
    chord::ChordNetwork net(kN, kSeed);
    chord::NodeId client = 0;
    rq::Pht pht(rq::Pht::Config{.key_bits = 16, .leaf_capacity = 8,
                                .domain = {kDomainLo, kDomainHi}},
                [&net, &client](const std::string& label) {
                  std::uint64_t h = 1469598103934665603ull;
                  for (char c : label) {
                    h ^= static_cast<unsigned char>(c);
                    h *= 1099511628211ull;
                  }
                  return net.route(client, h).hops;
                });
    Rng obj(kSeed ^ 0x9e3779b97f4a7c15ull);
    for (std::size_t i = 0; i < 2 * kN; ++i) {
      pht.publish(obj.next_double(kDomainLo, kDomainHi));
    }
    sim::MetricSet metrics(log_n);
    sim::RangeWorkload workload({kDomainLo, kDomainHi}, range_size,
                                Rng(kSeed + 1));
    for (int q = 0; q < scaled_queries(); ++q) {
      const auto rqy = workload.next();
      client = net.random_node();
      metrics.add(pht.query(rqy.lo, rqy.hi).stats);
    }
    Row row{"PHT", "Chord", Table::cell(net.average_degree()),
            "single+multi", metrics, "no (b*logN)"};
    add_row(table, row);
  }

  print_tables("Table 1 (single-attribute schemes, range=100)", table);

  // --- Multi-attribute schemes -------------------------------------------
  Table multi({"Scheme", "DHT", "Degree", "Attrs", "AvgDelay", "MaxDelay",
               "AvgMsgs", "Destpeers", "DelayBounded"});
  const std::vector<double> box_side{316.0, 316.0};  // ~10% selectivity

  {
    auto net = fissione::FissioneNetwork::build(kN, kSeed);
    kautz::Box domain{{kDomainLo, kDomainHi}, {kDomainLo, kDomainHi}};
    auto index = core::ArmadaIndex::multi(net, domain);
    Rng obj(kSeed ^ 0x5bd1e995u);
    sim::UniformPoints points(domain, obj.split());
    for (std::size_t i = 0; i < 2 * kN; ++i) {
      index.publish(points.next());
    }
    sim::MetricSet metrics(log_n);
    sim::BoxWorkload workload(domain, box_side, Rng(kSeed + 1));
    for (int q = 0; q < scaled_queries(); ++q) {
      metrics.add(index.box_query(net.random_peer(), workload.next()).stats);
    }
    Row row{"Armada(MIRA)", "FissionE", Table::cell(net.average_degree()),
            "multi(2)", metrics, "yes"};
    add_row(multi, row);
  }

  {
    chord::ChordNetwork net(kN, kSeed);
    rq::Squid squid(net, rq::Squid::Config{});
    Rng obj(kSeed ^ 0x5bd1e995u);
    kautz::Box domain{{kDomainLo, kDomainHi}, {kDomainLo, kDomainHi}};
    sim::UniformPoints points(domain, obj.split());
    for (std::size_t i = 0; i < 2 * kN; ++i) {
      squid.publish(points.next());
    }
    sim::MetricSet metrics(log_n);
    sim::BoxWorkload workload(domain, box_side, Rng(kSeed + 1));
    for (int q = 0; q < scaled_queries(); ++q) {
      metrics.add(squid.query(net.random_node(), workload.next()).stats);
    }
    Row row{"Squid", "Chord", Table::cell(net.average_degree()), "multi(2)",
            metrics, "no (h*logN)"};
    add_row(multi, row);
  }

  {
    const std::uint32_t order = 16;
    skipgraph::SkipGraph graph(
        random_keys(kN, 0.0, std::exp2(2.0 * order) - 1.0, kSeed), kSeed + 2);
    rq::Scrap scrap(graph, rq::Scrap::Config{.order = order});
    Rng obj(kSeed ^ 0x5bd1e995u);
    kautz::Box domain{{kDomainLo, kDomainHi}, {kDomainLo, kDomainHi}};
    sim::UniformPoints points(domain, obj.split());
    for (std::size_t i = 0; i < 2 * kN; ++i) {
      scrap.publish(points.next());
    }
    sim::MetricSet metrics(log_n);
    sim::BoxWorkload workload(domain, box_side, Rng(kSeed + 1));
    Rng pick(kSeed + 3);
    for (int q = 0; q < scaled_queries(); ++q) {
      metrics.add(scrap
                      .query(static_cast<skipgraph::NodeId>(
                                 pick.next_index(graph.num_nodes())),
                             workload.next())
                      .stats);
    }
    Row row{"SCRAP", "SkipGraph", Table::cell(graph.average_degree()),
            "multi(2)", metrics, "no (logN+n)"};
    add_row(multi, row);
  }

  print_tables("Table 1 (multi-attribute schemes, box ~10% selectivity)",
               multi);
  return 0;
}
