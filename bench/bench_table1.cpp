// Table 1: comparison of general range query schemes (N = 2000) — extended
// to the full cross-scheme delay/latency comparison under every transport
// latency model.
//
// The paper's table lists, per scheme: underlying DHT, DHT degree,
// single/multi-attribute support, average delay, and whether the delay is
// bounded. We reproduce it empirically on a shared workload (attribute
// interval [0,1000], random queries from random peers) and then replay the
// *identical* workload under each latency model: every scheme routes its
// hops through its overlay's net::Transport, so hop-count delay columns are
// model-independent while latency re-prices per link. All overlays share
// one model instance per row, so the comparison isolates overlay structure.
//
// Expected shape (paper): Armada/PIRA's average delay < log2 N ~ 11 and is
// the only delay-bounded scheme; Skip Graph and SCRAP pay O(logN + n);
// DCF-CAN pays > O(sqrt N); PHT on a constant-degree DHT pays O(b * logN);
// Squid pays O(h * logN).
//
// Under ConstantHop every scheme's latency must equal its hop-count delay
// bitwise — audited per query (ARMADA_CHECK), so `ctest -L benchsmoke`
// fails loudly if any engine's transport pricing drifts from its hop count.
#include <cmath>
#include <functional>
#include <memory>

#include "chord/chord.h"
#include "common.h"
#include "kautz/kautz_space.h"
#include "rq/pht.h"
#include "rq/scrap.h"
#include "rq/skipgraph_rq.h"
#include "rq/squid.h"
#include "skipgraph/skipgraph.h"
#include "util/check.h"
#include "util/hash.h"

namespace {

using namespace armada;
using namespace armada::bench;

const std::size_t kN = scaled(2000);
constexpr std::uint64_t kSeed = 77;
constexpr double kRangeSize = 100.0;               // 10% selectivity
const std::vector<double> kBoxSide{316.0, 316.0};  // ~10% selectivity in 2-d

std::vector<double> random_keys(std::size_t n, double lo, double hi,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> keys(n);
  for (auto& k : keys) {
    k = rng.next_double(lo, hi);
  }
  return keys;
}

/// Replay the fixed per-scheme workload: `one()` runs one query and returns
/// its stats. `audit_constant` additionally checks the ConstantHop
/// invariant latency == delay bitwise on every query.
sim::MetricSet run_queries(bool audit_constant,
                           const std::function<sim::QueryStats()>& one) {
  sim::MetricSet metrics(std::log2(static_cast<double>(kN)));
  for (int q = 0; q < scaled_queries(); ++q) {
    const sim::QueryStats stats = one();
    if (audit_constant) {
      ARMADA_CHECK_MSG(stats.latency == stats.delay,
                       "ConstantHop latency != hop-count delay");
    }
    metrics.add(stats);
  }
  return metrics;
}

/// One comparison row: a scheme bound to its overlay, exposing the shared
/// seam operations the sweep needs — swap the latency model, replay the
/// fixed workload, report a MetricSet.
struct Scheme {
  std::string name;
  std::string dht;
  std::string degree;
  std::string attrs;
  std::string bounded;
  std::function<void(std::shared_ptr<const net::LatencyModel>)> set_model;
  std::function<sim::MetricSet(bool audit_constant)> run;
};

}  // namespace

int main() {
  const double log_n = std::log2(static_cast<double>(kN));
  std::printf(
      "N = %zu peers, logN = %.2f, range size = %.0f of [0,1000], "
      "box side = %.0f, %d queries per scheme and model\n\n",
      kN, log_n, kRangeSize, kBoxSide[0], scaled_queries());

  const kautz::Box domain{{kDomainLo, kDomainHi}, {kDomainLo, kDomainHi}};
  std::vector<Scheme> schemes;

  // --- Armada / PIRA over FISSIONE ----------------------------------------
  auto pira = std::make_shared<ArmadaSetup>(kN, 2 * kN, kSeed);
  schemes.push_back(Scheme{
      "Armada(PIRA)", "FissionE", Table::cell(pira->net().average_degree()),
      "single+multi", "yes",
      [pira](std::shared_ptr<const net::LatencyModel> m) {
        pira->net().set_latency_model(std::move(m));
      },
      [pira](bool audit) {
        sim::RangeWorkload w({kDomainLo, kDomainHi}, kRangeSize,
                             Rng(kSeed + 1));
        Rng issuers(kSeed ^ 0xfeedu);
        const auto& peers = pira->net().alive_peers();
        return run_queries(audit, [&] {
          const auto rq = w.next();
          const auto issuer = peers[issuers.next_index(peers.size())];
          return pira->index().range_query(issuer, rq.lo, rq.hi).stats;
        });
      }});

  // --- DCF-CAN -------------------------------------------------------------
  auto dcf = std::make_shared<DcfSetup>(kN, 2 * kN, kSeed);
  schemes.push_back(Scheme{
      "DCF-CAN", "CAN(d=2)", Table::cell(dcf->net().average_degree()),
      "single", "no",
      [dcf](std::shared_ptr<const net::LatencyModel> m) {
        dcf->net().set_latency_model(std::move(m));
      },
      [dcf](bool audit) {
        sim::RangeWorkload w({kDomainLo, kDomainHi}, kRangeSize,
                             Rng(kSeed + 1));
        Rng issuers(kSeed ^ 0xfeedu);
        return run_queries(audit, [&] {
          const auto rq = w.next();
          const auto issuer = static_cast<can::NodeId>(
              issuers.next_index(dcf->net().num_nodes()));
          return dcf->dcf().query(issuer, rq.lo, rq.hi).stats;
        });
      }});

  // --- native Skip Graph ranges -------------------------------------------
  struct SkipState {
    skipgraph::SkipGraph graph;
    rq::SkipGraphRangeIndex index;
    SkipState(std::size_t n, std::uint64_t seed)
        : graph(random_keys(n, kDomainLo, kDomainHi, seed), seed + 2),
          index(graph, {kDomainLo, kDomainHi}) {}
  };
  auto skip = std::make_shared<SkipState>(kN, kSeed);
  {
    Rng obj(kSeed ^ 0x9e3779b97f4a7c15ull);
    for (std::size_t i = 0; i < 2 * kN; ++i) {
      skip->index.publish(obj.next_double(kDomainLo, kDomainHi));
    }
  }
  schemes.push_back(Scheme{
      "SkipGraph", "(native)", Table::cell(skip->graph.average_degree()),
      "single", "no (logN+n)",
      [skip](std::shared_ptr<const net::LatencyModel> m) {
        skip->graph.set_latency_model(std::move(m));
      },
      [skip](bool audit) {
        sim::RangeWorkload w({kDomainLo, kDomainHi}, kRangeSize,
                             Rng(kSeed + 1));
        Rng issuers(kSeed ^ 0xfeedu);
        return run_queries(audit, [&] {
          const auto rq = w.next();
          const auto issuer = static_cast<skipgraph::NodeId>(
              issuers.next_index(skip->graph.num_nodes()));
          return skip->index.query(issuer, rq.lo, rq.hi).stats;
        });
      }});

  // --- PHT over FISSIONE (the constant-degree configuration of Table 1) ---
  struct PhtFissioneState {
    fissione::FissioneNetwork net;
    fissione::PeerId client = 0;
    rq::Pht pht;
    explicit PhtFissioneState(std::size_t n)
        : net(fissione::FissioneNetwork::build(n, kSeed)),
          pht(rq::Pht::Config{.key_bits = 16, .leaf_capacity = 8,
                              .domain = {kDomainLo, kDomainHi}},
              [this](const std::string& label) {
                return net.route(client, net.kautz_hash("pht/" + label))
                    .stats();
              }) {}
  };
  auto phtf = std::make_shared<PhtFissioneState>(kN);
  {
    Rng obj(kSeed ^ 0x9e3779b97f4a7c15ull);
    for (std::size_t i = 0; i < 2 * kN; ++i) {
      phtf->pht.publish(obj.next_double(kDomainLo, kDomainHi));
    }
  }
  schemes.push_back(Scheme{
      "PHT", "FissionE", Table::cell(phtf->net.average_degree()),
      "single+multi", "no (b*logN)",
      [phtf](std::shared_ptr<const net::LatencyModel> m) {
        phtf->net.set_latency_model(std::move(m));
      },
      [phtf](bool audit) {
        sim::RangeWorkload w({kDomainLo, kDomainHi}, kRangeSize,
                             Rng(kSeed + 1));
        Rng issuers(kSeed ^ 0xfeedu);
        const auto& peers = phtf->net.alive_peers();
        return run_queries(audit, [&] {
          const auto rq = w.next();
          phtf->client = peers[issuers.next_index(peers.size())];
          return phtf->pht.query(rq.lo, rq.hi).stats;
        });
      }});

  // --- PHT over Chord (for contrast: O(logN)-degree DHT underneath) -------
  struct PhtChordState {
    chord::ChordNetwork net;
    chord::NodeId client = 0;
    rq::Pht pht;
    explicit PhtChordState(std::size_t n)
        : net(n, kSeed),
          pht(rq::Pht::Config{.key_bits = 16, .leaf_capacity = 8,
                              .domain = {kDomainLo, kDomainHi}},
              [this](const std::string& label) {
                // FNV-1a of the trie label picks the ring position.
                return net.route(client, fnv1a64(label)).stats;
              }) {}
  };
  auto phtc = std::make_shared<PhtChordState>(kN);
  {
    Rng obj(kSeed ^ 0x9e3779b97f4a7c15ull);
    for (std::size_t i = 0; i < 2 * kN; ++i) {
      phtc->pht.publish(obj.next_double(kDomainLo, kDomainHi));
    }
  }
  schemes.push_back(Scheme{
      "PHT", "Chord", Table::cell(phtc->net.average_degree()),
      "single+multi", "no (b*logN)",
      [phtc](std::shared_ptr<const net::LatencyModel> m) {
        phtc->net.set_latency_model(std::move(m));
      },
      [phtc](bool audit) {
        sim::RangeWorkload w({kDomainLo, kDomainHi}, kRangeSize,
                             Rng(kSeed + 1));
        Rng issuers(kSeed ^ 0xfeedu);
        return run_queries(audit, [&] {
          const auto rq = w.next();
          phtc->client = static_cast<chord::NodeId>(
              issuers.next_index(phtc->net.num_nodes()));
          return phtc->pht.query(rq.lo, rq.hi).stats;
        });
      }});

  // --- Armada / MIRA over FISSIONE (multi-attribute) ----------------------
  struct MiraState {
    fissione::FissioneNetwork net;
    core::ArmadaIndex index;
    MiraState(std::size_t n, const kautz::Box& dom)
        : net(fissione::FissioneNetwork::build(n, kSeed)),
          index(core::ArmadaIndex::multi(net, dom)) {}
  };
  auto mira = std::make_shared<MiraState>(kN, domain);
  {
    Rng obj(kSeed ^ 0x5bd1e995u);
    sim::UniformPoints points(domain, obj.split());
    for (std::size_t i = 0; i < 2 * kN; ++i) {
      mira->index.publish(points.next());
    }
  }
  schemes.push_back(Scheme{
      "Armada(MIRA)", "FissionE", Table::cell(mira->net.average_degree()),
      "multi(2)", "yes",
      [mira](std::shared_ptr<const net::LatencyModel> m) {
        mira->net.set_latency_model(std::move(m));
      },
      [mira, domain](bool audit) {
        sim::BoxWorkload w(domain, kBoxSide, Rng(kSeed + 1));
        Rng issuers(kSeed ^ 0xfeedu);
        const auto& peers = mira->net.alive_peers();
        return run_queries(audit, [&] {
          const auto issuer = peers[issuers.next_index(peers.size())];
          return mira->index.box_query(issuer, w.next()).stats;
        });
      }});

  // --- Squid over Chord (multi-attribute) ---------------------------------
  struct SquidState {
    chord::ChordNetwork net;
    rq::Squid squid;
    explicit SquidState(std::size_t n)
        : net(n, kSeed), squid(net, rq::Squid::Config{}) {}
  };
  auto squid = std::make_shared<SquidState>(kN);
  {
    Rng obj(kSeed ^ 0x5bd1e995u);
    sim::UniformPoints points(domain, obj.split());
    for (std::size_t i = 0; i < 2 * kN; ++i) {
      squid->squid.publish(points.next());
    }
  }
  schemes.push_back(Scheme{
      "Squid", "Chord", Table::cell(squid->net.average_degree()), "multi(2)",
      "no (h*logN)",
      [squid](std::shared_ptr<const net::LatencyModel> m) {
        squid->net.set_latency_model(std::move(m));
      },
      [squid, domain](bool audit) {
        sim::BoxWorkload w(domain, kBoxSide, Rng(kSeed + 1));
        Rng issuers(kSeed ^ 0xfeedu);
        return run_queries(audit, [&] {
          const auto issuer = static_cast<chord::NodeId>(
              issuers.next_index(squid->net.num_nodes()));
          return squid->squid.query(issuer, w.next()).stats;
        });
      }});

  // --- SCRAP over Skip Graph (multi-attribute) ----------------------------
  struct ScrapState {
    skipgraph::SkipGraph graph;
    rq::Scrap scrap;
    ScrapState(std::size_t n, std::uint32_t order)
        : graph(random_keys(n, 0.0, std::exp2(2.0 * order) - 1.0, kSeed),
                kSeed + 2),
          scrap(graph, rq::Scrap::Config{.order = order}) {}
  };
  auto scrap = std::make_shared<ScrapState>(kN, 16);
  {
    Rng obj(kSeed ^ 0x5bd1e995u);
    sim::UniformPoints points(domain, obj.split());
    for (std::size_t i = 0; i < 2 * kN; ++i) {
      scrap->scrap.publish(points.next());
    }
  }
  schemes.push_back(Scheme{
      "SCRAP", "SkipGraph", Table::cell(scrap->graph.average_degree()),
      "multi(2)", "no (logN+n)",
      [scrap](std::shared_ptr<const net::LatencyModel> m) {
        scrap->graph.set_latency_model(std::move(m));
      },
      [scrap, domain](bool audit) {
        sim::BoxWorkload w(domain, kBoxSide, Rng(kSeed + 1));
        Rng issuers(kSeed ^ 0xfeedu);
        return run_queries(audit, [&] {
          const auto issuer = static_cast<skipgraph::NodeId>(
              issuers.next_index(scrap->graph.num_nodes()));
          return scrap->scrap.query(issuer, w.next()).stats;
        });
      }});

  // --- the sweep: every scheme under every latency model ------------------
  // JSON series are "<scheme>[-<dht>]/<model>": PIRA, MIRA, DCF-CAN,
  // SkipGraph, PHT-FissionE, PHT-Chord, Squid, SCRAP.
  const auto series_name = [](const Scheme& s) {
    if (s.name == "Armada(PIRA)") return std::string("PIRA");
    if (s.name == "Armada(MIRA)") return std::string("MIRA");
    if (s.name == "PHT") return "PHT-" + s.dht;
    return s.name;
  };

  Table table({"Model", "Scheme", "DHT", "Degree", "Attrs", "AvgDelay",
               "MaxDelay", "AvgLatency", "P95Latency", "AvgMsgs", "Destpeers",
               "DelayBounded"});
  for (const auto& model : bench_latency_models(kSeed)) {
    const bool constant = model->name() == "constant";
    for (const Scheme& s : schemes) {
      s.set_model(model);
      const sim::MetricSet m = s.run(constant);
      table.add_row({model->name(), s.name, s.dht, s.degree, s.attrs,
                     Table::cell(m.delay().mean()),
                     Table::cell(m.delay().max(), 0),
                     Table::cell(m.latency().mean()),
                     Table::cell(m.latency_percentiles().p95()),
                     Table::cell(m.messages().mean()),
                     Table::cell(m.dest_peers().mean()), s.bounded});
      json_record("table1", series_name(s) + "/" + model->name(),
                  {{"n", static_cast<double>(kN)},
                   {"range_size", kRangeSize},
                   {"box_side", kBoxSide[0]}},
                  m);
    }
  }
  print_tables(
      "Table 1 (all schemes x all latency models; single-attr range=100, "
      "2-d box ~10% selectivity)",
      table);
  return 0;
}
