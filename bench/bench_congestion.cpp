// Extension: query latency under congestion — offered load x latency model.
//
// Every figure the repo reproduces prices a hop as pure propagation, which
// silently assumes an uncongested network. This bench installs the
// queueing network (src/net/queueing.h) under the FISSIONE and Chord
// transports and drives an open-loop query injector over a shared
// simulator: exact-match walks are precomputed once per (overlay, model)
// cell, then replayed through the per-node service queues and per-link
// bandwidth at shrinking inter-arrival gaps. Tier 0 is the uncongested
// baseline (no queueing installed: every walk costs its pure-propagation
// latency); tiers 1..3 span a 32x offered-load range (gaps shrink 4x,
// then 8x).
//
// The headline output is the *knee*: the first load tier whose p99 query
// latency departs from the uncongested baseline by more than the knee
// factor. Under every latency model p99 must grow strictly across the
// loaded tiers — the CI benchsmoke leg asserts exactly that from the JSON
// feed, together with strictly positive queueing delay at the top tier.
// A traced run (ARMADA_TRACE_DIR=<dir>) additionally exercises the obs
// layer end to end: the fissione/constant cell's baseline and top tiers
// plus the top closed-loop goodput tier run with an obs::TraceRecorder
// attached (deterministic 1-in-4 sampling, delay bound 2*log2 n), the
// closed-loop tiers sample per-class time series through an obs::Registry
// + Sampler, and the run exports Chrome-trace JSON, a span stream, the
// time series, and the delay-bound auditor's slow-query log under the
// directory. Tracing never perturbs the simulation, so every number in
// the JSON feed is identical with and without it — the CI benchsmoke leg
// validates the exports against tools/trace_schema.json.
#include "common.h"

#include "chord/chord.h"
#include "net/queueing.h"
#include "obs/publish.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "sim/event_queue.h"

namespace {

using namespace armada;
using namespace armada::bench;

constexpr std::uint64_t kSeed = 77;
constexpr int kTiers = 4;
/// Per-tier inter-arrival gap between query injections at the 16-node
/// reference size; tier 0 is the uncongested baseline (gap only sets the
/// injection spacing there). The loaded tiers span a 32x offered-load
/// range so the top tier sits well past saturation at every scale.
constexpr double kBaseGaps[kTiers] = {2.0, 2.0, 0.5, 0.0625};
constexpr double kKneeFactor = 1.5;

/// A query fans ~log2(n) messages over n node servers, so holding the
/// per-node offered load constant across network sizes requires the
/// injection rate to grow like n / log2(n). Without this, large networks
/// dilute the fixed query stream to the point where every tier is
/// effectively uncongested.
double tier_gap(int tier, std::size_t n) {
  const double nodes = static_cast<double>(n);
  return kBaseGaps[tier] * (4.0 * std::log2(nodes) / nodes);
}

/// The loaded tiers' queueing network: a node server takes 2 time units
/// per message (each direction), a link carries 1 KiB per time unit,
/// messages weigh 256 bytes, and departures for one link coalesce inside
/// 0.05.
net::QueueingConfig congested_config() {
  net::QueueingConfig cfg;
  cfg.service_rate = 0.5;
  cfg.link_bandwidth = 1024.0;
  cfg.default_message_bytes = 256;
  cfg.coalesce_window = 0.05;
  return cfg;
}

/// Precomputed structural walks (issuer..owner), shared by every tier of a
/// cell so tiers differ only in offered load.
std::vector<std::vector<net::NodeId>> fissione_walks(
    fissione::FissioneNetwork& net, int queries) {
  std::vector<std::vector<net::NodeId>> walks;
  walks.reserve(static_cast<std::size_t>(queries));
  for (int q = 0; q < queries; ++q) {
    const auto from = net.random_peer();
    walks.push_back(net.route(from, net.random_object_id()).path);
  }
  return walks;
}

std::vector<std::vector<net::NodeId>> chord_walks(chord::ChordNetwork& net,
                                                  int queries,
                                                  std::uint64_t seed) {
  std::vector<std::vector<net::NodeId>> walks;
  walks.reserve(static_cast<std::size_t>(queries));
  Rng rng(seed);
  for (int q = 0; q < queries; ++q) {
    const auto from = net.ring()[rng.next_index(net.ring().size())];
    std::vector<net::NodeId> path;
    net.route(from, rng.engine()(), &path);
    walks.push_back(std::move(path));
  }
  return walks;
}

struct TierResult {
  sim::MetricSet queries;
  net::CongestionStats congestion;
  double elapsed = 0.0;
};

/// Replay `walks` on a fresh shared simulator, one injection every `gap`,
/// through the overlay's transport (tier 0: stateless; loaded tiers: the
/// queueing network, freshly installed so congestion stats cover exactly
/// this tier).
TierResult run_tier(overlay::RoutedOverlay& overlay,
                    const std::vector<std::vector<net::NodeId>>& walks,
                    double gap, bool loaded) {
  if (loaded) {
    overlay.install_queueing(congested_config());
  } else {
    overlay.uninstall_queueing();
  }
  net::Transport& transport = overlay.transport();
  const std::uint32_t bytes = transport.default_message_bytes();
  TierResult r{sim::MetricSet(
                   std::log2(static_cast<double>(overlay.overlay_size()))),
               net::CongestionStats{}, 0.0};
  sim::Simulator sim;
  for (std::size_t i = 0; i < walks.size(); ++i) {
    sim.schedule_at(static_cast<double>(i) * gap, [&, i] {
      transport.deliver_walk(
          sim, walks[i], bytes,
          [&r](const sim::QueryStats& s) { r.queries.add(s); });
    });
  }
  sim.run();
  r.congestion = overlay.congestion();
  r.elapsed = sim.now();
  return r;
}

void record_tier(Table& table, const std::string& overlay,
                 const std::string& model, int tier, std::size_t n,
                 const TierResult& r, double baseline_p99) {
  const double p99 = r.queries.latency_percentiles().p99();
  const double util =
      r.congestion.service_utilization(r.elapsed, n);
  table.add_row(
      {overlay, model, "load" + std::to_string(tier),
       Table::cell(tier_gap(tier, n)), Table::cell(static_cast<std::uint64_t>(n)),
       Table::cell(r.queries.latency().mean_or(0.0)), Table::cell(p99),
       Table::cell(baseline_p99 > 0.0 ? p99 / baseline_p99 : 1.0),
       Table::cell(r.queries.queue_delay().mean_or(0.0)), Table::cell(util),
       Table::cell(r.congestion.egress_depth_peak),
       Table::cell(r.congestion.departures_saved())});
  JsonSink::instance().record(
      "congestion", overlay + "/" + model + "/load" + std::to_string(tier),
      {{"tier", static_cast<double>(tier)},
       {"gap", tier_gap(tier, n)},
       {"n", static_cast<double>(n)},
       {"queries", static_cast<double>(r.queries.latency().count())}},
      {{"latency_mean", r.queries.latency().mean_or(0.0)},
       {"latency_p50", r.queries.latency_percentiles().p50()},
       {"latency_p95", r.queries.latency_percentiles().p95()},
       {"latency_p99", p99},
       {"p99_vs_baseline", baseline_p99 > 0.0 ? p99 / baseline_p99 : 1.0},
       {"queue_delay_mean", r.queries.queue_delay().mean_or(0.0)},
       {"bytes_mean", r.queries.bytes_on_wire().mean_or(0.0)},
       {"messages_mean", r.queries.messages().mean_or(0.0)},
       {"service_utilization", util},
       {"egress_depth_peak",
        static_cast<double>(r.congestion.egress_depth_peak)},
       {"ingress_depth_peak",
        static_cast<double>(r.congestion.ingress_depth_peak)},
       {"wire_messages", static_cast<double>(r.congestion.messages)},
       {"wire_departures", static_cast<double>(r.congestion.batches)},
       {"departures_saved",
        static_cast<double>(r.congestion.departures_saved())},
       {"batch_occupancy_mean", r.congestion.batch_occupancy_mean()}});
}

void run_cell(Table& table, const std::string& overlay_name,
              overlay::RoutedOverlay& overlay, const std::string& model_name,
              const std::vector<std::vector<net::NodeId>>& walks,
              const std::shared_ptr<obs::TraceRecorder>& recorder = nullptr) {
  const std::size_t n = overlay.overlay_size();
  double baseline_p99 = 0.0;
  double knee_tier = 0.0;
  for (int tier = 0; tier < kTiers; ++tier) {
    // Trace the uncongested baseline (clean span trees, no violations)
    // and the top load tier (where the delay-bound auditor fires).
    const bool traced =
        recorder != nullptr && (tier == 0 || tier == kTiers - 1);
    if (traced) {
      overlay.transport().attach_trace(recorder);
    }
    const TierResult r = run_tier(overlay, walks, tier_gap(tier, n), tier > 0);
    if (traced) {
      overlay.transport().detach_trace();
    }
    const double p99 = r.queries.latency_percentiles().p99();
    if (tier == 0) {
      baseline_p99 = p99;
    } else if (knee_tier == 0.0 && p99 > kKneeFactor * baseline_p99) {
      knee_tier = static_cast<double>(tier);
    }
    record_tier(table, overlay_name, model_name, tier, n, r, baseline_p99);
  }
  overlay.uninstall_queueing();
  JsonSink::instance().record(
      "congestion_knee", overlay_name + "/" + model_name,
      {{"n", static_cast<double>(n)}},
      {{"knee_tier", knee_tier}, {"baseline_p99", baseline_p99}});
}

// ---------------------------------------------------------------------------
// Closed-loop goodput sweep.
//
// The latency tiers above are open loop: senders inject blindly, queues
// absorb everything, and past saturation the delay bound the paper promises
// is gone. This sweep drives real PIRA range queries (not replayed walks)
// plus a background kRepair stream over ONE shared simulator per tier,
// under strict priority scheduling, twice per tier: open loop, and closed
// loop (backlog backoff + overload admission control, which degrades
// queries into partial answers carrying stats.coverage). Goodput is served
// coverage per unit time; the closed-loop curve must rise with offered
// load and then plateau — no collapse — while admission keeps query delay
// bounded and strict priority keeps the repair class unstarved. The CI
// benchsmoke leg asserts all of that from the "congestion_goodput" feed.
// ---------------------------------------------------------------------------

constexpr int kGoodputTiers = 5;
/// 4x offered-load steps at the 16-node reference size (same n-relative
/// normalization as tier_gap); the top tiers sit well past saturation.
constexpr double kGoodputBaseGaps[kGoodputTiers] = {2.0, 0.5, 0.125, 0.03125,
                                                    0.0078125};
constexpr double kGoodputRange = 20.0;
/// One background repair delivery per this many query injections.
constexpr int kRepairEvery = 4;

double goodput_gap(int tier, std::size_t n) {
  const double nodes = static_cast<double>(n);
  return kGoodputBaseGaps[tier] * (4.0 * std::log2(nodes) / nodes);
}

/// Strict-priority variant of the congested config; `closed_loop` adds the
/// sender discipline (linear backlog backoff + admission control).
net::QueueingConfig goodput_config(bool closed_loop) {
  net::QueueingConfig cfg = congested_config();
  cfg.scheduling = net::QueueingConfig::Scheduling::kStrict;
  if (closed_loop) {
    cfg.flow.backoff_threshold = 4;
    cfg.flow.backoff = 0.5;
    cfg.flow.admission_limit = 12;
  }
  return cfg;
}

/// Workload precomputed once and shared by every tier and loop mode, so
/// cells differ only in offered load and sender discipline.
struct GoodputWorkload {
  std::vector<fissione::PeerId> issuers;
  std::vector<sim::RangeQuery> ranges;
  std::vector<std::pair<fissione::PeerId, fissione::PeerId>> repairs;
};

GoodputWorkload make_goodput_workload(fissione::FissioneNetwork& net,
                                      int queries, std::uint64_t seed) {
  GoodputWorkload w;
  sim::RangeWorkload ranges({kDomainLo, kDomainHi}, kGoodputRange, Rng(seed));
  for (int q = 0; q < queries; ++q) {
    w.issuers.push_back(net.random_peer());
    w.ranges.push_back(ranges.next());
  }
  for (int j = 0; j * kRepairEvery < queries; ++j) {
    const auto a = net.random_peer();
    auto b = net.random_peer();
    while (b == a) {
      b = net.random_peer();
    }
    w.repairs.emplace_back(a, b);
  }
  return w;
}

struct GoodputTier {
  sim::MetricSet queries;
  OnlineStats repair_qd;
  net::CongestionStats congestion;
  double elapsed = 0.0;

  /// Served coverage per unit time: the useful-work rate after admission
  /// control degraded what it had to.
  double goodput() const {
    return elapsed > 0.0 ? queries.coverage().sum() / elapsed : 0.0;
  }
};

GoodputTier run_goodput_tier(core::ArmadaIndex& index,
                             fissione::FissioneNetwork& net,
                             const GoodputWorkload& w, double gap,
                             bool closed_loop,
                             const std::string& timeseries_name = "",
                             std::string* timeseries_out = nullptr) {
  net.install_queueing(goodput_config(closed_loop));
  net::Transport& transport = net.transport();
  GoodputTier r{sim::MetricSet(
                    std::log2(static_cast<double>(net.num_peers()))),
                OnlineStats{}, net::CongestionStats{}, 0.0};
  sim::Simulator sim;
  // Per-class time-series sampling (traced runs): ticks read cumulative
  // congestion counters, live backlog probes, and served coverage into a
  // fresh registry. Ticks stop at the injection end, so they never extend
  // sim.now() — the goodput numbers stay identical to an unsampled run.
  obs::Registry registry;
  obs::Sampler sampler(registry, [&](obs::Registry& reg) {
    obs::publish(reg, "net", net.congestion());
    double ingress = 0.0;
    double egress = 0.0;
    if (const net::Queueing* q = transport.queueing(); q != nullptr) {
      for (fissione::PeerId p : net.alive_peers()) {
        ingress += static_cast<double>(q->ingress_backlog(sim, p));
        egress += static_cast<double>(q->egress_backlog(sim, p));
      }
    }
    reg.set("net.ingress_backlog", ingress);
    reg.set("net.egress_backlog", egress);
    reg.set("query.completed",
            static_cast<double>(r.queries.coverage().count()));
    reg.set("query.coverage_mean", r.queries.coverage().mean_or(1.0));
    reg.set("query.goodput", sim.now() > 0.0
                                 ? r.queries.coverage().sum() / sim.now()
                                 : 0.0);
  });
  if (timeseries_out != nullptr) {
    const double horizon = static_cast<double>(w.issuers.size()) * gap;
    sampler.schedule(sim, 0.0, horizon, std::max(gap, horizon / 32.0));
  }
  for (std::size_t i = 0; i < w.issuers.size(); ++i) {
    sim.schedule_at(static_cast<double>(i) * gap, [&, i] {
      index.range_query_async(
          sim, w.issuers[i], w.ranges[i].lo, w.ranges[i].hi,
          [&r](core::RangeQueryResult res) { r.queries.add(res.stats); });
    });
  }
  for (std::size_t j = 0; j < w.repairs.size(); ++j) {
    sim.schedule_at((static_cast<double>(j) * kRepairEvery + 0.5) * gap,
                    [&, j] {
                      transport.deliver(
                          sim, w.repairs[j].first, w.repairs[j].second,
                          transport.default_message_bytes(),
                          [&r](sim::Time qd) { r.repair_qd.add(qd); }, 0.0,
                          net::TrafficClass::kRepair);
                    });
  }
  sim.run();
  if (timeseries_out != nullptr) {
    *timeseries_out += sampler.jsonl(timeseries_name);
  }
  r.congestion = net.congestion();
  r.elapsed = sim.now();
  net.uninstall_queueing();
  return r;
}

void run_goodput_sweep(std::size_t n, int queries, std::uint64_t seed,
                       const std::shared_ptr<obs::TraceRecorder>& recorder =
                           nullptr,
                       std::string* timeseries_out = nullptr) {
  ArmadaSetup setup(n, scaled(1024, 64), seed);
  fissione::FissioneNetwork& net = setup.net();
  const GoodputWorkload w = make_goodput_workload(net, queries, seed ^ 0x5afe);
  Table table({"Load", "Gap", "Goodput", "OpenGput", "Coverage", "Shed",
               "QryQD", "RepQD", "LatMean", "OpenLat"});
  for (int tier = 0; tier < kGoodputTiers; ++tier) {
    const double gap = goodput_gap(tier, n);
    const GoodputTier open =
        run_goodput_tier(setup.index(), net, w, gap, false);
    // Traced runs: the top closed-loop tier carries the recorder (real
    // PIRA queries past saturation — sheds, partial coverage, and
    // delay-bound violations all fire) and every closed tier contributes
    // a per-class time series.
    const bool traced = recorder != nullptr && tier == kGoodputTiers - 1;
    if (traced) {
      net.transport().attach_trace(recorder);
    }
    const GoodputTier closed =
        run_goodput_tier(setup.index(), net, w, gap, true,
                         "goodput/load" + std::to_string(tier),
                         timeseries_out);
    if (traced) {
      net.transport().detach_trace();
    }
    table.add_row(
        {"load" + std::to_string(tier), Table::cell(gap),
         Table::cell(closed.goodput()), Table::cell(open.goodput()),
         Table::cell(closed.queries.coverage().mean_or(1.0)),
         Table::cell(closed.congestion.shed_messages),
         Table::cell(closed.congestion.class_queue_delay_mean(
             net::TrafficClass::kQuery)),
         Table::cell(closed.congestion.class_queue_delay_mean(
             net::TrafficClass::kRepair)),
         Table::cell(closed.queries.latency().mean_or(0.0)),
         Table::cell(open.queries.latency().mean_or(0.0))});
    JsonSink::instance().record(
        "congestion_goodput", "fissione/constant/load" + std::to_string(tier),
        {{"tier", static_cast<double>(tier)},
         {"gap", gap},
         {"n", static_cast<double>(n)},
         {"queries", static_cast<double>(closed.queries.coverage().count())}},
        {{"goodput", closed.goodput()},
         {"open_goodput", open.goodput()},
         {"coverage_mean", closed.queries.coverage().mean_or(1.0)},
         {"shed_branches", closed.queries.shed().sum()},
         {"shed_messages",
          static_cast<double>(closed.congestion.shed_messages)},
         {"query_qd_mean", closed.congestion.class_queue_delay_mean(
                               net::TrafficClass::kQuery)},
         {"repair_qd_mean", closed.congestion.class_queue_delay_mean(
                                net::TrafficClass::kRepair)},
         {"repair_messages",
          static_cast<double>(closed.congestion.class_messages[class_index(
              net::TrafficClass::kRepair)])},
         {"latency_mean", closed.queries.latency().mean_or(0.0)},
         {"latency_p99", closed.queries.latency_percentiles().p99()},
         {"open_latency_mean", open.queries.latency().mean_or(0.0)},
         {"open_latency_p99", open.queries.latency_percentiles().p99()},
         {"elapsed", closed.elapsed},
         {"open_elapsed", open.elapsed}});
  }
  print_tables(
      "Goodput vs offered load (strict priority; closed loop = backoff + "
      "admission control, partial answers carry coverage)",
      table);
}

}  // namespace

int main() {
  Table table({"Overlay", "Model", "Load", "Gap", "N", "LatMean", "LatP99",
               "VsBase", "QDelay", "Util", "EgPeak", "Saved"});
  // This bench sweeps offered load, not network size (fig7/fig8 own the
  // size axis): a moderate node count keeps contention dense enough that
  // the load tiers land on the rising part of the latency curve instead of
  // diluting over thousands of idle servers.
  const std::size_t kN = scaled(128);
  // High floor: the load signal needs enough temporally overlapping walks
  // to queue even at smoke scale, or every tier degenerates to the fixed
  // per-message service cost and the knee disappears.
  const int kQueries = static_cast<int>(scaled(600, 96));
  // Traced run: one shared recorder covers the fissione/constant cell and
  // the goodput sweep. Delay bound 2*log2(n): uncongested walks (at most
  // the Kautz diameter ~ log n hops of unit propagation) sit comfortably
  // inside it, while top-tier queries — whose hops each pay ~4 time units
  // of service plus queueing — blow through it, so the auditor always
  // attributes at least one slow query.
  std::shared_ptr<obs::TraceRecorder> recorder;
  if (trace_dir() != nullptr) {
    obs::TraceConfig tc;
    tc.sample_period = 4;
    tc.seed = kSeed;
    tc.delay_bound = 2.0 * std::log2(static_cast<double>(kN));
    recorder = std::make_shared<obs::TraceRecorder>(tc);
  }
  for (const auto& model : bench_latency_models(kSeed)) {
    {
      auto net = fissione::FissioneNetwork::build(kN, kSeed);
      net.set_latency_model(model);
      const auto walks = fissione_walks(net, kQueries);
      const bool traced_cell = model->name() == std::string("constant");
      run_cell(table, "fissione", net, model->name(), walks,
               traced_cell ? recorder : nullptr);
    }
    {
      chord::ChordNetwork net(kN, kSeed);
      net.set_latency_model(model);
      const auto walks = chord_walks(net, kQueries, kSeed + 13);
      run_cell(table, "chord", net, model->name(), walks);
    }
  }
  print_tables(
      "Query latency under congestion (offered load x latency model; tier 0 "
      "is the uncongested baseline, gaps shrink 4x per tier)",
      table);
  // One closed-loop cell (FISSIONE + ConstantHop) is enough for the
  // goodput story: the sender discipline, not the latency model, is what
  // the sweep isolates.
  std::string timeseries;
  run_goodput_sweep(kN, kQueries, kSeed ^ 0x60d, recorder,
                    recorder != nullptr ? &timeseries : nullptr);
  if (recorder != nullptr) {
    const std::string dir = trace_dir();
    obs::write_text_file(dir + "/congestion_trace.json",
                         recorder->chrome_trace_json());
    obs::write_text_file(dir + "/congestion_spans.jsonl",
                         recorder->spans_jsonl());
    obs::write_text_file(dir + "/congestion_slow.jsonl",
                         recorder->slow_queries_jsonl());
    obs::write_text_file(dir + "/congestion_slow.log",
                         recorder->slow_query_log());
    obs::write_text_file(dir + "/congestion_timeseries.jsonl", timeseries);
    const std::string problem = recorder->validate();
    if (!problem.empty()) {
      std::fprintf(stderr, "trace invariant violated: %s\n", problem.c_str());
    }
    JsonSink::instance().record(
        "congestion_trace", "fissione/constant",
        {{"n", static_cast<double>(kN)},
         {"sample_period", static_cast<double>(recorder->config().sample_period)},
         {"delay_bound", recorder->config().delay_bound}},
        {{"roots_seen", static_cast<double>(recorder->roots_seen())},
         {"roots_sampled", static_cast<double>(recorder->roots_sampled())},
         {"spans_recorded", static_cast<double>(recorder->spans_recorded())},
         {"spans_dropped", static_cast<double>(recorder->spans_dropped())},
         {"violations", static_cast<double>(recorder->violations())},
         {"invariant_ok", problem.empty() ? 1.0 : 0.0}});
    if (!problem.empty()) {
      return 1;
    }
  }
  return 0;
}
