// Ablation 3: flooding discipline in the CAN baseline.
//
// Andrzejak & Xu compare flooding mechanisms; their directed controlled
// flooding (DCF) is the strong variant the paper benchmarks against. This
// ablation contrasts DCF with brute-force flooding (no direction control:
// the query spreads over all zones with duplicate suppression) on the same
// workload — showing why the paper's baseline uses DCF.
#include <deque>

#include "common.h"

namespace {

using namespace armada;
using namespace armada::bench;

// Brute-force flood: visit the whole network from the median zone;
// destinations still only answer if they intersect the range.
sim::QueryStats brute_force_query(const can::CanNetwork& net,
                                  const rq::DcfCan& dcf, can::NodeId issuer,
                                  double lo, double hi) {
  sim::QueryStats stats;
  const double mid = (lo + hi) / 2.0;
  // Reuse DCF's own routing phase by querying a zero-width range at the
  // median; its delay equals the routing hops.
  const auto route_probe = dcf.query(issuer, mid, mid);
  const auto route_hops = static_cast<std::uint32_t>(route_probe.stats.delay);
  stats.messages = route_hops;

  const can::NodeId median = route_probe.destinations.front();
  std::vector<char> visited(net.num_nodes(), 0);
  std::vector<can::NodeId> parent(net.num_nodes(), can::kNoNode);
  std::deque<std::pair<can::NodeId, std::uint32_t>> queue;
  visited[median] = 1;
  queue.emplace_back(median, 0);
  std::uint32_t depth = 0;
  while (!queue.empty()) {
    const auto [z, d] = queue.front();
    queue.pop_front();
    depth = std::max(depth, d);
    for (can::NodeId n : net.neighbors(z)) {
      if (n == parent[z]) {
        continue;
      }
      ++stats.messages;
      if (!visited[n]) {
        visited[n] = 1;
        parent[n] = z;
        queue.emplace_back(n, d + 1);
      }
    }
  }
  // Destinations: intersecting zones only (they scan local data).
  stats.dest_peers = dcf.expected_destinations(lo, hi).size();
  stats.delay = route_hops + depth;
  return stats;
}

}  // namespace

int main() {
  const std::size_t kN = armada::bench::scaled(2000);
  constexpr std::uint64_t kSeed = 92;

  can::CanNetwork net(kN, kSeed);
  rq::DcfCan dcf(net, rq::DcfCan::Config{});
  Rng obj(kSeed + 1);
  for (std::size_t i = 0; i < 2 * kN; ++i) {
    dcf.publish(obj.next_double(kDomainLo, kDomainHi));
  }

  Table table({"RangeSize", "DCF_Delay", "BF_Delay", "DCF_Msgs", "BF_Msgs"});
  for (double size : {10.0, 100.0, 300.0}) {
    sim::RangeWorkload workload({kDomainLo, kDomainHi}, size, Rng(kSeed + 2));
    OnlineStats dcf_delay;
    OnlineStats bf_delay;
    OnlineStats dcf_msgs;
    OnlineStats bf_msgs;
    Rng pick(kSeed + 3);
    for (int q = 0; q < 100; ++q) {
      const auto rqy = workload.next();
      const auto issuer =
          static_cast<can::NodeId>(pick.next_index(net.num_nodes()));
      const auto controlled = dcf.query(issuer, rqy.lo, rqy.hi);
      const auto brute = brute_force_query(net, dcf, issuer, rqy.lo, rqy.hi);
      dcf_delay.add(controlled.stats.delay);
      dcf_msgs.add(static_cast<double>(controlled.stats.messages));
      bf_delay.add(brute.delay);
      bf_msgs.add(static_cast<double>(brute.messages));
    }
    table.add_row({Table::cell(size, 0), Table::cell(dcf_delay.mean()),
                   Table::cell(bf_delay.mean()), Table::cell(dcf_msgs.mean()),
                   Table::cell(bf_msgs.mean())});
  }
  print_tables(
      "Ablation: directed controlled flooding vs brute-force flooding (CAN)",
      table);
  return 0;
}
