// Extension: load balance under skewed data and skewed queries.
//
// Order-preserving naming is what makes Armada's queries delay-bounded, but
// it inherits the data distribution: skewed values concentrate objects on
// few peers, where a uniform hash would spread them evenly. The paper
// defers load balancing to related work ([15], [20]); part one of this
// bench quantifies the trade-off that motivates those techniques.
//
// Part two measures the *query service* side of the same skew: under a
// Zipf(1.0) query workload the peers in charge of hot attribute ranges
// handle most of the traffic. The popularity-aware replication subsystem
// (src/replica/) replicates hot regions to alternate Kautz names and routes
// whole search classes to the cheapest live replica (plus path result
// caching), so the same query sequence is replayed twice — plain vs
// replicated — over identically seeded networks. Every query is audited
// against the paper's delay bound and a global-scan ground truth; the
// per-peer service-load distributions (messages handled: forwarding and
// destination scans alike) feed the table and the JSON sink.
#include <map>
#include <optional>
#include <set>
#include <string>

#include "common.h"
#include "obs/publish.h"
#include "obs/sampler.h"
#include "rebalance/rebalance.h"
#include "replica/replica_set.h"
#include "util/check.h"

namespace {

using namespace armada;
using namespace armada::bench;

struct LoadRow {
  double mean;
  double max;
  double p99;
  double gini_coeff;
};

LoadRow measure(const std::vector<double>& per_peer) {
  OnlineStats s;
  // Exact nearest-rank percentile over the real-valued loads; the previous
  // Histogram-based p99 truncated each load to int64 buckets.
  Percentiles pct;
  for (double v : per_peer) {
    s.add(v);
    pct.add(v);
  }
  return LoadRow{s.mean(), s.max(), pct.p99(), gini(per_peer)};
}

// ---------------------------------------------------------------------------
// Part two: per-peer query service load, plain vs replicated.
// ---------------------------------------------------------------------------

constexpr std::size_t kQueryBins = 200;

// Which load-shedding subsystems serve the Zipf workload.
enum class ServeMode {
  kPlain,          // FRT only (the baseline)
  kReplicated,     // popularity-aware replication + result caching
  kRebalanceOnly,  // online key-space rebalancing (src/rebalance/)
  kRebalanced,     // rebalancing composed with replication
};

bool uses_replication(ServeMode m) {
  return m == ServeMode::kReplicated || m == ServeMode::kRebalanced;
}
bool uses_rebalancing(ServeMode m) {
  return m == ServeMode::kRebalanceOnly || m == ServeMode::kRebalanced;
}

struct ServiceResult {
  LoadRow row{};
  double delay_max = 0.0;
  double coverage_min = 1.0;
  replica::ReplicaStats replica;
  rebalance::RebalanceStats rebalance;
  std::size_t active_delegations = 0;
};

// Replays the same Zipf(1.0) query sequence (seeded identically across
// calls) over a fresh identically seeded network. Queries are quantized to
// the Zipf bin's interval so repeated queries are bitwise identical — the
// condition for result-cache hits. Audits, per query: answers equal the
// global scan, coverage is full, and delay respects the paper bound
// (hops <= |PeerID(issuer)|).
ServiceResult run_service(ServeMode mode, std::size_t n, std::size_t objects,
                          int queries, std::uint64_t seed,
                          const std::string& series = "",
                          std::string* timeseries_out = nullptr) {
  auto net = fissione::FissioneNetwork::build(n, seed);
  auto index = core::ArmadaIndex::single(net, {kDomainLo, kDomainHi});
  Rng obj_rng(seed + 11);
  for (std::size_t i = 0; i < objects; ++i) {
    index.publish(obj_rng.next_double(kDomainLo, kDomainHi));
  }
  if (uses_replication(mode)) {
    replica::ReplicationConfig cfg;
    cfg.max_replicas = 8;
    cfg.region_prefix_len = 4;
    // Adaptive threshold: hot = ~1% of the workload so the smoke scale
    // still replicates; cool stays well below to avoid flapping.
    cfg.hot_threshold = std::max(4.0, static_cast<double>(queries) / 100.0);
    cfg.cool_threshold = cfg.hot_threshold / 8.0;
    cfg.cache_ttl = 64;
    index.enable_replication(cfg);
  }
  if (uses_rebalancing(mode)) {
    rebalance::RebalanceConfig cfg;
    cfg.trigger_load = 2.5;
    cfg.target_load = 1.25;
    cfg.sweep_interval = 8;
    cfg.cooldown = 32;
    cfg.max_inflight = 8;
    index.enable_rebalancing(cfg);
  }

  sim::ZipfValues zipf({kDomainLo, kDomainHi}, kQueryBins, 1.0, Rng(seed + 5));
  Rng issuer_rng(seed + 7);
  const std::vector<fissione::PeerId> alive = net.alive_peers();
  const double width = (kDomainHi - kDomainLo) / kQueryBins;
  std::vector<std::optional<std::vector<std::uint64_t>>> truth(kQueryBins);

  fissione::ServiceLoadMap load;
  net.set_service_load(&load);

  // Traced runs sample the shedding subsystems over the workload: replica
  // regions and cache hits, in-flight migrations, and active delegations.
  // These queries run synchronously (each on its own private simulator),
  // so the series' time axis is the query ordinal, not sim time.
  obs::Registry registry;
  obs::Sampler sampler(registry, [&](obs::Registry& reg) {
    if (index.replicas() != nullptr) {
      obs::publish(reg, "replica", index.replicas()->stats());
    }
    if (index.rebalancer() != nullptr) {
      obs::publish(reg, "rebalance", index.rebalancer()->stats());
      reg.set("rebalance.inflight",
              static_cast<double>(index.rebalancer()->inflight()));
      reg.set("rebalance.active_delegations",
              static_cast<double>(net.delegations().size()));
    }
  });
  const int tick_every = std::max(1, queries / 32);

  ServiceResult out;
  for (int q = 0; q < queries; ++q) {
    const double v = zipf.next();
    const std::size_t bin = std::min(
        kQueryBins - 1,
        static_cast<std::size_t>((v - kDomainLo) / width));
    const double lo = kDomainLo + static_cast<double>(bin) * width;
    const double hi = lo + width;
    const fissione::PeerId issuer = alive[issuer_rng.next_index(alive.size())];
    const auto r = index.range_query(issuer, lo, hi);

    out.delay_max = std::max(out.delay_max, r.stats.delay);
    out.coverage_min = std::min(out.coverage_min, r.stats.coverage);
    const auto bound =
        static_cast<double>(net.peer(issuer).peer_id.length());
    ARMADA_CHECK_MSG(r.stats.delay <= bound,
                     "query exceeded the paper delay bound");
    if (!truth[bin].has_value()) {
      truth[bin] = index.scan_matches({{lo, hi}});
    }
    std::vector<std::uint64_t> got = r.matches;
    std::sort(got.begin(), got.end());
    ARMADA_CHECK_MSG(got == *truth[bin],
                     "query answer diverged from the global scan");
    if (timeseries_out != nullptr && (q + 1) % tick_every == 0) {
      sampler.tick(static_cast<double>(q + 1));
    }
  }
  if (timeseries_out != nullptr) {
    *timeseries_out += sampler.jsonl(series);
  }
  net.set_service_load(nullptr);

  std::vector<double> per_peer;
  per_peer.reserve(alive.size());
  for (fissione::PeerId p : alive) {
    const auto it = load.find(p);
    per_peer.push_back(it == load.end() ? 0.0
                                        : static_cast<double>(it->second));
  }
  out.row = measure(per_peer);
  if (index.replicas() != nullptr) {
    out.replica = index.replicas()->stats();
  }
  if (index.rebalancer() != nullptr) {
    out.rebalance = index.rebalancer()->stats();
    out.active_delegations = net.delegations().size();
  }
  return out;
}

}  // namespace

int main() {
  const std::size_t kN = armada::bench::scaled(2000);
  const std::size_t kObjects = armada::bench::scaled(40000);
  constexpr std::uint64_t kSeed = 93;

  Table table({"Workload", "Naming", "MeanLoad", "MaxLoad", "p99", "Gini"});

  const std::pair<const char*, const char*> workloads[] = {
      {"uniform", "uniform"},
      {"zipf(1.0)", "zipf"},
      {"clustered", "clustered"}};
  for (const auto& [workload, series] : workloads) {
    // Fresh network per workload so stores start empty.
    auto net = fissione::FissioneNetwork::build(kN, kSeed);
    auto index = core::ArmadaIndex::single(net, {kDomainLo, kDomainHi});

    sim::ZipfValues zipf({kDomainLo, kDomainHi}, 200, 1.0, Rng(kSeed + 1));
    sim::ClusteredValues clustered(
        {kDomainLo, kDomainHi},
        {{100.0, 15.0, 3.0}, {500.0, 40.0, 2.0}, {900.0, 10.0, 1.0}},
        Rng(kSeed + 2));
    Rng uniform(kSeed + 3);

    std::vector<double> ordered_load(kN, 0.0);
    std::vector<double> hashed_load(kN, 0.0);
    std::vector<fissione::PeerId> peer_of_index(net.alive_peers());
    // Map PeerId -> dense slot for the load vectors.
    std::vector<std::size_t> slot(*std::max_element(peer_of_index.begin(),
                                                    peer_of_index.end()) +
                                  1);
    for (std::size_t i = 0; i < peer_of_index.size(); ++i) {
      slot[peer_of_index[i]] = i;
    }

    for (std::size_t i = 0; i < kObjects; ++i) {
      double v = 0.0;
      if (workload == std::string("uniform")) {
        v = uniform.next_double(kDomainLo, kDomainHi);
      } else if (workload == std::string("zipf(1.0)")) {
        v = zipf.next();
      } else {
        v = clustered.next();
      }
      // Order-preserving placement (Armada).
      ordered_load[slot[net.owner_of(index.naming_tree().single_hash(v))]] +=
          1.0;
      // Uniform-hash placement (plain DHT put).
      hashed_load[slot[net.owner_of(
          net.kautz_hash("obj/" + std::to_string(i)))]] += 1.0;
    }

    const LoadRow ordered = measure(ordered_load);
    const LoadRow hashed = measure(hashed_load);
    table.add_row({workload, "Single_hash", Table::cell(ordered.mean),
                   Table::cell(ordered.max, 0), Table::cell(ordered.p99, 0),
                   Table::cell(ordered.gini_coeff)});
    table.add_row({workload, "Kautz_hash", Table::cell(hashed.mean),
                   Table::cell(hashed.max, 0), Table::cell(hashed.p99, 0),
                   Table::cell(hashed.gini_coeff)});
    const std::vector<std::pair<std::string, double>> params = {
        {"n", static_cast<double>(kN)},
        {"objects", static_cast<double>(kObjects)}};
    JsonSink::instance().record(
        "load_balance", std::string("storage/") + series + "/single_hash",
        params,
        {{"mean", ordered.mean},
         {"max", ordered.max},
         {"p99", ordered.p99},
         {"gini", ordered.gini_coeff}});
    JsonSink::instance().record(
        "load_balance", std::string("storage/") + series + "/kautz_hash",
        params,
        {{"mean", hashed.mean},
         {"max", hashed.max},
         {"p99", hashed.p99},
         {"gini", hashed.gini_coeff}});
  }
  print_tables("Storage load per peer: order-preserving vs uniform naming",
               table);

  // --- query service load: plain vs replication vs rebalancing -------------
  const int kServiceQueries =
      static_cast<int>(armada::bench::scaled(4000, 256));
  Table service({"Series", "MeanLoad", "MaxLoad", "p99", "Gini", "CacheHits",
                 "ReplRoutes", "Regions", "Migr", "ObjMoved"});
  // When ARMADA_TRACE_DIR is set, the shedding-subsystem time series of
  // every service mode land in one JSONL stream under the directory.
  const char* tdir = armada::bench::trace_dir();
  std::string timeseries;
  std::string* ts = tdir != nullptr ? &timeseries : nullptr;
  const ServiceResult plain =
      run_service(ServeMode::kPlain, kN, kObjects, kServiceQueries, kSeed,
                  "service/unreplicated", ts);
  const ServiceResult repl = run_service(ServeMode::kReplicated, kN, kObjects,
                                         kServiceQueries, kSeed,
                                         "service/replicated", ts);
  const ServiceResult reb_only = run_service(ServeMode::kRebalanceOnly, kN,
                                             kObjects, kServiceQueries, kSeed,
                                             "service/rebalance_only", ts);
  const ServiceResult reb = run_service(ServeMode::kRebalanced, kN, kObjects,
                                        kServiceQueries, kSeed,
                                        "service/rebalanced", ts);
  if (tdir != nullptr) {
    obs::write_text_file(std::string(tdir) + "/load_balance_timeseries.jsonl",
                         timeseries);
  }
  for (const auto& [name, r] :
       {std::pair<const char*, const ServiceResult&>{"unreplicated", plain},
        std::pair<const char*, const ServiceResult&>{"replicated", repl},
        std::pair<const char*, const ServiceResult&>{"rebalance_only",
                                                     reb_only},
        std::pair<const char*, const ServiceResult&>{"rebalanced", reb}}) {
    service.add_row(
        {name, Table::cell(r.row.mean), Table::cell(r.row.max, 0),
         Table::cell(r.row.p99, 0), Table::cell(r.row.gini_coeff),
         Table::cell(static_cast<double>(r.replica.cache_hits), 0),
         Table::cell(static_cast<double>(r.replica.replica_routes), 0),
         Table::cell(static_cast<double>(r.replica.regions_replicated), 0),
         Table::cell(static_cast<double>(r.rebalance.migrations_completed), 0),
         Table::cell(static_cast<double>(r.rebalance.objects_migrated), 0)});
    // The two pre-existing series keep their exact metric sets — their
    // golden JSON rows stay bitwise identical with rebalancing compiled in.
    std::vector<std::pair<std::string, double>> metrics = {
        {"mean", r.row.mean},
        {"max", r.row.max},
        {"p99", r.row.p99},
        {"gini", r.row.gini_coeff},
        {"delay_max", r.delay_max},
        {"coverage_min", r.coverage_min},
        {"cache_hits", static_cast<double>(r.replica.cache_hits)},
        {"replica_routes", static_cast<double>(r.replica.replica_routes)},
        {"regions_replicated",
         static_cast<double>(r.replica.regions_replicated)},
        {"placement_messages",
         static_cast<double>(r.replica.placement_messages)}};
    if (r.rebalance.sweeps > 0) {
      metrics.emplace_back(
          "migrations_completed",
          static_cast<double>(r.rebalance.migrations_completed));
      metrics.emplace_back("objects_migrated",
                           static_cast<double>(r.rebalance.objects_migrated));
      metrics.emplace_back("active_delegations",
                           static_cast<double>(r.active_delegations));
    }
    JsonSink::instance().record(
        "load_balance", std::string("service/zipf/") + name,
        {{"n", static_cast<double>(kN)},
         {"objects", static_cast<double>(kObjects)},
         {"queries", static_cast<double>(kServiceQueries)}},
        metrics);
  }
  print_tables(
      "Query service load per peer under Zipf(1.0): plain vs replicated "
      "vs rebalanced",
      service);
  return 0;
}
