// Extension: storage load balance under skewed data.
//
// Order-preserving naming is what makes Armada's queries delay-bounded, but
// it inherits the data distribution: skewed values concentrate objects on
// few peers, where a uniform hash would spread them evenly. The paper
// defers load balancing to related work ([15], [20]); this bench quantifies
// the trade-off that motivates those techniques.
#include <set>

#include "common.h"

namespace {

using namespace armada;
using namespace armada::bench;

struct LoadRow {
  double mean;
  double max;
  double p99;
  double gini_coeff;
};

LoadRow measure(const std::vector<double>& per_peer) {
  OnlineStats s;
  Histogram h;
  for (double v : per_peer) {
    s.add(v);
    h.add(static_cast<std::int64_t>(v));
  }
  return LoadRow{s.mean(), s.max(), static_cast<double>(h.quantile(0.99)),
                 gini(per_peer)};
}

}  // namespace

int main() {
  const std::size_t kN = armada::bench::scaled(2000);
  const std::size_t kObjects = armada::bench::scaled(40000);
  constexpr std::uint64_t kSeed = 93;

  Table table({"Workload", "Naming", "MeanLoad", "MaxLoad", "p99", "Gini"});

  for (const char* workload : {"uniform", "zipf(1.0)", "clustered"}) {
    // Fresh network per workload so stores start empty.
    auto net = fissione::FissioneNetwork::build(kN, kSeed);
    auto index = core::ArmadaIndex::single(net, {kDomainLo, kDomainHi});

    sim::ZipfValues zipf({kDomainLo, kDomainHi}, 200, 1.0, Rng(kSeed + 1));
    sim::ClusteredValues clustered(
        {kDomainLo, kDomainHi},
        {{100.0, 15.0, 3.0}, {500.0, 40.0, 2.0}, {900.0, 10.0, 1.0}},
        Rng(kSeed + 2));
    Rng uniform(kSeed + 3);

    std::vector<double> ordered_load(kN, 0.0);
    std::vector<double> hashed_load(kN, 0.0);
    std::vector<fissione::PeerId> peer_of_index(net.alive_peers());
    // Map PeerId -> dense slot for the load vectors.
    std::vector<std::size_t> slot(*std::max_element(peer_of_index.begin(),
                                                    peer_of_index.end()) +
                                  1);
    for (std::size_t i = 0; i < peer_of_index.size(); ++i) {
      slot[peer_of_index[i]] = i;
    }

    for (std::size_t i = 0; i < kObjects; ++i) {
      double v = 0.0;
      if (workload == std::string("uniform")) {
        v = uniform.next_double(kDomainLo, kDomainHi);
      } else if (workload == std::string("zipf(1.0)")) {
        v = zipf.next();
      } else {
        v = clustered.next();
      }
      // Order-preserving placement (Armada).
      ordered_load[slot[net.owner_of(index.naming_tree().single_hash(v))]] +=
          1.0;
      // Uniform-hash placement (plain DHT put).
      hashed_load[slot[net.owner_of(
          net.kautz_hash("obj/" + std::to_string(i)))]] += 1.0;
    }

    const LoadRow ordered = measure(ordered_load);
    const LoadRow hashed = measure(hashed_load);
    table.add_row({workload, "Single_hash", Table::cell(ordered.mean),
                   Table::cell(ordered.max, 0), Table::cell(ordered.p99, 0),
                   Table::cell(ordered.gini_coeff)});
    table.add_row({workload, "Kautz_hash", Table::cell(hashed.mean),
                   Table::cell(hashed.max, 0), Table::cell(hashed.p99, 0),
                   Table::cell(hashed.gini_coeff)});
  }
  print_tables("Storage load per peer: order-preserving vs uniform naming",
               table);
  return 0;
}
