// Figure 6: message cost at different range sizes (N = 2000).
//
// (a) total messages: PIRA and DCF-CAN are close, PIRA slightly better;
//     PIRA's Destpeers is about half its message count.
// (b) MesgRatio = Messages/Destpeers and
//     IncreRatio = (Messages-logN)/(Destpeers-1) are close to 2,
//     validating the analysis Messages ~ logN + 2n - 2 (§4.3.2).
#include "common.h"

int main() {
  using namespace armada;
  using namespace armada::bench;

  const std::size_t kN = scaled(2000);
  constexpr std::uint64_t kSeed = 43;

  ArmadaSetup armada_setup(kN, 2 * kN, kSeed);
  DcfSetup dcf_setup(kN, 2 * kN, kSeed);

  Table a({"RangeSize", "PIRA", "DCF-CAN", "Destpeers"});
  Table b({"RangeSize", "MesgRatio", "IncreRatio"});
  for (double size : {2.0, 10.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0}) {
    const auto pira = armada_setup.run(size, kSeed + 1);
    const auto dcf = dcf_setup.run(size, kSeed + 1);
    a.add_row({Table::cell(size, 0), Table::cell(pira.messages().mean()),
               Table::cell(dcf.messages().mean()),
               Table::cell(pira.dest_peers().mean())});
    b.add_row({Table::cell(size, 0), Table::cell(pira.mesg_ratio().mean_or(std::nan(""))),
               Table::cell(pira.incre_ratio().mean_or(std::nan("")))});
  }
  print_tables("Figure 6(a): messages at different range size (N=2000)", a);
  print_tables("Figure 6(b): PIRA message ratios", b);
  return 0;
}
