// PIRA analysis validation (paper §4.3.2).
//
// Claims: query delay <= FRT height (= issuer PeerID length) < 2 log2 N,
// average < log2 N; average message cost ~ logN + 2n - 2, close to the
// lower bound O(logN) + n - 1.
#include "common.h"

int main() {
  using namespace armada;
  using namespace armada::bench;

  const std::size_t kN = scaled(2000);
  constexpr std::uint64_t kSeed = 47;
  const double log_n = std::log2(static_cast<double>(kN));

  ArmadaSetup setup(kN, 2 * kN, kSeed);

  Table table({"RangeSize", "Delay", "MaxDelay", "Messages", "Predicted",
               "LowerBound", "Destpeers"});
  for (double size : {2.0, 20.0, 100.0, 300.0, 600.0, 1000.0}) {
    const auto m = setup.run(size, kSeed + 1);
    const double n_dest = m.dest_peers().mean();
    table.add_row({Table::cell(size, 0), Table::cell(m.delay().mean()),
                   Table::cell(m.delay().max(), 0),
                   Table::cell(m.messages().mean()),
                   Table::cell(log_n + 2 * n_dest - 2),
                   Table::cell(log_n + n_dest - 1),
                   Table::cell(n_dest)});
  }
  print_tables(
      "PIRA analysis: measured vs predicted logN+2n-2 and bound logN+n-1",
      table);

  // Delay-bound audit: every query delay vs the issuer's PeerID length.
  Rng rng(kSeed + 2);
  sim::RangeWorkload workload({kDomainLo, kDomainHi}, 100.0, Rng(kSeed + 3));
  std::size_t violations = 0;
  double worst = 0.0;
  const int audit_queries = scaled_queries();
  for (int q = 0; q < audit_queries; ++q) {
    const auto rq = workload.next();
    const auto issuer = setup.net().random_peer();
    const auto r = setup.index().range_query(issuer, rq.lo, rq.hi);
    const double bound =
        static_cast<double>(setup.net().peer(issuer).peer_id.length());
    if (r.stats.delay > bound) {
      ++violations;
    }
    worst = std::max(worst, r.stats.delay);
  }
  std::printf("delay-bound audit: %zu violations in %d queries; worst delay "
              "%.0f vs 2logN = %.2f\n",
              violations, audit_queries, worst, 2 * log_n);
  return violations == 0 ? 0 : 1;
}
