// Shared harness for the paper-reproduction benches.
//
// Every experiment follows §4.3.3: attribute interval [0, 1000], metrics
// averaged over `kQueries` range queries whose position is uniform and
// whose issuer is a random peer.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "armada/armada.h"
#include "can/can_network.h"
#include "fissione/network.h"
#include "net/latency_model.h"
#include "obs/json_writer.h"
#include "rq/dcf_can.h"
#include "sim/metrics.h"
#include "sim/workload.h"
#include "util/table.h"

namespace armada::bench {

inline constexpr double kDomainLo = 0.0;
inline constexpr double kDomainHi = 1000.0;
inline constexpr int kQueries = 1000;

/// Global size multiplier from the ARMADA_BENCH_SCALE env var (default 1.0).
/// `ctest -L benchsmoke` sets it to a tiny value so every bench finishes in
/// seconds while still exercising the full measurement path.
inline double scale() {
  static const double s = [] {
    const char* env = std::getenv("ARMADA_BENCH_SCALE");
    if (env == nullptr || *env == '\0') {
      return 1.0;
    }
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env || *end != '\0' || !(v > 0.0)) {
      // Fail loudly: silently running a typo'd scale at full size turns a
      // smoke run into a multi-minute hang with no diagnostic.
      std::fprintf(stderr,
                   "invalid ARMADA_BENCH_SCALE '%s' (expected a positive "
                   "number)\n",
                   env);
      std::exit(2);
    }
    return v;
  }();
  return s;
}

/// `full` scaled by ARMADA_BENCH_SCALE, floored so tiny scales stay valid
/// (networks need a handful of peers; averages need a few samples).
inline std::size_t scaled(std::size_t full, std::size_t floor_value = 16) {
  const auto s = static_cast<std::size_t>(
      std::lround(static_cast<double>(full) * scale()));
  return std::max(s, floor_value);
}

inline int scaled_queries(int full = kQueries) {
  return static_cast<int>(scaled(static_cast<std::size_t>(full), 4));
}

/// One PIRA-vs-DCF-CAN measurement point (fixed N, fixed range size).
struct ComparisonPoint {
  std::size_t network_size = 0;
  double range_size = 0.0;
  sim::MetricSet pira;
  sim::MetricSet dcf;
};

/// Armada-over-FISSIONE side of a comparison.
class ArmadaSetup {
 public:
  ArmadaSetup(std::size_t n, std::size_t objects, std::uint64_t seed)
      : net_(fissione::FissioneNetwork::build(n, seed)),
        index_(core::ArmadaIndex::single(net_, {kDomainLo, kDomainHi})) {
    Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
    for (std::size_t i = 0; i < objects; ++i) {
      index_.publish(rng.next_double(kDomainLo, kDomainHi));
    }
  }

  fissione::FissioneNetwork& net() { return net_; }
  core::ArmadaIndex& index() { return index_; }

  sim::MetricSet run(double range_size, std::uint64_t seed,
                     int queries = scaled_queries()) {
    sim::MetricSet metrics(std::log2(static_cast<double>(net_.num_peers())));
    sim::RangeWorkload workload({kDomainLo, kDomainHi}, range_size, Rng(seed));
    for (int q = 0; q < queries; ++q) {
      const auto rq = workload.next();
      const auto r = index_.range_query(net_.random_peer(), rq.lo, rq.hi);
      metrics.add(r.stats);
    }
    return metrics;
  }

 private:
  fissione::FissioneNetwork net_;
  core::ArmadaIndex index_;
};

/// DCF-CAN side of a comparison.
class DcfSetup {
 public:
  DcfSetup(std::size_t n, std::size_t objects, std::uint64_t seed)
      : net_(n, seed), dcf_(net_, rq::DcfCan::Config{}), rng_(seed ^ 0xabcdu) {
    Rng obj_rng(seed ^ 0x9e3779b97f4a7c15ull);
    for (std::size_t i = 0; i < objects; ++i) {
      dcf_.publish(obj_rng.next_double(kDomainLo, kDomainHi));
    }
  }

  can::CanNetwork& net() { return net_; }
  rq::DcfCan& dcf() { return dcf_; }

  sim::MetricSet run(double range_size, std::uint64_t seed,
                     int queries = scaled_queries()) {
    sim::MetricSet metrics(std::log2(static_cast<double>(net_.num_nodes())));
    sim::RangeWorkload workload({kDomainLo, kDomainHi}, range_size, Rng(seed));
    for (int q = 0; q < queries; ++q) {
      const auto rq = workload.next();
      const auto r = dcf_.query(net_.random_node(), rq.lo, rq.hi);
      metrics.add(r.stats);
    }
    return metrics;
  }

 private:
  can::CanNetwork net_;
  rq::DcfCan dcf_;
  Rng rng_;
};

/// One instance of every transport latency model, seeded with the xor
/// offsets the latency benches have always used (distinct from the
/// testsupport sweep, which seeds each model verbatim). Row labels come
/// from LatencyModel::name(). Every overlay in a cross-scheme comparison
/// should share the *same* instance per row, so all schemes live in one
/// latency space and differences isolate the overlay structure (models are
/// pure functions of the seed, so instance sharing is an optimization, not
/// a semantic requirement).
inline std::vector<std::shared_ptr<const net::LatencyModel>>
bench_latency_models(std::uint64_t seed) {
  return {
      std::make_shared<net::ConstantHop>(),
      std::make_shared<net::UniformJitter>(seed ^ 0x1111),
      std::make_shared<net::TransitStub>(seed ^ 0x2222),
      std::make_shared<net::RttMatrix>(seed ^ 0x3333),
  };
}

inline void print_tables(const std::string& title, const Table& table) {
  std::printf("== %s ==\n%s\nCSV:\n%s\n", title.c_str(),
              table.to_text().c_str(), table.to_csv().c_str());
}

/// Machine-readable bench results. When ARMADA_BENCH_JSON=<path> is set,
/// each record() call buffers one measurement and the run is *appended* to
/// <path> as JSON Lines at process exit — one object per line:
///   {"schema": 1, "bench": ..., "series": ..., "scale": ...,
///    "params": {...}, "metrics": {...}}
/// so the perf trajectory (BENCH_*.jsonl) can be diffed across commits.
/// Append + line-per-record means several bench binaries (e.g. a whole
/// `ctest -L benchsmoke` run) can share one path without clobbering each
/// other; delete the file first when a fresh capture is wanted. Formatting
/// and escaping go through obs::JsonWriter — the same path the trace and
/// time-series exports use.
class JsonSink {
 public:
  static JsonSink& instance() {
    static JsonSink sink;
    return sink;
  }

  bool enabled() const { return path_ != nullptr; }

  void record(const std::string& bench, const std::string& series,
              const std::vector<std::pair<std::string, double>>& params,
              const std::vector<std::pair<std::string, double>>& metrics) {
    if (!enabled()) {
      return;
    }
    obs::JsonWriter w;
    w.field("schema", obs::kJsonSchemaVersion);
    w.field("bench", bench).field("series", series).field("scale", scale());
    w.field_raw("params", fields(params)).field_raw("metrics", fields(metrics));
    records_.push_back(w.str());
  }

  JsonSink(const JsonSink&) = delete;
  JsonSink& operator=(const JsonSink&) = delete;

 private:
  JsonSink() : path_(std::getenv("ARMADA_BENCH_JSON")) {
    if (path_ != nullptr && *path_ == '\0') {
      path_ = nullptr;  // set-but-empty means disabled
    }
  }

  ~JsonSink() {
    if (!enabled() || records_.empty()) {
      return;
    }
    std::FILE* f = std::fopen(path_, "a");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open ARMADA_BENCH_JSON path '%s'\n", path_);
      return;
    }
    // Several bench binaries may exit concurrently (ctest -j -L benchsmoke)
    // while appending to one shared path. Assemble the whole payload and
    // write it unbuffered in one call, so the O_APPEND write lands as a
    // single contiguous block and concurrent runs cannot interleave
    // mid-record.
    std::string payload;
    for (const std::string& r : records_) {
      payload += r;
      payload += '\n';
    }
    std::setvbuf(f, nullptr, _IONBF, 0);
    std::fwrite(payload.data(), 1, payload.size(), f);
    std::fclose(f);
  }

  static std::string fields(
      const std::vector<std::pair<std::string, double>>& kv) {
    obs::JsonWriter w;
    for (const auto& [key, value] : kv) {
      w.field(key, value);
    }
    return w.str();
  }

  const char* path_;
  std::vector<std::string> records_;
};

/// Directory for trace/time-series exports from the ARMADA_TRACE_DIR env
/// var; null when tracing is disabled (the default). Benches that support
/// traced runs (bench_congestion) write their Chrome trace, span stream,
/// per-class time series, and slow-query log under this directory.
inline const char* trace_dir() {
  static const char* d = [] {
    const char* env = std::getenv("ARMADA_TRACE_DIR");
    return env != nullptr && *env != '\0' ? env : nullptr;
  }();
  return d;
}

/// Record the standard metric summary of one MetricSet under the JSON knob:
/// means of the paper metrics plus delay/latency percentiles.
inline void json_record(const std::string& bench, const std::string& series,
                        const std::vector<std::pair<std::string, double>>& params,
                        const sim::MetricSet& m) {
  JsonSink& sink = JsonSink::instance();
  if (!sink.enabled()) {
    return;
  }
  const bool has = m.delay().count() > 0;
  sink.record(bench, series, params,
              {{"queries", static_cast<double>(m.delay().count())},
               {"delay_mean", m.delay().mean_or(0.0)},
               {"delay_p50", has ? m.delay_percentiles().p50() : 0.0},
               {"delay_p95", has ? m.delay_percentiles().p95() : 0.0},
               {"delay_p99", has ? m.delay_percentiles().p99() : 0.0},
               {"latency_mean", m.latency().mean_or(0.0)},
               {"latency_p50", has ? m.latency_percentiles().p50() : 0.0},
               {"latency_p95", has ? m.latency_percentiles().p95() : 0.0},
               {"latency_p99", has ? m.latency_percentiles().p99() : 0.0},
               {"messages_mean", m.messages().mean_or(0.0)},
               {"dest_peers_mean", m.dest_peers().mean_or(0.0)},
               {"mesg_ratio_mean", m.mesg_ratio().mean_or(0.0)}});
}

}  // namespace armada::bench
