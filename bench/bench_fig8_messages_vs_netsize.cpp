// Figure 8: message cost at different network sizes (range size = 20).
//
// (a) total messages: PIRA and DCF-CAN are close, PIRA slightly better.
// (b) PIRA's MesgRatio and IncreRatio stay close to 2 at every N,
//     re-validating Messages ~ logN + 2n - 2 (§4.3.2).
#include "common.h"

int main() {
  using namespace armada;
  using namespace armada::bench;

  constexpr double kRange = 20.0;
  constexpr std::uint64_t kSeed = 45;

  Table a({"NetworkSize", "PIRA", "DCF-CAN", "Destpeers"});
  Table b({"NetworkSize", "MesgRatio", "IncreRatio"});
  for (std::size_t full_n :
       {1000u, 2000u, 3000u, 4000u, 5000u, 6000u, 7000u, 8000u}) {
    const std::size_t n = scaled(full_n);
    ArmadaSetup armada_setup(n, 2 * n, kSeed);
    DcfSetup dcf_setup(n, 2 * n, kSeed);
    const auto pira = armada_setup.run(kRange, kSeed + 1);
    const auto dcf = dcf_setup.run(kRange, kSeed + 1);
    a.add_row({Table::cell(static_cast<std::uint64_t>(n)),
               Table::cell(pira.messages().mean()),
               Table::cell(dcf.messages().mean()),
               Table::cell(pira.dest_peers().mean())});
    b.add_row({Table::cell(static_cast<std::uint64_t>(n)),
               Table::cell(pira.mesg_ratio().mean_or(std::nan(""))),
               Table::cell(pira.incre_ratio().mean_or(std::nan("")))});
  }
  print_tables("Figure 8(a): messages at different network size (range=20)",
               a);
  print_tables("Figure 8(b): PIRA message ratios", b);
  return 0;
}
