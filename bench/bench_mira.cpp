// MIRA: multiple-attribute range queries (paper §5).
//
// Claims: MIRA is delay-bounded exactly like PIRA — average delay < log2 N
// and maximum delay < 2 log2 N regardless of the size of the query space or
// the specific query. The bench sweeps box selectivity for m = 2 and m = 3.
#include "common.h"

int main() {
  using namespace armada;
  using namespace armada::bench;

  const std::size_t kN = scaled(2000);
  constexpr std::uint64_t kSeed = 48;
  const double log_n = std::log2(static_cast<double>(kN));

  for (std::size_t m : {2u, 3u}) {
    auto net = fissione::FissioneNetwork::build(kN, kSeed + m);
    kautz::Box domain(m, kautz::Interval{kDomainLo, kDomainHi});
    auto index = core::ArmadaIndex::multi(net, domain);
    Rng obj_rng(kSeed ^ 0x5bd1e995u);
    sim::UniformPoints points(domain, obj_rng.split());
    for (std::size_t i = 0; i < 2 * kN; ++i) {
      index.publish(points.next());
    }

    Table table({"BoxSide", "Delay", "MaxDelay", "Messages", "Destpeers",
                 "logN", "2logN"});
    for (double side : {10.0, 50.0, 100.0, 250.0, 500.0, 1000.0}) {
      sim::BoxWorkload workload(domain, std::vector<double>(m, side),
                                Rng(kSeed + static_cast<std::uint64_t>(side)));
      sim::MetricSet metrics(log_n);
      for (int q = 0; q < scaled_queries(kQueries / 2); ++q) {
        const auto box = workload.next();
        const auto r = index.box_query(net.random_peer(), box);
        metrics.add(r.stats);
      }
      table.add_row({Table::cell(side, 0), Table::cell(metrics.delay().mean()),
                     Table::cell(metrics.delay().max(), 0),
                     Table::cell(metrics.messages().mean()),
                     Table::cell(metrics.dest_peers().mean()),
                     Table::cell(log_n), Table::cell(2 * log_n)});
    }
    print_tables("MIRA delay bounds, m = " + std::to_string(m) +
                     " attributes (N=2000)",
                 table);
  }
  return 0;
}
