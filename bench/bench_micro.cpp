// Microbenchmarks of the primitives (google-benchmark): naming, region
// algebra, overlay routing, curve transforms, and a full PIRA query —
// plus a packed-vs-reference KautzString comparison recorded into the
// ARMADA_BENCH_JSON feed (custom main below).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common.h"

#include "armada/armada.h"
#include "fissione/network.h"
#include "kautz/kautz_space.h"
#include "kautz/partition_tree.h"
#include "obs/trace.h"
#include "sfc/hilbert.h"
#include "util/rng.h"

namespace {

using namespace armada;

void BM_SingleHash(benchmark::State& state) {
  const auto tree = kautz::PartitionTree::single(2, 48, {0.0, 1000.0});
  Rng rng(1);
  double v = rng.next_double(0.0, 1000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.single_hash(v));
    v = v < 999.0 ? v + 0.7 : 0.3;
  }
}
BENCHMARK(BM_SingleHash);

void BM_MultipleHash3Attr(benchmark::State& state) {
  const kautz::PartitionTree tree(
      2, 48, kautz::Box{{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}});
  const std::vector<double> p{0.3, 0.7, 0.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.multiple_hash(p));
  }
}
BENCHMARK(BM_MultipleHash3Attr);

void BM_RankUnrank(benchmark::State& state) {
  std::uint64_t r = 12345;
  const std::uint64_t n = kautz::space_size(2, 24);
  for (auto _ : state) {
    const auto s = kautz::unrank(2, 24, r % n);
    benchmark::DoNotOptimize(kautz::rank(s));
    r = r * 2862933555777941757ull + 3037000493ull;
  }
}
BENCHMARK(BM_RankUnrank);

void BM_RegionIntersectsPrefix(benchmark::State& state) {
  const auto tree = kautz::PartitionTree::single(2, 48, {0.0, 1000.0});
  const auto region = tree.region_for(123.0, 456.0);
  const auto prefix = kautz::KautzString::parse("0120102");
  for (auto _ : state) {
    benchmark::DoNotOptimize(region.intersects_prefix(prefix));
  }
}
BENCHMARK(BM_RegionIntersectsPrefix);

void BM_HilbertIndex(benchmark::State& state) {
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sfc::hilbert_index(20, {x & 0xfffff, (x >> 20) & 0xfffff}));
    x += 0x9e3779b9;
  }
}
BENCHMARK(BM_HilbertIndex);

void BM_FissioneRoute(benchmark::State& state) {
  auto net = fissione::FissioneNetwork::build(
      static_cast<std::size_t>(state.range(0)), 7);
  Rng rng(9);
  for (auto _ : state) {
    const auto target = kautz::random_string(rng, 2, 48);
    benchmark::DoNotOptimize(net.route(net.random_peer(), target));
  }
}
BENCHMARK(BM_FissioneRoute)->Arg(1000)->Arg(8000);

void BM_PiraQuery(benchmark::State& state) {
  auto net = fissione::FissioneNetwork::build(2000, 11);
  auto index = core::ArmadaIndex::single(net, {0.0, 1000.0});
  Rng rng(13);
  for (int i = 0; i < 4000; ++i) {
    index.publish(rng.next_double(0.0, 1000.0));
  }
  const double size = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const double lo = rng.next_double(0.0, 1000.0 - size);
    benchmark::DoNotOptimize(
        index.range_query(net.random_peer(), lo, lo + size));
  }
}
BENCHMARK(BM_PiraQuery)->Arg(20)->Arg(300);

void BM_KautzShiftTarget(benchmark::State& state) {
  // The inner op of shift routing: align, then id[1..] ++ oid[j..].
  Rng rng(3);
  const auto id = kautz::random_string(rng, 2, 20);
  const auto oid = kautz::random_string(rng, 2, 48);
  for (auto _ : state) {
    const std::size_t j = id.longest_suffix_prefix(oid);
    benchmark::DoNotOptimize(
        id.drop_front().concat(oid.suffix(oid.length() - j)));
  }
}
BENCHMARK(BM_KautzShiftTarget);

void BM_FissioneJoin(benchmark::State& state) {
  auto net = fissione::FissioneNetwork::build(1000, 15);
  for (auto _ : state) {
    net.join();
  }
}
// Pinned iteration count: every iteration grows the overlay.
BENCHMARK(BM_FissioneJoin)->Iterations(4000);

// --- packed-vs-reference KautzString timings --------------------------------
//
// RefString is the pre-packing representation: one heap digit vector per
// string, every slice a fresh vector. Timing the same routing-shaped
// workload against both implementations quantifies what the bit-packed
// words buy; the measurements land in the ARMADA_BENCH_JSON feed (bench
// "micro", series "kautz_string") and CI checks the speedups stay >= 1.
struct RefString {
  std::uint8_t base = 2;
  std::vector<std::uint8_t> d;

  RefString suffix(std::size_t len) const {
    return {base, {d.end() - static_cast<std::ptrdiff_t>(len), d.end()}};
  }
  RefString drop_front() const {
    return {base, {d.begin() + 1, d.end()}};
  }
  RefString concat(const RefString& tail) const {
    RefString out{base, d};
    out.d.insert(out.d.end(), tail.d.begin(), tail.d.end());
    return out;
  }
  std::size_t longest_suffix_prefix(const RefString& other) const {
    const std::size_t max_t = std::min(d.size(), other.d.size());
    for (std::size_t t = max_t; t > 0; --t) {
      if (std::equal(d.end() - static_cast<std::ptrdiff_t>(t), d.end(),
                     other.d.begin())) {
        return t;
      }
    }
    return 0;
  }
  bool operator<(const RefString& other) const { return d < other.d; }

  // The pre-packing ctor validated the Kautz invariants too; a copy-only
  // reference would undercount the old construction cost.
  static RefString make(std::uint8_t base, std::vector<std::uint8_t> digits) {
    int prev = -1;
    for (std::uint8_t x : digits) {
      if (x > base || static_cast<int>(x) == prev) {
        std::abort();
      }
      prev = x;
    }
    return RefString{base, std::move(digits)};
  }
};

// Best-of-3: each loop is short at smoke scale, and CI asserts a speedup
// ratio, so a single scheduler hiccup in either loop must not decide it.
double seconds_of(const std::function<void()>& fn) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (rep == 0 || secs < best) {
      best = secs;
    }
  }
  return best;
}

void record_kautz_micro() {
  using armada::bench::JsonSink;
  using armada::bench::scaled;

  const auto ops = static_cast<std::size_t>(scaled(200'000, 20'000));
  Rng rng(77);
  // Routing-shaped workload: PeerID-length ids against ObjectID-length
  // targets, pre-drawn so the timed loops do nothing but the op.
  std::vector<kautz::KautzString> ids;
  std::vector<kautz::KautzString> oids;
  std::vector<RefString> ref_ids;
  std::vector<RefString> ref_oids;
  constexpr std::size_t kPool = 512;
  for (std::size_t i = 0; i < kPool; ++i) {
    ids.push_back(kautz::random_string(rng, 2, 20));
    oids.push_back(kautz::random_string(rng, 2, 48));
    ref_ids.push_back(RefString{2, ids.back().digits()});
    ref_oids.push_back(RefString{2, oids.back().digits()});
  }

  // Shift-routing target construction: align + drop_front + concat.
  const double packed_shift = seconds_of([&] {
    for (std::size_t i = 0; i < ops; ++i) {
      const auto& id = ids[i % kPool];
      const auto& oid = oids[i % kPool];
      const std::size_t j = id.longest_suffix_prefix(oid);
      benchmark::DoNotOptimize(
          id.drop_front().concat(oid.suffix(oid.length() - j)));
    }
  });
  const double ref_shift = seconds_of([&] {
    for (std::size_t i = 0; i < ops; ++i) {
      const auto& id = ref_ids[i % kPool];
      const auto& oid = ref_oids[i % kPool];
      const std::size_t j = id.longest_suffix_prefix(oid);
      benchmark::DoNotOptimize(
          id.drop_front().concat(oid.suffix(oid.d.size() - j)));
    }
  });

  // Lexicographic compare (neighbor-table sort order).
  const double packed_cmp = seconds_of([&] {
    for (std::size_t i = 0; i < ops; ++i) {
      benchmark::DoNotOptimize(ids[i % kPool] < ids[(i + 1) % kPool]);
    }
  });
  const double ref_cmp = seconds_of([&] {
    for (std::size_t i = 0; i < ops; ++i) {
      benchmark::DoNotOptimize(ref_ids[i % kPool] < ref_ids[(i + 1) % kPool]);
    }
  });

  // Construction from digit bytes (parse/publish path).
  std::vector<std::vector<std::uint8_t>> digit_sets;
  digit_sets.reserve(kPool);
  for (std::size_t i = 0; i < kPool; ++i) {
    digit_sets.push_back(oids[i].digits());
  }
  const double packed_ctor = seconds_of([&] {
    for (std::size_t i = 0; i < ops; ++i) {
      benchmark::DoNotOptimize(
          kautz::KautzString(2, digit_sets[i % kPool]));
    }
  });
  const double ref_ctor = seconds_of([&] {
    for (std::size_t i = 0; i < ops; ++i) {
      benchmark::DoNotOptimize(RefString::make(2, digit_sets[i % kPool]));
    }
  });

  const double n = static_cast<double>(ops);
  const auto ns = [n](double secs) { return secs / n * 1e9; };
  std::printf(
      "\nKautzString packed vs reference (%zu ops):\n"
      "  shift_target  %7.1f ns vs %7.1f ns  (x%.2f)\n"
      "  compare       %7.1f ns vs %7.1f ns  (x%.2f)\n"
      "  construct     %7.1f ns vs %7.1f ns  (x%.2f)\n",
      ops, ns(packed_shift), ns(ref_shift), ref_shift / packed_shift,
      ns(packed_cmp), ns(ref_cmp), ref_cmp / packed_cmp, ns(packed_ctor),
      ns(ref_ctor), ref_ctor / packed_ctor);

  JsonSink::instance().record(
      "micro", "kautz_string", {{"ops", n}},
      {{"shift_target_ns_packed", ns(packed_shift)},
       {"shift_target_ns_reference", ns(ref_shift)},
       {"shift_target_speedup", ref_shift / packed_shift},
       {"compare_ns_packed", ns(packed_cmp)},
       {"compare_ns_reference", ns(ref_cmp)},
       {"compare_speedup", ref_cmp / packed_cmp},
       {"construct_ns_packed", ns(packed_ctor)},
       {"construct_ns_reference", ns(ref_ctor)},
       {"construct_speedup", ref_ctor / packed_ctor}});
}

// --- tracing overhead on the query hot path ---------------------------------
//
// The obs house rule: with tracing disabled the transport hot path pays at
// most one branch. This measurement prices the whole ladder on full PIRA
// queries — recorder absent (the branch only), recorder attached but
// sampling nothing (branch + root-sampling check), and recorder attached
// tracing every query (span recording proper) — and lands the three
// timings plus ratios in the JSON feed (bench "micro", series
// "trace_overhead") so regressions in the disabled path show up in CI
// diffs like any other perf number.
void record_trace_overhead() {
  using armada::bench::JsonSink;
  using armada::bench::scaled;

  auto net = fissione::FissioneNetwork::build(scaled(2000, 64), 11);
  auto index = core::ArmadaIndex::single(net, {0.0, 1000.0});
  Rng rng(13);
  const auto objects = scaled(4000, 128);
  for (std::size_t i = 0; i < objects; ++i) {
    index.publish(rng.next_double(0.0, 1000.0));
  }
  // Pre-drawn workload replayed identically by all three loops, so the
  // ratios isolate the tracing mode and not the query mix.
  const auto queries = static_cast<std::size_t>(scaled(2000, 200));
  std::vector<std::pair<fissione::PeerId, double>> work;
  work.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    work.emplace_back(net.random_peer(), rng.next_double(0.0, 980.0));
  }
  const auto run_all = [&] {
    for (const auto& [issuer, lo] : work) {
      benchmark::DoNotOptimize(index.range_query(issuer, lo, lo + 20.0));
    }
  };

  const double disabled = seconds_of(run_all);

  // Attached but sampling nothing: every root pays the sampling decision,
  // no span is ever recorded.
  obs::TraceConfig unsampled_cfg;
  unsampled_cfg.sample_period = std::numeric_limits<std::uint64_t>::max();
  unsampled_cfg.seed = 11;
  auto unsampled = std::make_shared<obs::TraceRecorder>(unsampled_cfg);
  net.transport().attach_trace(unsampled);
  const double attached = seconds_of(run_all);
  net.transport().detach_trace();

  // Every query traced end to end.
  obs::TraceConfig traced_cfg;
  traced_cfg.sample_period = 1;
  traced_cfg.seed = 11;
  auto recorder = std::make_shared<obs::TraceRecorder>(traced_cfg);
  net.transport().attach_trace(recorder);
  const double traced = seconds_of([&] {
    recorder->clear();  // reps must not compound span storage
    run_all();
  });
  net.transport().detach_trace();

  const double n = static_cast<double>(queries);
  const auto ns = [n](double secs) { return secs / n * 1e9; };
  std::printf(
      "\nTracing overhead per PIRA query (%zu queries):\n"
      "  disabled            %9.1f ns\n"
      "  attached, unsampled %9.1f ns  (x%.3f)\n"
      "  traced              %9.1f ns  (x%.3f)\n",
      queries, ns(disabled), ns(attached), attached / disabled, ns(traced),
      traced / disabled);

  JsonSink::instance().record(
      "micro", "trace_overhead", {{"queries", n}},
      {{"query_ns_disabled", ns(disabled)},
       {"query_ns_attached_unsampled", ns(attached)},
       {"query_ns_traced", ns(traced)},
       {"attached_vs_disabled", attached / disabled},
       {"traced_vs_disabled", traced / disabled}});
}

}  // namespace

// Custom main (instead of BENCHMARK_MAIN): the google-benchmark suite runs
// as usual, then the packed-vs-reference comparison and the tracing
// overhead ladder record their JSON feeds.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  record_kautz_micro();
  record_trace_overhead();
  return 0;
}
