// Microbenchmarks of the primitives (google-benchmark): naming, region
// algebra, overlay routing, curve transforms, and a full PIRA query.
#include <benchmark/benchmark.h>

#include "armada/armada.h"
#include "fissione/network.h"
#include "kautz/kautz_space.h"
#include "kautz/partition_tree.h"
#include "sfc/hilbert.h"
#include "util/rng.h"

namespace {

using namespace armada;

void BM_SingleHash(benchmark::State& state) {
  const auto tree = kautz::PartitionTree::single(2, 48, {0.0, 1000.0});
  Rng rng(1);
  double v = rng.next_double(0.0, 1000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.single_hash(v));
    v = v < 999.0 ? v + 0.7 : 0.3;
  }
}
BENCHMARK(BM_SingleHash);

void BM_MultipleHash3Attr(benchmark::State& state) {
  const kautz::PartitionTree tree(
      2, 48, kautz::Box{{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}});
  const std::vector<double> p{0.3, 0.7, 0.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.multiple_hash(p));
  }
}
BENCHMARK(BM_MultipleHash3Attr);

void BM_RankUnrank(benchmark::State& state) {
  std::uint64_t r = 12345;
  const std::uint64_t n = kautz::space_size(2, 24);
  for (auto _ : state) {
    const auto s = kautz::unrank(2, 24, r % n);
    benchmark::DoNotOptimize(kautz::rank(s));
    r = r * 2862933555777941757ull + 3037000493ull;
  }
}
BENCHMARK(BM_RankUnrank);

void BM_RegionIntersectsPrefix(benchmark::State& state) {
  const auto tree = kautz::PartitionTree::single(2, 48, {0.0, 1000.0});
  const auto region = tree.region_for(123.0, 456.0);
  const auto prefix = kautz::KautzString::parse("0120102");
  for (auto _ : state) {
    benchmark::DoNotOptimize(region.intersects_prefix(prefix));
  }
}
BENCHMARK(BM_RegionIntersectsPrefix);

void BM_HilbertIndex(benchmark::State& state) {
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sfc::hilbert_index(20, {x & 0xfffff, (x >> 20) & 0xfffff}));
    x += 0x9e3779b9;
  }
}
BENCHMARK(BM_HilbertIndex);

void BM_FissioneRoute(benchmark::State& state) {
  auto net = fissione::FissioneNetwork::build(
      static_cast<std::size_t>(state.range(0)), 7);
  Rng rng(9);
  for (auto _ : state) {
    const auto target = kautz::random_string(rng, 2, 48);
    benchmark::DoNotOptimize(net.route(net.random_peer(), target));
  }
}
BENCHMARK(BM_FissioneRoute)->Arg(1000)->Arg(8000);

void BM_PiraQuery(benchmark::State& state) {
  auto net = fissione::FissioneNetwork::build(2000, 11);
  auto index = core::ArmadaIndex::single(net, {0.0, 1000.0});
  Rng rng(13);
  for (int i = 0; i < 4000; ++i) {
    index.publish(rng.next_double(0.0, 1000.0));
  }
  const double size = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const double lo = rng.next_double(0.0, 1000.0 - size);
    benchmark::DoNotOptimize(
        index.range_query(net.random_peer(), lo, lo + size));
  }
}
BENCHMARK(BM_PiraQuery)->Arg(20)->Arg(300);

void BM_FissioneJoin(benchmark::State& state) {
  auto net = fissione::FissioneNetwork::build(1000, 15);
  for (auto _ : state) {
    net.join();
  }
}
// Pinned iteration count: every iteration grows the overlay.
BENCHMARK(BM_FissioneJoin)->Iterations(4000);

}  // namespace

BENCHMARK_MAIN();
