// Microbenchmarks of the primitives (google-benchmark): naming, region
// algebra, overlay routing, curve transforms, and a full PIRA query —
// plus a packed-vs-reference KautzString comparison recorded into the
// ARMADA_BENCH_JSON feed (custom main below).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common.h"

#include "armada/armada.h"
#include "fissione/network.h"
#include "kautz/kautz_space.h"
#include "kautz/partition_tree.h"
#include "sfc/hilbert.h"
#include "util/rng.h"

namespace {

using namespace armada;

void BM_SingleHash(benchmark::State& state) {
  const auto tree = kautz::PartitionTree::single(2, 48, {0.0, 1000.0});
  Rng rng(1);
  double v = rng.next_double(0.0, 1000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.single_hash(v));
    v = v < 999.0 ? v + 0.7 : 0.3;
  }
}
BENCHMARK(BM_SingleHash);

void BM_MultipleHash3Attr(benchmark::State& state) {
  const kautz::PartitionTree tree(
      2, 48, kautz::Box{{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}});
  const std::vector<double> p{0.3, 0.7, 0.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.multiple_hash(p));
  }
}
BENCHMARK(BM_MultipleHash3Attr);

void BM_RankUnrank(benchmark::State& state) {
  std::uint64_t r = 12345;
  const std::uint64_t n = kautz::space_size(2, 24);
  for (auto _ : state) {
    const auto s = kautz::unrank(2, 24, r % n);
    benchmark::DoNotOptimize(kautz::rank(s));
    r = r * 2862933555777941757ull + 3037000493ull;
  }
}
BENCHMARK(BM_RankUnrank);

void BM_RegionIntersectsPrefix(benchmark::State& state) {
  const auto tree = kautz::PartitionTree::single(2, 48, {0.0, 1000.0});
  const auto region = tree.region_for(123.0, 456.0);
  const auto prefix = kautz::KautzString::parse("0120102");
  for (auto _ : state) {
    benchmark::DoNotOptimize(region.intersects_prefix(prefix));
  }
}
BENCHMARK(BM_RegionIntersectsPrefix);

void BM_HilbertIndex(benchmark::State& state) {
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sfc::hilbert_index(20, {x & 0xfffff, (x >> 20) & 0xfffff}));
    x += 0x9e3779b9;
  }
}
BENCHMARK(BM_HilbertIndex);

void BM_FissioneRoute(benchmark::State& state) {
  auto net = fissione::FissioneNetwork::build(
      static_cast<std::size_t>(state.range(0)), 7);
  Rng rng(9);
  for (auto _ : state) {
    const auto target = kautz::random_string(rng, 2, 48);
    benchmark::DoNotOptimize(net.route(net.random_peer(), target));
  }
}
BENCHMARK(BM_FissioneRoute)->Arg(1000)->Arg(8000);

void BM_PiraQuery(benchmark::State& state) {
  auto net = fissione::FissioneNetwork::build(2000, 11);
  auto index = core::ArmadaIndex::single(net, {0.0, 1000.0});
  Rng rng(13);
  for (int i = 0; i < 4000; ++i) {
    index.publish(rng.next_double(0.0, 1000.0));
  }
  const double size = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const double lo = rng.next_double(0.0, 1000.0 - size);
    benchmark::DoNotOptimize(
        index.range_query(net.random_peer(), lo, lo + size));
  }
}
BENCHMARK(BM_PiraQuery)->Arg(20)->Arg(300);

void BM_KautzShiftTarget(benchmark::State& state) {
  // The inner op of shift routing: align, then id[1..] ++ oid[j..].
  Rng rng(3);
  const auto id = kautz::random_string(rng, 2, 20);
  const auto oid = kautz::random_string(rng, 2, 48);
  for (auto _ : state) {
    const std::size_t j = id.longest_suffix_prefix(oid);
    benchmark::DoNotOptimize(
        id.drop_front().concat(oid.suffix(oid.length() - j)));
  }
}
BENCHMARK(BM_KautzShiftTarget);

void BM_FissioneJoin(benchmark::State& state) {
  auto net = fissione::FissioneNetwork::build(1000, 15);
  for (auto _ : state) {
    net.join();
  }
}
// Pinned iteration count: every iteration grows the overlay.
BENCHMARK(BM_FissioneJoin)->Iterations(4000);

// --- packed-vs-reference KautzString timings --------------------------------
//
// RefString is the pre-packing representation: one heap digit vector per
// string, every slice a fresh vector. Timing the same routing-shaped
// workload against both implementations quantifies what the bit-packed
// words buy; the measurements land in the ARMADA_BENCH_JSON feed (bench
// "micro", series "kautz_string") and CI checks the speedups stay >= 1.
struct RefString {
  std::uint8_t base = 2;
  std::vector<std::uint8_t> d;

  RefString suffix(std::size_t len) const {
    return {base, {d.end() - static_cast<std::ptrdiff_t>(len), d.end()}};
  }
  RefString drop_front() const {
    return {base, {d.begin() + 1, d.end()}};
  }
  RefString concat(const RefString& tail) const {
    RefString out{base, d};
    out.d.insert(out.d.end(), tail.d.begin(), tail.d.end());
    return out;
  }
  std::size_t longest_suffix_prefix(const RefString& other) const {
    const std::size_t max_t = std::min(d.size(), other.d.size());
    for (std::size_t t = max_t; t > 0; --t) {
      if (std::equal(d.end() - static_cast<std::ptrdiff_t>(t), d.end(),
                     other.d.begin())) {
        return t;
      }
    }
    return 0;
  }
  bool operator<(const RefString& other) const { return d < other.d; }

  // The pre-packing ctor validated the Kautz invariants too; a copy-only
  // reference would undercount the old construction cost.
  static RefString make(std::uint8_t base, std::vector<std::uint8_t> digits) {
    int prev = -1;
    for (std::uint8_t x : digits) {
      if (x > base || static_cast<int>(x) == prev) {
        std::abort();
      }
      prev = x;
    }
    return RefString{base, std::move(digits)};
  }
};

// Best-of-3: each loop is short at smoke scale, and CI asserts a speedup
// ratio, so a single scheduler hiccup in either loop must not decide it.
double seconds_of(const std::function<void()>& fn) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (rep == 0 || secs < best) {
      best = secs;
    }
  }
  return best;
}

void record_kautz_micro() {
  using armada::bench::JsonSink;
  using armada::bench::scaled;

  const auto ops = static_cast<std::size_t>(scaled(200'000, 20'000));
  Rng rng(77);
  // Routing-shaped workload: PeerID-length ids against ObjectID-length
  // targets, pre-drawn so the timed loops do nothing but the op.
  std::vector<kautz::KautzString> ids;
  std::vector<kautz::KautzString> oids;
  std::vector<RefString> ref_ids;
  std::vector<RefString> ref_oids;
  constexpr std::size_t kPool = 512;
  for (std::size_t i = 0; i < kPool; ++i) {
    ids.push_back(kautz::random_string(rng, 2, 20));
    oids.push_back(kautz::random_string(rng, 2, 48));
    ref_ids.push_back(RefString{2, ids.back().digits()});
    ref_oids.push_back(RefString{2, oids.back().digits()});
  }

  // Shift-routing target construction: align + drop_front + concat.
  const double packed_shift = seconds_of([&] {
    for (std::size_t i = 0; i < ops; ++i) {
      const auto& id = ids[i % kPool];
      const auto& oid = oids[i % kPool];
      const std::size_t j = id.longest_suffix_prefix(oid);
      benchmark::DoNotOptimize(
          id.drop_front().concat(oid.suffix(oid.length() - j)));
    }
  });
  const double ref_shift = seconds_of([&] {
    for (std::size_t i = 0; i < ops; ++i) {
      const auto& id = ref_ids[i % kPool];
      const auto& oid = ref_oids[i % kPool];
      const std::size_t j = id.longest_suffix_prefix(oid);
      benchmark::DoNotOptimize(
          id.drop_front().concat(oid.suffix(oid.d.size() - j)));
    }
  });

  // Lexicographic compare (neighbor-table sort order).
  const double packed_cmp = seconds_of([&] {
    for (std::size_t i = 0; i < ops; ++i) {
      benchmark::DoNotOptimize(ids[i % kPool] < ids[(i + 1) % kPool]);
    }
  });
  const double ref_cmp = seconds_of([&] {
    for (std::size_t i = 0; i < ops; ++i) {
      benchmark::DoNotOptimize(ref_ids[i % kPool] < ref_ids[(i + 1) % kPool]);
    }
  });

  // Construction from digit bytes (parse/publish path).
  std::vector<std::vector<std::uint8_t>> digit_sets;
  digit_sets.reserve(kPool);
  for (std::size_t i = 0; i < kPool; ++i) {
    digit_sets.push_back(oids[i].digits());
  }
  const double packed_ctor = seconds_of([&] {
    for (std::size_t i = 0; i < ops; ++i) {
      benchmark::DoNotOptimize(
          kautz::KautzString(2, digit_sets[i % kPool]));
    }
  });
  const double ref_ctor = seconds_of([&] {
    for (std::size_t i = 0; i < ops; ++i) {
      benchmark::DoNotOptimize(RefString::make(2, digit_sets[i % kPool]));
    }
  });

  const double n = static_cast<double>(ops);
  const auto ns = [n](double secs) { return secs / n * 1e9; };
  std::printf(
      "\nKautzString packed vs reference (%zu ops):\n"
      "  shift_target  %7.1f ns vs %7.1f ns  (x%.2f)\n"
      "  compare       %7.1f ns vs %7.1f ns  (x%.2f)\n"
      "  construct     %7.1f ns vs %7.1f ns  (x%.2f)\n",
      ops, ns(packed_shift), ns(ref_shift), ref_shift / packed_shift,
      ns(packed_cmp), ns(ref_cmp), ref_cmp / packed_cmp, ns(packed_ctor),
      ns(ref_ctor), ref_ctor / packed_ctor);

  JsonSink::instance().record(
      "micro", "kautz_string", {{"ops", n}},
      {{"shift_target_ns_packed", ns(packed_shift)},
       {"shift_target_ns_reference", ns(ref_shift)},
       {"shift_target_speedup", ref_shift / packed_shift},
       {"compare_ns_packed", ns(packed_cmp)},
       {"compare_ns_reference", ns(ref_cmp)},
       {"compare_speedup", ref_cmp / packed_cmp},
       {"construct_ns_packed", ns(packed_ctor)},
       {"construct_ns_reference", ns(ref_ctor)},
       {"construct_speedup", ref_ctor / packed_ctor}});
}

}  // namespace

// Custom main (instead of BENCHMARK_MAIN): the google-benchmark suite runs
// as usual, then the packed-vs-reference comparison records its JSON feed.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  record_kautz_micro();
  return 0;
}
