// Figure 5: query delay at different range sizes (N = 2000).
//
// Paper claims: DCF-CAN delay is much larger than PIRA's and increases
// remarkably with range size; PIRA is delay-bounded — its average delay is
// almost unchanged and always below log2 N.
#include "common.h"

int main() {
  using namespace armada;
  using namespace armada::bench;

  const std::size_t kN = scaled(2000);
  constexpr std::uint64_t kSeed = 42;
  const double log_n = std::log2(static_cast<double>(kN));

  ArmadaSetup armada_setup(kN, 2 * kN, kSeed);
  DcfSetup dcf_setup(kN, 2 * kN, kSeed);

  Table table({"RangeSize", "PIRA", "PIRA_max", "DCF-CAN", "logN"});
  for (double size : {2.0, 10.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0}) {
    const auto pira = armada_setup.run(size, kSeed + 1);
    const auto dcf = dcf_setup.run(size, kSeed + 1);
    table.add_row({Table::cell(size, 0), Table::cell(pira.delay().mean()),
                   Table::cell(pira.delay().max(), 0),
                   Table::cell(dcf.delay().mean()), Table::cell(log_n)});
    const std::vector<std::pair<std::string, double>> params = {
        {"n", static_cast<double>(kN)}, {"range_size", size}};
    json_record("fig5_delay_vs_range", "PIRA", params, pira);
    json_record("fig5_delay_vs_range", "DCF-CAN", params, dcf);
  }
  print_tables("Figure 5: query delay at different range size (N=2000)",
               table);
  return 0;
}
