// Extension: Armada and the Chord baseline under *timed* churn.
//
// The paper evaluates static networks. Here membership change runs through
// the Simulator with transport-priced repair (sim::ChurnProcess + the
// per-overlay churn drivers), and queries race the repair protocol inside
// stale-route windows. The sweep is churn rate x latency model; rate 0 is
// the degenerate zero-delay batch — the seed bench's instant churn, kept as
// the backward-compatible baseline row.
//
// Round structure (per rate x model cell):
//   1. churn window: the schedule executes, and a probe query fires right
//      inside each event's stale window (observing detours / in-flight
//      misses);
//   2. quiesce: the simulator drains every repair delivery;
//   3. the ground truth is hoisted ONCE per round from the peer stores
//      (the seed bench silently rescanned it per query — the stores cannot
//      change between churn boundaries, and now that is asserted);
//   4. a query batch runs against the hoisted scan;
//   5. a re-scan must equal the hoisted scan: store contents only change
//      at churn boundaries.
#include "common.h"

#include "armada/churn_harness.h"
#include "chord/churn_driver.h"
#include "fissione/churn_driver.h"
#include "net/queueing.h"
#include "obs/publish.h"
#include "obs/registry.h"
#include "sim/churn.h"

namespace {

using namespace armada;
using namespace armada::bench;

constexpr std::uint64_t kSeed = 90;
constexpr double kRange = 100.0;
constexpr double kChurnSpan = 30.0;   // churn window per round
constexpr double kRoundSpan = 100.0;  // window + repair tail + query phase
constexpr int kRounds = 4;            // rounds 1.. churn; round 0 is static
/// Sentinel rate: heavy-tailed (Pareto) session lifetimes instead of a
/// Poisson event mix, with the repair-batching queueing network installed
/// so same-link repair updates coalesce into shared departures.
constexpr double kHeavyTailed = -1.0;
constexpr double kRates[] = {0.0, 0.5, 2.0, kHeavyTailed};

/// The heavy cell's queueing network: service stays unlimited (bench_
/// congestion owns the service-pressure axis) so the effect isolated here
/// is per-link repair batching — 0.25 coalescing window, 128-byte repair
/// messages against a 4 KiB/time link.
net::QueueingConfig repair_batching_config() {
  net::QueueingConfig cfg;
  cfg.link_bandwidth = 4096.0;
  cfg.default_message_bytes = 128;
  cfg.coalesce_window = 0.25;
  return cfg;
}

/// Bamboo-style heavy-tailed sessions for one round: Pareto lifetimes
/// (alpha 1.2, minimum 3 time units) over a Poisson session-start stream.
std::vector<sim::ChurnEvent> heavy_round(double start, std::uint64_t seed) {
  sim::ChurnProcess::LifetimeConfig cfg;
  cfg.tail = sim::ChurnProcess::LifetimeConfig::Tail::kPareto;
  cfg.shape = 1.2;
  cfg.scale = 3.0;
  cfg.arrival_rate = 1.0;
  cfg.crash_fraction = 0.1;
  cfg.start = start;
  cfg.horizon = start + kChurnSpan;
  return sim::ChurnProcess::lifetimes(cfg, seed);
}

std::vector<sim::ChurnEvent> poisson_round(double rate, double start,
                                           std::uint64_t seed) {
  sim::ChurnProcess::Config cfg;
  cfg.join_rate = rate * 0.50;
  cfg.leave_rate = rate * 0.40;
  cfg.crash_rate = rate * 0.10;
  cfg.start = start;
  cfg.horizon = start + kChurnSpan;
  return sim::ChurnProcess(cfg, seed).events();
}

/// The seed bench's instant batch (10% joins + 10% leave/crash, every 10th
/// departure a crash), as a zero-delay schedule at the round boundary.
std::vector<sim::ChurnEvent> instant_batch(std::size_t n, double at) {
  std::vector<sim::ChurnEvent> events;
  const std::size_t batch = n / 10;
  for (std::size_t i = 0; i < batch; ++i) {
    events.push_back({at, sim::ChurnEventKind::kJoin});
    events.push_back({at, i % 10 == 9 ? sim::ChurnEventKind::kCrash
                                      : sim::ChurnEventKind::kLeave});
  }
  return events;
}

std::string rate_label(double rate) {
  if (rate == 0.0) {
    return "instant";
  }
  if (rate == kHeavyTailed) {
    return "heavy";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "rate%g", rate);
  return buf;
}

struct RoundDelta {
  sim::ChurnStats churn;  // stats delta for this round
  sim::MetricSet queries;
  /// Wire-side delta (all traffic through the queueing network this round);
  /// all-zero for the cells that run without queueing. departures_saved()
  /// is the message-count reduction repair batching bought.
  net::CongestionStats wire;
  std::uint64_t wrong = 0;
  std::uint64_t probes = 0;
};

sim::ChurnStats delta(const sim::ChurnStats& now, const sim::ChurnStats& was) {
  sim::ChurnStats d = now;
  d -= was;  // maxima stay cumulative, see ChurnStats::operator-=
  return d;
}

void record_round(const std::string& overlay, const std::string& model,
                  double rate, int round, std::size_t n,
                  const RoundDelta& r) {
  JsonSink::instance().record(
      "churn", overlay + "/" + model + "/" + rate_label(rate),
      {{"round", static_cast<double>(round)},
       {"rate", rate},
       {"n", static_cast<double>(n)}},
      {{"queries", static_cast<double>(r.queries.delay().count())},
       {"delay_mean", r.queries.delay().mean_or(0.0)},
       {"latency_mean", r.queries.latency().mean_or(0.0)},
       {"messages_mean", r.queries.messages().mean_or(0.0)},
       {"wrong", static_cast<double>(r.wrong)},
       {"probes", static_cast<double>(r.probes)},
       {"churn_events", static_cast<double>(r.churn.events())},
       {"repair_messages", static_cast<double>(r.churn.repair_messages)},
       {"repair_latency_mean", r.churn.repair_latency_mean()},
       {"repair_latency_max", r.churn.repair_latency_max},
       {"stale_queries", static_cast<double>(r.churn.stale_queries)},
       {"detours", static_cast<double>(r.churn.detours)},
       {"failed_queries", static_cast<double>(r.churn.failed_queries)},
       {"incomplete_queries",
        static_cast<double>(r.churn.incomplete_queries)},
       {"objects_missed", static_cast<double>(r.churn.objects_missed)},
       {"objects_handed_off",
        static_cast<double>(r.churn.objects_handed_off)},
       {"objects_dropped", static_cast<double>(r.churn.objects_dropped)},
       {"wire_messages", static_cast<double>(r.wire.messages)},
       {"wire_departures", static_cast<double>(r.wire.batches)},
       {"departures_saved", static_cast<double>(r.wire.departures_saved())},
       {"wire_bytes", static_cast<double>(r.wire.bytes_on_wire)},
       {"batch_occupancy_mean", r.wire.batch_occupancy_mean()}});
}

/// The unified-registry view of one finished cell: cumulative churn and
/// wire stats published through obs::publish (same adapters the traced
/// bench_congestion time series use), flattened into one feed record. The
/// per-round "churn" rows above keep their exact shapes; this row is the
/// cross-currency rollup keyed by instrument name.
void record_registry(const std::string& overlay, const std::string& model,
                     double rate, std::size_t n, const sim::ChurnStats& churn,
                     const net::CongestionStats& wire) {
  if (!JsonSink::instance().enabled()) {
    return;
  }
  obs::Registry reg;
  obs::publish(reg, "churn", churn);
  obs::publish(reg, "net", wire);
  std::vector<std::pair<std::string, double>> metrics;
  reg.visit([&metrics](const std::string& name, obs::Registry::Kind,
                       double scalar, const obs::Registry::Histogram*) {
    metrics.emplace_back(name, scalar);
  });
  JsonSink::instance().record(
      "churn_registry", overlay + "/" + model + "/" + rate_label(rate),
      {{"rate", rate}, {"n", static_cast<double>(n)}}, metrics);
}

void add_row(Table& table, const std::string& overlay,
             const std::string& model, double rate, int round, std::size_t n,
             const RoundDelta& r) {
  table.add_row({overlay, model, rate_label(rate),
                 Table::cell(static_cast<std::uint64_t>(round)),
                 Table::cell(static_cast<std::uint64_t>(n)),
                 Table::cell(r.queries.delay().mean_or(0.0)),
                 Table::cell(r.queries.latency().mean_or(0.0)),
                 Table::cell(static_cast<std::uint64_t>(r.wrong)),
                 Table::cell(static_cast<std::uint64_t>(
                     r.churn.repair_messages)),
                 Table::cell(r.churn.repair_latency_mean()),
                 Table::cell(static_cast<std::uint64_t>(
                     r.churn.stale_queries)),
                 Table::cell(static_cast<std::uint64_t>(r.churn.detours)),
                 Table::cell(static_cast<std::uint64_t>(
                     r.churn.incomplete_queries)),
                 Table::cell(r.wire.departures_saved())});
}

void run_fissione(Table& table, std::shared_ptr<const net::LatencyModel> model,
                  double rate) {
  const std::size_t kN = scaled(1000);
  auto net = fissione::FissioneNetwork::build(kN, kSeed);
  net.set_latency_model(model);
  const bool heavy = rate == kHeavyTailed;
  if (heavy) {
    net.install_queueing(repair_batching_config());
  }
  auto index = core::ArmadaIndex::single(net, {kDomainLo, kDomainHi});
  Rng pub(kSeed + 1);
  for (std::size_t i = 0; i < 2 * kN; ++i) {
    index.publish(pub.next_double(kDomainLo, kDomainHi));
  }

  sim::Simulator sim;
  fissione::ChurnDriver::Config dcfg;
  dcfg.zero_delay = rate == 0.0;
  fissione::ChurnDriver driver(net, sim, dcfg);
  core::ChurnHarness harness(index, driver);
  Rng probe_rng(kSeed + 2);

  for (int round = 0; round < kRounds; ++round) {
    // Congested replays can stretch a round past its nominal span (queued
    // deliveries drain after the churn window); the next round starts at
    // whichever is later. Uncongested cells keep the fixed boundaries.
    const double t0 = std::max(round * kRoundSpan, sim.now());
    const sim::ChurnStats before = driver.stats();
    const net::CongestionStats wire_before = net.congestion();
    RoundDelta r{sim::ChurnStats{},
                 sim::MetricSet(std::log2(static_cast<double>(kN))),
                 net::CongestionStats{}, 0, 0};
    if (round > 0) {
      const auto events =
          rate == 0.0    ? instant_batch(net.num_peers(), t0)
          : heavy        ? heavy_round(t0, kSeed + 7u * round)
                         : poisson_round(rate, t0, kSeed + 7u * round);
      for (const sim::ChurnEvent& e : events) {
        driver.schedule(e);
        // Probe fired right after the event, inside its stale window: a
        // stale issuer when a window is open, so every churn round records
        // at least one stale-window query outcome under a timed schedule.
        sim.schedule_at(e.at, [&] {
          const auto stale = driver.stale_peers();
          const auto issuer =
              stale.empty() ? net.random_peer() : stale.front();
          const double lo = probe_rng.next_double(kDomainLo,
                                                  kDomainHi - kRange);
          harness.range_query(issuer, lo, lo + kRange);
          ++r.probes;
        });
      }
    }
    sim.run();  // drain the churn window and every repair delivery

    // Hoisted per-round ground truth: (value, handle) of everything the
    // surviving peers store, scanned once.
    auto scan = [&] {
      std::vector<std::pair<double, std::uint64_t>> objects;
      for (auto p : net.alive_peers()) {
        for (const auto& obj : net.peer(p).store) {
          objects.emplace_back(index.attributes(obj.payload)[0], obj.payload);
        }
      }
      std::sort(objects.begin(), objects.end());
      return objects;
    };
    const auto truth = scan();

    sim::RangeWorkload workload({kDomainLo, kDomainHi}, kRange,
                                Rng(kSeed + 3 + round));
    for (int q = 0; q < scaled_queries(150); ++q) {
      const auto rqy = workload.next();
      const auto out = harness.range_query(net.random_peer(), rqy.lo, rqy.hi);
      r.queries.add(out.stats);
      auto got = out.matches;
      std::sort(got.begin(), got.end());
      std::vector<std::uint64_t> expected;
      const auto lo_it = std::lower_bound(
          truth.begin(), truth.end(), std::make_pair(rqy.lo, std::uint64_t{0}));
      for (auto it = lo_it; it != truth.end() && it->first <= rqy.hi; ++it) {
        expected.push_back(it->second);
      }
      std::sort(expected.begin(), expected.end());
      if (got != expected) {
        ++r.wrong;
      }
    }

    // The query batch must not have perturbed the stores: contents change
    // only at churn boundaries.
    if (scan() != truth) {
      std::fprintf(stderr,
                   "store contents changed outside a churn boundary\n");
      std::exit(3);
    }

    r.churn = delta(driver.stats(), before);
    r.wire = net.congestion();
    r.wire -= wire_before;
    add_row(table, "fissione", model->name(), rate, round, net.num_peers(), r);
    record_round("fissione", model->name(), rate, round, net.num_peers(), r);
  }
  record_registry("fissione", model->name(), rate, net.num_peers(),
                  driver.stats(), net.congestion());
}

void run_chord(Table& table, std::shared_ptr<const net::LatencyModel> model,
               double rate) {
  const std::size_t kN = scaled(1000);
  chord::ChordNetwork net(kN, kSeed);
  net.set_latency_model(model);
  const bool heavy = rate == kHeavyTailed;
  if (heavy) {
    net.install_queueing(repair_batching_config());
  }

  sim::Simulator sim;
  chord::ChurnDriver::Config dcfg;
  dcfg.zero_delay = rate == 0.0;
  chord::ChurnDriver driver(net, sim, dcfg);
  Rng probe_rng(kSeed + 4);

  for (int round = 0; round < kRounds; ++round) {
    // Congested replays can stretch a round past its nominal span (queued
    // deliveries drain after the churn window); the next round starts at
    // whichever is later. Uncongested cells keep the fixed boundaries.
    const double t0 = std::max(round * kRoundSpan, sim.now());
    const sim::ChurnStats before = driver.stats();
    const net::CongestionStats wire_before = net.congestion();
    RoundDelta r{sim::ChurnStats{},
                 sim::MetricSet(std::log2(static_cast<double>(kN))),
                 net::CongestionStats{}, 0, 0};
    if (round > 0) {
      const auto events =
          rate == 0.0    ? instant_batch(net.num_nodes(), t0)
          : heavy        ? heavy_round(t0, kSeed + 11u * round)
                         : poisson_round(rate, t0, kSeed + 11u * round);
      for (const sim::ChurnEvent& e : events) {
        driver.schedule(e);
        sim.schedule_at(e.at, [&] {
          const auto stale = driver.stale_nodes();
          const auto issuer =
              stale.empty() ? net.random_node() : stale.front();
          driver.route(issuer, probe_rng.engine()());
          ++r.probes;
        });
      }
    }
    sim.run();

    Rng qrng(kSeed + 5 + round);
    for (int q = 0; q < scaled_queries(150); ++q) {
      const auto from = net.ring()[qrng.next_index(net.ring().size())];
      const chord::Key key = qrng.engine()();
      const auto out = driver.route(from, key);
      r.queries.add(out.stats);
      // No Wrong counter here: ChordNetwork::route asserts the owner
      // against ground truth internally, so correctness degradation under
      // staleness surfaces as detours / failed routes, not wrong owners.
    }

    r.churn = delta(driver.stats(), before);
    r.wire = net.congestion();
    r.wire -= wire_before;
    add_row(table, "chord", model->name(), rate, round, net.num_nodes(), r);
    record_round("chord", model->name(), rate, round, net.num_nodes(), r);
  }
  record_registry("chord", model->name(), rate, net.num_nodes(),
                  driver.stats(), net.congestion());
}

}  // namespace

int main() {
  Table table({"Overlay", "Model", "Rate", "Round", "N", "AvgDelay",
               "AvgLatency", "Wrong", "RepairMsgs", "RepairLatMean", "StaleQ",
               "Detours", "Incomplete", "SavedDep"});
  for (const auto& model : bench_latency_models(kSeed)) {
    for (double rate : kRates) {
      run_fissione(table, model, rate);
      run_chord(table, model, rate);
    }
  }
  print_tables(
      "Timed churn x query interleave (rate x latency model; rate 'instant' "
      "is the zero-delay batch schedule, 'heavy' is Pareto session lifetimes "
      "with per-link repair batching)",
      table);
  return 0;
}
