// Extension: Armada behaviour under churn.
//
// The paper evaluates static networks; FISSIONE's join/leave machinery
// (fission/fusion with the neighborhood invariant) is what keeps Armada's
// guarantees alive under membership change. This bench alternates churn
// batches with query batches and tracks correctness and delay.
#include "common.h"

int main() {
  using namespace armada;
  using namespace armada::bench;

  const std::size_t kN = scaled(2000);
  constexpr std::uint64_t kSeed = 90;
  constexpr double kRange = 100.0;

  auto net = fissione::FissioneNetwork::build(kN, kSeed);
  auto index = core::ArmadaIndex::single(net, {kDomainLo, kDomainHi});
  Rng rng(kSeed + 1);
  for (std::size_t i = 0; i < 2 * kN; ++i) {
    index.publish(rng.next_double(kDomainLo, kDomainHi));
  }

  Table table({"ChurnedPeers", "N", "AvgDelay", "MaxDelay", "AvgMsgs",
               "WrongAnswers", "MaxIDLen", "NbrGap"});
  std::size_t churned_total = 0;
  for (int round = 0; round < 6; ++round) {
    if (round > 0) {
      // Churn batch: 10% joins and 10% departures (plus a few crashes).
      const std::size_t batch = kN / 10;
      for (std::size_t i = 0; i < batch; ++i) {
        net.join();
        const auto& alive = net.alive_peers();
        if (i % 10 == 9) {
          net.crash(alive[rng.next_index(alive.size())]);
        } else {
          net.leave(alive[rng.next_index(alive.size())]);
        }
      }
      churned_total += 2 * batch;
    }

    sim::MetricSet metrics(std::log2(static_cast<double>(net.num_peers())));
    sim::RangeWorkload workload({kDomainLo, kDomainHi}, kRange,
                                Rng(kSeed + 2 + round));
    std::size_t wrong = 0;
    for (int q = 0; q < scaled_queries(200); ++q) {
      const auto rqy = workload.next();
      const auto r = index.range_query(net.random_peer(), rqy.lo, rqy.hi);
      metrics.add(r.stats);
      auto got = r.matches;
      std::sort(got.begin(), got.end());
      // Crashes lose objects: ground truth is what the surviving peers
      // still store, scanned directly.
      std::vector<std::uint64_t> expected;
      for (auto p : net.alive_peers()) {
        for (const auto& obj : net.peer(p).store) {
          const double v = index.attributes(obj.payload)[0];
          if (v >= rqy.lo && v <= rqy.hi) {
            expected.push_back(obj.payload);
          }
        }
      }
      std::sort(expected.begin(), expected.end());
      if (got != expected) {
        ++wrong;
      }
    }
    table.add_row(
        {Table::cell(static_cast<std::uint64_t>(churned_total)),
         Table::cell(static_cast<std::uint64_t>(net.num_peers())),
         Table::cell(metrics.delay().mean()),
         Table::cell(metrics.delay().max(), 0),
         Table::cell(metrics.messages().mean()),
         Table::cell(static_cast<std::uint64_t>(wrong)),
         Table::cell(static_cast<std::int64_t>(
             net.peer_id_length_histogram().max())),
         Table::cell(static_cast<std::uint64_t>(
             net.max_neighbor_length_gap()))});
  }
  print_tables("Armada under churn (10% join + 10% leave/crash per round)",
               table);
  return 0;
}
