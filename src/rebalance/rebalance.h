// Online key-space rebalancing under skew.
//
// FISSIONE balances the *static* partition (zone sizes within a factor
// kappa), but a skewed query workload still concentrates service on the few
// peers owning the hot key ranges. The Rebalancer watches per-peer service
// load (a decayed EWMA over the attached ServiceLoadMap) and transport
// ingress backlog, and when a peer crosses the trigger threshold it migrates
// a hot slice of that peer's key space to a lightly loaded overlay neighbor.
//
// Migrations are *delegations*, not re-partitions: the Kautz partition tree
// — and with it the paper's structural guarantees (interval preservation,
// the FRT delay bound, kappa zone balance) — is never modified. A migrated
// range lives in the network's delegation registry; the query layer splits
// the last FRT hop so the host serves its slice at the same tree depth (see
// FrtSearch), and the network's membership surgery returns or drops hosted
// objects exactly like native ones, so object conservation holds under
// churn.
//
// The cutover is version-guarded by construction: objects stay in the
// donor's native store until the (kHandoff-priced) transfer lands; queries
// racing the transfer are served by the donor, queries after it by the
// host. Nothing is ever unreachable and nothing is served twice.
//
// Hysteresis: a donor must exceed `trigger_load` (or `backlog_trigger`),
// an acceptor must sit at or below `target_load` *and* be strictly cooler
// than the donor in the dimension that triggered it, and every migrated
// range rests for `cooldown` query ticks. Every migration therefore moves
// a range strictly downhill, at a bounded rate: a stationary hot spot
// rotates across cool peers (spreading its cumulative load) instead of
// ping-ponging between two neighbors every sweep.
//
// Disabled (the default config), every hook is a no-op and the query layer
// takes its pre-existing code path bitwise.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "fissione/network.h"
#include "kautz/kautz_region.h"
#include "kautz/kautz_string.h"
#include "replica/popularity.h"
#include "sim/event_queue.h"

namespace armada::rebalance {

struct RebalanceConfig {
  /// Donor threshold on the decayed service-load EWMA; 0 disables the load
  /// trigger. A peer at or above it becomes a migration donor.
  double trigger_load = 0.0;
  /// Acceptor ceiling: only neighbors at or below this load accept ranges.
  double target_load = 0.0;
  /// Donor threshold on transport ingress backlog (queued arrivals at the
  /// peer); 0 disables the backlog trigger.
  std::size_t backlog_trigger = 0;
  /// Query ticks between rebalance sweeps (and load-EWMA refreshes).
  std::uint64_t sweep_interval = 16;
  /// Decay of the per-peer load EWMA per sweep.
  double load_decay = 0.5;
  /// Popularity decay and its tick interval (see PopularityTracker).
  double heat_decay = 0.5;
  std::uint64_t heat_interval = 16;
  /// Charged heat prefixes are truncated to this length.
  std::size_t max_track_len = 8;
  /// Concurrent migrations across the whole overlay.
  std::uint32_t max_inflight = 4;
  /// Query ticks a migrated range rests before it may move again.
  std::uint64_t cooldown = 64;
  /// Wire size of one migrated object in the batched transfer.
  std::uint32_t object_bytes = 64;

  /// Enabled iff some trigger can fire. Query layers null a disabled
  /// rebalancer out, keeping their pre-existing path bitwise.
  bool enabled() const { return trigger_load > 0.0 || backlog_trigger > 0; }
};

struct RebalanceStats {
  std::uint64_t sweeps = 0;
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t migrations_cancelled = 0;  ///< endpoint died mid-transfer
  std::uint64_t objects_migrated = 0;
  std::uint64_t rehosted = 0;  ///< completed migrations of hosted ranges
  std::uint64_t cutover_messages = 0;
  std::uint64_t bytes_on_wire = 0;
};

class Rebalancer {
 public:
  Rebalancer(fissione::FissioneNetwork& net, RebalanceConfig config);

  Rebalancer(const Rebalancer&) = delete;
  Rebalancer& operator=(const Rebalancer&) = delete;

  const RebalanceConfig& config() const { return config_; }
  const RebalanceStats& stats() const { return stats_; }
  const replica::PopularityTracker& heat() const { return heat_; }

  /// Decayed service-load EWMA of one peer as of the last sweep.
  double load_of(fissione::PeerId p) const {
    return p < load_.size() ? load_[p] : 0.0;
  }
  /// Migrations currently in flight (transfer scheduled, cutover pending).
  std::size_t inflight() const;
  /// (donor, acceptor) of every active flight — introspection for tests
  /// (e.g. crashing a donor mid-transfer on purpose).
  std::vector<std::pair<fissione::PeerId, fissione::PeerId>> flight_endpoints()
      const;

  /// Per-query entry point (PIRA/MIRA call it once per query with the
  /// common-prefix subregions of the search classes): advances the query
  /// tick, charges heat, and every `sweep_interval` ticks runs a rebalance
  /// sweep whose transfers are priced on `sim` as kHandoff traffic.
  void on_query(sim::Simulator& sim,
                const std::vector<kautz::KautzRegion>& class_subregions);

  /// Membership changed (join/leave/crash executed): cancel migrations
  /// whose donor or acceptor died and forget dead peers' load history —
  /// PeerIds are recycled, so a joiner must not inherit its predecessor's
  /// EWMA. Wire this to the churn drivers' set_membership_hook.
  void on_membership(sim::Simulator& sim);

 private:
  struct Flight {
    fissione::PeerId donor = fissione::kNoPeer;
    fissione::PeerId acceptor = fissione::kNoPeer;
    kautz::KautzString range;
    bool rehost = false;  ///< moving an already-delegated range to a new host
    bool cancelled = false;
  };

  void refresh_loads();
  void sweep(sim::Simulator& sim);
  double heat_gain(const kautz::KautzString& range, bool whole_zone) const;
  bool range_engaged(const kautz::KautzString& range) const;
  void start_migration(sim::Simulator& sim, const std::shared_ptr<Flight>& f,
                       std::uint64_t object_count);
  void finish_migration(sim::Simulator& sim, const std::shared_ptr<Flight>& f);

  fissione::FissioneNetwork& net_;
  RebalanceConfig config_;
  RebalanceStats stats_;
  replica::PopularityTracker heat_;
  std::uint64_t tick_ = 0;
  std::vector<double> load_;          ///< decayed EWMA, indexed by PeerId
  std::vector<std::uint64_t> prev_;   ///< ServiceLoadMap counts at last sweep
  std::vector<std::shared_ptr<Flight>> flights_;
  std::map<kautz::KautzString, std::uint64_t> cooldown_until_;
};

}  // namespace armada::rebalance
