#include "rebalance/rebalance.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "net/queueing.h"
#include "net/transport.h"
#include "util/check.h"

namespace armada::rebalance {

using fissione::PeerId;
using fissione::StoredObject;
using kautz::KautzRegion;
using kautz::KautzString;

Rebalancer::Rebalancer(fissione::FissioneNetwork& net, RebalanceConfig config)
    : net_(net),
      config_(config),
      heat_(config.heat_decay, config.heat_interval) {
  ARMADA_CHECK(config_.sweep_interval > 0);
  ARMADA_CHECK(config_.load_decay >= 0.0 && config_.load_decay < 1.0);
}

std::size_t Rebalancer::inflight() const {
  std::size_t n = 0;
  for (const auto& f : flights_) {
    n += f->cancelled ? 0 : 1;
  }
  return n;
}

std::vector<std::pair<PeerId, PeerId>> Rebalancer::flight_endpoints() const {
  std::vector<std::pair<PeerId, PeerId>> out;
  for (const auto& f : flights_) {
    if (!f->cancelled) {
      out.emplace_back(f->donor, f->acceptor);
    }
  }
  return out;
}

void Rebalancer::on_query(sim::Simulator& sim,
                          const std::vector<KautzRegion>& class_subregions) {
  ++tick_;
  heat_.tick();
  for (const KautzRegion& sub : class_subregions) {
    KautzString prefix = sub.common_prefix();
    if (prefix.length() > config_.max_track_len) {
      prefix = prefix.prefix(config_.max_track_len);
    }
    heat_.bump(prefix);
  }
  if (tick_ % config_.sweep_interval == 0) {
    sweep(sim);
  }
}

void Rebalancer::on_membership(sim::Simulator&) {
  for (const auto& f : flights_) {
    if (!f->cancelled &&
        (!net_.is_alive(f->donor) || !net_.is_alive(f->acceptor))) {
      f->cancelled = true;
      ++stats_.migrations_cancelled;
    }
  }
  // PeerIds are recycled: a joiner reusing a dead peer's id must start with
  // a clean slate, both in the EWMA and in the raw-count baseline (the
  // network resets its ServiceLoadMap entry the same way).
  for (std::size_t p = 0; p < load_.size(); ++p) {
    if (!net_.is_alive(static_cast<PeerId>(p))) {
      load_[p] = 0.0;
      prev_[p] = 0;
    }
  }
}

void Rebalancer::refresh_loads() {
  std::size_t hi = 0;
  for (PeerId p : net_.alive_peers()) {
    hi = std::max(hi, static_cast<std::size_t>(p) + 1);
  }
  if (hi > load_.size()) {
    load_.resize(hi, 0.0);
    prev_.resize(hi, 0);
  }
  const fissione::ServiceLoadMap* counts = net_.service_load();
  for (std::size_t p = 0; p < load_.size(); ++p) {
    const std::uint64_t cur =
        counts != nullptr ? counts->count(static_cast<PeerId>(p)) : 0;
    // The count only moves backward when the id was recycled between
    // sweeps; treat the new count as this interval's arrivals then.
    const std::uint64_t delta = cur >= prev_[p] ? cur - prev_[p] : cur;
    load_[p] = config_.load_decay * load_[p] + static_cast<double>(delta);
    prev_[p] = cur;
  }
}

double Rebalancer::heat_gain(const KautzString& range, bool whole_zone) const {
  // Queries charged inside the range follow it wherever it goes; queries
  // charged to a coarser prefix only land on the new host when the whole
  // zone (or an already-delegated range, which full-redirects) moves.
  double gain = 0.0;
  for (const auto& [prefix, count] : heat_.counters()) {
    if (range.is_prefix_of(prefix) ||
        (whole_zone && prefix.is_prefix_of(range))) {
      gain += count;
    }
  }
  return gain;
}

bool Rebalancer::range_engaged(const KautzString& range) const {
  for (const auto& f : flights_) {
    if (!f->cancelled && (f->range.is_prefix_of(range) ||
                          range.is_prefix_of(f->range))) {
      return true;
    }
  }
  return false;
}

void Rebalancer::sweep(sim::Simulator& sim) {
  ++stats_.sweeps;
  refresh_loads();

  struct Donor {
    PeerId peer;
    double load;
    std::size_t backlog;
    bool load_hot;
  };
  std::vector<Donor> donors;
  const net::Queueing* queueing = net_.transport().queueing();
  for (PeerId p : net_.alive_peers()) {
    const double load = load_of(p);
    const std::size_t backlog =
        queueing != nullptr ? queueing->ingress_backlog(sim, p) : 0;
    const bool load_hot =
        config_.trigger_load > 0.0 && load >= config_.trigger_load;
    const bool backlog_hot =
        config_.backlog_trigger > 0 && backlog >= config_.backlog_trigger;
    if (load_hot || backlog_hot) {
      donors.push_back(Donor{p, load, backlog, load_hot});
    }
  }
  std::sort(donors.begin(), donors.end(), [](const Donor& a, const Donor& b) {
    if (a.load != b.load) {
      return a.load > b.load;
    }
    return a.peer < b.peer;
  });

  for (const Donor& donor : donors) {
    if (inflight() >= config_.max_inflight) {
      break;
    }

    // Candidate ranges: the donor's whole zone, its immediate sub-zones
    // (all carved from the native store), and any range the donor hosts
    // for someone else (re-hosted wholesale).
    struct Candidate {
      KautzString range;
      bool rehost;
      double gain;
      std::uint64_t count;
    };
    std::vector<Candidate> candidates;
    const KautzString zone = net_.peer(donor.peer).peer_id;
    const auto consider_native = [&](const KautzString& range,
                                     bool whole_zone) {
      if (range.empty() ||
          range.length() >= net_.config().object_id_length) {
        return;
      }
      const auto cooled = cooldown_until_.find(range);
      if (cooled != cooldown_until_.end() && cooled->second > tick_) {
        return;
      }
      if (range_engaged(range)) {
        return;
      }
      for (const auto& [key, d] : net_.delegations()) {
        if (key.is_prefix_of(range) || range.is_prefix_of(key)) {
          return;  // registry keys must stay prefix-free
        }
      }
      std::uint64_t count = 0;
      for (const StoredObject& obj : net_.peer(donor.peer).store) {
        if (range.is_prefix_of(obj.object_id)) {
          ++count;
        }
      }
      if (count == 0) {
        return;  // nothing to move
      }
      candidates.push_back(
          Candidate{range, false, heat_gain(range, whole_zone), count});
    };
    consider_native(zone, true);
    for (std::uint8_t s = 0; s <= zone.base(); ++s) {
      if (!zone.can_append(s)) {
        continue;
      }
      KautzString child = zone;
      child.push_back(s);
      consider_native(child, false);
    }
    for (const auto& [key, d] : net_.delegations()) {
      if (d.host != donor.peer || d.objects.empty()) {
        continue;
      }
      const auto cooled = cooldown_until_.find(key);
      if (cooled != cooldown_until_.end() && cooled->second > tick_) {
        continue;
      }
      if (range_engaged(key)) {
        continue;
      }
      candidates.push_back(
          Candidate{key, true, heat_gain(key, true), d.objects.size()});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.gain != b.gain) {
                  return a.gain > b.gain;
                }
                if (a.count != b.count) {
                  return a.count > b.count;
                }
                return a.range < b.range;
              });

    for (const Candidate& cand : candidates) {
      // A load-hot donor only sheds a range whose recent popularity is
      // commensurate with its overload: the forwarding funnel around a hot
      // zone is load-hot too, but its own barely-queried ranges would move
      // for no relief. Backlog-hot donors are exempt — their relief is
      // shedding service work at the node, not chasing the range's
      // popularity.
      if (donor.load_hot && cand.gain < donor.load) {
        continue;
      }
      // Acceptor: the least-loaded overlay neighbor at or below the target
      // that is *strictly cooler than the donor in the dimension that
      // triggered it*. Every migration therefore moves the range downhill,
      // and the per-range cooldown spaces moves out — together the
      // hysteresis band that turns a stationary hot spot into a bounded
      // rotation instead of a ping-pong storm.
      const fissione::Peer donor_peer = net_.peer(donor.peer);
      std::vector<PeerId> neighbors(donor_peer.out_neighbors.begin(),
                                    donor_peer.out_neighbors.end());
      neighbors.insert(neighbors.end(), donor_peer.in_neighbors.begin(),
                       donor_peer.in_neighbors.end());
      std::sort(neighbors.begin(), neighbors.end());
      neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                      neighbors.end());
      PeerId acceptor = fissione::kNoPeer;
      double acceptor_load = 0.0;
      for (PeerId a : neighbors) {
        if (a == donor.peer || !net_.is_alive(a)) {
          continue;
        }
        const KautzString& aid = net_.peer(a).peer_id;
        if (aid.is_prefix_of(cand.range) || cand.range.is_prefix_of(aid)) {
          continue;  // a host must be zone-disjoint from the range
        }
        const double load = load_of(a);
        if (load > config_.target_load) {
          continue;
        }
        if (donor.load_hot) {
          if (load >= donor.load) {
            continue;
          }
        } else {
          const std::size_t backlog =
              queueing != nullptr ? queueing->ingress_backlog(sim, a) : 0;
          if (backlog >= donor.backlog) {
            continue;
          }
        }
        if (acceptor == fissione::kNoPeer || load < acceptor_load) {
          acceptor = a;
          acceptor_load = load;
        }
      }
      if (acceptor == fissione::kNoPeer) {
        continue;  // try the next candidate range
      }
      auto flight = std::make_shared<Flight>();
      flight->donor = donor.peer;
      flight->acceptor = acceptor;
      flight->range = cand.range;
      flight->rehost = cand.rehost;
      start_migration(sim, flight, cand.count);
      break;  // one migration per donor per sweep
    }
  }
}

void Rebalancer::start_migration(sim::Simulator& sim,
                                 const std::shared_ptr<Flight>& flight,
                                 std::uint64_t object_count) {
  flights_.push_back(flight);
  cooldown_until_[flight->range] = tick_ + config_.cooldown;
  ++stats_.migrations_started;
  net::Transport& transport = net_.transport();
  if (obs::TraceRecorder* rec = transport.trace(); rec != nullptr) {
    // When on_query tripped this migration, tag the triggering query's
    // trace so slow-query dumps show the query raced a migration.
    rec->annotate(obs::kFlagMigration);
  }
  const std::uint32_t bytes =
      transport.default_message_bytes() +
      config_.object_bytes * static_cast<std::uint32_t>(object_count);
  stats_.bytes_on_wire += bytes;
  transport.deliver(
      sim, flight->donor, flight->acceptor, bytes,
      [this, &sim, flight](sim::Time) { finish_migration(sim, flight); }, 0.0,
      net::TrafficClass::kHandoff);
}

void Rebalancer::finish_migration(sim::Simulator& sim,
                                  const std::shared_ptr<Flight>& flight) {
  flights_.erase(std::remove(flights_.begin(), flights_.end(), flight),
                 flights_.end());
  if (flight->cancelled) {
    return;  // counted when the membership event cancelled it
  }
  if (!net_.is_alive(flight->donor) || !net_.is_alive(flight->acceptor)) {
    ++stats_.migrations_cancelled;
    return;
  }
  // The membership hook cancels flights at the churn event itself, but the
  // id may have been recycled since: re-verify every delegation
  // precondition and abort instead of corrupting the registry.
  const KautzString& aid = net_.peer(flight->acceptor).peer_id;
  if (aid.is_prefix_of(flight->range) || flight->range.is_prefix_of(aid)) {
    ++stats_.migrations_cancelled;
    return;
  }
  if (flight->rehost) {
    const auto* d = net_.find_delegation(flight->range);
    if (d == nullptr || d->host != flight->donor) {
      ++stats_.migrations_cancelled;
      return;  // revoked or re-homed by membership surgery meanwhile
    }
    stats_.objects_migrated += d->objects.size();
    net_.set_delegation_host(flight->range, flight->acceptor);
    ++stats_.rehosted;
  } else {
    for (const auto& [key, d] : net_.delegations()) {
      if (key.is_prefix_of(flight->range) ||
          flight->range.is_prefix_of(key)) {
        ++stats_.migrations_cancelled;
        return;
      }
    }
    std::vector<StoredObject> objects = net_.detach_range(flight->range);
    stats_.objects_migrated += objects.size();
    net_.delegate_range(flight->range, flight->acceptor, std::move(objects));
  }
  ++stats_.migrations_completed;

  // Cutover notices: the donor tells its in-neighbors (the peers that
  // forward into its zone) where the range now lives, on the handoff lane.
  // Queries need no acknowledgement — the FRT split reads the registry —
  // so the notices are pure accounting, like the replica release notices.
  net::Transport& transport = net_.transport();
  const fissione::Peer donor_peer = net_.peer(flight->donor);
  const std::vector<PeerId> notified(donor_peer.in_neighbors.begin(),
                                     donor_peer.in_neighbors.end());
  for (PeerId nb : notified) {
    // The approximate Kautz overlay admits self-edges; a donor does not
    // notify itself.
    if (nb == flight->donor || !net_.is_alive(nb)) {
      continue;
    }
    ++stats_.cutover_messages;
    stats_.bytes_on_wire += transport.default_message_bytes();
    transport.deliver(sim, flight->donor, nb,
                      transport.default_message_bytes(), nullptr, 0.0,
                      net::TrafficClass::kHandoff);
  }
}

}  // namespace armada::rebalance
