// The Kautz prefix tree: ground truth for FISSIONE zone ownership.
//
// FISSIONE peers partition the Kautz namespace by PeerID prefix: every
// sufficiently long Kautz string has exactly one peer whose PeerID prefixes
// it. That partition is exactly a tree in which the root has base+1 children
// (first symbols 0..base), every other internal node has `base` children
// (symbols differing from the in-edge), and leaves are peers. Splitting a
// leaf is the paper's "fission" (a peer join); merging a leaf pair is
// "fusion" (a departure). A real deployment maintains this structure
// implicitly through the peers' neighbor tables; the simulator keeps it
// explicit and derives/validates neighbor tables from it.
#pragma once

#include <memory>
#include <vector>

#include "fissione/types.h"
#include "kautz/kautz_string.h"

namespace armada::fissione {

class KautzTree {
 public:
  /// Creates the root with base+1 leaf children hosting `first_peers`
  /// (PeerIDs "0", "1", ..., in order). Requires first_peers.size() == base+1.
  KautzTree(std::uint8_t base, const std::vector<PeerId>& first_peers);

  std::uint8_t base() const { return base_; }
  std::size_t num_leaves() const { return num_leaves_; }

  /// The unique peer whose PeerID prefixes `s`. Requires s longer than the
  /// deepest leaf on its path.
  PeerId owner_of(const kautz::KautzString& s) const;

  /// True iff the tree hosts this peer.
  bool hosts(PeerId peer) const;

  kautz::KautzString label_of(PeerId peer) const;
  std::size_t depth_of(PeerId peer) const;

  /// Split the leaf of `peer` into two children; `peer` keeps the
  /// lexicographically smaller child, `joiner` takes the larger.
  void split(PeerId peer, PeerId joiner);

  /// True iff `peer`'s parent is a binary node whose children are both
  /// leaves (a mergeable pair).
  bool in_leaf_pair(PeerId peer) const;

  /// The other leaf of `peer`'s leaf pair. Requires in_leaf_pair(peer).
  PeerId pair_sibling(PeerId peer) const;

  /// Remove `leaving` and let its pair sibling `survivor` adopt the parent
  /// zone. Requires in_leaf_pair(leaving) and survivor == pair_sibling.
  void merge_pair(PeerId leaving, PeerId survivor);

  /// A leaf of maximum depth (ties broken deterministically).
  PeerId deepest_leaf() const;

  /// Re-home the zone of `old_peer` to `new_peer` (departure takeover).
  void replace_leaf_peer(PeerId old_peer, PeerId new_peer);

  /// All leaf peers covering strings with the given prefix: the leaves below
  /// the prefix node, or the single leaf found on the path. Empty prefix
  /// yields every leaf.
  std::vector<PeerId> cover_of_prefix(const kautz::KautzString& prefix) const;

  /// Structural self-check: full fanout at internal nodes, leaf/peer
  /// bijection, label consistency. Throws CheckError on violation.
  void check_structure() const;

 private:
  struct Node {
    Node* parent = nullptr;
    std::uint8_t edge = 0;  ///< symbol on the edge from parent (root: unused)
    std::uint16_t depth = 0;
    PeerId peer = kNoPeer;  ///< valid iff leaf
    std::vector<std::unique_ptr<Node>> children;  ///< empty iff leaf

    bool is_leaf() const { return children.empty(); }
  };

  Node* node_of(PeerId peer) const;
  // Child of `node` along `symbol`; nullptr when out of range.
  Node* child_by_symbol(const Node* node, std::uint8_t symbol) const;
  void collect_leaves(const Node* node, std::vector<PeerId>& out) const;
  void set_leaf_peer(Node* node, PeerId peer);
  void check_node(const Node* node, const kautz::KautzString& label,
                  std::size_t& leaves_seen) const;

  std::uint8_t base_;
  std::unique_ptr<Node> root_;
  std::vector<Node*> peer_nodes_;  ///< indexed by PeerId; nullptr when absent
  std::size_t num_leaves_ = 0;
};

}  // namespace armada::fissione
