#include "fissione/churn_driver.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"

namespace armada::fissione {
namespace {

const char* repair_trace_name(sim::ChurnEventKind kind) {
  switch (kind) {
    case sim::ChurnEventKind::kJoin:
      return "repair/join";
    case sim::ChurnEventKind::kLeave:
      return "repair/leave";
    case sim::ChurnEventKind::kCrash:
      return "repair/crash";
  }
  return "repair";
}

}  // namespace

ChurnDriver::ChurnDriver(FissioneNetwork& net, sim::Simulator& sim,
                         Config config)
    : net_(net), sim_(sim), config_(config) {
  ARMADA_CHECK(config_.crash_detect_delay >= 0.0);
  ARMADA_CHECK_MSG(config_.min_peers > net_.config().base + 1u,
                   "floor must stay above the bootstrap size");
}

void ChurnDriver::schedule(const sim::ChurnEvent& event) {
  sim_.schedule_at(event.at, [this, kind = event.kind] { execute(kind); });
}

void ChurnDriver::schedule(const std::vector<sim::ChurnEvent>& events) {
  for (const sim::ChurnEvent& e : events) {
    schedule(e);
  }
}

void ChurnDriver::execute(sim::ChurnEventKind kind) {
  const sim::Time start = sim_.now();
  // Root a repair trace around the whole event: every transport delivery
  // apply_repair makes (neighbor updates, handoffs) becomes a hop span.
  // Repair traces close via their latest arrival, so no explicit end is
  // needed; with no recorder attached this is two null checks.
  obs::TraceRecorder* rec = net_.transport().trace();
  const std::uint64_t troot =
      rec != nullptr ? rec->maybe_begin(repair_trace_name(kind), 0, start) : 0;
  const obs::TraceRecorder::Scope trace_scope =
      troot != 0 ? rec->enter(troot) : obs::TraceRecorder::Scope();
  FissioneNetwork::MembershipReport report;
  switch (kind) {
    case sim::ChurnEventKind::kJoin:
      net_.join(&report);
      // PeerIds are recycled: a window left over from a departed peer must
      // not leak onto the fresh joiner reusing its id.
      windows_.clear(report.joiner);
      ++stats_.joins;
      break;
    case sim::ChurnEventKind::kLeave:
      if (net_.num_peers() <= config_.min_peers) {
        ++stats_.skipped_events;
        return;
      }
      net_.leave(net_.random_peer(), &report);
      ++stats_.leaves;
      break;
    case sim::ChurnEventKind::kCrash:
      if (net_.num_peers() <= config_.min_peers) {
        ++stats_.skipped_events;
        return;
      }
      net_.crash(net_.random_peer(), &report);
      ++stats_.crashes;
      break;
  }
  apply_repair(report, kind == sim::ChurnEventKind::kCrash, start);
  if (membership_hook_) {
    membership_hook_();
  }
}

void ChurnDriver::apply_repair(const FissioneNetwork::MembershipReport& report,
                               bool crashed, sim::Time start) {
  net::Transport& transport = net_.transport();
  // Repair travels the queueing network when one is installed: updates to
  // the same peer inside the coalescing window share a departure, and
  // repair competes with query traffic for the same node queues. The
  // arithmetic path below stays bitwise for the uninstalled / zero-delay
  // cases.
  const bool queued = !config_.zero_delay && transport.queueing_active();
  // Healing a crash only starts once the failure is detected; a join or
  // graceful leave repairs immediately.
  const sim::Time base =
      start + (crashed ? priced(config_.crash_detect_delay) : 0.0);
  sim::Time completion = base;

  // One repair delivery a -> b; returns its arrival instant (the queueing
  // engine reserves synchronously, so coalesced arrivals are exact). Each
  // message carries its traffic class so priority scheduling can keep the
  // control plane (kRepair) ahead of query backlog.
  auto send = [&](PeerId a, PeerId b, std::uint32_t bytes,
                  std::function<void()> on_arrival, net::TrafficClass cls) {
    ++stats_.repair_messages;
    if (queued) {
      return transport.deliver(
          sim_, a, b, bytes,
          on_arrival ? net::Transport::QueuedArrival(
                           [cb = std::move(on_arrival)](sim::Time) { cb(); })
                     : net::Transport::QueuedArrival(),
          base, cls);
    }
    const sim::Time arrival = base + priced(transport.link(a, b));
    if (on_arrival) {
      sim_.schedule_at(arrival, std::move(on_arrival));
    } else {
      sim_.schedule_at(arrival, [] {});  // the delivery event itself
    }
    return arrival;
  };

  // Placement traffic (join): already-delivered sequential messages, so
  // they gate when the repair broadcast can begin, not each other.
  stats_.repair_messages += report.placement_hops;
  completion = std::max(completion, base + priced(report.placement_latency));

  // Neighbor-table updates: one delivery origin -> p per rewired peer; p is
  // stale until it arrives. The origin rewires itself locally, so its
  // window only spans the (crash) detection gap.
  for (PeerId p : report.rewired) {
    if (p == report.origin) {
      windows_.touch(p, base);
      continue;
    }
    const sim::Time arrival =
        send(report.origin, p, transport.default_message_bytes(), nullptr,
             net::TrafficClass::kRepair);
    windows_.touch(p, arrival);
    completion = std::max(completion, arrival);
  }

  // Object handoffs: one batched transfer per (from, to); the payloads are
  // in flight — unavailable to queries — until the transfer lands, and both
  // endpoints stay stale while their stores are mid-change.
  for (const auto& h : report.handoffs) {
    const std::uint32_t bytes =
        transport.default_message_bytes() +
        config_.handoff_object_bytes *
            static_cast<std::uint32_t>(h.payloads.size());
    stats_.objects_handed_off += h.payloads.size();
    const sim::Time arrival = send(
        h.from, h.to, bytes, [this] {
      // Purge transfers that have landed by now; re-handed-off objects keep
      // their (later) arrival.
      const sim::Time now = sim_.now();
      for (auto it = in_flight_.begin(); it != in_flight_.end();) {
        it = it->second <= now ? in_flight_.erase(it) : std::next(it);
      }
    },
        net::TrafficClass::kHandoff);
    for (std::uint64_t payload : h.payloads) {
      sim::Time& landing = in_flight_[payload];
      landing = std::max(landing, arrival);
    }
    windows_.touch(h.to, arrival);
    // The sender may have departed (leave handoffs); only alive senders get
    // a window.
    if (net_.is_alive(h.from)) {
      windows_.touch(h.from, arrival);
    }
    completion = std::max(completion, arrival);
  }

  stats_.objects_dropped += report.objects_dropped;
  // Peak counts objects actually on the wire: entries that land at this
  // very instant (zero-delay schedules) are never in flight.
  stats_.objects_in_flight_peak =
      std::max(stats_.objects_in_flight_peak,
               static_cast<std::uint64_t>(objects_in_flight()));
  const sim::Time repair_latency = completion - start;
  stats_.repair_latency_total += repair_latency;
  stats_.repair_latency_max = std::max(stats_.repair_latency_max,
                                       repair_latency);
}

std::vector<PeerId> ChurnDriver::stale_peers() const {
  std::vector<PeerId> out;
  for (PeerId p : net_.alive_peers()) {
    if (is_stale(p)) {
      out.push_back(p);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool ChurnDriver::is_in_flight(std::uint64_t payload) const {
  const auto it = in_flight_.find(payload);
  return it != in_flight_.end() && it->second > sim_.now();
}

std::size_t ChurnDriver::objects_in_flight() const {
  std::size_t n = 0;
  for (const auto& [payload, arrival] : in_flight_) {
    if (arrival > sim_.now()) {
      ++n;
    }
  }
  return n;
}

void ChurnDriver::record_query(bool stale, std::uint64_t detours, bool failed,
                               std::uint64_t missed) {
  stats_.record_query(stale, detours, failed, missed);
}

ChurnDriver::StaleRoute ChurnDriver::route(PeerId from,
                                           const kautz::KautzString& object_id) {
  StaleRoute out;
  out.route = net_.route(from, object_id);
  net::Transport& transport = net_.transport();
  const sim::WalkReplay replay = sim::replay_walk_priced(
      out.route.path, sim_.now(), config_.max_detours, windows_, transport,
      sim_, !config_.zero_delay && transport.queueing_active());
  out.stats = replay.stats;
  out.stale = replay.stale;
  out.detours = replay.detours;
  out.failed = replay.failed;
  if (out.failed) {
    out.route.owner = kNoPeer;
  }
  record_query(out.stale, out.detours, out.failed, 0);
  return out;
}

}  // namespace armada::fissione
