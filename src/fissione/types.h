// Shared FISSIONE types.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kautz/kautz_string.h"
#include "sim/metrics.h"

namespace armada::fissione {

/// Dense peer handle; stable for the lifetime of a peer, reused only after
/// the peer has left the overlay.
using PeerId = std::uint32_t;

inline constexpr PeerId kNoPeer = static_cast<PeerId>(-1);

/// An application object published into the DHT. `payload` is an opaque
/// application handle (Armada uses it to index its object table).
struct StoredObject {
  kautz::KautzString object_id;
  std::uint64_t payload = 0;

  friend bool operator==(const StoredObject&, const StoredObject&) = default;
};

/// Per-peer count of query-plane messages served (received), recorded by
/// the search layers through FissioneNetwork::record_service. Load-balance
/// benches read it to locate hot peers under skewed query workloads.
using ServiceLoadMap = std::unordered_map<PeerId, std::uint64_t>;

/// Result of routing an exact-match request.
struct RouteResult {
  PeerId owner = kNoPeer;
  std::uint32_t hops = 0;
  /// Sum of per-link latencies along `path` under the network's latency
  /// model; equals `hops` under the default ConstantHop model.
  double latency = 0.0;
  std::vector<PeerId> path;  ///< includes source and owner

  /// The walk in the shared query-stats currency (messages == delay ==
  /// hops, transport-priced latency) — what layers composing FISSIONE
  /// routing with other schemes consume.
  sim::QueryStats stats() const {
    sim::QueryStats s;
    s.messages = hops;
    s.delay = hops;
    s.latency = latency;
    return s;
  }
};

}  // namespace armada::fissione
