// Shared FISSIONE types.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "kautz/kautz_string.h"
#include "sim/metrics.h"

namespace armada::fissione {

/// Dense peer handle; stable for the lifetime of a peer, reused only after
/// the peer has left the overlay.
using PeerId = std::uint32_t;

inline constexpr PeerId kNoPeer = static_cast<PeerId>(-1);

/// An application object published into the DHT. `payload` is an opaque
/// application handle (Armada uses it to index its object table).
struct StoredObject {
  kautz::KautzString object_id;
  std::uint64_t payload = 0;

  friend bool operator==(const StoredObject&, const StoredObject&) = default;
};

/// Per-peer count of query-plane messages served (received), recorded by
/// the search layers through FissioneNetwork::record_service. Load-balance
/// benches read it to locate hot peers under skewed query workloads.
///
/// PeerIds are dense, so this is a plain vector indexed by PeerId — one
/// predictable store on the query hot path instead of an unordered_map
/// probe — wrapped in the map-like surface (operator[], find/end iteration
/// over recorded peers) the benches read. Iteration order is ascending
/// PeerId, deterministic by construction.
class ServiceLoadMap {
 public:
  using value_type = std::pair<PeerId, std::uint64_t>;

  std::uint64_t& operator[](PeerId p) {
    if (p >= counts_.size()) {
      counts_.resize(static_cast<std::size_t>(p) + 1, 0);
    }
    return counts_[p];
  }

  /// Forward iterator over peers with a nonzero count (entries are only
  /// ever created by incrementing, so zero means "never recorded").
  class const_iterator {
   public:
    const_iterator(const std::vector<std::uint64_t>* counts, std::size_t i)
        : counts_(counts), i_(i) {
      skip_zeros();
    }
    const value_type& operator*() const {
      cur_ = {static_cast<PeerId>(i_), (*counts_)[i_]};
      return cur_;
    }
    const value_type* operator->() const { return &operator*(); }
    const_iterator& operator++() {
      ++i_;
      skip_zeros();
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return i_ == other.i_;
    }

   private:
    void skip_zeros() {
      while (i_ < counts_->size() && (*counts_)[i_] == 0) {
        ++i_;
      }
    }

    const std::vector<std::uint64_t>* counts_;
    std::size_t i_;
    mutable value_type cur_{};
  };

  const_iterator begin() const { return {&counts_, 0}; }
  const_iterator end() const { return {&counts_, counts_.size()}; }
  const_iterator find(PeerId p) const {
    if (p < counts_.size() && counts_[p] != 0) {
      return {&counts_, p};
    }
    return end();
  }

  /// Cumulative count for one peer (0 when never recorded).
  std::uint64_t count(PeerId p) const {
    return p < counts_.size() ? counts_[p] : 0;
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (std::uint64_t c : counts_) {
      n += c != 0 ? 1 : 0;
    }
    return n;
  }
  bool empty() const { return size() == 0; }
  void clear() { counts_.clear(); }

  /// Forget one peer's count. PeerIds are recycled after a departure, so
  /// without this a joiner inheriting a crashed peer's id would also
  /// inherit its service history — FissioneNetwork calls it whenever an id
  /// is released while a map is attached.
  void reset(PeerId p) {
    if (p < counts_.size()) {
      counts_[p] = 0;
    }
  }

 private:
  std::vector<std::uint64_t> counts_;
};

/// Result of routing an exact-match request.
struct RouteResult {
  PeerId owner = kNoPeer;
  std::uint32_t hops = 0;
  /// Sum of per-link latencies along `path` under the network's latency
  /// model; equals `hops` under the default ConstantHop model.
  double latency = 0.0;
  std::vector<PeerId> path;  ///< includes source and owner

  /// The walk in the shared query-stats currency (messages == delay ==
  /// hops, transport-priced latency) — what layers composing FISSIONE
  /// routing with other schemes consume.
  sim::QueryStats stats() const {
    sim::QueryStats s;
    s.messages = hops;
    s.delay = hops;
    s.latency = latency;
    return s;
  }
};

}  // namespace armada::fissione
