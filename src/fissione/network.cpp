#include "fissione/network.h"

#include <algorithm>
#include <unordered_set>

#include "kautz/kautz_space.h"
#include "util/check.h"
#include "util/hash.h"

namespace armada::fissione {

using kautz::KautzString;

namespace {

std::vector<PeerId> bootstrap_ids(std::uint8_t base) {
  std::vector<PeerId> ids(base + 1u);
  for (std::uint8_t c = 0; c <= base; ++c) {
    ids[c] = c;
  }
  return ids;
}

void erase_value(std::vector<PeerId>& v, PeerId x) {
  v.erase(std::remove(v.begin(), v.end(), x), v.end());
}

}  // namespace

FissioneNetwork::FissioneNetwork(Config config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      tree_(config.base, bootstrap_ids(config.base)) {
  ARMADA_CHECK(config_.base >= 1);
  ARMADA_CHECK_MSG(config_.object_id_length >= 8,
                   "ObjectIDs must be much longer than PeerIDs");
  peers_.resize(config_.base + 1u);
  alive_pos_.resize(config_.base + 1u);
  for (std::uint8_t c = 0; c <= config_.base; ++c) {
    peers_[c].peer_id = tree_.label_of(c);
    peers_[c].alive = true;
    alive_pos_[c] = alive_.size();
    alive_.push_back(c);
  }
  std::vector<PeerId> all = alive_;
  refresh_neighbors(std::move(all));
}

FissioneNetwork FissioneNetwork::build(std::size_t n, std::uint64_t seed,
                                       Config config) {
  ARMADA_CHECK(n >= config.base + 1u);
  FissioneNetwork net(config, seed);
  while (net.num_peers() < n) {
    net.join();
  }
  return net;
}

FissioneNetwork FissioneNetwork::build(std::size_t n, std::uint64_t seed) {
  return build(n, seed, Config{});
}

const Peer& FissioneNetwork::peer(PeerId id) const {
  ARMADA_CHECK(id < peers_.size() && peers_[id].alive);
  return peers_[id];
}

PeerId FissioneNetwork::random_peer() {
  return alive_[rng_.next_index(alive_.size())];
}

PeerId FissioneNetwork::allocate_peer() {
  if (!free_ids_.empty()) {
    const PeerId id = free_ids_.back();
    free_ids_.pop_back();
    return id;
  }
  peers_.emplace_back();
  alive_pos_.push_back(0);
  return static_cast<PeerId>(peers_.size() - 1);
}

void FissioneNetwork::release_peer(PeerId id) {
  peers_[id] = Peer{};
  free_ids_.push_back(id);
}

std::vector<PeerId> FissioneNetwork::compute_out_neighbors(PeerId id) const {
  const KautzString& u = peers_[id].peer_id;
  std::vector<PeerId> out;
  if (u.length() == 1) {
    // K(d,1) edges: U = u1 -> beta for every beta != u1.
    for (std::uint8_t beta = 0; beta <= config_.base; ++beta) {
      if (beta == u.digit(0)) {
        continue;
      }
      KautzString prefix{config_.base};
      prefix.push_back(beta);
      for (PeerId p : tree_.cover_of_prefix(prefix)) {
        out.push_back(p);
      }
    }
  } else {
    out = tree_.cover_of_prefix(u.drop_front());
  }
  std::sort(out.begin(), out.end(), [this](PeerId a, PeerId b) {
    return peers_[a].peer_id < peers_[b].peer_id;
  });
  return out;
}

std::vector<PeerId> FissioneNetwork::refresh_neighbors(
    std::vector<PeerId> affected) {
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  std::vector<PeerId> refreshed;
  for (PeerId p : affected) {
    if (p >= peers_.size() || !peers_[p].alive) {
      continue;
    }
    for (PeerId t : peers_[p].out_neighbors) {
      if (t < peers_.size() && peers_[t].alive) {
        erase_value(peers_[t].in_neighbors, p);
      }
    }
    peers_[p].out_neighbors = compute_out_neighbors(p);
    for (PeerId t : peers_[p].out_neighbors) {
      peers_[t].in_neighbors.push_back(p);
    }
    refreshed.push_back(p);
  }
  return refreshed;
}

PeerId FissioneNetwork::walk_to_local_min(PeerId start, std::uint32_t* hops,
                                          double* latency) const {
  PeerId cur = start;
  for (;;) {
    PeerId best = cur;
    std::size_t best_len = peers_[cur].peer_id.length();
    auto consider = [&](PeerId cand) {
      if (peers_[cand].peer_id.length() < best_len) {
        best = cand;
        best_len = peers_[cand].peer_id.length();
      }
    };
    for (PeerId n : peers_[cur].out_neighbors) {
      consider(n);
    }
    for (PeerId n : peers_[cur].in_neighbors) {
      consider(n);
    }
    if (best == cur) {
      return cur;
    }
    if (hops != nullptr) {
      ++*hops;
    }
    if (latency != nullptr) {
      *latency += transport_.link(cur, best);
    }
    cur = best;
  }
}

PeerId FissioneNetwork::split_peer(PeerId victim, MembershipReport* report) {
  // Collect whose out-lists can change: the victim's in-neighbors plus the
  // two peers at the split site.
  std::vector<PeerId> affected = peers_[victim].in_neighbors;
  affected.push_back(victim);

  const PeerId joiner = allocate_peer();
  tree_.split(victim, joiner);
  peers_[victim].peer_id = tree_.label_of(victim);
  peers_[joiner].peer_id = tree_.label_of(joiner);
  peers_[joiner].alive = true;
  alive_pos_[joiner] = alive_.size();
  alive_.push_back(joiner);

  // Redistribute the victim's objects between the two halves.
  std::vector<StoredObject> keep;
  std::vector<std::uint64_t> moved;
  for (StoredObject& obj : peers_[victim].store) {
    if (peers_[victim].peer_id.is_prefix_of(obj.object_id)) {
      keep.push_back(std::move(obj));
    } else {
      moved.push_back(obj.payload);
      peers_[joiner].store.push_back(std::move(obj));
    }
  }
  peers_[victim].store = std::move(keep);

  affected.push_back(joiner);
  std::vector<PeerId> rewired = refresh_neighbors(std::move(affected));
  if (report != nullptr) {
    report->origin = joiner;
    report->joiner = joiner;
    report->rewired = std::move(rewired);
    if (!moved.empty()) {
      report->handoffs.push_back(
          MembershipReport::Handoff{victim, joiner, std::move(moved)});
    }
  }
  return joiner;
}

FissioneNetwork::JoinStats FissioneNetwork::join(MembershipReport* report) {
  const KautzString target = random_object_id();
  const RouteResult route_result = route(random_peer(), target);
  std::uint32_t walk_hops = 0;
  double walk_latency = 0.0;
  const PeerId site =
      walk_to_local_min(route_result.owner, &walk_hops, &walk_latency);
  const PeerId joiner = split_peer(site, report);
  if (report != nullptr) {
    report->placement_hops = route_result.hops + walk_hops;
    report->placement_latency = route_result.latency + walk_latency;
  }
  return JoinStats{joiner, route_result.hops};
}

namespace {

std::vector<std::uint64_t> store_payloads(
    const std::vector<StoredObject>& store) {
  std::vector<std::uint64_t> payloads;
  payloads.reserve(store.size());
  for (const StoredObject& obj : store) {
    payloads.push_back(obj.payload);
  }
  return payloads;
}

}  // namespace

std::size_t FissioneNetwork::remove_peer(PeerId leaving, bool transfer,
                                         MembershipReport* report) {
  ARMADA_CHECK(leaving < peers_.size() && peers_[leaving].alive);
  ARMADA_CHECK_MSG(num_peers() > config_.base + 1u,
                   "cannot drop below the bootstrap size");

  std::size_t dropped = 0;
  if (!transfer) {
    dropped = peers_[leaving].store.size();
    peers_[leaving].store.clear();
  }
  if (report != nullptr) {
    report->objects_dropped = dropped;
  }

  auto drop_from_alive = [this](PeerId p) {
    const std::size_t pos = alive_pos_[p];
    alive_[pos] = alive_.back();
    alive_pos_[alive_[pos]] = pos;
    alive_.pop_back();
  };
  auto record_handoff = [report](PeerId from, PeerId to,
                                 std::vector<std::uint64_t> payloads) {
    if (report != nullptr && !payloads.empty()) {
      report->handoffs.push_back(
          MembershipReport::Handoff{from, to, std::move(payloads)});
    }
  };

  // A local sibling merge is only safe at maximum depth: merging a pair at
  // depth d produces a peer at d-1, and a neighbor at d+1 would then violate
  // the neighborhood invariant. A max-depth leaf is always in a leaf pair
  // and has no deeper neighbors, so the invariant survives.
  const std::size_t max_depth = tree_.depth_of(tree_.deepest_leaf());
  if (tree_.in_leaf_pair(leaving) && tree_.depth_of(leaving) == max_depth) {
    // Fusion: the sibling absorbs the parent zone.
    const PeerId sibling = tree_.pair_sibling(leaving);
    std::vector<PeerId> affected = peers_[leaving].in_neighbors;
    affected.insert(affected.end(), peers_[sibling].in_neighbors.begin(),
                    peers_[sibling].in_neighbors.end());
    affected.push_back(sibling);

    record_handoff(leaving, sibling, store_payloads(peers_[leaving].store));
    for (StoredObject& obj : peers_[leaving].store) {
      peers_[sibling].store.push_back(std::move(obj));
    }
    for (PeerId t : peers_[leaving].out_neighbors) {
      erase_value(peers_[t].in_neighbors, leaving);
    }
    tree_.merge_pair(leaving, sibling);
    peers_[sibling].peer_id = tree_.label_of(sibling);
    drop_from_alive(leaving);
    release_peer(leaving);
    std::vector<PeerId> rewired = refresh_neighbors(std::move(affected));
    if (report != nullptr) {
      report->origin = sibling;
      report->rewired = std::move(rewired);
    }
    return dropped;
  }

  // Takeover: merge the deepest leaf pair (A, B); B absorbs their parent
  // zone and A relocates into the leaving peer's zone.
  const PeerId a = tree_.deepest_leaf();
  ARMADA_CHECK(tree_.in_leaf_pair(a));  // a max-depth leaf's siblings are leaves
  const PeerId b = tree_.pair_sibling(a);
  ARMADA_CHECK(a != leaving && b != leaving);

  std::vector<PeerId> affected = peers_[leaving].in_neighbors;
  affected.insert(affected.end(), peers_[a].in_neighbors.begin(),
                  peers_[a].in_neighbors.end());
  affected.insert(affected.end(), peers_[b].in_neighbors.begin(),
                  peers_[b].in_neighbors.end());
  affected.push_back(a);
  affected.push_back(b);

  record_handoff(a, b, store_payloads(peers_[a].store));
  for (StoredObject& obj : peers_[a].store) {
    peers_[b].store.push_back(std::move(obj));
  }
  peers_[a].store.clear();
  tree_.merge_pair(a, b);
  peers_[b].peer_id = tree_.label_of(b);

  // Relocate A into the departed zone.
  tree_.replace_leaf_peer(leaving, a);
  peers_[a].peer_id = tree_.label_of(a);
  record_handoff(leaving, a, store_payloads(peers_[leaving].store));
  peers_[a].store = std::move(peers_[leaving].store);
  for (PeerId t : peers_[leaving].out_neighbors) {
    erase_value(peers_[t].in_neighbors, leaving);
  }
  drop_from_alive(leaving);
  release_peer(leaving);
  std::vector<PeerId> rewired = refresh_neighbors(std::move(affected));
  if (report != nullptr) {
    report->origin = a;
    report->rewired = std::move(rewired);
  }
  return dropped;
}

void FissioneNetwork::leave(PeerId peer, MembershipReport* report) {
  remove_peer(peer, true, report);
}

std::size_t FissioneNetwork::crash(PeerId peer, MembershipReport* report) {
  return remove_peer(peer, false, report);
}

PeerId FissioneNetwork::owner_of(const KautzString& object_id) const {
  return tree_.owner_of(object_id);
}

void FissioneNetwork::publish(const KautzString& object_id,
                              std::uint64_t payload) {
  ARMADA_CHECK(object_id.length() == config_.object_id_length);
  peers_[owner_of(object_id)].store.push_back(StoredObject{object_id, payload});
}

PeerId FissioneNetwork::proximity_next_hop(PeerId cur,
                                           const KautzString& object_id,
                                           const KautzString& target) const {
  // Remaining shift distance of a peer P toward the object:
  // rem(P) = |PeerID(P)| - (longest suffix of PeerID(P) prefixing the
  // object) — zero exactly at the owner. Every neighbor link (out *or* in:
  // both are maintained locally and carry overlay messages) whose endpoint
  // strictly reduces rem is a viable next hop, and because rem drops by at
  // least one per hop the walk still terminates within |PeerID(issuer)|
  // hops — the paper's delay bound. The canonical prefix-of-target
  // out-neighbor always reaches rem(cur) - 1 (its suffix extends the
  // alignment by its own extension symbols), so a viable candidate always
  // exists. Candidates with equal minimal rem are structurally equivalent;
  // we break that tie toward the cheapest link under the current latency
  // model (deterministically: first-listed neighbor on equal latency).
  // In-neighbors occasionally align *better* than the canonical hop, so the
  // flag can shorten walks as well as cheapen them.
  const KautzString& id = peers_[cur].peer_id;
  const std::size_t cur_rem = id.length() - id.longest_suffix_prefix(object_id);
  PeerId best = kNoPeer;
  std::size_t best_rem = 0;
  sim::Time best_link = 0.0;
  const auto consider = [&](PeerId n) {
    const KautzString& nid = peers_[n].peer_id;
    const std::size_t rem =
        nid.length() - nid.longest_suffix_prefix(object_id);
    if (rem >= cur_rem) {
      return;  // no structural progress over this link
    }
    const sim::Time link = transport_.link(cur, n);
    if (best == kNoPeer || rem < best_rem ||
        (rem == best_rem && link < best_link)) {
      best = n;
      best_rem = rem;
      best_link = link;
    }
  };
  for (PeerId n : peers_[cur].out_neighbors) {
    consider(n);
  }
  for (PeerId n : peers_[cur].in_neighbors) {
    consider(n);
  }
  ARMADA_CHECK_MSG(best != kNoPeer,
                   "proximity routing made no progress toward "
                       << target.to_string());
  return best;
}

RouteResult FissioneNetwork::route(PeerId from,
                                   const KautzString& object_id) const {
  ARMADA_CHECK(from < peers_.size() && peers_[from].alive);
  ARMADA_CHECK(object_id.length() == config_.object_id_length);

  RouteResult result;
  result.path.push_back(from);
  PeerId cur = from;
  const std::size_t hop_limit = 4 * config_.object_id_length;
  while (!peers_[cur].peer_id.is_prefix_of(object_id)) {
    const KautzString& id = peers_[cur].peer_id;
    const std::size_t j = id.longest_suffix_prefix(object_id);
    // Shift routing: advance to the owner of id[1..] ++ object_id[j..].
    const KautzString target =
        id.drop_front().concat(object_id.suffix(object_id.length() - j));
    PeerId next = kNoPeer;
    if (config_.proximity_next_hop) {
      next = proximity_next_hop(cur, object_id, target);
    } else {
      for (PeerId n : peers_[cur].out_neighbors) {
        if (peers_[n].peer_id.is_prefix_of(target)) {
          next = n;
          break;
        }
      }
    }
    ARMADA_CHECK_MSG(next != kNoPeer, "routing stuck at "
                                          << id.to_string() << " toward "
                                          << object_id.to_string());
    cur = next;
    ++result.hops;
    result.path.push_back(cur);
    ARMADA_CHECK_MSG(result.hops <= hop_limit, "routing loop suspected");
  }
  result.owner = cur;
  result.latency = transport_.path_latency(result.path);
  return result;
}

std::vector<std::uint64_t> FissioneNetwork::lookup(
    PeerId from, const KautzString& object_id, RouteResult* route_out) const {
  const RouteResult r = route(from, object_id);
  std::vector<std::uint64_t> payloads;
  for (const StoredObject& obj : peers_[r.owner].store) {
    if (obj.object_id == object_id) {
      payloads.push_back(obj.payload);
    }
  }
  if (route_out != nullptr) {
    *route_out = r;
  }
  return payloads;
}

KautzString FissioneNetwork::kautz_hash(std::string_view key) const {
  // FNV-1a to seed, then an LCG stream picks one allowed symbol per step.
  std::uint64_t h = fnv1a64(key);
  KautzString out{config_.base};
  for (std::size_t i = 0; i < config_.object_id_length; ++i) {
    h = h * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t draw = h >> 33;
    if (i == 0) {
      out.push_back(static_cast<std::uint8_t>(draw % (config_.base + 1u)));
    } else {
      out.push_back(
          kautz::index_symbol(draw % config_.base, out.back()));
    }
  }
  return out;
}

KautzString FissioneNetwork::random_object_id() {
  return kautz::random_string(rng_, config_.base, config_.object_id_length);
}

void FissioneNetwork::check_invariants() const {
  tree_.check_structure();
  ARMADA_CHECK(tree_.num_leaves() == alive_.size());
  for (PeerId id : alive_) {
    const Peer& p = peers_[id];
    ARMADA_CHECK(p.alive);
    ARMADA_CHECK(tree_.hosts(id));
    ARMADA_CHECK_MSG(tree_.label_of(id) == p.peer_id,
                     "peer " << id << " label mismatch");
    // Out-neighbors match a fresh recomputation.
    ARMADA_CHECK_MSG(p.out_neighbors == compute_out_neighbors(id),
                     "stale out-neighbors at peer " << id);
    // Out-neighbor IDs have the form u2...ub q1...qm.
    for (PeerId n : p.out_neighbors) {
      const KautzString& v = peers_[n].peer_id;
      if (p.peer_id.length() >= 2) {
        const KautzString shifted = p.peer_id.drop_front();
        ARMADA_CHECK_MSG(
            shifted.is_prefix_of(v) || v.is_prefix_of(shifted),
            "edge " << p.peer_id.to_string() << " -> " << v.to_string());
      }
    }
    // Transpose consistency.
    for (PeerId n : p.out_neighbors) {
      const auto& in = peers_[n].in_neighbors;
      ARMADA_CHECK(std::find(in.begin(), in.end(), id) != in.end());
    }
    for (PeerId n : p.in_neighbors) {
      const auto& out = peers_[n].out_neighbors;
      ARMADA_CHECK(std::find(out.begin(), out.end(), id) != out.end());
    }
    // Objects are owned by their holder.
    for (const StoredObject& obj : p.store) {
      ARMADA_CHECK_MSG(p.peer_id.is_prefix_of(obj.object_id),
                       "misplaced object at peer " << id);
    }
  }
}

std::size_t FissioneNetwork::max_neighbor_length_gap() const {
  std::size_t gap = 0;
  for (PeerId id : alive_) {
    const std::size_t lu = peers_[id].peer_id.length();
    for (PeerId n : peers_[id].out_neighbors) {
      const std::size_t lv = peers_[n].peer_id.length();
      gap = std::max(gap, lu > lv ? lu - lv : lv - lu);
    }
  }
  return gap;
}

double FissioneNetwork::average_degree() const {
  std::uint64_t total = 0;
  for (PeerId id : alive_) {
    total += peers_[id].out_neighbors.size() + peers_[id].in_neighbors.size();
  }
  return static_cast<double>(total) / static_cast<double>(alive_.size());
}

Histogram FissioneNetwork::peer_id_length_histogram() const {
  Histogram h;
  for (PeerId id : alive_) {
    h.add(static_cast<std::int64_t>(peers_[id].peer_id.length()));
  }
  return h;
}

std::size_t FissioneNetwork::total_objects() const {
  std::size_t n = 0;
  for (PeerId id : alive_) {
    n += peers_[id].store.size();
  }
  return n;
}

}  // namespace armada::fissione
