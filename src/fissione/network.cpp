#include "fissione/network.h"

#include <algorithm>

#include "kautz/kautz_space.h"
#include "util/check.h"
#include "util/hash.h"

namespace armada::fissione {

using kautz::KautzString;

namespace {

std::vector<PeerId> bootstrap_ids(std::uint8_t base) {
  std::vector<PeerId> ids(base + 1u);
  for (std::uint8_t c = 0; c <= base; ++c) {
    ids[c] = c;
  }
  return ids;
}

// Canonical order of delegation contents: prefix-restricted subsets stay
// contiguous and content equality is independent of collection order.
bool canonical_object_less(const StoredObject& a, const StoredObject& b) {
  if (a.object_id != b.object_id) {
    return a.object_id < b.object_id;
  }
  return a.payload < b.payload;
}

}  // namespace

FissioneNetwork::FissioneNetwork(Config config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      tree_(config.base, bootstrap_ids(config.base)) {
  ARMADA_CHECK(config_.base >= 1);
  ARMADA_CHECK_MSG(config_.object_id_length >= 8,
                   "ObjectIDs must be much longer than PeerIDs");
  const std::size_t n = config_.base + 1u;
  ids_.resize(n);
  alive_flags_.resize(n, 0);
  out_refs_.resize(n);
  in_refs_.resize(n);
  store_refs_.resize(n);
  alive_pos_.resize(n);
  for (std::uint8_t c = 0; c <= config_.base; ++c) {
    ids_[c] = tree_.label_of(c);
    alive_flags_[c] = 1;
    alive_pos_[c] = alive_.size();
    alive_.push_back(c);
  }
  std::vector<PeerId> all = alive_;
  refresh_neighbors(std::move(all));
}

FissioneNetwork FissioneNetwork::build(std::size_t n, std::uint64_t seed,
                                       Config config) {
  ARMADA_CHECK(n >= config.base + 1u);
  FissioneNetwork net(config, seed);
  while (net.num_peers() < n) {
    net.join();
  }
  return net;
}

FissioneNetwork FissioneNetwork::build(std::size_t n, std::uint64_t seed) {
  return build(n, seed, Config{});
}

FissioneNetwork FissioneNetwork::build_snapshot(std::size_t n,
                                                std::uint64_t seed,
                                                Config config) {
  ARMADA_CHECK(n >= config.base + 1u);
  FissioneNetwork net(config, seed);
  net.grow_snapshot(n);
  return net;
}

void FissioneNetwork::grow_snapshot(std::size_t n) {
  while (num_peers() < n) {
    // Same draws, same split site as join(): route() neither consumes RNG
    // nor influences the site — its endpoint is owner_of(target) — so the
    // routed placement walk is pure measurement and can be skipped.
    const KautzString target = random_object_id();
    (void)random_peer();  // join() draws the route source; stay aligned
    const PeerId site = walk_to_local_min(owner_of(target));
    split_peer(site, nullptr);
  }
}

Peer FissioneNetwork::peer(PeerId id) const {
  ARMADA_CHECK(id < ids_.size() && alive_flags_[id] != 0);
  return Peer{ids_[id], out_of(id), in_of(id), store_of(id), true};
}

PeerId FissioneNetwork::random_peer() {
  return alive_[rng_.next_index(alive_.size())];
}

PeerId FissioneNetwork::allocate_peer() {
  if (!free_ids_.empty()) {
    const PeerId id = free_ids_.back();
    free_ids_.pop_back();
    return id;
  }
  ids_.emplace_back();
  alive_flags_.push_back(0);
  out_refs_.emplace_back();
  in_refs_.emplace_back();
  store_refs_.emplace_back();
  alive_pos_.push_back(0);
  return static_cast<PeerId>(ids_.size() - 1);
}

void FissioneNetwork::release_peer(PeerId id) {
  ids_[id] = KautzString{config_.base};
  alive_flags_[id] = 0;
  edges_.release(out_refs_[id]);
  edges_.release(in_refs_[id]);
  stores_.release(store_refs_[id]);
  free_ids_.push_back(id);
  if (service_load_ != nullptr) {
    // The id will be recycled: a joiner must not inherit this peer's
    // service history (it would look instantly hot to the rebalancer).
    service_load_->reset(id);
  }
}

std::vector<StoredObject> FissioneNetwork::take_store(PeerId id) {
  const std::span<StoredObject> sp = stores_.mut_view(store_refs_[id]);
  std::vector<StoredObject> out;
  out.reserve(sp.size());
  for (StoredObject& obj : sp) {
    out.push_back(std::move(obj));
  }
  stores_.clear(store_refs_[id]);
  return out;
}

std::vector<PeerId> FissioneNetwork::compute_out_neighbors(PeerId id) const {
  const KautzString& u = ids_[id];
  std::vector<PeerId> out;
  if (u.length() == 1) {
    // K(d,1) edges: U = u1 -> beta for every beta != u1.
    for (std::uint8_t beta = 0; beta <= config_.base; ++beta) {
      if (beta == u.digit(0)) {
        continue;
      }
      KautzString prefix{config_.base};
      prefix.push_back(beta);
      for (PeerId p : tree_.cover_of_prefix(prefix)) {
        out.push_back(p);
      }
    }
  } else {
    out = tree_.cover_of_prefix(u.drop_front());
  }
  std::sort(out.begin(), out.end(), [this](PeerId a, PeerId b) {
    return ids_[a] < ids_[b];
  });
  return out;
}

std::vector<PeerId> FissioneNetwork::refresh_neighbors(
    std::vector<PeerId> affected) {
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  std::vector<PeerId> refreshed;
  for (PeerId p : affected) {
    if (p >= ids_.size() || !alive(p)) {
      continue;
    }
    // Detach p from its old out-neighbors' in-lists. erase_value never
    // grows the arena, so walking p's out-span while editing other blocks
    // is safe.
    for (PeerId t : out_of(p)) {
      if (t < ids_.size() && alive(t)) {
        edges_.erase_value(in_refs_[t], p);
      }
    }
    std::vector<PeerId> fresh = compute_out_neighbors(p);
    for (PeerId t : fresh) {
      edges_.push_back(in_refs_[t], p);  // never t == p: Kautz, no self-loops
    }
    edges_.assign(out_refs_[p], std::move(fresh));
    refreshed.push_back(p);
  }
  return refreshed;
}

PeerId FissioneNetwork::walk_to_local_min(PeerId start, std::uint32_t* hops,
                                          double* latency) const {
  PeerId cur = start;
  for (;;) {
    PeerId best = cur;
    std::size_t best_len = ids_[cur].length();
    auto consider = [&](PeerId cand) {
      if (ids_[cand].length() < best_len) {
        best = cand;
        best_len = ids_[cand].length();
      }
    };
    for (PeerId n : out_of(cur)) {
      consider(n);
    }
    for (PeerId n : in_of(cur)) {
      consider(n);
    }
    if (best == cur) {
      return cur;
    }
    if (hops != nullptr) {
      ++*hops;
    }
    if (latency != nullptr) {
      *latency += transport_.link(cur, best);
    }
    cur = best;
  }
}

PeerId FissioneNetwork::split_peer(PeerId victim, MembershipReport* report) {
  // Collect whose out-lists can change: the victim's in-neighbors plus the
  // two peers at the split site.
  std::vector<PeerId> affected(in_of(victim).begin(), in_of(victim).end());
  affected.push_back(victim);

  const PeerId joiner = allocate_peer();
  tree_.split(victim, joiner);
  ids_[victim] = tree_.label_of(victim);
  ids_[joiner] = tree_.label_of(joiner);
  alive_flags_[joiner] = 1;
  alive_pos_[joiner] = alive_.size();
  alive_.push_back(joiner);

  // Redistribute the victim's objects between the two halves. The store is
  // materialized out of the arena first: pushing the joiner's half back in
  // can grow the pool, which would invalidate a live span of the source.
  std::vector<StoredObject> old_store = take_store(victim);
  std::vector<StoredObject> keep;
  std::vector<std::uint64_t> moved;
  for (StoredObject& obj : old_store) {
    if (ids_[victim].is_prefix_of(obj.object_id)) {
      keep.push_back(std::move(obj));
    } else {
      moved.push_back(obj.payload);
      stores_.push_back(store_refs_[joiner], std::move(obj));
    }
  }
  stores_.assign(store_refs_[victim], std::move(keep));

  affected.push_back(joiner);
  std::vector<PeerId> rewired = refresh_neighbors(std::move(affected));
  if (report != nullptr) {
    report->origin = joiner;
    report->joiner = joiner;
    report->rewired = std::move(rewired);
    if (!moved.empty()) {
      report->handoffs.push_back(
          MembershipReport::Handoff{victim, joiner, std::move(moved)});
    }
  }
  return joiner;
}

FissioneNetwork::JoinStats FissioneNetwork::join(MembershipReport* report) {
  const KautzString target = random_object_id();
  const RouteResult route_result = route(random_peer(), target);
  std::uint32_t walk_hops = 0;
  double walk_latency = 0.0;
  const PeerId site =
      walk_to_local_min(route_result.owner, &walk_hops, &walk_latency);
  const PeerId joiner = split_peer(site, report);
  if (report != nullptr) {
    report->placement_hops = route_result.hops + walk_hops;
    report->placement_latency = route_result.latency + walk_latency;
  }
  return JoinStats{joiner, route_result.hops};
}

namespace {

std::vector<std::uint64_t> store_payloads(
    std::span<const StoredObject> store) {
  std::vector<std::uint64_t> payloads;
  payloads.reserve(store.size());
  for (const StoredObject& obj : store) {
    payloads.push_back(obj.payload);
  }
  return payloads;
}

}  // namespace

std::size_t FissioneNetwork::remove_peer(PeerId leaving, bool transfer,
                                         MembershipReport* report) {
  ARMADA_CHECK(leaving < ids_.size() && alive(leaving));
  ARMADA_CHECK_MSG(num_peers() > config_.base + 1u,
                   "cannot drop below the bootstrap size");

  std::size_t dropped = 0;
  if (!transfer) {
    dropped = store_of(leaving).size();
    stores_.clear(store_refs_[leaving]);
  }
  if (report != nullptr) {
    report->objects_dropped = dropped;
  }

  auto drop_from_alive = [this](PeerId p) {
    const std::size_t pos = alive_pos_[p];
    alive_[pos] = alive_.back();
    alive_pos_[alive_[pos]] = pos;
    alive_.pop_back();
  };
  auto record_handoff = [report](PeerId from, PeerId to,
                                 std::vector<std::uint64_t> payloads) {
    if (report != nullptr && !payloads.empty()) {
      report->handoffs.push_back(
          MembershipReport::Handoff{from, to, std::move(payloads)});
    }
  };
  auto detach_out_edges = [this](PeerId p) {
    for (PeerId t : out_of(p)) {
      edges_.erase_value(in_refs_[t], p);
    }
  };
  auto append_store = [this](PeerId to, std::vector<StoredObject> objs) {
    for (StoredObject& obj : objs) {
      stores_.push_back(store_refs_[to], std::move(obj));
    }
  };
  // Zone surgery can hand a host (part of) the very range it hosts — a
  // sibling merge shortens its PeerID, a takeover relocates it. Such a
  // delegation dissolves back to the structural owners (handoffs record
  // the transfers; the host's own share moves locally for free), restoring
  // the host-disjointness invariant. Runs after the tree is final.
  auto reconcile_hosted = [this, &record_handoff] {
    for (auto it = delegations_.begin(); it != delegations_.end();) {
      Delegation& d = it->second;
      const KautzString& host_id = ids_[d.host];
      if (!host_id.is_prefix_of(d.range) && !d.range.is_prefix_of(host_id)) {
        ++it;
        continue;
      }
      std::map<PeerId, std::vector<std::uint64_t>> returned;
      for (StoredObject& obj : d.objects) {
        const PeerId owner = owner_of(obj.object_id);
        if (owner != d.host) {
          returned[owner].push_back(obj.payload);
        }
        stores_.push_back(store_refs_[owner], std::move(obj));
      }
      for (auto& [to, payloads] : returned) {
        record_handoff(d.host, to, std::move(payloads));
      }
      it = delegations_.erase(it);
    }
  };

  // Delegations hosted by the departing peer, resolved before the tree
  // surgery (owners are still the pre-departure ones): a graceful leave
  // hands every hosted object back to its structural owner — recorded as
  // handoffs so timed drivers price the transfers — while a crash drops
  // them with the host, exactly like the host's native store. Delegations
  // the departing peer merely *owns into* need nothing: entries are keyed
  // by range and owners are re-resolved at every use.
  if (!delegations_.empty()) {
    for (auto it = delegations_.begin(); it != delegations_.end();) {
      Delegation& d = it->second;
      if (d.host != leaving) {
        ++it;
        continue;
      }
      if (transfer) {
        std::map<PeerId, std::vector<std::uint64_t>> returned;
        for (StoredObject& obj : d.objects) {
          const PeerId owner = owner_of(obj.object_id);
          returned[owner].push_back(obj.payload);
          stores_.push_back(store_refs_[owner], std::move(obj));
        }
        for (auto& [to, payloads] : returned) {
          record_handoff(leaving, to, std::move(payloads));
        }
      } else {
        dropped += d.objects.size();
      }
      it = delegations_.erase(it);
    }
    if (report != nullptr) {
      report->objects_dropped = dropped;
    }
  }

  // A local sibling merge is only safe at maximum depth: merging a pair at
  // depth d produces a peer at d-1, and a neighbor at d+1 would then violate
  // the neighborhood invariant. A max-depth leaf is always in a leaf pair
  // and has no deeper neighbors, so the invariant survives.
  const std::size_t max_depth = tree_.depth_of(tree_.deepest_leaf());
  if (tree_.in_leaf_pair(leaving) && tree_.depth_of(leaving) == max_depth) {
    // Fusion: the sibling absorbs the parent zone.
    const PeerId sibling = tree_.pair_sibling(leaving);
    std::vector<PeerId> affected(in_of(leaving).begin(),
                                 in_of(leaving).end());
    affected.insert(affected.end(), in_of(sibling).begin(),
                    in_of(sibling).end());
    affected.push_back(sibling);

    std::vector<StoredObject> inherited = take_store(leaving);
    record_handoff(leaving, sibling, store_payloads(inherited));
    append_store(sibling, std::move(inherited));
    detach_out_edges(leaving);
    tree_.merge_pair(leaving, sibling);
    ids_[sibling] = tree_.label_of(sibling);
    drop_from_alive(leaving);
    release_peer(leaving);
    if (!delegations_.empty()) {
      reconcile_hosted();
    }
    std::vector<PeerId> rewired = refresh_neighbors(std::move(affected));
    if (report != nullptr) {
      report->origin = sibling;
      report->rewired = std::move(rewired);
    }
    return dropped;
  }

  // Takeover: merge the deepest leaf pair (A, B); B absorbs their parent
  // zone and A relocates into the leaving peer's zone.
  const PeerId a = tree_.deepest_leaf();
  ARMADA_CHECK(tree_.in_leaf_pair(a));  // a max-depth leaf's siblings are leaves
  const PeerId b = tree_.pair_sibling(a);
  ARMADA_CHECK(a != leaving && b != leaving);

  std::vector<PeerId> affected(in_of(leaving).begin(), in_of(leaving).end());
  affected.insert(affected.end(), in_of(a).begin(), in_of(a).end());
  affected.insert(affected.end(), in_of(b).begin(), in_of(b).end());
  affected.push_back(a);
  affected.push_back(b);

  std::vector<StoredObject> merged = take_store(a);
  record_handoff(a, b, store_payloads(merged));
  append_store(b, std::move(merged));
  tree_.merge_pair(a, b);
  ids_[b] = tree_.label_of(b);

  // Relocate A into the departed zone.
  tree_.replace_leaf_peer(leaving, a);
  ids_[a] = tree_.label_of(a);
  std::vector<StoredObject> relocated = take_store(leaving);
  record_handoff(leaving, a, store_payloads(relocated));
  stores_.assign(store_refs_[a], std::move(relocated));
  detach_out_edges(leaving);
  drop_from_alive(leaving);
  release_peer(leaving);
  if (!delegations_.empty()) {
    reconcile_hosted();
  }
  std::vector<PeerId> rewired = refresh_neighbors(std::move(affected));
  if (report != nullptr) {
    report->origin = a;
    report->rewired = std::move(rewired);
  }
  return dropped;
}

void FissioneNetwork::leave(PeerId peer, MembershipReport* report) {
  remove_peer(peer, true, report);
}

std::size_t FissioneNetwork::crash(PeerId peer, MembershipReport* report) {
  return remove_peer(peer, false, report);
}

PeerId FissioneNetwork::owner_of(const KautzString& object_id) const {
  return tree_.owner_of(object_id);
}

void FissioneNetwork::publish(const KautzString& object_id,
                              std::uint64_t payload) {
  ARMADA_CHECK(object_id.length() == config_.object_id_length);
  if (!delegations_.empty()) {
    // A publish into a migrated range lands at the host, keeping native
    // stores empty inside delegated ranges (the registry invariant).
    const auto it = covering_iter(object_id);
    if (it != delegations_.end()) {
      Delegation& d = it->second;
      StoredObject obj{object_id, payload};
      const auto pos =
          std::lower_bound(d.objects.begin(), d.objects.end(), obj,
                           canonical_object_less);
      d.objects.insert(pos, std::move(obj));
      return;
    }
  }
  stores_.push_back(store_refs_[owner_of(object_id)],
                    StoredObject{object_id, payload});
}

FissioneNetwork::DelegationMap::iterator FissioneNetwork::covering_iter(
    const KautzString& object_id) {
  // Prefix-free keys: any key strictly between a prefix of `object_id` and
  // `object_id` itself would have to extend that prefix, which prefix-
  // freeness forbids. So the only candidate is the greatest key <=
  // object_id.
  auto it = delegations_.upper_bound(object_id);
  if (it == delegations_.begin()) {
    return delegations_.end();
  }
  --it;
  return it->first.is_prefix_of(object_id) ? it : delegations_.end();
}

const FissioneNetwork::Delegation* FissioneNetwork::delegation_covering(
    const KautzString& object_id) const {
  auto* self = const_cast<FissioneNetwork*>(this);
  const auto it = self->covering_iter(object_id);
  return it == delegations_.end() ? nullptr : &it->second;
}

const FissioneNetwork::Delegation* FissioneNetwork::find_delegation(
    const KautzString& range) const {
  const auto it = delegations_.find(range);
  return it == delegations_.end() ? nullptr : &it->second;
}

std::span<const StoredObject> FissioneNetwork::delegation_segment(
    const Delegation& d, const KautzString& prefix) {
  // Extensions of `prefix` sort after it and before any id diverging above
  // it, so the matching run is [first id >= prefix, first id not extending).
  const auto first = std::partition_point(
      d.objects.begin(), d.objects.end(),
      [&prefix](const StoredObject& obj) { return obj.object_id < prefix; });
  const auto last = std::partition_point(
      first, d.objects.end(), [&prefix](const StoredObject& obj) {
        return prefix.is_prefix_of(obj.object_id);
      });
  return {first, last};
}

std::vector<StoredObject> FissioneNetwork::detach_range(
    const KautzString& range) {
  ARMADA_CHECK(!range.empty() && range.length() < config_.object_id_length);
  std::vector<StoredObject> out;
  for (PeerId p : tree_.cover_of_prefix(range)) {
    // A short range covers whole zones; a deep one carves one zone. Either
    // way the peer keeps exactly the objects outside the range.
    std::vector<StoredObject> keep;
    std::vector<StoredObject> store = take_store(p);
    for (StoredObject& obj : store) {
      if (range.is_prefix_of(obj.object_id)) {
        out.push_back(std::move(obj));
      } else {
        keep.push_back(std::move(obj));
      }
    }
    stores_.assign(store_refs_[p], std::move(keep));
  }
  std::sort(out.begin(), out.end(), canonical_object_less);
  return out;
}

void FissioneNetwork::delegate_range(const KautzString& range, PeerId host,
                                     std::vector<StoredObject> objects) {
  ARMADA_CHECK(!range.empty() && range.length() < config_.object_id_length);
  ARMADA_CHECK_MSG(is_alive(host), "delegation host must be alive");
  const KautzString& host_id = ids_[host];
  ARMADA_CHECK_MSG(
      !host_id.is_prefix_of(range) && !range.is_prefix_of(host_id),
      "delegation host must not own part of the range");
  for (const auto& [existing, d] : delegations_) {
    ARMADA_CHECK_MSG(
        !existing.is_prefix_of(range) && !range.is_prefix_of(existing),
        "delegated ranges must stay pairwise prefix-free");
  }
  std::sort(objects.begin(), objects.end(), canonical_object_less);
  for (const StoredObject& obj : objects) {
    ARMADA_CHECK(range.is_prefix_of(obj.object_id));
  }
  delegations_.emplace(range, Delegation{range, host, std::move(objects)});
}

std::vector<StoredObject> FissioneNetwork::revoke_delegation(
    const KautzString& range) {
  const auto it = delegations_.find(range);
  ARMADA_CHECK_MSG(it != delegations_.end(), "revoking unknown delegation");
  std::vector<StoredObject> out = std::move(it->second.objects);
  delegations_.erase(it);
  return out;
}

void FissioneNetwork::set_delegation_host(const KautzString& range,
                                          PeerId host) {
  const auto it = delegations_.find(range);
  ARMADA_CHECK_MSG(it != delegations_.end(), "re-hosting unknown delegation");
  ARMADA_CHECK_MSG(is_alive(host), "delegation host must be alive");
  const KautzString& host_id = ids_[host];
  ARMADA_CHECK_MSG(
      !host_id.is_prefix_of(range) && !range.is_prefix_of(host_id),
      "delegation host must not own part of the range");
  it->second.host = host;
}

PeerId FissioneNetwork::proximity_next_hop(PeerId cur,
                                           const KautzString& object_id,
                                           const KautzString& target) const {
  // Remaining shift distance of a peer P toward the object:
  // rem(P) = |PeerID(P)| - (longest suffix of PeerID(P) prefixing the
  // object) — zero exactly at the owner. Every neighbor link (out *or* in:
  // both are maintained locally and carry overlay messages) whose endpoint
  // strictly reduces rem is a viable next hop, and because rem drops by at
  // least one per hop the walk still terminates within |PeerID(issuer)|
  // hops — the paper's delay bound. The canonical prefix-of-target
  // out-neighbor always reaches rem(cur) - 1 (its suffix extends the
  // alignment by its own extension symbols), so a viable candidate always
  // exists. Candidates with equal minimal rem are structurally equivalent;
  // we break that tie toward the cheapest link under the current latency
  // model (deterministically: first-listed neighbor on equal latency).
  // In-neighbors occasionally align *better* than the canonical hop, so the
  // flag can shorten walks as well as cheapen them.
  const KautzString& id = ids_[cur];
  const std::size_t cur_rem = id.length() - id.longest_suffix_prefix(object_id);
  PeerId best = kNoPeer;
  std::size_t best_rem = 0;
  sim::Time best_link = 0.0;
  const auto consider = [&](PeerId n) {
    const KautzString& nid = ids_[n];
    const std::size_t rem =
        nid.length() - nid.longest_suffix_prefix(object_id);
    if (rem >= cur_rem) {
      return;  // no structural progress over this link
    }
    const sim::Time link = transport_.link(cur, n);
    if (best == kNoPeer || rem < best_rem ||
        (rem == best_rem && link < best_link)) {
      best = n;
      best_rem = rem;
      best_link = link;
    }
  };
  for (PeerId n : out_of(cur)) {
    consider(n);
  }
  for (PeerId n : in_of(cur)) {
    consider(n);
  }
  ARMADA_CHECK_MSG(best != kNoPeer,
                   "proximity routing made no progress toward "
                       << target.to_string());
  return best;
}

RouteResult FissioneNetwork::route(PeerId from,
                                   const KautzString& object_id) const {
  ARMADA_CHECK(from < ids_.size() && alive(from));
  ARMADA_CHECK(object_id.length() == config_.object_id_length);

  RouteResult result;
  result.path.push_back(from);
  PeerId cur = from;
  const std::size_t hop_limit = 4 * config_.object_id_length;
  while (!ids_[cur].is_prefix_of(object_id)) {
    const KautzString& id = ids_[cur];
    const std::size_t j = id.longest_suffix_prefix(object_id);
    // Shift routing: advance to the owner of id[1..] ++ object_id[j..].
    const KautzString target =
        id.drop_front().concat(object_id.suffix(object_id.length() - j));
    PeerId next = kNoPeer;
    if (config_.proximity_next_hop) {
      next = proximity_next_hop(cur, object_id, target);
    } else {
      for (PeerId n : out_of(cur)) {
        if (ids_[n].is_prefix_of(target)) {
          next = n;
          break;
        }
      }
    }
    ARMADA_CHECK_MSG(next != kNoPeer, "routing stuck at "
                                          << id.to_string() << " toward "
                                          << object_id.to_string());
    cur = next;
    ++result.hops;
    result.path.push_back(cur);
    ARMADA_CHECK_MSG(result.hops <= hop_limit, "routing loop suspected");
  }
  result.owner = cur;
  result.latency = transport_.path_latency(result.path);
  return result;
}

std::vector<std::uint64_t> FissioneNetwork::lookup(
    PeerId from, const KautzString& object_id, RouteResult* route_out) const {
  const RouteResult r = route(from, object_id);
  std::vector<std::uint64_t> payloads;
  for (const StoredObject& obj : store_of(r.owner)) {
    if (obj.object_id == object_id) {
      payloads.push_back(obj.payload);
    }
  }
  if (const Delegation* d = delegation_covering(object_id)) {
    // Migrated key: the owner redirects to the host's copy (the routing
    // cost to the owner is unchanged; the redirect is zone-local).
    for (const StoredObject& obj : delegation_segment(*d, object_id)) {
      payloads.push_back(obj.payload);
    }
  }
  if (route_out != nullptr) {
    *route_out = r;
  }
  return payloads;
}

KautzString FissioneNetwork::kautz_hash(std::string_view key) const {
  // FNV-1a to seed, then an LCG stream picks one allowed symbol per step.
  std::uint64_t h = fnv1a64(key);
  KautzString out{config_.base};
  for (std::size_t i = 0; i < config_.object_id_length; ++i) {
    h = h * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t draw = h >> 33;
    if (i == 0) {
      out.push_back(static_cast<std::uint8_t>(draw % (config_.base + 1u)));
    } else {
      out.push_back(
          kautz::index_symbol(draw % config_.base, out.back()));
    }
  }
  return out;
}

KautzString FissioneNetwork::random_object_id() {
  return kautz::random_string(rng_, config_.base, config_.object_id_length);
}

void FissioneNetwork::check_invariants() const {
  tree_.check_structure();
  ARMADA_CHECK(tree_.num_leaves() == alive_.size());
  for (PeerId id : alive_) {
    ARMADA_CHECK(alive(id));
    ARMADA_CHECK(tree_.hosts(id));
    ARMADA_CHECK_MSG(tree_.label_of(id) == ids_[id],
                     "peer " << id << " label mismatch");
    // Out-neighbors match a fresh recomputation.
    const std::span<const PeerId> out = out_of(id);
    const std::vector<PeerId> fresh = compute_out_neighbors(id);
    ARMADA_CHECK_MSG(
        std::equal(out.begin(), out.end(), fresh.begin(), fresh.end()),
        "stale out-neighbors at peer " << id);
    // Out-neighbor IDs have the form u2...ub q1...qm.
    for (PeerId n : out) {
      const KautzString& v = ids_[n];
      if (ids_[id].length() >= 2) {
        const KautzString shifted = ids_[id].drop_front();
        ARMADA_CHECK_MSG(
            shifted.is_prefix_of(v) || v.is_prefix_of(shifted),
            "edge " << ids_[id].to_string() << " -> " << v.to_string());
      }
    }
    // Transpose consistency.
    for (PeerId n : out) {
      const std::span<const PeerId> in = in_of(n);
      ARMADA_CHECK(std::find(in.begin(), in.end(), id) != in.end());
    }
    for (PeerId n : in_of(id)) {
      const std::span<const PeerId> from_n = out_of(n);
      ARMADA_CHECK(std::find(from_n.begin(), from_n.end(), id) !=
                   from_n.end());
    }
    // Objects are owned by their holder — and never inside a migrated
    // range, whose objects live at the delegation host instead.
    for (const StoredObject& obj : store_of(id)) {
      ARMADA_CHECK_MSG(ids_[id].is_prefix_of(obj.object_id),
                       "misplaced object at peer " << id);
      if (!delegations_.empty()) {
        ARMADA_CHECK_MSG(delegation_covering(obj.object_id) == nullptr,
                         "native object inside a delegated range at peer "
                             << id);
      }
    }
  }
  // Delegation registry: ranges pairwise prefix-free (sorted keys make the
  // adjacent check sufficient), hosts alive and zone-disjoint from their
  // range, contents sorted and inside the range.
  const KautzString* prev_range = nullptr;
  for (const auto& [range, d] : delegations_) {
    ARMADA_CHECK(range == d.range);
    ARMADA_CHECK(!range.empty() && range.length() < config_.object_id_length);
    ARMADA_CHECK_MSG(is_alive(d.host), "dead delegation host");
    ARMADA_CHECK(!ids_[d.host].is_prefix_of(range) &&
                 !range.is_prefix_of(ids_[d.host]));
    if (prev_range != nullptr) {
      ARMADA_CHECK_MSG(!prev_range->is_prefix_of(range),
                       "overlapping delegated ranges");
    }
    prev_range = &range;
    for (std::size_t i = 0; i < d.objects.size(); ++i) {
      ARMADA_CHECK(range.is_prefix_of(d.objects[i].object_id));
      ARMADA_CHECK(d.objects[i].object_id.length() ==
                   config_.object_id_length);
      if (i > 0) {
        ARMADA_CHECK_MSG(
            !canonical_object_less(d.objects[i], d.objects[i - 1]),
            "delegation contents out of canonical order");
      }
    }
  }
}

std::size_t FissioneNetwork::max_neighbor_length_gap() const {
  std::size_t gap = 0;
  for (PeerId id : alive_) {
    const std::size_t lu = ids_[id].length();
    for (PeerId n : out_of(id)) {
      const std::size_t lv = ids_[n].length();
      gap = std::max(gap, lu > lv ? lu - lv : lv - lu);
    }
  }
  return gap;
}

double FissioneNetwork::average_degree() const {
  std::uint64_t total = 0;
  for (PeerId id : alive_) {
    total += out_of(id).size() + in_of(id).size();
  }
  return static_cast<double>(total) / static_cast<double>(alive_.size());
}

Histogram FissioneNetwork::peer_id_length_histogram() const {
  Histogram h;
  for (PeerId id : alive_) {
    h.add(static_cast<std::int64_t>(ids_[id].length()));
  }
  return h;
}

std::size_t FissioneNetwork::total_objects() const {
  std::size_t n = 0;
  for (PeerId id : alive_) {
    n += store_of(id).size();
  }
  for (const auto& [range, d] : delegations_) {
    n += d.objects.size();
  }
  return n;
}

}  // namespace armada::fissione
