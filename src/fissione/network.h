// FISSIONE: a constant-degree DHT on an approximate Kautz graph (paper §3).
//
// Peers carry variable-length base-2 Kautz PeerIDs forming a prefix
// partition of the namespace; the out-neighbors of U = u1...ub are the peers
// whose PeerIDs have the form u2...ub q1...qm (0 <= m <= 2). The overlay
// maintains the *neighborhood invariant*: PeerID lengths of neighboring
// peers differ by at most one. Consequences (validated by tests and
// bench_fissione_props): average degree 4, maximum PeerID length < 2 log2 N,
// average < log2 N, routing delay bounded by the source PeerID length.
#pragma once

#include <map>
#include <span>
#include <string_view>
#include <vector>

#include "fissione/kautz_tree.h"
#include "fissione/peer.h"
#include "fissione/types.h"
#include "net/routed_overlay.h"
#include "util/arena.h"
#include "util/rng.h"
#include "util/stats.h"

namespace armada::fissione {

/// Simulated FISSIONE overlay. Structural changes (join/leave/crash) keep
/// the per-peer neighbor tables exactly consistent with the zone partition,
/// mirroring the paper's self-stabilization at quiescence.
///
/// Peer state is stored struct-of-arrays: PeerIDs, liveness flags, neighbor
/// lists, and object stores each live in their own contiguous array, with
/// the variable-length lists packed into two shared arenas (ArenaPool).
/// Routing and the query layers touch only the arrays they need — IDs and
/// out-edges — so the hot path walks dense memory instead of hopping
/// between per-peer heap nodes. peer() assembles the classic record view
/// on demand.
class FissioneNetwork final : public overlay::RoutedOverlay {
 public:
  struct Config {
    std::uint8_t base = 2;
    /// Length of ObjectIDs (the paper uses k = 100; any k comfortably above
    /// the deepest PeerID behaves identically).
    std::size_t object_id_length = 48;
    /// Proximity-aware next-hop tie-breaking in exact-match routing: among
    /// the neighbor links (out or in) making maximal shift-routing progress
    /// — structurally equivalent candidates, same remaining-distance bound —
    /// prefer the lowest-latency link. Off by default: the canonical
    /// prefix-of-target next hop is used and every pre-existing figure is
    /// reproduced bit-for-bit. The delay bound hops <= |PeerID(issuer)|
    /// holds either way (progress is at least one symbol per hop).
    bool proximity_next_hop = false;
  };

  struct JoinStats {
    PeerId peer = kNoPeer;
    std::uint32_t placement_hops = 0;  ///< routing cost to find the split site
  };

  /// One migrated key range: ObjectIDs extending `range` are stored at and
  /// served by `host` instead of the range's structural owner(s) — the
  /// indirection the online rebalancer (src/rebalance/) cuts over to when a
  /// transfer lands. Hosted objects live here, outside any Peer::store, so
  /// the placement invariant (a native store holds only IDs its PeerID
  /// prefixes) is untouched. The registry is keyed by range, not by peer:
  /// owner-side churn (splits, merges, relocations) never invalidates an
  /// entry, because owners are resolved against the live tree at each use.
  struct Delegation {
    kautz::KautzString range;
    PeerId host = kNoPeer;
    /// Sorted by (object_id, payload): every prefix-restricted subset is a
    /// contiguous slice (see delegation_segment).
    std::vector<StoredObject> objects;
  };
  using DelegationMap = std::map<kautz::KautzString, Delegation>;

  /// What a membership event would put on the wire: the repair plan a timed
  /// churn driver prices through the Transport. Filled (optionally) by
  /// join/leave/crash; capturing it never changes the structural outcome or
  /// the network's RNG stream, so reporting and non-reporting call sites
  /// evolve identical overlays.
  struct MembershipReport {
    /// One batched object transfer between two peers.
    struct Handoff {
      PeerId from = kNoPeer;
      PeerId to = kNoPeer;
      std::vector<std::uint64_t> payloads;  ///< handles of the moved objects
    };

    /// Peer the repair radiates from: the joiner (join), the absorbing or
    /// relocated peer (leave/crash).
    PeerId origin = kNoPeer;
    PeerId joiner = kNoPeer;  ///< join only
    /// Alive peers whose neighbor tables were recomputed; each one owes a
    /// table-update delivery before it is fully wired again.
    std::vector<PeerId> rewired;
    std::vector<Handoff> handoffs;
    std::size_t objects_dropped = 0;  ///< crash only
    /// Join placement traffic: the exact-match route to the split region
    /// plus the local-minimum balancing walk, in hops and transport-priced
    /// latency.
    std::uint32_t placement_hops = 0;
    double placement_latency = 0.0;
  };

  FissioneNetwork(Config config, std::uint64_t seed);

  /// Convenience: build a network of `n` peers (n >= base+1).
  static FissioneNetwork build(std::size_t n, std::uint64_t seed,
                               Config config);
  static FissioneNetwork build(std::size_t n, std::uint64_t seed);

  /// build(), minus the routed placement walk: the join site is located by
  /// direct tree descent plus the same local-minimum walk, consuming the
  /// exact RNG draws of build() — the resulting overlay (tree, PeerIDs,
  /// neighbor tables) is bit-identical to build(n, seed, config) while
  /// skipping the per-join shift-routing cost. This is what lets bench_scale
  /// stand up million-peer overlays in seconds.
  static FissioneNetwork build_snapshot(std::size_t n, std::uint64_t seed,
                                        Config config);

  /// Grow this network to `n` peers via the snapshot (non-routing) join
  /// path; equivalent to calling join() until num_peers() == n.
  void grow_snapshot(std::size_t n);

  // --- membership -------------------------------------------------------
  // Structural changes commute instantly (the zero-delay degenerate case);
  // pass a MembershipReport to learn what a timed repair protocol would
  // deliver over the transport (see fissione::ChurnDriver).
  JoinStats join(MembershipReport* report = nullptr);
  /// Graceful departure: the peer's zone and objects are taken over.
  void leave(PeerId peer, MembershipReport* report = nullptr);
  /// Ungraceful failure: zone is healed but the peer's objects are lost.
  /// Returns the number of lost objects.
  std::size_t crash(PeerId peer, MembershipReport* report = nullptr);

  // --- accessors ---------------------------------------------------------
  std::size_t num_peers() const { return alive_.size(); }
  bool is_alive(PeerId id) const {
    return id < ids_.size() && alive_flags_[id] != 0;
  }
  /// Record view of one peer, assembled from the column arrays. The spans
  /// inside are valid until the next membership or publish operation.
  Peer peer(PeerId id) const;
  const std::vector<PeerId>& alive_peers() const { return alive_; }
  PeerId random_peer();
  const KautzTree& tree() const { return tree_; }
  const Config& config() const { return config_; }
  std::size_t overlay_size() const override { return alive_.size(); }

  /// Toggle proximity-aware next-hop tie-breaking (see Config) at runtime;
  /// the overlay structure is untouched, only route() choices change.
  void set_proximity_next_hop(bool on) { config_.proximity_next_hop = on; }

  /// Attach a per-peer service-load recorder: the query layers (FRT search
  /// arrivals, replica walk hops) land one count on each receiving peer.
  /// Null detaches. Measurement only — never affects routing or timing.
  void set_service_load(ServiceLoadMap* load) { service_load_ = load; }
  void record_service(PeerId receiver) const {
    if (service_load_ != nullptr) {
      ++(*service_load_)[receiver];
    }
  }
  /// The attached recorder (null when none) — the rebalancer reads service
  /// deltas from it to locate hot peers.
  const ServiceLoadMap* service_load() const { return service_load_; }

  // --- key-range delegation ----------------------------------------------
  // The rebalancer's cutover surface. Ranges in the registry are pairwise
  // prefix-free, hosts are alive peers whose zone is disjoint from the
  // range, and native stores hold nothing inside a delegated range — all
  // enforced here and re-checked by check_invariants().

  /// Pull every stored object under `range` out of its owner's native
  /// store; returns them in canonical (object_id, payload) order. The range
  /// must not overlap an existing delegation.
  std::vector<StoredObject> detach_range(const kautz::KautzString& range);
  /// Register `range` as hosted by `host` with the given (detached)
  /// contents. CHECKs the registry stays prefix-free, the host is alive and
  /// not an owner of the range, and every object extends the range.
  void delegate_range(const kautz::KautzString& range, PeerId host,
                      std::vector<StoredObject> objects);
  /// Drop the delegation and return its contents (callers re-publish them
  /// natively, hand them to a new host, or count them as lost).
  std::vector<StoredObject> revoke_delegation(const kautz::KautzString& range);
  /// Move an existing delegation to a new (alive, non-owner) host.
  void set_delegation_host(const kautz::KautzString& range, PeerId host);
  const Delegation* find_delegation(const kautz::KautzString& range) const;
  const DelegationMap& delegations() const { return delegations_; }
  bool has_delegations() const { return !delegations_.empty(); }
  /// The delegation whose range prefixes `object_id`, if any (at most one:
  /// ranges are prefix-free).
  const Delegation* delegation_covering(
      const kautz::KautzString& object_id) const;

  /// Contiguous slice of `d.objects` whose ObjectIDs extend `prefix`
  /// (objects are sorted, so prefix runs are contiguous).
  static std::span<const StoredObject> delegation_segment(
      const Delegation& d, const kautz::KautzString& prefix);

  /// Visit the owner-side slices of every delegation intersecting the zone
  /// `zone_prefix` (a PeerID): fn(range, slice) with slice restricted to
  /// the intersection. No-op while the registry is empty.
  template <typename Fn>
  void visit_delegation_slices(const kautz::KautzString& zone_prefix,
                               Fn&& fn) const {
    for (const auto& [range, d] : delegations_) {
      if (zone_prefix.is_prefix_of(range)) {
        fn(range, std::span<const StoredObject>(d.objects));
      } else if (range.is_prefix_of(zone_prefix)) {
        fn(range, delegation_segment(d, zone_prefix));
      }
    }
  }

  /// Logical owner-side store of `p`: its native store plus the migrated
  /// objects whose structural owner it is. What walk-based scans (top-k,
  /// k-NN) and ground truths iterate so answers are delegation-agnostic.
  template <typename Fn>
  void for_each_owned(PeerId p, Fn&& fn) const {
    for (const StoredObject& obj : store_of(p)) {
      fn(obj);
    }
    if (!delegations_.empty()) {
      visit_delegation_slices(
          ids_[p], [&fn](const kautz::KautzString&,
                         std::span<const StoredObject> slice) {
            for (const StoredObject& obj : slice) {
              fn(obj);
            }
          });
    }
  }

  // --- data plane --------------------------------------------------------
  /// Ground-truth owner (tree descent, no messages).
  PeerId owner_of(const kautz::KautzString& object_id) const;
  /// Place an object directly at its owner (no routing cost), as when
  /// seeding a workload.
  void publish(const kautz::KautzString& object_id, std::uint64_t payload);
  /// Overlay exact-match routing from `from` to the owner of `object_id`
  /// (paper §3: shift routing; hops <= |PeerID(from)|).
  RouteResult route(PeerId from, const kautz::KautzString& object_id) const;
  /// Route and collect payloads stored under `object_id`.
  std::vector<std::uint64_t> lookup(PeerId from,
                                    const kautz::KautzString& object_id,
                                    RouteResult* route_out = nullptr) const;

  /// Deterministic naming of arbitrary keys (the paper's Kautz_hash).
  kautz::KautzString kautz_hash(std::string_view key) const;
  /// Uniform random ObjectID.
  kautz::KautzString random_object_id();

  // --- introspection / validation ----------------------------------------
  /// Full structural validation: tree structure, neighbor tables equal to a
  /// fresh recomputation, in/out transpose consistency, object placement.
  void check_invariants() const;
  /// Max PeerID-length difference across neighbor links (the neighborhood
  /// invariant holds iff this is <= 1).
  std::size_t max_neighbor_length_gap() const;
  /// Average total degree (|out| + |in|) across peers; ~4 in FISSIONE.
  double average_degree() const;
  Histogram peer_id_length_histogram() const;
  std::size_t total_objects() const;

 private:
  using EdgeRef = util::ArenaPool<PeerId>::Ref;
  using StoreRef = util::ArenaPool<StoredObject>::Ref;

  // Column accessors (SoA). The spans are invalidated by pool growth — copy
  // a list out before mutating the same pool while walking it.
  bool alive(PeerId id) const { return alive_flags_[id] != 0; }
  std::span<const PeerId> out_of(PeerId id) const {
    return edges_.view(out_refs_[id]);
  }
  std::span<const PeerId> in_of(PeerId id) const {
    return edges_.view(in_refs_[id]);
  }
  std::span<const StoredObject> store_of(PeerId id) const {
    return stores_.view(store_refs_[id]);
  }
  /// Move a peer's store out of the arena (the block is kept for reuse).
  std::vector<StoredObject> take_store(PeerId id);

  /// Iterator to the delegation covering `object_id`, or end(). Ranges are
  /// prefix-free, so the covering range — if any — is the greatest key not
  /// above `object_id`: one map probe, no scan.
  DelegationMap::iterator covering_iter(const kautz::KautzString& object_id);

  PeerId allocate_peer();
  void release_peer(PeerId id);
  std::vector<PeerId> compute_out_neighbors(PeerId id) const;
  /// Recompute out-lists of `affected` (dedup, skips dead peers) and patch
  /// in-list transposes. Returns the peers actually refreshed — the rewired
  /// set a timed repair protocol must update.
  std::vector<PeerId> refresh_neighbors(std::vector<PeerId> affected);
  /// Split the zone of `victim`, assigning the new half to a fresh peer.
  PeerId split_peer(PeerId victim, MembershipReport* report);
  /// Remove `leaving` from the overlay; `transfer_objects` selects graceful
  /// departure vs crash. Returns number of dropped objects.
  std::size_t remove_peer(PeerId leaving, bool transfer_objects,
                          MembershipReport* report);
  /// Walk from `start` to a peer none of whose neighbors has a shorter
  /// PeerID (the join balancing rule). The walk is a sequence of overlay
  /// messages; `hops`/`latency`, when given, accumulate its cost.
  PeerId walk_to_local_min(PeerId start, std::uint32_t* hops = nullptr,
                           double* latency = nullptr) const;
  /// Proximity-aware next hop from `cur` toward `object_id` (Config flag):
  /// cheapest link among the neighbors — out *and* in — with minimal
  /// remaining shift distance (in-neighbors occasionally align better,
  /// shortening the walk). `target` is the canonical shift-routing target
  /// at `cur`.
  PeerId proximity_next_hop(PeerId cur, const kautz::KautzString& object_id,
                            const kautz::KautzString& target) const;

  Config config_;
  Rng rng_;
  // Per-peer columns, indexed by PeerId (parallel arrays).
  std::vector<kautz::KautzString> ids_;
  std::vector<std::uint8_t> alive_flags_;
  std::vector<EdgeRef> out_refs_;
  std::vector<EdgeRef> in_refs_;
  std::vector<StoreRef> store_refs_;
  util::ArenaPool<PeerId> edges_;        ///< out- and in-lists, one arena
  util::ArenaPool<StoredObject> stores_; ///< per-peer object stores
  std::vector<PeerId> free_ids_;
  std::vector<PeerId> alive_;
  std::vector<std::size_t> alive_pos_;  ///< index of peer in alive_
  KautzTree tree_;
  DelegationMap delegations_;  ///< migrated ranges, pairwise prefix-free
  ServiceLoadMap* service_load_ = nullptr;  ///< not owned; may be null
};

}  // namespace armada::fissione
