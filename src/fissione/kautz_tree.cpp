#include "fissione/kautz_tree.h"

#include <algorithm>

#include "kautz/kautz_space.h"
#include "util/check.h"

namespace armada::fissione {

using kautz::KautzString;

KautzTree::KautzTree(std::uint8_t base, const std::vector<PeerId>& first_peers)
    : base_(base), root_(std::make_unique<Node>()) {
  ARMADA_CHECK(first_peers.size() == static_cast<std::size_t>(base_) + 1);
  root_->children.resize(base_ + 1u);
  for (std::uint8_t c = 0; c <= base_; ++c) {
    auto child = std::make_unique<Node>();
    child->parent = root_.get();
    child->edge = c;
    child->depth = 1;
    root_->children[c] = std::move(child);
    set_leaf_peer(root_->children[c].get(), first_peers[c]);
  }
  num_leaves_ = base_ + 1u;
}

KautzTree::Node* KautzTree::child_by_symbol(const Node* node,
                                            std::uint8_t symbol) const {
  if (node == root_.get()) {
    ARMADA_CHECK(symbol <= base_);
    return node->children[symbol].get();
  }
  ARMADA_CHECK(symbol != node->edge && symbol <= base_);
  return node->children[kautz::symbol_index(symbol, node->edge)].get();
}

PeerId KautzTree::owner_of(const KautzString& s) const {
  ARMADA_CHECK(s.base() == base_);
  const Node* node = root_.get();
  std::size_t i = 0;
  while (!node->is_leaf()) {
    ARMADA_CHECK_MSG(i < s.length(),
                     "string " << s.to_string() << " too short to resolve");
    node = child_by_symbol(node, s.digit(i));
    ++i;
  }
  return node->peer;
}

bool KautzTree::hosts(PeerId peer) const { return node_of(peer) != nullptr; }

KautzTree::Node* KautzTree::node_of(PeerId peer) const {
  if (peer >= peer_nodes_.size()) {
    return nullptr;
  }
  return peer_nodes_[peer];
}

KautzString KautzTree::label_of(PeerId peer) const {
  const Node* node = node_of(peer);
  ARMADA_CHECK_MSG(node != nullptr, "unknown peer " << peer);
  std::vector<std::uint8_t> digits(node->depth);
  for (const Node* n = node; n->parent != nullptr; n = n->parent) {
    digits[n->depth - 1] = n->edge;
  }
  return KautzString(base_, std::move(digits));
}

std::size_t KautzTree::depth_of(PeerId peer) const {
  const Node* node = node_of(peer);
  ARMADA_CHECK(node != nullptr);
  return node->depth;
}

void KautzTree::set_leaf_peer(Node* node, PeerId peer) {
  ARMADA_CHECK(node->is_leaf());
  node->peer = peer;
  if (peer >= peer_nodes_.size()) {
    peer_nodes_.resize(peer + 1u, nullptr);
  }
  ARMADA_CHECK_MSG(peer_nodes_[peer] == nullptr,
                   "peer " << peer << " already hosted");
  peer_nodes_[peer] = node;
}

void KautzTree::split(PeerId peer, PeerId joiner) {
  Node* node = node_of(peer);
  ARMADA_CHECK(node != nullptr && node->is_leaf());
  ARMADA_CHECK(node->parent != nullptr);  // bootstrap creates depth-1 leaves
  peer_nodes_[peer] = nullptr;
  node->peer = kNoPeer;

  node->children.resize(base_);
  std::size_t idx = 0;
  for (std::uint8_t c = 0; c <= base_; ++c) {
    if (c == node->edge) {
      continue;
    }
    auto child = std::make_unique<Node>();
    child->parent = node;
    child->edge = c;
    child->depth = static_cast<std::uint16_t>(node->depth + 1);
    node->children[idx++] = std::move(child);
  }
  // Children are created in increasing symbol order: the original peer takes
  // the smaller label, the joiner the larger.
  set_leaf_peer(node->children[0].get(), peer);
  set_leaf_peer(node->children[1].get(), joiner);
  ++num_leaves_;
}

bool KautzTree::in_leaf_pair(PeerId peer) const {
  const Node* node = node_of(peer);
  ARMADA_CHECK(node != nullptr);
  const Node* parent = node->parent;
  if (parent == nullptr || parent == root_.get()) {
    return false;
  }
  return std::all_of(parent->children.begin(), parent->children.end(),
                     [](const auto& c) { return c->is_leaf(); });
}

PeerId KautzTree::pair_sibling(PeerId peer) const {
  ARMADA_CHECK(in_leaf_pair(peer));
  const Node* node = node_of(peer);
  for (const auto& child : node->parent->children) {
    if (child.get() != node) {
      return child->peer;
    }
  }
  ARMADA_CHECK_MSG(false, "leaf pair without sibling");
  return kNoPeer;
}

void KautzTree::merge_pair(PeerId leaving, PeerId survivor) {
  ARMADA_CHECK(in_leaf_pair(leaving));
  ARMADA_CHECK(pair_sibling(leaving) == survivor);
  Node* node = node_of(leaving);
  Node* parent = node->parent;
  peer_nodes_[leaving] = nullptr;
  peer_nodes_[survivor] = nullptr;
  parent->children.clear();  // destroys both leaves
  parent->peer = kNoPeer;
  set_leaf_peer(parent, survivor);
  --num_leaves_;
}

PeerId KautzTree::deepest_leaf() const {
  PeerId best = kNoPeer;
  std::uint16_t best_depth = 0;
  for (const Node* node : peer_nodes_) {
    if (node != nullptr && node->depth > best_depth) {
      best_depth = node->depth;
      best = node->peer;
    }
  }
  ARMADA_CHECK(best != kNoPeer);
  return best;
}

void KautzTree::replace_leaf_peer(PeerId old_peer, PeerId new_peer) {
  Node* node = node_of(old_peer);
  ARMADA_CHECK(node != nullptr && node->is_leaf());
  peer_nodes_[old_peer] = nullptr;
  node->peer = kNoPeer;
  set_leaf_peer(node, new_peer);
}

void KautzTree::collect_leaves(const Node* node,
                               std::vector<PeerId>& out) const {
  if (node->is_leaf()) {
    out.push_back(node->peer);
    return;
  }
  for (const auto& child : node->children) {
    collect_leaves(child.get(), out);
  }
}

std::vector<PeerId> KautzTree::cover_of_prefix(
    const KautzString& prefix) const {
  const Node* node = root_.get();
  for (std::size_t i = 0; i < prefix.length(); ++i) {
    if (node->is_leaf()) {
      return {node->peer};
    }
    node = child_by_symbol(node, prefix.digit(i));
  }
  std::vector<PeerId> out;
  collect_leaves(node, out);
  return out;
}

void KautzTree::check_node(const Node* node, const KautzString& label,
                           std::size_t& leaves_seen) const {
  if (node->is_leaf()) {
    ARMADA_CHECK_MSG(node->peer != kNoPeer, "unowned leaf " << label.to_string());
    ARMADA_CHECK(node_of(node->peer) == node);
    ARMADA_CHECK(label_of(node->peer) == label);
    ++leaves_seen;
    return;
  }
  ARMADA_CHECK(node->peer == kNoPeer);
  const std::size_t expected =
      node == root_.get() ? base_ + 1u : static_cast<std::size_t>(base_);
  ARMADA_CHECK_MSG(node->children.size() == expected,
                   "internal node " << label.to_string() << " has "
                                    << node->children.size() << " children");
  for (const auto& child : node->children) {
    ARMADA_CHECK(child != nullptr);
    ARMADA_CHECK(child->parent == node);
    ARMADA_CHECK(child->depth == node->depth + 1);
    KautzString child_label = label;
    child_label.push_back(child->edge);  // validates the Kautz invariant
    check_node(child.get(), child_label, leaves_seen);
  }
}

void KautzTree::check_structure() const {
  std::size_t leaves_seen = 0;
  check_node(root_.get(), KautzString(base_), leaves_seen);
  ARMADA_CHECK(leaves_seen == num_leaves_);
  std::size_t hosted = 0;
  for (const Node* node : peer_nodes_) {
    if (node != nullptr) {
      ARMADA_CHECK(node->is_leaf());
      ++hosted;
    }
  }
  ARMADA_CHECK(hosted == num_leaves_);
}

}  // namespace armada::fissione
