// Event-driven membership for FISSIONE: fission/fusion repair as
// transport-priced message exchanges on the Simulator.
//
// The network's own join/leave/crash keep the instant pointer surgery (the
// zero-delay degenerate schedule, under which every pre-existing figure is
// reproduced bit-for-bit). This driver executes the same structural change
// *at a simulated instant* and then puts the repair protocol on the wire:
//
//  * Placement traffic — the joiner's exact-match route plus the
//    local-minimum balancing walk, priced hop by hop.
//  * Neighbor-table updates — one delivery from the repair origin to every
//    rewired peer; until its update arrives a peer is inside a *stale-route
//    window* and forwarding through it may use a dead or not-yet-wired
//    pointer.
//  * Object handoffs — one batched transfer per (from, to) pair; the moved
//    objects are *in flight* until the transfer arrives and queries that
//    would return them observably miss them.
//
// Crashes additionally wait out a detection timeout before any healing
// traffic departs, so their stale windows are strictly longer than a
// graceful leave's. All repair costs land in the shared sim::ChurnStats
// currency; determinism follows from seeded RNGs and pure latency models.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fissione/network.h"
#include "sim/churn.h"
#include "sim/event_queue.h"

namespace armada::fissione {

class ChurnDriver {
 public:
  struct Config {
    /// Timeout before a crash is detected and healing traffic departs.
    sim::Time crash_detect_delay = 2.0;
    /// Stale forward attempts tolerated per query before it is aborted.
    std::uint32_t max_detours = 3;
    /// Leave/crash events are skipped (counted in stats) below this size.
    std::size_t min_peers = 8;
    /// Per-object surcharge on a handoff transfer's byte size when repair
    /// is priced through an installed queueing network (the base message
    /// costs the config's default size).
    std::uint32_t handoff_object_bytes = 32;
    /// Degenerate schedule: repair completes instantly, every stale window
    /// is empty, and the overlay evolves exactly as under direct
    /// join/leave/crash calls.
    bool zero_delay = false;
  };

  ChurnDriver(FissioneNetwork& net, sim::Simulator& sim)
      : ChurnDriver(net, sim, Config()) {}
  ChurnDriver(FissioneNetwork& net, sim::Simulator& sim, Config config);

  ChurnDriver(const ChurnDriver&) = delete;
  ChurnDriver& operator=(const ChurnDriver&) = delete;

  /// Enqueue one membership event (or a whole schedule) on the simulator.
  void schedule(const sim::ChurnEvent& event);
  void schedule(const std::vector<sim::ChurnEvent>& events);

  /// Execute one membership change at sim.now(): instant structural
  /// surgery, then the repair exchange scheduled through the transport.
  /// Normally invoked by scheduled events; callable directly from inside
  /// the simulation (tests drive it this way for precise interleavings).
  void execute(sim::ChurnEventKind kind);

  const sim::ChurnStats& stats() const { return stats_; }
  FissioneNetwork& net() { return net_; }
  sim::Simulator& simulator() { return sim_; }
  const Config& config() const { return config_; }

  /// Hook invoked after every *executed* membership event (skipped events
  /// don't fire it), at sim.now() with the repair exchange already
  /// scheduled. Layers above the DHT — the replica subsystem — refresh
  /// their placement and caches through it.
  void set_membership_hook(std::function<void()> hook) {
    membership_hook_ = std::move(hook);
  }

  // --- stale-window introspection (all evaluated at sim.now()) -------------
  bool is_stale(PeerId peer) const {
    return windows_.stale_at(peer, sim_.now());
  }
  sim::Time stale_until(PeerId peer) const { return windows_.until(peer); }
  /// Alive peers currently inside a stale window.
  std::vector<PeerId> stale_peers() const;
  bool is_in_flight(std::uint64_t payload) const;
  std::size_t objects_in_flight() const;

  /// Record the stale-window outcome of one query observed by a layer above
  /// (e.g. core::ChurnHarness). Updates the query-side ChurnStats counters.
  void record_query(bool stale, std::uint64_t detours, bool failed,
                    std::uint64_t missed);

  /// Exact-match routing at sim.now() with stale-route semantics: the
  /// structural walk is re-priced hop by hop at its own arrival times; a
  /// hop leaving a peer whose window is still open first tries a dead or
  /// not-yet-wired pointer and must detour (one extra message, one extra
  /// hop of delay, one extra link charge). More than `max_detours` detours
  /// aborts the query (failed = true, no owner). Records one query outcome
  /// in stats() per call — like core::ChurnHarness::range_query, so do not
  /// run both wrappers for the same logical query or it is counted twice.
  struct StaleRoute {
    RouteResult route;            ///< structural walk (surcharges excluded)
    sim::QueryStats stats;        ///< walk cost including detour surcharges
    bool stale = false;           ///< touched at least one open window
    std::uint32_t detours = 0;
    bool failed = false;
  };
  StaleRoute route(PeerId from, const kautz::KautzString& object_id);

 private:
  void apply_repair(const FissioneNetwork::MembershipReport& report,
                    bool crashed, sim::Time start);
  sim::Time priced(sim::Time latency) const {
    return config_.zero_delay ? 0.0 : latency;
  }

  FissioneNetwork& net_;
  sim::Simulator& sim_;
  Config config_;
  sim::ChurnStats stats_;
  sim::StaleWindows windows_;  ///< by PeerId
  /// payload handle -> transfer arrival time; purged as transfers land.
  std::unordered_map<std::uint64_t, sim::Time> in_flight_;
  std::function<void()> membership_hook_;  ///< may be empty
};

}  // namespace armada::fissione
