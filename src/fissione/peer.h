// Per-peer state: exactly what a real FISSIONE node would hold locally.
#pragma once

#include <vector>

#include "fissione/types.h"
#include "kautz/kautz_string.h"

namespace armada::fissione {

/// A FISSIONE peer. PeerIDs are variable-length base-2 Kautz strings; the
/// peer owns every ObjectID it prefixes. Out-neighbors have PeerIDs of the
/// form u2...ub q1...qm (0 <= m <= 2) for U = u1...ub (paper §3) and are
/// kept sorted by PeerID — the order the forward routing tree relies on
/// (paper §4.2, FRT rule 3).
struct Peer {
  kautz::KautzString peer_id{2};
  std::vector<PeerId> out_neighbors;
  std::vector<PeerId> in_neighbors;
  std::vector<StoredObject> store;
  bool alive = false;
};

}  // namespace armada::fissione
