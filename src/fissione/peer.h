// Per-peer view: exactly what a real FISSIONE node would hold locally.
#pragma once

#include <span>
#include <vector>

#include "fissione/types.h"
#include "kautz/kautz_string.h"

namespace armada::fissione {

/// Read-only view of one FISSIONE peer's state. The network stores peers
/// struct-of-arrays (IDs, liveness, neighbor lists, and object stores each
/// in their own contiguous array/arena — see FissioneNetwork); this view is
/// assembled on access so call sites keep the record-like shape.
///
/// PeerIDs are variable-length base-2 Kautz strings; the peer owns every
/// ObjectID it prefixes. Out-neighbors have PeerIDs of the form
/// u2...ub q1...qm (0 <= m <= 2) for U = u1...ub (paper §3) and are kept
/// sorted by PeerID — the order the forward routing tree relies on
/// (paper §4.2, FRT rule 3).
///
/// The spans point into the network's arenas: they are valid until the next
/// membership or publish operation, like iterators into a container.
struct Peer {
  const kautz::KautzString& peer_id;
  std::span<const PeerId> out_neighbors;
  std::span<const PeerId> in_neighbors;
  std::span<const StoredObject> store;
  bool alive = false;
};

/// What a query's destination scan iterates: one or more contiguous runs of
/// stored objects — a peer's native store plus, when key ranges have been
/// migrated by the rebalancer, owner-side slices of delegation contents (or
/// just one hosted slice, at the host). The runs borrow the network's
/// storage and stay valid until the next membership, publish, or delegation
/// operation, like the spans in Peer.
///
/// Without any active delegations this is exactly one span and never
/// allocates, so the undelegated query path keeps its cost and behavior.
struct StoreView {
  std::span<const StoredObject> native;
  std::vector<std::span<const StoredObject>> extra;

  StoreView() = default;
  explicit StoreView(std::span<const StoredObject> run) : native(run) {}

  std::size_t size() const {
    std::size_t n = native.size();
    for (const auto& run : extra) {
      n += run.size();
    }
    return n;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const StoredObject& obj : native) {
      fn(obj);
    }
    for (const auto& run : extra) {
      for (const StoredObject& obj : run) {
        fn(obj);
      }
    }
  }
};

}  // namespace armada::fissione
