// Per-peer view: exactly what a real FISSIONE node would hold locally.
#pragma once

#include <span>

#include "fissione/types.h"
#include "kautz/kautz_string.h"

namespace armada::fissione {

/// Read-only view of one FISSIONE peer's state. The network stores peers
/// struct-of-arrays (IDs, liveness, neighbor lists, and object stores each
/// in their own contiguous array/arena — see FissioneNetwork); this view is
/// assembled on access so call sites keep the record-like shape.
///
/// PeerIDs are variable-length base-2 Kautz strings; the peer owns every
/// ObjectID it prefixes. Out-neighbors have PeerIDs of the form
/// u2...ub q1...qm (0 <= m <= 2) for U = u1...ub (paper §3) and are kept
/// sorted by PeerID — the order the forward routing tree relies on
/// (paper §4.2, FRT rule 3).
///
/// The spans point into the network's arenas: they are valid until the next
/// membership or publish operation, like iterators into a container.
struct Peer {
  const kautz::KautzString& peer_id;
  std::span<const PeerId> out_neighbors;
  std::span<const PeerId> in_neighbors;
  std::span<const StoredObject> store;
  bool alive = false;
};

}  // namespace armada::fissione
