#include "sfc/hilbert.h"

#include "util/check.h"

namespace armada::sfc {

namespace {

// One step of the classic rotate/flip transform.
void rotate(std::uint64_t half, std::uint64_t& x, std::uint64_t& y,
            std::uint64_t rx, std::uint64_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      x = half - 1 - x;
      y = half - 1 - y;
    }
    std::swap(x, y);
  }
}

}  // namespace

std::uint64_t hilbert_index(std::uint32_t order, Cell cell) {
  ARMADA_CHECK(order >= 1 && order <= 31);
  const std::uint64_t side = 1ull << order;
  ARMADA_CHECK(cell.x < side && cell.y < side);
  std::uint64_t x = cell.x;
  std::uint64_t y = cell.y;
  std::uint64_t d = 0;
  for (std::uint64_t s = side / 2; s > 0; s /= 2) {
    const std::uint64_t rx = (x & s) > 0 ? 1 : 0;
    const std::uint64_t ry = (y & s) > 0 ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    rotate(s, x, y, rx, ry);
  }
  return d;
}

Cell hilbert_cell(std::uint32_t order, std::uint64_t d) {
  ARMADA_CHECK(order >= 1 && order <= 31);
  const std::uint64_t side = 1ull << order;
  ARMADA_CHECK(d < side * side);
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  std::uint64_t t = d;
  for (std::uint64_t s = 1; s < side; s *= 2) {
    const std::uint64_t rx = 1 & (t / 2);
    const std::uint64_t ry = 1 & (t ^ rx);
    rotate(s, x, y, rx, ry);
    x += s * rx;
    y += s * ry;
    t /= 4;
  }
  return Cell{x, y};
}

IndexRange hilbert_square_range(std::uint32_t order, Cell corner,
                                std::uint32_t side_bits) {
  ARMADA_CHECK(side_bits <= order);
  const std::uint64_t size = 1ull << side_bits;
  ARMADA_CHECK_MSG(corner.x % size == 0 && corner.y % size == 0,
                   "square not aligned to its size");
  const std::uint64_t block = size * size;
  // A dyadic aligned square is one Hilbert subtree: a block of `block`
  // consecutive indices aligned at a multiple of `block`.
  const std::uint64_t some_index = hilbert_index(order, corner);
  const std::uint64_t first = some_index & ~(block - 1);
  return IndexRange{first, first + block};
}

}  // namespace armada::sfc
