// Exact decomposition of rectangles into space-filling-curve index ranges.
//
// Two users:
//  * DCF-CAN: a CAN zone (a dyadic rectangle with side ratio <= 2) is 1-2
//    aligned squares, hence 1-2 contiguous Hilbert ranges; "does this zone
//    intersect the mapped value range" is then exact interval overlap.
//  * Squid / SCRAP: a multi-attribute query box maps to the set of curve
//    segments ("clusters") covering it; the recursion below is the standard
//    quadtree cluster decomposition.
#pragma once

#include <cstdint>
#include <vector>

#include "sfc/hilbert.h"

namespace armada::sfc {

enum class Curve { kHilbert, kMorton };

/// Curve index of a cell under the chosen curve.
std::uint64_t curve_index(Curve curve, std::uint32_t order, Cell cell);

/// Index ranges of a dyadic rectangle: lower corner `corner`, side lengths
/// 2^x_bits by 2^y_bits cells, corner aligned per dimension. Returned
/// sorted and coalesced.
std::vector<IndexRange> rect_ranges(Curve curve, std::uint32_t order,
                                    Cell corner, std::uint32_t x_bits,
                                    std::uint32_t y_bits);

/// Index ranges covering the inclusive cell box [x_lo, x_hi] x [y_lo, y_hi].
/// Exact when min_side_bits == 0; a larger value stops the recursion at
/// squares of side 2^min_side_bits and over-approximates (fewer, coarser
/// ranges), which trades extra scanned peers for fewer query segments.
/// Returned sorted and coalesced.
std::vector<IndexRange> box_ranges(Curve curve, std::uint32_t order,
                                   std::uint64_t x_lo, std::uint64_t x_hi,
                                   std::uint64_t y_lo, std::uint64_t y_hi,
                                   std::uint32_t min_side_bits = 0);

/// Sort ranges and merge touching/overlapping ones.
std::vector<IndexRange> coalesce(std::vector<IndexRange> ranges);

}  // namespace armada::sfc
