#include "sfc/sfc_region.h"

#include <algorithm>

#include "sfc/morton.h"
#include "util/check.h"

namespace armada::sfc {

std::uint64_t curve_index(Curve curve, std::uint32_t order, Cell cell) {
  return curve == Curve::kHilbert ? hilbert_index(order, cell)
                                  : morton_index(order, cell);
}

namespace {

IndexRange square_range(Curve curve, std::uint32_t order, Cell corner,
                        std::uint32_t side_bits) {
  return curve == Curve::kHilbert
             ? hilbert_square_range(order, corner, side_bits)
             : morton_square_range(order, corner, side_bits);
}

void rect_ranges_rec(Curve curve, std::uint32_t order, Cell corner,
                     std::uint32_t x_bits, std::uint32_t y_bits,
                     std::vector<IndexRange>& out) {
  if (x_bits == y_bits) {
    out.push_back(square_range(curve, order, corner, x_bits));
    return;
  }
  if (x_bits > y_bits) {
    const std::uint64_t half = 1ull << (x_bits - 1);
    rect_ranges_rec(curve, order, corner, x_bits - 1, y_bits, out);
    rect_ranges_rec(curve, order, Cell{corner.x + half, corner.y}, x_bits - 1,
                    y_bits, out);
  } else {
    const std::uint64_t half = 1ull << (y_bits - 1);
    rect_ranges_rec(curve, order, corner, x_bits, y_bits - 1, out);
    rect_ranges_rec(curve, order, Cell{corner.x, corner.y + half}, x_bits,
                    y_bits - 1, out);
  }
}

struct BoxQuery {
  Curve curve;
  std::uint32_t order;
  std::uint64_t x_lo, x_hi, y_lo, y_hi;  // inclusive cell bounds
  std::uint32_t min_side_bits;
  std::vector<IndexRange>* out;
};

void box_ranges_rec(const BoxQuery& q, Cell corner, std::uint32_t side_bits) {
  const std::uint64_t size = 1ull << side_bits;
  const std::uint64_t sx_hi = corner.x + size - 1;
  const std::uint64_t sy_hi = corner.y + size - 1;
  if (corner.x > q.x_hi || sx_hi < q.x_lo || corner.y > q.y_hi ||
      sy_hi < q.y_lo) {
    return;  // disjoint
  }
  const bool contained = corner.x >= q.x_lo && sx_hi <= q.x_hi &&
                         corner.y >= q.y_lo && sy_hi <= q.y_hi;
  if (contained || side_bits == q.min_side_bits) {
    q.out->push_back(square_range(q.curve, q.order, corner, side_bits));
    return;
  }
  const std::uint64_t half = size / 2;
  box_ranges_rec(q, corner, side_bits - 1);
  box_ranges_rec(q, Cell{corner.x + half, corner.y}, side_bits - 1);
  box_ranges_rec(q, Cell{corner.x, corner.y + half}, side_bits - 1);
  box_ranges_rec(q, Cell{corner.x + half, corner.y + half}, side_bits - 1);
}

}  // namespace

std::vector<IndexRange> coalesce(std::vector<IndexRange> ranges) {
  std::sort(ranges.begin(), ranges.end(),
            [](const IndexRange& a, const IndexRange& b) {
              return a.first < b.first;
            });
  std::vector<IndexRange> out;
  for (const IndexRange& r : ranges) {
    if (!out.empty() && r.first <= out.back().last) {
      out.back().last = std::max(out.back().last, r.last);
    } else {
      out.push_back(r);
    }
  }
  return out;
}

std::vector<IndexRange> rect_ranges(Curve curve, std::uint32_t order,
                                    Cell corner, std::uint32_t x_bits,
                                    std::uint32_t y_bits) {
  ARMADA_CHECK(x_bits <= order && y_bits <= order);
  std::vector<IndexRange> out;
  rect_ranges_rec(curve, order, corner, x_bits, y_bits, out);
  return coalesce(std::move(out));
}

std::vector<IndexRange> box_ranges(Curve curve, std::uint32_t order,
                                   std::uint64_t x_lo, std::uint64_t x_hi,
                                   std::uint64_t y_lo, std::uint64_t y_hi,
                                   std::uint32_t min_side_bits) {
  ARMADA_CHECK(x_lo <= x_hi && y_lo <= y_hi);
  ARMADA_CHECK(x_hi < (1ull << order) && y_hi < (1ull << order));
  ARMADA_CHECK(min_side_bits <= order);
  std::vector<IndexRange> out;
  const BoxQuery q{curve, order, x_lo, x_hi, y_lo, y_hi, min_side_bits, &out};
  box_ranges_rec(q, Cell{0, 0}, order);
  return coalesce(std::move(out));
}

}  // namespace armada::sfc
