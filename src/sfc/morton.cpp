#include "sfc/morton.h"

#include "util/check.h"

namespace armada::sfc {

namespace {

std::uint64_t spread_bits(std::uint64_t v) {
  v &= 0xffffffffull;
  v = (v | (v << 16)) & 0x0000ffff0000ffffull;
  v = (v | (v << 8)) & 0x00ff00ff00ff00ffull;
  v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

std::uint64_t compact_bits(std::uint64_t v) {
  v &= 0x5555555555555555ull;
  v = (v | (v >> 1)) & 0x3333333333333333ull;
  v = (v | (v >> 2)) & 0x0f0f0f0f0f0f0f0full;
  v = (v | (v >> 4)) & 0x00ff00ff00ff00ffull;
  v = (v | (v >> 8)) & 0x0000ffff0000ffffull;
  v = (v | (v >> 16)) & 0x00000000ffffffffull;
  return v;
}

}  // namespace

std::uint64_t morton_index(std::uint32_t order, Cell cell) {
  ARMADA_CHECK(order >= 1 && order <= 31);
  const std::uint64_t side = 1ull << order;
  ARMADA_CHECK(cell.x < side && cell.y < side);
  return spread_bits(cell.x) | (spread_bits(cell.y) << 1);
}

Cell morton_cell(std::uint32_t order, std::uint64_t d) {
  ARMADA_CHECK(order >= 1 && order <= 31);
  ARMADA_CHECK(d < (1ull << (2 * order)));
  return Cell{compact_bits(d), compact_bits(d >> 1)};
}

IndexRange morton_square_range(std::uint32_t order, Cell corner,
                               std::uint32_t side_bits) {
  ARMADA_CHECK(side_bits <= order);
  const std::uint64_t size = 1ull << side_bits;
  ARMADA_CHECK_MSG(corner.x % size == 0 && corner.y % size == 0,
                   "square not aligned to its size");
  const std::uint64_t block = size * size;
  const std::uint64_t first = morton_index(order, corner) & ~(block - 1);
  return IndexRange{first, first + block};
}

}  // namespace armada::sfc
