// Morton (Z-order) curve — the cheaper, lower-locality alternative to
// Hilbert. Used by the SCRAP baseline and the naming-ablation bench.
#pragma once

#include <cstdint>

#include "sfc/hilbert.h"  // Cell, IndexRange

namespace armada::sfc {

/// Bit-interleaved index of cell (x, y); order <= 31.
std::uint64_t morton_index(std::uint32_t order, Cell cell);

/// Inverse of morton_index.
Cell morton_cell(std::uint32_t order, std::uint64_t d);

/// Index range of an aligned dyadic square (Z-order subtrees are contiguous
/// exactly like Hilbert subtrees).
IndexRange morton_square_range(std::uint32_t order, Cell corner,
                               std::uint32_t side_bits);

}  // namespace armada::sfc
