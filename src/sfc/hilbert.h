// 2-D Hilbert space-filling curve.
//
// Used by the DCF-CAN baseline (mapping the attribute interval onto CAN's
// 2-d space so that a value range becomes a connected region), and by the
// Squid / SCRAP baselines (multi-attribute linearization). The key locality
// property — consecutive indices map to edge-adjacent cells — is what makes
// directed controlled flooding terminate quickly.
#pragma once

#include <cstdint>
#include <utility>

namespace armada::sfc {

/// Grid coordinates of a cell on the order-n Hilbert curve (grid side 2^n).
struct Cell {
  std::uint64_t x = 0;
  std::uint64_t y = 0;

  bool operator==(const Cell&) const = default;
};

/// Curve position of cell (x, y); order <= 31, x,y < 2^order.
std::uint64_t hilbert_index(std::uint32_t order, Cell cell);

/// Inverse of hilbert_index; d < 4^order.
Cell hilbert_cell(std::uint32_t order, std::uint64_t d);

/// Half-open index range [first, last) covered by the axis-aligned dyadic
/// square with side 2^side_bits cells whose lower corner is `corner`
/// (corner must be aligned to the square size). Dyadic squares are exactly
/// the Hilbert recursion subtrees, so their indices are contiguous.
struct IndexRange {
  std::uint64_t first = 0;
  std::uint64_t last = 0;

  bool intersects(const IndexRange& o) const {
    return first < o.last && o.first < last;
  }
  bool operator==(const IndexRange&) const = default;
};

IndexRange hilbert_square_range(std::uint32_t order, Cell corner,
                                std::uint32_t side_bits);

}  // namespace armada::sfc
