// CAN: a d=2 content-addressable network (Ratnasamy et al., SIGCOMM'01),
// the substrate of the DCF-CAN baseline (Andrzejak & Xu, P2P'02) that the
// paper compares PIRA against. With d=2 each node has ~4 neighbors —
// matching FISSIONE's average degree, which is the paper's comparison setup
// ("the average degree of the underlying DHT is 4", §4.3.3).
//
// Zones are dyadic rectangles of the unit torus: joins split the longer
// side in half, so side ratios stay <= 2 and every zone is 1-2 aligned
// dyadic squares (the property the Hilbert mapping exploits).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/routed_overlay.h"
#include "sim/metrics.h"
#include "util/rng.h"

namespace armada::can {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Dyadic rectangle: x in [x_num/2^x_bits, (x_num+1)/2^x_bits), same for y.
/// Boundaries are dyadic rationals, hence exact doubles.
struct Zone {
  std::uint64_t x_num = 0;
  std::uint64_t y_num = 0;
  std::uint32_t x_bits = 0;
  std::uint32_t y_bits = 0;

  double x_lo() const;
  double x_hi() const;
  double y_lo() const;
  double y_hi() const;
  bool contains(double x, double y) const;
  /// Edge adjacency on the unit torus (positive-length shared boundary).
  bool adjacent(const Zone& other) const;
  /// Squared Euclidean torus distance from the zone to a point.
  double distance2(double x, double y) const;
};

/// Cost of one greedy-routing walk, in the shared query-stats currency:
/// messages == delay == hop count, latency is the sum of link latencies
/// along the greedy path under the network's latency model.
struct CanRoute {
  NodeId final_node = kNoNode;
  sim::QueryStats stats;
};

class CanNetwork final : public overlay::RoutedOverlay {
 public:
  /// Build an n-node network by joining at uniformly random points.
  CanNetwork(std::size_t n, std::uint64_t seed);

  std::size_t num_nodes() const { return zones_.size(); }
  std::size_t overlay_size() const override { return zones_.size(); }
  const Zone& zone(NodeId id) const;
  const std::vector<NodeId>& neighbors(NodeId id) const;

  /// The node whose zone contains (x, y); x,y in [0,1).
  NodeId node_at(double x, double y) const;

  /// Greedy CAN routing to the zone containing (x, y); hops counted.
  CanRoute route(NodeId from, double x, double y) const;

  NodeId random_node();

  /// Structure checks: dyadic tiling, ratio <= 2, neighbor symmetry.
  void check_invariants() const;
  /// O(N^2) adjacency cross-check (tests at small N).
  void check_neighbors_brute_force() const;
  double average_degree() const;

 private:
  struct KdNode {
    // Leaf iff node != kNoNode.
    NodeId node = kNoNode;
    std::uint32_t split_dim = 0;  ///< 0 = x, 1 = y
    double split_at = 0.0;
    std::unique_ptr<KdNode> lower;
    std::unique_ptr<KdNode> upper;
  };

  void join();
  void split_zone(NodeId victim);
  KdNode* leaf_for(double x, double y) const;

  Rng rng_;
  std::unique_ptr<KdNode> root_;
  std::vector<Zone> zones_;                      // by NodeId
  std::vector<std::vector<NodeId>> neighbors_;   // by NodeId
  std::vector<KdNode*> leaves_;                  // by NodeId
};

}  // namespace armada::can
