#include "can/can_network.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace armada::can {

namespace {

// 1-D torus distance from interval [lo, hi) to coordinate p.
double interval_distance(double lo, double hi, double p) {
  double best = 1.0;
  for (double shift : {-1.0, 0.0, 1.0}) {
    const double l = lo + shift;
    const double h = hi + shift;
    if (p >= l && p < h) {
      return 0.0;
    }
    best = std::min(best, p < l ? l - p : p - h);
  }
  return best;
}

// Positive-length overlap of [a0, a1) and [b0, b1).
bool overlaps(double a0, double a1, double b0, double b1) {
  return a0 < b1 && b0 < a1;
}

// Shared vertical/horizontal boundary on the torus.
bool touch(double a_hi, double b_lo) {
  return a_hi == b_lo || (a_hi == 1.0 && b_lo == 0.0);
}

}  // namespace

double Zone::x_lo() const {
  return static_cast<double>(x_num) / std::exp2(x_bits);
}
double Zone::x_hi() const {
  return static_cast<double>(x_num + 1) / std::exp2(x_bits);
}
double Zone::y_lo() const {
  return static_cast<double>(y_num) / std::exp2(y_bits);
}
double Zone::y_hi() const {
  return static_cast<double>(y_num + 1) / std::exp2(y_bits);
}

bool Zone::contains(double x, double y) const {
  return x >= x_lo() && x < x_hi() && y >= y_lo() && y < y_hi();
}

bool Zone::adjacent(const Zone& other) const {
  const bool x_touch = touch(x_hi(), other.x_lo()) || touch(other.x_hi(), x_lo());
  const bool y_touch = touch(y_hi(), other.y_lo()) || touch(other.y_hi(), y_lo());
  if (x_touch && overlaps(y_lo(), y_hi(), other.y_lo(), other.y_hi())) {
    return true;
  }
  return y_touch && overlaps(x_lo(), x_hi(), other.x_lo(), other.x_hi());
}

double Zone::distance2(double x, double y) const {
  const double dx = interval_distance(x_lo(), x_hi(), x);
  const double dy = interval_distance(y_lo(), y_hi(), y);
  return dx * dx + dy * dy;
}

CanNetwork::CanNetwork(std::size_t n, std::uint64_t seed) : rng_(seed) {
  ARMADA_CHECK(n >= 1);
  root_ = std::make_unique<KdNode>();
  root_->node = 0;
  zones_.push_back(Zone{});
  neighbors_.emplace_back();
  leaves_.push_back(root_.get());
  while (zones_.size() < n) {
    join();
  }
}

const Zone& CanNetwork::zone(NodeId id) const {
  ARMADA_CHECK(id < zones_.size());
  return zones_[id];
}

const std::vector<NodeId>& CanNetwork::neighbors(NodeId id) const {
  ARMADA_CHECK(id < neighbors_.size());
  return neighbors_[id];
}

CanNetwork::KdNode* CanNetwork::leaf_for(double x, double y) const {
  KdNode* cur = root_.get();
  while (cur->node == kNoNode) {
    const double v = cur->split_dim == 0 ? x : y;
    cur = v < cur->split_at ? cur->lower.get() : cur->upper.get();
  }
  return cur;
}

NodeId CanNetwork::node_at(double x, double y) const {
  ARMADA_CHECK(x >= 0.0 && x < 1.0 && y >= 0.0 && y < 1.0);
  return leaf_for(x, y)->node;
}

void CanNetwork::join() {
  const double x = rng_.next_double();
  const double y = rng_.next_double();
  split_zone(node_at(x, y));
}

void CanNetwork::split_zone(NodeId victim) {
  Zone& old_zone = zones_[victim];
  // Split the longer side (the dimension with fewer bits); ties split x.
  const bool split_x = old_zone.x_bits <= old_zone.y_bits;

  Zone lower = old_zone;
  Zone upper = old_zone;
  if (split_x) {
    lower.x_bits = upper.x_bits = old_zone.x_bits + 1;
    lower.x_num = 2 * old_zone.x_num;
    upper.x_num = 2 * old_zone.x_num + 1;
  } else {
    lower.y_bits = upper.y_bits = old_zone.y_bits + 1;
    lower.y_num = 2 * old_zone.y_num;
    upper.y_num = 2 * old_zone.y_num + 1;
  }

  const NodeId joiner = static_cast<NodeId>(zones_.size());
  zones_.push_back(upper);
  neighbors_.emplace_back();
  zones_[victim] = lower;

  // Rewire the kd-tree leaf into an internal node with two leaves.
  KdNode* node = leaves_[victim];
  node->split_dim = split_x ? 0 : 1;
  node->split_at = split_x ? lower.x_hi() : lower.y_hi();
  node->node = kNoNode;
  node->lower = std::make_unique<KdNode>();
  node->upper = std::make_unique<KdNode>();
  node->lower->node = victim;
  node->upper->node = joiner;
  leaves_[victim] = node->lower.get();
  leaves_.push_back(node->upper.get());

  // New adjacencies are confined to the old zone's neighborhood.
  const std::vector<NodeId> old_neighbors = neighbors_[victim];
  neighbors_[victim].clear();
  auto link = [this](NodeId a, NodeId b) {
    neighbors_[a].push_back(b);
    neighbors_[b].push_back(a);
  };
  if (zones_[victim].adjacent(zones_[joiner])) {
    link(victim, joiner);
  }
  for (NodeId w : old_neighbors) {
    auto& wn = neighbors_[w];
    wn.erase(std::remove(wn.begin(), wn.end(), victim), wn.end());
    if (zones_[w].adjacent(zones_[victim])) {
      link(w, victim);
    }
    if (zones_[w].adjacent(zones_[joiner])) {
      link(w, joiner);
    }
  }
}

CanRoute CanNetwork::route(NodeId from, double x, double y) const {
  ARMADA_CHECK(from < zones_.size());
  CanRoute r;
  NodeId cur = from;
  double cur_dist = zones_[cur].distance2(x, y);
  while (!zones_[cur].contains(x, y)) {
    NodeId best = kNoNode;
    double best_dist = cur_dist;
    for (NodeId n : neighbors_[cur]) {
      const double d = zones_[n].distance2(x, y);
      if (d < best_dist) {
        best = n;
        best_dist = d;
      }
    }
    ARMADA_CHECK_MSG(best != kNoNode, "greedy routing stuck");
    overlay::step(r.stats, transport_, cur, best);
    cur = best;
    cur_dist = best_dist;
    ARMADA_CHECK_MSG(r.stats.messages <= zones_.size(),
                     "routing loop suspected");
  }
  r.final_node = cur;
  return r;
}

NodeId CanNetwork::random_node() {
  return static_cast<NodeId>(rng_.next_index(zones_.size()));
}

void CanNetwork::check_invariants() const {
  double total_area = 0.0;
  for (NodeId id = 0; id < zones_.size(); ++id) {
    const Zone& z = zones_[id];
    const std::uint32_t gap =
        z.x_bits > z.y_bits ? z.x_bits - z.y_bits : z.y_bits - z.x_bits;
    ARMADA_CHECK_MSG(gap <= 1, "zone side ratio exceeds 2");
    ARMADA_CHECK(z.x_num < (1ull << z.x_bits));
    ARMADA_CHECK(z.y_num < (1ull << z.y_bits));
    total_area += (z.x_hi() - z.x_lo()) * (z.y_hi() - z.y_lo());
    ARMADA_CHECK(leaves_[id]->node == id);
    // Symmetry and correctness of recorded adjacency.
    for (NodeId n : neighbors_[id]) {
      ARMADA_CHECK(zones_[id].adjacent(zones_[n]));
      const auto& back = neighbors_[n];
      ARMADA_CHECK(std::find(back.begin(), back.end(), id) != back.end());
    }
    // No duplicate neighbor entries.
    auto copy = neighbors_[id];
    std::sort(copy.begin(), copy.end());
    ARMADA_CHECK(std::adjacent_find(copy.begin(), copy.end()) == copy.end());
  }
  ARMADA_CHECK_MSG(std::abs(total_area - 1.0) < 1e-9, "zones do not tile");
}

void CanNetwork::check_neighbors_brute_force() const {
  for (NodeId a = 0; a < zones_.size(); ++a) {
    for (NodeId b = 0; b < zones_.size(); ++b) {
      if (a == b) {
        continue;
      }
      const bool adj = zones_[a].adjacent(zones_[b]);
      const auto& na = neighbors_[a];
      const bool listed = std::find(na.begin(), na.end(), b) != na.end();
      ARMADA_CHECK_MSG(adj == listed, "adjacency mismatch between zones "
                                          << a << " and " << b);
    }
  }
}

double CanNetwork::average_degree() const {
  std::size_t total = 0;
  for (const auto& n : neighbors_) {
    total += n.size();
  }
  return static_cast<double>(total) / static_cast<double>(neighbors_.size());
}

}  // namespace armada::can
