// Chord (Stoica et al.): the O(log N)-degree DHT ring used by the Squid
// baseline and by PHT-over-Chord comparisons (paper Table 1 rows).
//
// The ring is the full 64-bit space with wrap-around; every key is owned by
// its successor node. Fingers follow the classic rule
// finger[i] = successor(key + 2^i); greedy routing forwards to the closest
// preceding finger and reaches any key in O(log N) hops.
#pragma once

#include <cstdint>
#include <vector>

#include "net/routed_overlay.h"
#include "sim/metrics.h"
#include "util/rng.h"

namespace armada::chord {

using NodeId = std::uint32_t;
using Key = std::uint64_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// True iff x lies in the half-open ring interval (a, b] (wrap-aware);
/// the whole ring when a == b.
bool in_ring_range(Key a, Key b, Key x);

/// Cost of one iterative finger-routing walk, in the shared query-stats
/// currency: messages == delay == hop count, latency is the sum of link
/// latencies along the walk under the network's latency model.
struct ChordRoute {
  NodeId owner = kNoNode;
  sim::QueryStats stats;
};

class ChordNetwork final : public overlay::RoutedOverlay {
 public:
  /// n nodes at distinct uniform random ring positions.
  ChordNetwork(std::size_t n, std::uint64_t seed);

  std::size_t num_nodes() const { return keys_.size(); }
  std::size_t overlay_size() const override { return keys_.size(); }
  Key node_key(NodeId id) const;
  NodeId successor_node(NodeId id) const;
  NodeId predecessor_node(NodeId id) const;

  /// Ground-truth owner of `key` (binary search over sorted positions).
  NodeId owner_of(Key key) const;

  /// Iterative finger routing from `from` to the owner of `key`.
  ChordRoute route(NodeId from, Key key) const;

  NodeId random_node();

  /// Finger-table correctness, ring ordering, successor consistency.
  void check_invariants() const;
  double average_route_hops(int samples, std::uint64_t seed) const;
  /// Average number of distinct finger targets per node (~log2 N).
  double average_degree() const;

 private:
  NodeId closest_preceding_finger(NodeId node, Key key) const;

  Rng rng_;
  std::vector<Key> keys_;                        // by NodeId, sorted
  std::vector<std::vector<NodeId>> fingers_;     // by NodeId, 64 entries
};

}  // namespace armada::chord
