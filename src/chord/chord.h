// Chord (Stoica et al.): the O(log N)-degree DHT ring used by the Squid
// baseline and by PHT-over-Chord comparisons (paper Table 1 rows).
//
// The ring is the full 64-bit space with wrap-around; every key is owned by
// its successor node. Fingers follow the classic rule
// finger[i] = successor(key + 2^i); greedy routing forwards to the closest
// preceding finger and reaches any key in O(log N) hops.
//
// Membership: nodes join at fresh random ring positions and leave/crash with
// their keyspace absorbed by the successor. NodeIds are stable (dead ids are
// never reused); the alive set lives in a sorted ring index. Structural
// repair commutes instantly — finger entries whose owner changed are
// repointed in place — and the optional MembershipReport captures exactly
// which nodes were rewired so a timed churn driver (chord::ChurnDriver) can
// price the successor/finger repair protocol as transport deliveries.
#pragma once

#include <cstdint>
#include <vector>

#include "net/routed_overlay.h"
#include "sim/metrics.h"
#include "util/rng.h"

namespace armada::chord {

using NodeId = std::uint32_t;
using Key = std::uint64_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// True iff x lies in the half-open ring interval (a, b] (wrap-aware);
/// the whole ring when a == b.
bool in_ring_range(Key a, Key b, Key x);

/// Cost of one iterative finger-routing walk, in the shared query-stats
/// currency: messages == delay == hop count, latency is the sum of link
/// latencies along the walk under the network's latency model.
struct ChordRoute {
  NodeId owner = kNoNode;
  sim::QueryStats stats;
};

class ChordNetwork final : public overlay::RoutedOverlay {
 public:
  /// What a membership event would put on the wire (see chord::ChurnDriver):
  /// filled optionally by join/leave/crash; capturing it never changes the
  /// structural outcome or the RNG stream.
  struct MembershipReport {
    NodeId node = kNoNode;         ///< joiner, or the departed node
    NodeId successor = kNoNode;    ///< ring successor after the change
    NodeId predecessor = kNoNode;  ///< ring predecessor after the change
    /// Alive nodes (excluding `node`) with at least one repointed finger.
    std::vector<NodeId> rewired;
    /// Distinct finger targets the joiner had to look up (join only).
    std::vector<NodeId> finger_targets;
    /// Join placement lookup: the route to the joiner's successor.
    std::uint32_t placement_hops = 0;
    double placement_latency = 0.0;
  };

  /// n nodes at distinct uniform random ring positions.
  ChordNetwork(std::size_t n, std::uint64_t seed);

  /// Alive nodes.
  std::size_t num_nodes() const { return ring_.size(); }
  std::size_t overlay_size() const override { return ring_.size(); }
  /// One past the largest NodeId ever issued (dead ids included). Size
  /// NodeId-indexed tables with THIS, not num_nodes(): after churn the
  /// alive count is smaller than the id range.
  std::size_t node_id_bound() const { return keys_.size(); }
  bool is_alive(NodeId id) const {
    return id < alive_.size() && alive_[id];
  }
  Key node_key(NodeId id) const;
  NodeId successor_node(NodeId id) const;
  NodeId predecessor_node(NodeId id) const;
  /// Alive node ids in ring (key) order.
  const std::vector<NodeId>& ring() const { return ring_; }

  // --- membership -------------------------------------------------------
  /// Join at a fresh random position; returns the new node's id.
  NodeId join(MembershipReport* report = nullptr);
  /// Graceful departure: keyspace handed to the successor.
  void leave(NodeId node, MembershipReport* report = nullptr);
  /// Ungraceful failure: same structural healing, but a timed driver prices
  /// it only after a detection timeout.
  void crash(NodeId node, MembershipReport* report = nullptr);

  /// Ground-truth owner of `key` (binary search over the alive ring).
  NodeId owner_of(Key key) const;

  /// Iterative finger routing from `from` to the owner of `key`. The
  /// hot-path overload stays allocation-free; pass `path_out` (filled with
  /// source..owner) only when the walk itself is needed — e.g. the churn
  /// driver's stale-route replay.
  ChordRoute route(NodeId from, Key key) const { return route(from, key, nullptr); }
  ChordRoute route(NodeId from, Key key, std::vector<NodeId>* path_out) const;

  /// Uniformly chosen alive node.
  NodeId random_node();

  /// Finger-table correctness, ring ordering, successor consistency.
  void check_invariants() const;
  double average_route_hops(int samples, std::uint64_t seed) const;
  /// Average number of distinct finger targets per node (~log2 N).
  double average_degree() const;

 private:
  static constexpr std::uint32_t kFingerBits = 64;

  NodeId finger(NodeId node, std::uint32_t i) const {
    return fingers_[node * kFingerBits + i];
  }
  NodeId& finger(NodeId node, std::uint32_t i) {
    return fingers_[node * kFingerBits + i];
  }

  NodeId closest_preceding_finger(NodeId node, Key key) const;
  /// Remove `node` from the ring, repointing fingers to its successor.
  void remove_node(NodeId node, MembershipReport* report);
  /// Recompute ring_pos_ for ring_ entries from `from` onward.
  void reindex_ring(std::size_t from);

  Rng rng_;
  std::vector<Key> keys_;                     // by NodeId; dead ids retained
  std::vector<bool> alive_;                   // by NodeId
  std::vector<NodeId> ring_;                  // alive ids, sorted by key
  std::vector<std::size_t> ring_pos_;         // by NodeId, index into ring_
  /// Finger tables, flat: entry i of node n at n * kFingerBits + i. One
  /// contiguous block instead of one heap vector per node, so greedy
  /// routing's top-down finger scan stays on one cache stream.
  std::vector<NodeId> fingers_;
};

}  // namespace armada::chord
