#include "chord/chord.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace armada::chord {

bool in_ring_range(Key a, Key b, Key x) {
  if (a == b) {
    return true;  // the interval covers the whole ring
  }
  if (a < b) {
    return x > a && x <= b;
  }
  return x > a || x <= b;  // wraps
}

ChordNetwork::ChordNetwork(std::size_t n, std::uint64_t seed) : rng_(seed) {
  ARMADA_CHECK(n >= 1);
  std::set<Key> unique;
  while (unique.size() < n) {
    unique.insert(rng_.engine()());
  }
  keys_.assign(unique.begin(), unique.end());

  fingers_.resize(n);
  for (NodeId id = 0; id < n; ++id) {
    fingers_[id].resize(64);
    for (std::uint32_t i = 0; i < 64; ++i) {
      fingers_[id][i] = owner_of(keys_[id] + (1ull << i));
    }
  }
}

Key ChordNetwork::node_key(NodeId id) const {
  ARMADA_CHECK(id < keys_.size());
  return keys_[id];
}

NodeId ChordNetwork::successor_node(NodeId id) const {
  ARMADA_CHECK(id < keys_.size());
  return static_cast<NodeId>((id + 1) % keys_.size());
}

NodeId ChordNetwork::predecessor_node(NodeId id) const {
  ARMADA_CHECK(id < keys_.size());
  return static_cast<NodeId>((id + keys_.size() - 1) % keys_.size());
}

NodeId ChordNetwork::owner_of(Key key) const {
  // First node position >= key, wrapping to the smallest.
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end()) {
    return 0;
  }
  return static_cast<NodeId>(it - keys_.begin());
}

NodeId ChordNetwork::closest_preceding_finger(NodeId node, Key key) const {
  const Key from = keys_[node];
  for (std::uint32_t i = 64; i > 0; --i) {
    const NodeId f = fingers_[node][i - 1];
    const Key fk = keys_[f];
    if (f != node && in_ring_range(from, key, fk) && fk != key) {
      return f;
    }
  }
  return node;
}

ChordRoute ChordNetwork::route(NodeId from, Key key) const {
  ARMADA_CHECK(from < keys_.size());
  ChordRoute r;
  NodeId cur = from;
  while (true) {
    if (keys_[cur] == key) {
      break;  // landed exactly on the owner
    }
    const NodeId succ = successor_node(cur);
    if (in_ring_range(keys_[cur], keys_[succ], key)) {
      overlay::step(r.stats, transport_, cur, succ);
      cur = succ;  // final hop to the owner
      break;
    }
    const NodeId next = closest_preceding_finger(cur, key);
    ARMADA_CHECK_MSG(next != cur, "finger routing stuck");
    overlay::step(r.stats, transport_, cur, next);
    cur = next;
    ARMADA_CHECK_MSG(r.stats.messages <= keys_.size(),
                     "routing loop suspected");
  }
  r.owner = cur;
  ARMADA_CHECK(cur == owner_of(key));
  return r;
}

NodeId ChordNetwork::random_node() {
  return static_cast<NodeId>(rng_.next_index(keys_.size()));
}

void ChordNetwork::check_invariants() const {
  ARMADA_CHECK(std::is_sorted(keys_.begin(), keys_.end()));
  ARMADA_CHECK(std::adjacent_find(keys_.begin(), keys_.end()) == keys_.end());
  for (NodeId id = 0; id < keys_.size(); ++id) {
    for (std::uint32_t i = 0; i < 64; ++i) {
      ARMADA_CHECK_MSG(fingers_[id][i] == owner_of(keys_[id] + (1ull << i)),
                       "stale finger " << i << " at node " << id);
    }
  }
}

double ChordNetwork::average_degree() const {
  std::size_t total = 0;
  for (const auto& fingers : fingers_) {
    std::set<NodeId> distinct(fingers.begin(), fingers.end());
    total += distinct.size();
  }
  return static_cast<double>(total) / static_cast<double>(keys_.size());
}

double ChordNetwork::average_route_hops(int samples,
                                        std::uint64_t seed) const {
  Rng rng(seed);
  double total = 0.0;
  for (int i = 0; i < samples; ++i) {
    const NodeId from = static_cast<NodeId>(rng.next_index(keys_.size()));
    total += route(from, rng.engine()()).stats.delay;
  }
  return total / samples;
}

}  // namespace armada::chord
