#include "chord/chord.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace armada::chord {

bool in_ring_range(Key a, Key b, Key x) {
  if (a == b) {
    return true;  // the interval covers the whole ring
  }
  if (a < b) {
    return x > a && x <= b;
  }
  return x > a || x <= b;  // wraps
}

ChordNetwork::ChordNetwork(std::size_t n, std::uint64_t seed) : rng_(seed) {
  ARMADA_CHECK(n >= 1);
  std::set<Key> unique;
  while (unique.size() < n) {
    unique.insert(rng_.engine()());
  }
  keys_.assign(unique.begin(), unique.end());
  alive_.assign(n, true);
  ring_.resize(n);
  ring_pos_.resize(n);
  for (NodeId id = 0; id < n; ++id) {
    ring_[id] = id;  // keys_ is sorted, so id order is ring order
    ring_pos_[id] = id;
  }

  fingers_.resize(n * kFingerBits);
  for (NodeId id = 0; id < n; ++id) {
    for (std::uint32_t i = 0; i < kFingerBits; ++i) {
      finger(id, i) = owner_of(keys_[id] + (1ull << i));
    }
  }
}

Key ChordNetwork::node_key(NodeId id) const {
  ARMADA_CHECK(id < keys_.size());
  return keys_[id];
}

NodeId ChordNetwork::successor_node(NodeId id) const {
  ARMADA_CHECK(is_alive(id));
  return ring_[(ring_pos_[id] + 1) % ring_.size()];
}

NodeId ChordNetwork::predecessor_node(NodeId id) const {
  ARMADA_CHECK(is_alive(id));
  return ring_[(ring_pos_[id] + ring_.size() - 1) % ring_.size()];
}

NodeId ChordNetwork::owner_of(Key key) const {
  // First alive ring position with key >= `key`, wrapping to the smallest.
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [this](NodeId id, Key k) { return keys_[id] < k; });
  if (it == ring_.end()) {
    return ring_.front();
  }
  return *it;
}

void ChordNetwork::reindex_ring(std::size_t from) {
  for (std::size_t i = from; i < ring_.size(); ++i) {
    ring_pos_[ring_[i]] = i;
  }
}

NodeId ChordNetwork::join(MembershipReport* report) {
  // Fresh unique position (checked against every key ever used, so a dead
  // node's position is never resurrected).
  Key key;
  do {
    key = rng_.engine()();
  } while (std::find(keys_.begin(), keys_.end(), key) != keys_.end());

  // Placement lookup: route from a random alive node to the key's current
  // owner — the joiner's successor-to-be. Priced whether or not a report is
  // captured, so reporting never skews the RNG stream.
  std::uint32_t placement_hops = 0;
  double placement_latency = 0.0;
  if (ring_.size() >= 2) {
    const ChordRoute placement = route(random_node(), key);
    placement_hops = static_cast<std::uint32_t>(placement.stats.messages);
    placement_latency = placement.stats.latency;
  }

  const NodeId id = static_cast<NodeId>(keys_.size());
  keys_.push_back(key);
  alive_.push_back(true);
  fingers_.resize(fingers_.size() + kFingerBits, kNoNode);
  ring_pos_.push_back(0);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [this](NodeId n, Key k) { return keys_[n] < k; });
  const std::size_t pos = static_cast<std::size_t>(it - ring_.begin());
  ring_.insert(ring_.begin() + static_cast<std::ptrdiff_t>(pos), id);
  reindex_ring(pos);

  const NodeId succ = successor_node(id);
  const NodeId pred = predecessor_node(id);

  // Existing fingers whose start now falls in (pred, id] repoint from the
  // old owner (the successor) to the joiner.
  std::vector<NodeId> rewired;
  if (ring_.size() > 1) {
    for (NodeId n : ring_) {
      if (n == id) {
        continue;
      }
      bool changed = false;
      for (std::uint32_t i = 0; i < kFingerBits; ++i) {
        const Key start = keys_[n] + (1ull << i);
        if (finger(n, i) != id && in_ring_range(keys_[pred], key, start)) {
          finger(n, i) = id;
          changed = true;
        }
      }
      if (changed) {
        rewired.push_back(n);
      }
    }
  }

  // The joiner builds its own table: one lookup per entry, landing on a
  // handful of distinct targets.
  std::set<NodeId> targets;
  for (std::uint32_t i = 0; i < kFingerBits; ++i) {
    finger(id, i) = owner_of(keys_[id] + (1ull << i));
    if (finger(id, i) != id) {
      targets.insert(finger(id, i));
    }
  }

  if (report != nullptr) {
    report->node = id;
    report->successor = succ;
    report->predecessor = pred;
    report->rewired = std::move(rewired);
    report->finger_targets.assign(targets.begin(), targets.end());
    report->placement_hops = placement_hops;
    report->placement_latency = placement_latency;
  }
  return id;
}

void ChordNetwork::remove_node(NodeId node, MembershipReport* report) {
  ARMADA_CHECK(is_alive(node));
  ARMADA_CHECK_MSG(ring_.size() > 2, "cannot drop below a 3-node ring");

  const NodeId succ = successor_node(node);
  const NodeId pred = predecessor_node(node);
  const std::size_t pos = ring_pos_[node];
  ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(pos));
  reindex_ring(pos);
  alive_[node] = false;

  // The departed node's interval is absorbed by its successor: every finger
  // that pointed at it repoints there.
  std::vector<NodeId> rewired;
  for (NodeId n : ring_) {
    bool changed = false;
    for (std::uint32_t i = 0; i < kFingerBits; ++i) {
      if (finger(n, i) == node) {
        finger(n, i) = succ;
        changed = true;
      }
    }
    if (changed) {
      rewired.push_back(n);
    }
  }
  std::fill_n(fingers_.begin() + node * kFingerBits, kFingerBits, kNoNode);

  if (report != nullptr) {
    report->node = node;
    report->successor = succ;
    report->predecessor = pred;
    report->rewired = std::move(rewired);
  }
}

void ChordNetwork::leave(NodeId node, MembershipReport* report) {
  remove_node(node, report);
}

void ChordNetwork::crash(NodeId node, MembershipReport* report) {
  remove_node(node, report);
}

NodeId ChordNetwork::closest_preceding_finger(NodeId node, Key key) const {
  const Key from = keys_[node];
  for (std::uint32_t i = kFingerBits; i > 0; --i) {
    const NodeId f = finger(node, i - 1);
    const Key fk = keys_[f];
    if (f != node && in_ring_range(from, key, fk) && fk != key) {
      return f;
    }
  }
  return node;
}

ChordRoute ChordNetwork::route(NodeId from, Key key,
                               std::vector<NodeId>* path_out) const {
  ARMADA_CHECK(is_alive(from));
  ChordRoute r;
  NodeId cur = from;
  auto record = [path_out](NodeId n) {
    if (path_out != nullptr) {
      path_out->push_back(n);
    }
  };
  if (path_out != nullptr) {
    path_out->clear();
  }
  record(cur);
  while (true) {
    if (keys_[cur] == key) {
      break;  // landed exactly on the owner
    }
    const NodeId succ = successor_node(cur);
    if (in_ring_range(keys_[cur], keys_[succ], key)) {
      overlay::step(r.stats, transport_, cur, succ);
      cur = succ;  // final hop to the owner
      record(cur);
      break;
    }
    const NodeId next = closest_preceding_finger(cur, key);
    ARMADA_CHECK_MSG(next != cur, "finger routing stuck");
    overlay::step(r.stats, transport_, cur, next);
    cur = next;
    record(cur);
    ARMADA_CHECK_MSG(r.stats.messages <= ring_.size(),
                     "routing loop suspected");
  }
  r.owner = cur;
  ARMADA_CHECK(cur == owner_of(key));
  return r;
}

NodeId ChordNetwork::random_node() {
  return ring_[rng_.next_index(ring_.size())];
}

void ChordNetwork::check_invariants() const {
  ARMADA_CHECK(!ring_.empty());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    ARMADA_CHECK(is_alive(ring_[i]));
    ARMADA_CHECK(ring_pos_[ring_[i]] == i);
    if (i > 0) {
      ARMADA_CHECK(keys_[ring_[i - 1]] < keys_[ring_[i]]);
    }
  }
  for (NodeId id : ring_) {
    for (std::uint32_t i = 0; i < kFingerBits; ++i) {
      ARMADA_CHECK_MSG(finger(id, i) == owner_of(keys_[id] + (1ull << i)),
                       "stale finger " << i << " at node " << id);
    }
  }
}

double ChordNetwork::average_degree() const {
  std::size_t total = 0;
  for (NodeId id : ring_) {
    const auto first = fingers_.begin() + id * kFingerBits;
    std::set<NodeId> distinct(first, first + kFingerBits);
    total += distinct.size();
  }
  return static_cast<double>(total) / static_cast<double>(ring_.size());
}

double ChordNetwork::average_route_hops(int samples,
                                        std::uint64_t seed) const {
  Rng rng(seed);
  double total = 0.0;
  for (int i = 0; i < samples; ++i) {
    const NodeId from = ring_[rng.next_index(ring_.size())];
    total += route(from, rng.engine()()).stats.delay;
  }
  return total / samples;
}

}  // namespace armada::chord
