// Event-driven membership for the Chord baseline: successor/finger repair
// as transport-priced message exchanges on the Simulator.
//
// The FISSIONE counterpart (fissione::ChurnDriver) documents the shared
// model; this driver prices the classic Chord protocol instead:
//
//  * Join — the placement lookup to the joiner's successor, notifications
//    to successor and predecessor, one lookup per distinct finger target to
//    build the joiner's table, and one update delivery to every node whose
//    finger was repointed. The joiner is stale until its table is built;
//    rewired nodes are stale until their update arrives.
//  * Leave — goodbye notifications to successor and predecessor, a keyspace
//    handoff to the successor, and finger updates radiating from the
//    successor.
//  * Crash — no goodbye: healing waits out the detection timeout, then the
//    successor repairs the ring and radiates finger updates. Stale windows
//    start at the crash instant, so routes chase the dead node meanwhile.
//
// Costs land in the shared sim::ChurnStats; the stale-aware route wrapper
// records detour-or-fail outcomes for queries racing repair.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "chord/chord.h"
#include "sim/churn.h"
#include "sim/event_queue.h"

namespace armada::chord {

class ChurnDriver {
 public:
  struct Config {
    /// Timeout before a crash is detected and healing traffic departs.
    sim::Time crash_detect_delay = 2.0;
    /// Stale forward attempts tolerated per route before it is aborted.
    std::uint32_t max_detours = 3;
    /// Leave/crash events are skipped (counted in stats) below this size.
    std::size_t min_nodes = 8;
    /// Degenerate schedule: repair completes instantly and every stale
    /// window is empty — bitwise the instant join/leave/crash path.
    bool zero_delay = false;
  };

  ChurnDriver(ChordNetwork& net, sim::Simulator& sim)
      : ChurnDriver(net, sim, Config()) {}
  ChurnDriver(ChordNetwork& net, sim::Simulator& sim, Config config);

  ChurnDriver(const ChurnDriver&) = delete;
  ChurnDriver& operator=(const ChurnDriver&) = delete;

  void schedule(const sim::ChurnEvent& event);
  void schedule(const std::vector<sim::ChurnEvent>& events);

  /// Execute one membership change at sim.now() (see fissione::ChurnDriver).
  void execute(sim::ChurnEventKind kind);

  const sim::ChurnStats& stats() const { return stats_; }
  ChordNetwork& net() { return net_; }
  const Config& config() const { return config_; }

  /// Hook invoked after every *executed* membership event, at sim.now()
  /// with the repair exchange already scheduled — the generic seam layers
  /// above the DHT (e.g. the replica subsystem) refresh through. Skipped
  /// events don't fire it.
  void set_membership_hook(std::function<void()> hook) {
    membership_hook_ = std::move(hook);
  }

  // --- stale-window introspection (evaluated at sim.now()) -----------------
  bool is_stale(NodeId node) const {
    return windows_.stale_at(node, sim_.now());
  }
  sim::Time stale_until(NodeId node) const { return windows_.until(node); }
  std::vector<NodeId> stale_nodes() const;

  /// Stale-aware finger routing at sim.now(): hops leaving a node inside an
  /// open window first chase a dead or repointed finger and detour (one
  /// extra message, hop, and link charge); exhausting the detour budget
  /// aborts the route (failed, no owner).
  struct StaleRoute {
    ChordRoute route;           ///< structural walk (surcharges excluded)
    std::vector<NodeId> path;   ///< the walk, source..owner
    sim::QueryStats stats;      ///< walk cost including detour surcharges
    bool stale = false;
    std::uint32_t detours = 0;
    bool failed = false;
  };
  /// Records one query outcome in stats() per call.
  StaleRoute route(NodeId from, Key key);

 private:
  void apply_repair(const ChordNetwork::MembershipReport& report,
                    sim::ChurnEventKind kind, sim::Time start);
  sim::Time priced(sim::Time latency) const {
    return config_.zero_delay ? 0.0 : latency;
  }

  ChordNetwork& net_;
  sim::Simulator& sim_;
  Config config_;
  sim::ChurnStats stats_;
  sim::StaleWindows windows_;  ///< by NodeId
  std::function<void()> membership_hook_;  ///< may be empty
};

}  // namespace armada::chord
