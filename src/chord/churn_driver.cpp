#include "chord/churn_driver.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"

namespace armada::chord {
namespace {

const char* repair_trace_name(sim::ChurnEventKind kind) {
  switch (kind) {
    case sim::ChurnEventKind::kJoin:
      return "repair/join";
    case sim::ChurnEventKind::kLeave:
      return "repair/leave";
    case sim::ChurnEventKind::kCrash:
      return "repair/crash";
  }
  return "repair";
}

}  // namespace

ChurnDriver::ChurnDriver(ChordNetwork& net, sim::Simulator& sim, Config config)
    : net_(net), sim_(sim), config_(config) {
  ARMADA_CHECK(config_.crash_detect_delay >= 0.0);
  ARMADA_CHECK_MSG(config_.min_nodes > 2, "floor must keep a 3-node ring");
}

void ChurnDriver::schedule(const sim::ChurnEvent& event) {
  sim_.schedule_at(event.at, [this, kind = event.kind] { execute(kind); });
}

void ChurnDriver::schedule(const std::vector<sim::ChurnEvent>& events) {
  for (const sim::ChurnEvent& e : events) {
    schedule(e);
  }
}

void ChurnDriver::execute(sim::ChurnEventKind kind) {
  const sim::Time start = sim_.now();
  // Root a repair trace around the event (see fissione::ChurnDriver).
  obs::TraceRecorder* rec = net_.transport().trace();
  const std::uint64_t troot =
      rec != nullptr ? rec->maybe_begin(repair_trace_name(kind), 0, start) : 0;
  const obs::TraceRecorder::Scope trace_scope =
      troot != 0 ? rec->enter(troot) : obs::TraceRecorder::Scope();
  ChordNetwork::MembershipReport report;
  switch (kind) {
    case sim::ChurnEventKind::kJoin:
      net_.join(&report);
      ++stats_.joins;
      break;
    case sim::ChurnEventKind::kLeave:
      if (net_.num_nodes() <= config_.min_nodes) {
        ++stats_.skipped_events;
        return;
      }
      net_.leave(net_.random_node(), &report);
      ++stats_.leaves;
      break;
    case sim::ChurnEventKind::kCrash:
      if (net_.num_nodes() <= config_.min_nodes) {
        ++stats_.skipped_events;
        return;
      }
      net_.crash(net_.random_node(), &report);
      ++stats_.crashes;
      break;
  }
  apply_repair(report, kind, start);
  if (membership_hook_) {
    membership_hook_();
  }
}

void ChurnDriver::apply_repair(const ChordNetwork::MembershipReport& report,
                               sim::ChurnEventKind kind, sim::Time start) {
  net::Transport& transport = net_.transport();
  // Repair travels the queueing network when one is installed (see
  // fissione::ChurnDriver::apply_repair): same-link updates inside the
  // coalescing window share a departure. The arithmetic path stays bitwise
  // for the uninstalled / zero-delay cases.
  const bool queued = !config_.zero_delay && transport.queueing_active();
  const bool crashed = kind == sim::ChurnEventKind::kCrash;
  const bool join = kind == sim::ChurnEventKind::kJoin;
  const sim::Time base =
      start + (crashed ? priced(config_.crash_detect_delay) : 0.0);
  sim::Time completion = base;

  // Repair radiates from the joiner, or — once the departure is noticed —
  // from the successor inheriting the keyspace.
  const NodeId origin = join ? report.node : report.successor;
  auto send = [&](NodeId from, NodeId to,
                  net::TrafficClass cls = net::TrafficClass::kRepair) {
    ++stats_.repair_messages;
    sim::Time arrival;
    if (queued && from != to) {
      arrival = transport.deliver(sim_, from, to,
                                  transport.default_message_bytes(), {}, base,
                                  cls);
    } else {
      arrival = base + (from == to ? 0.0 : priced(transport.link(from, to)));
      sim_.schedule_at(arrival, [] {});  // the delivery event itself
    }
    completion = std::max(completion, arrival);
    return arrival;
  };

  // Placement lookup (join): sequential messages that gate the repair.
  stats_.repair_messages += report.placement_hops;
  completion = std::max(completion, base + priced(report.placement_latency));

  // A graceful departure hands its keyspace to the successor before going —
  // a bulk transfer, classed kHandoff like the FISSIONE object handoffs.
  if (kind == sim::ChurnEventKind::kLeave && report.node != kNoNode &&
      report.successor != kNoNode) {
    windows_.touch(report.successor,
                   send(report.node, report.successor,
                        net::TrafficClass::kHandoff));
  }

  // Ring neighbors learn of the change first (join hello / leave goodbye /
  // crash healing probe).
  if (report.successor != kNoNode && report.successor != origin) {
    windows_.touch(report.successor, send(origin, report.successor));
  }
  if (report.predecessor != kNoNode && report.predecessor != origin &&
      report.predecessor != report.successor) {
    windows_.touch(report.predecessor, send(origin, report.predecessor));
  }

  // The joiner builds its finger table: one lookup per distinct target; it
  // is not fully wired until the last answer returns.
  if (join) {
    sim::Time wired = base;
    for (NodeId target : report.finger_targets) {
      wired = std::max(wired, send(report.node, target));
    }
    windows_.touch(report.node, wired);
  }

  // Finger updates to every rewired node.
  for (NodeId n : report.rewired) {
    if (n == origin) {
      windows_.touch(n, base);
      continue;
    }
    windows_.touch(n, send(origin, n));
  }

  const sim::Time repair_latency = completion - start;
  stats_.repair_latency_total += repair_latency;
  stats_.repair_latency_max =
      std::max(stats_.repair_latency_max, repair_latency);
}

std::vector<NodeId> ChurnDriver::stale_nodes() const {
  std::vector<NodeId> out;
  for (NodeId n : net_.ring()) {
    if (is_stale(n)) {
      out.push_back(n);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

ChurnDriver::StaleRoute ChurnDriver::route(NodeId from, Key key) {
  StaleRoute out;
  out.route = net_.route(from, key, &out.path);
  net::Transport& transport = net_.transport();
  const sim::WalkReplay replay = sim::replay_walk_priced(
      out.path, sim_.now(), config_.max_detours, windows_, transport, sim_,
      !config_.zero_delay && transport.queueing_active());
  out.stats = replay.stats;
  out.stale = replay.stale;
  out.detours = replay.detours;
  out.failed = replay.failed;
  if (out.failed) {
    out.route.owner = kNoNode;
  }
  stats_.record_query(out.stale, out.detours, out.failed, 0);
  return out;
}

}  // namespace armada::chord
