// CongestionStats: the network-side result currency of the queueing
// subsystem — the congestion analogue of sim::QueryStats (query plane) and
// sim::ChurnStats (repair plane).
//
// One instance aggregates everything a transport's queueing network
// observed: messages and the link departures (batches) that carried them,
// payload bytes on the wire, the queueing delay each message accrued beyond
// pure propagation, per-node backlog peaks, accumulated service busy time,
// a batch-occupancy histogram, and — since the closed-loop PR — per-class
// traffic accounting plus the flow-control counters (admission sheds,
// hedged duplicates). Every overlay surfaces its transport's instance
// through overlay::RoutedOverlay::congestion(), so benches read hot-node
// and hot-link pressure in the same way for all four DHTs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace armada::net {

/// Traffic classes priced by the queueing network. Under the default
/// (FIFO) discipline the class is pure accounting — timing is identical
/// for every mix — while the weighted/strict disciplines schedule each
/// node server per class (see QueueingConfig::scheduling). kHedge is the
/// retry lane used by hedged sends: above queries, below repair, so a
/// hedge can jump a query backlog without ever delaying repair.
enum class TrafficClass : std::uint8_t {
  kQuery = 0,
  kRepair = 1,
  kHandoff = 2,
  kHedge = 3,
};
inline constexpr std::size_t kNumTrafficClasses = 4;

inline constexpr std::size_t class_index(TrafficClass c) {
  return static_cast<std::size_t>(c);
}

struct CongestionStats {
  /// Histogram buckets for batch occupancy: sizes 1..7, last bucket >= 8.
  static constexpr std::size_t kOccupancyBuckets = 8;

  // --- traffic ---------------------------------------------------------------
  /// Messages that entered the queueing path.
  std::uint64_t messages = 0;
  /// Link departures actually scheduled; coalescing makes this smaller than
  /// `messages` (messages - batches departures were saved by batching).
  std::uint64_t batches = 0;
  /// Payload bytes that crossed links.
  std::uint64_t bytes_on_wire = 0;

  // --- queueing delay --------------------------------------------------------
  /// Sum over messages of (delivery time - send time - propagation): the
  /// time spent waiting for or holding node servers, the coalescing window,
  /// and link transmission. Exactly zero for every message under a
  /// zero-queue config.
  double queue_delay_total = 0.0;
  double queue_delay_max = 0.0;

  // --- per-class traffic -----------------------------------------------------
  /// messages and queue_delay_total split by TrafficClass (indexed with
  /// class_index). The per-class delays are how the repair-never-starved
  /// property is audited: under strict scheduling the repair class's mean
  /// stays bounded by its own backlog no matter how deep the query class
  /// queues.
  std::array<std::uint64_t, kNumTrafficClasses> class_messages{};
  std::array<double, kNumTrafficClasses> class_queue_delay{};

  // --- flow control ----------------------------------------------------------
  /// Query-class sends refused admission (the sender shed or degraded the
  /// work instead of queueing it); they consumed no network resources.
  std::uint64_t shed_messages = 0;
  /// Hedged duplicates launched by senders, and those that won their race
  /// (arrived before the primary; the loser's continuation is cancelled
  /// but its reservations were consumed).
  std::uint64_t hedges_launched = 0;
  std::uint64_t hedges_won = 0;
  /// Search classes the replica subsystem rerouted to a replica holder /
  /// answered from a path result cache — load the hot region never
  /// received, reported through the transport so congestion dashboards see
  /// it in the same currency as sheds and hedges.
  std::uint64_t replica_routes = 0;
  std::uint64_t cache_hits = 0;

  // --- node pressure ---------------------------------------------------------
  /// Deepest egress/ingress backlog (outstanding service reservations)
  /// observed at any single node.
  std::uint64_t egress_depth_peak = 0;
  std::uint64_t ingress_depth_peak = 0;
  /// Total simulated time node servers spent serving messages, summed over
  /// nodes. Divide by (elapsed time x node count) for mean utilization.
  double egress_busy_total = 0.0;
  double ingress_busy_total = 0.0;

  /// batch_occupancy[i] counts batches that departed (or are currently
  /// open) with i+1 messages; the last bucket absorbs sizes >= 8. The
  /// histogram is maintained incrementally, so it is valid at any instant.
  std::array<std::uint64_t, kOccupancyBuckets> batch_occupancy{};

  double queue_delay_mean() const {
    return messages == 0 ? 0.0
                         : queue_delay_total / static_cast<double>(messages);
  }
  double class_queue_delay_mean(TrafficClass c) const {
    const std::size_t i = class_index(c);
    return class_messages[i] == 0
               ? 0.0
               : class_queue_delay[i] / static_cast<double>(class_messages[i]);
  }
  /// Mean messages per departure: 1.0 when nothing coalesced — including
  /// before any traffic, where the no-coalescing identity is the only
  /// consistent value (messages == batches == 0).
  double batch_occupancy_mean() const {
    return batches == 0
               ? 1.0
               : static_cast<double>(messages) / static_cast<double>(batches);
  }
  /// Departures saved by coalescing.
  std::uint64_t departures_saved() const { return messages - batches; }
  /// Mean fraction of time a node's server (egress + ingress combined) was
  /// busy over `elapsed` simulated time across `nodes` nodes.
  double service_utilization(double elapsed, std::size_t nodes) const {
    const double capacity = elapsed * 2.0 * static_cast<double>(nodes);
    return capacity <= 0.0 ? 0.0
                           : (egress_busy_total + ingress_busy_total) / capacity;
  }

  /// Interval accounting: subtract an earlier snapshot of the same transport
  /// to get the delta for a round/window. Every *monotone* additive counter
  /// participates (add new fields HERE, not at call sites). The peaks, the
  /// max, and the occupancy histogram stay cumulative: maxima have no
  /// per-interval difference, and histogram buckets shrink when an open
  /// batch grows into the next bucket, so differencing them could
  /// underflow. Use messages/batches of the delta for per-interval batch
  /// occupancy.
  CongestionStats& operator-=(const CongestionStats& snapshot) {
    messages -= snapshot.messages;
    batches -= snapshot.batches;
    bytes_on_wire -= snapshot.bytes_on_wire;
    queue_delay_total -= snapshot.queue_delay_total;
    for (std::size_t i = 0; i < kNumTrafficClasses; ++i) {
      class_messages[i] -= snapshot.class_messages[i];
      class_queue_delay[i] -= snapshot.class_queue_delay[i];
    }
    shed_messages -= snapshot.shed_messages;
    hedges_launched -= snapshot.hedges_launched;
    hedges_won -= snapshot.hedges_won;
    replica_routes -= snapshot.replica_routes;
    cache_hits -= snapshot.cache_hits;
    egress_busy_total -= snapshot.egress_busy_total;
    ingress_busy_total -= snapshot.ingress_busy_total;
    return *this;
  }

  friend bool operator==(const CongestionStats&,
                         const CongestionStats&) = default;
};

}  // namespace armada::net
