#include "net/queueing.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace armada::net {

namespace {

/// Priority tiers of the kStrict discipline: lower rank is served first.
/// kRepair > kHandoff > kHedge > kQuery, so repair is never starved by
/// query backlog and a hedged retry jumps queries without touching repair.
constexpr std::array<int, kNumTrafficClasses> kStrictRank = {
    /*kQuery=*/3, /*kRepair=*/0, /*kHandoff=*/1, /*kHedge=*/2};

/// Outstanding entries in a backlog deque at `now`. Completion instants
/// are monotone under kFifo but may interleave across classes under the
/// weighted/strict disciplines, so count exactly rather than assuming a
/// sorted prefix.
std::size_t outstanding(const std::deque<sim::Time>& backlog, sim::Time now) {
  return static_cast<std::size_t>(std::count_if(
      backlog.begin(), backlog.end(),
      [now](sim::Time until) { return until > now; }));
}

}  // namespace

Queueing::Queueing(QueueingConfig config) : config_(config) {
  ARMADA_CHECK(config_.service_rate > 0.0);
  ARMADA_CHECK(config_.link_bandwidth > 0.0);
  ARMADA_CHECK(config_.coalesce_window >= 0.0);
  for (const double w : config_.class_weights) {
    ARMADA_CHECK_MSG(w > 0.0, "class weights must be positive");
  }
  ARMADA_CHECK(config_.flow.backoff >= 0.0);
  ARMADA_CHECK(config_.flow.hedge_delay >= 0.0);
  ARMADA_CHECK(config_.flow.hedge_threshold >= 0.0);
}

std::uint64_t Queueing::sent() const {
  return current_ < states_.size() ? states_[current_].sent : 0;
}

std::uint64_t Queueing::delivered() const {
  return current_ < states_.size() ? states_[current_].live->delivered : 0;
}

Queueing::SimState& Queueing::state_for(const sim::Simulator& sim) {
  SimState* found = nullptr;
  SimState* lru_drained = nullptr;
  SimState* lru_any = nullptr;
  for (SimState& state : states_) {
    if (state.sim_id == sim.id()) {
      found = &state;
      break;
    }
    // A drained state (every reservation delivered) is inert: all its
    // busy-until marks lie in the past, so evicting it is equivalent to a
    // clean slate. Prefer those victims, so a live simulator with pending
    // reservations — the shared churn/congestion simulator — is never
    // reset underneath its own traffic by a burst of per-query
    // simulators.
    const bool drained = state.sent == state.live->delivered;
    if (drained && (lru_drained == nullptr ||
                    state.touched < lru_drained->touched)) {
      lru_drained = &state;
    }
    if (lru_any == nullptr || state.touched < lru_any->touched) {
      lru_any = &state;
    }
  }
  if (found == nullptr) {
    if (states_.size() < kMaxSimStates) {
      states_.emplace_back();
      found = &states_.back();
    } else {
      found = lru_drained != nullptr ? lru_drained : lru_any;
      // Pending deliveries of a forced eviction keep their orphaned Live
      // counter.
      *found = SimState{};
    }
    found->sim_id = sim.id();
    found->live = std::make_shared<Live>();
  }
  found->touched = ++touch_counter_;
  current_ = static_cast<std::size_t>(found - states_.data());
  return *found;
}

const Queueing::SimState* Queueing::find_state(
    const sim::Simulator& sim) const {
  for (const SimState& state : states_) {
    if (state.sim_id == sim.id()) {
      return &state;
    }
  }
  return nullptr;
}

Queueing::NodeState& Queueing::node(SimState& state, NodeId id) {
  if (id >= state.nodes.size()) {
    state.nodes.resize(id + 1);
  }
  return state.nodes[id];
}

Queueing::LinkState& Queueing::link(SimState& state, NodeId from, NodeId to) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(from) << 32) | static_cast<std::uint64_t>(to);
  return state.links[key];
}

void Queueing::push_backlog(std::deque<sim::Time>& backlog, sim::Time now,
                            sim::Time until, std::uint64_t* peak) {
  while (!backlog.empty() && backlog.front() <= now) {
    backlog.pop_front();
  }
  backlog.push_back(until);
  *peak = std::max(*peak, static_cast<std::uint64_t>(backlog.size()));
}

sim::Time Queueing::reserve_server(
    sim::Time& busy_until,
    std::array<sim::Time, kNumTrafficClasses>& class_until, TrafficClass cls,
    sim::Time now, sim::Time service) const {
  const std::size_t c = class_index(cls);
  switch (config_.scheduling) {
    case QueueingConfig::Scheduling::kFifo: {
      // One shared FIFO — the pre-class engine, bit for bit.
      const sim::Time done = std::max(now, busy_until) + service;
      busy_until = done;
      return done;
    }
    case QueueingConfig::Scheduling::kWeighted: {
      // Per-class virtual clock: the class owns service_rate x share of
      // the server, so its completions advance at service / share per
      // message regardless of other classes' backlog.
      double total = 0.0;
      for (const double w : config_.class_weights) {
        total += w;
      }
      const double share = config_.class_weights[c] / total;
      const sim::Time done = std::max(now, class_until[c]) + service / share;
      class_until[c] = done;
      busy_until = std::max(busy_until, done);
      return done;
    }
    case QueueingConfig::Scheduling::kStrict: {
      // Serialize behind this tier and all higher tiers. Reservations a
      // lower tier already holds are not revoked (synchronous reservation
      // discipline), so a higher-tier burst can transiently overbook the
      // server where a preemptive scheduler would slip the lower tier.
      sim::Time horizon = now;
      for (std::size_t d = 0; d < kNumTrafficClasses; ++d) {
        if (kStrictRank[d] <= kStrictRank[c]) {
          horizon = std::max(horizon, class_until[d]);
        }
      }
      const sim::Time done = horizon + service;
      class_until[c] = done;
      busy_until = std::max(busy_until, done);
      return done;
    }
  }
  ARMADA_CHECK_MSG(false, "unknown scheduling discipline");
  return now + service;
}

sim::Time Queueing::send(sim::Simulator& sim, NodeId from, NodeId to,
                         std::uint32_t bytes, sim::Time propagation,
                         std::function<void(sim::Time)> on_arrival,
                         sim::Time not_before, TrafficClass cls) {
  SimState& state = state_for(sim);
  const sim::Time now = std::max(sim.now(), not_before);
  const sim::Time service = config_.service_rate == kUnlimitedRate
                                ? 0.0
                                : 1.0 / config_.service_rate;

  // Egress service reservation at the sender. A zero service time is a
  // structural no-op: the message is ready the instant it is enqueued.
  sim::Time ready = now;
  if (service > 0.0) {
    NodeState& src = node(state, from);
    ready = reserve_server(src.egress_busy_until, src.egress_class_until, cls,
                           now, service);
    stats_.egress_busy_total += service;
    push_backlog(src.egress_backlog, now, ready, &stats_.egress_depth_peak);
  }

  // Link coalescing: join the open batch when one is still pending for this
  // link and the message is ready before it departs — but never wait
  // longer than one window (a batch reserved with a far-future not_before,
  // e.g. crash repair behind its detection timeout, must not capture
  // ready-now traffic). Otherwise open a new batch that departs a full
  // window after this message is ready. A zero window disables batching
  // (each message is its own departure).
  LinkState& wire = link(state, from, to);
  sim::Time departure = ready;
  if (config_.coalesce_window > 0.0 && wire.batch_occupancy > 0 &&
      wire.batch_departure >= ready &&
      wire.batch_departure <= ready + config_.coalesce_window) {
    departure = wire.batch_departure;
    // Shift this batch one occupancy bucket up (the last bucket saturates).
    const std::uint32_t occ = ++wire.batch_occupancy;
    const std::size_t last = CongestionStats::kOccupancyBuckets - 1;
    const std::size_t old_bucket = std::min<std::size_t>(occ - 2, last);
    const std::size_t new_bucket = std::min<std::size_t>(occ - 1, last);
    if (new_bucket != old_bucket) {
      --stats_.batch_occupancy[old_bucket];
      ++stats_.batch_occupancy[new_bucket];
    }
  } else {
    if (config_.coalesce_window > 0.0) {
      departure = ready + config_.coalesce_window;
    }
    wire.batch_departure = departure;
    wire.batch_occupancy = 1;
    ++stats_.batches;
    ++stats_.batch_occupancy[0];
  }

  // Transmission: bytes serialize behind earlier traffic on this link.
  sim::Time arrival = departure + propagation;
  if (config_.link_bandwidth != kUnlimitedRate && bytes > 0) {
    const sim::Time tx =
        static_cast<sim::Time>(bytes) / config_.link_bandwidth;
    const sim::Time wire_start = std::max(departure, wire.wire_busy_until);
    wire.wire_busy_until = wire_start + tx;
    arrival = wire_start + tx + propagation;
  }
  stats_.bytes_on_wire += bytes;

  // Ingress service reservation at the receiver.
  sim::Time delivered_at = arrival;
  if (service > 0.0) {
    NodeState& dst = node(state, to);
    delivered_at = reserve_server(dst.ingress_busy_until,
                                  dst.ingress_class_until, cls, arrival,
                                  service);
    stats_.ingress_busy_total += service;
    push_backlog(dst.ingress_backlog, now, delivered_at,
                 &stats_.ingress_depth_peak);
  }

  ++stats_.messages;
  ++stats_.class_messages[class_index(cls)];
  ++state.sent;
  // Excess over the pure-propagation delivery instant. Formed as a single
  // subtraction against the identically-computed uncongested arrival so the
  // zero-queue degenerate yields exactly 0.0, not floating-point residue.
  const sim::Time queue_delay = delivered_at - (now + propagation);
  stats_.queue_delay_total += queue_delay;
  stats_.class_queue_delay[class_index(cls)] += queue_delay;
  stats_.queue_delay_max = std::max(stats_.queue_delay_max, queue_delay);

  sim.schedule_at(delivered_at,
                  [live = state.live, cb = std::move(on_arrival), queue_delay] {
                    ++live->delivered;
                    if (cb) {
                      cb(queue_delay);
                    }
                  });
  return delivered_at;
}

std::size_t Queueing::ingress_backlog(const sim::Simulator& sim,
                                      NodeId node_id) const {
  const SimState* state = find_state(sim);
  if (state == nullptr || node_id >= state->nodes.size()) {
    return 0;
  }
  return outstanding(state->nodes[node_id].ingress_backlog, sim.now());
}

std::size_t Queueing::egress_backlog(const sim::Simulator& sim,
                                     NodeId node_id) const {
  const SimState* state = find_state(sim);
  if (state == nullptr || node_id >= state->nodes.size()) {
    return 0;
  }
  return outstanding(state->nodes[node_id].egress_backlog, sim.now());
}

bool Queueing::should_shed(const sim::Simulator& sim, NodeId to,
                           TrafficClass cls) const {
  if (!config_.flow.admission_enabled() || cls != TrafficClass::kQuery) {
    return false;
  }
  return ingress_backlog(sim, to) >= config_.flow.admission_limit;
}

sim::Time Queueing::backoff_delay(const sim::Simulator& sim, NodeId to) const {
  if (!config_.flow.backoff_enabled()) {
    return 0.0;
  }
  const std::size_t depth = ingress_backlog(sim, to);
  if (depth < config_.flow.backoff_threshold) {
    return 0.0;
  }
  return config_.flow.backoff *
         static_cast<double>(depth - config_.flow.backoff_threshold + 1);
}

void Queueing::record_shed() { ++stats_.shed_messages; }

void Queueing::record_hedge(bool won) {
  ++stats_.hedges_launched;
  if (won) {
    ++stats_.hedges_won;
  }
}

void Queueing::record_replica_route() { ++stats_.replica_routes; }

void Queueing::record_cache_hit() { ++stats_.cache_hits; }

}  // namespace armada::net
