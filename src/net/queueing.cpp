#include "net/queueing.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace armada::net {

Queueing::Queueing(QueueingConfig config) : config_(config) {
  ARMADA_CHECK(config_.service_rate > 0.0);
  ARMADA_CHECK(config_.link_bandwidth > 0.0);
  ARMADA_CHECK(config_.coalesce_window >= 0.0);
}

std::uint64_t Queueing::sent() const {
  return current_ < states_.size() ? states_[current_].sent : 0;
}

std::uint64_t Queueing::delivered() const {
  return current_ < states_.size() ? states_[current_].live->delivered : 0;
}

Queueing::SimState& Queueing::state_for(const sim::Simulator& sim) {
  SimState* found = nullptr;
  SimState* lru_drained = nullptr;
  SimState* lru_any = nullptr;
  for (SimState& state : states_) {
    if (state.sim_id == sim.id()) {
      found = &state;
      break;
    }
    // A drained state (every reservation delivered) is inert: all its
    // busy-until marks lie in the past, so evicting it is equivalent to a
    // clean slate. Prefer those victims, so a live simulator with pending
    // reservations — the shared churn/congestion simulator — is never
    // reset underneath its own traffic by a burst of per-query
    // simulators.
    const bool drained = state.sent == state.live->delivered;
    if (drained && (lru_drained == nullptr ||
                    state.touched < lru_drained->touched)) {
      lru_drained = &state;
    }
    if (lru_any == nullptr || state.touched < lru_any->touched) {
      lru_any = &state;
    }
  }
  if (found == nullptr) {
    if (states_.size() < kMaxSimStates) {
      states_.emplace_back();
      found = &states_.back();
    } else {
      found = lru_drained != nullptr ? lru_drained : lru_any;
      // Pending deliveries of a forced eviction keep their orphaned Live
      // counter.
      *found = SimState{};
    }
    found->sim_id = sim.id();
    found->live = std::make_shared<Live>();
  }
  found->touched = ++touch_counter_;
  current_ = static_cast<std::size_t>(found - states_.data());
  return *found;
}

Queueing::NodeState& Queueing::node(SimState& state, NodeId id) {
  if (id >= state.nodes.size()) {
    state.nodes.resize(id + 1);
  }
  return state.nodes[id];
}

Queueing::LinkState& Queueing::link(SimState& state, NodeId from, NodeId to) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(from) << 32) | static_cast<std::uint64_t>(to);
  return state.links[key];
}

void Queueing::push_backlog(std::deque<sim::Time>& backlog, sim::Time now,
                            sim::Time until, std::uint64_t* peak) {
  while (!backlog.empty() && backlog.front() <= now) {
    backlog.pop_front();
  }
  backlog.push_back(until);
  *peak = std::max(*peak, static_cast<std::uint64_t>(backlog.size()));
}

sim::Time Queueing::send(sim::Simulator& sim, NodeId from, NodeId to,
                         std::uint32_t bytes, sim::Time propagation,
                         std::function<void(sim::Time)> on_arrival,
                         sim::Time not_before) {
  SimState& state = state_for(sim);
  const sim::Time now = std::max(sim.now(), not_before);
  const sim::Time service = config_.service_rate == kUnlimitedRate
                                ? 0.0
                                : 1.0 / config_.service_rate;

  // Egress service reservation at the sender. A zero service time is a
  // structural no-op: the message is ready the instant it is enqueued.
  sim::Time ready = now;
  if (service > 0.0) {
    NodeState& src = node(state, from);
    ready = std::max(now, src.egress_busy_until) + service;
    src.egress_busy_until = ready;
    stats_.egress_busy_total += service;
    push_backlog(src.egress_backlog, now, ready, &stats_.egress_depth_peak);
  }

  // Link coalescing: join the open batch when one is still pending for this
  // link and the message is ready before it departs — but never wait
  // longer than one window (a batch reserved with a far-future not_before,
  // e.g. crash repair behind its detection timeout, must not capture
  // ready-now traffic). Otherwise open a new batch that departs a full
  // window after this message is ready. A zero window disables batching
  // (each message is its own departure).
  LinkState& wire = link(state, from, to);
  sim::Time departure = ready;
  if (config_.coalesce_window > 0.0 && wire.batch_occupancy > 0 &&
      wire.batch_departure >= ready &&
      wire.batch_departure <= ready + config_.coalesce_window) {
    departure = wire.batch_departure;
    // Shift this batch one occupancy bucket up (the last bucket saturates).
    const std::uint32_t occ = ++wire.batch_occupancy;
    const std::size_t last = CongestionStats::kOccupancyBuckets - 1;
    const std::size_t old_bucket = std::min<std::size_t>(occ - 2, last);
    const std::size_t new_bucket = std::min<std::size_t>(occ - 1, last);
    if (new_bucket != old_bucket) {
      --stats_.batch_occupancy[old_bucket];
      ++stats_.batch_occupancy[new_bucket];
    }
  } else {
    if (config_.coalesce_window > 0.0) {
      departure = ready + config_.coalesce_window;
    }
    wire.batch_departure = departure;
    wire.batch_occupancy = 1;
    ++stats_.batches;
    ++stats_.batch_occupancy[0];
  }

  // Transmission: bytes serialize behind earlier traffic on this link.
  sim::Time arrival = departure + propagation;
  if (config_.link_bandwidth != kUnlimitedRate && bytes > 0) {
    const sim::Time tx =
        static_cast<sim::Time>(bytes) / config_.link_bandwidth;
    const sim::Time wire_start = std::max(departure, wire.wire_busy_until);
    wire.wire_busy_until = wire_start + tx;
    arrival = wire_start + tx + propagation;
  }
  stats_.bytes_on_wire += bytes;

  // Ingress service reservation at the receiver.
  sim::Time delivered_at = arrival;
  if (service > 0.0) {
    NodeState& dst = node(state, to);
    delivered_at = std::max(arrival, dst.ingress_busy_until) + service;
    dst.ingress_busy_until = delivered_at;
    stats_.ingress_busy_total += service;
    push_backlog(dst.ingress_backlog, now, delivered_at,
                 &stats_.ingress_depth_peak);
  }

  ++stats_.messages;
  ++state.sent;
  // Excess over the pure-propagation delivery instant. Formed as a single
  // subtraction against the identically-computed uncongested arrival so the
  // zero-queue degenerate yields exactly 0.0, not floating-point residue.
  const sim::Time queue_delay = delivered_at - (now + propagation);
  stats_.queue_delay_total += queue_delay;
  stats_.queue_delay_max = std::max(stats_.queue_delay_max, queue_delay);

  sim.schedule_at(delivered_at,
                  [live = state.live, cb = std::move(on_arrival), queue_delay] {
                    ++live->delivered;
                    if (cb) {
                      cb(queue_delay);
                    }
                  });
  return delivered_at;
}

}  // namespace armada::net
