// Transport: message delivery between overlay nodes with model-driven link
// latencies and, optionally, a congestion-aware queueing network.
//
// This is the seam between overlay logic and the network: overlays hand a
// message (a callback) to the transport, which charges the link latency and
// schedules the arrival on the discrete-event simulator. Sequential walks
// that record their path (FISSIONE exact-match routing) price it with
// `path_latency`; walks that don't (CAN greedy routing) accumulate
// `link` costs hop by hop as they go. The default model is
// ConstantHop(1.0), under which arrival times equal hop counts and every
// pre-existing delay figure is reproduced bit-for-bit.
//
// Two delivery paths, split by constness so they cannot be confused:
//
//  * The `const` stateless path prices a message as pure propagation and
//    CHECK-fails when an active (non-zero-queue) queueing config is
//    installed — overlays cannot accidentally bypass the queues.
//  * The sized path routes through the installed net::Queueing engine:
//    egress/ingress service queues, per-link bandwidth and batching (see
//    queueing.h), each message tagged with a TrafficClass. Without an
//    installed config — or under the zero-queue config — it degenerates to
//    exactly the stateless schedule, so goldens stay bitwise.
//
// Senders close the loop through this seam too: `should_shed` /
// `backoff_delay` surface the installed flow-control policy (no-ops
// without queueing), and `deliver_walk` can run a walk flow-controlled —
// backing off into saturated nodes, launching hedged duplicates in the
// kHedge lane with first-arrival-wins cancellation, and shedding the walk
// entirely (coverage 0) when the next hop is over the admission limit.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/latency_model.h"
#include "net/queueing.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"

namespace armada::net {

class Transport {
 public:
  /// Arrival continuation of the queueing path; receives the message's
  /// queueing delay (delivery - send - propagation; 0 on the fast path).
  using QueuedArrival = std::function<void(Time queue_delay)>;

  /// Knobs of one deliver_walk replay.
  struct WalkOptions {
    std::uint32_t bytes = 0;
    TrafficClass cls = TrafficClass::kQuery;
    /// Opt into the installed flow-control policy: per-hop backoff,
    /// hedged retries, and admission shedding. Off = PR 5 behavior.
    bool flow_control = false;
  };

  /// Default transport: ConstantHop(1.0), i.e. latency == hop count.
  Transport();
  explicit Transport(std::shared_ptr<const LatencyModel> model);

  const LatencyModel& model() const { return *model_; }
  /// Swap the latency model; subsequent queries on the owning network report
  /// latencies under the new model. Never null.
  void set_model(std::shared_ptr<const LatencyModel> model);

  /// Latency charged to one message on the link u -> v.
  Time link(NodeId u, NodeId v) const { return model_->link_latency(u, v); }

  /// Total latency of sequential forwarding along `path` (as produced by
  /// exact-match routing: source first, owner last).
  Time path_latency(const std::vector<NodeId>& path) const;

  /// Stateless delivery: schedules `on_arrival` on `sim` at
  /// now() + link(from, to). Concurrent deliveries interleave by arrival
  /// time, so "query latency" falls out as the latest arrival at any
  /// destination. CHECK-fails when an active queueing config is installed
  /// (use the sized overload, which feeds the queues).
  void deliver(sim::Simulator& sim, NodeId from, NodeId to,
               std::function<void()> on_arrival) const;

  /// Queueing-aware delivery of a `bytes`-sized message of class `cls`
  /// enqueued at max(now(), not_before); returns the delivery instant.
  /// With no queueing installed the message costs link(from, to) and the
  /// returned instant equals the stateless schedule bitwise; with a config
  /// installed it is priced through the service queues, link bandwidth and
  /// the per-link coalescer. `on_arrival` may be empty.
  Time deliver(sim::Simulator& sim, NodeId from, NodeId to,
               std::uint32_t bytes, QueuedArrival on_arrival,
               Time not_before = 0.0,
               TrafficClass cls = TrafficClass::kQuery);
  /// Same, with the installed config's default message size (0 bytes when
  /// no queueing is installed).
  Time deliver(sim::Simulator& sim, NodeId from, NodeId to,
               QueuedArrival on_arrival);

  /// Deliver a recorded walk (source..owner) hop by hop through the sized
  /// path: each hop departs when the previous one was delivered. `done`
  /// receives the walk's cost fragment — messages == delay == hop count,
  /// latency = last delivery - start, plus the accumulated queue_delay and
  /// bytes_on_wire — when the final hop lands (immediately for an empty or
  /// single-node path). With options.flow_control the walk obeys the
  /// installed policy: hops back off into backlogged targets, a hop whose
  /// reserved queueing delay crosses the hedge threshold races a kHedge
  /// duplicate (first arrival wins, the loser is cancelled and counted),
  /// and a hop refused admission sheds the walk — `done` then reports
  /// coverage 0 with the hops already spent.
  void deliver_walk(sim::Simulator& sim, std::vector<NodeId> path,
                    const WalkOptions& options,
                    std::function<void(const sim::QueryStats&)> done);
  void deliver_walk(sim::Simulator& sim, std::vector<NodeId> path,
                    std::uint32_t bytes,
                    std::function<void(const sim::QueryStats&)> done);

  // --- queueing network ------------------------------------------------------
  /// Install (or replace) the queueing network; congestion stats restart
  /// from zero. Copies of this transport share the engine.
  void install_queueing(const QueueingConfig& config);
  void uninstall_queueing();
  bool queueing_installed() const { return queueing_ != nullptr; }
  /// True when messages must take the sized path to be priced correctly:
  /// an installed config that is not the zero-queue degenerate.
  bool queueing_active() const {
    return queueing_ != nullptr && !queueing_->config().zero_queue();
  }
  /// The installed engine (null when none) — introspection for tests.
  const Queueing* queueing() const { return queueing_.get(); }
  /// Aggregated congestion currency (all-zero when nothing is installed).
  const CongestionStats& congestion() const;
  /// The installed config's default message size; 0 without queueing.
  std::uint32_t default_message_bytes() const {
    return queueing_ == nullptr ? 0u
                                : queueing_->config().default_message_bytes;
  }

  // --- closed-loop seam ------------------------------------------------------
  /// Admission decision for one more class-`cls` message to `to` under the
  /// installed flow-control policy; always false without queueing.
  bool should_shed(const sim::Simulator& sim, NodeId to,
                   TrafficClass cls) const {
    return queueing_ != nullptr && queueing_->should_shed(sim, to, cls);
  }
  /// Backoff the installed policy asks of a sender to `to`; 0 without
  /// queueing or below the backlog threshold.
  Time backoff_delay(const sim::Simulator& sim, NodeId to) const {
    return queueing_ == nullptr ? 0.0 : queueing_->backoff_delay(sim, to);
  }
  /// Account an admission-control shed in the shared congestion currency.
  void record_shed() {
    if (queueing_ != nullptr) {
      queueing_->record_shed();
    }
    if (trace_ != nullptr) {
      trace_->annotate(obs::kFlagShed);
    }
  }
  /// Account a replica reroute / cache hit by the replica subsystem in the
  /// same currency (no-ops without queueing, like record_shed).
  void record_replica_route() {
    if (queueing_ != nullptr) {
      queueing_->record_replica_route();
    }
    if (trace_ != nullptr) {
      trace_->annotate(obs::kFlagReplicaRoute);
    }
  }
  void record_cache_hit() {
    if (queueing_ != nullptr) {
      queueing_->record_cache_hit();
    }
    if (trace_ != nullptr) {
      trace_->annotate(obs::kFlagCacheHit);
    }
  }

  // --- tracing seam ----------------------------------------------------------
  /// Attach a span recorder: every subsequent delivery made under an
  /// active trace context becomes a hop span (see obs/trace.h). Copies of
  /// this transport share the recorder, mirroring install_queueing. With
  /// no recorder attached the delivery paths pay exactly one branch and
  /// produce bitwise identical schedules; with one attached, recording is
  /// purely passive (no events, no randomness), so results still match.
  void attach_trace(std::shared_ptr<obs::TraceRecorder> recorder) {
    trace_ = std::move(recorder);
  }
  void detach_trace() { trace_.reset(); }
  /// The attached recorder; null when tracing is disabled.
  obs::TraceRecorder* trace() const { return trace_.get(); }

 private:
  /// The untraced sized delivery (the former deliver body).
  Time deliver_impl(sim::Simulator& sim, NodeId from, NodeId to,
                    std::uint32_t bytes, QueuedArrival on_arrival,
                    Time not_before, TrafficClass cls);
  /// Out-of-line traced twins: record the hop span, wrap the arrival in
  /// the span's context, then run the common path.
  Time deliver_traced(sim::Simulator& sim, NodeId from, NodeId to,
                      std::uint32_t bytes, QueuedArrival on_arrival,
                      Time not_before, TrafficClass cls);
  void deliver_stateless_traced(sim::Simulator& sim, NodeId from, NodeId to,
                                std::function<void()> on_arrival) const;

  std::shared_ptr<const LatencyModel> model_;
  std::shared_ptr<Queueing> queueing_;
  std::shared_ptr<obs::TraceRecorder> trace_;
};

}  // namespace armada::net
