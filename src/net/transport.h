// Transport: message delivery between overlay nodes with model-driven link
// latencies.
//
// This is the seam between overlay logic and the network: overlays hand a
// message (a callback) to the transport, which charges the link latency and
// schedules the arrival on the discrete-event simulator. Sequential walks
// that record their path (FISSIONE exact-match routing) price it with
// `path_latency`; walks that don't (CAN greedy routing) accumulate
// `link` costs hop by hop as they go. The default model is
// ConstantHop(1.0), under which arrival times equal hop counts and every
// pre-existing delay figure is reproduced bit-for-bit.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/latency_model.h"
#include "sim/event_queue.h"

namespace armada::net {

class Transport {
 public:
  /// Default transport: ConstantHop(1.0), i.e. latency == hop count.
  Transport();
  explicit Transport(std::shared_ptr<const LatencyModel> model);

  const LatencyModel& model() const { return *model_; }
  /// Swap the latency model; subsequent queries on the owning network report
  /// latencies under the new model. Never null.
  void set_model(std::shared_ptr<const LatencyModel> model);

  /// Latency charged to one message on the link u -> v.
  Time link(NodeId u, NodeId v) const { return model_->link_latency(u, v); }

  /// Total latency of sequential forwarding along `path` (as produced by
  /// exact-match routing: source first, owner last).
  Time path_latency(const std::vector<NodeId>& path) const;

  /// Deliver a message: schedules `on_arrival` on `sim` at
  /// now() + link(from, to). Concurrent deliveries interleave by arrival
  /// time, so "query latency" falls out as the latest arrival at any
  /// destination.
  void deliver(sim::Simulator& sim, NodeId from, NodeId to,
               std::function<void()> on_arrival) const;

 private:
  std::shared_ptr<const LatencyModel> model_;
};

}  // namespace armada::net
