// Pluggable per-link latency models for the transport subsystem.
//
// The paper's evaluation charges one time unit per overlay hop, which makes
// "delay" a hop count. Real deployments see heterogeneous link latencies, so
// every model here maps an overlay link (u, v) to a latency that is a *pure
// function* of the endpoints and the model's seed/parameters: repeated calls
// return bit-identical values, two model instances with equal seeds agree on
// every link, and latencies are symmetric. That keeps simulations exactly
// reproducible without materializing an N x N matrix.
#pragma once

#include <cstdint>
#include <string>

#include "sim/event_queue.h"

namespace armada::net {

/// Transport-level node handle. Every overlay in this repo already uses a
/// dense uint32 id (fissione::PeerId, can::NodeId, ...), so links are
/// addressed by those ids directly.
using NodeId = std::uint32_t;

using sim::Time;

/// Interface: one-way latency of the overlay link u -> v.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Pure and symmetric; strictly positive for u != v.
  virtual Time link_latency(NodeId u, NodeId v) const = 0;

  /// Short identifier for bench tables / JSON records.
  virtual std::string name() const = 0;
};

/// Every link costs exactly `cost` (default 1.0): arrival time equals hop
/// count, reproducing the paper's original delay metric bit-for-bit. This is
/// the default model of every network, so existing figures are unchanged.
class ConstantHop final : public LatencyModel {
 public:
  explicit ConstantHop(Time cost = 1.0);

  Time link_latency(NodeId u, NodeId v) const override;
  std::string name() const override { return "constant"; }

 private:
  Time cost_;
};

/// Per-link latency uniform in [lo, hi); fixed per link by hashing the seed
/// with the (unordered) endpoint pair.
class UniformJitter final : public LatencyModel {
 public:
  UniformJitter(std::uint64_t seed, Time lo = 0.5, Time hi = 1.5);

  Time link_latency(NodeId u, NodeId v) const override;
  std::string name() const override { return "jitter"; }

 private:
  std::uint64_t seed_;
  Time lo_;
  Time hi_;
};

/// Hierarchical transit-stub topology: each node hashes into one of
/// `clusters` stub domains; links inside a cluster cost `intra`, links
/// crossing clusters cost `inter`. Models the LAN/WAN split that proximity-
/// aware overlay routing exploits.
class TransitStub final : public LatencyModel {
 public:
  struct Config {
    std::uint32_t clusters = 16;
    Time intra = 1.0;
    Time inter = 10.0;
  };

  explicit TransitStub(std::uint64_t seed);
  TransitStub(std::uint64_t seed, Config config);

  Time link_latency(NodeId u, NodeId v) const override;
  std::string name() const override { return "transit_stub"; }

  /// Stub domain of a node (exposed for tests).
  std::uint32_t cluster_of(NodeId u) const;

 private:
  std::uint64_t seed_;
  Config config_;
};

/// Seeded empirical RTT matrix with a King-style long-tail distribution
/// (Gummadi et al., "King: Estimating latency between arbitrary Internet end
/// hosts", IMW'02). Each link draws its latency by inverse-transform
/// sampling from a piecewise-linear CDF shaped like the King measurements —
/// median at `median` time units, ~4x the median at p90 and a tail past 20x
/// — so a few slow links dominate query latency the way real WAN paths do.
/// Behaves exactly like a fixed symmetric matrix; entries are computed
/// lazily from the seed, so memory stays O(1) at any network size.
class RttMatrix final : public LatencyModel {
 public:
  explicit RttMatrix(std::uint64_t seed, Time median = 1.0);

  Time link_latency(NodeId u, NodeId v) const override;
  std::string name() const override { return "rtt_king"; }

 private:
  std::uint64_t seed_;
  Time median_;
};

}  // namespace armada::net
