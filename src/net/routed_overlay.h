// The common overlay-query seam: every DHT in this repo (FISSIONE, CAN,
// Chord, Skip Graph) is a RoutedOverlay — a node set whose query messages
// travel hop by hop over a net::Transport that prices each link.
//
// Two things make cross-scheme delay comparisons meaningful (paper Table 1):
//
//  1. One transport seam. Each overlay owns a Transport (default
//     ConstantHop(1.0), under which latency == hop count and the paper's
//     figures are reproduced bit-for-bit) and can swap in any LatencyModel
//     at runtime. Benches price *all* schemes through the same model.
//
//  2. One result currency. Every routing walk and query fan reports its
//     cost as a sim::QueryStats fragment: `messages` transmissions,
//     `delay` in hops (the paper's metric) and `latency` in simulated time.
//     The composition helpers below are the whole algebra the query engines
//     need — a hop `step`, sequential `chain`, and concurrent `fan_in`
//     (max over branches, the event-driven arrival-time semantics that
//     FrtSearch and the DCF-CAN flood compute on a sim::Simulator).
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "net/transport.h"
#include "sim/metrics.h"

namespace armada::overlay {

/// Base seam implemented by every overlay network: a node count plus the
/// Transport through which all of the overlay's query traffic is delivered.
class RoutedOverlay {
 public:
  virtual ~RoutedOverlay() = default;

  /// Nodes currently in the overlay.
  virtual std::size_t overlay_size() const = 0;

  /// Message-delivery seam: every query layer on this overlay charges link
  /// latencies through this transport. Defaults to ConstantHop(1.0), i.e.
  /// latency == hop count.
  const net::Transport& transport() const { return transport_; }
  /// Mutable seam for the stateful (queueing) delivery path.
  net::Transport& transport() { return transport_; }

  /// Swap the latency model; subsequent queries report latencies under the
  /// new model while hop-count delays stay untouched.
  void set_latency_model(std::shared_ptr<const net::LatencyModel> model) {
    transport_.set_model(std::move(model));
  }

  /// Install a queueing network under the transport (see net/queueing.h):
  /// per-node service queues, sized messages against link bandwidth, and
  /// per-link departure coalescing. The zero-queue default config leaves
  /// every delivery instant bitwise unchanged.
  void install_queueing(const net::QueueingConfig& config) {
    transport_.install_queueing(config);
  }
  void uninstall_queueing() { transport_.uninstall_queueing(); }
  bool queueing_active() const { return transport_.queueing_active(); }
  /// Congestion-side result currency of this overlay's traffic (all-zero
  /// while no queueing network is installed).
  const net::CongestionStats& congestion() const {
    return transport_.congestion();
  }

 protected:
  RoutedOverlay() = default;
  RoutedOverlay(const RoutedOverlay&) = default;
  RoutedOverlay& operator=(const RoutedOverlay&) = default;
  RoutedOverlay(RoutedOverlay&&) = default;
  RoutedOverlay& operator=(RoutedOverlay&&) = default;

  net::Transport transport_;
};

// ---------------------------------------------------------------------------
// Walk-cost algebra on sim::QueryStats.
//
// A "fragment" is a QueryStats whose cost fields describe one routing walk
// or sub-fan; its data-plane counters (dest_peers, results) stay zero —
// those are maintained by the query engines on the final result object, so
// composing fragments never double-counts them.
// ---------------------------------------------------------------------------

/// Record one next-hop delivery `from -> to`: one message, one hop of
/// delay, and the transport-priced link latency.
inline void step(sim::QueryStats& walk, const net::Transport& transport,
                 net::NodeId from, net::NodeId to) {
  ++walk.messages;
  walk.delay += 1.0;
  walk.latency += transport.link(from, to);
}

/// Sequential composition: `tail` starts where `head` ended (the next
/// message is sent only after the previous one arrived). Coverage
/// multiplies — a stage that only partially answered scales everything the
/// later stages can still cover.
inline void chain(sim::QueryStats& head, const sim::QueryStats& tail) {
  head.messages += tail.messages;
  head.delay += tail.delay;
  head.latency += tail.latency;
  head.queue_delay += tail.queue_delay;
  head.bytes_on_wire += tail.bytes_on_wire;
  head.coverage *= tail.coverage;
  head.shed += tail.shed;
  head.hedges += tail.hedges;
  head.replica_routes += tail.replica_routes;
  head.cache_hits += tail.cache_hits;
}

/// Concurrent composition: fold `branch` into a fan whose branches are all
/// dispatched at the same instant. Messages, bytes and per-message queueing
/// delay sum; delay and latency are the latest branch arrival — exactly the
/// value an event-driven simulation of the fan would report. Coverage keeps
/// the minimum branch value — a conservative lower bound; engines that know
/// their destination counts (FrtSearch) overwrite it with the exact
/// fraction on the final result.
inline void fan_in(sim::QueryStats& fan, const sim::QueryStats& branch) {
  fan.messages += branch.messages;
  fan.delay = fan.delay > branch.delay ? fan.delay : branch.delay;
  fan.latency = fan.latency > branch.latency ? fan.latency : branch.latency;
  fan.queue_delay += branch.queue_delay;
  fan.bytes_on_wire += branch.bytes_on_wire;
  fan.coverage = fan.coverage < branch.coverage ? fan.coverage : branch.coverage;
  fan.shed += branch.shed;
  fan.hedges += branch.hedges;
  fan.replica_routes += branch.replica_routes;
  fan.cache_hits += branch.cache_hits;
}

}  // namespace armada::overlay
