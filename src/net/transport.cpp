#include "net/transport.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace armada::net {

Transport::Transport() : model_(std::make_shared<ConstantHop>()) {}

Transport::Transport(std::shared_ptr<const LatencyModel> model)
    : model_(std::move(model)) {
  ARMADA_CHECK(model_ != nullptr);
}

void Transport::set_model(std::shared_ptr<const LatencyModel> model) {
  ARMADA_CHECK(model != nullptr);
  model_ = std::move(model);
}

Time Transport::path_latency(const std::vector<NodeId>& path) const {
  Time total = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    total += link(path[i - 1], path[i]);
  }
  return total;
}

void Transport::deliver(sim::Simulator& sim, NodeId from, NodeId to,
                        std::function<void()> on_arrival) const {
  ARMADA_CHECK_MSG(!queueing_active(),
                   "stateless deliver would bypass the installed queueing "
                   "network; use the sized overload");
  if (trace_ != nullptr) [[unlikely]] {
    deliver_stateless_traced(sim, from, to, std::move(on_arrival));
    return;
  }
  sim.schedule_after(link(from, to), std::move(on_arrival));
}

void Transport::deliver_stateless_traced(
    sim::Simulator& sim, NodeId from, NodeId to,
    std::function<void()> on_arrival) const {
  const Time now = sim.now();
  const std::uint64_t span =
      trace_->span_begin(from, to, 0, TrafficClass::kQuery, now, now);
  if (span == 0) {
    sim.schedule_after(link(from, to), std::move(on_arrival));
    return;
  }
  trace_->span_delivered(span, now + link(from, to), 0.0);
  sim.schedule_after(
      link(from, to),
      [rec = trace_.get(), span, cb = std::move(on_arrival)] {
        const obs::TraceRecorder::Scope scope = rec->enter(span);
        if (cb) {
          cb();
        }
      });
}

Time Transport::deliver(sim::Simulator& sim, NodeId from, NodeId to,
                        std::uint32_t bytes, QueuedArrival on_arrival,
                        Time not_before, TrafficClass cls) {
  // The disabled-path cost of tracing is exactly this one branch.
  if (trace_ != nullptr) [[unlikely]] {
    return deliver_traced(sim, from, to, bytes, std::move(on_arrival),
                          not_before, cls);
  }
  return deliver_impl(sim, from, to, bytes, std::move(on_arrival), not_before,
                      cls);
}

Time Transport::deliver_impl(sim::Simulator& sim, NodeId from, NodeId to,
                             std::uint32_t bytes, QueuedArrival on_arrival,
                             Time not_before, TrafficClass cls) {
  if (queueing_ != nullptr) {
    return queueing_->send(sim, from, to, bytes, link(from, to),
                           std::move(on_arrival), not_before, cls);
  }
  // Fast path: the same single event, at the same instant, in the same
  // scheduling order as the stateless overload — goldens stay bitwise.
  const Time at = std::max(sim.now(), not_before) + link(from, to);
  sim.schedule_at(at, [cb = std::move(on_arrival)] {
    if (cb) {
      cb(0.0);
    }
  });
  return at;
}

Time Transport::deliver_traced(sim::Simulator& sim, NodeId from, NodeId to,
                               std::uint32_t bytes, QueuedArrival on_arrival,
                               Time not_before, TrafficClass cls) {
  obs::TraceRecorder& rec = *trace_;
  const Time send_at = sim.now();
  const Time enqueue_at = std::max(send_at, not_before);
  const std::uint64_t span =
      rec.span_begin(from, to, bytes, cls, send_at, enqueue_at);
  if (span == 0) {
    // No active trace context (or span cap hit): identical to untraced.
    return deliver_impl(sim, from, to, bytes, std::move(on_arrival),
                        not_before, cls);
  }
  // Re-enter the span's context inside the arrival so work done on
  // delivery (FRT recursion, walk continuation) attributes to this hop.
  QueuedArrival wrapped = [r = &rec, span,
                           cb = std::move(on_arrival)](Time queue_delay) {
    const obs::TraceRecorder::Scope scope = r->enter(span);
    if (cb) {
      cb(queue_delay);
    }
  };
  const Time at = deliver_impl(sim, from, to, bytes, std::move(wrapped),
                               not_before, cls);
  // The reservation discipline makes the delivery instant known now, so
  // the span closes synchronously — tracing schedules nothing.
  rec.span_delivered(span, at, at - enqueue_at - link(from, to));
  return at;
}

Time Transport::deliver(sim::Simulator& sim, NodeId from, NodeId to,
                        QueuedArrival on_arrival) {
  return deliver(sim, from, to, default_message_bytes(),
                 std::move(on_arrival));
}

void Transport::deliver_walk(sim::Simulator& sim, std::vector<NodeId> path,
                             const WalkOptions& options,
                             std::function<void(const sim::QueryStats&)> done) {
  struct Walk {
    Transport* transport;
    sim::Simulator* sim;
    std::vector<NodeId> path;
    WalkOptions options;
    std::function<void(const sim::QueryStats&)> done;
    sim::Time start = 0.0;
    sim::QueryStats stats;
    std::uint64_t trace = 0;  ///< root span when this walk samples a trace

    void finish() {
      if (trace != 0 && transport->trace_ != nullptr) {
        transport->trace_->end_trace(trace, stats);
      }
      done(stats);
    }

    void hop(std::shared_ptr<Walk> self, std::size_t i) {
      if (i + 1 >= path.size()) {
        finish();
        return;
      }
      const NodeId u = path[i];
      const NodeId v = path[i + 1];
      const Queueing* queueing = transport->queueing();
      if (options.flow_control &&
          transport->should_shed(*sim, v, options.cls)) {
        // Admission refused: shed the whole walk. The hops already spent
        // stay in the stats; the answer carries zero coverage.
        transport->record_shed();
        ++stats.shed;
        stats.coverage = 0.0;
        finish();
        return;
      }
      Time not_before = 0.0;
      if (options.flow_control) {
        const Time backoff = transport->backoff_delay(*sim, v);
        if (backoff > 0.0) {
          not_before = sim->now() + backoff;
        }
      }
      ++stats.messages;
      stats.delay += 1.0;
      stats.bytes_on_wire += options.bytes;
      // First arrival continues the walk; a cancelled (losing) copy is
      // dropped here — its reservations were consumed, its continuation
      // never runs.
      auto raced = std::make_shared<bool>(false);
      auto arrive = [self, i, raced](sim::Time queue_delay) {
        if (*raced) {
          return;
        }
        *raced = true;
        self->stats.queue_delay += queue_delay;
        self->stats.latency = self->sim->now() - self->start;
        self->hop(self, i + 1);
      };
      const Time send_time = std::max(sim->now(), not_before);
      const Time primary = transport->deliver(*sim, u, v, options.bytes,
                                              arrive, not_before, options.cls);
      if (options.flow_control && queueing != nullptr &&
          queueing->config().flow.hedge_enabled()) {
        const Time primary_delay = primary - send_time - transport->link(u, v);
        if (primary_delay > queueing->config().flow.hedge_threshold) {
          // Hedge in the kHedge lane: under priority scheduling the
          // duplicate jumps the query backlog and can land first.
          if (transport->trace_ != nullptr) {
            transport->trace_->annotate(obs::kFlagHedge);
          }
          ++stats.messages;
          ++stats.hedges;
          stats.bytes_on_wire += options.bytes;
          const Time hedge = transport->deliver(
              *sim, u, v, options.bytes, arrive,
              sim->now() + queueing->config().flow.hedge_delay,
              TrafficClass::kHedge);
          transport->queueing_->record_hedge(hedge < primary);
        }
      }
    }
  };
  auto walk = std::make_shared<Walk>(Walk{this, &sim, std::move(path), options,
                                          std::move(done), sim.now(),
                                          sim::QueryStats{}});
  if (trace_ != nullptr) [[unlikely]] {
    // Root a new trace unless the walk runs under an enclosing one (e.g.
    // a replica serve inside a PIRA query), in which case its hops join
    // that trace instead.
    walk->trace = trace_->maybe_begin(
        "walk", walk->path.empty() ? NodeId(0) : walk->path.front(),
        sim.now());
    if (walk->trace != 0) {
      const obs::TraceRecorder::Scope scope = trace_->enter(walk->trace);
      walk->hop(walk, 0);
      return;
    }
  }
  walk->hop(walk, 0);
}

void Transport::deliver_walk(sim::Simulator& sim, std::vector<NodeId> path,
                             std::uint32_t bytes,
                             std::function<void(const sim::QueryStats&)> done) {
  WalkOptions options;
  options.bytes = bytes;
  deliver_walk(sim, std::move(path), options, std::move(done));
}

void Transport::install_queueing(const QueueingConfig& config) {
  queueing_ = std::make_shared<Queueing>(config);
}

void Transport::uninstall_queueing() { queueing_.reset(); }

const CongestionStats& Transport::congestion() const {
  static const CongestionStats kNone;
  return queueing_ == nullptr ? kNone : queueing_->stats();
}

}  // namespace armada::net
