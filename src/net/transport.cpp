#include "net/transport.h"

#include "util/check.h"

namespace armada::net {

Transport::Transport() : model_(std::make_shared<ConstantHop>()) {}

Transport::Transport(std::shared_ptr<const LatencyModel> model)
    : model_(std::move(model)) {
  ARMADA_CHECK(model_ != nullptr);
}

void Transport::set_model(std::shared_ptr<const LatencyModel> model) {
  ARMADA_CHECK(model != nullptr);
  model_ = std::move(model);
}

Time Transport::path_latency(const std::vector<NodeId>& path) const {
  Time total = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    total += link(path[i - 1], path[i]);
  }
  return total;
}

void Transport::deliver(sim::Simulator& sim, NodeId from, NodeId to,
                        std::function<void()> on_arrival) const {
  sim.schedule_after(link(from, to), std::move(on_arrival));
}

}  // namespace armada::net
