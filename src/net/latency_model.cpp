#include "net/latency_model.h"

#include <algorithm>
#include <iterator>

#include "util/check.h"

namespace armada::net {

namespace {

/// splitmix64 finalizer: the standard 64-bit avalanche mix.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic uniform draw in [0, 1) for an unordered link {u, v}.
double link_u01(std::uint64_t seed, NodeId u, NodeId v) {
  const std::uint64_t a = std::min(u, v);
  const std::uint64_t b = std::max(u, v);
  std::uint64_t h = mix64(seed);
  h = mix64(h ^ a);
  h = mix64(h ^ b);
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

ConstantHop::ConstantHop(Time cost) : cost_(cost) {
  ARMADA_CHECK(cost > 0.0);
}

Time ConstantHop::link_latency(NodeId u, NodeId v) const {
  ARMADA_CHECK(u != v);
  return cost_;
}

UniformJitter::UniformJitter(std::uint64_t seed, Time lo, Time hi)
    : seed_(seed), lo_(lo), hi_(hi) {
  ARMADA_CHECK(lo > 0.0 && lo < hi);
}

Time UniformJitter::link_latency(NodeId u, NodeId v) const {
  ARMADA_CHECK(u != v);
  return lo_ + (hi_ - lo_) * link_u01(seed_, u, v);
}

TransitStub::TransitStub(std::uint64_t seed) : TransitStub(seed, Config{}) {}

TransitStub::TransitStub(std::uint64_t seed, Config config)
    : seed_(seed), config_(config) {
  ARMADA_CHECK(config_.clusters >= 1);
  ARMADA_CHECK(config_.intra > 0.0 && config_.inter >= config_.intra);
}

std::uint32_t TransitStub::cluster_of(NodeId u) const {
  return static_cast<std::uint32_t>(mix64(seed_ ^ u) % config_.clusters);
}

Time TransitStub::link_latency(NodeId u, NodeId v) const {
  ARMADA_CHECK(u != v);
  return cluster_of(u) == cluster_of(v) ? config_.intra : config_.inter;
}

RttMatrix::RttMatrix(std::uint64_t seed, Time median)
    : seed_(seed), median_(median) {
  ARMADA_CHECK(median > 0.0);
}

Time RttMatrix::link_latency(NodeId u, NodeId v) const {
  ARMADA_CHECK(u != v);
  // Piecewise-linear inverse CDF in units of the median, following the shape
  // of the King dataset: a compact body below ~2x the median and a long tail
  // stretching past 20x (trans-continental / congested paths).
  static constexpr struct {
    double q;
    double x;  // latency / median at quantile q
  } kCdf[] = {
      {0.00, 0.10}, {0.10, 0.40}, {0.25, 0.65}, {0.50, 1.00},
      {0.75, 1.60}, {0.90, 2.80}, {0.99, 8.00}, {1.00, 25.0},
  };
  const double q = link_u01(seed_, u, v);
  double x = kCdf[0].x;
  for (std::size_t i = 1; i < std::size(kCdf); ++i) {
    if (q <= kCdf[i].q) {
      const double t = (q - kCdf[i - 1].q) / (kCdf[i].q - kCdf[i - 1].q);
      x = kCdf[i - 1].x + t * (kCdf[i].x - kCdf[i - 1].x);
      break;
    }
  }
  return median_ * x;
}

}  // namespace armada::net
