// Congestion-aware queueing network under the Transport.
//
// The paper (and PRs 2-4) price a hop as pure propagation delay, which
// silently assumes an uncongested network. This module makes offered load
// cost something: each node owns FIFO egress/ingress service queues with a
// configurable service rate, messages carry a byte size priced against
// per-link bandwidth, and a per-link *coalescing window* batches departures
// (messages leaving node u for node v inside the window ride one scheduled
// departure).
//
// Scheduling discipline: *virtual-time reservations* (cf. VirtualClock
// packet scheduling). A send reserves every resource on the message's path
// — egress server, batch departure slot, link transmission slot, ingress
// server — at enqueue time, in send order, and the final delivery instant
// is therefore known synchronously (Queueing::send returns it). This keeps
// the engine deterministic, keeps per-link FIFO exact, and lets callers
// that need arrival times up front (churn drivers opening stale windows)
// integrate without callback gymnastics. The one approximation: a node's
// ingress server allocates capacity in reservation order, which equals
// arrival order per link but may differ from global arrival order across
// links under extreme skew.
//
// Traffic classes and priority (the closed-loop PR): every send carries a
// TrafficClass. Under the default kFifo discipline the class is pure
// accounting and timing is bit-identical for any mix. kWeighted gives each
// class a dedicated share of every node server (per-class virtual clocks at
// service_rate x weight share — each class is isolated, so repair keeps its
// share no matter how deep the query class queues; the price is that the
// discipline is not work-conserving across classes). kStrict serializes a
// class behind its own tier and every higher tier only: repair never waits
// for query backlog. Because reservations already granted to a lower tier
// are never revoked, a higher-tier burst may transiently overbook a server
// exactly where a preemptive scheduler would instead slip the lower tier —
// lower-tier delays are therefore a lower bound under cross-class
// contention (the standard price of synchronous reservations).
//
// Closed-loop flow control (QueueingConfig::flow): senders that opt in
// consult the live backlog before reserving — backing off (delaying the
// send in proportion to the excess backlog), launching a hedged duplicate
// in the kHedge lane when the synchronously-known queueing delay crosses a
// threshold (first arrival wins, the loser's continuation is cancelled),
// or shedding query-class work entirely once the target's backlog reaches
// the admission limit (partial answers with an explicit coverage
// fraction). All knobs default to off; the default config prices every
// class identically and reproduces every pre-existing golden bitwise.
//
// The zero-queue configuration (unlimited rates, zero window, zero-size
// messages) degenerates structurally to the stateless path: every
// reservation is a no-op and send() schedules exactly one event at
// now + propagation — the same event, at the same time, in the same
// scheduling order as Transport's stateless deliver — so every
// pre-existing golden is reproduced bitwise.
//
// Queue state is scoped per sim::Simulator (tracked by Simulator::id()):
// the first send on a new simulator sees empty queues, while the cumulative
// CongestionStats keep aggregating across simulators. A bounded set of
// recent simulators' states is retained (kMaxSimStates, LRU-evicted), so a
// long-lived shared simulator keeps its backlog and open batches intact
// while ephemeral per-query simulators (FrtSearch, the DCF-CAN flood spin
// one up per query) come and go — those model *intra-query* contention,
// and drivers sharing one simulator (churn repair, bench_congestion's
// open-loop injector) model competition between concurrent traffic.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/congestion_stats.h"
#include "net/latency_model.h"
#include "sim/event_queue.h"

namespace armada::net {

/// Service/bandwidth value meaning "no limit".
inline constexpr double kUnlimitedRate =
    std::numeric_limits<double>::infinity();
/// Flow-control threshold meaning "never".
inline constexpr double kNeverHedge = std::numeric_limits<double>::infinity();

/// Sender-side closed-loop knobs. Everything defaults to off; senders that
/// opt in (Transport::deliver_walk flow control, FrtSearch) consult these
/// through Transport::{should_shed, backoff_delay}.
struct FlowControlConfig {
  /// Ingress-backlog depth at the target at which a sender starts backing
  /// off; 0 disables backoff.
  std::uint32_t backoff_threshold = 0;
  /// Backoff delay applied per message of backlog beyond the threshold
  /// (linear, so deeper queues push senders off harder).
  sim::Time backoff = 0.0;
  /// Queueing delay of a reserved primary send beyond which the sender
  /// launches one hedged duplicate in the kHedge lane; kNeverHedge
  /// disables hedging.
  sim::Time hedge_threshold = kNeverHedge;
  /// The hedge departs this long after the primary's enqueue.
  sim::Time hedge_delay = 0.0;
  /// Ingress-backlog depth at the target at or above which query-class
  /// sends are refused admission (the sender sheds or degrades the work);
  /// 0 disables admission control. Repair/handoff traffic is never shed.
  std::uint32_t admission_limit = 0;

  bool backoff_enabled() const { return backoff_threshold > 0; }
  bool hedge_enabled() const { return hedge_threshold < kNeverHedge; }
  bool admission_enabled() const { return admission_limit > 0; }

  friend bool operator==(const FlowControlConfig&,
                         const FlowControlConfig&) = default;
};

/// Knobs of the queueing network. The default-constructed config is the
/// zero-queue configuration: unlimited service and bandwidth, no
/// coalescing, zero-size messages — bitwise the stateless transport.
struct QueueingConfig {
  /// Per-node service scheduling across traffic classes.
  enum class Scheduling : std::uint8_t {
    /// One shared FIFO per server; classes are accounting-only. Default —
    /// bit-identical to the pre-class engine for any traffic mix.
    kFifo,
    /// Per-class virtual clocks at service_rate x (weight / total weight):
    /// each class owns its share of every server, isolated from the
    /// others' backlog (not work-conserving across classes).
    kWeighted,
    /// Strict priority kRepair > kHandoff > kHedge > kQuery: a class
    /// serializes behind its own tier and all higher tiers only.
    kStrict,
  };

  /// Messages per unit time each node's egress server (and, independently,
  /// its ingress server) can process. One message therefore holds a server
  /// for 1/service_rate time.
  double service_rate = kUnlimitedRate;
  /// Bytes per unit time a directed link can carry; messages on the same
  /// link serialize behind each other's transmission times.
  double link_bandwidth = kUnlimitedRate;
  /// Departures for the same directed link within this window ride one
  /// scheduled departure (the batch leaves window time after it opened).
  sim::Time coalesce_window = 0.0;
  /// Byte size charged to a message when the sender does not specify one.
  std::uint32_t default_message_bytes = 0;

  Scheduling scheduling = Scheduling::kFifo;
  /// Per-class service shares under kWeighted (indexed by class_index;
  /// ignored otherwise). Must be positive.
  std::array<double, kNumTrafficClasses> class_weights{1.0, 1.0, 1.0, 1.0};

  /// Sender-side closed-loop knobs (all off by default).
  FlowControlConfig flow;

  /// True when the config degenerates to the stateless transport: nothing
  /// this engine prices — service, bandwidth, coalescing, or message size
  /// (bytes feed bytes_on_wire accounting even when bandwidth is
  /// unlimited, so a config that only sizes messages must still route
  /// through the sized path) — is active.
  bool zero_queue() const {
    return service_rate == kUnlimitedRate &&
           link_bandwidth == kUnlimitedRate && coalesce_window == 0.0 &&
           default_message_bytes == 0;
  }
};

/// The per-transport queueing engine. Owned (behind Transport) by every
/// overlay once install_queueing() ran; all mutating traffic goes through
/// send().
class Queueing {
 public:
  explicit Queueing(QueueingConfig config);

  const QueueingConfig& config() const { return config_; }
  const CongestionStats& stats() const { return stats_; }

  /// Messages sent on the most recently served simulator whose delivery
  /// event has not yet run. sent() == delivered() + in_flight() at every
  /// event boundary (message conservation); all zero before any send.
  std::uint64_t sent() const;
  std::uint64_t delivered() const;
  std::uint64_t in_flight() const { return sent() - delivered(); }

  /// Reserve the path u -> v for one `bytes`-sized message of class `cls`
  /// enqueued at max(sim.now(), not_before), schedule `on_arrival` (may be
  /// empty) at the delivery instant, and return that instant.
  /// `propagation` is the link's pure propagation latency (the caller
  /// prices it through its LatencyModel). The queueing delay reported to
  /// the callback — and accumulated in stats() — is
  /// delivery - enqueue - propagation.
  sim::Time send(sim::Simulator& sim, NodeId from, NodeId to,
                 std::uint32_t bytes, sim::Time propagation,
                 std::function<void(sim::Time queue_delay)> on_arrival,
                 sim::Time not_before = 0.0,
                 TrafficClass cls = TrafficClass::kQuery);

  // --- closed-loop probes ----------------------------------------------------
  /// Outstanding (not yet completed) service reservations at `node`'s
  /// ingress / egress server as seen by `sim`'s queue state at sim.now().
  /// Zero for a simulator this engine has never served.
  std::size_t ingress_backlog(const sim::Simulator& sim, NodeId node) const;
  std::size_t egress_backlog(const sim::Simulator& sim, NodeId node) const;
  /// Admission decision for one more class-`cls` message to `to`: true when
  /// admission control is on, the class is sheddable (kQuery only), and the
  /// target's ingress backlog is at or above the limit.
  bool should_shed(const sim::Simulator& sim, NodeId to,
                   TrafficClass cls) const;
  /// Backoff an opted-in sender should apply before sending to `to`:
  /// flow.backoff per message of ingress backlog beyond the threshold.
  sim::Time backoff_delay(const sim::Simulator& sim, NodeId to) const;
  /// Account one admission-control shed (the message never touched the
  /// queues, so the sender reports it here to keep one shared currency).
  void record_shed();
  /// Account a hedged duplicate launch / a hedge winning its race.
  void record_hedge(bool won);
  /// Account a search class the replica subsystem rerouted to a holder /
  /// served from a path result cache (see CongestionStats).
  void record_replica_route();
  void record_cache_hit();

 private:
  struct NodeState {
    sim::Time egress_busy_until = 0.0;
    sim::Time ingress_busy_until = 0.0;
    /// Per-class server horizons used by the kWeighted (virtual clocks)
    /// and kStrict (priority tiers) disciplines; untouched under kFifo.
    std::array<sim::Time, kNumTrafficClasses> egress_class_until{};
    std::array<sim::Time, kNumTrafficClasses> ingress_class_until{};
    /// Completion instants of outstanding reservations (FIFO backlog).
    std::deque<sim::Time> egress_backlog;
    std::deque<sim::Time> ingress_backlog;
  };
  struct LinkState {
    sim::Time wire_busy_until = 0.0;
    sim::Time batch_departure = 0.0;
    std::uint32_t batch_occupancy = 0;  ///< 0 = no open batch
  };
  /// Delivery events outlive state eviction (and possibly this engine's
  /// simulator binding), so the delivered counter they bump lives behind a
  /// shared handle; eviction orphans the old counter.
  struct Live {
    std::uint64_t delivered = 0;
  };
  /// The dynamic queue state of one simulator. States are retained for the
  /// kMaxSimStates most recently served simulators: the shared simulator
  /// of a churn/congestion run keeps its backlog and open batches while
  /// per-query throwaway simulators cycle through the remaining slots.
  struct SimState {
    std::uint64_t sim_id = 0;
    std::uint64_t touched = 0;  ///< LRU stamp
    std::uint64_t sent = 0;
    std::shared_ptr<Live> live;
    std::vector<NodeState> nodes;
    std::unordered_map<std::uint64_t, LinkState> links;
  };
  static constexpr std::size_t kMaxSimStates = 4;

  /// The state bound to `sim`, creating (and LRU-evicting) as needed.
  SimState& state_for(const sim::Simulator& sim);
  /// Lookup without creating or touching LRU order (closed-loop probes).
  const SimState* find_state(const sim::Simulator& sim) const;
  static NodeState& node(SimState& state, NodeId id);
  static LinkState& link(SimState& state, NodeId from, NodeId to);
  /// Record one more outstanding reservation completing at `until` and
  /// update the corresponding backlog peak.
  void push_backlog(std::deque<sim::Time>& backlog, sim::Time now,
                    sim::Time until, std::uint64_t* peak);
  /// Reserve one service slot of class `cls` on the server described by
  /// (busy_until, class_until) under the configured discipline; returns
  /// the completion instant.
  sim::Time reserve_server(
      sim::Time& busy_until,
      std::array<sim::Time, kNumTrafficClasses>& class_until, TrafficClass cls,
      sim::Time now, sim::Time service) const;

  QueueingConfig config_;
  CongestionStats stats_;
  std::vector<SimState> states_;
  std::size_t current_ = static_cast<std::size_t>(-1);  ///< index into states_
  std::uint64_t touch_counter_ = 0;
};

}  // namespace armada::net
