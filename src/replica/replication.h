// Popularity-aware region replication over the DHT (extension).
//
// Armada's order-preserving naming concentrates skewed query traffic on the
// few peers in charge of hot attribute ranges. This module replicates the
// contents of hot regions — length-g Kautz prefixes, the granularity the
// PopularityTracker counts at — to k deterministic alternate names
// (MULTIPLE_HASH-style variants of the region prefix), so the query layer
// can route whole search classes to the cheapest live replica holder
// instead of fanning into the hot region.
//
// Like Armada itself the subsystem is layered over FISSIONE: it only uses
// publish/route/owner_of and never modifies the overlay. Replica contents
// live in the manager, not in Peer::store — the overlay's placement
// invariant (every stored object is prefixed by its peer's PeerID) stays
// intact, and check_invariants() keeps passing.
//
// Placement, churn repair, and teardown are priced through the transport as
// kHandoff traffic: one batched transfer per (primary, holder) pair, sized
// like the churn drivers' object handoffs. A holder is usable only once its
// transfers have *arrived* on the simulator, so replicas freshly placed (or
// being re-synced after churn) do not serve queries early.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "fissione/network.h"
#include "kautz/kautz_string.h"
#include "sim/event_queue.h"

namespace armada::replica {

/// Knobs of the replication / result-cache subsystem. The default
/// configuration disables every mechanism: attaching it to an index keeps
/// all queries bitwise identical to the plain engines.
struct ReplicationConfig {
  // --- replication ----------------------------------------------------------
  /// Replica holders per hot region; 0 disables replication entirely.
  std::uint32_t max_replicas = 0;
  /// Length of the Kautz prefix defining one tracked/replicated region.
  std::size_t region_prefix_len = 4;
  /// Decayed query count at which a region becomes hot and is replicated.
  double hot_threshold = 32.0;
  /// Decayed count below which an existing replica set is torn down (must
  /// stay below hot_threshold or placement would flap every sweep).
  double cool_threshold = 4.0;
  /// Popularity counters are multiplied by `decay` once every
  /// `decay_interval` queries (the subsystem's clock is the query tick, not
  /// simulated time: synchronous query wrappers run each query on a fresh
  /// simulator, so sim time never advances across queries).
  double decay = 0.5;
  std::uint64_t decay_interval = 256;
  /// Per-object surcharge on a replica transfer's byte size (the base
  /// message costs the queueing config's default size), mirroring the churn
  /// drivers' handoff pricing.
  std::uint32_t object_bytes = 32;

  // --- result cache ---------------------------------------------------------
  /// TTL of a cached class result, in query ticks; 0 disables caching.
  std::uint64_t cache_ttl = 0;
  /// Entries retained across all peers before FIFO eviction.
  std::size_t cache_capacity = 4096;

  bool replication_enabled() const { return max_replicas > 0; }
  bool cache_enabled() const { return cache_ttl > 0; }
  bool enabled() const { return replication_enabled() || cache_enabled(); }
};

/// Cumulative counters of the subsystem (gauges noted as such).
struct ReplicaStats {
  std::uint64_t queries = 0;             ///< clock ticks observed
  std::uint64_t regions_replicated = 0;  ///< placement events
  std::uint64_t regions_torn_down = 0;
  std::uint64_t active_regions = 0;      ///< gauge
  std::uint64_t replica_objects = 0;     ///< gauge: objects held per region sum
  std::uint64_t placement_messages = 0;  ///< kHandoff transfers (all causes)
  std::uint64_t placement_bytes = 0;
  std::uint64_t repairs = 0;             ///< holder re-syncs forced by churn
  std::uint64_t replica_routes = 0;      ///< classes served by a holder
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_insertions = 0;
  std::uint64_t cache_invalidated_publish = 0;
  std::uint64_t cache_invalidated_churn = 0;

  friend bool operator==(const ReplicaStats&, const ReplicaStats&) = default;
};

/// Owns the replica placement: which regions are replicated, at which
/// deterministic alternate names, with which content snapshot.
class ReplicationManager {
 public:
  struct Holder {
    kautz::KautzString name;  ///< deterministic alternate ObjectID
    fissione::PeerId peer = fissione::kNoPeer;
    /// Usable for serving: every placement/repair transfer has arrived.
    bool synced = false;
    /// Outstanding transfers; guarded by `version` so arrivals from a
    /// superseded sync cannot mark a newer one complete.
    std::uint32_t pending = 0;
    std::uint64_t version = 0;
  };

  struct RegionReplica {
    std::vector<Holder> holders;
    /// Content snapshot shared by all holders, canonically sorted by
    /// (object_id, payload). shared_ptr: in-flight serves scan the snapshot
    /// they captured even if a publish or repair swaps it meanwhile.
    std::shared_ptr<const std::vector<fissione::StoredObject>> objects;
  };

  ReplicationManager(fissione::FissioneNetwork& net,
                     const ReplicationConfig& config, ReplicaStats& stats);

  bool replicated(const kautz::KautzString& prefix) const {
    return regions_.find(prefix) != regions_.end();
  }
  const RegionReplica* find(const kautz::KautzString& prefix) const;

  /// Replicate `prefix` now: snapshot the region's objects from its primary
  /// peers, derive up to max_replicas holder names
  /// kautz_hash("replica/<prefix>/<i>"), and price one kHandoff transfer
  /// per (primary, holder) pair on `sim`. Holders serve once their
  /// transfers arrive. No-op when already replicated.
  void replicate(sim::Simulator& sim, const kautz::KautzString& prefix);

  /// Drop the replica set of `prefix`, pricing one kHandoff control message
  /// per holder (the release notice). Queries stop using it immediately.
  void tear_down(sim::Simulator& sim, const kautz::KautzString& prefix);

  /// Churn repair: re-derive every region's holders against current
  /// membership, re-snapshot contents from the (possibly changed) primaries
  /// and re-sync holders whose peer moved, died, or whose content is stale.
  /// Transfers are priced as kHandoff on `sim` and counted as repairs.
  void repair(sim::Simulator& sim);

  /// Keep replica snapshots in step with a publish (placement in this repo
  /// is direct and free, so the replica copy updates the same way).
  void on_publish(const kautz::KautzString& object_id, std::uint64_t payload);

  /// True when `peer` is in charge of part of the region `prefix` (its
  /// PeerID and the prefix are comparable) — such peers are never holders.
  bool is_primary(fissione::PeerId peer,
                  const kautz::KautzString& prefix) const;

  /// Replicated regions in lexicographic prefix order (determinism seam).
  const std::map<kautz::KautzString, RegionReplica>& regions() const {
    return regions_;
  }

 private:
  std::vector<fissione::StoredObject> collect_objects(
      const kautz::KautzString& prefix) const;
  std::vector<fissione::PeerId> primaries(
      const kautz::KautzString& prefix) const;
  /// Price the (primaries -> holder) transfers for the current snapshot and
  /// mark the holder synced when the last one lands.
  void sync_holder(sim::Simulator& sim, const kautz::KautzString& prefix,
                   Holder& holder);

  fissione::FissioneNetwork& net_;
  const ReplicationConfig& config_;
  ReplicaStats& stats_;
  std::map<kautz::KautzString, RegionReplica> regions_;
};

}  // namespace armada::replica
