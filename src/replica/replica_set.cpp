#include "replica/replica_set.h"

#include <utility>

#include "net/transport.h"
#include "util/check.h"

namespace armada::replica {

using fissione::PeerId;
using kautz::KautzRegion;
using kautz::KautzString;

ReplicaSet::ReplicaSet(fissione::FissioneNetwork& net,
                       ReplicationConfig config)
    : net_(net),
      config_(config),
      popularity_(config_.decay, config_.decay_interval),
      manager_(net, config_, stats_),
      selector_(net),
      cache_(config_.cache_ttl, config_.cache_capacity) {
  ARMADA_CHECK_MSG(config_.cool_threshold < config_.hot_threshold,
                   "cooled regions must sit strictly below the hot "
                   "threshold or placement flaps every sweep");
}

void ReplicaSet::on_query(sim::Simulator& sim,
                          const std::vector<KautzRegion>& class_subregions) {
  if (!config_.enabled()) {
    return;
  }
  ++stats_.queries;
  const bool swept = popularity_.tick();
  if (!config_.replication_enabled()) {
    return;
  }
  if (swept) {
    // Collect first: tear_down mutates the region map under iteration.
    std::vector<KautzString> cooled;
    for (const auto& [prefix, region] : manager_.regions()) {
      if (popularity_.count(prefix) < config_.cool_threshold) {
        cooled.push_back(prefix);
      }
    }
    for (const KautzString& prefix : cooled) {
      manager_.tear_down(sim, prefix);
    }
  }
  for (const KautzRegion& sub : class_subregions) {
    const KautzString com = sub.common_prefix();
    if (com.length() < config_.region_prefix_len) {
      continue;  // class wider than the tracked granularity
    }
    const KautzString prefix = com.prefix(config_.region_prefix_len);
    if (popularity_.bump(prefix) >= config_.hot_threshold &&
        !manager_.replicated(prefix)) {
      manager_.replicate(sim, prefix);
    }
  }
}

bool ReplicaSet::serve_class(sim::Simulator& sim, PeerId issuer,
                             const KautzRegion& subregion,
                             const std::string& cache_tag,
                             const ObjectFilter& filter, ServeDone done) {
  if (!config_.enabled()) {
    return false;
  }
  const std::uint64_t now_tick = popularity_.now();
  const bool cacheable = config_.cache_enabled() && !cache_tag.empty();
  if (cacheable) {
    if (const ResultCache::Entry* hit =
            cache_.lookup(issuer, cache_tag, now_tick)) {
      // Local hit: the class costs nothing on the wire.
      ++stats_.cache_hits;
      net_.transport().record_cache_hit();
      sim.schedule_at(
          sim.now(), [done = std::move(done), matches = hit->matches] {
            sim::QueryStats frag;
            frag.cache_hits = 1;
            done(frag, matches, fissione::kNoPeer);
          });
      return true;
    }
    ++stats_.cache_misses;
  }
  if (!config_.replication_enabled()) {
    return false;
  }
  const KautzString com = subregion.common_prefix();
  if (com.length() < config_.region_prefix_len) {
    return false;  // class spans several regions: fan out normally
  }
  const KautzString prefix = com.prefix(config_.region_prefix_len);
  const auto choice = selector_.choose(manager_, issuer, prefix);
  if (!choice.has_value()) {
    return false;  // not replicated, or no holder usable yet
  }

  std::vector<PeerId> path = choice->path;
  // Path-cache probe: serve from the peer nearest the issuer holding a
  // fresh entry, truncating the walk there. The matches are copied at
  // decision time — the entry may be evicted or invalidated mid-walk, and
  // the serving peer answers with what it had when the request departed.
  std::vector<std::uint64_t> cached;
  bool from_cache = false;
  if (cacheable) {
    for (std::size_t i = 1; i < path.size(); ++i) {
      if (const ResultCache::Entry* hit =
              cache_.lookup(path[i], cache_tag, now_tick)) {
        cached = hit->matches;
        from_cache = true;
        path.resize(i + 1);
        break;
      }
    }
  }
  // Snapshot at decision time, scanned at arrival: the holder answers with
  // the replica content it was synced with (copy-on-write keeps the
  // captured snapshot alive across publishes and repairs).
  auto objects = manager_.find(prefix)->objects;
  const PeerId holder = choice->holder;

  net::Transport::WalkOptions options;
  options.bytes = net_.transport().default_message_bytes();
  options.cls = net::TrafficClass::kQuery;
  options.flow_control = true;
  net_.transport().deliver_walk(
      sim, path,
      options,
      [this, done = std::move(done), path, subregion, filter, cache_tag,
       objects = std::move(objects), cached = std::move(cached), from_cache,
       holder, cacheable](const sim::QueryStats& walk) {
        sim::QueryStats frag = walk;
        if (frag.coverage <= 0.0 && path.size() > 1) {
          // Admission shed the walk: partial (empty) answer, never cached.
          done(std::move(frag), {}, fissione::kNoPeer);
          return;
        }
        for (std::size_t i = 1; i < path.size(); ++i) {
          net_.record_service(path[i]);
        }
        std::vector<std::uint64_t> matches;
        PeerId served_by = fissione::kNoPeer;
        if (from_cache) {
          matches = cached;
          frag.cache_hits = 1;
          ++stats_.cache_hits;
          net_.transport().record_cache_hit();
        } else {
          for (const fissione::StoredObject& obj : *objects) {
            if (subregion.contains(obj.object_id) && filter(obj)) {
              matches.push_back(obj.payload);
            }
          }
          frag.replica_routes = 1;
          ++stats_.replica_routes;
          net_.transport().record_replica_route();
          served_by = holder;
        }
        if (cacheable) {
          // Fill the whole walk (minus whoever served) so later walks
          // truncate earlier and repeat issuers answer locally.
          const std::size_t served_at = from_cache ? path.size() - 1 : path.size();
          for (std::size_t i = 0; i < path.size(); ++i) {
            if (i == served_at) {
              continue;
            }
            if (cache_.insert(path[i], cache_tag, subregion, matches,
                              popularity_.now())) {
              ++stats_.cache_insertions;
            }
          }
        }
        done(std::move(frag), std::move(matches), served_by);
      });
  return true;
}

void ReplicaSet::cache_insert(PeerId peer, const std::string& cache_tag,
                              const KautzRegion& subregion,
                              const std::vector<std::uint64_t>& matches) {
  if (!config_.cache_enabled() || cache_tag.empty()) {
    return;
  }
  if (cache_.insert(peer, cache_tag, subregion, matches, popularity_.now())) {
    ++stats_.cache_insertions;
  }
}

void ReplicaSet::on_publish(const KautzString& object_id,
                            std::uint64_t payload) {
  if (!config_.enabled()) {
    return;
  }
  manager_.on_publish(object_id, payload);
  stats_.cache_invalidated_publish += cache_.invalidate_object(object_id);
}

void ReplicaSet::on_membership(sim::Simulator& sim) {
  if (!config_.enabled()) {
    return;
  }
  stats_.cache_invalidated_churn += cache_.clear();
  if (config_.replication_enabled()) {
    manager_.repair(sim);
  }
}

}  // namespace armada::replica
