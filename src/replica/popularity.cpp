#include "replica/popularity.h"

#include <iterator>

#include "util/check.h"

namespace armada::replica {

namespace {

// Counters below this are dead weight: drop them in the sweep so the map
// stays proportional to the *recently* queried regions, not all history.
constexpr double kDropBelow = 1e-3;

}  // namespace

PopularityTracker::PopularityTracker(double decay, std::uint64_t interval)
    : decay_(decay), interval_(interval) {
  ARMADA_CHECK(decay_ > 0.0 && decay_ < 1.0);
  ARMADA_CHECK(interval_ > 0);
}

bool PopularityTracker::tick() {
  ++tick_;
  if (tick_ % interval_ != 0) {
    return false;
  }
  for (auto it = counts_.begin(); it != counts_.end();) {
    it->second *= decay_;
    it = it->second < kDropBelow ? counts_.erase(it) : std::next(it);
  }
  return true;
}

double PopularityTracker::bump(const kautz::KautzString& region) {
  return counts_[region] += 1.0;
}

double PopularityTracker::count(const kautz::KautzString& region) const {
  const auto it = counts_.find(region);
  return it == counts_.end() ? 0.0 : it->second;
}

}  // namespace armada::replica
