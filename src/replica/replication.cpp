#include "replica/replication.h"

#include <algorithm>
#include <string>
#include <utility>

#include "net/transport.h"
#include "util/check.h"

namespace armada::replica {

using fissione::PeerId;
using fissione::StoredObject;
using kautz::KautzString;

namespace {

// Canonical snapshot order: content equality across re-collections must not
// depend on which primary held which object.
bool canonical_less(const StoredObject& a, const StoredObject& b) {
  if (a.object_id != b.object_id) {
    return a.object_id < b.object_id;
  }
  return a.payload < b.payload;
}

}  // namespace

ReplicationManager::ReplicationManager(fissione::FissioneNetwork& net,
                                       const ReplicationConfig& config,
                                       ReplicaStats& stats)
    : net_(net), config_(config), stats_(stats) {
  ARMADA_CHECK(config_.region_prefix_len > 0);
}

const ReplicationManager::RegionReplica* ReplicationManager::find(
    const KautzString& prefix) const {
  const auto it = regions_.find(prefix);
  return it == regions_.end() ? nullptr : &it->second;
}

bool ReplicationManager::is_primary(PeerId peer,
                                    const KautzString& prefix) const {
  const KautzString& pid = net_.peer(peer).peer_id;
  return pid.is_prefix_of(prefix) || prefix.is_prefix_of(pid);
}

std::vector<PeerId> ReplicationManager::primaries(
    const KautzString& prefix) const {
  std::vector<PeerId> out;
  for (PeerId p : net_.alive_peers()) {
    if (is_primary(p, prefix)) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<StoredObject> ReplicationManager::collect_objects(
    const KautzString& prefix) const {
  std::vector<StoredObject> out;
  for (PeerId p : primaries(prefix)) {
    for (const StoredObject& obj : net_.peer(p).store) {
      if (prefix.is_prefix_of(obj.object_id)) {
        out.push_back(obj);
      }
    }
  }
  // Region objects inside migrated ranges live in the delegation registry,
  // not in any primary's native store; fold their slices in so snapshots
  // stay complete while the rebalancer is active.
  if (net_.has_delegations()) {
    net_.visit_delegation_slices(
        prefix, [&out](const KautzString&, std::span<const StoredObject> run) {
          out.insert(out.end(), run.begin(), run.end());
        });
  }
  std::sort(out.begin(), out.end(), canonical_less);
  return out;
}

void ReplicationManager::sync_holder(sim::Simulator& sim,
                                     const KautzString& prefix,
                                     Holder& holder) {
  holder.synced = false;
  holder.pending = 0;
  ++holder.version;
  const std::uint64_t version = holder.version;
  net::Transport& transport = net_.transport();
  if (obs::TraceRecorder* rec = transport.trace(); rec != nullptr) {
    // When a query's popularity tick tripped this placement, tag its
    // trace: the kHandoff spans below are replication, not query fan-out.
    rec->annotate(obs::kFlagReplication);
  }
  // One batched transfer per peer actually holding region objects — each
  // primary, plus each delegation host serving a migrated slice of the
  // region; the version guard keeps arrivals of a superseded sync (re-sync
  // raced by churn) from marking the newer one complete.
  const auto send = [this, &sim, &transport, &holder, &prefix,
                     version](PeerId from, std::uint32_t count) {
    const std::uint32_t bytes =
        transport.default_message_bytes() + config_.object_bytes * count;
    ++holder.pending;
    ++stats_.placement_messages;
    stats_.placement_bytes += bytes;
    transport.deliver(
        sim, from, holder.peer, bytes,
        [this, prefix, name = holder.name, version](sim::Time) {
          const auto it = regions_.find(prefix);
          if (it == regions_.end()) {
            return;  // torn down while the transfer was in flight
          }
          for (Holder& h : it->second.holders) {
            if (h.name == name && h.version == version) {
              if (--h.pending == 0) {
                h.synced = true;
              }
              return;
            }
          }
        },
        0.0, net::TrafficClass::kHandoff);
  };
  for (PeerId p : primaries(prefix)) {
    std::uint32_t count = 0;
    for (const StoredObject& obj : net_.peer(p).store) {
      if (prefix.is_prefix_of(obj.object_id)) {
        ++count;
      }
    }
    if (count > 0) {
      send(p, count);
    }
  }
  if (net_.has_delegations()) {
    net_.visit_delegation_slices(
        prefix, [this, &send](const KautzString& range,
                              std::span<const StoredObject> run) {
          if (run.empty()) {
            return;
          }
          const auto* d = net_.find_delegation(range);
          send(d->host, static_cast<std::uint32_t>(run.size()));
        });
  }
  if (holder.pending == 0) {
    holder.synced = true;  // empty region: nothing to move
  }
}

void ReplicationManager::replicate(sim::Simulator& sim,
                                   const KautzString& prefix) {
  ARMADA_CHECK(config_.replication_enabled());
  if (replicated(prefix)) {
    return;
  }
  RegionReplica region;
  auto snapshot = collect_objects(prefix);
  stats_.replica_objects += snapshot.size();
  region.objects = std::make_shared<const std::vector<StoredObject>>(
      std::move(snapshot));
  // MULTIPLE_HASH-style naming: variant i of the region prefix. owner_of is
  // a pure tree descent, so the placement is a deterministic function of
  // the membership. Primaries and repeat owners are skipped; the bounded
  // scan keeps tiny overlays (where most owners are primaries) terminating
  // with however many distinct holders exist.
  for (std::uint32_t i = 0;
       region.holders.size() < config_.max_replicas &&
       i < config_.max_replicas * 8;
       ++i) {
    KautzString name = net_.kautz_hash("replica/" + prefix.to_string() + "/" +
                                       std::to_string(i));
    const PeerId owner = net_.owner_of(name);
    if (!net_.is_alive(owner) || is_primary(owner, prefix)) {
      continue;
    }
    const bool taken =
        std::any_of(region.holders.begin(), region.holders.end(),
                    [owner](const Holder& h) { return h.peer == owner; });
    if (taken) {
      continue;
    }
    Holder holder;
    holder.name = std::move(name);
    holder.peer = owner;
    region.holders.push_back(std::move(holder));
  }
  if (region.holders.empty()) {
    stats_.replica_objects -= region.objects->size();
    return;  // nowhere to replicate to
  }
  const auto [it, inserted] = regions_.emplace(prefix, std::move(region));
  ARMADA_CHECK(inserted);
  ++stats_.regions_replicated;
  ++stats_.active_regions;
  for (Holder& holder : it->second.holders) {
    sync_holder(sim, prefix, holder);
  }
}

void ReplicationManager::tear_down(sim::Simulator& sim,
                                   const KautzString& prefix) {
  const auto it = regions_.find(prefix);
  if (it == regions_.end()) {
    return;
  }
  // Release notices travel the handoff lane; the region stops serving
  // immediately (the erase below), the notices are pure accounting.
  const std::vector<PeerId> prims = primaries(prefix);
  const PeerId origin = prims.empty() ? fissione::kNoPeer : prims.front();
  net::Transport& transport = net_.transport();
  for (const Holder& holder : it->second.holders) {
    if (origin == fissione::kNoPeer || !net_.is_alive(holder.peer)) {
      continue;
    }
    const std::uint32_t bytes = transport.default_message_bytes();
    ++stats_.placement_messages;
    stats_.placement_bytes += bytes;
    transport.deliver(sim, origin, holder.peer, bytes, nullptr, 0.0,
                      net::TrafficClass::kHandoff);
  }
  stats_.replica_objects -= it->second.objects->size();
  regions_.erase(it);
  ++stats_.regions_torn_down;
  --stats_.active_regions;
}

void ReplicationManager::repair(sim::Simulator& sim) {
  for (auto& [prefix, region] : regions_) {
    auto fresh = collect_objects(prefix);
    const bool content_changed = fresh != *region.objects;
    if (content_changed) {
      stats_.replica_objects += fresh.size();
      stats_.replica_objects -= region.objects->size();
      region.objects = std::make_shared<const std::vector<StoredObject>>(
          std::move(fresh));
    }
    // Re-derive the holder list against current membership (same
    // deterministic scan as replicate); carry over holders that kept their
    // name -> owner mapping and content, re-sync the rest.
    std::vector<Holder> holders;
    for (std::uint32_t i = 0;
         holders.size() < config_.max_replicas && i < config_.max_replicas * 8;
         ++i) {
      KautzString name = net_.kautz_hash(
          "replica/" + prefix.to_string() + "/" + std::to_string(i));
      const PeerId owner = net_.owner_of(name);
      if (!net_.is_alive(owner) || is_primary(owner, prefix)) {
        continue;
      }
      const bool taken =
          std::any_of(holders.begin(), holders.end(),
                      [owner](const Holder& h) { return h.peer == owner; });
      if (taken) {
        continue;
      }
      Holder holder;
      holder.name = std::move(name);
      holder.peer = owner;
      const auto old = std::find_if(
          region.holders.begin(), region.holders.end(),
          [&holder](const Holder& h) { return h.name == holder.name; });
      if (old != region.holders.end()) {
        holder.version = old->version;
        if (old->peer == holder.peer && old->synced && !content_changed) {
          holder.synced = true;
        }
      }
      holders.push_back(std::move(holder));
    }
    region.holders = std::move(holders);
    for (Holder& holder : region.holders) {
      if (!holder.synced) {
        ++stats_.repairs;
        sync_holder(sim, prefix, holder);
      }
    }
  }
}

void ReplicationManager::on_publish(const KautzString& object_id,
                                    std::uint64_t payload) {
  for (auto& [prefix, region] : regions_) {
    if (!prefix.is_prefix_of(object_id)) {
      continue;
    }
    // Copy-on-write: serves in flight keep scanning the snapshot they
    // captured; publish in this repo is direct and free, so the replica
    // copy updates instantly too.
    auto updated =
        std::make_shared<std::vector<StoredObject>>(*region.objects);
    StoredObject obj{object_id, payload};
    const auto pos = std::lower_bound(updated->begin(), updated->end(), obj,
                                      canonical_less);
    updated->insert(pos, std::move(obj));
    region.objects = std::move(updated);
    ++stats_.replica_objects;
    break;  // region prefixes share one length: at most one can match
  }
}

}  // namespace armada::replica
