// ResultCache: TTL-bounded caching of subtree range results at peers along
// query paths.
//
// Entries are keyed by (peer, tag): the tag is built by the query layer
// from the query's value bounds plus the class subregion, so only
// value-level queries — whose filter is a pure function of the bounds —
// ever populate or read the cache (region-level queries with arbitrary
// filters pass an empty tag and bypass it). A hit serves the class without
// touching the region's peers; walks toward a replica holder truncate at
// the first peer holding a fresh entry.
//
// Currency rules (the ouinet cache_control idiom, adapted):
//   * TTL in query ticks — the subsystem's clock (see PopularityTracker).
//   * A publish invalidates every entry whose subregion contains the new
//     ObjectID, everywhere (placement in this repo is instant).
//   * A membership event invalidates the whole cache: ownership may have
//     moved arbitrarily and a stale full answer is worse than a re-query.
//   * Shed partial answers (coverage < 1) are never inserted — a cache
//     must not launder a degraded answer into a full one.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "fissione/types.h"
#include "kautz/kautz_region.h"

namespace armada::replica {

class ResultCache {
 public:
  struct Entry {
    kautz::KautzRegion subregion;  ///< for publish containment checks
    std::vector<std::uint64_t> matches;
    std::uint64_t inserted = 0;  ///< query tick of insertion
  };

  ResultCache(std::uint64_t ttl, std::size_t capacity);

  /// Fresh entry at (peer, tag) as of tick `now`, or null. Stale entries
  /// are erased lazily here.
  const Entry* lookup(fissione::PeerId peer, const std::string& tag,
                      std::uint64_t now);

  /// Insert (or refresh) an entry; evicts the oldest insertion once
  /// capacity is exceeded. Returns false when the cache is disabled.
  bool insert(fissione::PeerId peer, const std::string& tag,
              const kautz::KautzRegion& subregion,
              std::vector<std::uint64_t> matches, std::uint64_t now);

  /// Publish invalidation: drop entries whose subregion contains the new
  /// object. Returns the number of entries dropped.
  std::size_t invalidate_object(const kautz::KautzString& object_id);

  /// Churn invalidation: drop everything. Returns the number dropped.
  std::size_t clear();

  std::size_t size() const { return entries_.size(); }

 private:
  using Key = std::pair<fissione::PeerId, std::string>;

  std::uint64_t ttl_;
  std::size_t capacity_;
  std::map<Key, Entry> entries_;  ///< ordered: deterministic iteration
  std::deque<Key> fifo_;          ///< insertion order for eviction
};

}  // namespace armada::replica
