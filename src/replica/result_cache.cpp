#include "replica/result_cache.h"

#include <utility>

namespace armada::replica {

ResultCache::ResultCache(std::uint64_t ttl, std::size_t capacity)
    : ttl_(ttl), capacity_(capacity) {}

const ResultCache::Entry* ResultCache::lookup(fissione::PeerId peer,
                                              const std::string& tag,
                                              std::uint64_t now) {
  if (ttl_ == 0) {
    return nullptr;
  }
  const auto it = entries_.find(Key{peer, tag});
  if (it == entries_.end()) {
    return nullptr;
  }
  if (now - it->second.inserted >= ttl_) {
    entries_.erase(it);  // fifo_ keeps the ghost key; erasure tolerates it
    return nullptr;
  }
  return &it->second;
}

bool ResultCache::insert(fissione::PeerId peer, const std::string& tag,
                         const kautz::KautzRegion& subregion,
                         std::vector<std::uint64_t> matches,
                         std::uint64_t now) {
  if (ttl_ == 0) {
    return false;
  }
  Key key{peer, tag};
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh in place; the key keeps its original FIFO position.
    it->second.matches = std::move(matches);
    it->second.inserted = now;
    return true;
  }
  while (entries_.size() >= capacity_ && !fifo_.empty()) {
    entries_.erase(fifo_.front());  // may be a ghost of an erased entry
    fifo_.pop_front();
  }
  entries_.emplace(key, Entry{subregion, std::move(matches), now});
  fifo_.push_back(std::move(key));
  return true;
}

std::size_t ResultCache::invalidate_object(
    const kautz::KautzString& object_id) {
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.subregion.contains(object_id)) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::size_t ResultCache::clear() {
  const std::size_t dropped = entries_.size();
  entries_.clear();
  fifo_.clear();
  return dropped;
}

}  // namespace armada::replica
