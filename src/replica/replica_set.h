// ReplicaSet: facade of the popularity-aware replication / result-cache
// subsystem, one instance per ArmadaIndex.
//
// The query layer drives it through three hooks:
//
//   on_query     — advance the query-tick clock, charge popularity for each
//                  search class's region, replicate regions crossing the
//                  hot threshold and tear down cooled ones (transfers are
//                  priced on the caller's simulator as kHandoff traffic).
//   serve_class  — try to answer one search class without fanning into the
//                  region: from the issuer's result cache, from a cache
//                  entry on the walk toward the cheapest live replica
//                  holder, or by scanning the holder's replica snapshot.
//                  Returns false when the class must run the plain FRT.
//   on_publish / on_membership — currency: keep replica snapshots in step
//                  with publishes and churn, invalidate cached results.
//
// Disabled (the default ReplicationConfig), every hook is a no-op and the
// query layer takes its pre-existing code path bitwise.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fissione/network.h"
#include "kautz/kautz_region.h"
#include "replica/popularity.h"
#include "replica/replication.h"
#include "replica/result_cache.h"
#include "replica/selector.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"

namespace armada::replica {

class ReplicaSet {
 public:
  using ObjectFilter = std::function<bool(const fissione::StoredObject&)>;
  /// Completion of a served class: the transport-priced cost fragment, the
  /// matching payload handles, and the holder that scanned for them
  /// (kNoPeer when the answer came from a cache entry).
  using ServeDone = std::function<void(
      sim::QueryStats, std::vector<std::uint64_t>, fissione::PeerId)>;

  ReplicaSet(fissione::FissioneNetwork& net, ReplicationConfig config);

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  const ReplicationConfig& config() const { return config_; }
  const ReplicaStats& stats() const { return stats_; }
  const ReplicationManager& manager() const { return manager_; }
  const PopularityTracker& popularity() const { return popularity_; }
  const ResultCache& cache() const { return cache_; }

  /// Per-query entry point (PIRA/MIRA call it once per query with the
  /// common-prefix subregions of the search classes).
  void on_query(sim::Simulator& sim,
                const std::vector<kautz::KautzRegion>& class_subregions);

  /// Serve one search class from cache or replica; false = run the FRT.
  /// `cache_tag` identifies the (query bounds, subregion) pair — empty
  /// means uncacheable (arbitrary filter), which still allows replica
  /// routing: the holder scan applies `subregion.contains && filter`,
  /// exactly the destination-scan semantics restricted to the class.
  bool serve_class(sim::Simulator& sim, fissione::PeerId issuer,
                   const kautz::KautzRegion& subregion,
                   const std::string& cache_tag, const ObjectFilter& filter,
                   ServeDone done);

  /// Cache a class result computed by the plain FRT path (full answers
  /// only — the caller checks coverage == 1 before offering it).
  void cache_insert(fissione::PeerId peer, const std::string& cache_tag,
                    const kautz::KautzRegion& subregion,
                    const std::vector<std::uint64_t>& matches);

  void on_publish(const kautz::KautzString& object_id, std::uint64_t payload);
  /// Membership changed (join/leave/crash executed): re-place and re-sync
  /// replicas, drop every cached result. Wire this to the churn drivers'
  /// set_membership_hook.
  void on_membership(sim::Simulator& sim);

 private:
  fissione::FissioneNetwork& net_;
  ReplicationConfig config_;
  ReplicaStats stats_;
  PopularityTracker popularity_;
  ReplicationManager manager_;
  ReplicaSelector selector_;
  ResultCache cache_;
};

}  // namespace armada::replica
