#include "replica/selector.h"

#include <utility>

namespace armada::replica {

using fissione::PeerId;

std::optional<ReplicaSelector::Choice> ReplicaSelector::choose(
    const ReplicationManager& manager, PeerId issuer,
    const kautz::KautzString& prefix) const {
  const ReplicationManager::RegionReplica* region = manager.find(prefix);
  if (region == nullptr) {
    return std::nullopt;
  }
  std::optional<Choice> best;
  for (std::size_t i = 0; i < region->holders.size(); ++i) {
    const ReplicationManager::Holder& holder = region->holders[i];
    if (!holder.synced || !net_.is_alive(holder.peer)) {
      continue;
    }
    if (net_.owner_of(holder.name) != holder.peer) {
      continue;  // ownership moved under churn; repair will re-sync
    }
    const fissione::RouteResult route = net_.route(issuer, holder.name);
    if (route.owner != holder.peer) {
      continue;
    }
    // Strict < keeps the lowest holder index on latency ties.
    if (!best.has_value() || route.latency < best->route_latency) {
      best = Choice{i, holder.peer, route.path, route.latency};
    }
  }
  return best;
}

}  // namespace armada::replica
