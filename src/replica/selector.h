// ReplicaSelector: destination-side FRT choice — route a search class to
// the cheapest *live* replica holder by transport cost.
//
// For a replicated region the selector prices the overlay route from the
// issuer to each holder's replica name under the network's latency model
// (a structural walk, no messages) and picks the cheapest holder that is
// alive, fully synced, and still owns its name; ties keep the lowest
// holder index. Returns nothing when no holder is usable — the caller then
// falls back to the plain FRT fan into the region.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "fissione/network.h"
#include "kautz/kautz_string.h"
#include "replica/replication.h"

namespace armada::replica {

class ReplicaSelector {
 public:
  explicit ReplicaSelector(fissione::FissioneNetwork& net) : net_(net) {}

  struct Choice {
    std::size_t holder_index = 0;
    fissione::PeerId holder = fissione::kNoPeer;
    std::vector<fissione::PeerId> path;  ///< issuer..holder overlay walk
    double route_latency = 0.0;
  };

  /// Cheapest usable holder of `prefix` reachable from `issuer`.
  std::optional<Choice> choose(const ReplicationManager& manager,
                               fissione::PeerId issuer,
                               const kautz::KautzString& prefix) const;

 private:
  fissione::FissioneNetwork& net_;
};

}  // namespace armada::replica
