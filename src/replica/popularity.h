// PopularityTracker: decayed per-region query-frequency counters.
//
// The query layer charges every search class to the length-g Kautz prefix
// it targets; the tracker keeps an exponentially decayed count per prefix.
// Its clock is the *query tick* (one per query), not simulated time — the
// synchronous query wrappers run each query on a fresh simulator, so sim
// time never accumulates across a workload. Every `interval` ticks all
// counters are multiplied by `decay` and vanishing ones are dropped, so a
// region's steady-state count tracks its recent query share and cooled
// regions fall back below the teardown threshold.
#pragma once

#include <cstdint>
#include <map>

#include "kautz/kautz_string.h"

namespace armada::replica {

class PopularityTracker {
 public:
  PopularityTracker(double decay, std::uint64_t interval);

  /// Advance the clock one query; returns true when this tick ran the
  /// periodic decay sweep (the caller's cue to re-check cooled regions).
  bool tick();

  /// Charge one query hit to `region`; returns its new decayed count.
  double bump(const kautz::KautzString& region);

  double count(const kautz::KautzString& region) const;
  std::uint64_t now() const { return tick_; }

  /// Counters in lexicographic region order (determinism seam).
  const std::map<kautz::KautzString, double>& counters() const {
    return counts_;
  }

 private:
  double decay_;
  std::uint64_t interval_;
  std::uint64_t tick_ = 0;
  std::map<kautz::KautzString, double> counts_;
};

}  // namespace armada::replica
