#include "skipgraph/skipgraph.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace armada::skipgraph {

SkipGraph::SkipGraph(std::vector<double> keys, std::uint64_t seed) {
  ARMADA_CHECK(!keys.empty());
  std::sort(keys.begin(), keys.end());
  ARMADA_CHECK_MSG(std::adjacent_find(keys.begin(), keys.end()) == keys.end(),
                   "duplicate keys");
  keys_ = std::move(keys);

  Rng rng(seed);
  membership_.resize(keys_.size());
  for (auto& m : membership_) {
    m = rng.engine()();
  }

  // Level l links nodes sharing the first l membership bits. Stop once all
  // groups are singletons.
  for (std::size_t level = 0; level < 64; ++level) {
    const std::uint64_t mask =
        level == 0 ? 0 : (~0ull >> (64 - level));
    std::map<std::uint64_t, NodeId> last_in_group;
    std::vector<Links> row(keys_.size());
    bool any_link = false;
    for (NodeId id = 0; id < keys_.size(); ++id) {
      const std::uint64_t group = membership_[id] & mask;
      const auto it = last_in_group.find(group);
      if (it != last_in_group.end()) {
        row[id].left = it->second;
        row[it->second].right = id;
        any_link = true;
      }
      last_in_group[group] = id;
    }
    if (!any_link && level > 0) {
      break;  // every node is alone at this level
    }
    links_.push_back(std::move(row));
  }
  levels_ = links_.size();
}

double SkipGraph::key(NodeId id) const {
  ARMADA_CHECK(id < keys_.size());
  return keys_[id];
}

NodeId SkipGraph::next(NodeId id) const {
  ARMADA_CHECK(id < keys_.size());
  return links_[0][id].right;
}

NodeId SkipGraph::prev(NodeId id) const {
  ARMADA_CHECK(id < keys_.size());
  return links_[0][id].left;
}

NodeId SkipGraph::owner_of(double target) const {
  // Greatest key <= target; first node when target precedes all keys.
  const auto it = std::upper_bound(keys_.begin(), keys_.end(), target);
  if (it == keys_.begin()) {
    return 0;
  }
  return static_cast<NodeId>(it - keys_.begin() - 1);
}

SkipSearch SkipGraph::search(NodeId from, double target) const {
  ARMADA_CHECK(from < keys_.size());
  SkipSearch r;
  NodeId cur = from;
  // Descend from the top level, moving as far as possible toward the target
  // at each level without overshooting.
  for (std::size_t l = levels_; l > 0; --l) {
    const auto& row = links_[l - 1];
    if (keys_[cur] <= target) {
      while (row[cur].right != kNoNode && keys_[row[cur].right] <= target) {
        overlay::step(r.stats, transport_, cur, row[cur].right);
        cur = row[cur].right;
      }
    } else {
      while (keys_[cur] > target && row[cur].left != kNoNode) {
        overlay::step(r.stats, transport_, cur, row[cur].left);
        cur = row[cur].left;
      }
    }
  }
  // cur is now the greatest key <= target unless target precedes all keys,
  // in which case cur is the first node.
  r.node = cur;
  ARMADA_CHECK(r.node == owner_of(target));
  return r;
}

void SkipGraph::check_invariants() const {
  ARMADA_CHECK(std::is_sorted(keys_.begin(), keys_.end()));
  for (std::size_t l = 0; l < levels_; ++l) {
    const std::uint64_t mask = l == 0 ? 0 : (~0ull >> (64 - l));
    for (NodeId id = 0; id < keys_.size(); ++id) {
      const Links& ln = links_[l][id];
      if (ln.right != kNoNode) {
        ARMADA_CHECK(ln.right > id);  // sorted by construction
        ARMADA_CHECK(links_[l][ln.right].left == id);
        ARMADA_CHECK((membership_[id] & mask) == (membership_[ln.right] & mask));
        // No skipped group member between id and right.
        for (NodeId mid = id + 1; mid < ln.right; ++mid) {
          ARMADA_CHECK((membership_[mid] & mask) != (membership_[id] & mask));
        }
      }
      if (ln.left != kNoNode) {
        ARMADA_CHECK(links_[l][ln.left].right == id);
      }
    }
  }
}

double SkipGraph::average_degree() const {
  std::size_t total = 0;
  for (const auto& row : links_) {
    for (const Links& ln : row) {
      total += (ln.left != kNoNode ? 1 : 0) + (ln.right != kNoNode ? 1 : 0);
    }
  }
  return static_cast<double>(total) / static_cast<double>(keys_.size());
}

}  // namespace armada::skipgraph
