// Skip Graph (Aspnes & Shah, SODA'03): the O(log N)-degree overlay that
// supports single-attribute range queries natively in O(log N + n) — the
// paper's Table 1 comparison row, and the substrate of SCRAP.
//
// Nodes are ordered by key. Every node draws a random membership word; the
// level-l list links nodes agreeing on the first l membership bits, so each
// node appears in ~log N doubly-linked lists and expected search cost is
// O(log N).
#pragma once

#include <cstdint>
#include <vector>

#include "net/routed_overlay.h"
#include "sim/metrics.h"
#include "util/rng.h"

namespace armada::skipgraph {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Cost of one skip-graph search walk, in the shared query-stats currency:
/// messages == delay == hop count, latency is the sum of link latencies
/// along the walk under the graph's latency model.
struct SkipSearch {
  NodeId node = kNoNode;  ///< greatest-key node with key <= target, or first
  sim::QueryStats stats;
};

class SkipGraph final : public overlay::RoutedOverlay {
 public:
  /// Build over the given keys (any order; duplicates rejected).
  SkipGraph(std::vector<double> keys, std::uint64_t seed);

  std::size_t num_nodes() const { return keys_.size(); }
  std::size_t overlay_size() const override { return keys_.size(); }
  double key(NodeId id) const;
  /// Level-0 successor / predecessor (kNoNode at the ends).
  NodeId next(NodeId id) const;
  NodeId prev(NodeId id) const;
  std::size_t num_levels() const { return levels_; }

  /// The node owning `target` under range partitioning: the greatest key
  /// <= target (the first node if target precedes every key). Hop-counted
  /// skip-graph search from `from`.
  SkipSearch search(NodeId from, double target) const;

  /// Ground truth owner (binary search).
  NodeId owner_of(double target) const;

  /// List sortedness, membership-prefix consistency, link symmetry.
  void check_invariants() const;
  double average_degree() const;

 private:
  struct Links {
    NodeId left = kNoNode;
    NodeId right = kNoNode;
  };

  std::vector<double> keys_;                    // by NodeId, sorted ascending
  std::vector<std::uint64_t> membership_;       // by NodeId
  std::vector<std::vector<Links>> links_;       // [level][node]
  std::size_t levels_ = 0;
};

}  // namespace armada::skipgraph
