// Deterministic random number generation for reproducible simulations.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace armada {

/// Seeded pseudo-random source. Every simulation component draws from an
/// explicitly passed Rng so that experiments are reproducible from a seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_u64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double next_double(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool next_bool(double p = 0.5);

  /// Derive an independent child generator (splittable-style).
  Rng split();

  /// Uniformly choose an index into a container of the given size (> 0).
  std::size_t next_index(std::size_t size);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[next_index(i)]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace armada
