// Streaming statistics and histograms for simulation metrics.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace armada {

/// Welford-style online accumulator: count, mean, variance, min, max.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::uint64_t count() const { return count_; }
  double mean() const;
  /// Mean, or `fallback` when no samples were added — for metrics that are
  /// only defined on a subset of queries (e.g. IncreRatio needs >1 dest
  /// peer) and may legitimately be empty on small workloads.
  double mean_or(double fallback) const;
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile accumulator: stores every sample in arrival order and
/// selects on query. Bench workloads add at most a few hundred thousand
/// samples, so exact storage beats a reservoir's approximation error;
/// callers that outgrow it can cap via `Percentiles(max_samples)`, which
/// degrades to a deterministic every-k-th systematic sample of the stream
/// (no RNG, and independent of when queries interleave with adds, so runs
/// stay reproducible).
class Percentiles {
 public:
  Percentiles() = default;
  explicit Percentiles(std::size_t max_samples);

  void add(double x);

  /// Samples offered (not necessarily retained when capped).
  std::uint64_t count() const { return count_; }

  /// Nearest-rank percentile: the smallest retained sample such that at
  /// least `q` of the mass is <= it. Requires q in (0, 1] and count() > 0.
  double percentile(double q) const;
  double p50() const { return percentile(0.50); }
  double p95() const { return percentile(0.95); }
  double p99() const { return percentile(0.99); }

 private:
  std::uint64_t count_ = 0;
  std::size_t max_samples_ = 0;  ///< 0 = unbounded (exact)
  std::uint64_t stride_ = 1;     ///< keep every stride-th sample when capped
  std::vector<double> samples_;  ///< retained, in arrival order
  mutable std::vector<double> scratch_;  ///< selection buffer for queries
};

/// Integer-bucket histogram (exact counts per value), suitable for hop-count
/// and degree distributions.
class Histogram {
 public:
  void add(std::int64_t value, std::uint64_t weight = 1);

  std::uint64_t total() const { return total_; }
  std::uint64_t count(std::int64_t value) const;
  std::int64_t min() const;
  std::int64_t max() const;
  double mean() const;
  /// Smallest value v such that at least `q` (0..1] of the mass is <= v.
  std::int64_t quantile(double q) const;

  const std::map<std::int64_t, std::uint64_t>& buckets() const {
    return buckets_;
  }

  std::string to_string(int max_rows = 32) const;

 private:
  std::map<std::int64_t, std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Gini coefficient of a non-negative load vector: 0 = perfectly even,
/// -> 1 = concentrated on one element. Used by the load-balance bench.
double gini(std::vector<double> loads);

}  // namespace armada
