#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace armada {

void OnlineStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::mean() const {
  ARMADA_CHECK(count_ > 0);
  return mean_;
}

double OnlineStats::mean_or(double fallback) const {
  return count_ > 0 ? mean_ : fallback;
}

double OnlineStats::variance() const {
  ARMADA_CHECK(count_ > 1);
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const {
  ARMADA_CHECK(count_ > 0);
  return min_;
}

double OnlineStats::max() const {
  ARMADA_CHECK(count_ > 0);
  return max_;
}

Percentiles::Percentiles(std::size_t max_samples)
    : max_samples_(max_samples) {
  ARMADA_CHECK(max_samples >= 2);
}

void Percentiles::add(double x) {
  if (max_samples_ == 0 || count_ % stride_ == 0) {
    samples_.push_back(x);
    if (max_samples_ != 0 && samples_.size() > max_samples_) {
      // Thin to every other retained sample (in arrival order) and double
      // the stride; the retained set stays a uniform systematic sample of
      // the stream regardless of any queries in between.
      std::size_t kept = 0;
      for (std::size_t i = 0; i < samples_.size(); i += 2) {
        samples_[kept++] = samples_[i];
      }
      samples_.resize(kept);
      stride_ *= 2;
    }
  }
  ++count_;
}

double Percentiles::percentile(double q) const {
  ARMADA_CHECK(q > 0.0 && q <= 1.0);
  ARMADA_CHECK(!samples_.empty());
  // Select on a scratch copy: `samples_` must keep arrival order so that
  // capped-mode thinning samples the stream, not the order statistics.
  scratch_ = samples_;
  const double n = static_cast<double>(scratch_.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  rank = std::min(rank, scratch_.size());
  // ceil(q * n) can overshoot by one when q * n lands one ulp above an
  // integer (e.g. 0.07 * 100); nearest-rank is the smallest k with k/n >= q,
  // so test the previous rank with the division (not the rounded product).
  if (rank > 1 && static_cast<double>(rank - 1) / n >= q) {
    --rank;
  }
  const std::size_t idx = rank - 1;
  std::nth_element(scratch_.begin(),
                   scratch_.begin() + static_cast<std::ptrdiff_t>(idx),
                   scratch_.end());
  return scratch_[idx];
}

void Histogram::add(std::int64_t value, std::uint64_t weight) {
  buckets_[value] += weight;
  total_ += weight;
}

std::uint64_t Histogram::count(std::int64_t value) const {
  auto it = buckets_.find(value);
  return it == buckets_.end() ? 0 : it->second;
}

std::int64_t Histogram::min() const {
  ARMADA_CHECK(total_ > 0);
  return buckets_.begin()->first;
}

std::int64_t Histogram::max() const {
  ARMADA_CHECK(total_ > 0);
  return buckets_.rbegin()->first;
}

double Histogram::mean() const {
  ARMADA_CHECK(total_ > 0);
  double acc = 0.0;
  for (const auto& [value, count] : buckets_) {
    acc += static_cast<double>(value) * static_cast<double>(count);
  }
  return acc / static_cast<double>(total_);
}

std::int64_t Histogram::quantile(double q) const {
  ARMADA_CHECK(total_ > 0);
  ARMADA_CHECK(q > 0.0 && q <= 1.0);
  const double target = q * static_cast<double>(total_);
  std::uint64_t seen = 0;
  for (const auto& [value, count] : buckets_) {
    seen += count;
    if (static_cast<double>(seen) >= target) {
      return value;
    }
  }
  return buckets_.rbegin()->first;
}

double gini(std::vector<double> loads) {
  ARMADA_CHECK(!loads.empty());
  std::sort(loads.begin(), loads.end());
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    ARMADA_CHECK(loads[i] >= 0.0);
    weighted += static_cast<double>(i + 1) * loads[i];
    total += loads[i];
  }
  ARMADA_CHECK_MSG(total > 0.0, "gini of an all-zero load vector");
  const double n = static_cast<double>(loads.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

std::string Histogram::to_string(int max_rows) const {
  std::ostringstream os;
  int rows = 0;
  for (const auto& [value, count] : buckets_) {
    if (rows++ >= max_rows) {
      os << "  ... (" << buckets_.size() - static_cast<std::size_t>(max_rows)
         << " more buckets)\n";
      break;
    }
    os << "  " << value << ": " << count << "\n";
  }
  return os.str();
}

}  // namespace armada
