#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace armada {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ARMADA_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  ARMADA_CHECK_MSG(row.size() == header_.size(),
                   "row has " << row.size() << " cells, header has "
                              << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::cell(std::int64_t value) { return std::to_string(value); }

std::string Table::cell(std::uint64_t value) { return std::to_string(value); }

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::setw(static_cast<int>(widths[c])) << row[c] << " ";
    }
    os << "|\n";
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << "+" << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) {
    emit_row(row);
  }
  emit_rule();
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << ",";
      }
      os << row[c];
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return os.str();
}

}  // namespace armada
