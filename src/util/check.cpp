#include "util/check.h"

namespace armada::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    os << " (" << message << ")";
  }
  throw CheckError(os.str());
}

}  // namespace armada::detail
