// FNV-1a: the repo's standard seeding hash for mapping names/labels onto
// key spaces (Kautz_hash naming, PHT trie-node placement on Chord).
// Deterministic across builds and platforms — golden tests depend on it.
#pragma once

#include <cstdint>
#include <string_view>

namespace armada {

inline std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace armada
