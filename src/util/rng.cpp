#include "util/rng.h"

#include "util/check.h"

namespace armada {

std::uint64_t Rng::next_u64(std::uint64_t bound) {
  ARMADA_CHECK(bound > 0);
  std::uniform_int_distribution<std::uint64_t> dist(0, bound - 1);
  return dist(engine_);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  ARMADA_CHECK(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::next_double() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::next_double(double lo, double hi) {
  ARMADA_CHECK(lo < hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::next_bool(double p) { return next_double() < p; }

Rng Rng::split() { return Rng(engine_()); }

std::size_t Rng::next_index(std::size_t size) {
  ARMADA_CHECK(size > 0);
  return static_cast<std::size_t>(next_u64(size));
}

}  // namespace armada
