// ArenaPool: shared backing storage for the many small dynamic arrays of a
// struct-of-arrays overlay (per-peer neighbor lists, per-peer object
// stores). Each logical array is a Ref — {offset, size, capacity} into one
// contiguous vector — so iterating the lists of consecutive peers walks
// contiguous memory, and the per-list heap allocation of the
// vector-of-vectors layout disappears. Capacities are powers of two
// recycled through per-size free lists, so membership churn reuses blocks
// instead of round-tripping the allocator.
//
// Refs stay valid across every operation; spans/pointers into the pool are
// invalidated by any operation that can grow it (push_back, assign,
// reserve) — take views after mutating, not across mutations.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/check.h"

namespace armada::util {

template <typename T>
class ArenaPool {
 public:
  struct Ref {
    std::uint32_t off = 0;
    std::uint32_t size = 0;
    std::uint8_t cap_log2 = kUnallocated;
  };

  std::span<const T> view(const Ref& r) const {
    return {data_.data() + r.off, r.size};
  }
  std::span<T> mut_view(Ref& r) { return {data_.data() + r.off, r.size}; }

  void push_back(Ref& r, T v) {
    reserve(r, static_cast<std::size_t>(r.size) + 1);
    data_[r.off + r.size] = std::move(v);
    ++r.size;
  }

  /// Replace the contents (order preserved); reuses the block when it fits.
  void assign(Ref& r, std::vector<T> src) {
    reserve(r, src.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
      data_[r.off + i] = std::move(src[i]);
    }
    // Drop payloads beyond the new size so freed elements release resources.
    for (std::size_t i = src.size(); i < r.size; ++i) {
      data_[r.off + i] = T{};
    }
    r.size = static_cast<std::uint32_t>(src.size());
  }

  /// Remove every element equal to `v`, preserving the order of the rest.
  void erase_value(Ref& r, const T& v) {
    T* b = data_.data() + r.off;
    T* w = std::remove(b, b + r.size, v);
    for (T* p = w; p != b + r.size; ++p) {
      *p = T{};
    }
    r.size = static_cast<std::uint32_t>(w - b);
  }

  void clear(Ref& r) {
    for (std::size_t i = 0; i < r.size; ++i) {
      data_[r.off + i] = T{};
    }
    r.size = 0;
  }

  /// Return the block to its free list; the Ref becomes unallocated.
  void release(Ref& r) {
    if (r.cap_log2 != kUnallocated) {
      clear(r);
      free_[r.cap_log2].push_back(r.off);
    }
    r = Ref{};
  }

  void reserve(Ref& r, std::size_t need) {
    if (r.cap_log2 != kUnallocated &&
        need <= (std::size_t{1} << r.cap_log2)) {
      return;
    }
    const auto log2 = static_cast<std::uint8_t>(std::max<int>(
        kMinCapLog2, std::bit_width(std::max<std::size_t>(need, 1) - 1)));
    const std::uint32_t off = allocate(log2);
    for (std::size_t i = 0; i < r.size; ++i) {
      data_[off + i] = std::move(data_[r.off + i]);
    }
    if (r.cap_log2 != kUnallocated) {
      for (std::size_t i = 0; i < r.size; ++i) {
        data_[r.off + i] = T{};
      }
      free_[r.cap_log2].push_back(r.off);
    }
    r.off = off;
    r.cap_log2 = log2;
  }

  /// Elements in the backing vector (live lists plus free blocks).
  std::size_t capacity() const { return data_.size(); }

 private:
  static constexpr std::uint8_t kUnallocated = 0xff;
  static constexpr int kMinCapLog2 = 2;  // smallest block: 4 elements

  std::uint32_t allocate(std::uint8_t log2) {
    if (!free_[log2].empty()) {
      const std::uint32_t off = free_[log2].back();
      free_[log2].pop_back();
      return off;
    }
    const std::size_t off = data_.size();
    ARMADA_CHECK_MSG(off + (std::size_t{1} << log2) <= UINT32_MAX,
                     "arena pool exceeds 32-bit offsets");
    data_.resize(off + (std::size_t{1} << log2));
    return static_cast<std::uint32_t>(off);
  }

  std::vector<T> data_;
  std::array<std::vector<std::uint32_t>, 32> free_;
};

}  // namespace armada::util
