// Aligned ASCII tables and CSV output for benchmark harnesses.
//
// Every bench binary prints the rows/series of the paper table or figure it
// reproduces; Table renders them readably and emits machine-readable CSV.
#pragma once

#include <string>
#include <vector>

namespace armada {

/// Column-aligned text table with an optional title, plus CSV serialization.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with fixed precision, integers plainly.
  static std::string cell(double value, int precision = 2);
  static std::string cell(std::int64_t value);
  static std::string cell(std::uint64_t value);

  std::string to_text() const;
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace armada
