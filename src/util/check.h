// Checked-assertion helpers.
//
// ARMADA_CHECK fires in every build type: simulator correctness depends on
// structural invariants (prefix covers, neighborhood invariant, ...) that we
// would rather surface as a thrown diagnostic than as silently wrong metrics.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace armada {

/// Thrown when a checked invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace armada

/// Verify `cond`; on failure throw armada::CheckError with location info.
#define ARMADA_CHECK(cond)                                               \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::armada::detail::check_failed(#cond, __FILE__, __LINE__, "");     \
    }                                                                    \
  } while (false)

/// Like ARMADA_CHECK but appends a streamed message: ARMADA_CHECK_MSG(x>0, "x=" << x)
#define ARMADA_CHECK_MSG(cond, stream_expr)                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream armada_check_os_;                                   \
      armada_check_os_ << stream_expr;                                       \
      ::armada::detail::check_failed(#cond, __FILE__, __LINE__,              \
                                     armada_check_os_.str());                \
    }                                                                        \
  } while (false)
