#include "armada/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "kautz/kautz_space.h"
#include "util/check.h"

namespace armada::core {

using fissione::PeerId;
using kautz::Interval;
using kautz::KautzString;

namespace {
enum class Side { kSeed, kBelow, kAbove };
}  // namespace

Knn::Knn(const fissione::FissioneNetwork& net,
         const kautz::PartitionTree& tree)
    : net_(net), tree_(tree) {
  ARMADA_CHECK(tree_.num_attributes() == 1);
  ARMADA_CHECK(tree_.k() == net_.config().object_id_length);
}

KnnResult Knn::query(PeerId issuer, double q, std::size_t k,
                     const ValueFn& value_of) const {
  ARMADA_CHECK(k >= 1);
  const Interval domain = tree_.attribute_ranges()[0];
  ARMADA_CHECK(q >= domain.lo && q <= domain.hi);

  KnnResult result;
  std::vector<std::pair<double, std::uint64_t>> candidates;  // (dist, handle)

  // Explored value interval (grows zone by zone) and its frontier strings.
  double explored_lo = q;
  double explored_hi = q;
  KautzString below{net_.config().base};
  KautzString above{net_.config().base};
  bool below_done = false;
  bool above_done = false;

  PeerId cur = issuer;
  auto annex = [&](const KautzString& to, Side side) {
    const fissione::RouteResult route = net_.route(cur, to);
    result.stats.messages += route.hops;
    result.stats.delay += route.hops;
    result.stats.latency += route.latency;  // annexations are sequential
    cur = route.owner;
    ++result.stats.dest_peers;
    net_.for_each_owned(cur, [&](const fissione::StoredObject& obj) {
      const double v = value_of(obj);
      candidates.emplace_back(std::abs(v - q), obj.payload);
    });
    const Interval zone = tree_.interval_for(net_.peer(cur).peer_id);
    explored_lo = std::min(explored_lo, zone.lo);
    explored_hi = std::max(explored_hi, zone.hi);
    const KautzString zone_lo =
        kautz::min_extension(net_.peer(cur).peer_id, tree_.k());
    const KautzString zone_hi =
        kautz::max_extension(net_.peer(cur).peer_id, tree_.k());
    if (side != Side::kAbove) {
      below_done = kautz::is_space_min(zone_lo);
      if (!below_done) {
        below = kautz::predecessor(zone_lo);
      }
    }
    if (side != Side::kBelow) {
      above_done = kautz::is_space_max(zone_hi);
      if (!above_done) {
        above = kautz::successor(zone_hi);
      }
    }
  };

  annex(tree_.single_hash(q), Side::kSeed);
  while (true) {
    double kth = std::numeric_limits<double>::infinity();
    if (candidates.size() >= k) {
      std::nth_element(candidates.begin(),
                       candidates.begin() + static_cast<long>(k - 1),
                       candidates.end());
      kth = candidates[k - 1].first;
    }
    const double below_gap = below_done
                                 ? std::numeric_limits<double>::infinity()
                                 : q - explored_lo;
    const double above_gap = above_done
                                 ? std::numeric_limits<double>::infinity()
                                 : explored_hi - q;
    // Nothing outside the explored interval can beat the k-th candidate.
    if (kth <= std::min(below_gap, above_gap)) {
      break;
    }
    if (below_done && above_done) {
      break;  // whole domain explored
    }
    if (below_gap <= above_gap) {
      annex(below, Side::kBelow);
    } else {
      annex(above, Side::kAbove);
    }
  }

  std::sort(candidates.begin(), candidates.end(), [](auto a, auto b) {
    if (a.first != b.first) {
      return a.first < b.first;
    }
    return a.second < b.second;
  });
  if (candidates.size() > k) {
    candidates.resize(k);
  }
  result.handles.reserve(candidates.size());
  for (const auto& [dist, handle] : candidates) {
    result.handles.push_back(handle);
  }
  result.stats.results = result.handles.size();
  return result;
}

}  // namespace armada::core
