#include "armada/topk.h"

#include <algorithm>

#include "kautz/kautz_space.h"
#include "util/check.h"

namespace armada::core {

using fissione::PeerId;
using kautz::KautzRegion;
using kautz::KautzString;

TopK::TopK(const fissione::FissioneNetwork& net,
           const kautz::PartitionTree& tree)
    : net_(net), tree_(tree) {
  ARMADA_CHECK(tree_.num_attributes() == 1);
  ARMADA_CHECK(tree_.k() == net_.config().object_id_length);
}

TopKResult TopK::query(PeerId issuer, double lo, double hi, std::size_t k,
                       const ValueFn& value_of) const {
  ARMADA_CHECK(k >= 1);
  const KautzRegion region = tree_.region_for(lo, hi);
  TopKResult result;
  std::vector<std::pair<double, std::uint64_t>> found;  // (value, handle)

  PeerId cur = issuer;
  KautzString target = region.hi();
  while (true) {
    // One overlay routing to the peer owning `target`.
    const fissione::RouteResult route = net_.route(cur, target);
    result.stats.messages += route.hops;
    result.stats.delay += route.hops;
    result.stats.latency += route.latency;  // zone hops are sequential
    cur = route.owner;
    ++result.stats.dest_peers;

    net_.for_each_owned(cur, [&](const fissione::StoredObject& obj) {
      if (!region.contains(obj.object_id)) {
        return;
      }
      const double v = value_of(obj);
      if (v >= lo && v <= hi) {
        found.emplace_back(v, obj.payload);
      }
    });

    // Every unvisited zone holds only smaller values than this zone's
    // bottom; stop once k objects are in hand or the range is exhausted.
    const KautzString zone_lo =
        kautz::min_extension(net_.peer(cur).peer_id, tree_.k());
    if (found.size() >= k || zone_lo <= region.lo()) {
      break;
    }
    target = kautz::predecessor(zone_lo);
  }

  std::sort(found.begin(), found.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first > b.first;
    }
    return a.second < b.second;
  });
  if (found.size() > k) {
    found.resize(k);
  }
  result.handles.reserve(found.size());
  for (const auto& [value, handle] : found) {
    result.handles.push_back(handle);
  }
  result.stats.results = result.handles.size();
  return result;
}

}  // namespace armada::core
