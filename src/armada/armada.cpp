#include "armada/armada.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace armada::core {

using fissione::PeerId;
using kautz::Box;

ArmadaIndex::ArmadaIndex(fissione::FissioneNetwork& net,
                         kautz::PartitionTree tree)
    : net_(net), tree_(std::move(tree)) {
  if (tree_.num_attributes() == 1) {
    pira_.emplace(net_, tree_);
    topk_.emplace(net_, tree_);
    knn_.emplace(net_, tree_);
    aggregate_.emplace(net_, tree_);
  }
  mira_.emplace(net_, tree_);
}

ArmadaIndex ArmadaIndex::single(fissione::FissioneNetwork& net,
                                kautz::Interval domain) {
  return ArmadaIndex(net,
                     kautz::PartitionTree::single(
                         net.config().base, net.config().object_id_length,
                         domain));
}

ArmadaIndex ArmadaIndex::multi(fissione::FissioneNetwork& net,
                               Box domain) {
  return ArmadaIndex(
      net, kautz::PartitionTree(net.config().base,
                                net.config().object_id_length,
                                std::move(domain)));
}

std::uint64_t ArmadaIndex::publish(const std::vector<double>& point) {
  const std::uint64_t handle = objects_.size();
  const kautz::KautzString object_id = tree_.multiple_hash(point);
  net_.publish(object_id, handle);
  objects_.push_back(point);
  if (replicas_ != nullptr) {
    // Currency: replica snapshots pick up the new object, cached results
    // whose subregion covers it are invalidated.
    replicas_->on_publish(object_id, handle);
  }
  return handle;
}

std::uint64_t ArmadaIndex::publish(double value) {
  return publish(std::vector<double>{value});
}

const std::vector<double>& ArmadaIndex::attributes(
    std::uint64_t handle) const {
  ARMADA_CHECK(handle < objects_.size());
  return objects_[handle];
}

bool ArmadaIndex::point_in_box(const std::vector<double>& p,
                               const Box& box) const {
  for (std::size_t i = 0; i < box.size(); ++i) {
    if (p[i] < box[i].lo || p[i] > box[i].hi) {
      return false;
    }
  }
  return true;
}

RangeQueryResult ArmadaIndex::range_query(PeerId issuer, double lo,
                                          double hi) const {
  ARMADA_CHECK_MSG(pira_.has_value(),
                   "range_query requires a single-attribute index");
  const Box box{{lo, hi}};
  return pira_->query(issuer, lo, hi,
                      [this, &box](const fissione::StoredObject& obj) {
                        return point_in_box(objects_[obj.payload], box);
                      });
}

void ArmadaIndex::range_query_async(
    sim::Simulator& sim, PeerId issuer, double lo, double hi,
    std::function<void(RangeQueryResult)> done) const {
  ARMADA_CHECK_MSG(pira_.has_value(),
                   "range_query requires a single-attribute index");
  // The filter owns its box copy: the query may outlive this frame.
  const Box box{{lo, hi}};
  pira_->query_async(sim, issuer, lo, hi,
                     [this, box](const fissione::StoredObject& obj) {
                       return point_in_box(objects_[obj.payload], box);
                     },
                     std::move(done));
}

RangeQueryResult ArmadaIndex::box_query(PeerId issuer, const Box& box) const {
  ARMADA_CHECK(box.size() == tree_.num_attributes());
  return mira_->query(issuer, box,
                      [this, &box](const fissione::StoredObject& obj) {
                        return point_in_box(objects_[obj.payload], box);
                      });
}

std::vector<std::uint64_t> ArmadaIndex::scan_matches(const Box& box) const {
  ARMADA_CHECK(box.size() == tree_.num_attributes());
  std::vector<std::uint64_t> out;
  for (std::uint64_t h = 0; h < objects_.size(); ++h) {
    if (point_in_box(objects_[h], box)) {
      out.push_back(h);
    }
  }
  return out;
}

TopKResult ArmadaIndex::top_k(PeerId issuer, double lo, double hi,
                              std::size_t k) const {
  ARMADA_CHECK_MSG(topk_.has_value(),
                   "top_k requires a single-attribute index");
  return topk_->query(issuer, lo, hi, k,
                      [this](const fissione::StoredObject& obj) {
                        return objects_[obj.payload][0];
                      });
}

KnnResult ArmadaIndex::nearest(PeerId issuer, double q, std::size_t k) const {
  ARMADA_CHECK_MSG(knn_.has_value(),
                   "nearest requires a single-attribute index");
  return knn_->query(issuer, q, k, [this](const fissione::StoredObject& obj) {
    return objects_[obj.payload][0];
  });
}

AggregateResult ArmadaIndex::range_aggregate(PeerId issuer, double lo,
                                             double hi) const {
  ARMADA_CHECK_MSG(aggregate_.has_value(),
                   "range_aggregate requires a single-attribute index");
  return aggregate_->range_aggregate(
      issuer, lo, hi, [this](const fissione::StoredObject& obj) {
        return objects_[obj.payload][0];
      });
}

const Pira& ArmadaIndex::pira() const {
  ARMADA_CHECK(pira_.has_value());
  return *pira_;
}

const Mira& ArmadaIndex::mira() const { return *mira_; }

replica::ReplicaSet& ArmadaIndex::enable_replication(
    replica::ReplicationConfig config) {
  replicas_ = std::make_unique<replica::ReplicaSet>(net_, config);
  if (pira_.has_value()) {
    pira_->set_replicas(replicas_.get());
  }
  mira_->set_replicas(replicas_.get());
  return *replicas_;
}

rebalance::Rebalancer& ArmadaIndex::enable_rebalancing(
    rebalance::RebalanceConfig config) {
  rebalancer_ = std::make_unique<rebalance::Rebalancer>(net_, config);
  if (pira_.has_value()) {
    pira_->set_rebalancer(rebalancer_.get());
  }
  mira_->set_rebalancer(rebalancer_.get());
  return *rebalancer_;
}

}  // namespace armada::core
