// PIRA — the PrunIng Routing Algorithm for single-attribute range queries
// (paper §4.2).
//
// A query [lo, hi] maps through Single_hash to the Kautz region
// <LowT, HighT>; interval preservation guarantees the matching objects live
// exactly on the peers in charge of that region. PIRA splits the region into
// at most three common-prefix subregions and runs the FRT pruning search on
// each, reaching every destination exactly once within |PeerID(issuer)| hops.
#pragma once

#include <functional>
#include <string>

#include "armada/frt_search.h"
#include "armada/range_query.h"
#include "fissione/network.h"
#include "kautz/partition_tree.h"

namespace armada::replica {
class ReplicaSet;
}  // namespace armada::replica

namespace armada::rebalance {
class Rebalancer;
}  // namespace armada::rebalance

namespace armada::core {

class Pira {
 public:
  /// `tree` must be single-attribute with k == net ObjectID length.
  Pira(fissione::FissioneNetwork& net, const kautz::PartitionTree& tree);

  /// Predicate applied to stored objects at destination peers (the local
  /// scan); typically an exact attribute check by the application layer.
  using ObjectFilter = std::function<bool(const fissione::StoredObject&)>;

  /// Value-level query [lo, hi] (inclusive).
  RangeQueryResult query(fissione::PeerId issuer, double lo, double hi,
                         const ObjectFilter& matches) const;

  /// Region-level query (the paper's <LowT, HighT> interface).
  RangeQueryResult query_region(fissione::PeerId issuer,
                                const kautz::KautzRegion& region,
                                const ObjectFilter& matches) const;

  /// Event-driven variants on a caller-owned simulator: the query's
  /// messages share the transport queues with every other flow on `sim`,
  /// obey the installed flow-control policy (backoff, admission shedding
  /// into partial answers with an explicit coverage fraction), and `done`
  /// fires when the last branch lands. See FrtSearch::run_async.
  void query_async(sim::Simulator& sim, fissione::PeerId issuer, double lo,
                   double hi, const ObjectFilter& matches,
                   std::function<void(RangeQueryResult)> done) const;
  void query_region_async(sim::Simulator& sim, fissione::PeerId issuer,
                          const kautz::KautzRegion& region,
                          const ObjectFilter& matches,
                          std::function<void(RangeQueryResult)> done) const;

  /// Ground truth for tests: peers in charge of the region, i.e. peers whose
  /// PeerID prefixes some string of the region.
  std::vector<fissione::PeerId> expected_destinations(
      const kautz::KautzRegion& region) const;

  /// Attach the replica subsystem (nullptr detaches). Queries then route
  /// each search class through caches and the cheapest live replica when
  /// possible; with a null or *disabled* set the pre-existing combined
  /// search runs bitwise. The set must outlive every in-flight query.
  void set_replicas(replica::ReplicaSet* replicas) { replicas_ = replicas; }

  /// Attach the online rebalancer (nullptr detaches). Queries then feed its
  /// popularity/load observations and drive its migration sweeps; with a
  /// null or *disabled* rebalancer the query path is bitwise unchanged. The
  /// rebalancer must outlive every in-flight query.
  void set_rebalancer(rebalance::Rebalancer* rb) { rebalancer_ = rb; }

 private:
  /// Shared implementation: `cache_tag` keys value-level queries in the
  /// result cache; empty for region-level queries (uncacheable — the
  /// caller's filter semantics are unknown), which still replica-route.
  void query_region_async_impl(sim::Simulator& sim, fissione::PeerId issuer,
                               const kautz::KautzRegion& region,
                               const ObjectFilter& matches,
                               const std::string& cache_tag,
                               std::function<void(RangeQueryResult)> done)
      const;

  fissione::FissioneNetwork& net_;  ///< mutable only for the queueing transport path
  kautz::PartitionTree tree_;  // by value: small and immutable
  replica::ReplicaSet* replicas_ = nullptr;  ///< optional, not owned
  rebalance::Rebalancer* rebalancer_ = nullptr;  ///< optional, not owned
};

}  // namespace armada::core
