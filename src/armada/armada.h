// ArmadaIndex: the public facade of the Armada range-query layer.
//
// Armada is *layered over* FISSIONE: it only uses the DHT's publish/route
// interfaces and the peers' neighbor tables — the overlay is never modified
// (the paper's "general range query scheme" property). An index names
// objects with Single_hash / Multiple_hash so attribute-close objects land
// on related peers, and answers range queries with PIRA (one attribute) or
// MIRA (many attributes).
//
// Usage:
//   auto net = fissione::FissioneNetwork::build(2000, seed);
//   core::ArmadaIndex index =
//       core::ArmadaIndex::single(net, {0.0, 1000.0});
//   index.publish(score);
//   auto r = index.range_query(net.random_peer(), 70.0, 80.0);
//   // r.matches -> handles; index.attributes(h)[0] -> value
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "armada/aggregate.h"
#include "armada/knn.h"
#include "armada/mira.h"
#include "armada/pira.h"
#include "armada/range_query.h"
#include "armada/topk.h"
#include "fissione/network.h"
#include "kautz/partition_tree.h"
#include "rebalance/rebalance.h"
#include "replica/replica_set.h"

namespace armada::core {

class ArmadaIndex {
 public:
  /// Single-attribute index over values in `domain`.
  static ArmadaIndex single(fissione::FissioneNetwork& net,
                            kautz::Interval domain);
  /// Multi-attribute index; one value interval per attribute.
  static ArmadaIndex multi(fissione::FissioneNetwork& net, kautz::Box domain);

  std::size_t num_attributes() const { return tree_.num_attributes(); }
  const kautz::PartitionTree& naming_tree() const { return tree_; }

  /// Publish an object; returns its handle. Point dimension must match the
  /// index. The object is stored at the peer owning its ObjectID.
  std::uint64_t publish(const std::vector<double>& point);
  std::uint64_t publish(double value);

  /// Attribute vector of a published object.
  const std::vector<double>& attributes(std::uint64_t handle) const;

  /// Single-attribute range query via PIRA (inclusive bounds).
  RangeQueryResult range_query(fissione::PeerId issuer, double lo,
                               double hi) const;

  /// Event-driven range query on a caller-owned simulator: the query's
  /// messages share the transport queues with every concurrent flow and
  /// obey the installed flow-control policy — under overload admission
  /// control the answer may be partial, with stats.coverage carrying the
  /// served fraction. `done` fires when the last branch lands.
  void range_query_async(sim::Simulator& sim, fissione::PeerId issuer,
                         double lo, double hi,
                         std::function<void(RangeQueryResult)> done) const;

  /// Multi-attribute box query via MIRA.
  RangeQueryResult box_query(fissione::PeerId issuer,
                             const kautz::Box& box) const;

  /// Top-k query (paper §6 future work): the k largest values within
  /// [lo, hi]. Requires a single-attribute index.
  TopKResult top_k(fissione::PeerId issuer, double lo, double hi,
                   std::size_t k) const;

  /// k-nearest-neighbor query around `q` (extension). Single-attribute.
  KnnResult nearest(fissione::PeerId issuer, double q, std::size_t k) const;

  /// In-network COUNT/SUM/MIN/MAX over [lo, hi] (extension).
  AggregateResult range_aggregate(fissione::PeerId issuer, double lo,
                                  double hi) const;

  /// Reference results by global scan (for tests): handles of matching
  /// objects, sorted.
  std::vector<std::uint64_t> scan_matches(const kautz::Box& box) const;

  const Pira& pira() const;
  const Mira& mira() const;

  /// Attach the popularity-aware replication / result-cache subsystem
  /// (src/replica/) with the given knobs. Queries issued afterwards may be
  /// served from caches or replica holders; a *disabled* config (the
  /// default) changes nothing — queries stay bitwise identical to the plain
  /// engines. Calling again replaces the subsystem (placement and caches
  /// reset). Wire churn through it with the drivers' set_membership_hook:
  ///   driver.set_membership_hook([&] { index.replicas()->on_membership(sim); });
  replica::ReplicaSet& enable_replication(replica::ReplicationConfig config);

  /// The attached subsystem, or nullptr.
  replica::ReplicaSet* replicas() { return replicas_.get(); }
  const replica::ReplicaSet* replicas() const { return replicas_.get(); }

  /// Attach the online key-space rebalancer (src/rebalance/) with the given
  /// knobs. Queries issued afterwards feed its load/heat observations and
  /// drive its migration sweeps; a *disabled* config (the default) changes
  /// nothing — queries stay bitwise identical to the plain engines. Calling
  /// again replaces the subsystem (flights and load history reset). Wire
  /// churn through it with the drivers' set_membership_hook, alongside the
  /// replica hook when both subsystems are enabled.
  rebalance::Rebalancer& enable_rebalancing(rebalance::RebalanceConfig config);

  /// The attached rebalancer, or nullptr.
  rebalance::Rebalancer* rebalancer() { return rebalancer_.get(); }
  const rebalance::Rebalancer* rebalancer() const { return rebalancer_.get(); }

 private:
  ArmadaIndex(fissione::FissioneNetwork& net, kautz::PartitionTree tree);

  bool point_in_box(const std::vector<double>& p, const kautz::Box& box) const;

  fissione::FissioneNetwork& net_;
  kautz::PartitionTree tree_;
  std::vector<std::vector<double>> objects_;
  std::optional<Pira> pira_;
  std::optional<Mira> mira_;
  std::optional<TopK> topk_;
  std::optional<Knn> knn_;
  std::optional<Aggregate> aggregate_;
  std::unique_ptr<replica::ReplicaSet> replicas_;  ///< null until enabled
  std::unique_ptr<rebalance::Rebalancer> rebalancer_;  ///< null until enabled
};

}  // namespace armada::core
