// run_replicated_query: per-class orchestration of a range query over the
// replica subsystem (src/replica/), shared by PIRA and MIRA.
//
// Each search class first offers itself to the ReplicaSet — a cached
// result at the issuer, a cache entry on the walk toward the cheapest live
// replica holder, or the holder's snapshot scan — and falls back to its
// own FRT pruning search otherwise. Per-class fragments fan into one
// RangeQueryResult with the concurrent-composition algebra (messages sum,
// delay/latency max, coverage min across branches — conservative where the
// combined search computes the exact shed fraction).
//
// Full FRT class answers (coverage == 1) are offered back to the issuer's
// result cache, so repeat queries short-circuit even for classes that were
// never replicated. This path is only taken with an *enabled* config; the
// engines keep their pre-existing combined search bitwise otherwise.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "armada/frt_search.h"
#include "armada/range_query.h"
#include "fissione/network.h"
#include "kautz/kautz_region.h"
#include "replica/replica_set.h"

namespace armada::core {

/// One search class with its region identity and cache key. An empty
/// cache_tag marks the class uncacheable (arbitrary destination filter);
/// replica routing stays available either way.
struct ReplicatedClass {
  kautz::KautzRegion subregion;
  FrtSearchClass frt;
  std::string cache_tag;
};

void run_replicated_query(
    replica::ReplicaSet& replicas, sim::Simulator& sim,
    fissione::FissioneNetwork& net, fissione::PeerId issuer,
    std::vector<ReplicatedClass> classes,
    replica::ReplicaSet::ObjectFilter replica_filter,
    FrtSearch::DestinationScan on_destination,
    std::function<void(RangeQueryResult)> done);

}  // namespace armada::core
