#include "armada/frt.h"

#include <algorithm>

#include "armada/frt_search.h"
#include "util/check.h"

namespace armada::core {

using fissione::PeerId;
using kautz::KautzString;

ForwardRoutingTree::ForwardRoutingTree(const fissione::FissioneNetwork& net,
                                       PeerId root)
    : net_(net), root_(root) {
  const KautzString& id = net_.peer(root).peer_id;
  const std::size_t b = id.length();
  levels_.resize(b + 1);
  // Level i < b: peers whose PeerID starts with the length-(b-i) suffix.
  for (std::size_t i = 0; i < b; ++i) {
    levels_[i] = net_.tree().cover_of_prefix(id.suffix(b - i));
  }
  // Level b: peers whose PeerID does not start with ub.
  for (std::uint8_t c = 0; c <= net_.config().base; ++c) {
    if (c == id.back()) {
      continue;
    }
    KautzString prefix{net_.config().base};
    prefix.push_back(c);
    for (PeerId p : net_.tree().cover_of_prefix(prefix)) {
      levels_[b].push_back(p);
    }
  }
  for (auto& level : levels_) {
    std::sort(level.begin(), level.end(),
              [&](PeerId a, PeerId c) {
                return net_.peer(a).peer_id < net_.peer(c).peer_id;
              });
  }
}

const std::vector<PeerId>& ForwardRoutingTree::level(std::size_t i) const {
  ARMADA_CHECK(i < levels_.size());
  return levels_[i];
}

std::size_t ForwardRoutingTree::destination_level(
    const kautz::KautzRegion& region) const {
  const KautzString com_t = region.common_prefix();
  ARMADA_CHECK_MSG(!com_t.empty(),
                   "destination level requires a common-prefix region");
  const std::size_t f =
      FrtSearch::start_alignment(net_.peer(root_).peer_id, com_t);
  return height() - f;
}

}  // namespace armada::core
