#include "armada/mira.h"

#include <utility>

#include "util/check.h"

namespace armada::core {

using fissione::PeerId;
using kautz::Box;
using kautz::KautzRegion;
using kautz::KautzString;

Mira::Mira(fissione::FissioneNetwork& net,
           const kautz::PartitionTree& tree)
    : net_(net), tree_(tree) {
  ARMADA_CHECK(tree_.base() == net_.config().base);
  ARMADA_CHECK_MSG(tree_.k() == net_.config().object_id_length,
                   "naming tree depth must equal ObjectID length");
}

RangeQueryResult Mira::query(PeerId issuer, const Box& box,
                             const ObjectFilter& matches) const {
  RangeQueryResult result;
  sim::Simulator sim;
  query_async(sim, issuer, box, matches,
              [&result](RangeQueryResult r) { result = std::move(r); });
  sim.run();
  return result;
}

void Mira::query_async(sim::Simulator& sim, PeerId issuer, const Box& box,
                       const ObjectFilter& matches,
                       std::function<void(RangeQueryResult)> done) const {
  // Bounding region per the paper; the search classes inherit its
  // common-prefix split so each class has a well-defined alignment.
  // Closures own their box/subregion copies: the search may outlive this
  // frame.
  const KautzRegion region = tree_.bounding_region(box);
  std::vector<FrtSearchClass> classes;
  for (const KautzRegion& sub : region.split_common_prefix()) {
    // Skip first-symbol blocks whose subspace misses the box entirely.
    if (!tree_.box_intersects(sub.common_prefix().prefix(1), box)) {
      continue;
    }
    FrtSearchClass cls;
    cls.com_t = sub.common_prefix();
    cls.viable = [this, sub, box](const KautzString& aligned) {
      return sub.intersects_prefix(aligned) &&
             tree_.box_intersects(aligned, box);
    };
    classes.push_back(std::move(cls));
  }

  const FrtSearch search(net_);
  search.run_async(
      sim, issuer, std::move(classes),
      [this, box, matches](PeerId dest, RangeQueryResult& out) {
        for (const fissione::StoredObject& obj : net_.peer(dest).store) {
          if (tree_.box_intersects(obj.object_id, box) && matches(obj)) {
            out.matches.push_back(obj.payload);
            ++out.stats.results;
          }
        }
      },
      std::move(done));
}

std::vector<PeerId> Mira::expected_destinations(const Box& box) const {
  std::vector<PeerId> out;
  for (PeerId p : net_.alive_peers()) {
    if (tree_.box_intersects(net_.peer(p).peer_id, box)) {
      out.push_back(p);
    }
  }
  return out;
}

}  // namespace armada::core
