#include "armada/mira.h"

#include <cstdio>
#include <string>
#include <utility>

#include "armada/replicated_query.h"
#include "rebalance/rebalance.h"
#include "replica/replica_set.h"
#include "util/check.h"

namespace armada::core {

using fissione::PeerId;
using kautz::Box;
using kautz::KautzRegion;
using kautz::KautzString;

Mira::Mira(fissione::FissioneNetwork& net,
           const kautz::PartitionTree& tree)
    : net_(net), tree_(tree) {
  ARMADA_CHECK(tree_.base() == net_.config().base);
  ARMADA_CHECK_MSG(tree_.k() == net_.config().object_id_length,
                   "naming tree depth must equal ObjectID length");
}

RangeQueryResult Mira::query(PeerId issuer, const Box& box,
                             const ObjectFilter& matches) const {
  RangeQueryResult result;
  sim::Simulator sim;
  query_async(sim, issuer, box, matches,
              [&result](RangeQueryResult r) { result = std::move(r); });
  sim.run();
  return result;
}

void Mira::query_async(sim::Simulator& sim, PeerId issuer, const Box& box,
                       const ObjectFilter& matches,
                       std::function<void(RangeQueryResult)> done) const {
  // Bounding region per the paper; the search classes inherit its
  // common-prefix split so each class has a well-defined alignment.
  // Closures own their box/subregion copies: the search may outlive this
  // frame.
  const KautzRegion region = tree_.bounding_region(box);

  // Trace root for the whole query; see Pira::query_region_async_impl.
  obs::TraceRecorder* rec = net_.transport().trace();
  std::uint64_t troot = 0;
  if (rec != nullptr) [[unlikely]] {
    troot = rec->maybe_begin("mira", issuer, sim.now());
    if (troot != 0) {
      done = [rec, troot, inner = std::move(done)](RangeQueryResult r) {
        rec->end_trace(troot, r.stats);
        inner(std::move(r));
      };
    }
  }
  const obs::TraceRecorder::Scope trace_scope =
      troot != 0 ? rec->enter(troot) : obs::TraceRecorder::Scope();

  replica::ReplicaSet* rs = replicas_;
  if (rs != nullptr && !rs->config().enabled()) {
    rs = nullptr;  // disabled config: keep the combined search bitwise
  }
  rebalance::Rebalancer* rb = rebalancer_;
  if (rb != nullptr && !rb->config().enabled()) {
    rb = nullptr;  // disabled config: keep the query path bitwise
  }

  if (rs != nullptr) {
    // A box's identity is its interval list; %.17g round-trips doubles, so
    // equal boxes always share a tag.
    std::string base_tag = "mira";
    for (const kautz::Interval& iv : box) {
      char part[64];
      std::snprintf(part, sizeof(part), "|%.17g|%.17g", iv.lo, iv.hi);
      base_tag += part;
    }
    std::vector<KautzRegion> subs = region.split_common_prefix();
    if (rb != nullptr) {
      rb->on_query(sim, subs);
    }
    std::vector<ReplicatedClass> classes;
    classes.reserve(subs.size());
    for (KautzRegion& sub : subs) {
      // Skip first-symbol blocks whose subspace misses the box entirely.
      if (!tree_.box_intersects(sub.common_prefix().prefix(1), box)) {
        continue;
      }
      FrtSearchClass cls;
      cls.com_t = sub.common_prefix();
      cls.viable = [this, sub, box](const KautzString& aligned) {
        return sub.intersects_prefix(aligned) &&
               tree_.box_intersects(aligned, box);
      };
      std::string tag = base_tag + "|" + sub.common_prefix().to_string();
      classes.push_back(
          ReplicatedClass{std::move(sub), std::move(cls), std::move(tag)});
    }
    run_replicated_query(
        *rs, sim, net_, issuer, std::move(classes),
        // Replica snapshots hold whole regions; re-apply the geometric
        // destination predicate so served answers match the FRT path.
        [this, box, matches](const fissione::StoredObject& obj) {
          return tree_.box_intersects(obj.object_id, box) && matches(obj);
        },
        [this, box, matches](PeerId, const fissione::StoreView& view,
                             RangeQueryResult& out) {
          view.for_each([&](const fissione::StoredObject& obj) {
            if (tree_.box_intersects(obj.object_id, box) && matches(obj)) {
              out.matches.push_back(obj.payload);
              ++out.stats.results;
            }
          });
        },
        std::move(done));
    return;
  }

  std::vector<KautzRegion> subs = region.split_common_prefix();
  if (rb != nullptr) {
    rb->on_query(sim, subs);
  }
  std::vector<FrtSearchClass> classes;
  classes.reserve(subs.size());
  for (KautzRegion& sub : subs) {
    // Skip first-symbol blocks whose subspace misses the box entirely.
    if (!tree_.box_intersects(sub.common_prefix().prefix(1), box)) {
      continue;
    }
    FrtSearchClass cls;
    cls.com_t = sub.common_prefix();
    cls.viable = [this, sub = std::move(sub), box](const KautzString& aligned) {
      return sub.intersects_prefix(aligned) &&
             tree_.box_intersects(aligned, box);
    };
    classes.push_back(std::move(cls));
  }

  const FrtSearch search(net_);
  search.run_async(
      sim, issuer, std::move(classes),
      [this, box, matches](PeerId, const fissione::StoreView& view,
                           RangeQueryResult& out) {
        view.for_each([&](const fissione::StoredObject& obj) {
          if (tree_.box_intersects(obj.object_id, box) && matches(obj)) {
            out.matches.push_back(obj.payload);
            ++out.stats.results;
          }
        });
      },
      std::move(done));
}

std::vector<PeerId> Mira::expected_destinations(const Box& box) const {
  std::vector<PeerId> out;
  for (PeerId p : net_.alive_peers()) {
    if (tree_.box_intersects(net_.peer(p).peer_id, box)) {
      out.push_back(p);
    }
  }
  return out;
}

}  // namespace armada::core
