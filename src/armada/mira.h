// MIRA — multiple-attribute range queries over the FRT (paper §5).
//
// Multiple_hash is partial-order preserving, so every leaf whose subspace
// meets the query box lies inside the bounding region
// <Multiple_hash(lower corner), Multiple_hash(upper corner)>, but that
// region may also contain non-matching leaves. MIRA therefore prunes the
// FRT search geometrically: a branch stays alive iff the partition-tree
// subspace of its aligned label still intersects the real query box. Delay
// is bounded by |PeerID(issuer)| exactly as in PIRA.
#pragma once

#include <functional>

#include "armada/frt_search.h"
#include "armada/range_query.h"
#include "fissione/network.h"
#include "kautz/partition_tree.h"

namespace armada::replica {
class ReplicaSet;
}  // namespace armada::replica

namespace armada::rebalance {
class Rebalancer;
}  // namespace armada::rebalance

namespace armada::core {

class Mira {
 public:
  /// `tree` is the multi-attribute naming tree (k == net ObjectID length).
  Mira(fissione::FissioneNetwork& net, const kautz::PartitionTree& tree);

  using ObjectFilter = std::function<bool(const fissione::StoredObject&)>;

  /// Query box: one closed interval per attribute.
  RangeQueryResult query(fissione::PeerId issuer, const kautz::Box& box,
                         const ObjectFilter& matches) const;

  /// Event-driven variant on a caller-owned simulator; shares the transport
  /// queues with concurrent flows and obeys the installed flow-control
  /// policy (partial answers carry the coverage fraction). See
  /// FrtSearch::run_async.
  void query_async(sim::Simulator& sim, fissione::PeerId issuer,
                   const kautz::Box& box, const ObjectFilter& matches,
                   std::function<void(RangeQueryResult)> done) const;

  /// Ground truth for tests: peers whose zone subspace intersects the box.
  std::vector<fissione::PeerId> expected_destinations(
      const kautz::Box& box) const;

  /// Attach the replica subsystem (nullptr detaches); see Pira::set_replicas.
  void set_replicas(replica::ReplicaSet* replicas) { replicas_ = replicas; }

  /// Attach the online rebalancer (nullptr detaches); see
  /// Pira::set_rebalancer.
  void set_rebalancer(rebalance::Rebalancer* rb) { rebalancer_ = rb; }

 private:
  fissione::FissioneNetwork& net_;  ///< mutable only for the queueing transport path
  kautz::PartitionTree tree_;  // by value: small and immutable
  replica::ReplicaSet* replicas_ = nullptr;  ///< optional, not owned
  rebalance::Rebalancer* rebalancer_ = nullptr;  ///< optional, not owned
};

}  // namespace armada::core
