// In-network range aggregation over the PIRA forwarding tree (extension;
// the paper's §6 names "other complex queries" as future work).
//
// A range aggregate (COUNT/SUM/MIN/MAX/AVG) needs only a scalar from each
// destination. Replies can fold up the reverse forwarding tree, so the
// querying peer receives one combined value per child branch instead of one
// record stream per destination: reply traffic equals the forward tree's
// edge count, and no record leaves its peer.
#pragma once

#include <functional>

#include "armada/pira.h"
#include "fissione/network.h"
#include "kautz/partition_tree.h"

namespace armada::core {

struct AggregateResult {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;   ///< meaningful iff count > 0
  double max = 0.0;   ///< meaningful iff count > 0
  double mean() const;

  sim::QueryStats stats;          ///< forward-phase metrics (PIRA)
  std::uint64_t reply_messages = 0;  ///< folded replies (= forward edges)
  /// What a non-aggregating scheme would ship: one record per match.
  std::uint64_t records_avoided = 0;
};

class Aggregate {
 public:
  Aggregate(fissione::FissioneNetwork& net,
            const kautz::PartitionTree& tree);

  using ValueFn = std::function<double(const fissione::StoredObject&)>;

  AggregateResult range_aggregate(fissione::PeerId issuer, double lo,
                                  double hi, const ValueFn& value_of) const;

 private:
  const fissione::FissioneNetwork& net_;
  Pira pira_;
};

}  // namespace armada::core
