#include "armada/replicated_query.h"

#include <memory>
#include <utility>

#include "net/routed_overlay.h"
#include "util/check.h"

namespace armada::core {

using fissione::PeerId;

namespace {

// Shared fan state: every class is one branch; the last branch to land
// hands the merged result to `done`. Branch count is fixed *before* any
// class launches, because a class can complete synchronously (issuer-local
// cache hits schedule, but an issuer-is-holder scan runs inline).
struct Fan {
  RangeQueryResult result;
  std::uint64_t pending = 0;
  std::function<void(RangeQueryResult)> done;

  void complete() {
    ARMADA_CHECK(pending > 0);
    if (--pending == 0) {
      done(std::move(result));
    }
  }
};

}  // namespace

void run_replicated_query(
    replica::ReplicaSet& replicas, sim::Simulator& sim,
    fissione::FissioneNetwork& net, PeerId issuer,
    std::vector<ReplicatedClass> classes,
    replica::ReplicaSet::ObjectFilter replica_filter,
    FrtSearch::DestinationScan on_destination,
    std::function<void(RangeQueryResult)> done) {
  // Popularity/placement first: this query's classes charge the tracker and
  // may push a region over the hot threshold — the placement transfers then
  // race this same query on `sim`, and since freshly placed holders are not
  // synced until their transfers arrive, this query still fans out.
  std::vector<kautz::KautzRegion> subregions;
  subregions.reserve(classes.size());
  for (const ReplicatedClass& cls : classes) {
    subregions.push_back(cls.subregion);
  }
  replicas.on_query(sim, subregions);

  auto fan = std::make_shared<Fan>();
  fan->done = std::move(done);
  if (classes.empty()) {
    // Nothing to search; still complete from an event so `done` always
    // runs inside the simulation (mirrors FrtSearch::run_async).
    ++fan->pending;
    sim.schedule_at(sim.now(), [fan] { fan->complete(); });
    return;
  }
  fan->pending = classes.size();

  const FrtSearch search(net);
  replica::ReplicaSet* rs = &replicas;
  for (ReplicatedClass& cls : classes) {
    const bool served = rs->serve_class(
        sim, issuer, cls.subregion, cls.cache_tag, replica_filter,
        [fan](sim::QueryStats frag, std::vector<std::uint64_t> matches,
              PeerId served_by) {
          overlay::fan_in(fan->result.stats, frag);
          if (served_by != fissione::kNoPeer) {
            fan->result.destinations.push_back(served_by);
            ++fan->result.stats.dest_peers;
          }
          fan->result.stats.results += matches.size();
          fan->result.matches.insert(fan->result.matches.end(),
                                     matches.begin(), matches.end());
          fan->complete();
        });
    if (served) {
      continue;
    }
    // FRT fallback, one search per class so the class's own matches are
    // identifiable for the cache fill below.
    search.run_async(
        sim, issuer, {std::move(cls.frt)}, on_destination,
        [fan, rs, issuer, sub = cls.subregion,
         tag = std::move(cls.cache_tag)](RangeQueryResult r) {
          overlay::fan_in(fan->result.stats, r.stats);
          fan->result.stats.dest_peers += r.stats.dest_peers;
          fan->result.stats.results += r.stats.results;
          fan->result.destinations.insert(fan->result.destinations.end(),
                                          r.destinations.begin(),
                                          r.destinations.end());
          fan->result.matches.insert(fan->result.matches.end(),
                                     r.matches.begin(), r.matches.end());
          if (r.stats.coverage >= 1.0) {
            rs->cache_insert(issuer, tag, sub, r.matches);
          }
          fan->complete();
        });
  }
}

}  // namespace armada::core
