// ChurnHarness: Armada range queries racing FISSIONE repair.
//
// Armada's query engines are layered strictly over the DHT's routing
// interfaces, so they see the post-surgery overlay the instant a membership
// event executes. This harness reintroduces what a real deployment would
// observe between the event and the end of its repair exchange (see
// fissione::ChurnDriver):
//
//  * Objects still in flight between stores are dropped from the answer —
//    the query observably *misses* them (the answer stays a subset of the
//    live ground truth; it never resurrects dropped objects).
//  * Every stale destination peer the query touches forces a detour: the
//    first delivery chased a stale pointer and is retried, costing one
//    extra message, one extra hop of delay, and one extra link charge.
//  * A query that exhausts the driver's detour budget fails observably:
//    no matches, failed = true.
//
// Outcomes are recorded into the driver's sim::ChurnStats, making
// "queries launched inside stale windows and how they fared" a first-class
// measurement next to QueryStats.
#pragma once

#include <cstdint>
#include <vector>

#include "armada/armada.h"
#include "fissione/churn_driver.h"
#include "sim/metrics.h"

namespace armada::core {

class ChurnHarness {
 public:
  /// `index` must be layered over the driver's network. Single-attribute
  /// indexes only (the stale-peer intersection test reads attribute 0).
  ChurnHarness(ArmadaIndex& index, fissione::ChurnDriver& driver);

  ChurnHarness(const ChurnHarness&) = delete;
  ChurnHarness& operator=(const ChurnHarness&) = delete;

  struct RangeOutcome {
    /// Query cost including stale-window detour surcharges.
    sim::QueryStats stats;
    /// Matching handles, minus in-flight objects; empty when failed.
    std::vector<std::uint64_t> matches;
    bool stale = false;           ///< touched at least one open stale window
    std::uint64_t detours = 0;
    std::uint64_t missed = 0;     ///< in-flight matches dropped from the answer
    bool failed = false;
  };

  /// Range query issued at the driver's current simulated time.
  RangeOutcome range_query(fissione::PeerId issuer, double lo, double hi);

  const fissione::ChurnDriver& driver() const { return driver_; }

 private:
  ArmadaIndex& index_;
  fissione::ChurnDriver& driver_;
};

}  // namespace armada::core
