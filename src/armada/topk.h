// Top-k queries over Armada — the extension the paper names as future work
// (§6: "we plan to extend Armada to support other complex queries, such as
// top-k query").
//
// Because Single_hash is interval-preserving, the peers' zones partition the
// value axis in lexicographic PeerID order. A top-k query therefore routes
// to the peer owning the top of the range and walks zones downward; it can
// stop as soon as k objects are collected, because everything in an
// unvisited zone is smaller than everything already seen.
#pragma once

#include <functional>

#include "armada/range_query.h"
#include "fissione/network.h"
#include "kautz/partition_tree.h"

namespace armada::core {

struct TopKResult {
  sim::QueryStats stats;
  /// Matching handles, sorted by descending attribute value, at most k.
  std::vector<std::uint64_t> handles;
};

class TopK {
 public:
  /// Single-attribute naming tree (k == net ObjectID length).
  TopK(const fissione::FissioneNetwork& net, const kautz::PartitionTree& tree);

  /// Attribute value of a stored object (provided by the application).
  using ValueFn = std::function<double(const fissione::StoredObject&)>;

  /// The k largest values within [lo, hi], walking zones from the top.
  TopKResult query(fissione::PeerId issuer, double lo, double hi,
                   std::size_t k, const ValueFn& value_of) const;

 private:
  const fissione::FissioneNetwork& net_;
  kautz::PartitionTree tree_;
};

}  // namespace armada::core
