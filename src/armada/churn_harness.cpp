#include "armada/churn_harness.h"

#include <algorithm>

#include "util/check.h"

namespace armada::core {

ChurnHarness::ChurnHarness(ArmadaIndex& index, fissione::ChurnDriver& driver)
    : index_(index), driver_(driver) {
  ARMADA_CHECK_MSG(index_.num_attributes() == 1,
                   "ChurnHarness supports single-attribute indexes");
}

ChurnHarness::RangeOutcome ChurnHarness::range_query(fissione::PeerId issuer,
                                                     double lo, double hi) {
  RangeOutcome out;
  const RangeQueryResult r = index_.range_query(issuer, lo, hi);
  out.stats = r.stats;

  // Matches whose handoff transfer has not landed are on the wire: neither
  // the old nor the new holder can serve them, so the answer misses them.
  out.matches.reserve(r.matches.size());
  for (std::uint64_t handle : r.matches) {
    if (driver_.is_in_flight(handle)) {
      ++out.missed;
    } else {
      out.matches.push_back(handle);
    }
  }

  // Every stale peer the query fans into — the issuer itself, or a
  // destination peer holding part of the answer — chased a stale pointer
  // first and retries: one extra message, hop, and link charge each. Like
  // the drivers' route replay, charging stops once the detour budget is
  // exhausted: the query is abandoned, not retried further.
  const fissione::FissioneNetwork& net = driver_.net();
  for (fissione::PeerId p : driver_.stale_peers()) {
    bool touches = p == issuer;
    if (!touches) {
      net.for_each_owned(p, [&](const fissione::StoredObject& obj) {
        if (touches) {
          return;
        }
        const double v = index_.attributes(obj.payload)[0];
        if (v >= lo && v <= hi) {
          touches = true;
        }
      });
    }
    if (!touches) {
      continue;
    }
    out.stale = true;
    ++out.detours;
    ++out.stats.messages;
    out.stats.delay += 1.0;
    // A stale issuer retries over its first overlay link (models cannot
    // price self-links); any other stale peer re-prices the issuer->peer
    // delivery that chased the stale pointer.
    const fissione::PeerId retry_peer =
        p == issuer ? net.peer(issuer).out_neighbors.front() : p;
    out.stats.latency += net.transport().link(issuer, retry_peer);
    if (out.detours > driver_.config().max_detours) {
      out.failed = true;
      break;
    }
  }
  out.stale = out.stale || out.missed > 0;

  if (out.failed) {
    out.matches.clear();
  }
  std::sort(out.matches.begin(), out.matches.end());

  driver_.record_query(out.stale, out.detours, out.failed, out.missed);
  return out;
}

}  // namespace armada::core
