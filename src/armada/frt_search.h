// The pruning search over the forward routing tree (FRT) that underlies
// both PIRA (paper §4.2) and MIRA (paper §5).
//
// A search instance carries an *alignment*: the number j of trailing PeerID
// symbols of the current peer that form a prefix of the target leaf labels.
// A peer whose whole PeerID is aligned is a destination. Otherwise it
// forwards to each out-neighbor C = u2...ub ++ Y whose aligned part
// (aligned digits ++ Y) can still prefix a target leaf — the `viable`
// predicate. Sibling branches partition the continuation space, so every
// destination receives exactly one message, and the remaining distance
// |PeerID| - j shrinks by one per hop, giving the paper's delay bound:
// delay <= |PeerID(issuer)| < 2 log2 N.
#pragma once

#include <functional>

#include "fissione/network.h"
#include "kautz/kautz_region.h"
#include "kautz/kautz_string.h"
#include "range_query.h"
#include "sim/event_queue.h"

namespace armada::core {

/// One class of an FRT search: all target leaves share the common prefix
/// `com_t` ("ComT"). Queries whose bounds share no prefix are split into at
/// most base+1 classes by the callers.
struct FrtSearchClass {
  /// Common prefix of every target leaf label in this class (nonempty).
  kautz::KautzString com_t;
  /// Hereditary viability: viable(x) iff some target leaf label in this
  /// class has prefix x. Must be monotone (viable on a label implies viable
  /// on all its prefixes within the class).
  std::function<bool(const kautz::KautzString&)> viable;
};

/// Executes FRT search classes for one query on a discrete-event simulator
/// and accumulates the paper's per-query metrics. `on_destination` runs the
/// local scan at each serving peer over a StoreView: the peer's native
/// store, plus — when the rebalancer has migrated key ranges — the
/// delegation slices it must serve.
///
/// Migrated ranges never add depth: when a forwarding parent is about to
/// deliver to a destination child whose zone intersects delegated ranges,
/// it splits the last hop — one message per viable delegation host (each
/// serving its slice) and, if undelegated viable targets remain, the
/// native message with those ranges excluded. Host messages travel at the
/// same tree depth as the destination they stand in for, so the paper's
/// bound delay <= |PeerID(issuer)| is preserved. Races resolve at arrival
/// time against the live registry: a branch dispatched before a cutover
/// that lands after it scans the owner-side slices (nothing is dropped),
/// and the dispatch-time exclusion list keeps split serves disjoint
/// (nothing is double-counted).
class FrtSearch {
 public:
  /// Local scan at one serving peer.
  using DestinationScan = std::function<void(
      fissione::PeerId, const fissione::StoreView&, RangeQueryResult&)>;

  /// The network reference is mutable solely for the transport's queueing
  /// delivery path; the overlay structure is never modified.
  explicit FrtSearch(fissione::FissioneNetwork& net) : net_(net) {}

  RangeQueryResult run(fissione::PeerId issuer,
                       const std::vector<FrtSearchClass>& classes,
                       const DestinationScan& on_destination) const;

  /// Event-driven variant on a caller-owned simulator: the search's
  /// messages compete with every other flow on `sim` (concurrent queries,
  /// repair traffic) through the shared transport queues, and `done`
  /// receives the finished result when the last branch lands. The search
  /// obeys the transport's installed flow-control policy: branches back off
  /// into backlogged next hops, and a branch refused admission is shed —
  /// the result then carries coverage = reached / (reached + shed
  /// destinations), counted exactly by a structural recursion over the
  /// forwarding tree (sibling branches partition the destination space).
  /// `classes` is taken by value; captured state in `viable` must be owned
  /// by the closures. With flow control off this schedules the exact event
  /// sequence of `run` (which is a fresh-simulator wrapper around it).
  void run_async(sim::Simulator& sim, fissione::PeerId issuer,
                 std::vector<FrtSearchClass> classes,
                 DestinationScan on_destination,
                 std::function<void(RangeQueryResult)> done) const;

  /// The paper's ComS: length of the longest suffix of `peer_id` that is a
  /// prefix of `com_t` (the canonical start alignment).
  static std::size_t start_alignment(const kautz::KautzString& peer_id,
                                     const kautz::KautzString& com_t);

 private:
  fissione::FissioneNetwork& net_;
};

}  // namespace armada::core
