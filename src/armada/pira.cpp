#include "armada/pira.h"

#include <cstdio>
#include <utility>

#include "armada/replicated_query.h"
#include "rebalance/rebalance.h"
#include "replica/replica_set.h"
#include "util/check.h"

namespace armada::core {

using fissione::PeerId;
using kautz::KautzRegion;
using kautz::KautzString;

Pira::Pira(fissione::FissioneNetwork& net,
           const kautz::PartitionTree& tree)
    : net_(net), tree_(tree) {
  ARMADA_CHECK(tree_.num_attributes() == 1);
  ARMADA_CHECK(tree_.base() == net_.config().base);
  ARMADA_CHECK_MSG(tree_.k() == net_.config().object_id_length,
                   "naming tree depth must equal ObjectID length");
}

RangeQueryResult Pira::query(PeerId issuer, double lo, double hi,
                             const ObjectFilter& matches) const {
  // Through the value-level async path (not query_region) so the replica
  // subsystem sees the [lo, hi] identity for result caching.
  RangeQueryResult result;
  sim::Simulator sim;
  query_async(sim, issuer, lo, hi, matches,
              [&result](RangeQueryResult r) { result = std::move(r); });
  sim.run();
  return result;
}

RangeQueryResult Pira::query_region(PeerId issuer, const KautzRegion& region,
                                    const ObjectFilter& matches) const {
  RangeQueryResult result;
  sim::Simulator sim;
  query_region_async(sim, issuer, region, matches,
                     [&result](RangeQueryResult r) { result = std::move(r); });
  sim.run();
  return result;
}

void Pira::query_async(sim::Simulator& sim, PeerId issuer, double lo,
                       double hi, const ObjectFilter& matches,
                       std::function<void(RangeQueryResult)> done) const {
  // Value-level queries have a canonical identity: the [lo, hi] interval.
  // %.17g round-trips doubles, so equal intervals always share a tag.
  char tag[64];
  std::snprintf(tag, sizeof(tag), "pira|%.17g|%.17g", lo, hi);
  query_region_async_impl(sim, issuer, tree_.region_for(lo, hi), matches, tag,
                          std::move(done));
}

void Pira::query_region_async(sim::Simulator& sim, PeerId issuer,
                              const KautzRegion& region,
                              const ObjectFilter& matches,
                              std::function<void(RangeQueryResult)> done)
    const {
  query_region_async_impl(sim, issuer, region, matches, std::string(),
                          std::move(done));
}

void Pira::query_region_async_impl(sim::Simulator& sim, PeerId issuer,
                                   const KautzRegion& region,
                                   const ObjectFilter& matches,
                                   const std::string& cache_tag,
                                   std::function<void(RangeQueryResult)> done)
    const {
  ARMADA_CHECK(region.length() == net_.config().object_id_length);

  // Trace root for the whole query: the scope below covers the synchronous
  // dispatch (rebalancer on_query migrations, replica serves, FRT class
  // starts), so all of their transport traffic attributes to this query;
  // the wrapped `done` closes the root and runs the delay-bound auditor.
  obs::TraceRecorder* rec = net_.transport().trace();
  std::uint64_t troot = 0;
  if (rec != nullptr) [[unlikely]] {
    troot = rec->maybe_begin("pira", issuer, sim.now());
    if (troot != 0) {
      done = [rec, troot, inner = std::move(done)](RangeQueryResult r) {
        rec->end_trace(troot, r.stats);
        inner(std::move(r));
      };
    }
  }
  const obs::TraceRecorder::Scope trace_scope =
      troot != 0 ? rec->enter(troot) : obs::TraceRecorder::Scope();

  replica::ReplicaSet* rs = replicas_;
  if (rs != nullptr && !rs->config().enabled()) {
    rs = nullptr;  // disabled config: keep the combined search bitwise
  }
  rebalance::Rebalancer* rb = rebalancer_;
  if (rb != nullptr && !rb->config().enabled()) {
    rb = nullptr;  // disabled config: keep the query path bitwise
  }

  if (rs != nullptr) {
    // Paper §4.2 split, one ReplicatedClass per subregion: the orchestrator
    // serves each from cache/replica where possible and FRT-falls-back
    // per class otherwise.
    std::vector<KautzRegion> subs = region.split_common_prefix();
    if (rb != nullptr) {
      rb->on_query(sim, subs);
    }
    std::vector<ReplicatedClass> classes;
    classes.reserve(subs.size());
    for (KautzRegion& sub : subs) {
      FrtSearchClass cls;
      cls.com_t = sub.common_prefix();
      cls.viable = [sub](const KautzString& aligned) {
        return sub.intersects_prefix(aligned);
      };
      std::string tag;
      if (!cache_tag.empty()) {
        tag = cache_tag + "|" + sub.common_prefix().to_string();
      }
      classes.push_back(
          ReplicatedClass{std::move(sub), std::move(cls), std::move(tag)});
    }
    run_replicated_query(
        *rs, sim, net_, issuer, std::move(classes),
        // Replica snapshots hold whole regions; re-apply the destination
        // scan's predicate so served answers match the FRT path exactly.
        [region, matches](const fissione::StoredObject& obj) {
          return region.contains(obj.object_id) && matches(obj);
        },
        [region, matches](PeerId, const fissione::StoreView& view,
                          RangeQueryResult& out) {
          view.for_each([&](const fissione::StoredObject& obj) {
            if (region.contains(obj.object_id) && matches(obj)) {
              out.matches.push_back(obj.payload);
              ++out.stats.results;
            }
          });
        },
        std::move(done));
    return;
  }

  // Paper §4.2: divide <LowT, HighT> into subregions with common prefixes.
  // Closures own their subregion copies: the search may outlive this frame.
  std::vector<KautzRegion> subs = region.split_common_prefix();
  if (rb != nullptr) {
    rb->on_query(sim, subs);
  }
  std::vector<FrtSearchClass> classes;
  classes.reserve(subs.size());
  for (KautzRegion& sub : subs) {
    FrtSearchClass cls;
    cls.com_t = sub.common_prefix();
    cls.viable = [sub = std::move(sub)](const KautzString& aligned) {
      return sub.intersects_prefix(aligned);
    };
    classes.push_back(std::move(cls));
  }

  const FrtSearch search(net_);
  search.run_async(
      sim, issuer, std::move(classes),
      [region, matches](PeerId, const fissione::StoreView& view,
                        RangeQueryResult& out) {
        view.for_each([&](const fissione::StoredObject& obj) {
          if (region.contains(obj.object_id) && matches(obj)) {
            out.matches.push_back(obj.payload);
            ++out.stats.results;
          }
        });
      },
      std::move(done));
}

std::vector<PeerId> Pira::expected_destinations(
    const KautzRegion& region) const {
  std::vector<PeerId> out;
  for (PeerId p : net_.alive_peers()) {
    if (region.intersects_prefix(net_.peer(p).peer_id)) {
      out.push_back(p);
    }
  }
  return out;
}

}  // namespace armada::core
