#include "armada/frt_search.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "net/transport.h"
#include "util/check.h"

namespace armada::core {

using fissione::PeerId;
using kautz::KautzString;

std::size_t FrtSearch::start_alignment(const KautzString& peer_id,
                                       const KautzString& com_t) {
  // The longest suffix of the PeerID that prefixes com_t — exactly the
  // packed single-word alignment loop, no per-candidate slice temporaries.
  return peer_id.longest_suffix_prefix(com_t);
}

namespace {

// Shared state of one in-flight search. Kept alive by the arrival closures;
// `pending` counts scheduled arrivals not yet processed, so the last one to
// land finalises coverage and hands the result to `done`.
//
// Forwarded messages travel through the network's Transport, so each hop
// arrives after its link latency: `delay` stays the paper's hop count
// (depth in the forwarding tree) while `latency` is the simulated arrival
// time relative to the search's start. Under ConstantHop on a fresh
// simulator the two coincide exactly.
struct Search {
  fissione::FissioneNetwork* net;
  sim::Simulator* sim;
  std::vector<FrtSearchClass> classes;
  FrtSearch::DestinationScan on_destination;
  std::function<void(RangeQueryResult)> done;
  RangeQueryResult result;
  sim::Time start = 0.0;
  std::uint64_t pending = 0;
  std::uint64_t shed_destinations = 0;
  // Trace context captured at run_async: the class-start events below are
  // scheduled directly (not through a Transport delivery), so they re-enter
  // the enclosing query's span themselves. The search never begins traces —
  // roots belong to PIRA/MIRA/the drivers.
  obs::TraceRecorder* trace = nullptr;
  std::uint64_t ctx = 0;

  // One same-depth stand-in message for a delegated piece of a destination
  // zone: `host` serves the contents of `range` restricted to `segment`
  // (the destination's zone for a covering delegation, the whole range for
  // a sub-delegation).
  struct HostMsg {
    PeerId host;
    KautzString range;
    KautzString segment;
  };

  // How one structural destination is actually served under the live
  // delegation registry, resolved by the forwarding parent at dispatch.
  struct ServePlan {
    bool native = true;            ///< any viable undelegated targets left?
    std::vector<HostMsg> hosts;    ///< viable delegated pieces
    std::vector<KautzString> excluded;  ///< ranges the native scan skips
  };

  // Does `cls` keep viable targets under `p` outside the delegated ranges?
  // Structural recursion that only descends where a delegated range lies
  // deeper, so depth is bounded by the deepest delegated range.
  bool native_viable(const FrtSearchClass& cls, const KautzString& p,
                     const std::vector<KautzString>& delegated) const {
    bool deeper = false;
    for (const KautzString& r : delegated) {
      if (r == p) {
        return false;
      }
      deeper = deeper || (p.is_prefix_of(r) && r.length() > p.length());
    }
    if (!cls.viable(p)) {
      return false;  // viability is hereditary: nothing below either
    }
    if (!deeper) {
      return true;
    }
    for (std::uint8_t s = 0; s <= p.base(); ++s) {
      if (!p.can_append(s)) {
        continue;
      }
      KautzString child = p;
      child.push_back(s);
      if (native_viable(cls, child, delegated)) {
        return true;
      }
    }
    return false;
  }

  // Serving plan for the destination whose PeerID is `dest_id`. Only
  // called while the registry is non-empty.
  ServePlan resolve_plan(const FrtSearchClass& cls,
                         const KautzString& dest_id) const {
    ServePlan plan;
    if (const auto* d = net->delegation_covering(dest_id)) {
      // The whole zone migrated: full redirect, nothing native remains.
      plan.native = false;
      plan.hosts.push_back(HostMsg{d->host, d->range, dest_id});
      return plan;
    }
    std::vector<KautzString> under;  // delegated ranges inside the zone
    const auto& delegations = net->delegations();
    for (auto it = delegations.lower_bound(dest_id);
         it != delegations.end() && dest_id.is_prefix_of(it->first); ++it) {
      under.push_back(it->first);
      if (cls.viable(it->first)) {
        plan.hosts.push_back(
            HostMsg{it->second.host, it->first, it->first});
        plan.excluded.push_back(it->first);
      }
    }
    if (!under.empty()) {
      plan.native = native_viable(cls, dest_id, under);
    }
    return plan;
  }

  // Exact destination count of the subtree rooted at (b, aligned_len): a
  // structural recursion over the overlay graph, no messages. Sibling
  // branches partition the target space, so this is precisely what an
  // admission shed of the branch gives up. Under active delegations a
  // destination resolves into its serving plan's message count, matching
  // what dispatch would send.
  std::uint64_t subtree_destinations(const FrtSearchClass& cls, PeerId b,
                                     std::size_t aligned_len) const {
    const fissione::Peer& peer = net->peer(b);
    const std::size_t len = peer.peer_id.length();
    if (aligned_len == len) {
      if (!net->has_delegations()) {
        return 1;
      }
      const ServePlan plan = resolve_plan(cls, peer.peer_id);
      return (plan.native ? 1u : 0u) + plan.hosts.size();
    }
    std::uint64_t total = 0;
    for (PeerId c : peer.out_neighbors) {
      const KautzString& cid = net->peer(c).peer_id;
      const std::size_t m = cid.length() + 1 - len;
      const KautzString aligned = cid.suffix(aligned_len + m);
      if (cls.viable(aligned)) {
        total += subtree_destinations(cls, c, aligned_len + m);
      }
    }
    return total;
  }

  // Arrival processing at a (native) destination: scan the live owner-side
  // view — the native store plus the slices of every delegation covering
  // the zone, minus the ranges this dispatch already routed to hosts. A
  // cutover landing between dispatch and arrival is thereby served from
  // its delegation (nothing dropped); pieces with in-flight host messages
  // are skipped (nothing double-counted).
  void arrive_destination(PeerId b, std::uint32_t hops,
                          const std::vector<KautzString>& excluded) {
    result.destinations.push_back(b);
    ++result.stats.dest_peers;
    result.stats.delay =
        std::max(result.stats.delay, static_cast<double>(hops));
    result.stats.latency = std::max(result.stats.latency, sim->now() - start);
    if (trace != nullptr) {
      trace->annotate(obs::kFlagServe);
    }
    const fissione::Peer peer = net->peer(b);
    fissione::StoreView view(peer.store);
    if (net->has_delegations()) {
      net->visit_delegation_slices(
          peer.peer_id,
          [&view, &excluded](const KautzString& range,
                             std::span<const fissione::StoredObject> slice) {
            if (slice.empty()) {
              return;
            }
            for (const KautzString& ex : excluded) {
              if (ex == range) {
                return;
              }
            }
            view.extra.push_back(slice);
          });
    }
    on_destination(b, view, result);
  }

  // Arrival at a delegation host: serve whatever the range holds *now*.
  // The range is captured by value — if the delegation was revoked while
  // the message flew (host churn races), the scan finds nothing and the
  // answer degrades to a subset, exactly like other churn races.
  void arrive_host(PeerId host, const KautzString& range,
                   const KautzString& segment, std::uint32_t hops) {
    result.destinations.push_back(host);
    ++result.stats.dest_peers;
    result.stats.delay =
        std::max(result.stats.delay, static_cast<double>(hops));
    result.stats.latency = std::max(result.stats.latency, sim->now() - start);
    if (trace != nullptr) {
      trace->annotate(obs::kFlagServe);
    }
    fissione::StoreView view;
    if (const auto* d = net->find_delegation(range)) {
      view.native = fissione::FissioneNetwork::delegation_segment(*d, segment);
    }
    on_destination(host, view, result);
  }

  // Send one query-lane message of the search, honoring the installed
  // flow-control policy. `lost_if_shed` is the destination count this
  // branch gives up under admission shedding; `on_arrival` runs at the
  // receiver. Returns false when the message was shed.
  template <typename Fn>
  bool send(const std::shared_ptr<Search>& self, PeerId from, PeerId to,
            const FrtSearchClass& cls, std::uint64_t lost_if_shed,
            Fn&& on_arrival) {
    (void)cls;
    net::Transport& transport = net->transport();
    if (transport.should_shed(*sim, to, net::TrafficClass::kQuery)) {
      transport.record_shed();
      ++result.stats.shed;
      shed_destinations += lost_if_shed;
      return false;
    }
    sim::Time not_before = 0.0;
    const sim::Time backoff = transport.backoff_delay(*sim, to);
    if (backoff > 0.0) {
      not_before = sim->now() + backoff;
    }
    ++result.stats.messages;
    result.stats.bytes_on_wire += transport.default_message_bytes();
    ++pending;
    transport.deliver(
        *sim, from, to, transport.default_message_bytes(),
        [self, to, fn = std::forward<Fn>(on_arrival)](sim::Time qd) {
          self->net->record_service(to);
          self->result.stats.queue_delay += qd;
          fn();
          self->complete();
        },
        not_before, net::TrafficClass::kQuery);
    return true;
  }

  void step(const std::shared_ptr<Search>& self, std::size_t cls_idx, PeerId b,
            std::size_t aligned_len, std::uint32_t hops) {
    const FrtSearchClass& cls = classes[cls_idx];
    const fissione::Peer& peer = net->peer(b);
    const std::size_t len = peer.peer_id.length();
    if (aligned_len == len) {
      // The whole PeerID prefixes a viable target leaf: destination. (Only
      // reached without a dispatch-time split: at the issuer, or when no
      // delegation intersected the zone at dispatch — so nothing is
      // excluded from the arrival-time view.)
      arrive_destination(b, hops, {});
      return;
    }
    ARMADA_CHECK(aligned_len < len);
    for (PeerId c : peer.out_neighbors) {
      const KautzString& cid = net->peer(c).peer_id;
      // C = u2...ub ++ Y with |Y| = m in {0,1,2} (neighborhood invariant).
      ARMADA_CHECK(cid.length() + 1 >= len);
      const std::size_t m = cid.length() + 1 - len;
      const KautzString aligned = cid.suffix(aligned_len + m);
      if (!cls.viable(aligned)) {
        continue;
      }
      const std::size_t al = aligned_len + m;
      if (al == cid.length() && net->has_delegations()) {
        // Destination child under an active registry: split the last hop
        // per the serving plan. Host stand-ins fly at the same depth, so
        // the delay bound is untouched.
        ServePlan plan = resolve_plan(cls, cid);
        if (!plan.native || !plan.hosts.empty()) {
          if (trace != nullptr) {
            trace->annotate(obs::kFlagDelegationSplit);
          }
          if (plan.native) {
            send(self, b, c, cls, 1,
                 [self, c, hops, excluded = std::move(plan.excluded)] {
                   self->arrive_destination(c, hops + 1, excluded);
                 });
          }
          for (HostMsg& msg : plan.hosts) {
            if (msg.host == b) {
              // The forwarding peer itself hosts the piece; it already
              // holds the query, so it serves locally with no stand-in
              // message.
              arrive_host(b, msg.range, msg.segment, hops);
              continue;
            }
            send(self, b, msg.host, cls, 1,
                 [self, host = msg.host, range = std::move(msg.range),
                  segment = std::move(msg.segment), hops] {
                   self->arrive_host(host, range, segment, hops + 1);
                 });
          }
          continue;
        }
      }
      send(self, b, c, cls, subtree_destinations(cls, c, al),
           [self, cls_idx, c, al, hops] {
             self->step(self, cls_idx, c, al, hops + 1);
           });
    }
  }

  // Callers hold the context alive via their captured shared_ptr for the
  // whole call, including the final `done` callback.
  void complete() {
    ARMADA_CHECK(pending > 0);
    if (--pending > 0) {
      return;
    }
    const std::uint64_t reached = result.stats.dest_peers;
    result.stats.coverage =
        shed_destinations == 0
            ? 1.0
            : static_cast<double>(reached) /
                  static_cast<double>(reached + shed_destinations);
    done(std::move(result));
  }
};

}  // namespace

void FrtSearch::run_async(
    sim::Simulator& sim, PeerId issuer, std::vector<FrtSearchClass> classes,
    DestinationScan on_destination,
    std::function<void(RangeQueryResult)> done) const {
  for (const FrtSearchClass& cls : classes) {
    ARMADA_CHECK_MSG(!cls.com_t.empty(), "search class without common prefix");
  }
  auto search = std::make_shared<Search>();
  search->net = &net_;
  search->sim = &sim;
  search->classes = std::move(classes);
  search->on_destination = std::move(on_destination);
  search->done = std::move(done);
  search->start = sim.now();
  search->trace = net_.transport().trace();
  search->ctx = search->trace != nullptr ? search->trace->context() : 0;
  if (search->classes.empty()) {
    // Nothing to search; still complete from an event so `done` always
    // runs inside the simulation.
    ++search->pending;
    sim.schedule_at(sim.now(), [search] { search->complete(); });
    return;
  }
  const KautzString& issuer_id = net_.peer(issuer).peer_id;
  for (std::size_t i = 0; i < search->classes.size(); ++i) {
    const std::size_t j0 =
        start_alignment(issuer_id, search->classes[i].com_t);
    ++search->pending;
    sim.schedule_at(sim.now(), [search, i, issuer, j0] {
      if (search->trace != nullptr && search->ctx != 0) {
        const obs::TraceRecorder::Scope scope =
            search->trace->enter(search->ctx);
        search->step(search, i, issuer, j0, 0);
      } else {
        search->step(search, i, issuer, j0, 0);
      }
      search->complete();
    });
  }
}

RangeQueryResult FrtSearch::run(
    PeerId issuer, const std::vector<FrtSearchClass>& classes,
    const DestinationScan& on_destination) const {
  RangeQueryResult result;
  sim::Simulator sim;
  run_async(sim, issuer, classes, on_destination,
            [&result](RangeQueryResult r) { result = std::move(r); });
  sim.run();
  return result;
}

}  // namespace armada::core
