#include "armada/frt_search.h"

#include <algorithm>

#include "util/check.h"

namespace armada::core {

using fissione::PeerId;
using kautz::KautzString;

std::size_t FrtSearch::start_alignment(const KautzString& peer_id,
                                       const KautzString& com_t) {
  const std::size_t max_len = std::min(peer_id.length(), com_t.length());
  for (std::size_t t = max_len; t > 0; --t) {
    if (peer_id.suffix(t).is_prefix_of(com_t)) {
      return t;
    }
  }
  return 0;
}

RangeQueryResult FrtSearch::run(
    PeerId issuer, const std::vector<FrtSearchClass>& classes,
    const std::function<void(PeerId, RangeQueryResult&)>& on_destination)
    const {
  RangeQueryResult result;
  sim::Simulator sim;

  // Recursive forwarding step; `search` keeps it alive during sim.run().
  // Forwarded messages travel through the network's Transport, so each hop
  // arrives after its link latency: `delay` stays the paper's hop count
  // (depth in the forwarding tree) while `latency` is the simulated arrival
  // time of the message. Under ConstantHop the two coincide exactly.
  struct Step {
    const FrtSearch* self;
    sim::Simulator* sim;
    RangeQueryResult* result;
    const FrtSearchClass* cls;
    const std::function<void(PeerId, RangeQueryResult&)>* on_destination;

    void operator()(PeerId b, std::size_t aligned_len,
                    std::uint32_t hops) const {
      const fissione::Peer& peer = self->net_.peer(b);
      const std::size_t len = peer.peer_id.length();
      if (aligned_len == len) {
        // The whole PeerID prefixes a viable target leaf: destination.
        result->destinations.push_back(b);
        ++result->stats.dest_peers;
        result->stats.delay =
            std::max(result->stats.delay, static_cast<double>(hops));
        result->stats.latency = std::max(result->stats.latency, sim->now());
        (*on_destination)(b, *result);
        return;
      }
      ARMADA_CHECK(aligned_len < len);
      for (PeerId c : peer.out_neighbors) {
        const KautzString& cid = self->net_.peer(c).peer_id;
        // C = u2...ub ++ Y with |Y| = m in {0,1,2} (neighborhood invariant).
        ARMADA_CHECK(cid.length() + 1 >= len);
        const std::size_t m = cid.length() + 1 - len;
        const KautzString aligned = cid.suffix(aligned_len + m);
        if (cls->viable(aligned)) {
          ++result->stats.messages;
          net::Transport& transport = self->net_.transport();
          result->stats.bytes_on_wire += transport.default_message_bytes();
          const Step step = *this;
          transport.deliver(
              *sim, b, c, [step, c, aligned_len, m, hops](sim::Time qd) {
                step.result->stats.queue_delay += qd;
                step(c, aligned_len + m, hops + 1);
              });
        }
      }
    }
  };

  std::vector<Step> steps;
  steps.reserve(classes.size());
  for (const FrtSearchClass& cls : classes) {
    ARMADA_CHECK_MSG(!cls.com_t.empty(), "search class without common prefix");
    steps.push_back(Step{this, &sim, &result, &cls, &on_destination});
  }
  const KautzString& issuer_id = net_.peer(issuer).peer_id;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const std::size_t j0 = start_alignment(issuer_id, classes[i].com_t);
    const Step& step = steps[i];
    sim.schedule_at(0.0, [&step, issuer, j0] { step(issuer, j0, 0); });
  }
  sim.run();
  return result;
}

}  // namespace armada::core
