#include "armada/frt_search.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "net/transport.h"
#include "util/check.h"

namespace armada::core {

using fissione::PeerId;
using kautz::KautzString;

std::size_t FrtSearch::start_alignment(const KautzString& peer_id,
                                       const KautzString& com_t) {
  // The longest suffix of the PeerID that prefixes com_t — exactly the
  // packed single-word alignment loop, no per-candidate slice temporaries.
  return peer_id.longest_suffix_prefix(com_t);
}

namespace {

// Shared state of one in-flight search. Kept alive by the arrival closures;
// `pending` counts scheduled arrivals not yet processed, so the last one to
// land finalises coverage and hands the result to `done`.
//
// Forwarded messages travel through the network's Transport, so each hop
// arrives after its link latency: `delay` stays the paper's hop count
// (depth in the forwarding tree) while `latency` is the simulated arrival
// time relative to the search's start. Under ConstantHop on a fresh
// simulator the two coincide exactly.
struct Search {
  fissione::FissioneNetwork* net;
  sim::Simulator* sim;
  std::vector<FrtSearchClass> classes;
  std::function<void(PeerId, RangeQueryResult&)> on_destination;
  std::function<void(RangeQueryResult)> done;
  RangeQueryResult result;
  sim::Time start = 0.0;
  std::uint64_t pending = 0;
  std::uint64_t shed_destinations = 0;

  // Exact destination count of the subtree rooted at (b, aligned_len): a
  // structural recursion over the overlay graph, no messages. Sibling
  // branches partition the target space, so this is precisely what an
  // admission shed of the branch gives up.
  std::uint64_t subtree_destinations(const FrtSearchClass& cls, PeerId b,
                                     std::size_t aligned_len) const {
    const fissione::Peer& peer = net->peer(b);
    const std::size_t len = peer.peer_id.length();
    if (aligned_len == len) {
      return 1;
    }
    std::uint64_t total = 0;
    for (PeerId c : peer.out_neighbors) {
      const KautzString& cid = net->peer(c).peer_id;
      const std::size_t m = cid.length() + 1 - len;
      const KautzString aligned = cid.suffix(aligned_len + m);
      if (cls.viable(aligned)) {
        total += subtree_destinations(cls, c, aligned_len + m);
      }
    }
    return total;
  }

  void step(const std::shared_ptr<Search>& self, std::size_t cls_idx, PeerId b,
            std::size_t aligned_len, std::uint32_t hops) {
    const FrtSearchClass& cls = classes[cls_idx];
    const fissione::Peer& peer = net->peer(b);
    const std::size_t len = peer.peer_id.length();
    if (aligned_len == len) {
      // The whole PeerID prefixes a viable target leaf: destination.
      result.destinations.push_back(b);
      ++result.stats.dest_peers;
      result.stats.delay =
          std::max(result.stats.delay, static_cast<double>(hops));
      result.stats.latency =
          std::max(result.stats.latency, sim->now() - start);
      on_destination(b, result);
      return;
    }
    ARMADA_CHECK(aligned_len < len);
    net::Transport& transport = net->transport();
    for (PeerId c : peer.out_neighbors) {
      const KautzString& cid = net->peer(c).peer_id;
      // C = u2...ub ++ Y with |Y| = m in {0,1,2} (neighborhood invariant).
      ARMADA_CHECK(cid.length() + 1 >= len);
      const std::size_t m = cid.length() + 1 - len;
      const KautzString aligned = cid.suffix(aligned_len + m);
      if (!cls.viable(aligned)) {
        continue;
      }
      if (transport.should_shed(*sim, c, net::TrafficClass::kQuery)) {
        // Admission refused: the whole branch degrades into a partial
        // answer carrying exactly the destinations it would have reached.
        transport.record_shed();
        ++result.stats.shed;
        shed_destinations += subtree_destinations(cls, c, aligned_len + m);
        continue;
      }
      sim::Time not_before = 0.0;
      const sim::Time backoff = transport.backoff_delay(*sim, c);
      if (backoff > 0.0) {
        not_before = sim->now() + backoff;
      }
      ++result.stats.messages;
      result.stats.bytes_on_wire += transport.default_message_bytes();
      ++pending;
      transport.deliver(
          *sim, b, c, transport.default_message_bytes(),
          [self, cls_idx, c, al = aligned_len + m, hops](sim::Time qd) {
            self->net->record_service(c);
            self->result.stats.queue_delay += qd;
            self->step(self, cls_idx, c, al, hops + 1);
            self->complete();
          },
          not_before, net::TrafficClass::kQuery);
    }
  }

  // Callers hold the context alive via their captured shared_ptr for the
  // whole call, including the final `done` callback.
  void complete() {
    ARMADA_CHECK(pending > 0);
    if (--pending > 0) {
      return;
    }
    const std::uint64_t reached = result.stats.dest_peers;
    result.stats.coverage =
        shed_destinations == 0
            ? 1.0
            : static_cast<double>(reached) /
                  static_cast<double>(reached + shed_destinations);
    done(std::move(result));
  }
};

}  // namespace

void FrtSearch::run_async(
    sim::Simulator& sim, PeerId issuer, std::vector<FrtSearchClass> classes,
    std::function<void(PeerId, RangeQueryResult&)> on_destination,
    std::function<void(RangeQueryResult)> done) const {
  for (const FrtSearchClass& cls : classes) {
    ARMADA_CHECK_MSG(!cls.com_t.empty(), "search class without common prefix");
  }
  auto search = std::make_shared<Search>();
  search->net = &net_;
  search->sim = &sim;
  search->classes = std::move(classes);
  search->on_destination = std::move(on_destination);
  search->done = std::move(done);
  search->start = sim.now();
  if (search->classes.empty()) {
    // Nothing to search; still complete from an event so `done` always
    // runs inside the simulation.
    ++search->pending;
    sim.schedule_at(sim.now(), [search] { search->complete(); });
    return;
  }
  const KautzString& issuer_id = net_.peer(issuer).peer_id;
  for (std::size_t i = 0; i < search->classes.size(); ++i) {
    const std::size_t j0 =
        start_alignment(issuer_id, search->classes[i].com_t);
    ++search->pending;
    sim.schedule_at(sim.now(), [search, i, issuer, j0] {
      search->step(search, i, issuer, j0, 0);
      search->complete();
    });
  }
}

RangeQueryResult FrtSearch::run(
    PeerId issuer, const std::vector<FrtSearchClass>& classes,
    const std::function<void(PeerId, RangeQueryResult&)>& on_destination)
    const {
  RangeQueryResult result;
  sim::Simulator sim;
  run_async(sim, issuer, classes, on_destination,
            [&result](RangeQueryResult r) { result = std::move(r); });
  sim.run();
  return result;
}

}  // namespace armada::core
