// Explicit forward routing tree (FRT) model (paper §4.2, Figure 4).
//
// The FRT of peer P = u1...ub has b+1 levels: level i < b holds every peer
// whose PeerID starts with the length-(b-i) suffix of P, level b holds every
// peer whose PeerID does not start with ub. Children of a node are its
// FISSIONE out-neighbors sorted by PeerID. PIRA never materializes this
// tree; this model exists to validate the paper's structural claims (level
// membership, height = |PeerID|, destination level b-f) and to compute
// delay bounds in the analysis bench.
#pragma once

#include <vector>

#include "fissione/network.h"
#include "kautz/kautz_region.h"

namespace armada::core {

class ForwardRoutingTree {
 public:
  ForwardRoutingTree(const fissione::FissioneNetwork& net,
                     fissione::PeerId root);

  fissione::PeerId root() const { return root_; }
  /// Height b = |PeerID(root)|; the tree has height()+1 levels.
  std::size_t height() const { return levels_.size() - 1; }
  /// Peers at level i (see class comment).
  const std::vector<fissione::PeerId>& level(std::size_t i) const;

  /// The level where every destination of a common-prefix region lives:
  /// b - |ComS| (paper §4.2).
  std::size_t destination_level(const kautz::KautzRegion& region) const;

 private:
  const fissione::FissioneNetwork& net_;
  fissione::PeerId root_;
  std::vector<std::vector<fissione::PeerId>> levels_;
};

}  // namespace armada::core
