// k-nearest-neighbor queries over Armada (extension; the paper's related
// work cites NR-tree's kNN support as a capability Armada could host).
//
// Interval preservation makes kNN an expanding-zone walk: route to the zone
// containing the query value, then alternately annex the nearest unexplored
// zone above or below until the k-th best candidate is provably closer than
// anything outside the explored interval.
#pragma once

#include <functional>

#include "armada/range_query.h"
#include "fissione/network.h"
#include "kautz/partition_tree.h"

namespace armada::core {

struct KnnResult {
  sim::QueryStats stats;
  /// Handles of the k nearest objects, ascending by distance to the query.
  std::vector<std::uint64_t> handles;
};

class Knn {
 public:
  Knn(const fissione::FissioneNetwork& net, const kautz::PartitionTree& tree);

  using ValueFn = std::function<double(const fissione::StoredObject&)>;

  KnnResult query(fissione::PeerId issuer, double q, std::size_t k,
                  const ValueFn& value_of) const;

 private:
  const fissione::FissioneNetwork& net_;
  kautz::PartitionTree tree_;
};

}  // namespace armada::core
