// Result types shared by Armada's range-query algorithms.
#pragma once

#include <cstdint>
#include <vector>

#include "fissione/types.h"
#include "sim/metrics.h"

namespace armada::core {

/// Outcome of a PIRA/MIRA query.
struct RangeQueryResult {
  sim::QueryStats stats;
  /// Peers that received the query and scanned local storage, in arrival
  /// order. Each destination receives the query exactly once.
  std::vector<fissione::PeerId> destinations;
  /// Payload handles of matching objects.
  std::vector<std::uint64_t> matches;
};

}  // namespace armada::core
