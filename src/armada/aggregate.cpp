#include "armada/aggregate.h"

#include <algorithm>

#include "util/check.h"

namespace armada::core {

double AggregateResult::mean() const {
  ARMADA_CHECK(count > 0);
  return sum / static_cast<double>(count);
}

Aggregate::Aggregate(fissione::FissioneNetwork& net,
                     const kautz::PartitionTree& tree)
    : net_(net), pira_(net, tree) {}

AggregateResult Aggregate::range_aggregate(fissione::PeerId issuer, double lo,
                                           double hi,
                                           const ValueFn& value_of) const {
  AggregateResult agg;
  const RangeQueryResult r = pira_.query(
      issuer, lo, hi, [&agg, &value_of, lo, hi](const fissione::StoredObject& obj) {
        const double v = value_of(obj);
        if (v < lo || v > hi) {
          return false;
        }
        if (agg.count == 0) {
          agg.min = v;
          agg.max = v;
        } else {
          agg.min = std::min(agg.min, v);
          agg.max = std::max(agg.max, v);
        }
        ++agg.count;
        agg.sum += v;
        return false;  // fold locally; never ship the record
      });
  agg.stats = r.stats;
  // One folded reply flows back over every forward edge; a record-shipping
  // scheme would instead return `count` records end-to-end.
  agg.reply_messages = r.stats.messages;
  agg.records_avoided = agg.count;
  return agg;
}

}  // namespace armada::core
