#include "rq/scrap.h"

#include <algorithm>

#include "net/routed_overlay.h"
#include "util/check.h"

namespace armada::rq {

using sfc::Cell;
using skipgraph::NodeId;

Scrap::Scrap(const skipgraph::SkipGraph& graph, Config config)
    : graph_(graph), config_(config), store_(graph.num_nodes()) {
  ARMADA_CHECK(config_.order >= 1 && config_.order <= 26);
  ARMADA_CHECK(config_.min_side_bits <= config_.order);
  ARMADA_CHECK(config_.domain.size() == 2);
  const double total = std::exp2(2.0 * config_.order);
  for (NodeId id = 0; id < graph_.num_nodes(); ++id) {
    ARMADA_CHECK(graph_.key(id) >= 0.0 && graph_.key(id) < total);
  }
}

Cell Scrap::cell_of(const std::vector<double>& p) const {
  ARMADA_CHECK(p.size() == 2);
  Cell cell;
  const std::uint64_t side = 1ull << config_.order;
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& iv = config_.domain[i];
    ARMADA_CHECK(p[i] >= iv.lo && p[i] <= iv.hi);
    const auto c = static_cast<std::uint64_t>(
        (p[i] - iv.lo) / (iv.hi - iv.lo) * static_cast<double>(side));
    (i == 0 ? cell.x : cell.y) = std::min(c, side - 1);
  }
  return cell;
}

std::uint64_t Scrap::publish(const std::vector<double>& point) {
  const std::uint64_t handle = points_.size();
  points_.push_back(point);
  const std::uint64_t idx =
      sfc::curve_index(config_.curve, config_.order, cell_of(point));
  store_[graph_.owner_of(static_cast<double>(idx))].emplace_back(idx, handle);
  return handle;
}

const std::vector<double>& Scrap::point(std::uint64_t handle) const {
  ARMADA_CHECK(handle < points_.size());
  return points_[handle];
}

core::RangeQueryResult Scrap::query(NodeId issuer,
                                    const kautz::Box& box) const {
  ARMADA_CHECK(box.size() == 2);
  core::RangeQueryResult result;
  const Cell lo = cell_of({box[0].lo, box[1].lo});
  const Cell hi = cell_of({box[0].hi, box[1].hi});
  const auto segments =
      sfc::box_ranges(config_.curve, config_.order, lo.x, hi.x, lo.y, hi.y,
                      config_.min_side_bits);

  std::vector<char> visited(graph_.num_nodes(), 0);
  auto visit = [&](NodeId node, const sfc::IndexRange& seg) {
    if (!visited[node]) {
      visited[node] = 1;
      result.destinations.push_back(node);
      ++result.stats.dest_peers;
    }
    for (const auto& [idx, handle] : store_[node]) {
      if (idx < seg.first || idx >= seg.last) {
        continue;
      }
      const auto& p = points_[handle];
      bool inside = true;
      for (std::size_t i = 0; i < 2; ++i) {
        inside = inside && p[i] >= box[i].lo && p[i] <= box[i].hi;
      }
      if (inside) {
        result.matches.push_back(handle);
        ++result.stats.results;
      }
    }
  };

  // Segments are dispatched concurrently: messages sum across segments,
  // delay/latency take the max over segment branches.
  sim::QueryStats fan;
  for (const sfc::IndexRange& seg : segments) {
    // Search the segment start, then walk successors across it.
    const auto s = graph_.search(issuer, static_cast<double>(seg.first));
    sim::QueryStats branch = s.stats;
    NodeId cur = s.node;
    visit(cur, seg);
    NodeId nxt = graph_.next(cur);
    while (nxt != skipgraph::kNoNode &&
           graph_.key(nxt) < static_cast<double>(seg.last)) {
      overlay::step(branch, graph_.transport(), cur, nxt);
      cur = nxt;
      visit(cur, seg);
      nxt = graph_.next(cur);
    }
    overlay::fan_in(fan, branch);
  }
  overlay::chain(result.stats, fan);
  return result;
}

}  // namespace armada::rq
