// PHT — Prefix Hash Tree (Chawathe et al., SIGCOMM'05): range queries
// layered over *any* DHT (paper Table 1, the only other constant-degree-
// capable general scheme).
//
// Keys are fixed-width binary strings; the trie node with label L lives at
// the DHT peer owning hash(L). Every trie-node visit costs one full DHT
// routing, so a range query over a subtrie of depth b costs O(b * logN)
// delay on a constant-degree DHT — the Table 1 entry PIRA improves on.
//
// The trie itself is maintained here (the simulator's stand-in for the
// DHT-stored node blocks); the pluggable LookupFn charges the routing cost
// of each node access on the caller's DHT.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "armada/range_query.h"
#include "kautz/partition_tree.h"

namespace armada::rq {

class Pht {
 public:
  struct Config {
    std::uint32_t key_bits = 16;     ///< fixed key width D
    std::size_t leaf_capacity = 8;   ///< B: max keys per leaf
    kautz::Interval domain{0.0, 1000.0};
  };

  /// Cost of one DHT lookup of the given trie-node label, issued by the
  /// querying client, in the shared query-stats currency: messages and
  /// delay are the routing hop count, latency is the transport-priced
  /// arrival time on the caller's DHT. Chord-backed callers return
  /// `route(...).stats`; FISSIONE-backed callers convert a RouteResult via
  /// their own hops/latency; unit-cost tests use flat_cost().
  using LookupFn = std::function<sim::QueryStats(const std::string& label)>;

  /// A model-free lookup cost: `hops` messages, delay and latency all equal
  /// (one time unit per hop) — the paper's cost for a DHT get.
  static sim::QueryStats flat_cost(std::uint32_t hops);

  Pht(Config config, LookupFn lookup);

  /// Quantized key of a value (public for tests).
  std::uint64_t key_of(double value) const;

  /// Insert (bulk load; maintenance traffic is not metered).
  std::uint64_t publish(double value);
  double value(std::uint64_t handle) const;

  /// Range query [lo, hi]: parallel recursive traversal of the subtrie;
  /// delay = deepest chain of lookups, messages = total routing hops.
  core::RangeQueryResult query(double lo, double hi) const;

  /// Exact-match lookup via PHT's binary search over prefix lengths
  /// (O(log D) DHT gets instead of D for linear descent).
  struct PointLookup {
    std::vector<std::uint64_t> handles;  ///< objects with the same key
    std::uint32_t probes = 0;            ///< DHT gets issued
    /// Sequential probe chain: messages/delay/latency sum over the probes.
    sim::QueryStats stats;
  };
  PointLookup lookup(double value) const;

  std::size_t num_trie_nodes() const { return nodes_.size(); }
  std::size_t max_depth() const;
  /// Trie structure checks: leaf capacities, label consistency.
  void check_invariants() const;

 private:
  struct TrieNode {
    bool leaf = true;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> keys;  // (key, handle)
  };

  // Smallest / largest key under a label.
  std::uint64_t label_min(const std::string& label) const;
  std::uint64_t label_max(const std::string& label) const;
  void split_leaf(const std::string& label);
  // Cost fragment of one subtrie visit: this node's DHT lookup chained with
  // the concurrent fan over its children (delay/latency max over branches).
  sim::QueryStats visit(const std::string& label, std::uint64_t klo,
                        std::uint64_t khi, core::RangeQueryResult& out) const;

  Config config_;
  LookupFn lookup_;
  std::map<std::string, TrieNode> nodes_;
  std::vector<double> values_;
};

}  // namespace armada::rq
