// Native Skip Graph range queries (paper Table 1, "Skip Graph, SkipNet").
//
// Peers range-partition the attribute space by their keys; a query searches
// the start of the range in O(log N) and then walks level-0 successors.
// Delay is O(log N + n): the walk is sequential, so — unlike PIRA — delay
// grows with the size of the answer.
#pragma once

#include <cstdint>
#include <vector>

#include "armada/range_query.h"
#include "kautz/partition_tree.h"
#include "skipgraph/skipgraph.h"

namespace armada::rq {

class SkipGraphRangeIndex {
 public:
  /// `graph` keys must lie inside `domain`.
  SkipGraphRangeIndex(const skipgraph::SkipGraph& graph,
                      kautz::Interval domain);

  /// Publish a value at the peer owning it (greatest peer key <= value).
  std::uint64_t publish(double value);
  double value(std::uint64_t handle) const;

  core::RangeQueryResult query(skipgraph::NodeId issuer, double lo,
                               double hi) const;

  /// Ground truth: peers whose key interval intersects [lo, hi].
  std::vector<skipgraph::NodeId> expected_destinations(double lo,
                                                       double hi) const;

 private:
  const skipgraph::SkipGraph& graph_;
  kautz::Interval domain_;
  std::vector<std::vector<std::pair<double, std::uint64_t>>> store_;
  std::vector<double> values_;
};

}  // namespace armada::rq
