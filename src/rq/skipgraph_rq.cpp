#include "rq/skipgraph_rq.h"

#include "net/routed_overlay.h"
#include "util/check.h"

namespace armada::rq {

using skipgraph::NodeId;

SkipGraphRangeIndex::SkipGraphRangeIndex(const skipgraph::SkipGraph& graph,
                                         kautz::Interval domain)
    : graph_(graph), domain_(domain), store_(graph.num_nodes()) {
  ARMADA_CHECK(domain_.lo < domain_.hi);
  for (NodeId id = 0; id < graph_.num_nodes(); ++id) {
    ARMADA_CHECK(graph_.key(id) >= domain_.lo && graph_.key(id) <= domain_.hi);
  }
}

std::uint64_t SkipGraphRangeIndex::publish(double value) {
  ARMADA_CHECK(value >= domain_.lo && value <= domain_.hi);
  const std::uint64_t handle = values_.size();
  values_.push_back(value);
  store_[graph_.owner_of(value)].emplace_back(value, handle);
  return handle;
}

double SkipGraphRangeIndex::value(std::uint64_t handle) const {
  ARMADA_CHECK(handle < values_.size());
  return values_[handle];
}

core::RangeQueryResult SkipGraphRangeIndex::query(NodeId issuer, double lo,
                                                  double hi) const {
  ARMADA_CHECK(lo <= hi);
  core::RangeQueryResult result;

  // O(log N) search to the start of the range...
  const skipgraph::SkipSearch s = graph_.search(issuer, lo);
  sim::QueryStats walk = s.stats;

  // ...then a sequential successor walk across the answer, each step priced
  // through the graph's transport. The search endpoint owns
  // [its key, next key) — always a destination, even when the whole query
  // lies below the first peer key.
  auto visit = [&](NodeId node) {
    result.destinations.push_back(node);
    ++result.stats.dest_peers;
    for (const auto& [value, handle] : store_[node]) {
      if (value >= lo && value <= hi) {
        result.matches.push_back(handle);
        ++result.stats.results;
      }
    }
  };
  NodeId cur = s.node;
  visit(cur);
  NodeId nxt = graph_.next(cur);
  while (nxt != skipgraph::kNoNode && graph_.key(nxt) <= hi) {
    overlay::step(walk, graph_.transport(), cur, nxt);
    cur = nxt;
    visit(cur);
    nxt = graph_.next(cur);
  }
  overlay::chain(result.stats, walk);
  return result;
}

std::vector<NodeId> SkipGraphRangeIndex::expected_destinations(
    double lo, double hi) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < graph_.num_nodes(); ++id) {
    const double start = graph_.key(id);
    const NodeId nxt = graph_.next(id);
    const double end =
        nxt == skipgraph::kNoNode ? domain_.hi : graph_.key(nxt);
    const bool first = id == 0;
    // Peer covers [start, end) — and everything below for the first peer.
    const double cover_lo = first ? domain_.lo : start;
    if (cover_lo <= hi && lo < end) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace armada::rq
