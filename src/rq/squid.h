// Squid (Schmidt & Parashar): multi-attribute range queries on Chord via
// Hilbert-curve clusters (paper Table 1 row; delay O(h * logN)).
//
// Points map through a Hilbert curve onto the Chord ring. A query box is
// recursively refined into curve clusters (quadtree squares); entering each
// cluster costs one Chord routing, and a fully-covered cluster is resolved
// by walking the ring segment. The refinement depth h depends on the query
// and the space — exactly the term that makes Squid's delay unbounded
// compared with Armada.
#pragma once

#include <cstdint>
#include <vector>

#include "armada/range_query.h"
#include "chord/chord.h"
#include "kautz/partition_tree.h"
#include "sfc/sfc_region.h"

namespace armada::rq {

class Squid {
 public:
  struct Config {
    std::uint32_t order = 16;          ///< Hilbert order per attribute
    std::uint32_t min_side_bits = 8;   ///< refinement cutoff (over-approx below)
    kautz::Box domain{{0.0, 1000.0}, {0.0, 1000.0}};  ///< two attributes
  };

  Squid(const chord::ChordNetwork& net, Config config);

  std::uint64_t publish(const std::vector<double>& point);
  const std::vector<double>& point(std::uint64_t handle) const;

  core::RangeQueryResult query(chord::NodeId issuer,
                               const kautz::Box& box) const;

  /// Cell coordinates of a point (public for tests).
  sfc::Cell cell_of(const std::vector<double>& point) const;

 private:
  chord::Key ring_key(std::uint64_t hilbert_index) const;
  // Walk the ring owners of curve segment [first, last); returns the walk's
  // cost fragment (messages == delay == successor hops, latency priced per
  // link through the Chord transport).
  sim::QueryStats collect_segment(chord::NodeId entry, std::uint64_t first,
                                  std::uint64_t last, const kautz::Box& box,
                                  std::vector<char>& visited,
                                  core::RangeQueryResult& out) const;
  // Cost fragment of one cluster visit: the Chord routing into the cluster,
  // then either the segment walk or the concurrent fan over sub-clusters
  // (delay/latency take the max over branches).
  sim::QueryStats refine(chord::NodeId from, sfc::Cell corner,
                         std::uint32_t side_bits, std::uint64_t x_lo,
                         std::uint64_t x_hi, std::uint64_t y_lo,
                         std::uint64_t y_hi, const kautz::Box& box,
                         std::vector<char>& visited,
                         core::RangeQueryResult& out) const;

  const chord::ChordNetwork& net_;
  Config config_;
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      store_;  // per node: (hilbert index, handle)
  std::vector<std::vector<double>> points_;
};

}  // namespace armada::rq
