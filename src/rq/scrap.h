// SCRAP (Ganesan et al., WebDB'04): multi-attribute range queries by
// linearizing with a space-filling curve and range-partitioning the 1-d key
// space over a Skip Graph (paper Table 1 row; delay O(logN + n)).
//
// A query box decomposes into contiguous curve segments; each segment is a
// skip-graph search plus a successor walk. Segments are dispatched in
// parallel, so delay = max over segments, messages = sum.
#pragma once

#include <cstdint>
#include <vector>

#include "armada/range_query.h"
#include "kautz/partition_tree.h"
#include "sfc/sfc_region.h"
#include "skipgraph/skipgraph.h"

namespace armada::rq {

class Scrap {
 public:
  struct Config {
    std::uint32_t order = 16;         ///< curve order per attribute
    std::uint32_t min_side_bits = 8;  ///< decomposition cutoff
    sfc::Curve curve = sfc::Curve::kMorton;  ///< SCRAP's classic choice
    kautz::Box domain{{0.0, 1000.0}, {0.0, 1000.0}};
  };

  /// `graph` keys must lie in [0, 4^order) — curve positions of the peers.
  Scrap(const skipgraph::SkipGraph& graph, Config config);

  std::uint64_t publish(const std::vector<double>& point);
  const std::vector<double>& point(std::uint64_t handle) const;

  core::RangeQueryResult query(skipgraph::NodeId issuer,
                               const kautz::Box& box) const;

  sfc::Cell cell_of(const std::vector<double>& point) const;

 private:
  const skipgraph::SkipGraph& graph_;
  Config config_;
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> store_;
  std::vector<std::vector<double>> points_;
};

}  // namespace armada::rq
