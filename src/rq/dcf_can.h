// DCF-CAN: single-attribute range queries on CAN via directed controlled
// flooding (Andrzejak & Xu, "Scalable, Efficient Range Queries for Grid
// Information Services", P2P 2002) — the baseline of the paper's Figures
// 5-8.
//
// The attribute interval maps onto CAN's 2-d space through a Hilbert curve,
// so a value range becomes a contiguous curve segment: a connected set of
// zones. A query first routes to the zone owning the range's median value
// (O(sqrt(N)) hops for d=2), then floods outward over zones intersecting
// the segment; receivers suppress duplicates but every transmission counts.
// Delay therefore grows with both N and the queried range — the behaviour
// PIRA's delay bound eliminates.
#pragma once

#include <cstdint>
#include <vector>

#include "armada/range_query.h"
#include "can/can_network.h"
#include "kautz/partition_tree.h"
#include "sfc/sfc_region.h"

namespace armada::rq {

class DcfCan {
 public:
  struct Config {
    std::uint32_t order = 20;  ///< Hilbert grid order (cells per side 2^order)
    kautz::Interval domain{0.0, 1000.0};
  };

  /// The network reference is mutable solely for the transport's queueing
  /// delivery path; the overlay structure is never modified.
  DcfCan(can::CanNetwork& net, Config config);

  /// Publish a value; returns its handle.
  std::uint64_t publish(double value);
  double value(std::uint64_t handle) const;

  /// Range query [lo, hi]: route to median, flood the mapped segment.
  core::RangeQueryResult query(can::NodeId issuer, double lo, double hi) const;

  /// Ground truth for tests: zones intersecting the mapped segment.
  std::vector<can::NodeId> expected_destinations(double lo, double hi) const;

  /// Curve position of a value (public for tests/ablation).
  std::uint64_t value_to_index(double v) const;
  /// Hilbert index ranges of a node's zone (1-2 ranges, precomputed).
  const std::vector<sfc::IndexRange>& zone_ranges(can::NodeId id) const;

 private:
  sfc::IndexRange query_range(double lo, double hi) const;
  bool zone_intersects(can::NodeId id, const sfc::IndexRange& r) const;
  void cell_center(std::uint64_t index, double* x, double* y) const;

  can::CanNetwork& net_;
  Config config_;
  std::vector<std::vector<sfc::IndexRange>> zone_ranges_;
  std::vector<std::vector<std::pair<double, std::uint64_t>>> store_;
  std::vector<double> values_;
};

}  // namespace armada::rq
