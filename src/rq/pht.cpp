#include "rq/pht.h"

#include <algorithm>

#include "net/routed_overlay.h"
#include "util/check.h"

namespace armada::rq {

sim::QueryStats Pht::flat_cost(std::uint32_t hops) {
  sim::QueryStats cost;
  cost.messages = hops;
  cost.delay = hops;
  cost.latency = hops;
  return cost;
}

Pht::Pht(Config config, LookupFn lookup)
    : config_(config), lookup_(std::move(lookup)) {
  ARMADA_CHECK(config_.key_bits >= 1 && config_.key_bits <= 62);
  ARMADA_CHECK(config_.leaf_capacity >= 1);
  ARMADA_CHECK(config_.domain.lo < config_.domain.hi);
  nodes_[""] = TrieNode{};  // root starts as an empty leaf
}

std::uint64_t Pht::key_of(double value) const {
  ARMADA_CHECK(value >= config_.domain.lo && value <= config_.domain.hi);
  const double span = config_.domain.hi - config_.domain.lo;
  const std::uint64_t total = 1ull << config_.key_bits;
  const auto k = static_cast<std::uint64_t>(
      (value - config_.domain.lo) / span * static_cast<double>(total));
  return std::min(k, total - 1);
}

std::uint64_t Pht::label_min(const std::string& label) const {
  std::uint64_t k = 0;
  for (char c : label) {
    k = (k << 1) | static_cast<std::uint64_t>(c - '0');
  }
  return k << (config_.key_bits - label.size());
}

std::uint64_t Pht::label_max(const std::string& label) const {
  const std::uint64_t width = config_.key_bits - label.size();
  return label_min(label) + ((1ull << width) - 1);
}

std::uint64_t Pht::publish(double value) {
  const std::uint64_t handle = values_.size();
  values_.push_back(value);
  const std::uint64_t key = key_of(value);

  // Descend to the leaf whose label prefixes the key.
  std::string label;
  while (!nodes_.at(label).leaf) {
    const std::uint64_t bit =
        (key >> (config_.key_bits - 1 - label.size())) & 1;
    label.push_back(bit != 0u ? '1' : '0');
  }
  nodes_.at(label).keys.emplace_back(key, handle);
  if (nodes_.at(label).keys.size() > config_.leaf_capacity &&
      label.size() < config_.key_bits) {
    split_leaf(label);
  }
  return handle;
}

void Pht::split_leaf(const std::string& label) {
  TrieNode& node = nodes_.at(label);
  ARMADA_CHECK(node.leaf);
  TrieNode zero;
  TrieNode one;
  const std::uint64_t bit_pos = config_.key_bits - 1 - label.size();
  for (const auto& entry : node.keys) {
    (((entry.first >> bit_pos) & 1) != 0u ? one : zero)
        .keys.push_back(entry);
  }
  node.leaf = false;
  node.keys.clear();
  nodes_[label + "0"] = std::move(zero);
  nodes_[label + "1"] = std::move(one);
  // Cascade while a child still overflows (duplicate-heavy data can pile up
  // in one child; stop at full key width).
  for (const char* c : {"0", "1"}) {
    const std::string child = label + c;
    if (nodes_.at(child).keys.size() > config_.leaf_capacity &&
        child.size() < config_.key_bits) {
      split_leaf(child);
    }
  }
}

double Pht::value(std::uint64_t handle) const {
  ARMADA_CHECK(handle < values_.size());
  return values_[handle];
}

sim::QueryStats Pht::visit(const std::string& label, std::uint64_t klo,
                           std::uint64_t khi,
                           core::RangeQueryResult& out) const {
  // One DHT routing to read this trie node.
  sim::QueryStats cost = lookup_(label);

  const TrieNode& node = nodes_.at(label);
  if (node.leaf) {
    ++out.stats.dest_peers;
    for (const auto& [key, handle] : node.keys) {
      if (key >= klo && key <= khi) {
        out.matches.push_back(handle);
        ++out.stats.results;
      }
    }
    return cost;
  }
  // Both qualifying children are visited concurrently: messages sum,
  // delay/latency take the deepest branch chain.
  sim::QueryStats fan;
  for (const char* c : {"0", "1"}) {
    const std::string child = label + c;
    if (label_min(child) <= khi && label_max(child) >= klo) {
      overlay::fan_in(fan, visit(child, klo, khi, out));
    }
  }
  overlay::chain(cost, fan);
  return cost;
}

core::RangeQueryResult Pht::query(double lo, double hi) const {
  ARMADA_CHECK(lo <= hi);
  core::RangeQueryResult result;
  overlay::chain(result.stats, visit("", key_of(lo), key_of(hi), result));
  return result;
}

Pht::PointLookup Pht::lookup(double value) const {
  const std::uint64_t key = key_of(value);
  std::string key_bits;
  key_bits.reserve(config_.key_bits);
  for (std::uint32_t i = 0; i < config_.key_bits; ++i) {
    key_bits.push_back(
        ((key >> (config_.key_bits - 1 - i)) & 1) != 0u ? '1' : '0');
  }

  PointLookup result;
  // Binary search over prefix lengths: an existing internal node means the
  // leaf is deeper; a missing node means it is shallower.
  std::uint32_t lo = 0;
  std::uint32_t hi = config_.key_bits;
  while (true) {
    const std::uint32_t mid = (lo + hi) / 2;
    const std::string label = key_bits.substr(0, mid);
    ++result.probes;
    // Probes are issued sequentially by the client: costs chain.
    overlay::chain(result.stats, lookup_(label));
    const auto it = nodes_.find(label);
    if (it == nodes_.end()) {
      ARMADA_CHECK(mid > 0);
      hi = mid - 1;
    } else if (!it->second.leaf) {
      lo = mid + 1;
    } else {
      for (const auto& [k, handle] : it->second.keys) {
        if (k == key) {
          result.handles.push_back(handle);
        }
      }
      return result;
    }
    ARMADA_CHECK_MSG(lo <= hi, "binary search failed to find a leaf");
  }
}

std::size_t Pht::max_depth() const {
  std::size_t depth = 0;
  for (const auto& [label, node] : nodes_) {
    if (node.leaf) {
      depth = std::max(depth, label.size());
    }
  }
  return depth;
}

void Pht::check_invariants() const {
  for (const auto& [label, node] : nodes_) {
    if (!node.leaf) {
      ARMADA_CHECK(node.keys.empty());
      ARMADA_CHECK(nodes_.contains(label + "0"));
      ARMADA_CHECK(nodes_.contains(label + "1"));
      continue;
    }
    ARMADA_CHECK_MSG(
        node.keys.size() <= config_.leaf_capacity ||
            label.size() == config_.key_bits,
        "oversized leaf " << label);
    for (const auto& [key, handle] : node.keys) {
      ARMADA_CHECK(key >= label_min(label) && key <= label_max(label));
      ARMADA_CHECK(handle < values_.size());
    }
  }
}

}  // namespace armada::rq
