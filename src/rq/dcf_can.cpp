#include "rq/dcf_can.h"

#include <algorithm>
#include <functional>

#include "sim/event_queue.h"
#include "util/check.h"

namespace armada::rq {

using can::NodeId;
using sfc::Cell;
using sfc::IndexRange;

DcfCan::DcfCan(can::CanNetwork& net, Config config)
    : net_(net), config_(config), store_(net.num_nodes()) {
  ARMADA_CHECK(config_.order >= 1 && config_.order <= 31);
  ARMADA_CHECK(config_.domain.lo < config_.domain.hi);
  // Zones are static after construction: precompute their index ranges.
  zone_ranges_.reserve(net_.num_nodes());
  for (NodeId id = 0; id < net_.num_nodes(); ++id) {
    const can::Zone& z = net_.zone(id);
    ARMADA_CHECK_MSG(z.x_bits <= config_.order && z.y_bits <= config_.order,
                     "grid order too small for zone depth");
    const Cell corner{z.x_num << (config_.order - z.x_bits),
                      z.y_num << (config_.order - z.y_bits)};
    zone_ranges_.push_back(
        sfc::rect_ranges(sfc::Curve::kHilbert, config_.order, corner,
                         config_.order - z.x_bits, config_.order - z.y_bits));
  }
}

std::uint64_t DcfCan::value_to_index(double v) const {
  ARMADA_CHECK(v >= config_.domain.lo && v <= config_.domain.hi);
  const double span = config_.domain.hi - config_.domain.lo;
  const double scaled = (v - config_.domain.lo) / span;
  const std::uint64_t total = 1ull << (2 * config_.order);
  const auto idx = static_cast<std::uint64_t>(scaled * static_cast<double>(total));
  return std::min(idx, total - 1);
}

void DcfCan::cell_center(std::uint64_t index, double* x, double* y) const {
  const Cell c = sfc::hilbert_cell(config_.order, index);
  const double side = static_cast<double>(1ull << config_.order);
  *x = (static_cast<double>(c.x) + 0.5) / side;
  *y = (static_cast<double>(c.y) + 0.5) / side;
}

std::uint64_t DcfCan::publish(double value) {
  const std::uint64_t handle = values_.size();
  values_.push_back(value);
  double x = 0.0;
  double y = 0.0;
  cell_center(value_to_index(value), &x, &y);
  store_[net_.node_at(x, y)].emplace_back(value, handle);
  return handle;
}

double DcfCan::value(std::uint64_t handle) const {
  ARMADA_CHECK(handle < values_.size());
  return values_[handle];
}

IndexRange DcfCan::query_range(double lo, double hi) const {
  ARMADA_CHECK(lo <= hi);
  return IndexRange{value_to_index(lo), value_to_index(hi) + 1};
}

const std::vector<IndexRange>& DcfCan::zone_ranges(NodeId id) const {
  ARMADA_CHECK(id < zone_ranges_.size());
  return zone_ranges_[id];
}

bool DcfCan::zone_intersects(NodeId id, const IndexRange& r) const {
  for (const IndexRange& zr : zone_ranges(id)) {
    if (zr.intersects(r)) {
      return true;
    }
  }
  return false;
}

core::RangeQueryResult DcfCan::query(NodeId issuer, double lo,
                                     double hi) const {
  core::RangeQueryResult result;
  const IndexRange qr = query_range(lo, hi);

  // Phase 1: greedy-route to the zone owning the median value.
  double mx = 0.0;
  double my = 0.0;
  cell_center((qr.first + qr.last - 1) / 2, &mx, &my);
  const can::CanRoute route = net_.route(issuer, mx, my);
  result.stats.messages += route.stats.messages;

  // Phase 2: directed controlled flooding over intersecting zones, run on
  // the discrete-event simulator so each transmission arrives after its
  // link latency. A zone acts on its *first* arrival (suppressing later
  // duplicates, though each transmission still costs a message) and floods
  // onward to every intersecting neighbor except the sender. Under the
  // default ConstantHop model arrivals order exactly like the classic BFS,
  // so hop depths, parents, message counts and visit order are unchanged.
  ARMADA_CHECK(zone_intersects(route.final_node, qr));
  sim::Simulator sim;
  std::vector<char> visited(net_.num_nodes(), 0);
  std::uint32_t max_depth = 0;
  double flood_latency = 0.0;

  std::function<void(NodeId, NodeId, std::uint32_t)> arrive =
      [&](NodeId z, NodeId from, std::uint32_t depth) {
        if (visited[z]) {
          return;  // duplicate; its message was charged at transmission
        }
        visited[z] = 1;
        max_depth = std::max(max_depth, depth);
        flood_latency = std::max(flood_latency, sim.now());
        result.destinations.push_back(z);
        ++result.stats.dest_peers;
        for (const auto& [value, handle] : store_[z]) {
          if (value >= lo && value <= hi) {
            result.matches.push_back(handle);
            ++result.stats.results;
          }
        }
        net::Transport& transport = net_.transport();
        for (NodeId n : net_.neighbors(z)) {
          if (n == from || !zone_intersects(n, qr)) {
            continue;
          }
          ++result.stats.messages;  // transmitted even if the receiver drops
          result.stats.bytes_on_wire += transport.default_message_bytes();
          // visited[] is monotone, so a receiver already visited at send
          // time is guaranteed to drop the arrival. On the propagation-only
          // path that event is a no-op and is skipped; with an active
          // queueing network the transmission still consumes egress
          // service, link bandwidth and a batch slot, so it must be sent
          // (arrive() drops it as a duplicate).
          if (!visited[n] || transport.queueing_active()) {
            transport.deliver(sim, z, n,
                              [&result, &arrive, n, z, depth](sim::Time qd) {
                                result.stats.queue_delay += qd;
                                arrive(n, z, depth + 1);
                              });
          }
        }
      };
  sim.schedule_at(
      0.0, [&arrive, &route] { arrive(route.final_node, can::kNoNode, 0); });
  sim.run();

  result.stats.delay = route.stats.delay + static_cast<double>(max_depth);
  result.stats.latency = route.stats.latency + flood_latency;
  return result;
}

std::vector<NodeId> DcfCan::expected_destinations(double lo, double hi) const {
  const IndexRange qr = query_range(lo, hi);
  std::vector<NodeId> out;
  for (NodeId id = 0; id < net_.num_nodes(); ++id) {
    if (zone_intersects(id, qr)) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace armada::rq
