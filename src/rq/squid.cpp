#include "rq/squid.h"

#include <algorithm>

#include "net/routed_overlay.h"
#include "util/check.h"

namespace armada::rq {

using chord::Key;
using chord::NodeId;
using sfc::Cell;

Squid::Squid(const chord::ChordNetwork& net, Config config)
    : net_(net), config_(config), store_(net.node_id_bound()) {
  ARMADA_CHECK(config_.order >= 1 && config_.order <= 31);
  ARMADA_CHECK(config_.min_side_bits <= config_.order);
  ARMADA_CHECK(config_.domain.size() == 2);
  for (const auto& iv : config_.domain) {
    ARMADA_CHECK(iv.lo < iv.hi);
  }
}

Cell Squid::cell_of(const std::vector<double>& p) const {
  ARMADA_CHECK(p.size() == 2);
  Cell cell;
  const std::uint64_t side = 1ull << config_.order;
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& iv = config_.domain[i];
    ARMADA_CHECK(p[i] >= iv.lo && p[i] <= iv.hi);
    const auto c = static_cast<std::uint64_t>(
        (p[i] - iv.lo) / (iv.hi - iv.lo) * static_cast<double>(side));
    (i == 0 ? cell.x : cell.y) = std::min(c, side - 1);
  }
  return cell;
}

Key Squid::ring_key(std::uint64_t hilbert_index) const {
  return hilbert_index << (64 - 2 * config_.order);
}

std::uint64_t Squid::publish(const std::vector<double>& point) {
  const std::uint64_t handle = points_.size();
  points_.push_back(point);
  const std::uint64_t idx = sfc::hilbert_index(config_.order, cell_of(point));
  store_[net_.owner_of(ring_key(idx))].emplace_back(idx, handle);
  return handle;
}

const std::vector<double>& Squid::point(std::uint64_t handle) const {
  ARMADA_CHECK(handle < points_.size());
  return points_[handle];
}

sim::QueryStats Squid::collect_segment(NodeId entry, std::uint64_t first,
                                       std::uint64_t last,
                                       const kautz::Box& box,
                                       std::vector<char>& visited,
                                       core::RangeQueryResult& out) const {
  // `entry` owns ring_key(first); successors own the rest of the segment.
  // The node owning the segment's tail has key >= the segment end.
  sim::QueryStats walk;
  NodeId cur = entry;
  const Key last_key = ring_key(last - 1);
  while (true) {
    if (!visited[cur]) {
      visited[cur] = 1;
      out.destinations.push_back(cur);
      ++out.stats.dest_peers;
    }
    // Scan per segment: segments are disjoint index windows, and one node
    // can serve several of them.
    for (const auto& [idx, handle] : store_[cur]) {
      if (idx >= first && idx < last) {
        const auto& p = points_[handle];
        bool inside = true;
        for (std::size_t i = 0; i < 2; ++i) {
          inside = inside && p[i] >= box[i].lo && p[i] <= box[i].hi;
        }
        if (inside) {
          out.matches.push_back(handle);
          ++out.stats.results;
        }
      }
    }
    if (chord::in_ring_range(net_.node_key(net_.predecessor_node(cur)),
                             net_.node_key(cur), last_key)) {
      break;  // cur owns the end of the segment
    }
    const NodeId succ = net_.successor_node(cur);
    overlay::step(walk, net_.transport(), cur, succ);
    cur = succ;
  }
  return walk;
}

sim::QueryStats Squid::refine(NodeId from, Cell corner,
                              std::uint32_t side_bits, std::uint64_t x_lo,
                              std::uint64_t x_hi, std::uint64_t y_lo,
                              std::uint64_t y_hi, const kautz::Box& box,
                              std::vector<char>& visited,
                              core::RangeQueryResult& out) const {
  const std::uint64_t size = 1ull << side_bits;
  const std::uint64_t sx_hi = corner.x + size - 1;
  const std::uint64_t sy_hi = corner.y + size - 1;
  if (corner.x > x_hi || sx_hi < x_lo || corner.y > y_hi || sy_hi < y_lo) {
    return {};
  }

  // Route to the peer owning the start of this cluster (one Chord routing).
  const sfc::IndexRange range =
      sfc::hilbert_square_range(config_.order, corner, side_bits);
  const chord::ChordRoute route = net_.route(from, ring_key(range.first));
  sim::QueryStats r = route.stats;

  const bool covered = corner.x >= x_lo && sx_hi <= x_hi && corner.y >= y_lo &&
                       sy_hi <= y_hi;
  if (covered || side_bits == config_.min_side_bits) {
    overlay::chain(r, collect_segment(route.owner, range.first, range.last,
                                      box, visited, out));
    return r;
  }

  // Refine: the owner dispatches the four sub-clusters concurrently.
  const std::uint64_t half = size / 2;
  sim::QueryStats fan;
  for (const Cell sub :
       {corner, Cell{corner.x + half, corner.y}, Cell{corner.x, corner.y + half},
        Cell{corner.x + half, corner.y + half}}) {
    overlay::fan_in(fan, refine(route.owner, sub, side_bits - 1, x_lo, x_hi,
                                y_lo, y_hi, box, visited, out));
  }
  overlay::chain(r, fan);
  return r;
}

core::RangeQueryResult Squid::query(NodeId issuer,
                                    const kautz::Box& box) const {
  ARMADA_CHECK(box.size() == 2);
  core::RangeQueryResult result;
  const Cell lo = cell_of({box[0].lo, box[1].lo});
  const Cell hi = cell_of({box[0].hi, box[1].hi});
  std::vector<char> visited(net_.node_id_bound(), 0);
  overlay::chain(result.stats,
                 refine(issuer, Cell{0, 0}, config_.order, lo.x, hi.x, lo.y,
                        hi.y, box, visited, result));
  return result;
}

}  // namespace armada::rq
