#include "obs/json_writer.h"

#include <cmath>
#include <cstdint>
#include <cstdio>

namespace armada::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  // Integral values print without a fraction or exponent so counters stay
  // readable; everything else gets round-trip precision.
  if (v == std::floor(v) && std::fabs(v) < 9007199254740992.0 /* 2^53 */) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void JsonWriter::key(std::string_view k) {
  if (!body_.empty()) {
    body_ += ',';
  }
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\":";
}

JsonWriter& JsonWriter::field(std::string_view k, std::string_view value) {
  key(k);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, double value) {
  key(k);
  body_ += json_number(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, long long value) {
  key(k);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", value);
  body_ += buf;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, unsigned long long value) {
  key(k);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", value);
  body_ += buf;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::field_raw(std::string_view k, std::string_view json) {
  key(k);
  body_ += json;
  return *this;
}

std::string JsonWriter::str() const {
  std::string out;
  out.reserve(body_.size() + 2);
  out += '{';
  out += body_;
  out += '}';
  return out;
}

bool write_text_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok && written != content.size()) {
    std::fclose(f);
  }
  return ok;
}

}  // namespace armada::obs
