// Shared JSON formatting for every machine-readable feed the repo emits:
// bench records (ARMADA_BENCH_JSON), trace exports, time-series samples,
// and slow-query dumps all go through this one escaping/number path.
#pragma once

#include <string>
#include <string_view>

namespace armada::obs {

/// Version stamped into every record; bump when a feed's shape changes so
/// downstream validators (tools/check_trace.py, the CI bench validator)
/// can reject mixed streams.
inline constexpr int kJsonSchemaVersion = 1;

/// Escapes `s` for inclusion inside a JSON string literal (no surrounding
/// quotes): `"` and `\` are backslash-escaped, control characters become
/// \uXXXX.
std::string json_escape(std::string_view s);

/// Formats `v` with enough digits to round-trip a double exactly; emits
/// plain integers without an exponent and maps non-finite values to null
/// (JSON has no inf/nan).
std::string json_number(double v);

/// Builder for one JSON object. Fields appear in insertion order, which
/// keeps feeds diffable; `str()` wraps the accumulated fields in braces.
///
///   obs::JsonWriter w;
///   w.field("bench", "congestion").field("scale", 1.0);
///   line = w.str();   // {"bench":"congestion","scale":1}
class JsonWriter {
 public:
  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, int value) {
    return field(key, static_cast<long long>(value));
  }
  JsonWriter& field(std::string_view key, unsigned value) {
    return field(key, static_cast<unsigned long long>(value));
  }
  JsonWriter& field(std::string_view key, long value) {
    return field(key, static_cast<long long>(value));
  }
  JsonWriter& field(std::string_view key, unsigned long value) {
    return field(key, static_cast<unsigned long long>(value));
  }
  JsonWriter& field(std::string_view key, long long value);
  JsonWriter& field(std::string_view key, unsigned long long value);
  JsonWriter& field(std::string_view key, bool value);
  /// Splices `json` in verbatim — for nested objects/arrays built
  /// separately.
  JsonWriter& field_raw(std::string_view key, std::string_view json);

  bool empty() const { return body_.empty(); }
  /// The complete object, `{...}`.
  std::string str() const;

 private:
  void key(std::string_view k);
  std::string body_;
};

/// Writes `content` to `path`, truncating; returns false on I/O error.
/// Lives here so bench/trace exporters share one (checked) write path.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace armada::obs
