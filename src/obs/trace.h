// Per-query, hop-level tracing recorded at the Transport seam.
//
// A *trace* is the span tree of one root operation — a PIRA/MIRA range
// query, a transport walk, or a churn repair wave. Every transport
// delivery made while a trace's context is active becomes a child *span*
// carrying its send/enqueue/deliver instants, traffic class, byte size,
// and queue delay. Because the queueing engine reserves delivery instants
// synchronously, a span is complete the moment it is created: tracing
// never schedules events, never draws randomness, and therefore never
// perturbs the simulation — traced and untraced runs produce bitwise
// identical results.
//
// Context propagation is cooperative: the recorder holds a single
// "current span" id, engines enter a Scope around synchronous dispatch,
// and the Transport re-enters the originating span's scope inside every
// wrapped arrival callback, so work done on arrival (FRT recursion,
// repair fan-out) attributes to the hop that caused it.
//
// The recorder also hosts the delay-bound auditor: when a trace ends with
// query stats whose latency exceeds the configured bound, its span tree
// is reconstructed, the critical path to the latest arrival is walked,
// and the violating hop — the first hop on that path past the bound — is
// identified in a human-readable dump plus a structured record.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "net/congestion_stats.h"
#include "net/latency_model.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"

namespace armada::obs {

/// Per-span annotation bits. Annotations set on the current span are
/// mirrored onto its trace root so slow-query dumps can summarise a
/// query ("hedged, split, 3 sheds") without walking the tree.
enum SpanFlag : std::uint32_t {
  kFlagShed = 1u << 0,          ///< a send from this span was shed
  kFlagHedge = 1u << 1,         ///< a hedged retry launched here
  kFlagCacheHit = 1u << 2,      ///< answered from the result cache
  kFlagReplicaRoute = 1u << 3,  ///< routed to a cheaper replica
  kFlagDelegationSplit = 1u << 4,  ///< FRT split the last hop across hosts
  kFlagServe = 1u << 5,            ///< a destination scanned local storage
  kFlagMigration = 1u << 6,  ///< a rebalance migration launched under this
  kFlagReplication = 1u << 7,  ///< replica placement/teardown traffic
};

/// One hop (or one root). Roots have parent == 0, trace == id, from ==
/// to == the issuer, and a static name; their deliver_at is the
/// operation's end instant set by end_trace.
struct Span {
  std::uint64_t id = 0;      ///< 1-based; 0 is "no span"
  std::uint64_t parent = 0;  ///< parent span id, 0 for roots
  std::uint64_t trace = 0;   ///< root span id of the owning trace
  net::NodeId from = 0;
  net::NodeId to = 0;
  net::TrafficClass cls = net::TrafficClass::kQuery;
  std::uint32_t bytes = 0;
  std::uint32_t flags = 0;
  sim::Time send_at = 0.0;     ///< sender handed the message to transport
  sim::Time enqueue_at = 0.0;  ///< entered the network (send + backoff)
  sim::Time deliver_at = 0.0;  ///< arrival at `to`
  double queue_delay = 0.0;    ///< deliver - enqueue - propagation
  const char* name = nullptr;  ///< root label (static storage); else null
};

/// One delay-bound violation found by the auditor.
struct SlowQuery {
  std::uint64_t trace = 0;
  const char* name = nullptr;
  net::NodeId issuer = 0;
  double latency = 0.0;
  double bound = 0.0;
  /// First span on the critical path whose arrival exceeds the bound
  /// (relative to the trace start); 0 when the overrun has no recorded
  /// hop (e.g. all latency accrued outside traced deliveries).
  std::uint64_t violating_span = 0;
  /// Indented span-tree dump, critical path and violator marked.
  std::string dump;
};

struct TraceConfig {
  /// Trace one of every `sample_period` roots (1 = all). Sampling is
  /// deterministic in (seed, root ordinal), so a rerun traces the same
  /// queries.
  std::uint64_t sample_period = 1;
  std::uint64_t seed = 0;
  /// Latency bound audited against query traces; infinity disables the
  /// auditor.
  double delay_bound = std::numeric_limits<double>::infinity();
  /// Hard cap on recorded spans; past it new roots are dropped (counted)
  /// so long bench runs cannot exhaust memory.
  std::size_t max_spans = std::size_t(1) << 22;
  /// Full dumps kept for the slow-query log; violations past the cap are
  /// still counted.
  std::size_t max_slow_queries = 64;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig config = {}) : config_(config) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  const TraceConfig& config() const { return config_; }

  /// RAII context: enters `span` on construction, restores the previous
  /// context on destruction. Scopes nest strictly within one event's call
  /// stack; between simulator events the context is always empty.
  class Scope {
   public:
    Scope() = default;
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      if (rec_ != nullptr) {
        rec_->current_ = saved_;
      }
    }

   private:
    friend class TraceRecorder;
    Scope(TraceRecorder* rec, std::uint64_t span) : rec_(rec) {
      saved_ = rec_->current_;
      rec_->current_ = span;
    }
    TraceRecorder* rec_ = nullptr;
    std::uint64_t saved_ = 0;
  };

  [[nodiscard]] Scope enter(std::uint64_t span) { return Scope(this, span); }

  /// The active span id (0 when no trace is in scope).
  std::uint64_t context() const { return current_; }

  // --- roots ----------------------------------------------------------
  /// Starts a new trace rooted at `issuer` if the sampler selects this
  /// root; returns the root span id, or 0 (not sampled / span cap hit).
  /// `name` must point to static storage ("pira", "walk", ...).
  std::uint64_t begin_trace(const char* name, net::NodeId issuer,
                            sim::Time now);
  /// begin_trace, but only when no context is active — nested operations
  /// (a replicated query fanning into FRT searches) join the enclosing
  /// trace instead of starting their own.
  std::uint64_t maybe_begin(const char* name, net::NodeId issuer,
                            sim::Time now) {
    return current_ != 0 ? 0 : begin_trace(name, issuer, now);
  }
  /// Ends a query trace: stamps the root's end from `stats.latency` and
  /// runs the delay-bound auditor. No-op for root == 0.
  void end_trace(std::uint64_t root, const sim::QueryStats& stats);
  /// Ends a non-query trace (repair waves): the root's end is the latest
  /// recorded arrival in the trace. Not audited.
  void end_trace(std::uint64_t root);

  // --- transport hooks ------------------------------------------------
  /// Records a hop under the current context; returns the span id (0 when
  /// no context is active or the span cap is hit). The caller must follow
  /// up with span_delivered once the arrival instant is known — with the
  /// reservation discipline that is immediately.
  std::uint64_t span_begin(net::NodeId from, net::NodeId to,
                           std::uint32_t bytes, net::TrafficClass cls,
                           sim::Time send_at, sim::Time enqueue_at);
  void span_delivered(std::uint64_t span, sim::Time deliver_at,
                      double queue_delay);
  /// ORs `flags` into the current span and its trace root; no-op outside
  /// a traced context.
  void annotate(std::uint32_t flags);

  // --- introspection --------------------------------------------------
  const std::vector<Span>& spans() const { return spans_; }
  const Span* find(std::uint64_t id) const {
    return id >= 1 && id <= spans_.size() ? &spans_[id - 1] : nullptr;
  }
  std::uint64_t roots_seen() const { return roots_seen_; }
  std::uint64_t roots_sampled() const { return roots_sampled_; }
  std::uint64_t spans_recorded() const { return spans_recorded_; }
  std::uint64_t spans_delivered() const { return spans_delivered_; }
  std::uint64_t spans_dropped() const { return spans_dropped_; }
  std::uint64_t violations() const { return violations_; }
  const std::vector<SlowQuery>& slow_queries() const { return slow_queries_; }

  /// Structural check: parents exist and precede children within the same
  /// trace, instants are monotone (send <= enqueue <= deliver), children
  /// start no earlier than their root, and every begun span was
  /// delivered. Returns "" when well-formed, else a description of the
  /// first problem.
  std::string validate() const;

  // --- exports --------------------------------------------------------
  /// Chrome trace-event JSON (load in chrome://tracing or Perfetto):
  /// one complete ("X") event per span, pid = trace id, tid = receiving
  /// node, timestamps in microseconds (sim time x 1000), sorted by ts.
  std::string chrome_trace_json() const;
  /// One JSON object per line; roots are kind "trace", hops kind "span".
  std::string spans_jsonl() const;
  /// Structured slow-query records, one JSON object per line.
  std::string slow_queries_jsonl() const;
  /// Human-readable slow-query log (the dumps back to back).
  std::string slow_query_log() const;

  void clear();

 private:
  Span* mutable_find(std::uint64_t id) {
    return id >= 1 && id <= spans_.size() ? &spans_[id - 1] : nullptr;
  }
  bool sampled(std::uint64_t ordinal) const;
  void audit(const Span& root, const sim::QueryStats& stats);

  TraceConfig config_;
  std::vector<Span> spans_;
  std::vector<SlowQuery> slow_queries_;
  std::uint64_t current_ = 0;
  std::uint64_t roots_seen_ = 0;
  std::uint64_t roots_sampled_ = 0;
  std::uint64_t spans_recorded_ = 0;
  std::uint64_t spans_delivered_ = 0;
  std::uint64_t spans_dropped_ = 0;
  std::uint64_t violations_ = 0;
};

/// Static label for a traffic class ("query", "repair", "handoff",
/// "hedge") — the enum the CI trace schema pins.
const char* traffic_class_name(net::TrafficClass cls);

}  // namespace armada::obs
