// Unified metrics registry: one namespace of named counters, gauges, and
// histograms that the repo's five stats currencies (sim::QueryStats,
// net::CongestionStats, sim::ChurnStats, replica::ReplicaStats,
// rebalance::RebalanceStats) publish into (see obs/publish.h), and that
// the periodic Sampler (obs/sampler.h) snapshots into time series.
//
// Instruments are created on first touch and iterate in name order, so
// exports are deterministic. Kinds are sticky: touching an existing name
// with a different kind is a programming error and CHECK-fails.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/check.h"

namespace armada::obs {

class Registry {
 public:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  /// Log2-bucketed histogram: bucket 0 holds values <= 1, bucket i holds
  /// (2^(i-1), 2^i], the last bucket is open-ended.
  struct Histogram {
    static constexpr std::size_t kBuckets = 24;
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;

    void observe(double v);
    double mean() const { return count == 0 ? 0.0 : sum / count; }
    /// Upper-bound estimate of the q-quantile (q in [0,1]) from bucket
    /// edges — coarse by design; exact tails belong to tracing.
    double quantile(double q) const;
  };

  /// Counters are cumulative and monotone; `delta` adds.
  void inc(std::string_view name, double delta = 1.0);
  /// Sets a counter to an absolute cumulative value (how the existing
  /// stats structs publish); CHECK-fails if it would move backwards.
  void count(std::string_view name, double total);
  /// Gauges are point-in-time values; `set` overwrites.
  void set(std::string_view name, double value);
  /// Records one observation into a histogram.
  void observe(std::string_view name, double value);

  /// Scalar read: counter/gauge value; histogram count. 0 for unknown
  /// names.
  double value(std::string_view name) const;
  const Histogram* histogram(std::string_view name) const;
  bool contains(std::string_view name) const {
    return instruments_.find(name) != instruments_.end();
  }
  std::size_t size() const { return instruments_.size(); }
  void clear() { instruments_.clear(); }

  /// Visits every instrument in name order:
  /// fn(const std::string& name, Kind, double scalar, const Histogram*).
  /// `scalar` is the counter/gauge value (histogram count for
  /// histograms); the pointer is null for non-histograms.
  template <typename Fn>
  void visit(Fn&& fn) const {
    for (const auto& [name, ins] : instruments_) {
      fn(name, ins.kind,
         ins.kind == Kind::kHistogram ? static_cast<double>(ins.hist.count)
                                      : ins.value,
         ins.kind == Kind::kHistogram ? &ins.hist : nullptr);
    }
  }

 private:
  struct Instrument {
    Kind kind = Kind::kCounter;
    double value = 0.0;
    Histogram hist;
  };

  Instrument& touch(std::string_view name, Kind kind);

  // std::less<> enables string_view lookups without allocation.
  std::map<std::string, Instrument, std::less<>> instruments_;
};

}  // namespace armada::obs
