// Simulator-driven periodic metrics sampling: snapshots a Registry into
// a time series during a run.
//
// Tick events are pre-scheduled over a fixed [start, horizon] window —
// the sampler never re-schedules itself, so it cannot keep a simulation
// alive past its natural quiescence, and ticks placed inside the
// workload's own span never extend sim.now() (keeping goodput math of
// traced and untraced runs identical). The collect callback only *reads*
// simulation state (congestion counters, backlog probes, stats structs)
// and publishes it into the registry; it must not mutate the simulation.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/registry.h"
#include "sim/event_queue.h"

namespace armada::obs {

class Sampler {
 public:
  using Collect = std::function<void(Registry&)>;

  /// One snapshot: every instrument's scalar at time t (histograms
  /// flatten to `<name>.count` / `.mean` / `.max`), in name order.
  struct Sample {
    sim::Time t = 0.0;
    std::vector<std::pair<std::string, double>> values;
  };

  /// `registry` and the sampler itself must outlive the simulation run.
  Sampler(Registry& registry, Collect collect)
      : registry_(registry), collect_(std::move(collect)) {}

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Pre-schedules ticks at start, start+interval, ... up to and
  /// including horizon. Call before (or during) the run; events land on
  /// the caller's simulator.
  void schedule(sim::Simulator& sim, sim::Time start, sim::Time horizon,
                sim::Time interval);

  /// Takes one snapshot immediately (also what scheduled ticks call).
  void tick(sim::Time now);

  const std::vector<Sample>& samples() const { return samples_; }

  /// One JSON object per sample:
  /// {"schema":1,"kind":"sample","series":...,"t":...,"values":{...}}.
  std::string jsonl(std::string_view series) const;

 private:
  Registry& registry_;
  Collect collect_;
  std::vector<Sample> samples_;
};

}  // namespace armada::obs
