#include "obs/sampler.h"

#include "obs/json_writer.h"
#include "util/check.h"

namespace armada::obs {

void Sampler::schedule(sim::Simulator& sim, sim::Time start,
                       sim::Time horizon, sim::Time interval) {
  ARMADA_CHECK(interval > 0.0);
  // Multiply instead of accumulating so tick instants are exact for
  // power-of-two intervals and drift-free otherwise.
  for (std::uint64_t k = 0;; ++k) {
    const sim::Time t = start + static_cast<double>(k) * interval;
    if (t > horizon) {
      break;
    }
    sim.schedule_at(t, [this, t] { tick(t); });
  }
}

void Sampler::tick(sim::Time now) {
  if (collect_) {
    collect_(registry_);
  }
  Sample s;
  s.t = now;
  registry_.visit([&s](const std::string& name, Registry::Kind kind,
                       double scalar, const Registry::Histogram* hist) {
    if (hist != nullptr) {
      s.values.emplace_back(name + ".count", scalar);
      s.values.emplace_back(name + ".mean", hist->mean());
      s.values.emplace_back(name + ".max", hist->max);
    } else {
      (void)kind;
      s.values.emplace_back(name, scalar);
    }
  });
  samples_.push_back(std::move(s));
}

std::string Sampler::jsonl(std::string_view series) const {
  std::string out;
  for (const Sample& s : samples_) {
    JsonWriter values;
    for (const auto& [name, v] : s.values) {
      values.field(name, v);
    }
    JsonWriter w;
    w.field("schema", kJsonSchemaVersion);
    w.field("kind", "sample");
    w.field("series", series);
    w.field("t", s.t);
    w.field_raw("values", values.str());
    out += w.str();
    out += '\n';
  }
  return out;
}

}  // namespace armada::obs
