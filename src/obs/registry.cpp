#include "obs/registry.h"

#include <cmath>

namespace armada::obs {

void Registry::Histogram::observe(double v) {
  ++count;
  sum += v;
  max = std::max(max, v);
  std::size_t b = 0;
  if (v > 1.0) {
    b = static_cast<std::size_t>(std::ceil(std::log2(v)));
    b = std::min(b, kBuckets - 1);
  }
  ++buckets[b];
}

double Registry::Histogram::quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (static_cast<double>(seen) >= rank) {
      // Upper edge of bucket i; the open last bucket reports the true max.
      return i == kBuckets - 1 ? max : std::ldexp(1.0, static_cast<int>(i));
    }
  }
  return max;
}

Registry::Instrument& Registry::touch(std::string_view name, Kind kind) {
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    it = instruments_.emplace(std::string(name), Instrument{}).first;
    it->second.kind = kind;
  }
  ARMADA_CHECK_MSG(it->second.kind == kind,
                   "instrument kind mismatch: " << it->first);
  return it->second;
}

void Registry::inc(std::string_view name, double delta) {
  Instrument& ins = touch(name, Kind::kCounter);
  ARMADA_CHECK_MSG(delta >= 0.0, "counter decremented: " << name);
  ins.value += delta;
}

void Registry::count(std::string_view name, double total) {
  Instrument& ins = touch(name, Kind::kCounter);
  ARMADA_CHECK_MSG(total >= ins.value, "counter moved backwards: " << name);
  ins.value = total;
}

void Registry::set(std::string_view name, double value) {
  touch(name, Kind::kGauge).value = value;
}

void Registry::observe(std::string_view name, double value) {
  touch(name, Kind::kHistogram).hist.observe(value);
}

double Registry::value(std::string_view name) const {
  const auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    return 0.0;
  }
  return it->second.kind == Kind::kHistogram
             ? static_cast<double>(it->second.hist.count)
             : it->second.value;
}

const Registry::Histogram* Registry::histogram(std::string_view name) const {
  const auto it = instruments_.find(name);
  return it != instruments_.end() && it->second.kind == Kind::kHistogram
             ? &it->second.hist
             : nullptr;
}

}  // namespace armada::obs
