// Adapters from the five existing stats currencies into obs::Registry.
//
// The stats structs stay the source of truth — publishing copies their
// cumulative values into registry counters/gauges under a dotted prefix,
// so benches and the periodic Sampler read every subsystem in one
// namespace. Counters publish with Registry::count (absolute, monotone);
// gauges and peaks with Registry::set; per-query QueryStats feed
// histograms.
#pragma once

#include <string>
#include <string_view>

#include "net/congestion_stats.h"
#include "obs/registry.h"
#include "rebalance/rebalance.h"
#include "replica/replication.h"
#include "sim/churn.h"
#include "sim/metrics.h"

namespace armada::obs {

/// One query's stats into histograms `<prefix>.latency`, `.delay`,
/// `.queue_delay`, `.coverage`, `.messages` plus the flow-control
/// counters `<prefix>.shed`, `.hedges`, `.replica_routes`, `.cache_hits`,
/// and `<prefix>.queries`.
void publish(Registry& reg, std::string_view prefix,
             const sim::QueryStats& stats);

/// Transport congestion counters under `<prefix>.*`, including the
/// per-class `<prefix>.class.<query|repair|handoff|hedge>.messages` /
/// `.queue_delay` series the backlog dashboards read.
void publish(Registry& reg, std::string_view prefix,
             const net::CongestionStats& stats);

void publish(Registry& reg, std::string_view prefix,
             const sim::ChurnStats& stats);

void publish(Registry& reg, std::string_view prefix,
             const replica::ReplicaStats& stats);

void publish(Registry& reg, std::string_view prefix,
             const rebalance::RebalanceStats& stats);

}  // namespace armada::obs
