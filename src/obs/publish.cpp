#include "obs/publish.h"

#include "obs/trace.h"  // traffic_class_name

namespace armada::obs {
namespace {

// Joins "<prefix>.<leaf>" without repeated reallocation at call sites.
std::string dotted(std::string_view prefix, std::string_view leaf) {
  std::string name;
  name.reserve(prefix.size() + 1 + leaf.size());
  name += prefix;
  name += '.';
  name += leaf;
  return name;
}

}  // namespace

void publish(Registry& reg, std::string_view prefix,
             const sim::QueryStats& stats) {
  reg.inc(dotted(prefix, "queries"));
  reg.observe(dotted(prefix, "latency"), stats.latency);
  reg.observe(dotted(prefix, "delay"), stats.delay);
  reg.observe(dotted(prefix, "queue_delay"), stats.queue_delay);
  reg.observe(dotted(prefix, "coverage"), stats.coverage);
  reg.observe(dotted(prefix, "messages"),
              static_cast<double>(stats.messages));
  reg.inc(dotted(prefix, "shed"), static_cast<double>(stats.shed));
  reg.inc(dotted(prefix, "hedges"), static_cast<double>(stats.hedges));
  reg.inc(dotted(prefix, "replica_routes"),
          static_cast<double>(stats.replica_routes));
  reg.inc(dotted(prefix, "cache_hits"),
          static_cast<double>(stats.cache_hits));
}

void publish(Registry& reg, std::string_view prefix,
             const net::CongestionStats& stats) {
  reg.count(dotted(prefix, "messages"), static_cast<double>(stats.messages));
  reg.count(dotted(prefix, "batches"), static_cast<double>(stats.batches));
  reg.count(dotted(prefix, "bytes_on_wire"),
            static_cast<double>(stats.bytes_on_wire));
  reg.count(dotted(prefix, "queue_delay_total"), stats.queue_delay_total);
  reg.count(dotted(prefix, "shed_messages"),
            static_cast<double>(stats.shed_messages));
  reg.count(dotted(prefix, "hedges_launched"),
            static_cast<double>(stats.hedges_launched));
  reg.count(dotted(prefix, "hedges_won"),
            static_cast<double>(stats.hedges_won));
  reg.count(dotted(prefix, "replica_routes"),
            static_cast<double>(stats.replica_routes));
  reg.count(dotted(prefix, "cache_hits"),
            static_cast<double>(stats.cache_hits));
  reg.set(dotted(prefix, "queue_delay_max"), stats.queue_delay_max);
  reg.set(dotted(prefix, "egress_depth_peak"),
          static_cast<double>(stats.egress_depth_peak));
  reg.set(dotted(prefix, "ingress_depth_peak"),
          static_cast<double>(stats.ingress_depth_peak));
  reg.set(dotted(prefix, "egress_busy_total"), stats.egress_busy_total);
  reg.set(dotted(prefix, "ingress_busy_total"), stats.ingress_busy_total);
  for (std::size_t i = 0; i < net::kNumTrafficClasses; ++i) {
    const char* cls =
        traffic_class_name(static_cast<net::TrafficClass>(i));
    reg.count(dotted(prefix, dotted("class", dotted(cls, "messages"))),
              static_cast<double>(stats.class_messages[i]));
    reg.count(dotted(prefix, dotted("class", dotted(cls, "queue_delay"))),
              stats.class_queue_delay[i]);
  }
}

void publish(Registry& reg, std::string_view prefix,
             const sim::ChurnStats& stats) {
  reg.count(dotted(prefix, "joins"), static_cast<double>(stats.joins));
  reg.count(dotted(prefix, "leaves"), static_cast<double>(stats.leaves));
  reg.count(dotted(prefix, "crashes"), static_cast<double>(stats.crashes));
  reg.count(dotted(prefix, "skipped_events"),
            static_cast<double>(stats.skipped_events));
  reg.count(dotted(prefix, "repair_messages"),
            static_cast<double>(stats.repair_messages));
  reg.count(dotted(prefix, "repair_latency_total"),
            stats.repair_latency_total);
  reg.count(dotted(prefix, "objects_handed_off"),
            static_cast<double>(stats.objects_handed_off));
  reg.count(dotted(prefix, "objects_dropped"),
            static_cast<double>(stats.objects_dropped));
  reg.count(dotted(prefix, "queries"), static_cast<double>(stats.queries));
  reg.count(dotted(prefix, "stale_queries"),
            static_cast<double>(stats.stale_queries));
  reg.count(dotted(prefix, "detours"), static_cast<double>(stats.detours));
  reg.count(dotted(prefix, "failed_queries"),
            static_cast<double>(stats.failed_queries));
  reg.count(dotted(prefix, "incomplete_queries"),
            static_cast<double>(stats.incomplete_queries));
  reg.count(dotted(prefix, "objects_missed"),
            static_cast<double>(stats.objects_missed));
  reg.set(dotted(prefix, "repair_latency_max"), stats.repair_latency_max);
  reg.set(dotted(prefix, "objects_in_flight_peak"),
          static_cast<double>(stats.objects_in_flight_peak));
}

void publish(Registry& reg, std::string_view prefix,
             const replica::ReplicaStats& stats) {
  reg.count(dotted(prefix, "queries"), static_cast<double>(stats.queries));
  reg.count(dotted(prefix, "regions_replicated"),
            static_cast<double>(stats.regions_replicated));
  reg.count(dotted(prefix, "regions_torn_down"),
            static_cast<double>(stats.regions_torn_down));
  reg.count(dotted(prefix, "placement_messages"),
            static_cast<double>(stats.placement_messages));
  reg.count(dotted(prefix, "placement_bytes"),
            static_cast<double>(stats.placement_bytes));
  reg.count(dotted(prefix, "repairs"), static_cast<double>(stats.repairs));
  reg.count(dotted(prefix, "replica_routes"),
            static_cast<double>(stats.replica_routes));
  reg.count(dotted(prefix, "cache_hits"),
            static_cast<double>(stats.cache_hits));
  reg.count(dotted(prefix, "cache_misses"),
            static_cast<double>(stats.cache_misses));
  reg.count(dotted(prefix, "cache_insertions"),
            static_cast<double>(stats.cache_insertions));
  reg.count(dotted(prefix, "cache_invalidated_publish"),
            static_cast<double>(stats.cache_invalidated_publish));
  reg.count(dotted(prefix, "cache_invalidated_churn"),
            static_cast<double>(stats.cache_invalidated_churn));
  reg.set(dotted(prefix, "active_regions"),
          static_cast<double>(stats.active_regions));
  reg.set(dotted(prefix, "replica_objects"),
          static_cast<double>(stats.replica_objects));
}

void publish(Registry& reg, std::string_view prefix,
             const rebalance::RebalanceStats& stats) {
  reg.count(dotted(prefix, "sweeps"), static_cast<double>(stats.sweeps));
  reg.count(dotted(prefix, "migrations_started"),
            static_cast<double>(stats.migrations_started));
  reg.count(dotted(prefix, "migrations_completed"),
            static_cast<double>(stats.migrations_completed));
  reg.count(dotted(prefix, "migrations_cancelled"),
            static_cast<double>(stats.migrations_cancelled));
  reg.count(dotted(prefix, "objects_migrated"),
            static_cast<double>(stats.objects_migrated));
  reg.count(dotted(prefix, "rehosted"), static_cast<double>(stats.rehosted));
  reg.count(dotted(prefix, "cutover_messages"),
            static_cast<double>(stats.cutover_messages));
  reg.count(dotted(prefix, "bytes_on_wire"),
            static_cast<double>(stats.bytes_on_wire));
}

}  // namespace armada::obs
