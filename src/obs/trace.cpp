#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "obs/json_writer.h"

namespace armada::obs {
namespace {

// splitmix64 finalizer: decorrelates (seed, ordinal) so period-P sampling
// picks a deterministic but well-spread 1/P subset of roots instead of
// every P-th query of a regular workload.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string flag_names(std::uint32_t flags) {
  static constexpr struct {
    std::uint32_t bit;
    const char* name;
  } kNames[] = {
      {kFlagShed, "shed"},
      {kFlagHedge, "hedge"},
      {kFlagCacheHit, "cache_hit"},
      {kFlagReplicaRoute, "replica_route"},
      {kFlagDelegationSplit, "delegation_split"},
      {kFlagServe, "serve"},
      {kFlagMigration, "migration"},
      {kFlagReplication, "replication"},
  };
  std::string out;
  for (const auto& n : kNames) {
    if ((flags & n.bit) != 0) {
      if (!out.empty()) {
        out += '|';
      }
      out += n.name;
    }
  }
  return out;
}

std::string format_time(double t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", t);
  return buf;
}

}  // namespace

const char* traffic_class_name(net::TrafficClass cls) {
  switch (cls) {
    case net::TrafficClass::kQuery:
      return "query";
    case net::TrafficClass::kRepair:
      return "repair";
    case net::TrafficClass::kHandoff:
      return "handoff";
    case net::TrafficClass::kHedge:
      return "hedge";
  }
  return "query";
}

bool TraceRecorder::sampled(std::uint64_t ordinal) const {
  if (config_.sample_period <= 1) {
    return true;
  }
  return mix64(config_.seed ^ ordinal) % config_.sample_period == 0;
}

std::uint64_t TraceRecorder::begin_trace(const char* name, net::NodeId issuer,
                                         sim::Time now) {
  ++roots_seen_;
  if (!sampled(roots_seen_)) {
    return 0;
  }
  if (spans_.size() >= config_.max_spans) {
    ++spans_dropped_;
    return 0;
  }
  Span root;
  root.id = spans_.size() + 1;
  root.trace = root.id;
  root.from = issuer;
  root.to = issuer;
  root.send_at = now;
  root.enqueue_at = now;
  root.deliver_at = now;
  root.name = name;
  spans_.push_back(root);
  ++roots_sampled_;
  return root.id;
}

void TraceRecorder::end_trace(std::uint64_t root, const sim::QueryStats& stats) {
  Span* r = mutable_find(root);
  if (r == nullptr) {
    return;
  }
  r->deliver_at = std::max(r->deliver_at, r->send_at + stats.latency);
  r->queue_delay = stats.queue_delay;
  audit(*r, stats);
}

void TraceRecorder::end_trace(std::uint64_t root) {
  // Hop arrivals already advanced the root's end in span_delivered;
  // nothing to audit for non-query traces.
  (void)mutable_find(root);
}

std::uint64_t TraceRecorder::span_begin(net::NodeId from, net::NodeId to,
                                        std::uint32_t bytes,
                                        net::TrafficClass cls,
                                        sim::Time send_at,
                                        sim::Time enqueue_at) {
  if (current_ == 0) {
    return 0;
  }
  if (spans_.size() >= config_.max_spans) {
    ++spans_dropped_;
    return 0;
  }
  const Span* parent = find(current_);
  Span s;
  s.id = spans_.size() + 1;
  s.parent = current_;
  s.trace = parent != nullptr ? parent->trace : current_;
  s.from = from;
  s.to = to;
  s.cls = cls;
  s.bytes = bytes;
  s.send_at = send_at;
  s.enqueue_at = enqueue_at;
  s.deliver_at = enqueue_at;  // finalized by span_delivered
  spans_.push_back(s);
  ++spans_recorded_;
  return s.id;
}

void TraceRecorder::span_delivered(std::uint64_t span, sim::Time deliver_at,
                                   double queue_delay) {
  Span* s = mutable_find(span);
  if (s == nullptr) {
    return;
  }
  s->deliver_at = std::max(deliver_at, s->enqueue_at);
  s->queue_delay = std::max(0.0, queue_delay);
  ++spans_delivered_;
  // Keep the root's end current so repair traces (no QueryStats) still
  // close with the latest arrival.
  if (Span* root = mutable_find(s->trace); root != nullptr) {
    root->deliver_at = std::max(root->deliver_at, s->deliver_at);
  }
}

void TraceRecorder::annotate(std::uint32_t flags) {
  Span* s = mutable_find(current_);
  if (s == nullptr) {
    return;
  }
  s->flags |= flags;
  if (Span* root = mutable_find(s->trace); root != nullptr) {
    root->flags |= flags;
  }
}

std::string TraceRecorder::validate() const {
  char buf[160];
  if (spans_recorded_ != spans_delivered_) {
    std::snprintf(buf, sizeof buf,
                  "conservation: %llu spans begun but %llu delivered",
                  static_cast<unsigned long long>(spans_recorded_),
                  static_cast<unsigned long long>(spans_delivered_));
    return buf;
  }
  for (const Span& s : spans_) {
    const bool is_root = s.parent == 0;
    if (is_root) {
      if (s.trace != s.id || s.name == nullptr) {
        std::snprintf(buf, sizeof buf, "span %llu: malformed root",
                      static_cast<unsigned long long>(s.id));
        return buf;
      }
    } else {
      const Span* parent = find(s.parent);
      if (parent == nullptr || parent->id >= s.id) {
        std::snprintf(buf, sizeof buf, "span %llu: orphan (parent %llu)",
                      static_cast<unsigned long long>(s.id),
                      static_cast<unsigned long long>(s.parent));
        return buf;
      }
      if (parent->trace != s.trace) {
        std::snprintf(buf, sizeof buf, "span %llu: crosses traces",
                      static_cast<unsigned long long>(s.id));
        return buf;
      }
      const Span* root = find(s.trace);
      if (root == nullptr || root->parent != 0) {
        std::snprintf(buf, sizeof buf, "span %llu: trace %llu has no root",
                      static_cast<unsigned long long>(s.id),
                      static_cast<unsigned long long>(s.trace));
        return buf;
      }
      if (s.send_at < root->send_at) {
        std::snprintf(buf, sizeof buf, "span %llu: starts before its root",
                      static_cast<unsigned long long>(s.id));
        return buf;
      }
    }
    if (!(s.send_at <= s.enqueue_at && s.enqueue_at <= s.deliver_at)) {
      std::snprintf(buf, sizeof buf,
                    "span %llu: instants not monotone (%g, %g, %g)",
                    static_cast<unsigned long long>(s.id), s.send_at,
                    s.enqueue_at, s.deliver_at);
      return buf;
    }
  }
  return "";
}

void TraceRecorder::audit(const Span& root, const sim::QueryStats& stats) {
  if (!(stats.latency > config_.delay_bound)) {
    return;
  }
  ++violations_;
  if (slow_queries_.size() >= config_.max_slow_queries) {
    return;
  }

  // Collect the trace's spans and a parent -> children index (spans are
  // appended in id order, so children come out sorted).
  std::vector<const Span*> members;
  std::unordered_map<std::uint64_t, std::vector<const Span*>> children;
  for (const Span& s : spans_) {
    if (s.trace != root.id) {
      continue;
    }
    members.push_back(&s);
    if (s.parent != 0) {
      children[s.parent].push_back(&s);
    }
  }

  // Critical path: walk up from the latest arrival.
  const Span* leaf = nullptr;
  for (const Span* s : members) {
    if (s->parent == 0) {
      continue;
    }
    if (leaf == nullptr || s->deliver_at > leaf->deliver_at) {
      leaf = s;
    }
  }
  std::unordered_set<std::uint64_t> critical;
  std::vector<const Span*> path;
  for (const Span* s = leaf; s != nullptr && s->parent != 0;
       s = find(s->parent)) {
    critical.insert(s->id);
    path.push_back(s);
  }
  std::reverse(path.begin(), path.end());

  // Violating hop: first on the critical path to arrive past the bound;
  // if the overrun accrued outside recorded hops, blame the hop with the
  // largest queue delay.
  std::uint64_t violator = 0;
  for (const Span* s : path) {
    if (s->deliver_at - root.send_at > config_.delay_bound) {
      violator = s->id;
      break;
    }
  }
  if (violator == 0) {
    const Span* worst = nullptr;
    for (const Span* s : members) {
      if (s->parent != 0 &&
          (worst == nullptr || s->queue_delay > worst->queue_delay)) {
        worst = s;
      }
    }
    violator = worst != nullptr ? worst->id : 0;
  }

  SlowQuery slow;
  slow.trace = root.id;
  slow.name = root.name;
  slow.issuer = root.from;
  slow.latency = stats.latency;
  slow.bound = config_.delay_bound;
  slow.violating_span = violator;

  std::string dump;
  {
    char line[256];
    std::snprintf(line, sizeof line,
                  "slow query: trace=%llu name=%s issuer=%u latency=%s "
                  "bound=%s messages=%llu coverage=%s flags=[%s]\n",
                  static_cast<unsigned long long>(root.id), root.name,
                  root.from, format_time(stats.latency).c_str(),
                  format_time(config_.delay_bound).c_str(),
                  static_cast<unsigned long long>(stats.messages),
                  format_time(stats.coverage).c_str(),
                  flag_names(root.flags).c_str());
    dump += line;
  }
  // Depth-first dump in id order; iterative stack keeps deep delegation
  // chains safe.
  std::vector<std::pair<const Span*, int>> stack;
  stack.emplace_back(&root, 0);
  while (!stack.empty()) {
    const auto [s, depth] = stack.back();
    stack.pop_back();
    char line[320];
    const std::string tags = flag_names(s->flags);
    std::snprintf(
        line, sizeof line, "%*s#%llu %s %u->%u bytes=%u send=%s dlv=%s "
        "(+%s) qd=%s%s%s%s%s%s\n",
        depth * 2, "", static_cast<unsigned long long>(s->id),
        s->parent == 0 ? s->name : traffic_class_name(s->cls), s->from, s->to,
        s->bytes, format_time(s->send_at).c_str(),
        format_time(s->deliver_at).c_str(),
        format_time(s->deliver_at - root.send_at).c_str(),
        format_time(s->queue_delay).c_str(), tags.empty() ? "" : " [",
        tags.c_str(), tags.empty() ? "" : "]",
        critical.count(s->id) != 0 ? "  *critical*" : "",
        s->id == violator ? "  <= VIOLATES BOUND" : "");
    dump += line;
    auto it = children.find(s->id);
    if (it != children.end()) {
      for (auto c = it->second.rbegin(); c != it->second.rend(); ++c) {
        stack.emplace_back(*c, depth + 1);
      }
    }
  }
  slow.dump = std::move(dump);
  slow_queries_.push_back(std::move(slow));
}

std::string TraceRecorder::chrome_trace_json() const {
  // Sort by ts so the export streams into chrome://tracing / Perfetto
  // without a buffering pass (and so the CI schema check can assert
  // ordering).
  std::vector<const Span*> order;
  order.reserve(spans_.size());
  for (const Span& s : spans_) {
    order.push_back(&s);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const Span* a, const Span* b) {
                     return a->send_at < b->send_at;
                   });
  std::string events;
  for (const Span* s : order) {
    JsonWriter args;
    args.field("span", s->id).field("parent", s->parent);
    args.field("from", static_cast<unsigned long long>(s->from));
    args.field("bytes", static_cast<unsigned long long>(s->bytes));
    args.field("queue_delay", s->queue_delay);
    const std::string tags = flag_names(s->flags);
    if (!tags.empty()) {
      args.field("tags", tags);
    }
    JsonWriter ev;
    ev.field("name", s->parent == 0 ? s->name : traffic_class_name(s->cls));
    ev.field("cat", s->parent == 0 ? "trace" : traffic_class_name(s->cls));
    ev.field("ph", "X");
    // Sim time is unitless; export as if 1 sim tick == 1ms (Chrome ts is
    // in microseconds).
    ev.field("ts", s->send_at * 1000.0);
    ev.field("dur", (s->deliver_at - s->send_at) * 1000.0);
    ev.field("pid", s->trace);
    ev.field("tid", static_cast<unsigned long long>(s->to));
    ev.field_raw("args", args.str());
    if (!events.empty()) {
      events += ',';
    }
    events += ev.str();
  }
  JsonWriter top;
  top.field("schema", kJsonSchemaVersion);
  top.field("displayTimeUnit", "ms");
  top.field_raw("traceEvents", "[" + events + "]");
  return top.str();
}

std::string TraceRecorder::spans_jsonl() const {
  std::string out;
  for (const Span& s : spans_) {
    JsonWriter w;
    w.field("schema", kJsonSchemaVersion);
    w.field("kind", s.parent == 0 ? "trace" : "span");
    w.field("id", s.id).field("parent", s.parent).field("trace", s.trace);
    if (s.parent == 0) {
      w.field("name", s.name);
    }
    w.field("from", static_cast<unsigned long long>(s.from));
    w.field("to", static_cast<unsigned long long>(s.to));
    w.field("cls", traffic_class_name(s.cls));
    w.field("bytes", static_cast<unsigned long long>(s.bytes));
    w.field("send_at", s.send_at).field("enqueue_at", s.enqueue_at);
    w.field("deliver_at", s.deliver_at).field("queue_delay", s.queue_delay);
    w.field("flags", static_cast<unsigned long long>(s.flags));
    const std::string tags = flag_names(s.flags);
    if (!tags.empty()) {
      w.field("tags", tags);
    }
    out += w.str();
    out += '\n';
  }
  return out;
}

std::string TraceRecorder::slow_queries_jsonl() const {
  std::string out;
  for (const SlowQuery& q : slow_queries_) {
    JsonWriter w;
    w.field("schema", kJsonSchemaVersion);
    w.field("kind", "slow_query");
    w.field("trace", q.trace).field("name", q.name);
    w.field("issuer", static_cast<unsigned long long>(q.issuer));
    w.field("latency", q.latency).field("bound", q.bound);
    w.field("violating_span", q.violating_span);
    if (const Span* v = find(q.violating_span); v != nullptr) {
      w.field("violating_from", static_cast<unsigned long long>(v->from));
      w.field("violating_to", static_cast<unsigned long long>(v->to));
      w.field("violating_cls", traffic_class_name(v->cls));
      w.field("violating_deliver_at", v->deliver_at);
      w.field("violating_queue_delay", v->queue_delay);
    }
    out += w.str();
    out += '\n';
  }
  return out;
}

std::string TraceRecorder::slow_query_log() const {
  std::string out;
  for (const SlowQuery& q : slow_queries_) {
    out += q.dump;
    out += '\n';
  }
  return out;
}

void TraceRecorder::clear() {
  spans_.clear();
  slow_queries_.clear();
  current_ = 0;
  roots_seen_ = 0;
  roots_sampled_ = 0;
  spans_recorded_ = 0;
  spans_delivered_ = 0;
  spans_dropped_ = 0;
  violations_ = 0;
}

}  // namespace armada::obs
