#include "sim/event_queue.h"

#include "util/check.h"

namespace armada::sim {

Simulator::Simulator() {
  // Distinct per instance within a process; never reused, so address reuse
  // of stack-allocated simulators cannot alias two runs.
  static std::uint64_t next_id = 0;
  id_ = ++next_id;
}

void Simulator::schedule_at(Time when, std::function<void()> action) {
  ARMADA_CHECK_MSG(when >= now_, "scheduling into the past");
  queue_.push(Item{when, seq_++, std::move(action)});
}

void Simulator::schedule_after(Time delay, std::function<void()> action) {
  ARMADA_CHECK(delay >= 0.0);
  schedule_at(now_ + delay, std::move(action));
}

void Simulator::run() {
  while (!queue_.empty()) {
    // Copy out before pop so the action may schedule further events.
    Item item = queue_.top();
    queue_.pop();
    now_ = item.when;
    ++processed_;
    item.action();
  }
}

void Simulator::run_until(Time horizon) {
  while (!queue_.empty() && queue_.top().when <= horizon) {
    Item item = queue_.top();
    queue_.pop();
    now_ = item.when;
    ++processed_;
    item.action();
  }
  now_ = horizon > now_ ? horizon : now_;
}

}  // namespace armada::sim
